// Quickstart: boot a two-host simulated testbed — an IX dataplane echo
// server and a Linux client — exchange RPCs, and print the measured
// round-trip latency. This is the smallest end-to-end use of the public
// API.
package main

import (
	"fmt"
	"time"

	"ix"
)

func main() {
	cluster := ix.NewCluster(1)

	// One IX server: 2 elastic threads, echo on port 9000, 64 B messages.
	cluster.AddHost("server", ix.HostSpec{
		Arch:    ix.ArchIX,
		Cores:   2,
		Factory: ix.EchoServer(9000, 64),
	})
	serverIP := cluster.IXServer(0).IP()

	// One Linux client host running a closed-loop echo load.
	metrics := ix.NewEchoMetrics()
	cluster.AddHost("client", ix.HostSpec{
		Arch:  ix.ArchLinux,
		Cores: 2,
		Factory: ix.EchoClient(ix.EchoClientConfig{
			ServerIP: serverIP,
			Port:     9000,
			MsgSize:  64,
			Conns:    2,
			Metrics:  metrics,
		}),
	})

	cluster.Start()
	cluster.Run(20 * time.Millisecond) // 20 ms of virtual time

	fmt.Printf("quickstart: %d RPCs completed\n", metrics.Msgs.Total())
	fmt.Printf("  round-trip p50 %v   p99 %v\n",
		metrics.Latency.Quantile(0.50), metrics.Latency.Quantile(0.99))
	fmt.Printf("  (the paper's IX unloaded one-way latency is 5.7µs; a\n")
	fmt.Printf("   Linux client adds its own kernel overheads on top)\n")
}
