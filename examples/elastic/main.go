// Elastic: drive an IX memcached server through a load ramp and watch
// the IXCP control plane grow and shrink its elastic thread set, with
// flow groups migrating between threads via the NIC's RSS indirection
// table — the paper's energy-proportionality scenario (§3, §4.4).
package main

import (
	"fmt"
	"time"

	"ix"
)

func main() {
	res := ix.RunElastic(ix.ElasticSetup{
		MaxCores:    4,
		PeakRPS:     900_000,
		Steps:       4,
		StepWindow:  5 * time.Millisecond,
		ClientHosts: 6,
	})

	fmt.Println("elastic thread scaling under a triangle load ramp")
	fmt.Println()
	fmt.Printf("%8s %12s %12s %7s %10s\n", "t", "offered", "achieved", "cores", "p99")
	for _, p := range res.Points {
		bar := ""
		for i := 0; i < p.Cores; i++ {
			bar += "#"
		}
		fmt.Printf("%8v %9.0f/s %9.0f/s %4d %-4s %8v\n",
			p.T, p.OfferedRPS, p.AchievedRPS, p.Cores, bar, p.P99)
	}
	fmt.Println()
	fmt.Printf("peak achieved:        %.0f requests/s\n", res.PeakAchievedRPS)
	fmt.Printf("core-seconds used:    %.4f (static would use %.4f)\n",
		res.CoreSeconds, 4*(time.Duration(len(res.Points))*5*time.Millisecond).Seconds())
	fmt.Printf("flow-group migrations: %d (%d flows, %d in-flight frames re-homed)\n",
		res.Migrations, res.FlowsMigrated, res.FramesRehomed)
	fmt.Printf("NIC-edge drops:       %d\n", res.Drops)
	fmt.Println()
	fmt.Println("control plane log:")
	for _, e := range res.Log {
		fmt.Printf("  %10v  %-8s -> %d threads\n", time.Duration(e.At), e.Action, e.Threads)
	}
}
