// Memcached: the paper's §5.5 headline — the same memcached clone served
// by the IX dataplane and by the tuned Linux kernel model, loaded by a
// mutilate-style generator with the Facebook USR workload, side by side.
package main

import (
	"fmt"
	"time"

	"ix"
)

func main() {
	fmt.Println("memcached USR workload: IX (6 cores) vs Linux (8 cores)")
	fmt.Printf("%-8s %12s %12s %12s %12s %10s\n",
		"system", "offered", "achieved", "avg", "p99", "kernel%")
	for _, sys := range []struct {
		name  string
		arch  ix.Arch
		cores int
		batch int
	}{
		{"Linux", ix.ArchLinux, 8, 0},
		{"IX", ix.ArchIX, 6, ix.DefaultBatchBound},
	} {
		for _, target := range []float64{200_000, 400_000, 800_000, 1_400_000} {
			res := ix.RunMemcached(ix.MemcSetup{
				ServerArch:  sys.arch,
				ServerCores: sys.cores,
				BatchBound:  sys.batch,
				Workload:    ix.USR,
				TargetRPS:   target,
				ClientHosts: 10,
				ClientCores: 2,
				Warmup:      4 * time.Millisecond,
				Window:      12 * time.Millisecond,
			})
			fmt.Printf("%-8s %12.0f %12.0f %12v %12v %9.1f%%\n",
				sys.name, target, res.AchievedRPS,
				res.AgentMean.Round(time.Microsecond),
				res.AgentP99.Round(time.Microsecond),
				res.ServerKernelShare*100)
		}
	}
	fmt.Println("\npaper: IX improves throughput 3.6x at the 500µs SLA on USR,")
	fmt.Println("shifting CPU time from ~75% kernel (Linux) to <10% (IX).")
}
