// Multicore: flow-consistent, synchronization-free scaling (§4.4). An IX
// server fans incoming flows across elastic threads purely via RSS; this
// example prints the per-thread packet counts and batch behaviour to show
// the shared-nothing fan-out, then compares 1/2/4/8-thread throughput.
package main

import (
	"fmt"
	"time"

	"ix"
)

func main() {
	fmt.Println("RSS fan-out across elastic threads (echo, 64B, n=64)")
	cluster := ix.NewCluster(7)
	cluster.AddHost("server", ix.HostSpec{
		Arch: ix.ArchIX, Cores: 8, Factory: ix.EchoServer(9000, 64),
	})
	server := cluster.IXServer(0)
	m := ix.NewEchoMetrics()
	for i := 0; i < 6; i++ {
		cluster.AddHost("client", ix.HostSpec{
			Arch: ix.ArchLinux, Cores: 4,
			Factory: ix.EchoClient(ix.EchoClientConfig{
				ServerIP: server.IP(), Port: 9000, MsgSize: 64,
				Rounds: 64, Conns: 8, Metrics: m,
			}),
		})
	}
	cluster.Start()
	cluster.Run(20 * time.Millisecond)
	m.Running = false
	fmt.Printf("  total: %d msgs\n", m.Msgs.Total())
	for i := 0; i < server.Threads(); i++ {
		et := server.Thread(i)
		fmt.Printf("  thread %d: rx=%7d tx=%7d cycles=%7d conns=%d\n",
			i, et.RxPackets, et.TxPackets, et.Cycles, et.Stack().TCP().ConnCount())
	}

	fmt.Println("\nthroughput vs elastic threads:")
	for _, cores := range []int{1, 2, 4, 8} {
		res := ix.RunEcho(ix.EchoSetup{
			ServerArch: ix.ArchIX, ServerCores: cores, ServerPorts: 4,
			ClientArch: ix.ArchLinux, ClientHosts: 8, ClientCores: 4,
			ConnsPerThread: 8, Rounds: 64, MsgSize: 64,
			Warmup: 4 * time.Millisecond, Window: 10 * time.Millisecond,
		})
		fmt.Printf("  %d threads: %8.0f msgs/s (kernel/msg %v)\n",
			cores, res.MsgsPerSec, res.KernelPerMsg)
	}
}
