// Batching: the §6 adaptive-batching study (Fig. 6). Sweeps the batch
// bound B and shows that bounded, adaptive batching improves throughput
// under load without a latency penalty when idle — the paper's point that
// batching "only occurs in the presence of congestion".
package main

import (
	"fmt"
	"time"

	"ix"
)

func main() {
	fmt.Println("adaptive batching: echo 64B, 2 elastic threads, varying B")
	fmt.Printf("%6s %14s %14s %12s\n", "B", "low-load p99", "high-load tput", "mean batch")
	for _, b := range []int{1, 2, 8, 16, 64} {
		low := ix.RunEcho(ix.EchoSetup{
			ServerArch: ix.ArchIX, ServerCores: 2, BatchBound: b,
			ClientArch: ix.ArchLinux, ClientHosts: 1, ClientCores: 1,
			ConnsPerThread: 1, MsgSize: 64,
			Warmup: 2 * time.Millisecond, Window: 8 * time.Millisecond,
		})
		high := ix.RunEcho(ix.EchoSetup{
			ServerArch: ix.ArchIX, ServerCores: 2, BatchBound: b,
			ClientArch: ix.ArchLinux, ClientHosts: 8, ClientCores: 4,
			ConnsPerThread: 8, Rounds: 256, MsgSize: 64,
			Warmup: 3 * time.Millisecond, Window: 8 * time.Millisecond,
		})
		fmt.Printf("%6d %14v %12.2fM/s %12.1f\n",
			b, low.RTTp99, high.MsgsPerSec/1e6, high.MeanBatch)
	}
	fmt.Println("\npaper: larger B improves throughput ~29% (B=1→16) and does")
	fmt.Println("not hurt tail latency at low load; B≥16 maximizes throughput.")
}
