module ix

go 1.24
