package nicsim

import "ix/internal/wire"

// DefaultRSSKey is the canonical Microsoft RSS verification key, the same
// default the Intel 82599 and ixgbe use.
var DefaultRSSKey = [40]byte{
	0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2,
	0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
	0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4,
	0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
	0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
}

// Toeplitz computes the 32-bit Toeplitz hash of input under key, exactly
// as receive-side scaling hardware does: for every set bit of the input,
// XOR in the 32-bit window of the key starting at that bit position.
func Toeplitz(key []byte, input []byte) uint32 {
	var result uint32
	// window is the leftmost 32 bits of the key, shifted as we consume
	// input bits.
	window := uint32(key[0])<<24 | uint32(key[1])<<16 | uint32(key[2])<<8 | uint32(key[3])
	next := 4 // next key byte to shift in
	bitsLeft := 0
	var pending byte
	for _, b := range input {
		for bit := 7; bit >= 0; bit-- {
			if b&(1<<uint(bit)) != 0 {
				result ^= window
			}
			// Shift the window left by one, pulling in the next key bit.
			if bitsLeft == 0 {
				if next < len(key) {
					pending = key[next]
				} else {
					pending = 0
				}
				next++
				bitsLeft = 8
			}
			window = window<<1 | uint32(pending>>7)
			pending <<= 1
			bitsLeft--
		}
	}
	return result
}

// rssTable is the byte-indexed Toeplitz lookup table for the 12-byte
// TCP/UDP IPv4 tuple. The Toeplitz hash is linear over input bits, so the
// hash is the XOR of one per-position table entry per input byte — this is
// how software RSS implementations (e.g. DPDK) avoid the bit-serial loop
// on the classification hot path.
type rssTable [12][256]uint32

// keyWindow returns the 32-bit window of key starting at bit offset off
// (zero-padded beyond the key), exactly as the bit-serial hash shifts it.
func keyWindow(key []byte, off int) uint32 {
	bo, r := off/8, uint(off%8)
	var v uint64
	for i := 0; i < 5; i++ {
		v <<= 8
		if bo+i < len(key) {
			v |= uint64(key[bo+i])
		}
	}
	return uint32(v >> (8 - r))
}

// buildRSSTable precomputes the per-byte contribution table for key.
func buildRSSTable(key []byte) *rssTable {
	var t rssTable
	for pos := 0; pos < 12; pos++ {
		for bit := 0; bit < 8; bit++ {
			w := keyWindow(key, pos*8+bit)
			mask := 0x80 >> uint(bit)
			for v := 0; v < 256; v++ {
				if v&mask != 0 {
					t[pos][v] ^= w
				}
			}
		}
	}
	return &t
}

// hash computes the Toeplitz hash of the flow tuple via table lookups;
// identical to RSSHash(key, k) for the table's key.
func (t *rssTable) hash(k wire.FlowKey) uint32 {
	return t[0][byte(k.SrcIP>>24)] ^
		t[1][byte(k.SrcIP>>16)] ^
		t[2][byte(k.SrcIP>>8)] ^
		t[3][byte(k.SrcIP)] ^
		t[4][byte(k.DstIP>>24)] ^
		t[5][byte(k.DstIP>>16)] ^
		t[6][byte(k.DstIP>>8)] ^
		t[7][byte(k.DstIP)] ^
		t[8][byte(k.SrcPort>>8)] ^
		t[9][byte(k.SrcPort)] ^
		t[10][byte(k.DstPort>>8)] ^
		t[11][byte(k.DstPort)]
}

// RSSHash computes the Toeplitz hash of a TCP/UDP IPv4 flow the way the
// 82599 concatenates the tuple: srcIP, dstIP, srcPort, dstPort, all in
// network byte order.
func RSSHash(key []byte, k wire.FlowKey) uint32 {
	var in [12]byte
	in[0] = byte(k.SrcIP >> 24)
	in[1] = byte(k.SrcIP >> 16)
	in[2] = byte(k.SrcIP >> 8)
	in[3] = byte(k.SrcIP)
	in[4] = byte(k.DstIP >> 24)
	in[5] = byte(k.DstIP >> 16)
	in[6] = byte(k.DstIP >> 8)
	in[7] = byte(k.DstIP)
	in[8] = byte(k.SrcPort >> 8)
	in[9] = byte(k.SrcPort)
	in[10] = byte(k.DstPort >> 8)
	in[11] = byte(k.DstPort)
	return Toeplitz(key, in[:])
}
