package nicsim

import (
	"testing"
	"testing/quick"
	"time"

	"ix/internal/fabric"
	"ix/internal/sim"
	"ix/internal/wire"
)

// TestToeplitzKnownVectors checks against the Microsoft RSS verification
// suite values (the same vectors the 82599 datasheet references).
func TestToeplitzKnownVectors(t *testing.T) {
	cases := []struct {
		src, dst     wire.IPv4
		sport, dport uint16
		want         uint32
	}{
		// From the Microsoft RSS test suite (IPv4 with TCP ports).
		{wire.Addr4(66, 9, 149, 187), wire.Addr4(161, 142, 100, 80), 2794, 1766, 0x51ccc178},
		{wire.Addr4(199, 92, 111, 2), wire.Addr4(65, 69, 140, 83), 14230, 4739, 0xc626b0ea},
		{wire.Addr4(24, 19, 198, 95), wire.Addr4(12, 22, 207, 184), 12898, 38024, 0x5c2b394a},
		{wire.Addr4(38, 27, 205, 30), wire.Addr4(209, 142, 163, 6), 48228, 2217, 0xafc7327f},
		{wire.Addr4(153, 39, 163, 191), wire.Addr4(202, 188, 127, 2), 44251, 1303, 0x10e828a2},
	}
	for _, c := range cases {
		k := wire.FlowKey{SrcIP: c.src, DstIP: c.dst, SrcPort: c.sport, DstPort: c.dport, Proto: wire.ProtoTCP}
		got := RSSHash(DefaultRSSKey[:], k)
		if got != c.want {
			t.Errorf("RSSHash(%v) = %#x, want %#x", k, got, c.want)
		}
	}
}

// TestRSSFlowConsistency: all packets of one flow map to one queue.
func TestRSSFlowConsistency(t *testing.T) {
	f := func(src, dst uint32, sport, dport uint16) bool {
		k := wire.FlowKey{SrcIP: wire.IPv4(src), DstIP: wire.IPv4(dst),
			SrcPort: sport, DstPort: dport, Proto: wire.ProtoTCP}
		a := RSSHash(DefaultRSSKey[:], k)
		b := RSSHash(DefaultRSSKey[:], k)
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func buildTCPFrame(dst wire.MAC, key wire.FlowKey) []byte {
	f := make([]byte, wire.EthHdrLen+wire.IPv4HdrLen+wire.TCPHdrLen)
	(&wire.EthHeader{Dst: dst, Src: wire.MAC{1}, EtherType: wire.EtherTypeIPv4}).Marshal(f)
	iph := wire.IPv4Header{TotalLen: uint16(len(f) - wire.EthHdrLen), TTL: 64, Proto: wire.ProtoTCP,
		Src: key.SrcIP, Dst: key.DstIP}
	iph.Marshal(f[wire.EthHdrLen:])
	th := wire.TCPHeader{SrcPort: key.SrcPort, DstPort: key.DstPort, WScale: -1}
	th.Marshal(f[wire.EthHdrLen+wire.IPv4HdrLen:])
	return f
}

func newTestNIC(t *testing.T, queues int) (*sim.Engine, *NIC, *fabric.Link) {
	t.Helper()
	eng := sim.NewEngine(1)
	n := New(eng, wire.MAC{2, 0, 0, 0, 0, 1}, Config{Queues: queues, RingSize: 8})
	l := fabric.NewLink(eng, 10*fabric.Gbps, time.Microsecond)
	n.AttachPort(l.Port(0))
	return eng, n, l
}

func TestNICClassifiesByRSS(t *testing.T) {
	eng, n, l := newTestNIC(t, 4)
	counts := make([]uint64, 4)
	for q := 0; q < 4; q++ {
		q := q
		n.RxQueue(q).OnFrame = func() { counts[q]++ }
	}
	for p := 0; p < 64; p++ {
		key := wire.FlowKey{SrcIP: wire.Addr4(10, 0, 0, 3), DstIP: wire.Addr4(10, 0, 0, 1),
			SrcPort: uint16(40000 + p), DstPort: 80, Proto: wire.ProtoTCP}
		want := n.RSSQueue(key)
		l.Port(1).Send(fabric.NewFrame(buildTCPFrame(n.MAC, key)))
		eng.Run()
		// The frame must be in the queue RSS selected.
		got := -1
		for q := 0; q < 4; q++ {
			if n.RxQueue(q).Len() > 0 {
				got = q
			}
		}
		if got != want {
			t.Fatalf("flow port %d landed on queue %d, RSSQueue says %d", 40000+p, got, want)
		}
		n.RxQueue(got).Take(8)
		n.RxQueue(got).PostDescriptors(8)
	}
}

func TestRingOverflowDrops(t *testing.T) {
	eng, n, l := newTestNIC(t, 1)
	key := wire.FlowKey{SrcIP: wire.Addr4(10, 0, 0, 3), DstIP: wire.Addr4(10, 0, 0, 1),
		SrcPort: 4000, DstPort: 80, Proto: wire.ProtoTCP}
	for i := 0; i < 12; i++ { // ring size 8
		l.Port(1).Send(fabric.NewFrame(buildTCPFrame(n.MAC, key)))
	}
	eng.Run()
	if n.RxQueue(0).Len() != 8 {
		t.Fatalf("ring holds %d", n.RxQueue(0).Len())
	}
	if n.RxDrops != 4 {
		t.Fatalf("drops = %d, want 4", n.RxDrops)
	}
	// Consuming and reposting descriptors restores delivery.
	n.RxQueue(0).Take(8)
	n.RxQueue(0).PostDescriptors(8)
	l.Port(1).Send(fabric.NewFrame(buildTCPFrame(n.MAC, key)))
	eng.Run()
	if n.RxQueue(0).Len() != 1 {
		t.Fatal("delivery did not resume")
	}
}

// TestRingOverflowReleasesPooledFrames: every frame the NIC edge drops
// (ring overflow on deliver, descriptor exhaustion on Inject, TX ring
// starvation on Post) must go back to its sender's pool — the
// frame-conservation contract the fault-injection chaos tests assert
// cluster-wide.
func TestRingOverflowReleasesPooledFrames(t *testing.T) {
	eng, n, l := newTestNIC(t, 1)
	pool := fabric.NewFramePool()
	key := wire.FlowKey{SrcIP: wire.Addr4(10, 0, 0, 3), DstIP: wire.Addr4(10, 0, 0, 1),
		SrcPort: 4000, DstPort: 80, Proto: wire.ProtoTCP}
	mk := func() *fabric.Frame {
		raw := buildTCPFrame(n.MAC, key)
		f := pool.Get(len(raw))
		copy(f.Data, raw)
		return f
	}
	for i := 0; i < 20; i++ { // ring size 8: 12 drops
		l.Port(1).Send(mk())
	}
	eng.Run()
	if n.RxDrops == 0 {
		t.Fatal("no overflow drops")
	}
	if got := pool.InUse(); got != n.RxQueue(0).Len() {
		t.Fatalf("pool holds %d frames, ring holds %d — dropped frames not released",
			got, n.RxQueue(0).Len())
	}
	// Inject into a descriptor-exhausted queue also releases.
	before := pool.InUse()
	if n.RxQueue(0).Inject(mk()) {
		t.Fatal("inject succeeded without descriptors")
	}
	if pool.InUse() != before {
		t.Fatal("inject drop did not release the frame")
	}
	// Draining the ring releases the survivors (the OS model's copy-out).
	for _, f := range n.RxQueue(0).Take(8) {
		f.Release()
	}
	if pool.InUse() != 0 {
		t.Fatalf("%d frames leaked", pool.InUse())
	}
}

func TestInterruptModeration(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, wire.MAC{2}, Config{Queues: 1, RingSize: 64, ITR: 10 * time.Microsecond})
	l := fabric.NewLink(eng, 10*fabric.Gbps, time.Microsecond)
	n.AttachPort(l.Port(0))
	q := n.RxQueue(0)
	q.Mode = ModeInterrupt
	intrs := 0
	q.OnInterrupt = func() {
		intrs++
		q.Take(64)
		q.PostDescriptors(64)
		q.EnableInterrupt()
	}
	q.EnableInterrupt()
	key := wire.FlowKey{SrcIP: wire.Addr4(1, 1, 1, 1), DstIP: wire.Addr4(2, 2, 2, 2),
		SrcPort: 9, DstPort: 80, Proto: wire.ProtoTCP}
	// 20 frames over 20µs: with a 10µs ITR, at most ~4 interrupts.
	for i := 0; i < 20; i++ {
		at := eng.Now().Add(time.Duration(i) * time.Microsecond)
		f := buildTCPFrame(n.MAC, key)
		eng.At(at, func() { l.Port(1).Send(fabric.NewFrame(f)) })
	}
	eng.Run()
	if intrs == 0 || intrs > 5 {
		t.Fatalf("interrupts = %d, want 1..5 (moderated)", intrs)
	}
	if n.Interrupts != uint64(intrs) {
		t.Fatalf("counter mismatch: %d vs %d", n.Interrupts, intrs)
	}
}

func TestRETARebalance(t *testing.T) {
	_, n, _ := newTestNIC(t, 4)
	n.SpreadRETA(2)
	for p := 0; p < 128; p++ {
		key := wire.FlowKey{SrcIP: wire.Addr4(9, 9, 9, 9), DstIP: wire.Addr4(1, 1, 1, 1),
			SrcPort: uint16(p * 131), DstPort: 80, Proto: wire.ProtoTCP}
		if q := n.RSSQueue(key); q > 1 {
			t.Fatalf("RETA routed to inactive queue %d", q)
		}
	}
	n.SpreadRETA(4)
	seen := map[int]bool{}
	for p := 0; p < 512; p++ {
		key := wire.FlowKey{SrcIP: wire.Addr4(9, 9, 9, 9), DstIP: wire.Addr4(1, 1, 1, 1),
			SrcPort: uint16(p * 131), DstPort: 80, Proto: wire.ProtoTCP}
		seen[n.RSSQueue(key)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("after rebalance, queues used = %v", seen)
	}
}

func TestTxCompletion(t *testing.T) {
	eng, n, _ := newTestNIC(t, 1)
	completed := 0
	n.TxQueue(0).OnComplete = func(c int) { completed += c }
	if !n.TxQueue(0).Post(fabric.NewFrame(make([]byte, 100))) {
		t.Fatal("post failed")
	}
	eng.Run()
	if completed != 1 {
		t.Fatalf("completions = %d", completed)
	}
	if n.TxQueue(0).InFlight() != 0 {
		t.Fatal("descriptor not returned")
	}
}

// TestPlanRepartition: the minimal-move RETA plan touches only the
// buckets that must move, lands on a balanced table, and never references
// a queue outside [0, active).
func TestPlanRepartition(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, wire.MAC{2, 0, 0, 0, 0, 1}, Config{Queues: 4})
	n.SpreadRETA(1) // everything on queue 0

	apply := func(active int) []RetaChange {
		plan := n.PlanRepartition(active)
		for _, ch := range plan {
			if int(ch.To) >= active {
				t.Fatalf("plan for active=%d routes bucket %d to queue %d", active, ch.Bucket, ch.To)
			}
			if n.RETA()[ch.Bucket] != ch.From {
				t.Fatalf("plan From mismatch at bucket %d", ch.Bucket)
			}
			n.SetRETAEntry(ch.Bucket, int(ch.To))
		}
		return plan
	}

	// Growing 1→2 must move about half the buckets, no more.
	plan := apply(2)
	if len(plan) != RetaSize/2 {
		t.Fatalf("1→2 moved %d buckets, want %d", len(plan), RetaSize/2)
	}
	// Growing 2→3: only ~1/3 of buckets move (round-robin rewrite would
	// churn ~2/3).
	plan = apply(3)
	if len(plan) < RetaSize/4 || len(plan) > RetaSize/2 {
		t.Fatalf("2→3 moved %d buckets", len(plan))
	}
	apply(4)

	// Balanced within one at every step.
	count := map[uint8]int{}
	for _, q := range n.RETA() {
		count[q]++
	}
	for q, c := range count {
		if c != RetaSize/4 {
			t.Fatalf("queue %d owns %d buckets after 4-way repartition", q, c)
		}
	}

	// Shrinking 4→3 moves exactly the revoked queue's buckets.
	plan = apply(3)
	if len(plan) != RetaSize/4 {
		t.Fatalf("4→3 moved %d buckets, want %d", len(plan), RetaSize/4)
	}
	for _, ch := range plan {
		if ch.From != 3 {
			t.Fatalf("4→3 moved bucket %d away from surviving queue %d", ch.Bucket, ch.From)
		}
	}
}

// TestExtractInject: migration drain preserves order and descriptor
// accounting.
func TestExtractInject(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, wire.MAC{2, 0, 0, 0, 0, 2}, Config{Queues: 2, RingSize: 8})
	src, dst := n.RxQueue(0), n.RxQueue(1)
	for i := 0; i < 6; i++ {
		src.deliver(&fabric.Frame{Data: []byte{byte(i)}})
	}
	moved := src.Extract(func(f *fabric.Frame) bool { return f.Data[0]%2 == 0 })
	if len(moved) != 3 || src.Len() != 3 {
		t.Fatalf("extract split %d/%d", len(moved), src.Len())
	}
	if src.DescAvail() != 8-3 {
		t.Fatalf("source descriptors not recycled: %d", src.DescAvail())
	}
	for _, f := range moved {
		if !dst.Inject(f) {
			t.Fatal("inject dropped with free descriptors")
		}
	}
	got := dst.Take(10)
	for i, f := range got {
		if f.Data[0] != byte(2*i) {
			t.Fatalf("order broken at %d: %v", i, f.Data)
		}
	}
	// Take does not recycle descriptors — the driver re-posts them with
	// PostDescriptors (the doorbell model) — so the injects' descriptors
	// stay consumed.
	if dst.DescAvail() != 8-3 {
		t.Fatalf("dest descriptors after take: %d", dst.DescAvail())
	}
}

// TestIsTCPSYN: the fixed-offset handshake classifier recognizes SYN and
// SYN-ACK frames and nothing else.
func TestIsTCPSYN(t *testing.T) {
	frame := func(proto byte, flags byte) []byte {
		f := make([]byte, wire.EthHdrLen+wire.IPv4HdrLen+20)
		f[12], f[13] = 0x08, 0x00 // EtherType IPv4
		ip := f[wire.EthHdrLen:]
		ip[0] = 0x45
		ip[9] = proto
		f[wire.EthHdrLen+wire.IPv4HdrLen+13] = flags
		return f
	}
	cases := []struct {
		name string
		data []byte
		want bool
	}{
		{"syn", frame(wire.ProtoTCP, wire.TCPSyn), true},
		{"syn-ack", frame(wire.ProtoTCP, wire.TCPSyn|wire.TCPAck), true},
		{"pure-ack", frame(wire.ProtoTCP, wire.TCPAck), false},
		{"data-psh", frame(wire.ProtoTCP, wire.TCPAck|wire.TCPPsh), false},
		{"udp", frame(wire.ProtoUDP, wire.TCPSyn), false},
		{"short", []byte{0x08, 0x00}, false},
	}
	for _, c := range cases {
		if got := IsTCPSYN(c.data); got != c.want {
			t.Errorf("%s: IsTCPSYN = %v, want %v", c.name, got, c.want)
		}
	}
	nonIP := frame(wire.ProtoTCP, wire.TCPSyn)
	nonIP[12] = 0x86 // not IPv4
	if IsTCPSYN(nonIP) {
		t.Error("non-IPv4 frame classified as SYN")
	}
}
