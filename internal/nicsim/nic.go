// Package nicsim models a multi-queue 10 GbE NIC in the mold of the Intel
// 82599 that IX requires: per-queue RX/TX descriptor rings, receive-side
// scaling via a real Toeplitz hash and a 128-entry redirection table
// (RETA), interrupt moderation (ITR), and the PCIe descriptor-doorbell
// behaviour whose coalescing the paper discusses in §6. A NIC may own
// several physical ports (the bonded 4x10GbE server configuration);
// transmit picks the member port by flow hash so a flow's frames stay
// ordered.
package nicsim

import (
	"time"

	"ix/internal/fabric"
	"ix/internal/sim"
	"ix/internal/wire"
)

// RetaSize is the 82599's redirection table size.
const RetaSize = 128

// DefaultRingSize is the default RX/TX descriptor ring depth.
const DefaultRingSize = 512

// Config parameterizes a NIC.
type Config struct {
	// Queues is the number of RX/TX queue pairs (one per hardware
	// thread in IX).
	Queues int
	// RingSize is the descriptor ring depth per queue.
	RingSize int
	// ITR is the interrupt throttle interval: a queue in interrupt mode
	// raises at most one interrupt per ITR. Zero means no moderation.
	ITR time.Duration
}

// QueueMode selects how a queue signals the OS.
type QueueMode int

// Queue signalling modes.
const (
	// ModePoll delivers no interrupts; the OS polls (IX dataplane).
	ModePoll QueueMode = iota
	// ModeInterrupt raises moderated interrupts (Linux NAPI).
	ModeInterrupt
)

// RxQueue is one receive queue: a descriptor ring holding received frames
// until the OS consumes them.
type RxQueue struct {
	nic *NIC
	ID  int

	// ring is a head-indexed deque: consumed frames advance head, arrivals
	// append, and the backing array is reset (and reused) whenever the
	// queue drains. Steady-state push/pop does not allocate.
	ring     []*fabric.Frame
	head     int
	ringSize int
	// descAvail is the number of posted (free) receive descriptors.
	// When it reaches zero, arriving frames are dropped — exactly the
	// "queues build up only at the NIC edge" behaviour of §3.
	descAvail int

	Mode QueueMode
	// OnFrame is called (in poll mode) whenever a frame lands in an
	// empty ring, so an idle elastic thread can wake. May be nil.
	OnFrame func()
	// OnInterrupt is the interrupt handler (interrupt mode).
	OnInterrupt func()

	intrArmed   bool // interrupts enabled (NAPI re-enables after poll)
	intrPending bool
	lastIntr    sim.Time

	// Stats.
	RxFrames uint64
	RxDrops  uint64
}

// Len returns the number of frames waiting in the ring.
func (q *RxQueue) Len() int { return len(q.ring) - q.head }

// DescAvail returns the number of posted free descriptors.
func (q *RxQueue) DescAvail() int { return q.descAvail }

// PostDescriptors replenishes n receive descriptors (bounded by ring
// size). Each call models one PCIe doorbell write; the caller charges its
// cost. Returns the number actually posted.
//
//ix:hotpath
func (q *RxQueue) PostDescriptors(n int) int {
	room := q.ringSize - q.descAvail - q.Len()
	if n > room {
		n = room
	}
	if n > 0 {
		q.descAvail += n
	}
	return n
}

// Take removes up to n frames from the ring (the poll step (1) of the
// run-to-completion cycle, or a NAPI budget-bounded poll). The returned
// slice aliases the ring storage and is valid only until the next frame
// arrival: consumers process (and Release) the batch synchronously within
// the same simulation event.
//
//ix:hotpath
func (q *RxQueue) Take(n int) []*fabric.Frame {
	if avail := q.Len(); n > avail {
		n = avail
	}
	out := q.ring[q.head : q.head+n : q.head+n]
	q.head += n
	if q.head == len(q.ring) {
		q.ring = q.ring[:0]
		q.head = 0
	}
	return out
}

// Extract removes, preserving arrival order, every waiting frame that
// matches, returning their descriptors to the free pool. It is the
// migration drain: the dataplane pulls a quiesced flow group's in-flight
// frames out of the source ring before re-homing them.
func (q *RxQueue) Extract(match func(*fabric.Frame) bool) []*fabric.Frame {
	var out []*fabric.Frame
	live := q.ring[q.head:]
	rest := live[:0]
	for _, f := range live {
		if match(f) {
			out = append(out, f)
		} else {
			rest = append(rest, f)
		}
	}
	q.ring = q.ring[: q.head+len(rest) : cap(q.ring)]
	q.descAvail += len(out)
	return out
}

// push appends an arrived frame, reusing drained backing storage.
//
//ix:hotpath
func (q *RxQueue) push(f *fabric.Frame) {
	q.ring = append(q.ring, f)
}

// Inject appends a migrated frame to the ring tail, consuming a
// descriptor. Because the RETA entry is flipped before the source ring is
// drained, the destination ring holds no frames of the migrating flow
// group yet, so tail insertion preserves intra-flow order. Reports false
// (frame dropped, released and counted) when no descriptor is free.
//
//ix:hotpath
func (q *RxQueue) Inject(f *fabric.Frame) bool {
	if q.descAvail <= 0 || q.Len() >= q.ringSize {
		q.RxDrops++
		q.nic.RxDrops++
		f.Release()
		return false
	}
	q.descAvail--
	q.push(f)
	if q.Mode == ModePoll && q.Len() == 1 && q.OnFrame != nil {
		q.OnFrame()
	}
	return true
}

// EnableInterrupt arms the queue's interrupt (NAPI completion).
func (q *RxQueue) EnableInterrupt() {
	q.intrArmed = true
	if len(q.ring) > 0 {
		q.fireInterrupt()
	}
}

// DisableInterrupt masks the queue's interrupt (NAPI poll start).
func (q *RxQueue) DisableInterrupt() { q.intrArmed = false }

//ix:hotpath
func (q *RxQueue) deliver(f *fabric.Frame) {
	if q.descAvail <= 0 || q.Len() >= q.ringSize {
		q.RxDrops++
		q.nic.RxDrops++
		f.Release()
		return
	}
	q.descAvail--
	q.push(f)
	q.RxFrames++
	q.nic.RxFrames++
	switch q.Mode {
	case ModePoll:
		if q.Len() == 1 && q.OnFrame != nil {
			q.OnFrame()
		}
	case ModeInterrupt:
		if q.intrArmed {
			q.fireInterrupt()
		}
	}
}

// fireInterrupt schedules the handler respecting interrupt moderation.
func (q *RxQueue) fireInterrupt() {
	if q.intrPending || q.OnInterrupt == nil {
		return
	}
	q.intrPending = true
	now := q.nic.eng.Now()
	at := now
	if q.nic.cfg.ITR > 0 {
		earliest := q.lastIntr.Add(q.nic.cfg.ITR)
		if earliest > at {
			at = earliest
		}
	}
	q.nic.eng.Call(at, runInterrupt, q)
}

// runInterrupt is the interrupt trampoline (pooled one-shot event).
func runInterrupt(a any) {
	q := a.(*RxQueue)
	q.intrPending = false
	q.lastIntr = q.nic.eng.Now()
	q.nic.Interrupts++
	q.OnInterrupt()
}

// TxQueue is one transmit descriptor ring. Frames posted here are DMA'd
// to a port at line rate; completion returns descriptors.
type TxQueue struct {
	nic *NIC
	ID  int

	inFlight int
	ringSize int

	// departs is a min-heap of in-flight descriptors' wire-departure
	// times; completions are reclaimed lazily at the next Post/InFlight
	// instead of costing one engine event per frame. A heap (not a FIFO)
	// because a bonded NIC spreads one queue's frames across member
	// ports with independent serialization clocks, so departure times
	// are not monotone in post order.
	departs []sim.Time

	// OnComplete, if set, is called when a posted frame has left the
	// wire (descriptor writeback); IX uses it to free mbufs in the
	// separate completion pass of cycle step (6). Set it before the
	// first Post: queues with a callback use eager completion events.
	OnComplete func(n int)

	TxFrames uint64
	TxDrops  uint64
}

// pushDepart records an in-flight descriptor's departure time.
func (t *TxQueue) pushDepart(at sim.Time) {
	h := t.departs
	i := len(h)
	h = append(h, at)
	for i > 0 {
		parent := (i - 1) >> 1
		if h[parent] <= at {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = at
	t.departs = h
}

// reclaim returns descriptors whose frames have left the wire.
func (t *TxQueue) reclaim() {
	now := t.nic.eng.Now()
	for len(t.departs) > 0 && t.departs[0] <= now {
		h := t.departs
		n := len(h) - 1
		last := h[n]
		h = h[:n]
		if n > 0 {
			i := 0
			for {
				c := i<<1 + 1
				if c >= n {
					break
				}
				if c+1 < n && h[c+1] < h[c] {
					c++
				}
				if h[c] >= last {
					break
				}
				h[i] = h[c]
				i = c
			}
			h[i] = last
		}
		t.departs = h
		t.inFlight--
	}
}

// Post places a frame on the TX ring. It reports false (dropping and
// releasing the frame) if the ring is full — transmit queue starvation,
// which IX's bounded batching is designed to avoid.
func (t *TxQueue) Post(f *fabric.Frame) bool {
	t.reclaim()
	if t.inFlight >= t.ringSize {
		t.TxDrops++
		f.Release()
		return false
	}
	t.inFlight++
	t.TxFrames++
	n := t.nic
	port := n.txPort(f.Data)
	port.Send(f)
	// Completion (descriptor writeback) when serialization finishes:
	// an eager event only when someone listens, lazy reclaim otherwise.
	if t.OnComplete != nil {
		n.eng.Call(port.Busy(), txComplete, t)
	} else {
		t.pushDepart(port.Busy())
	}
	return true
}

// txComplete is the descriptor-writeback trampoline (pooled one-shot
// event).
func txComplete(a any) {
	t := a.(*TxQueue)
	t.inFlight--
	if t.OnComplete != nil {
		t.OnComplete(1)
	}
}

// InFlight returns the number of un-completed descriptors.
func (t *TxQueue) InFlight() int {
	t.reclaim()
	return t.inFlight
}

// NIC is the device: queues, RSS state, and its physical ports.
type NIC struct {
	eng *sim.Engine
	MAC wire.MAC
	cfg Config

	ports []*fabric.Port
	rx    []*RxQueue
	tx    []*TxQueue

	rssKey   [40]byte
	rssTable *rssTable
	reta     [RetaSize]uint8

	// Stats.
	RxFrames   uint64
	RxDrops    uint64
	Interrupts uint64
}

// New creates a NIC with the given MAC and configuration.
func New(eng *sim.Engine, mac wire.MAC, cfg Config) *NIC {
	if cfg.Queues <= 0 {
		cfg.Queues = 1
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	n := &NIC{eng: eng, MAC: mac, cfg: cfg, rssKey: DefaultRSSKey}
	n.rssTable = buildRSSTable(n.rssKey[:])
	for i := 0; i < cfg.Queues; i++ {
		rq := &RxQueue{nic: n, ID: i, ringSize: cfg.RingSize}
		rq.descAvail = cfg.RingSize
		n.rx = append(n.rx, rq)
		n.tx = append(n.tx, &TxQueue{nic: n, ID: i, ringSize: cfg.RingSize})
	}
	// Default RETA: round-robin across all queues.
	for i := 0; i < RetaSize; i++ {
		n.reta[i] = uint8(i % cfg.Queues)
	}
	return n
}

// AttachPort connects a physical port (one side of a link) to the NIC.
func (n *NIC) AttachPort(p *fabric.Port) {
	p.Attach(n)
	n.ports = append(n.ports, p)
}

// Ports returns the number of attached physical ports.
func (n *NIC) Ports() int { return len(n.ports) }

// RxQueue returns receive queue i.
func (n *NIC) RxQueue(i int) *RxQueue { return n.rx[i] }

// TxQueue returns transmit queue i.
func (n *NIC) TxQueue(i int) *TxQueue { return n.tx[i] }

// Queues returns the number of queue pairs.
func (n *NIC) Queues() int { return n.cfg.Queues }

// SetRETA programs the redirection table: entry i directs hash bucket i to
// the given queue. Used by the control plane to rebalance flow groups when
// elastic threads are added or removed.
func (n *NIC) SetRETA(reta [RetaSize]uint8) {
	for _, q := range reta {
		if int(q) >= n.cfg.Queues {
			panic("nicsim: RETA entry references nonexistent queue")
		}
	}
	n.reta = reta
}

// RETA returns the current redirection table.
func (n *NIC) RETA() [RetaSize]uint8 { return n.reta }

// SpreadRETA programs the table to spread buckets round-robin over queues
// [0, active).
func (n *NIC) SpreadRETA(active int) {
	if active <= 0 {
		active = 1
	}
	if active > n.cfg.Queues {
		active = n.cfg.Queues
	}
	var r [RetaSize]uint8
	for i := 0; i < RetaSize; i++ {
		r[i] = uint8(i % active)
	}
	n.reta = r
}

// SetRETAEntry repoints one redirection-table bucket — the hardware
// operation behind a single flow-group migration (§4.4): after the write,
// every new frame of the bucket's flows lands on the new queue.
func (n *NIC) SetRETAEntry(bucket, queue int) {
	if queue < 0 || queue >= n.cfg.Queues {
		panic("nicsim: RETA entry references nonexistent queue")
	}
	n.reta[bucket&(RetaSize-1)] = uint8(queue)
}

// RetaChange is one planned bucket reassignment: the flow group hashing
// to Bucket moves from queue From to queue To.
type RetaChange struct {
	Bucket   int
	From, To uint8
}

// PlanRepartition computes a minimal-move reassignment of the redirection
// table onto queues [0, active): buckets owned by revoked queues are
// spread over the survivors, then buckets move from the most- to the
// least-loaded queue until counts are balanced within one. Unlike a
// round-robin rewrite, flow groups that do not need to move stay put, so
// the dataplane migrates only the returned buckets. The plan is not
// applied; the caller flips each entry with SetRETAEntry at its migration
// point.
func (n *NIC) PlanRepartition(active int) []RetaChange {
	if active <= 0 {
		active = 1
	}
	if active > n.cfg.Queues {
		active = n.cfg.Queues
	}
	work := n.reta
	count := make([]int, active)
	for _, q := range work {
		if int(q) < active {
			count[q]++
		}
	}
	var changes []RetaChange
	move := func(b, to int) {
		from := work[b]
		if int(from) < active {
			count[from]--
		}
		work[b] = uint8(to)
		count[to]++
		changes = append(changes, RetaChange{Bucket: b, From: from, To: uint8(to)})
	}
	argmin := func() int {
		best := 0
		for i, c := range count {
			if c < count[best] {
				best = i
			}
		}
		return best
	}
	// Orphaned buckets (owner queue revoked) go to the least-loaded
	// survivor.
	for b, q := range work {
		if int(q) >= active {
			move(b, argmin())
		}
	}
	// Even out: repeatedly shift the lowest-numbered bucket of the most-
	// loaded queue to the least-loaded one.
	for {
		lo, hi := 0, 0
		for i, c := range count {
			if c < count[lo] {
				lo = i
			}
			if c > count[hi] {
				hi = i
			}
		}
		if count[hi]-count[lo] <= 1 {
			break
		}
		for b, q := range work {
			if int(q) == hi {
				move(b, lo)
				break
			}
		}
	}
	return changes
}

// RSSQueue returns the queue the NIC would select for a flow — used both
// by delivery and by client stacks that probe ephemeral ports so replies
// land on the connecting thread's queue (§4.4).
func (n *NIC) RSSQueue(k wire.FlowKey) int {
	return int(n.reta[n.RSSBucket(k)])
}

// RSSBucket returns the redirection-table bucket (flow group, §4.4) a
// flow hashes to — the unit of control-plane flow migration.
func (n *NIC) RSSBucket(k wire.FlowKey) int {
	return int(n.rssTable.hash(k) & (RetaSize - 1))
}

// FrameBucket returns the RSS bucket of a raw frame, or ok=false for
// frames outside RSS classification (ARP, ICMP, non-IPv4).
func (n *NIC) FrameBucket(data []byte) (int, bool) {
	k, ok := n.frameKey(data)
	if !ok {
		return 0, false
	}
	return n.RSSBucket(k), true
}

// Deliver implements fabric.Endpoint: frame arrival from any member port.
func (n *NIC) Deliver(f *fabric.Frame) {
	q := n.classify(f.Data)
	n.rx[q].deliver(f)
}

// classify picks the RX queue for a frame: RSS for TCP/UDP over IPv4,
// queue 0 for everything else (ARP, ICMP) — matching hardware defaults.
func (n *NIC) classify(data []byte) int {
	k, ok := n.frameKey(data)
	if !ok {
		return 0
	}
	return n.RSSQueue(k)
}

// frameKey extracts the RSS flow key of a frame; ok=false for frames the
// hardware would not hash (non-IPv4, non-TCP/UDP). The parse reads the
// fixed header fields directly — RSS hardware does not validate IP
// checksums; the receiving stack still does.
func (n *NIC) frameKey(data []byte) (wire.FlowKey, bool) {
	if len(data) < wire.EthHdrLen+wire.IPv4HdrLen+4 {
		return wire.FlowKey{}, false
	}
	if uint16(data[12])<<8|uint16(data[13]) != wire.EtherTypeIPv4 {
		return wire.FlowKey{}, false
	}
	ip := data[wire.EthHdrLen:]
	if ip[0] != 0x45 { // version 4, IHL 5 (no options anywhere in the testbed)
		return wire.FlowKey{}, false
	}
	proto := ip[9]
	if proto != wire.ProtoTCP && proto != wire.ProtoUDP {
		return wire.FlowKey{}, false
	}
	tr := ip[wire.IPv4HdrLen:]
	return wire.FlowKey{
		SrcIP:   wire.IPv4(uint32(ip[12])<<24 | uint32(ip[13])<<16 | uint32(ip[14])<<8 | uint32(ip[15])),
		DstIP:   wire.IPv4(uint32(ip[16])<<24 | uint32(ip[17])<<16 | uint32(ip[18])<<8 | uint32(ip[19])),
		SrcPort: uint16(tr[0])<<8 | uint16(tr[1]),
		DstPort: uint16(tr[2])<<8 | uint16(tr[3]),
		Proto:   proto,
	}, true
}

// IsTCPSYN reports whether a raw frame is a TCP handshake segment (SYN
// or SYN-ACK), using the same fixed-offset parse as RSS classification.
// OS models use it to charge handshake frames the connection-working-set
// miss floor instead of the full DDIO curve: accept-path state (listener,
// SYN backlog, fresh PCB) is compact and stays LLC-resident across an
// establishment burst, so a batch of SYNs amortizes the per-frame miss
// penalty that data segments pay at large connection counts.
func IsTCPSYN(data []byte) bool {
	// Flags byte sits at a fixed offset: Ethernet + minimal IPv4 + 13.
	const off = wire.EthHdrLen + wire.IPv4HdrLen + 13
	if len(data) <= off {
		return false
	}
	if uint16(data[12])<<8|uint16(data[13]) != wire.EtherTypeIPv4 {
		return false
	}
	ip := data[wire.EthHdrLen:]
	if ip[0] != 0x45 || ip[9] != wire.ProtoTCP {
		return false
	}
	return data[off]&wire.TCPSyn != 0
}

// txPort selects the member port for an outgoing frame: the only port for
// single-port NICs, otherwise by L3+L4 flow hash so each flow stays on one
// member (mirroring the switch-side bond hash).
func (n *NIC) txPort(data []byte) *fabric.Port {
	if len(n.ports) == 0 {
		panic("nicsim: NIC has no ports")
	}
	if len(n.ports) == 1 {
		return n.ports[0]
	}
	q := n.classify(data)
	// Spread flows over member ports using the RSS hash of the frame,
	// keeping per-flow ordering.
	return n.ports[q%len(n.ports)]
}
