package nicsim

import (
	"testing"

	"ix/internal/fabric"
	"ix/internal/sim"
	"ix/internal/wire"
)

// RX ring push/pop is the per-frame NIC-edge path: once the ring backing
// and frame are in hand, moving frames through must not allocate.

func allocTestNIC() (*sim.Engine, *NIC) {
	eng := sim.NewEngine(1)
	n := New(eng, wire.MAC{2, 0, 0, 0, 0, 1}, Config{Queues: 1})
	return eng, n
}

func TestZeroAllocRxRingPushPop(t *testing.T) {
	_, n := allocTestNIC()
	q := n.RxQueue(0)
	q.Mode = ModePoll
	f := fabric.NewFrame(make([]byte, 64))
	// Warm the ring backing.
	for i := 0; i < 32; i++ {
		q.Inject(f)
	}
	q.Take(32)
	q.PostDescriptors(32)
	allocs := testing.AllocsPerRun(1000, func() {
		q.Inject(f)
		q.Take(1)
		q.PostDescriptors(1)
	})
	if allocs != 0 {
		t.Fatalf("RX ring push/pop allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkRxRingPushPop(b *testing.B) {
	_, n := allocTestNIC()
	q := n.RxQueue(0)
	q.Mode = ModePoll
	f := fabric.NewFrame(make([]byte, 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Inject(f)
		q.Take(1)
		q.PostDescriptors(1)
	}
}

// BenchmarkRSSClassify measures the per-frame RSS classification (fast
// header parse + table-driven Toeplitz).
func BenchmarkRSSClassify(b *testing.B) {
	_, n := allocTestNIC()
	k := wire.FlowKey{
		SrcIP: wire.Addr4(10, 0, 0, 1), DstIP: wire.Addr4(10, 0, 0, 2),
		SrcPort: 3333, DstPort: 80, Proto: wire.ProtoTCP,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = n.RSSBucket(k)
	}
}

// TestRSSTableMatchesBitSerial pins the table-driven Toeplitz to the
// bit-serial reference for a spread of tuples.
func TestRSSTableMatchesBitSerial(t *testing.T) {
	_, n := allocTestNIC()
	for i := 0; i < 4096; i++ {
		k := wire.FlowKey{
			SrcIP:   wire.IPv4(uint32(i) * 2654435761),
			DstIP:   wire.IPv4(uint32(i)*40503 + 7),
			SrcPort: uint16(i * 31),
			DstPort: uint16(i*131 + 1),
			Proto:   wire.ProtoTCP,
		}
		want := int(RSSHash(DefaultRSSKey[:], k) & (RetaSize - 1))
		if got := n.RSSBucket(k); got != want {
			t.Fatalf("tuple %v: table bucket %d != bit-serial %d", k, got, want)
		}
	}
}
