// Package libix is the user-level library of §4.3: it abstracts the
// low-level batched syscall/event-condition ABI behind a libevent-style
// callback API (app.Handler). Like the paper's libix, it:
//
//   - coalesces multiple application writes into a single sendv system
//     call per batching round, preserving stream order across partial
//     accepts;
//   - tracks outgoing buffers in the transmit vector and re-issues
//     trimmed writes when the `sent` event condition reports window
//     space, so send-window policy lives entirely in user space;
//   - enforces a maximum pending-send byte limit (the paper's "very
//     basic" buffer sizing policy);
//   - owns a per-connection zero-copy TX arena: Send appends the message
//     into pooled arena chunks (one warm-cache copy, no allocation), the
//     transmit vector and the kernel's retransmission queue reference
//     arena bytes in place, and the `sent` event condition's release
//     count — cumulative-ACK-driven — reclaims chunks. This is the
//     paper's §3.3 ownership contract ("may not be modified until the
//     sent event condition signals the peer's ACK") made explicit;
//   - recycles the kernel's read-only RX mbufs via batched recv_done
//     calls as soon as the handler returns.
package libix

import (
	"fmt"
	"time"

	"ix/internal/app"
	"ix/internal/core"
	"ix/internal/mem"
	"ix/internal/wire"
)

// Tunables of the user-level library.
const (
	// MaxPendingSend is the per-connection pending-send byte limit.
	MaxPendingSend = 1 << 20
	// dispatchCost is the per-event user-level dispatch overhead.
	dispatchCost = 18 * time.Nanosecond
	// copyPerByte is the arena-append cost (ns/byte): the single
	// warm-cache copy of the message into the TX arena, the same copy
	// the pre-arena path charged for its libevent-compatibility buffer —
	// what the arena removes is the per-message heap allocation (a real
	// wall-clock cost, never part of the simulated cost model), so the
	// charge is unchanged.
	copyPerByte = 0.06
)

// Program adapts an app.Factory to the dataplane's UserProgram contract.
// Use it as core.Config.User.
func Program(factory app.Factory) func(api *core.UserAPI, thread, threads int) core.UserProgram {
	// One cookie table per dataplane, shared by every elastic thread's
	// program: kernel cookies must survive EvMigrated re-homing across
	// threads (the destination thread resolves the migrated flow's
	// cookie), and all threads of one host execute within a single
	// simulation shard, so the shared table needs no locking.
	tab := &connTable{}
	return func(api *core.UserAPI, thread, threads int) core.UserProgram {
		if n := api.ExpectedConns(); n > 0 && cap(tab.slots) == 0 {
			tab.slots = make([]*conn, 0, n)
		}
		p := &program{
			api:     api,
			txchunk: api.TxChunks(),
			tab:     tab,
			first:   thread == 0,
			conns:   make(map[uint64]*conn),
		}
		p.handler = factory(p, thread, threads)
		p.sendReady, _ = p.handler.(app.SendReadyHandler)
		return p
	}
}

// connTable maps the kernel's compact uint64 cookies to user
// connections. The kernel carries only the 8-byte id in its
// per-connection state — no interface box, nothing for the GC to chase
// — and the table resolves it back to the descriptor on each event.
// Ids are slot index + 1, so 0 keeps its "no cookie" meaning; freed
// slots recycle LIFO for cache locality and bounded growth.
type connTable struct {
	slots []*conn
	free  []uint32
}

// grant registers c and returns its cookie id.
//
//ix:hotpath
func (t *connTable) grant(c *conn) uint64 {
	if n := len(t.free); n > 0 {
		idx := t.free[n-1]
		t.free = t.free[:n-1]
		t.slots[idx] = c
		return uint64(idx) + 1
	}
	t.slots = append(t.slots, c)
	return uint64(len(t.slots))
}

// lookup resolves a cookie id; 0 and stale ids return nil.
//
//ix:hotpath
func (t *connTable) lookup(id uint64) *conn {
	if id == 0 || id > uint64(len(t.slots)) {
		return nil
	}
	return t.slots[id-1]
}

// revoke clears the slot and frees the id for reuse.
func (t *connTable) revoke(id uint64) {
	if id == 0 || id > uint64(len(t.slots)) {
		return
	}
	t.slots[id-1] = nil
	t.free = append(t.free, uint32(id-1))
}

// program is the per-elastic-thread event loop.
type program struct {
	api     *core.UserAPI
	txchunk *mem.TxChunkPool
	handler app.Handler
	// sendReady is the handler's optional writable-again extension
	// (nil when not implemented).
	sendReady app.SendReadyHandler
	// tab is the dataplane-shared cookie table (see Program); first
	// marks thread 0's program, which accounts the table's footprint so
	// the shared bytes are charged exactly once per host.
	tab   *connTable
	first bool
	conns map[uint64]*conn
	dirty     []*conn // connections with work to flush this round
	// waiters are connections whose send-ready condition is armed, in
	// registration order (delivery order is therefore deterministic).
	waiters []*conn
}

// conn is the user-level connection state: the zero-copy TX arena, the
// transmit vector over it, and receive recycling state.
type conn struct {
	p      *program
	handle uint64
	cookie any

	// arena holds the connection's outgoing bytes; txq entries and the
	// kernel's retransmission segments reference it in place. Released
	// by the sent event condition's cumulative-ACK count.
	arena mem.TxArena

	// Transmit vector: arena views not yet accepted by the kernel.
	// txHead is the consumption cursor. On full drain the backing is
	// released unless it is a single slot (the request-response steady
	// state, kept so the steady cycle stays allocation-free) — an idle
	// connection retains at most one entry of transmit state, which is
	// what keeps the Fig. 4 bytes/conn budget flat as the population
	// grows (DESIGN.md, "Per-connection memory budget"). txHead/txBytes
	// are int32: both are bounded by MaxPendingSend, and the narrower
	// fields pack the descriptor.
	txq     [][]byte
	txHead  int32
	txBytes int32

	// Receive recycling accumulated during this round; the batch issued
	// to recv_done is consumed within the same cycle and the backing is
	// released with it, so only connections with in-flight receives pin
	// recycle state.
	rdBufs  []*mem.Mbuf
	rdBytes int32

	issued  bool // a sendv is in the current batch
	stalled bool // last sendv was trimmed; wait for a sent event
	// closing: Close was called with bytes still in the txq; the close
	// syscall is deferred until the transmit vector drains, so queued
	// data reaches the wire ahead of the FIN.
	closing bool
	closed  bool
	// wantReady: the send-ready condition is armed (the conn sits in
	// p.waiters); blockedPool refines it — the short Send hit chunk-pool
	// exhaustion, so delivery also waits for the pool to reopen.
	wantReady   bool
	blockedPool bool
	inDirty     bool
}

var _ app.Conn = (*conn)(nil)

// Send appends b to the connection's TX arena and schedules a coalesced
// sendv over the arena views. No allocation happens: the bytes take one
// warm-cache copy into a pooled chunk and are then referenced in place
// by the transmit vector and, once transmitted, the kernel's
// retransmission queue — immutable until the sent event condition's
// release count passes them (the §3.3 ownership contract). Bytes beyond
// the pending-send limit (or an exhausted chunk pool) are dropped and
// reported short, pushing the buffering decision back to the
// application; only accepted bytes are charged.
//
//ix:hotpath
func (c *conn) Send(b []byte) int {
	if c.closed || c.closing {
		return 0
	}
	want := len(b)
	room := MaxPendingSend - int(c.txBytes)
	if room <= 0 {
		c.armSendReady(false)
		return 0
	}
	if len(b) > room {
		b = b[:room]
	}
	accepted := 0
	pool := false
	for len(b) > 0 {
		v := c.arena.Append(b)
		if len(v) == 0 {
			pool = true
			break // chunk pool exhausted: accept what we have
		}
		c.pushTx(v)
		accepted += len(v)
		b = b[len(v):]
	}
	if accepted < want {
		c.armSendReady(pool)
	}
	if accepted == 0 {
		return 0
	}
	c.p.api.Charge(time.Duration(float64(accepted) * copyPerByte))
	c.txBytes += int32(accepted)
	c.markDirty()
	return accepted
}

// pushTx appends an arena view to the transmit vector, merging it with
// the tail entry when contiguous (consecutive appends to one chunk), so
// small messages coalesce into single scatter-gather entries. The
// merged entry keeps the chunk-extending capacity TxChunk.Append hands
// out, so any number of consecutive views coalesce, not just pairs.
//
//ix:hotpath
func (c *conn) pushTx(v []byte) {
	if n := len(c.txq); n > int(c.txHead) {
		tail := c.txq[n-1]
		if len(tail) > 0 && cap(tail) >= len(tail)+len(v) {
			ext := tail[:len(tail)+len(v)]
			if &ext[len(tail)] == &v[0] {
				c.txq[n-1] = ext
				return
			}
		}
	}
	c.txq = append(c.txq, v)
}

// armSendReady arms the writable-again condition after a short Send; a
// no-op unless the thread's handler implements app.SendReadyHandler.
// pool marks that the shortfall came from chunk-pool exhaustion rather
// than the pending-send budget.
//
//ix:hotpath
func (c *conn) armSendReady(pool bool) {
	if pool {
		c.blockedPool = true
	}
	if c.p.sendReady == nil || c.wantReady {
		return
	}
	c.wantReady = true
	c.p.waiters = append(c.p.waiters, c)
}

// Unsent reports bytes not yet accepted by the dataplane.
func (c *conn) Unsent() int { return int(c.txBytes) }

// Close requests an orderly close after pending data drains: when the
// transmit vector still holds bytes, the close syscall — which would
// sequence the FIN at sndNxt, ahead of them — is deferred until the
// sent event condition drains the vector. Further writes are rejected.
func (c *conn) Close() {
	if c.closed || c.closing {
		return
	}
	if c.txBytes > 0 {
		c.closing = true
		return
	}
	c.closed = true
	c.p.api.Close(c.handle)
}

// finishClose issues the deferred close syscall once the transmit
// vector has fully drained.
func (c *conn) finishClose() {
	if !c.closing || c.closed || c.txBytes > 0 {
		return
	}
	c.closing = false
	c.closed = true
	c.p.api.Close(c.handle)
}

// Abort resets the connection immediately.
func (c *conn) Abort() {
	if c.closed {
		return
	}
	c.closing = false
	c.closed = true
	c.p.api.Abort(c.handle)
}

// Cookie returns the application tag.
func (c *conn) Cookie() any { return c.cookie }

// SetCookie tags the connection.
func (c *conn) SetCookie(v any) { c.cookie = v }

//ix:hotpath
func (c *conn) markDirty() {
	if !c.inDirty {
		c.inDirty = true
		c.p.dirty = append(c.p.dirty, c)
	}
}

// program implements app.Env.

// Now returns virtual nanoseconds.
func (p *program) Now() int64 { return p.api.Now() }

// Charge accounts application CPU time.
func (p *program) Charge(d time.Duration) { p.api.Charge(d) }

// Elapsed returns CPU time charged in the current cycle.
func (p *program) Elapsed() time.Duration { return p.api.Elapsed() }

// Thread returns the elastic thread index.
func (p *program) Thread() int { return p.api.Thread() }

// Listen binds this thread's stack to port.
func (p *program) Listen(port uint16) error { return p.api.Listen(port) }

// After schedules fn on the thread's timer service.
func (p *program) After(d time.Duration, fn func()) { p.api.After(d, fn) }

// newConn builds a connection with its arena wired to the thread pool.
func (p *program) newConn(handle uint64, cookie any) *conn {
	c := &conn{p: p, handle: handle, cookie: cookie}
	c.arena.Init(p.txchunk)
	return c
}

// Connect initiates a connection; OnConnected reports the outcome.
func (p *program) Connect(dst wire.IPv4, port uint16, cookie any) error {
	c := p.newConn(0, cookie)
	p.api.Connect(p.tab.grant(c), dst, port)
	return nil
}

// Run is the ring-3 phase of the run-to-completion cycle: consume return
// codes, consume event conditions, run handlers, then coalesce and issue
// this round's batched system calls.
func (p *program) Run(api *core.UserAPI, events []core.Event, results []core.SyscallResult) {
	// 1. Return codes from the previous batch.
	for i := range results {
		p.processResult(&results[i])
	}
	// 2. Event conditions.
	for i := range events {
		p.processEvent(&events[i])
	}
	// 3. Writable-again deliveries: after results reopened pending-send
	// budgets and events released arena chunks, wake armed writers whose
	// shortfall has actually cleared (so every wake makes progress).
	if len(p.waiters) > 0 {
		p.fireSendReady()
	}
	// 4. Coalesced flush: one sendv per dirty connection, plus batched
	// recv_done recycling.
	for _, c := range p.dirty {
		c.inDirty = false
		if c.rdBytes > 0 || len(c.rdBufs) > 0 {
			api.RecvDone(c.handle, int(c.rdBytes), c.rdBufs)
			c.rdBytes = 0
			// The issued batch is consumed by the kernel phase of this
			// same cycle — before the next user round can append — so a
			// one-slot backing (the request-response steady state) is
			// reused in place and the steady cycle stays allocation-free.
			// Larger batch backings are released: an idle connection pins
			// at most one pointer slot of recycle state.
			if cap(c.rdBufs) > 1 {
				c.rdBufs = nil
			} else {
				c.rdBufs = c.rdBufs[:0]
			}
		}
		if c.txBytes > 0 && !c.issued && !c.stalled && !c.closed && c.handle != 0 {
			c.issued = true
			api.Sendv(c.handle, c.txq[c.txHead:])
		}
	}
	p.dirty = p.dirty[:0]
}

func (p *program) processResult(r *core.SyscallResult) {
	switch r.Type {
	case core.SysConnect:
		c := p.tab.lookup(r.Cookie)
		if c == nil {
			return
		}
		if r.Err != nil {
			// The kernel also appends an EvConnected(false) condition for
			// a failed connect; that event — processed later this same
			// Run — delivers the single OnConnected callback and releases
			// the arena. Reporting here too would double the failure.
			return
		}
		c.handle = r.Handle
		p.conns[c.handle] = c
		// Outcome arrives via the connected event condition.
	case core.SysSendv:
		c, ok := p.conns[r.Handle]
		if !ok {
			return
		}
		c.issued = false
		accepted := r.N
		if r.Err != nil {
			accepted = 0
		}
		c.consumeTx(accepted)
		if c.txBytes > 0 {
			// Trimmed by the sliding window: wait for `sent` to
			// re-issue (§4.3).
			c.stalled = true
		}
		// A deferred orderly close fires once the vector drains.
		c.finishClose()
	}
}

// fireSendReady delivers the writable-again condition to armed writers
// whose shortfall cleared: pending-send budget reopened and — for
// pool-blocked writers — the thread's chunk pool can allocate again.
// Writers still blocked re-queue in order, so delivery stays FIFO and
// deterministic and no wake is a spin.
func (p *program) fireSendReady() {
	w := p.waiters
	p.waiters = nil
	for i, c := range w {
		w[i] = nil
		if c.p != p {
			// Migrated away mid-round; the new home re-armed it.
			continue
		}
		if c.closed || c.closing {
			c.wantReady = false
			c.blockedPool = false
			continue
		}
		if MaxPendingSend-c.txBytes <= 0 || (c.blockedPool && !p.txchunk.Ready()) {
			p.waiters = append(p.waiters, c)
			continue
		}
		c.wantReady = false
		c.blockedPool = false
		p.api.Charge(dispatchCost)
		p.sendReady.OnSendReady(c)
	}
}

func (c *conn) consumeTx(n int) {
	c.txBytes -= int32(n)
	if c.txBytes < 0 {
		c.txBytes = 0
	}
	head := int(c.txHead)
	for n > 0 && head < len(c.txq) {
		e := c.txq[head]
		if len(e) <= n {
			n -= len(e)
			c.txq[head] = nil
			head++
		} else {
			c.txq[head] = e[n:]
			n = 0
		}
	}
	if head == len(c.txq) {
		// Fully drained. A one-entry backing — the request-response
		// steady state, where contiguous views merge into a single
		// scatter-gather entry — is kept so the steady cycle stays
		// allocation-free; anything larger was grown by a bulk or
		// flow-controlled send and is released, bounding what an idle
		// connection retains to one slice header's backing.
		if cap(c.txq) > 1 {
			c.txq = nil
		} else {
			c.txq = c.txq[:0]
		}
		head = 0
	} else if head >= 32 && head*2 >= len(c.txq) {
		// A flow-controlled connection that never fully drains would
		// otherwise grow the dead prefix forever; compact the live
		// entries to the front.
		k := copy(c.txq, c.txq[head:])
		for i := k; i < len(c.txq); i++ {
			c.txq[i] = nil
		}
		c.txq = c.txq[:k]
		head = 0
	}
	c.txHead = int32(head)
}

func (p *program) processEvent(ev *core.Event) {
	p.api.Charge(dispatchCost)
	switch ev.Type {
	case core.EvKnock:
		c := p.newConn(ev.Handle, nil)
		p.conns[ev.Handle] = c
		// Accept with the conn's table id as kernel cookie so later
		// events resolve with one bounds-checked indexed load (the
		// Table 1 cookie design, minus the interface box).
		p.api.Accept(ev.Handle, p.tab.grant(c))
		p.handler.OnAccept(c)
	case core.EvConnected:
		c := p.resolve(ev)
		if c == nil {
			return
		}
		if !ev.Outcome {
			delete(p.conns, c.handle)
			p.tab.revoke(ev.Cookie)
			c.closed = true
			c.arena.ReleaseAll()
			p.handler.OnConnected(c, false)
			return
		}
		p.handler.OnConnected(c, true)
	case core.EvRecv:
		c := p.resolve(ev)
		if c == nil {
			// Connection vanished (e.g. aborted earlier in this batch);
			// still recycle the buffer.
			if ev.Mbuf != nil {
				ev.Mbuf.Unref()
			}
			return
		}
		p.handler.OnRecv(c, ev.Data)
		// Recycle as soon as the handler returns (copying semantics);
		// batched into one recv_done per round.
		c.rdBytes += int32(ev.Bytes)
		if ev.Mbuf != nil {
			c.rdBufs = append(c.rdBufs, ev.Mbuf)
		}
		c.markDirty()
	case core.EvSent:
		c := p.resolve(ev)
		if c == nil {
			return
		}
		// tx_sent: the ACK-driven reclamation step. The kernel dropped
		// its references to these arena bytes when the cumulative ACK
		// trimmed its retransmission queue; advance the release cursor,
		// returning drained chunks to the pool.
		if ev.Released > 0 {
			c.arena.Release(ev.Released)
		}
		if c.stalled && ev.Window > 0 {
			c.stalled = false
			if c.txBytes > 0 {
				c.markDirty()
			}
		}
		p.handler.OnSent(c, ev.Bytes)
	case core.EvEOF:
		c := p.resolve(ev)
		if c == nil {
			return
		}
		p.handler.OnEOF(c)
	case core.EvDead:
		c := p.resolve(ev)
		if c == nil {
			return
		}
		delete(p.conns, c.handle)
		p.tab.revoke(ev.Cookie)
		c.closed = true
		// The kernel dropped the connection's retransmission queue with
		// the flow; nothing references the arena any more.
		c.arena.ReleaseAll()
		// Recycle receive buffers still pending from this batch locally:
		// the handle is already revoked, so a recv_done for it would be
		// rejected before the kernel's own Unref loop ran (leaking the
		// delivery references taken for EvRecv).
		for _, b := range c.rdBufs {
			b.Unref()
		}
		c.rdBufs = nil
		c.rdBytes = 0
		p.handler.OnClosed(c)
	case core.EvTimer:
		if ev.Fn != nil {
			ev.Fn()
		}
	case core.EvMigrated:
		// The id resolves in the shared table regardless of which
		// thread's program granted it — the property that makes
		// cross-thread flow migration safe under compact cookies.
		c := p.tab.lookup(ev.Cookie)
		if c == nil {
			return
		}
		// Re-home the connection: it now belongs to this thread's
		// program and namespace.
		if c.p != nil && c.p != p {
			delete(c.p.conns, c.handle)
			c.inDirty = false
		}
		c.p = p
		c.handle = ev.Handle
		c.issued = false
		p.conns[ev.Handle] = c
		if c.txBytes > 0 || c.rdBytes > 0 || len(c.rdBufs) > 0 {
			c.markDirty()
		}
		// An armed send-ready condition migrates with the connection:
		// the old program's waiter entry goes stale (c.p moved on) and
		// the new home registers its own.
		if c.wantReady {
			c.wantReady = false
			if p.sendReady != nil {
				c.armSendReady(c.blockedPool)
			} else {
				c.blockedPool = false
			}
		}
	}
}

// resolve finds the libix conn for an event via its cookie (fast path) or
// the handle map.
//
//ix:hotpath
func (p *program) resolve(ev *core.Event) *conn {
	if c := p.tab.lookup(ev.Cookie); c != nil {
		return c
	}
	return p.conns[ev.Handle]
}

// String aids debugging.
func (c *conn) String() string {
	return fmt.Sprintf("libix.conn(h=%#x pend=%d stalled=%v)", c.handle, c.txBytes, c.stalled)
}
