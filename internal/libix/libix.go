// Package libix is the user-level library of §4.3: it abstracts the
// low-level batched syscall/event-condition ABI behind a libevent-style
// callback API (app.Handler). Like the paper's libix, it:
//
//   - coalesces multiple application writes into a single sendv system
//     call per batching round, preserving stream order across partial
//     accepts;
//   - tracks outgoing buffers in the transmit vector and re-issues
//     trimmed writes when the `sent` event condition reports window
//     space, so send-window policy lives entirely in user space;
//   - enforces a maximum pending-send byte limit (the paper's "very
//     basic" buffer sizing policy);
//   - owns a per-connection zero-copy TX arena: Send appends the message
//     into pooled arena chunks (one warm-cache copy, no allocation), the
//     transmit vector and the kernel's retransmission queue reference
//     arena bytes in place, and the `sent` event condition's release
//     count — cumulative-ACK-driven — reclaims chunks. This is the
//     paper's §3.3 ownership contract ("may not be modified until the
//     sent event condition signals the peer's ACK") made explicit;
//   - recycles the kernel's read-only RX mbufs via batched recv_done
//     calls as soon as the handler returns.
package libix

import (
	"fmt"
	"time"

	"ix/internal/app"
	"ix/internal/core"
	"ix/internal/mem"
	"ix/internal/wire"
)

// Tunables of the user-level library.
const (
	// MaxPendingSend is the per-connection pending-send byte limit.
	MaxPendingSend = 1 << 20
	// dispatchCost is the per-event user-level dispatch overhead.
	dispatchCost = 18 * time.Nanosecond
	// copyPerByte is the arena-append cost (ns/byte): the single
	// warm-cache copy of the message into the TX arena, the same copy
	// the pre-arena path charged for its libevent-compatibility buffer —
	// what the arena removes is the per-message heap allocation (a real
	// wall-clock cost, never part of the simulated cost model), so the
	// charge is unchanged.
	copyPerByte = 0.06
)

// Program adapts an app.Factory to the dataplane's UserProgram contract.
// Use it as core.Config.User.
func Program(factory app.Factory) func(api *core.UserAPI, thread, threads int) core.UserProgram {
	return func(api *core.UserAPI, thread, threads int) core.UserProgram {
		p := &program{
			api:     api,
			txchunk: api.TxChunks(),
			conns:   make(map[uint64]*conn),
		}
		p.handler = factory(p, thread, threads)
		p.sendReady, _ = p.handler.(app.SendReadyHandler)
		return p
	}
}

// program is the per-elastic-thread event loop.
type program struct {
	api     *core.UserAPI
	txchunk *mem.TxChunkPool
	handler app.Handler
	// sendReady is the handler's optional writable-again extension
	// (nil when not implemented).
	sendReady app.SendReadyHandler
	conns     map[uint64]*conn
	dirty     []*conn // connections with work to flush this round
	// waiters are connections whose send-ready condition is armed, in
	// registration order (delivery order is therefore deterministic).
	waiters []*conn
}

// conn is the user-level connection state: the zero-copy TX arena, the
// transmit vector over it, and receive recycling state.
type conn struct {
	p      *program
	handle uint64
	cookie any

	// arena holds the connection's outgoing bytes; txq entries and the
	// kernel's retransmission segments reference it in place. Released
	// by the sent event condition's cumulative-ACK count.
	arena mem.TxArena

	// Transmit vector: arena views not yet accepted by the kernel.
	// txHead is the consumption cursor; the backing array resets to the
	// front whenever the vector drains, so steady state does not
	// allocate.
	txq     [][]byte
	txHead  int
	txBytes int
	issued  bool // a sendv is in the current batch
	stalled bool // last sendv was trimmed; wait for a sent event
	// closing: Close was called with bytes still in the txq; the close
	// syscall is deferred until the transmit vector drains, so queued
	// data reaches the wire ahead of the FIN.
	closing bool
	closed  bool
	// wantReady: the send-ready condition is armed (the conn sits in
	// p.waiters); blockedPool refines it — the short Send hit chunk-pool
	// exhaustion, so delivery also waits for the pool to reopen.
	wantReady   bool
	blockedPool bool

	// Receive recycling accumulated during this round. rdBufs and
	// rdSpare ping-pong: the batch issued to recv_done is consumed (and
	// its entries dropped) within the same cycle, so the two backings
	// alternate allocation-free.
	rdBytes int
	rdBufs  []*mem.Mbuf
	rdSpare []*mem.Mbuf

	inDirty bool
}

var _ app.Conn = (*conn)(nil)

// Send appends b to the connection's TX arena and schedules a coalesced
// sendv over the arena views. No allocation happens: the bytes take one
// warm-cache copy into a pooled chunk and are then referenced in place
// by the transmit vector and, once transmitted, the kernel's
// retransmission queue — immutable until the sent event condition's
// release count passes them (the §3.3 ownership contract). Bytes beyond
// the pending-send limit (or an exhausted chunk pool) are dropped and
// reported short, pushing the buffering decision back to the
// application; only accepted bytes are charged.
//
//ix:hotpath
func (c *conn) Send(b []byte) int {
	if c.closed || c.closing {
		return 0
	}
	want := len(b)
	room := MaxPendingSend - c.txBytes
	if room <= 0 {
		c.armSendReady(false)
		return 0
	}
	if len(b) > room {
		b = b[:room]
	}
	accepted := 0
	pool := false
	for len(b) > 0 {
		v := c.arena.Append(b)
		if len(v) == 0 {
			pool = true
			break // chunk pool exhausted: accept what we have
		}
		c.pushTx(v)
		accepted += len(v)
		b = b[len(v):]
	}
	if accepted < want {
		c.armSendReady(pool)
	}
	if accepted == 0 {
		return 0
	}
	c.p.api.Charge(time.Duration(float64(accepted) * copyPerByte))
	c.txBytes += accepted
	c.markDirty()
	return accepted
}

// pushTx appends an arena view to the transmit vector, merging it with
// the tail entry when contiguous (consecutive appends to one chunk), so
// small messages coalesce into single scatter-gather entries. The
// merged entry keeps the chunk-extending capacity TxChunk.Append hands
// out, so any number of consecutive views coalesce, not just pairs.
//
//ix:hotpath
func (c *conn) pushTx(v []byte) {
	if n := len(c.txq); n > c.txHead {
		tail := c.txq[n-1]
		if len(tail) > 0 && cap(tail) >= len(tail)+len(v) {
			ext := tail[:len(tail)+len(v)]
			if &ext[len(tail)] == &v[0] {
				c.txq[n-1] = ext
				return
			}
		}
	}
	c.txq = append(c.txq, v)
}

// armSendReady arms the writable-again condition after a short Send; a
// no-op unless the thread's handler implements app.SendReadyHandler.
// pool marks that the shortfall came from chunk-pool exhaustion rather
// than the pending-send budget.
//
//ix:hotpath
func (c *conn) armSendReady(pool bool) {
	if pool {
		c.blockedPool = true
	}
	if c.p.sendReady == nil || c.wantReady {
		return
	}
	c.wantReady = true
	c.p.waiters = append(c.p.waiters, c)
}

// Unsent reports bytes not yet accepted by the dataplane.
func (c *conn) Unsent() int { return c.txBytes }

// Close requests an orderly close after pending data drains: when the
// transmit vector still holds bytes, the close syscall — which would
// sequence the FIN at sndNxt, ahead of them — is deferred until the
// sent event condition drains the vector. Further writes are rejected.
func (c *conn) Close() {
	if c.closed || c.closing {
		return
	}
	if c.txBytes > 0 {
		c.closing = true
		return
	}
	c.closed = true
	c.p.api.Close(c.handle)
}

// finishClose issues the deferred close syscall once the transmit
// vector has fully drained.
func (c *conn) finishClose() {
	if !c.closing || c.closed || c.txBytes > 0 {
		return
	}
	c.closing = false
	c.closed = true
	c.p.api.Close(c.handle)
}

// Abort resets the connection immediately.
func (c *conn) Abort() {
	if c.closed {
		return
	}
	c.closing = false
	c.closed = true
	c.p.api.Abort(c.handle)
}

// Cookie returns the application tag.
func (c *conn) Cookie() any { return c.cookie }

// SetCookie tags the connection.
func (c *conn) SetCookie(v any) { c.cookie = v }

//ix:hotpath
func (c *conn) markDirty() {
	if !c.inDirty {
		c.inDirty = true
		c.p.dirty = append(c.p.dirty, c)
	}
}

// program implements app.Env.

// Now returns virtual nanoseconds.
func (p *program) Now() int64 { return p.api.Now() }

// Charge accounts application CPU time.
func (p *program) Charge(d time.Duration) { p.api.Charge(d) }

// Elapsed returns CPU time charged in the current cycle.
func (p *program) Elapsed() time.Duration { return p.api.Elapsed() }

// Thread returns the elastic thread index.
func (p *program) Thread() int { return p.api.Thread() }

// Listen binds this thread's stack to port.
func (p *program) Listen(port uint16) error { return p.api.Listen(port) }

// After schedules fn on the thread's timer service.
func (p *program) After(d time.Duration, fn func()) { p.api.After(d, fn) }

// newConn builds a connection with its arena wired to the thread pool.
func (p *program) newConn(handle uint64, cookie any) *conn {
	c := &conn{p: p, handle: handle, cookie: cookie}
	c.arena.Init(p.txchunk)
	return c
}

// Connect initiates a connection; OnConnected reports the outcome.
func (p *program) Connect(dst wire.IPv4, port uint16, cookie any) error {
	c := p.newConn(0, cookie)
	p.api.Connect(c, dst, port)
	return nil
}

// Run is the ring-3 phase of the run-to-completion cycle: consume return
// codes, consume event conditions, run handlers, then coalesce and issue
// this round's batched system calls.
func (p *program) Run(api *core.UserAPI, events []core.Event, results []core.SyscallResult) {
	// 1. Return codes from the previous batch.
	for i := range results {
		p.processResult(&results[i])
	}
	// 2. Event conditions.
	for i := range events {
		p.processEvent(&events[i])
	}
	// 3. Writable-again deliveries: after results reopened pending-send
	// budgets and events released arena chunks, wake armed writers whose
	// shortfall has actually cleared (so every wake makes progress).
	if len(p.waiters) > 0 {
		p.fireSendReady()
	}
	// 4. Coalesced flush: one sendv per dirty connection, plus batched
	// recv_done recycling.
	for _, c := range p.dirty {
		c.inDirty = false
		if c.rdBytes > 0 || len(c.rdBufs) > 0 {
			api.RecvDone(c.handle, c.rdBytes, c.rdBufs)
			c.rdBytes = 0
			// The issued batch is consumed by the kernel phase of this
			// same cycle; ping-pong the backings so the next round's
			// accumulation does not allocate.
			c.rdBufs, c.rdSpare = c.rdSpare[:0], c.rdBufs
		}
		if c.txBytes > 0 && !c.issued && !c.stalled && !c.closed && c.handle != 0 {
			c.issued = true
			api.Sendv(c.handle, c.txq[c.txHead:])
		}
	}
	p.dirty = p.dirty[:0]
}

func (p *program) processResult(r *core.SyscallResult) {
	switch r.Type {
	case core.SysConnect:
		c, ok := r.Cookie.(*conn)
		if !ok {
			return
		}
		if r.Err != nil {
			// The kernel also appends an EvConnected(false) condition for
			// a failed connect; that event — processed later this same
			// Run — delivers the single OnConnected callback and releases
			// the arena. Reporting here too would double the failure.
			return
		}
		c.handle = r.Handle
		p.conns[c.handle] = c
		// Outcome arrives via the connected event condition.
	case core.SysSendv:
		c, ok := p.conns[r.Handle]
		if !ok {
			return
		}
		c.issued = false
		accepted := r.N
		if r.Err != nil {
			accepted = 0
		}
		c.consumeTx(accepted)
		if c.txBytes > 0 {
			// Trimmed by the sliding window: wait for `sent` to
			// re-issue (§4.3).
			c.stalled = true
		}
		// A deferred orderly close fires once the vector drains.
		c.finishClose()
	}
}

// fireSendReady delivers the writable-again condition to armed writers
// whose shortfall cleared: pending-send budget reopened and — for
// pool-blocked writers — the thread's chunk pool can allocate again.
// Writers still blocked re-queue in order, so delivery stays FIFO and
// deterministic and no wake is a spin.
func (p *program) fireSendReady() {
	w := p.waiters
	p.waiters = nil
	for i, c := range w {
		w[i] = nil
		if c.p != p {
			// Migrated away mid-round; the new home re-armed it.
			continue
		}
		if c.closed || c.closing {
			c.wantReady = false
			c.blockedPool = false
			continue
		}
		if MaxPendingSend-c.txBytes <= 0 || (c.blockedPool && !p.txchunk.Ready()) {
			p.waiters = append(p.waiters, c)
			continue
		}
		c.wantReady = false
		c.blockedPool = false
		p.api.Charge(dispatchCost)
		p.sendReady.OnSendReady(c)
	}
}

func (c *conn) consumeTx(n int) {
	c.txBytes -= n
	if c.txBytes < 0 {
		c.txBytes = 0
	}
	for n > 0 && c.txHead < len(c.txq) {
		e := c.txq[c.txHead]
		if len(e) <= n {
			n -= len(e)
			c.txq[c.txHead] = nil
			c.txHead++
		} else {
			c.txq[c.txHead] = e[n:]
			n = 0
		}
	}
	if c.txHead == len(c.txq) {
		c.txq = c.txq[:0]
		c.txHead = 0
	} else if c.txHead >= 32 && c.txHead*2 >= len(c.txq) {
		// A flow-controlled connection that never fully drains would
		// otherwise grow the dead prefix forever; compact the live
		// entries to the front.
		n := copy(c.txq, c.txq[c.txHead:])
		for i := n; i < len(c.txq); i++ {
			c.txq[i] = nil
		}
		c.txq = c.txq[:n]
		c.txHead = 0
	}
}

func (p *program) processEvent(ev *core.Event) {
	p.api.Charge(dispatchCost)
	switch ev.Type {
	case core.EvKnock:
		c := p.newConn(ev.Handle, nil)
		p.conns[ev.Handle] = c
		// Accept with the libix conn as kernel cookie so later events
		// resolve without a map lookup (the Table 1 cookie design).
		p.api.Accept(ev.Handle, c)
		p.handler.OnAccept(c)
	case core.EvConnected:
		c := p.resolve(ev)
		if c == nil {
			return
		}
		if !ev.Outcome {
			delete(p.conns, c.handle)
			c.closed = true
			c.arena.ReleaseAll()
			p.handler.OnConnected(c, false)
			return
		}
		p.handler.OnConnected(c, true)
	case core.EvRecv:
		c := p.resolve(ev)
		if c == nil {
			// Connection vanished (e.g. aborted earlier in this batch);
			// still recycle the buffer.
			if ev.Mbuf != nil {
				ev.Mbuf.Unref()
			}
			return
		}
		p.handler.OnRecv(c, ev.Data)
		// Recycle as soon as the handler returns (copying semantics);
		// batched into one recv_done per round.
		c.rdBytes += ev.Bytes
		if ev.Mbuf != nil {
			c.rdBufs = append(c.rdBufs, ev.Mbuf)
		}
		c.markDirty()
	case core.EvSent:
		c := p.resolve(ev)
		if c == nil {
			return
		}
		// tx_sent: the ACK-driven reclamation step. The kernel dropped
		// its references to these arena bytes when the cumulative ACK
		// trimmed its retransmission queue; advance the release cursor,
		// returning drained chunks to the pool.
		if ev.Released > 0 {
			c.arena.Release(ev.Released)
		}
		if c.stalled && ev.Window > 0 {
			c.stalled = false
			if c.txBytes > 0 {
				c.markDirty()
			}
		}
		p.handler.OnSent(c, ev.Bytes)
	case core.EvEOF:
		c := p.resolve(ev)
		if c == nil {
			return
		}
		p.handler.OnEOF(c)
	case core.EvDead:
		c := p.resolve(ev)
		if c == nil {
			return
		}
		delete(p.conns, c.handle)
		c.closed = true
		// The kernel dropped the connection's retransmission queue with
		// the flow; nothing references the arena any more.
		c.arena.ReleaseAll()
		// Recycle receive buffers still pending from this batch locally:
		// the handle is already revoked, so a recv_done for it would be
		// rejected before the kernel's own Unref loop ran (leaking the
		// delivery references taken for EvRecv).
		for i, b := range c.rdBufs {
			b.Unref()
			c.rdBufs[i] = nil
		}
		c.rdBufs = c.rdBufs[:0]
		c.rdBytes = 0
		p.handler.OnClosed(c)
	case core.EvTimer:
		if ev.Fn != nil {
			ev.Fn()
		}
	case core.EvMigrated:
		c, ok := ev.Cookie.(*conn)
		if !ok {
			return
		}
		// Re-home the connection: it now belongs to this thread's
		// program and namespace.
		if c.p != nil && c.p != p {
			delete(c.p.conns, c.handle)
			c.inDirty = false
		}
		c.p = p
		c.handle = ev.Handle
		c.issued = false
		p.conns[ev.Handle] = c
		if c.txBytes > 0 || c.rdBytes > 0 || len(c.rdBufs) > 0 {
			c.markDirty()
		}
		// An armed send-ready condition migrates with the connection:
		// the old program's waiter entry goes stale (c.p moved on) and
		// the new home registers its own.
		if c.wantReady {
			c.wantReady = false
			if p.sendReady != nil {
				c.armSendReady(c.blockedPool)
			} else {
				c.blockedPool = false
			}
		}
	}
}

// resolve finds the libix conn for an event via its cookie (fast path) or
// the handle map.
func (p *program) resolve(ev *core.Event) *conn {
	if c, ok := ev.Cookie.(*conn); ok {
		return c
	}
	return p.conns[ev.Handle]
}

// String aids debugging.
func (c *conn) String() string {
	return fmt.Sprintf("libix.conn(h=%#x pend=%d stalled=%v)", c.handle, c.txBytes, c.stalled)
}
