package libix

import (
	"testing"
	"time"

	"ix/internal/app"
	"ix/internal/core"
	"ix/internal/fabric"
	"ix/internal/sim"
	"ix/internal/wire"
)

// recorder implements app.Handler, recording everything.
type recorder struct {
	env      app.Env
	accepted []app.Conn
	recvd    map[app.Conn][]byte
	sent     map[app.Conn]int
	closed   int
	onRecv   func(c app.Conn, data []byte)
	onConn   func(c app.Conn, ok bool)
}

func (r *recorder) OnAccept(c app.Conn) { r.accepted = append(r.accepted, c) }
func (r *recorder) OnConnected(c app.Conn, ok bool) {
	if r.onConn != nil {
		r.onConn(c, ok)
	}
}
func (r *recorder) OnRecv(c app.Conn, data []byte) {
	if r.recvd == nil {
		r.recvd = map[app.Conn][]byte{}
	}
	r.recvd[c] = append(r.recvd[c], data...)
	if r.onRecv != nil {
		r.onRecv(c, data)
	}
}
func (r *recorder) OnSent(c app.Conn, n int) {
	if r.sent == nil {
		r.sent = map[app.Conn]int{}
	}
	r.sent[c] += n
}
func (r *recorder) OnEOF(c app.Conn)    { c.Close() }
func (r *recorder) OnClosed(c app.Conn) { r.closed++ }

// pair builds two IX dataplanes running libix programs.
func pair(t *testing.T, serverF, clientF app.Factory) (*sim.Engine, *core.Dataplane, *core.Dataplane) {
	t.Helper()
	eng := sim.NewEngine(3)
	a := core.New(eng, core.Config{
		Name: "a", IP: wire.Addr4(10, 0, 0, 1), MAC: wire.MAC{2, 0, 0, 0, 0, 1},
		Threads: 1, Seed: 1, User: Program(clientF),
	})
	b := core.New(eng, core.Config{
		Name: "b", IP: wire.Addr4(10, 0, 0, 2), MAC: wire.MAC{2, 0, 0, 0, 0, 2},
		Threads: 1, Seed: 2, User: Program(serverF),
	})
	link := fabric.NewLink(eng, 10*fabric.Gbps, 500*time.Nanosecond)
	a.NIC().AttachPort(link.Port(0))
	b.NIC().AttachPort(link.Port(1))
	a.ARP().Learn(b.IP(), b.MAC())
	b.ARP().Learn(a.IP(), a.MAC())
	return eng, a, b
}

// TestEchoAndCoalescing: several Send calls in one handler invocation
// coalesce into a single sendv and arrive in order.
func TestEchoAndCoalescing(t *testing.T) {
	var srvRec, cliRec *recorder
	serverF := func(env app.Env, th, n int) app.Handler {
		_ = env.Listen(80)
		srvRec = &recorder{env: env}
		srvRec.onRecv = func(c app.Conn, data []byte) {
			// Three writes in one round: must coalesce, stay ordered.
			c.Send([]byte("one-"))
			c.Send([]byte("two-"))
			c.Send([]byte("three"))
		}
		return srvRec
	}
	clientF := func(env app.Env, th, n int) app.Handler {
		cliRec = &recorder{env: env}
		cliRec.onConn = func(c app.Conn, ok bool) {
			if !ok {
				t.Error("connect failed")
				return
			}
			c.Send([]byte("go"))
		}
		_ = env.Connect(wire.Addr4(10, 0, 0, 2), 80, nil)
		return cliRec
	}
	eng, a, b := pair(t, serverF, clientF)
	a.Start()
	b.Start()
	eng.RunUntil(sim.Time(5 * time.Millisecond))
	if len(srvRec.accepted) != 1 {
		t.Fatalf("accepted = %d", len(srvRec.accepted))
	}
	var got []byte
	for _, v := range cliRec.recvd {
		got = v
	}
	if string(got) != "one-two-three" {
		t.Fatalf("client received %q", got)
	}
	// The server's TCP stack saw ONE outgoing data segment (coalesced),
	// not three.
	if segs := b.Thread(0).Stack().TCP().SegsOut; segs > 6 {
		t.Fatalf("server emitted %d segments; writes not coalesced", segs)
	}
}

// TestFlowControlReissue: a send bigger than the receive window is
// trimmed by the kernel and re-issued on sent events until delivered.
func TestFlowControlReissue(t *testing.T) {
	const total = 600 << 10 // > 256KB default receive window
	var srvRec *recorder
	serverF := func(env app.Env, th, n int) app.Handler {
		_ = env.Listen(80)
		srvRec = &recorder{env: env}
		return srvRec
	}
	clientF := func(env app.Env, th, n int) app.Handler {
		cli := &recorder{env: env}
		cli.onConn = func(c app.Conn, ok bool) {
			big := make([]byte, total)
			if n := c.Send(big); n != total {
				t.Errorf("libix buffered %d of %d", n, total)
			}
		}
		_ = env.Connect(wire.Addr4(10, 0, 0, 2), 80, nil)
		return cli
	}
	eng, a, b := pair(t, serverF, clientF)
	a.Start()
	b.Start()
	eng.RunUntil(sim.Time(50 * time.Millisecond))
	got := 0
	for _, v := range srvRec.recvd {
		got += len(v)
	}
	if got != total {
		t.Fatalf("server received %d of %d bytes", got, total)
	}
}
