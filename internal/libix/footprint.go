package libix

import (
	"unsafe"

	"ix/internal/mem"
	"ix/internal/memprobe"
)

// Footprint implements the memprobe accounting contract for the
// user-level library: per flow, the connection descriptor plus the
// capacities of its transmit vector and receive-recycling batches and
// the TX arena's pinned chunks. Reported as a layer on top of the TCP
// engine's own tally (core.Dataplane.Footprint adds the two), so Conns
// here counts libix descriptors — on an idle host it matches the TCP
// population minus embryonic connections that have not knocked yet.
func (p *program) Footprint() memprobe.Footprint {
	const (
		connBytes  = int64(unsafe.Sizeof(conn{}))
		sliceBytes = int64(unsafe.Sizeof([]byte(nil)))
		ptrBytes   = int64(unsafe.Sizeof((*mem.Mbuf)(nil)))
	)
	var f memprobe.Footprint
	if p.first {
		// The cookie table is shared by every thread's program; thread 0
		// accounts its backing so the bytes are charged exactly once.
		const slotBytes = int64(unsafe.Sizeof((*conn)(nil)))
		f.Bytes += int64(cap(p.tab.slots))*slotBytes + int64(cap(p.tab.free))*4
	}
	//ixvet:ignore(determinism) commutative integer sums; the tally is order-independent
	for _, c := range p.conns {
		f.Conns++
		b := connBytes
		b += int64(cap(c.txq)) * sliceBytes
		b += int64(cap(c.rdBufs)) * ptrBytes
		b += c.arena.FootprintBytes()
		f.Bytes += b
	}
	return f
}
