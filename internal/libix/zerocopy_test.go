package libix

import (
	"testing"
	"time"

	"ix/internal/app"
	"ix/internal/mem"
	"ix/internal/sim"
	"ix/internal/wire"
)

// pingPong is a minimal echo pair for the steady-state allocation test:
// the client sends a 64-byte request, the server echoes it, the client
// counts the completed RPC and immediately sends the next. No maps, no
// histograms — only the libix/dataplane machinery under test.
type pingServer struct{}

func (pingServer) OnAccept(c app.Conn)            {}
func (pingServer) OnConnected(c app.Conn, b bool) {}
func (pingServer) OnRecv(c app.Conn, data []byte) { c.Send(data) }
func (pingServer) OnSent(c app.Conn, n int)       {}
func (pingServer) OnEOF(c app.Conn)               { c.Close() }
func (pingServer) OnClosed(c app.Conn)            {}

type pingClient struct {
	msg   []byte
	got   int
	rpcs  int
	acked int
}

func (p *pingClient) OnAccept(c app.Conn) {}
func (p *pingClient) OnConnected(c app.Conn, ok bool) {
	if ok {
		c.Send(p.msg)
	}
}
func (p *pingClient) OnRecv(c app.Conn, data []byte) {
	p.got += len(data)
	if p.got >= len(p.msg) {
		p.got = 0
		p.rpcs++
		c.Send(p.msg)
	}
}
func (p *pingClient) OnSent(c app.Conn, n int) { p.acked += n }
func (p *pingClient) OnEOF(c app.Conn)         { c.Close() }
func (p *pingClient) OnClosed(c app.Conn)      {}

// TestSendChargesOnlyAcceptedBytes: a Send that overruns the
// pending-send limit reports (and buffers, and charges) only the
// accepted prefix — the truncated tail must not be charged or appear in
// the arena.
func TestSendChargesOnlyAcceptedBytes(t *testing.T) {
	var firstN, secondN, unsentAt int
	serverF := func(env app.Env, th, n int) app.Handler {
		_ = env.Listen(80)
		return pingServer{}
	}
	clientF := func(env app.Env, th, n int) app.Handler {
		cli := &recorder{env: env}
		cli.onConn = func(c app.Conn, ok bool) {
			if !ok {
				t.Error("connect failed")
				return
			}
			big := make([]byte, 700<<10)
			firstN = c.Send(big)
			secondN = c.Send(big)
			unsentAt = c.Unsent()
		}
		_ = env.Connect(wire.Addr4(10, 0, 0, 2), 80, nil)
		return cli
	}
	eng, a, b := pair(t, serverF, clientF)
	a.Start()
	b.Start()
	eng.RunUntil(sim.Time(time.Millisecond))
	if firstN != 700<<10 {
		t.Fatalf("first Send accepted %d, want %d", firstN, 700<<10)
	}
	if want := MaxPendingSend - 700<<10; secondN != want {
		t.Fatalf("second Send accepted %d, want the remaining budget %d", secondN, want)
	}
	if unsentAt > MaxPendingSend {
		t.Fatalf("pending bytes %d exceed the limit %d", unsentAt, MaxPendingSend)
	}
}

// TestZeroAllocLibixEchoSteadyState: the complete libix RPC cycle —
// Send into the TX arena, coalesced sendv, TCP segment tracking, wire
// transmit, echo, ACK-driven arena release via the sent event condition,
// mbuf recycling via batched recv_done — performs zero heap allocations
// per message once warm. This locks in the zero-copy TX path: the
// pre-arena libix allocated a fresh buffer per Send.
func TestZeroAllocLibixEchoSteadyState(t *testing.T) {
	cli := &pingClient{msg: make([]byte, 64)}
	serverF := func(env app.Env, th, n int) app.Handler {
		if err := env.Listen(80); err != nil {
			t.Error(err)
		}
		return pingServer{}
	}
	clientF := func(env app.Env, th, n int) app.Handler {
		_ = env.Connect(wire.Addr4(10, 0, 0, 2), 80, nil)
		return cli
	}
	eng, a, b := pair(t, serverF, clientF)
	a.Start()
	b.Start()

	// Warm up: pools provision, ring backings size themselves, the RPC
	// loop reaches steady state.
	until := sim.Time(2 * time.Millisecond)
	eng.RunUntil(until)
	if cli.rpcs == 0 {
		t.Fatal("ping-pong did not start")
	}

	const window = 500 * time.Microsecond
	startRPCs := cli.rpcs
	var windows int
	allocs := testing.AllocsPerRun(20, func() {
		windows++
		until = until.Add(window)
		eng.RunUntil(until)
	})
	rpcs := cli.rpcs - startRPCs
	if rpcs < 100 {
		t.Fatalf("only %d RPCs across the measurement windows", rpcs)
	}
	if cli.acked == 0 {
		t.Fatal("no tx_sent progress reported")
	}
	perMsg := allocs * float64(windows) / float64(rpcs)
	t.Logf("%d RPCs, %.2f allocs/window, %.4f allocs/msg", rpcs, allocs, perMsg)
	if allocs != 0 {
		t.Fatalf("steady-state echo allocates %.2f per %v window (%.4f/msg), want 0",
			allocs, window, perMsg)
	}
}

// TestTxqBoundedWithoutDrain: a transmit vector that never fully drains
// (flow-controlled connection sending within budget) must compact its
// consumed prefix rather than growing with connection lifetime.
func TestTxqBoundedWithoutDrain(t *testing.T) {
	c := &conn{}
	for i := 0; i < 2000; i++ {
		c.pushTx(make([]byte, 64))
		c.txBytes += 64
		if i > 0 {
			// Consume one entry, always leaving the newest pending.
			c.consumeTx(64)
		}
		if live := len(c.txq) - int(c.txHead); live < 1 || live > 2 {
			t.Fatalf("iteration %d: %d live entries, want 1-2", i, live)
		}
	}
	if len(c.txq) > 96 {
		t.Fatalf("txq backing holds %d entries for %d live; dead prefix not compacted",
			len(c.txq), len(c.txq)-int(c.txHead))
	}
}

// TestPushTxMergesContiguousRuns: any number of consecutive arena
// appends to one chunk coalesce into a single scatter-gather entry (a
// pairs-only merge would spill multi-message rounds into the TCP
// engine's heap-allocated extra-fragment path).
func TestPushTxMergesContiguousRuns(t *testing.T) {
	pool := mem.NewTxChunkPool(mem.NewRegion(4), 0)
	c := &conn{}
	c.arena.Init(pool)
	for i := 0; i < 5; i++ {
		v := c.arena.Append(make([]byte, 64))
		if len(v) != 64 {
			t.Fatal("append failed")
		}
		c.pushTx(v)
	}
	if got := len(c.txq) - int(c.txHead); got != 1 {
		t.Fatalf("5 contiguous appends produced %d SG entries, want 1", got)
	}
	if got := len(c.txq[c.txHead]); got != 320 {
		t.Fatalf("merged entry holds %d bytes, want 320", got)
	}
}

// TestAbortRecyclesPendingRecvBufs: data and RST arriving in one RX
// batch deliver EvRecv (which takes a buffer reference) and EvDead in
// the same user phase; the dead connection's pending receive buffers
// must recycle locally — its handle is revoked, so a recv_done for it
// would be rejected before the kernel's Unref loop (a pool leak under
// client-abort churn). A background ping-pong load keeps the server's
// core busy so an aborting client's two frames coalesce into one batch.
func TestAbortRecyclesPendingRecvBufs(t *testing.T) {
	serverF := func(env app.Env, th, n int) app.Handler {
		_ = env.Listen(80)
		return pingServer{}
	}
	storm := &abortStorm{load: &pingClient{msg: make([]byte, 64)}, max: 200}
	clientF := func(env app.Env, th, n int) app.Handler {
		storm.env = env
		_ = env.Connect(wire.Addr4(10, 0, 0, 2), 80, storm.load) // background load
		// A concurrent wave of aborters overloads the server so that one
		// connection's data segments and RST share an RX batch.
		for i := 0; i < 32; i++ {
			_ = env.Connect(wire.Addr4(10, 0, 0, 2), 80, nil)
		}
		return storm
	}
	eng, a, b := pair(t, serverF, clientF)
	a.Start()
	b.Start()
	eng.RunUntil(sim.Time(20 * time.Millisecond))
	if storm.aborted < 100 {
		t.Fatalf("only %d aborts ran", storm.aborted)
	}
	if got := b.Thread(0).Pool().InUse(); got != 0 {
		t.Fatalf("server thread leaks %d mbufs after %d aborts with pending recv buffers",
			got, storm.aborted)
	}
}

// abortStorm drives one steady ping-pong connection (tagged with the
// load cookie) plus a stream of short-lived connections that burst data
// and RST together, racing EvRecv against EvDead on the server.
type abortStorm struct {
	env     app.Env
	load    *pingClient
	aborted int
	max     int
}

func (s *abortStorm) OnAccept(c app.Conn) {}
func (s *abortStorm) OnConnected(c app.Conn, ok bool) {
	if c.Cookie() == any(s.load) {
		s.load.OnConnected(c, ok)
		return
	}
	if !ok {
		return
	}
	// Send a multi-segment burst, then RST one round later so the data
	// is genuinely in flight when the reset chases it.
	c.Send(make([]byte, 8<<10))
	s.env.After(2*time.Microsecond, c.Abort)
	s.aborted++
	if s.aborted < s.max {
		s.env.After(10*time.Microsecond, func() {
			_ = s.env.Connect(wire.Addr4(10, 0, 0, 2), 80, nil)
		})
	}
}
func (s *abortStorm) OnRecv(c app.Conn, data []byte) {
	if c.Cookie() == any(s.load) {
		s.load.OnRecv(c, data)
	}
}
func (s *abortStorm) OnSent(c app.Conn, n int) {}
func (s *abortStorm) OnEOF(c app.Conn)         { c.Close() }
func (s *abortStorm) OnClosed(c app.Conn)      {}
