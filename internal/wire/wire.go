// Package wire implements byte-level encoding and decoding of the network
// headers used by the IX reproduction: Ethernet, ARP, IPv4, ICMP, UDP and
// TCP, plus the internet checksum. Frames exchanged across the simulated
// fabric are real packets; the protocol stacks parse and validate them the
// same way lwIP did for IX.
package wire

import (
	"encoding/binary"
	"fmt"
)

// Header and protocol constants.
const (
	EthHdrLen  = 14
	IPv4HdrLen = 20 // no options
	TCPHdrLen  = 20 // without options
	UDPHdrLen  = 8
	ICMPHdrLen = 8
	ARPLen     = 28

	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806

	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17

	// MTU is the standard Ethernet MTU; the paper never enables jumbo
	// frames (§5.1).
	MTU = 1500
	// MSS is the TCP maximum segment size for MTU 1500.
	MSS = MTU - IPv4HdrLen - TCPHdrLen

	// EthOverhead is the per-frame wire overhead beyond the L2 payload:
	// preamble+SFD (8), FCS (4) and minimum inter-frame gap (12).
	EthOverhead = 24
	// EthMinFrame is the minimum Ethernet frame length (without FCS).
	EthMinFrame = 60
)

// MAC is an Ethernet hardware address.
type MAC [6]byte

// Broadcast is the all-ones Ethernet address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IPv4 is an IPv4 address in host byte order (a.b.c.d == a<<24|b<<16|c<<8|d).
type IPv4 uint32

// Addr4 builds an IPv4 address from its dotted-quad components.
func Addr4(a, b, c, d byte) IPv4 {
	return IPv4(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// FlowKey identifies a transport flow (the NIC RSS input and the TCP
// demultiplexing key).
type FlowKey struct {
	SrcIP, DstIP     IPv4
	SrcPort, DstPort uint16
	Proto            uint8
}

// Reverse returns the key of the opposite direction of the flow.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{SrcIP: k.DstIP, DstIP: k.SrcIP, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%v:%d>%v:%d/%d", k.SrcIP, k.SrcPort, k.DstIP, k.DstPort, k.Proto)
}

// EthHeader is an Ethernet II header.
type EthHeader struct {
	Dst, Src  MAC
	EtherType uint16
}

// Marshal writes the header into b, which must be ≥ EthHdrLen bytes.
//
//ix:hotpath
func (h *EthHeader) Marshal(b []byte) {
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	binary.BigEndian.PutUint16(b[12:14], h.EtherType)
}

// Unmarshal parses an Ethernet header from b.
func (h *EthHeader) Unmarshal(b []byte) error {
	if len(b) < EthHdrLen {
		return fmt.Errorf("wire: short ethernet header: %d bytes", len(b))
	}
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.EtherType = binary.BigEndian.Uint16(b[12:14])
	return nil
}

// ARP operation codes.
const (
	ARPRequest = 1
	ARPReply   = 2
)

// ARPPacket is an Ethernet/IPv4 ARP payload.
type ARPPacket struct {
	Op                 uint16
	SenderHW, TargetHW MAC
	SenderIP, TargetIP IPv4
}

// Marshal writes the ARP payload into b, which must be ≥ ARPLen bytes.
func (p *ARPPacket) Marshal(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], 1) // hardware: ethernet
	binary.BigEndian.PutUint16(b[2:4], EtherTypeIPv4)
	b[4] = 6
	b[5] = 4
	binary.BigEndian.PutUint16(b[6:8], p.Op)
	copy(b[8:14], p.SenderHW[:])
	binary.BigEndian.PutUint32(b[14:18], uint32(p.SenderIP))
	copy(b[18:24], p.TargetHW[:])
	binary.BigEndian.PutUint32(b[24:28], uint32(p.TargetIP))
}

// Unmarshal parses an ARP payload from b.
func (p *ARPPacket) Unmarshal(b []byte) error {
	if len(b) < ARPLen {
		return fmt.Errorf("wire: short arp packet: %d bytes", len(b))
	}
	p.Op = binary.BigEndian.Uint16(b[6:8])
	copy(p.SenderHW[:], b[8:14])
	p.SenderIP = IPv4(binary.BigEndian.Uint32(b[14:18]))
	copy(p.TargetHW[:], b[18:24])
	p.TargetIP = IPv4(binary.BigEndian.Uint32(b[24:28]))
	return nil
}

// IPv4Header is an IPv4 header without options.
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // upper 3 bits of the fragment word
	FragOff  uint16
	TTL      uint8
	Proto    uint8
	Checksum uint16
	Src, Dst IPv4
}

// DontFragment is the IPv4 DF flag bit.
const DontFragment = 0x2

// Marshal writes the header into b (≥ IPv4HdrLen bytes) and computes the
// header checksum.
//
//ix:hotpath
func (h *IPv4Header) Marshal(b []byte) {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(h.Flags)<<13|h.FragOff&0x1fff)
	b[8] = h.TTL
	b[9] = h.Proto
	b[10], b[11] = 0, 0
	binary.BigEndian.PutUint32(b[12:16], uint32(h.Src))
	binary.BigEndian.PutUint32(b[16:20], uint32(h.Dst))
	h.Checksum = Checksum(b[:IPv4HdrLen])
	binary.BigEndian.PutUint16(b[10:12], h.Checksum)
}

// Unmarshal parses and validates an IPv4 header from b.
func (h *IPv4Header) Unmarshal(b []byte) error {
	if len(b) < IPv4HdrLen {
		return fmt.Errorf("wire: short ipv4 header: %d bytes", len(b))
	}
	if b[0]>>4 != 4 {
		return fmt.Errorf("wire: bad ip version %d", b[0]>>4)
	}
	if ihl := int(b[0]&0xf) * 4; ihl != IPv4HdrLen {
		return fmt.Errorf("wire: unsupported ip header length %d", ihl)
	}
	if Checksum(b[:IPv4HdrLen]) != 0 {
		return fmt.Errorf("wire: bad ipv4 header checksum")
	}
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	fw := binary.BigEndian.Uint16(b[6:8])
	h.Flags = uint8(fw >> 13)
	h.FragOff = fw & 0x1fff
	h.TTL = b[8]
	h.Proto = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:12])
	h.Src = IPv4(binary.BigEndian.Uint32(b[12:16]))
	h.Dst = IPv4(binary.BigEndian.Uint32(b[16:20]))
	return nil
}

// TCP flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
	TCPUrg = 1 << 5
)

// TCPHeader is a TCP header. Only the MSS and window-scale options are
// supported (what the IX lwIP configuration used for its benchmarks).
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	// MSS is the maximum segment size option; 0 means absent.
	MSS uint16
	// WScale is the window scale shift; negative means absent.
	WScale int8
}

// OptLen returns the length of the encoded options (padded to 4 bytes).
func (h *TCPHeader) OptLen() int {
	n := 0
	if h.MSS != 0 {
		n += 4
	}
	if h.WScale >= 0 {
		n += 3
	}
	return (n + 3) &^ 3
}

// Len returns the full encoded header length including options.
func (h *TCPHeader) Len() int { return TCPHdrLen + h.OptLen() }

// Marshal writes the header (with options) into b, which must be ≥
// h.Len() bytes. The checksum field is written as zero; call
// SetTCPChecksum on the assembled segment.
//
//ix:hotpath
func (h *TCPHeader) Marshal(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint32(b[4:8], h.Seq)
	binary.BigEndian.PutUint32(b[8:12], h.Ack)
	b[12] = uint8(h.Len()/4) << 4
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:16], h.Window)
	b[16], b[17] = 0, 0
	binary.BigEndian.PutUint16(b[18:20], h.Urgent)
	o := TCPHdrLen
	if h.MSS != 0 {
		b[o] = 2 // kind: MSS
		b[o+1] = 4
		binary.BigEndian.PutUint16(b[o+2:o+4], h.MSS)
		o += 4
	}
	if h.WScale >= 0 {
		b[o] = 3 // kind: window scale
		b[o+1] = 3
		b[o+2] = uint8(h.WScale)
		o += 3
	}
	for ; o < h.Len(); o++ {
		b[o] = 1 // NOP padding
	}
}

// Unmarshal parses a TCP header (and supported options) from b, returning
// the header length consumed.
func (h *TCPHeader) Unmarshal(b []byte) (int, error) {
	if len(b) < TCPHdrLen {
		return 0, fmt.Errorf("wire: short tcp header: %d bytes", len(b))
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Seq = binary.BigEndian.Uint32(b[4:8])
	h.Ack = binary.BigEndian.Uint32(b[8:12])
	dataOff := int(b[12]>>4) * 4
	if dataOff < TCPHdrLen || dataOff > len(b) {
		return 0, fmt.Errorf("wire: bad tcp data offset %d", dataOff)
	}
	h.Flags = b[13]
	h.Window = binary.BigEndian.Uint16(b[14:16])
	h.Checksum = binary.BigEndian.Uint16(b[16:18])
	h.Urgent = binary.BigEndian.Uint16(b[18:20])
	h.MSS = 0
	h.WScale = -1
	opts := b[TCPHdrLen:dataOff]
	for len(opts) > 0 {
		switch opts[0] {
		case 0: // end of options
			opts = nil
		case 1: // NOP
			opts = opts[1:]
		case 2: // MSS
			if len(opts) < 4 || opts[1] != 4 {
				return 0, fmt.Errorf("wire: bad mss option")
			}
			h.MSS = binary.BigEndian.Uint16(opts[2:4])
			opts = opts[4:]
		case 3: // window scale
			if len(opts) < 3 || opts[1] != 3 {
				return 0, fmt.Errorf("wire: bad wscale option")
			}
			h.WScale = int8(opts[2])
			opts = opts[3:]
		default:
			if len(opts) < 2 || int(opts[1]) > len(opts) || opts[1] < 2 {
				return 0, fmt.Errorf("wire: bad tcp option")
			}
			opts = opts[opts[1]:]
		}
	}
	return dataOff, nil
}

// UDPHeader is a UDP header.
type UDPHeader struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// Marshal writes the header into b (≥ UDPHdrLen bytes) with a zero
// checksum (legal for UDP over IPv4; the simulated fabric never corrupts
// frames, and this mirrors common datacenter practice).
func (h *UDPHeader) Marshal(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint16(b[4:6], h.Length)
	binary.BigEndian.PutUint16(b[6:8], h.Checksum)
}

// Unmarshal parses a UDP header from b.
func (h *UDPHeader) Unmarshal(b []byte) error {
	if len(b) < UDPHdrLen {
		return fmt.Errorf("wire: short udp header: %d bytes", len(b))
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Length = binary.BigEndian.Uint16(b[4:6])
	h.Checksum = binary.BigEndian.Uint16(b[6:8])
	return nil
}

// ICMP types.
const (
	ICMPEchoReply   = 0
	ICMPEchoRequest = 8
)

// ICMPEcho is an ICMP echo request/reply header.
type ICMPEcho struct {
	Type, Code uint8
	Checksum   uint16
	ID, Seq    uint16
}

// Marshal writes the header into b (≥ ICMPHdrLen) and checksums the whole
// message b (header + payload).
func (h *ICMPEcho) Marshal(b []byte) {
	b[0] = h.Type
	b[1] = h.Code
	b[2], b[3] = 0, 0
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], h.Seq)
	h.Checksum = Checksum(b)
	binary.BigEndian.PutUint16(b[2:4], h.Checksum)
}

// Unmarshal parses an ICMP echo header from b and verifies the checksum
// over the full message.
func (h *ICMPEcho) Unmarshal(b []byte) error {
	if len(b) < ICMPHdrLen {
		return fmt.Errorf("wire: short icmp header: %d bytes", len(b))
	}
	if Checksum(b) != 0 {
		return fmt.Errorf("wire: bad icmp checksum")
	}
	h.Type = b[0]
	h.Code = b[1]
	h.Checksum = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	h.Seq = binary.BigEndian.Uint16(b[6:8])
	return nil
}

// Checksum computes the RFC 1071 internet checksum of b.
func Checksum(b []byte) uint16 {
	return finish(sum1c(b, 0))
}

// sum1c accumulates the one's-complement sum of b. It consumes 8 bytes
// per iteration as two big-endian 32-bit words in a 64-bit accumulator —
// valid because 2^16 ≡ 1 (mod 2^16−1), so wider words fold down to the
// same 16-bit sum — which is ~4× faster than the byte-pair loop on the
// per-packet checksum path.
func sum1c(b []byte, acc uint32) uint32 {
	wide := uint64(acc)
	for len(b) >= 8 {
		wide += uint64(binary.BigEndian.Uint32(b[0:4])) + uint64(binary.BigEndian.Uint32(b[4:8]))
		b = b[8:]
	}
	if len(b) >= 4 {
		wide += uint64(binary.BigEndian.Uint32(b[0:4]))
		b = b[4:]
	}
	for len(b) >= 2 {
		wide += uint64(b[0])<<8 | uint64(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		wide += uint64(b[0]) << 8
	}
	// Fold 64 → 32 bits keeping carries; finish folds the rest.
	wide = (wide >> 32) + (wide & 0xffffffff)
	wide = (wide >> 32) + (wide & 0xffffffff)
	return uint32(wide)
}

func finish(acc uint32) uint16 {
	for acc>>16 != 0 {
		acc = acc&0xffff + acc>>16
	}
	return ^uint16(acc)
}

// pseudoSum computes the IPv4 pseudo-header sum for transport checksums.
func pseudoSum(src, dst IPv4, proto uint8, length int) uint32 {
	var acc uint32
	acc += uint32(src >> 16)
	acc += uint32(src & 0xffff)
	acc += uint32(dst >> 16)
	acc += uint32(dst & 0xffff)
	acc += uint32(proto)
	acc += uint32(length)
	return acc
}

// TCPChecksum computes the TCP checksum over seg (header + payload) with
// the given pseudo-header addresses. seg must have a zeroed checksum field
// when computing, or the result is the verification residue.
func TCPChecksum(src, dst IPv4, seg []byte) uint16 {
	return finish(sum1c(seg, pseudoSum(src, dst, ProtoTCP, len(seg))))
}

// VerifyTCPChecksum reports whether seg carries a valid TCP checksum.
//
//ix:hotpath
func VerifyTCPChecksum(src, dst IPv4, seg []byte) bool {
	return finish(sum1c(seg, pseudoSum(src, dst, ProtoTCP, len(seg)))) == 0
}

// SetTCPChecksum computes and stores the checksum into the assembled TCP
// segment seg (which begins with the TCP header).
//
//ix:hotpath
func SetTCPChecksum(src, dst IPv4, seg []byte) {
	seg[16], seg[17] = 0, 0
	ck := TCPChecksum(src, dst, seg)
	binary.BigEndian.PutUint16(seg[16:18], ck)
}

// WireLen returns the on-the-wire size in bytes of an Ethernet frame whose
// L2 length (header+payload, no FCS) is n, including preamble, FCS, IFG
// and minimum-frame padding. Used by the fabric to compute serialization
// delay.
func WireLen(n int) int {
	if n < EthMinFrame {
		n = EthMinFrame
	}
	return n + EthOverhead
}
