package wire

import (
	"testing"
	"testing/quick"
)

func TestEthRoundTrip(t *testing.T) {
	h := EthHeader{Dst: MAC{1, 2, 3, 4, 5, 6}, Src: MAC{7, 8, 9, 10, 11, 12}, EtherType: EtherTypeIPv4}
	b := make([]byte, EthHdrLen)
	h.Marshal(b)
	var g EthHeader
	if err := g.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Fatalf("roundtrip: got %+v want %+v", g, h)
	}
	if err := g.Unmarshal(b[:10]); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	h := IPv4Header{TotalLen: 40, ID: 7, Flags: DontFragment, TTL: 64, Proto: ProtoTCP,
		Src: Addr4(10, 0, 0, 1), Dst: Addr4(10, 0, 0, 2)}
	b := make([]byte, IPv4HdrLen)
	h.Marshal(b)
	var g IPv4Header
	if err := g.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if g.Src != h.Src || g.Dst != h.Dst || g.TotalLen != 40 || g.Proto != ProtoTCP {
		t.Fatalf("roundtrip mismatch: %+v", g)
	}
	// Corrupt a byte: checksum must catch it.
	b[8] ^= 0xff
	if err := g.Unmarshal(b); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

func TestIPv4PropertyRoundTrip(t *testing.T) {
	f := func(tos uint8, totalLen, id uint16, ttl, proto uint8, src, dst uint32) bool {
		h := IPv4Header{TOS: tos, TotalLen: totalLen, ID: id, TTL: ttl, Proto: proto,
			Src: IPv4(src), Dst: IPv4(dst)}
		b := make([]byte, IPv4HdrLen)
		h.Marshal(b)
		var g IPv4Header
		if err := g.Unmarshal(b); err != nil {
			return false
		}
		return g.TOS == tos && g.TotalLen == totalLen && g.ID == id &&
			g.TTL == ttl && g.Proto == proto && g.Src == IPv4(src) && g.Dst == IPv4(dst)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTCPHeaderRoundTrip(t *testing.T) {
	h := TCPHeader{SrcPort: 32768, DstPort: 80, Seq: 0xdeadbeef, Ack: 0x12345678,
		Flags: TCPSyn | TCPAck, Window: 5840, MSS: 1460, WScale: 3}
	b := make([]byte, h.Len())
	h.Marshal(b)
	var g TCPHeader
	n, err := g.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != h.Len() {
		t.Fatalf("consumed %d, want %d", n, h.Len())
	}
	if g.Seq != h.Seq || g.Ack != h.Ack || g.Flags != h.Flags || g.MSS != 1460 || g.WScale != 3 {
		t.Fatalf("roundtrip mismatch: %+v", g)
	}
}

func TestTCPHeaderPropertyRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, wnd uint16, mss uint16) bool {
		h := TCPHeader{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack,
			Flags: flags, Window: wnd, MSS: mss | 1, WScale: -1}
		b := make([]byte, h.Len())
		h.Marshal(b)
		var g TCPHeader
		if _, err := g.Unmarshal(b); err != nil {
			return false
		}
		return g.SrcPort == sp && g.DstPort == dp && g.Seq == seq && g.Ack == ack &&
			g.Flags == flags && g.Window == wnd && g.MSS == mss|1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTCPChecksum(t *testing.T) {
	src, dst := Addr4(1, 2, 3, 4), Addr4(5, 6, 7, 8)
	h := TCPHeader{SrcPort: 1000, DstPort: 2000, Seq: 1, Ack: 2, Flags: TCPAck, Window: 100, WScale: -1}
	payload := []byte("hello, ix")
	seg := make([]byte, h.Len()+len(payload))
	h.Marshal(seg)
	copy(seg[h.Len():], payload)
	SetTCPChecksum(src, dst, seg)
	if !VerifyTCPChecksum(src, dst, seg) {
		t.Fatal("valid checksum rejected")
	}
	seg[len(seg)-1] ^= 1
	if VerifyTCPChecksum(src, dst, seg) {
		t.Fatal("corrupted payload accepted")
	}
}

// TestChecksumProperty: appending the checksum of data makes the overall
// sum verify (the defining property of the internet checksum).
func TestChecksumProperty(t *testing.T) {
	f := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		ck := Checksum(data)
		full := append(append([]byte{}, data...), byte(ck>>8), byte(ck))
		return Checksum(full) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestARPRoundTrip(t *testing.T) {
	p := ARPPacket{Op: ARPRequest, SenderHW: MAC{1, 1, 1, 1, 1, 1},
		SenderIP: Addr4(10, 0, 0, 1), TargetIP: Addr4(10, 0, 0, 2)}
	b := make([]byte, ARPLen)
	p.Marshal(b)
	var g ARPPacket
	if err := g.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if g.Op != ARPRequest || g.SenderIP != p.SenderIP || g.TargetIP != p.TargetIP || g.SenderHW != p.SenderHW {
		t.Fatalf("roundtrip mismatch: %+v", g)
	}
}

func TestUDPICMPRoundTrip(t *testing.T) {
	u := UDPHeader{SrcPort: 53, DstPort: 5353, Length: 20}
	b := make([]byte, UDPHdrLen)
	u.Marshal(b)
	var gu UDPHeader
	if err := gu.Unmarshal(b); err != nil || gu != u {
		t.Fatalf("udp roundtrip: %+v err %v", gu, err)
	}
	msg := make([]byte, ICMPHdrLen+4)
	copy(msg[ICMPHdrLen:], "ping")
	ic := ICMPEcho{Type: ICMPEchoRequest, ID: 9, Seq: 1}
	ic.Marshal(msg)
	var gi ICMPEcho
	if err := gi.Unmarshal(msg); err != nil {
		t.Fatal(err)
	}
	if gi.ID != 9 || gi.Seq != 1 || gi.Type != ICMPEchoRequest {
		t.Fatalf("icmp roundtrip: %+v", gi)
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{SrcIP: Addr4(1, 1, 1, 1), DstIP: Addr4(2, 2, 2, 2), SrcPort: 10, DstPort: 20, Proto: ProtoTCP}
	r := k.Reverse()
	if r.SrcIP != k.DstIP || r.DstPort != k.SrcPort || r.Reverse() != k {
		t.Fatalf("reverse broken: %v", r)
	}
}

func TestWireLen(t *testing.T) {
	if WireLen(60) != 84 {
		t.Fatalf("WireLen(60) = %d, want 84", WireLen(60))
	}
	if WireLen(10) != 84 { // min frame padding
		t.Fatalf("WireLen(10) = %d, want 84", WireLen(10))
	}
	if WireLen(1514) != 1538 {
		t.Fatalf("WireLen(1514) = %d, want 1538", WireLen(1514))
	}
}

func TestAddrFormatting(t *testing.T) {
	if Addr4(192, 168, 1, 2).String() != "192.168.1.2" {
		t.Fatal("IPv4 formatting broken")
	}
	if (MAC{0xde, 0xad, 0, 0, 0, 1}).String() != "de:ad:00:00:00:01" {
		t.Fatal("MAC formatting broken")
	}
}
