package wire

import "testing"

// Encoding a TCP segment into a caller-supplied buffer — header marshal
// plus checksum — is per-packet work and must not allocate.

func TestZeroAllocTCPEncode(t *testing.T) {
	buf := make([]byte, EthHdrLen+IPv4HdrLen+TCPHdrLen+64)
	hdr := TCPHeader{
		SrcPort: 1234, DstPort: 80,
		Seq: 7, Ack: 9, Flags: TCPAck | TCPPsh, Window: 4096, WScale: -1,
	}
	iph := IPv4Header{
		TotalLen: uint16(len(buf) - EthHdrLen),
		TTL:      64, Proto: ProtoTCP,
		Src: Addr4(10, 0, 0, 1), Dst: Addr4(10, 0, 0, 2),
	}
	seg := buf[EthHdrLen+IPv4HdrLen:]
	allocs := testing.AllocsPerRun(1000, func() {
		iph.Marshal(buf[EthHdrLen:])
		hdr.Marshal(seg)
		SetTCPChecksum(iph.Src, iph.Dst, seg)
	})
	if allocs != 0 {
		t.Fatalf("TCP encode+checksum allocates %.1f per op, want 0", allocs)
	}
	if !VerifyTCPChecksum(iph.Src, iph.Dst, seg) {
		t.Fatal("checksum round trip failed")
	}
}

func BenchmarkTCPChecksum(b *testing.B) {
	seg := make([]byte, TCPHdrLen+1448)
	src, dst := Addr4(10, 0, 0, 1), Addr4(10, 0, 0, 2)
	b.SetBytes(int64(len(seg)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SetTCPChecksum(src, dst, seg)
	}
}

func BenchmarkTCPEncode64(b *testing.B) {
	buf := make([]byte, TCPHdrLen+64)
	hdr := TCPHeader{SrcPort: 1, DstPort: 2, Flags: TCPAck, WScale: -1}
	src, dst := Addr4(10, 0, 0, 1), Addr4(10, 0, 0, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hdr.Marshal(buf)
		SetTCPChecksum(src, dst, buf)
	}
}
