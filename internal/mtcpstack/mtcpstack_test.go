package mtcpstack

import (
	"testing"
	"time"

	"ix/internal/app"
	"ix/internal/fabric"
	"ix/internal/sim"
	"ix/internal/wire"
)

type pingpong struct {
	server bool
	got    *[]byte
	rtts   *[]time.Duration
	env    app.Env
	t0     int64
}

func (p *pingpong) OnAccept(c app.Conn) {}
func (p *pingpong) OnConnected(c app.Conn, ok bool) {
	if ok {
		p.t0 = p.env.Now()
		c.Send([]byte("ping"))
	}
}
func (p *pingpong) OnRecv(c app.Conn, data []byte) {
	*p.got = append(*p.got, data...)
	if p.server {
		c.Send(data)
	} else if p.rtts != nil {
		*p.rtts = append(*p.rtts, time.Duration(p.env.Now()-p.t0))
		p.t0 = p.env.Now()
		c.Send([]byte("ping"))
	}
}
func (p *pingpong) OnSent(c app.Conn, n int) {}
func (p *pingpong) OnEOF(c app.Conn)         { c.Close() }
func (p *pingpong) OnClosed(c app.Conn)      {}

// TestHandoffLatencyFloor: mTCP RPC latency is dominated by the batched
// TCP-thread↔app-thread handoffs — roughly 4 handoffs per RTT.
func TestHandoffLatencyFloor(t *testing.T) {
	eng := sim.NewEngine(4)
	var srvGot []byte
	var rtts []time.Duration
	srv := New(eng, Config{
		Name: "s", IP: wire.Addr4(10, 0, 0, 2), MAC: wire.MAC{2, 0, 0, 0, 0, 2}, Cores: 1,
		Factory: func(env app.Env, th, n int) app.Handler {
			_ = env.Listen(80)
			return &pingpong{server: true, got: &srvGot, env: env}
		},
	})
	var cliGot []byte
	cli := New(eng, Config{
		Name: "c", IP: wire.Addr4(10, 0, 0, 1), MAC: wire.MAC{2, 0, 0, 0, 0, 1}, Cores: 1,
		Factory: func(env app.Env, th, n int) app.Handler {
			p := &pingpong{got: &cliGot, rtts: &rtts, env: env}
			_ = env.Connect(wire.Addr4(10, 0, 0, 2), 80, nil)
			return p
		},
	})
	link := fabric.NewLink(eng, 10*fabric.Gbps, time.Microsecond)
	srv.NIC().AttachPort(link.Port(0))
	cli.NIC().AttachPort(link.Port(1))
	srv.ARP().Learn(cli.IP(), cli.MAC())
	cli.ARP().Learn(srv.IP(), srv.MAC())
	srv.Start()
	cli.Start()
	eng.RunUntil(sim.Time(20 * time.Millisecond))
	if len(rtts) < 10 {
		t.Fatalf("only %d RPCs completed", len(rtts))
	}
	// 4 handoffs of 23µs each ≈ 92µs floor + wire + processing.
	avg := time.Duration(0)
	for _, r := range rtts {
		avg += r
	}
	avg /= time.Duration(len(rtts))
	if avg < 80*time.Microsecond || avg > 160*time.Microsecond {
		t.Fatalf("mTCP RPC RTT = %v, want ~100µs (handoff-dominated)", avg)
	}
}

// TestTimerWakeSkipsCurrentTick: a deadline landing inside the wheel's
// current tick on an idle core must arm the wake at the next tick
// boundary — not at the current instant, which would re-run poll rounds
// one virtual instant after another until the boundary (the cousin of
// the linuxstack same-instant livelock, unified behind
// timerwheel.NextFireTime).
func TestTimerWakeSkipsCurrentTick(t *testing.T) {
	eng := sim.NewEngine(1)
	h := New(eng, Config{
		Name: "m", IP: wire.Addr4(10, 0, 0, 9), MAC: wire.MAC{2, 0, 0, 0, 0, 9}, Cores: 1,
	})
	h.cfg.Factory = func(env app.Env, th, n int) app.Handler {
		return &pingpong{got: new([]byte), env: env}
	}
	h.Start()
	eng.Run()
	m := h.cores[0]

	// Advance the engine and wheel mid-tick, then plant a deadline
	// inside the current tick.
	tick := int64(16 * time.Microsecond)
	mid := sim.Time(10*tick + tick/2)
	eng.At(mid, func() {})
	eng.Run()
	m.wheel.Advance(int64(eng.Now()))
	m.wheel.Add(int64(eng.Now()), func() {})

	m.ensureTimerWake()
	if m.timerWake == nil {
		t.Fatal("no timer wake armed for a pending deadline")
	}
	if got := m.timerWake.At(); got == eng.Now() {
		t.Fatalf("timer wake armed at the current instant %v (would spin rounds); want the tick boundary", got)
	} else if want := sim.Time(11 * tick); got != want {
		t.Fatalf("timer wake at %v, want next tick boundary %v", got, want)
	}
}
