package mtcpstack

import (
	"unsafe"

	"ix/internal/memprobe"
	"ix/internal/tcp"
)

// grantConn registers mc in the core's connection table and returns
// its compact cookie id (slot index + 1; 0 keeps its "no conn"
// meaning).
func (m *mcore) grantConn(mc *mconn) uint64 {
	if n := len(m.mconnFree); n > 0 {
		idx := m.mconnFree[n-1]
		m.mconnFree = m.mconnFree[:n-1]
		m.mconns[idx] = mc
		return uint64(idx) + 1
	}
	m.mconns = append(m.mconns, mc)
	return uint64(len(m.mconns))
}

// revokeConn clears the slot and frees the id for reuse.
func (m *mcore) revokeConn(id uint64) {
	if id == 0 || id > uint64(len(m.mconns)) {
		return
	}
	m.mconns[id-1] = nil
	m.mconnFree = append(m.mconnFree, uint32(id-1))
}

// connOf resolves a kernel connection's user-level adapter (nil for
// embryonic connections that have not been accepted yet).
func (m *mcore) connOf(c *tcp.Conn) *mconn {
	id := c.Cookie
	if id == 0 || id > uint64(len(m.mconns)) {
		return nil
	}
	return m.mconns[id-1]
}

// Footprint implements the memprobe accounting contract for the mTCP
// host model: each core's TCP engine tally plus, per connection, the
// user-level connection struct and the capacities of its staging
// buffers.
func (h *Host) Footprint() memprobe.Footprint {
	const (
		mconnBytes = int64(unsafe.Sizeof(mconn{}))
		slotBytes  = int64(unsafe.Sizeof((*mconn)(nil)))
	)
	var f memprobe.Footprint
	for _, mc := range h.cores {
		st := mc.ns.TCP()
		f.Add(st.Footprint())
		f.Bytes += int64(cap(mc.mconns))*slotBytes + int64(cap(mc.mconnFree))*4
		for _, c := range st.Conns() {
			u := mc.connOf(c)
			if u == nil {
				continue // embryonic: no mconn until accept
			}
			f.Bytes += mconnBytes + int64(cap(u.rcvbuf)) + int64(cap(u.sndbuf))
		}
	}
	return f
}
