// Package mtcpstack models mTCP (Jeong et al., NSDI '14), the
// state-of-the-art user-level TCP stack the paper compares against: each
// core runs a dedicated TCP thread that polls the NIC DPDK-style and
// exchanges *batched* event and job queues with the application thread at
// relatively coarse granularity. The aggressive batching amortizes
// switching overheads and delivers high packet rates, but events and
// writes sit in the handoff queues for tens of microseconds — the
// latency-for-throughput trade §2.3 and §5.2 describe ("mTCP uses
// aggressive batching to offset the cost of context switching, which
// comes at the expense of higher latency").
//
// The same TCP protocol engine as IX and the Linux model runs underneath.
package mtcpstack

import (
	"time"

	"ix/internal/app"
	"ix/internal/cost"
	"ix/internal/fabric"
	"ix/internal/mem"
	"ix/internal/netstack"
	"ix/internal/nicsim"
	"ix/internal/sim"
	"ix/internal/tcp"
	"ix/internal/timerwheel"
	"ix/internal/wire"
)

// pollBatch is the TCP thread's per-round packet budget (mTCP uses large
// I/O batches).
const pollBatch = 2048

// sndbufMax bounds the per-connection user-level send buffer.
const sndbufMax = 4 << 20

// Config describes an mTCP host.
type Config struct {
	Name string
	IP   wire.IPv4
	MAC  wire.MAC
	// Cores is the number of core pairs (TCP thread + app thread per
	// core, as mTCP deploys).
	Cores int
	// Cost is the mTCP cost model.
	Cost cost.MTCP
	// Factory builds the per-thread application.
	Factory app.Factory
	// Seed, RcvWnd, MinRTO, MemPages tune the stack.
	Seed     uint64
	RcvWnd   int
	MinRTO   time.Duration
	MemPages int
	NICRing  int
	// ExpectedConns is the anticipated host-wide flow population; each
	// core presizes its connection tables for its RSS share (0 = grow
	// on demand).
	ExpectedConns int
}

// Host is one mTCP machine.
type Host struct {
	eng    *sim.Engine
	cfg    Config
	nic    *nicsim.NIC
	arp    *netstack.ARPTable
	region *mem.Region
	cores  []*mcore
	// missFloor is the handshake-frame miss charge (batched SYN
	// admission), a run constant hoisted out of the poll loop.
	missFloor time.Duration
	// shard/releaser: frame-pool ownership on a parallel engine (see
	// SetShard); zero-valued on the serial engine.
	shard    int
	releaser fabric.RemoteReleaser
}

// New builds an mTCP host. Attach NIC ports before Start.
func New(eng *sim.Engine, cfg Config) *Host {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.Cost == (cost.MTCP{}) {
		cfg.Cost = cost.DefaultMTCP()
	}
	if cfg.MemPages <= 0 {
		cfg.MemPages = 512
	}
	h := &Host{
		eng:       eng,
		cfg:       cfg,
		arp:       netstack.NewARPTable(),
		region:    mem.NewRegion(cfg.MemPages),
		missFloor: time.Duration(cost.MissesPerMsg(0) * float64(cfg.Cost.L3Miss)),
	}
	h.nic = nicsim.New(eng, cfg.MAC, nicsim.Config{
		Queues:   cfg.Cores,
		RingSize: cfg.NICRing,
	})
	return h
}

// NIC returns the host NIC.
func (h *Host) NIC() *nicsim.NIC { return h.nic }

// ARP returns the host ARP table.
func (h *Host) ARP() *netstack.ARPTable { return h.arp }

// IP returns the host address.
func (h *Host) IP() wire.IPv4 { return h.cfg.IP }

// MAC returns the hardware address.
func (h *Host) MAC() wire.MAC { return h.cfg.MAC }

// SetShard declares the shard owning this host's frame pools on a
// parallel engine; must be called before Start (cores tag their pools
// at spawn, so cross-shard releases route home through r).
func (h *Host) SetShard(sh int, r fabric.RemoteReleaser) {
	h.shard, h.releaser = sh, r
	for _, m := range h.cores {
		m.ns.FramePool().SetShard(sh, r)
	}
}

// Start spawns the per-core thread pairs.
func (h *Host) Start() {
	for i := 0; i < h.cfg.Cores; i++ {
		h.cores = append(h.cores, newMcore(h, i))
	}
	for _, m := range h.cores {
		m.handler = h.cfg.Factory(m.env(), m.id, h.cfg.Cores)
		m.sendReady, _ = m.handler.(app.SendReadyHandler)
		m.kickApp()
	}
}

// Cores returns the core count.
func (h *Host) Cores() int { return len(h.cores) }

// Stack returns core i's network stack (started hosts only).
func (h *Host) Stack(i int) *netstack.Stack { return h.cores[i].ns }

// ConnCount sums live connections.
func (h *Host) ConnCount() int {
	n := 0
	for _, m := range h.cores {
		n += m.ns.TCP().ConnCount()
	}
	return n
}

// mcore is one core pair: the mTCP TCP thread and its application thread.
type mcore struct {
	h    *Host
	id   int
	core *sim.Core

	ns    *netstack.Stack
	wheel *timerwheel.Wheel
	pool  *mem.MbufPool
	rxq   *nicsim.RxQueue
	txq   *nicsim.TxQueue

	handler app.Handler
	// sendReady is the handler's optional writable-again extension
	// (nil when not implemented).
	sendReady app.SendReadyHandler

	// mconns is the core's connection table: the TCP engine's cookie is
	// a compact slot id (index+1) into it, not an interface box. Per
	// core because each mcore owns a private TCP stack (mTCP's
	// shared-nothing design). Freed slots recycle LIFO.
	mconns    []*mconn
	mconnFree []uint32

	// Event queue: TCP thread → app thread (batched).
	evQ        []*mconn
	appPending bool

	// Job queue: app thread → TCP thread (batched writes/connects).
	jobQ       []func()
	tcpPending bool
	tcpQueued  bool // a TCP round is scheduled right now

	outFrames []*fabric.Frame
	txPending []*fabric.Frame
	txSpare   []*fabric.Frame
	tcpMore   bool
	curMeter  *sim.Meter

	// Bound callbacks, created once (method values allocate).
	tcpFn      func(*sim.Meter)
	timerFired func()

	timerWake *sim.Event
}

func newMcore(h *Host, id int) *mcore {
	m := &mcore{
		h:     h,
		id:    id,
		core:  sim.NewCore(h.eng, id),
		pool:  mem.NewMbufPool(h.region, id),
		wheel: timerwheel.New(timerwheel.DefaultTick, int64(h.eng.Now())),
	}
	expected := 0
	if n := h.cfg.ExpectedConns; n > 0 {
		expected = n / h.cfg.Cores
		m.mconns = make([]*mconn, 0, expected)
	}
	m.tcpFn = m.tcpRound
	m.timerFired = m.onTimerWake
	m.rxq = h.nic.RxQueue(id)
	m.txq = h.nic.TxQueue(id)
	m.rxq.Mode = nicsim.ModePoll
	m.rxq.OnFrame = m.wakeTCP
	m.ns = netstack.New(netstack.Config{
		LocalIP:   h.cfg.IP,
		LocalMAC:  h.cfg.MAC,
		Now:       func() int64 { return int64(h.eng.Now()) },
		Wheel:     m.wheel,
		SendFrame: func(f *fabric.Frame) { m.outFrames = append(m.outFrames, f) },
		Events:    (*mtcpEvents)(m),
		ARP:       h.arp,
		Seed:      h.cfg.Seed + uint64(id)*0x9e3779b97f4a7c15,
		RcvWnd:    h.cfg.RcvWnd,
		MinRTO:    h.cfg.MinRTO,

		ExpectedConns: expected,
		PortOK: func(p uint16, dst wire.IPv4, dport uint16) bool {
			// mTCP also partitions flows per core (it splits the
			// ephemeral port space by RSS, like IX).
			ret := wire.FlowKey{SrcIP: dst, DstIP: h.cfg.IP, SrcPort: dport, DstPort: p, Proto: wire.ProtoTCP}
			return h.nic.RSSQueue(ret) == id
		},
	})
	if h.releaser != nil {
		m.ns.FramePool().SetShard(h.shard, h.releaser)
	}
	return m
}

// wakeTCP schedules a TCP thread poll round (the TCP thread polls, so the
// reaction to NIC arrivals is immediate).
func (m *mcore) wakeTCP() {
	if m.tcpQueued {
		return
	}
	m.tcpQueued = true
	m.core.Submit(sim.ClassTCPThread, m.tcpFn)
}

// tcpRound is one TCP-thread iteration: drain the job queue from the app,
// process a packet batch, run timers, emit frames.
func (m *mcore) tcpRound(meter *sim.Meter) {
	m.tcpQueued = false
	m.tcpPending = false
	m.curMeter = meter
	c := &m.h.cfg.Cost
	meter.Charge(c.PollRound)

	// Application jobs first (writes queued since last round).
	jobs := m.jobQ
	m.jobQ = nil
	for _, j := range jobs {
		meter.Charge(c.QueueOp)
		j()
	}

	frames := m.rxq.Take(pollBatch)
	m.rxq.PostDescriptors(len(frames))
	miss := time.Duration(cost.MissesPerMsg(m.h.ConnCount()) * float64(c.L3Miss))
	for _, f := range frames {
		buf := m.pool.Alloc()
		if buf == nil {
			f.Release()
			continue
		}
		buf.SetData(f.Data)
		// Handshake frames charge the miss floor (batched SYN
		// admission); see the linuxstack napiPoll note.
		if nicsim.IsTCPSYN(f.Data) {
			meter.Charge(c.ProtoRx + m.h.missFloor)
		} else {
			meter.Charge(c.ProtoRx + miss)
		}
		f.Release()
		m.ns.Input(buf)
		buf.Unref()
	}
	m.wheel.Advance(int64(m.h.eng.Now()))
	// mTCP acks from the TCP thread, independent of the app.
	m.ns.Flush()
	m.curMeter = nil
	m.tcpMore = m.rxq.Len() > 0
	m.txPending = m.outFrames
	m.outFrames = m.txSpare[:0]
	m.txSpare = nil
	meter.AtEndCall(mEndTCPRound, m)
}

// mEndTCPRound posts the round's frames and re-arms polling (pooled
// one-shot end action, no closure).
func mEndTCPRound(a any) {
	m := a.(*mcore)
	out := m.txPending
	m.txPending = nil
	for i, f := range out {
		m.txq.Post(f)
		out[i] = nil
	}
	m.txSpare = out[:0]
	if m.tcpMore || m.tcpPending {
		m.wakeTCP()
	}
	m.ensureTimerWake()
	m.kickApp()
}

// queueJob hands work to the TCP thread; it runs after the batched
// handoff interval (half the round trip of mTCP's added latency).
func (m *mcore) queueJob(j func()) {
	m.jobQ = append(m.jobQ, j)
	if m.tcpQueued || m.tcpPending {
		return
	}
	m.tcpPending = true
	m.h.eng.After(m.h.cfg.Cost.HandoffInterval, m.wakeTCP)
}

// kickApp schedules an app round if events are waiting, after the
// batched handoff interval (the other half of the added latency).
func (m *mcore) kickApp() {
	if m.appPending || len(m.evQ) == 0 {
		return
	}
	m.appPending = true
	m.h.eng.After(m.h.cfg.Cost.HandoffInterval, func() {
		m.core.Submit(sim.ClassUser, m.appRound)
	})
}

// appRound drains the event queue through the application handler.
func (m *mcore) appRound(meter *sim.Meter) {
	m.appPending = false
	m.curMeter = meter
	c := &m.h.cfg.Cost
	for len(m.evQ) > 0 {
		mc := m.evQ[0]
		m.evQ = m.evQ[1:]
		mc.inEvQ = false
		meter.Charge(c.QueueOp)
		m.dispatch(mc, meter)
	}
	m.curMeter = nil
	meter.AtEnd(func() {
		m.kickApp()
		if len(m.jobQ) > 0 && !m.tcpPending && !m.tcpQueued {
			m.tcpPending = true
			m.h.eng.After(c.HandoffInterval, m.wakeTCP)
		}
	})
}

func (m *mcore) dispatch(mc *mconn, meter *sim.Meter) {
	c := &m.h.cfg.Cost
	if mc.acceptPending {
		mc.acceptPending = false
		meter.Charge(c.AppCall)
		m.handler.OnAccept(mc)
	}
	if mc.connectedPending {
		mc.connectedPending = false
		meter.Charge(c.AppCall)
		m.handler.OnConnected(mc, mc.connectedOK)
		if !mc.connectedOK {
			return
		}
	}
	for len(mc.rcvbuf) > 0 {
		chunk := mc.rcvbuf
		// Release the backing so an idle connection holds no receive
		// buffer (it re-materializes on the next arrival); chunk stays
		// valid through the OnRecv call (the TCP thread cannot append
		// while the app thread occupies the core).
		mc.rcvbuf = nil
		// mtcp_read: API call + copy into the app buffer.
		meter.Charge(c.AppCall + c.CopyPerByte.Cost(len(chunk)))
		mc.conn.RecvDone(len(chunk))
		m.handler.OnRecv(mc, chunk)
		if mc.dead {
			return
		}
	}
	if mc.sentPending > 0 {
		n := int(mc.sentPending)
		mc.sentPending = 0
		meter.Charge(c.AppCall)
		m.handler.OnSent(mc, n)
	}
	if mc.readyPending {
		mc.readyPending = false
		if m.sendReady != nil && !mc.dead && !mc.closing {
			meter.Charge(c.AppCall)
			m.sendReady.OnSendReady(mc)
		}
	}
	if mc.eofPending {
		mc.eofPending = false
		m.handler.OnEOF(mc)
	}
	if mc.deadPending {
		mc.deadPending = false
		mc.dead = true
		m.handler.OnClosed(mc)
	}
}

// ensureTimerWake arranges the next retransmission tick. It arms at the
// wheel's NextFireTime — never the raw deadline: a deadline inside the
// current wheel tick cannot fire before the next tick boundary, and
// waking for it earlier spins poll rounds on an idle core at one
// instant after another (the cousin of the linuxstack same-instant
// livelock, now fixed the same way in both stacks).
func (m *mcore) ensureTimerWake() {
	ft, ok := m.wheel.NextFireTime()
	if !ok {
		return
	}
	at := sim.Time(ft)
	if at < m.h.eng.Now() {
		// The wheel's clock lags the engine (no poll round ran lately):
		// wake now; the round's Advance catches the wheel up and the
		// next arming lands strictly in the future.
		at = m.h.eng.Now()
	}
	if m.timerWake != nil {
		if m.timerWake.At() <= at {
			return
		}
		m.h.eng.Cancel(m.timerWake)
	}
	m.timerWake = m.h.eng.At(at, m.timerFired)
}

// onTimerWake fires the scheduled retransmission tick.
func (m *mcore) onTimerWake() {
	m.timerWake = nil
	m.wakeTCP()
}

// env returns the app.Env for this core.
func (m *mcore) env() app.Env { return (*menv)(m) }

// menv implements app.Env.
type menv mcore

func (e *menv) m() *mcore { return (*mcore)(e) }

func (e *menv) Now() int64  { return int64(e.h.eng.Now()) }
func (e *menv) Thread() int { return e.id }

func (e *menv) Charge(d time.Duration) {
	if e.curMeter != nil {
		e.curMeter.Charge(d)
	}
}

// Elapsed returns CPU time charged in the current task.
func (e *menv) Elapsed() time.Duration {
	if e.curMeter != nil {
		return e.curMeter.Elapsed()
	}
	return 0
}

func (e *menv) Listen(port uint16) error {
	_, err := e.m().ns.TCP().Listen(port, nil)
	return err
}

func (e *menv) After(d time.Duration, fn func()) {
	m := e.m()
	m.h.eng.After(d, func() {
		m.core.Submit(sim.ClassUser, func(meter *sim.Meter) {
			m.curMeter = meter
			fn()
			m.curMeter = nil
			meter.AtEnd(func() {
				m.kickApp()
				if len(m.jobQ) > 0 && !m.tcpPending && !m.tcpQueued {
					m.tcpPending = true
					m.h.eng.After(m.h.cfg.Cost.HandoffInterval, m.wakeTCP)
				}
			})
		})
	})
}

func (e *menv) Connect(dst wire.IPv4, port uint16, cookie any) error {
	m := e.m()
	mc := &mconn{m: m, cookie: cookie}
	m.queueJob(func() {
		m.curMeter.Charge(m.h.cfg.Cost.ConnSetup)
		conn, err := m.ns.TCP().Connect(dst, port, 0)
		if err != nil {
			mc.connectedPending = true
			mc.connectedOK = false
			mc.dead = true
			m.enqueueEv(mc)
			return
		}
		mc.conn = conn
		conn.Cookie = m.grantConn(mc)
	})
	return nil
}

// enqueueEv queues a connection event for the app thread.
func (m *mcore) enqueueEv(mc *mconn) {
	if !mc.inEvQ {
		mc.inEvQ = true
		m.evQ = append(m.evQ, mc)
	}
	m.kickApp()
}

// mconn is an mTCP connection as the application sees it.
type mconn struct {
	m      *mcore
	conn   *tcp.Conn
	cookie any

	rcvbuf []byte
	sndbuf []byte

	// sentPending is int32 (bounded by sndbufMax) so the descriptor
	// packs tighter — part of the per-connection byte budget.
	sentPending int32

	inEvQ            bool
	acceptPending    bool
	connectedPending bool
	connectedOK      bool
	eofPending       bool
	deadPending      bool
	dead             bool

	// closing: mtcp_close was called; the FIN is owed but deferred until
	// the user-level sndbuf drains (finSent marks it issued), so bytes
	// queued before close reach the wire first.
	closing bool
	finSent bool
	// wantReady arms the writable-again edge after a short Send;
	// readyPending carries the armed edge to the app thread's dispatch.
	wantReady    bool
	readyPending bool
}

var _ app.Conn = (*mconn)(nil)

// Send is mtcp_write: copy into the user-level send buffer and queue a
// write job for the TCP thread.
func (c *mconn) Send(b []byte) int {
	if c.dead || c.closing {
		return 0
	}
	m := c.m
	cc := &m.h.cfg.Cost
	if m.curMeter != nil {
		m.curMeter.Charge(cc.AppCall + cc.CopyPerByte.Cost(len(b)))
	}
	room := sndbufMax - len(c.sndbuf)
	if room <= 0 {
		c.armSendReady()
		return 0
	}
	if len(b) > room {
		b = b[:room]
		c.armSendReady()
	}
	c.sndbuf = append(c.sndbuf, b...)
	m.queueJob(c.flushSnd)
	return len(b)
}

// armSendReady arms the writable-again edge after a short Send; a no-op
// unless the core's handler implements app.SendReadyHandler.
func (c *mconn) armSendReady() {
	if c.m.sendReady == nil || c.dead || c.closing {
		return
	}
	c.wantReady = true
}

// flushSnd runs on the TCP thread.
func (c *mconn) flushSnd() {
	if len(c.sndbuf) == 0 || c.conn == nil || c.dead {
		return
	}
	n := c.conn.Sendv([][]byte{c.sndbuf})
	if n > 0 {
		m := c.m
		segs := (n + wire.MSS - 1) / wire.MSS
		if m.curMeter != nil {
			m.curMeter.ChargeN(segs, m.h.cfg.Cost.ProtoTx)
		}
		c.sndbuf = c.sndbuf[n:]
		if len(c.sndbuf) == 0 {
			c.sndbuf = nil
		}
	}
}

// Unsent reports user-level buffered bytes.
func (c *mconn) Unsent() int { return len(c.sndbuf) }

// Close queues an orderly close job. Bytes still in the user-level
// sndbuf are not dropped: the FIN is deferred until the ACK-driven
// flush drains the buffer, so queued data reaches the wire first.
// Further writes are rejected (mTCP marks the socket closed).
func (c *mconn) Close() {
	if c.dead || c.closing {
		return
	}
	c.closing = true
	c.wantReady = false
	c.m.queueJob(c.finishClose)
}

// finishClose runs on the TCP thread: issue the FIN once the sndbuf is
// empty; otherwise the FIN stays owed to mtcpEvents.Sent.
func (c *mconn) finishClose() {
	if !c.closing || c.finSent || c.dead || c.conn == nil {
		return
	}
	if len(c.sndbuf) > 0 {
		return
	}
	c.finSent = true
	c.conn.Close()
}

// Abort queues a RST close job.
func (c *mconn) Abort() {
	if c.dead {
		return
	}
	c.m.queueJob(func() {
		if c.conn != nil {
			c.conn.Abort()
		}
	})
}

// Cookie returns the app tag.
func (c *mconn) Cookie() any { return c.cookie }

// SetCookie tags the connection.
func (c *mconn) SetCookie(v any) { c.cookie = v }

// mtcpEvents adapts TCP engine callbacks; methods run on the TCP thread.
type mtcpEvents mcore

func (me *mtcpEvents) m() *mcore { return (*mcore)(me) }

func (me *mtcpEvents) Knock(l *tcp.Listener, key wire.FlowKey) bool { return true }

func (me *mtcpEvents) Accepted(c *tcp.Conn) {
	m := me.m()
	mc := &mconn{m: m, conn: c, acceptPending: true}
	c.Cookie = m.grantConn(mc)
	m.enqueueEv(mc)
}

func (me *mtcpEvents) Connected(c *tcp.Conn, ok bool) {
	m := me.m()
	mc := m.connOf(c)
	if mc == nil {
		return
	}
	mc.connectedPending = true
	mc.connectedOK = ok
	if !ok {
		// Terminal: a failed active open never reaches Dead, so the
		// cookie slot is released here.
		mc.dead = true
		m.revokeConn(c.Cookie)
	}
	m.enqueueEv(mc)
}

func (me *mtcpEvents) Recv(c *tcp.Conn, buf *mem.Mbuf, data []byte) {
	m := me.m()
	mc := m.connOf(c)
	if mc == nil {
		return
	}
	// Copy into the user-level receive buffer (mTCP's socket-like API
	// is not zero-copy); the copy itself is charged at mtcp_read.
	mc.rcvbuf = append(mc.rcvbuf, data...)
	m.enqueueEv(mc)
}

// Sent ignores released: mTCP's user-level sndbuf slides by accepted
// bytes, not by segment reclamation.
func (me *mtcpEvents) Sent(c *tcp.Conn, acked, released int) {
	m := me.m()
	mc := m.connOf(c)
	if mc == nil {
		return
	}
	mc.flushSnd()
	// A deferred mtcp_close issues its FIN the moment the buffer drains.
	if mc.closing {
		mc.finishClose()
	}
	if acked > 0 && len(mc.sndbuf) > 0 && !mc.closing {
		mc.sentPending += int32(acked)
		m.enqueueEv(mc)
	}
	// Writable-again edge: a writer that saw a short Send wakes once the
	// buffer has actually reopened.
	if mc.wantReady && len(mc.sndbuf) < sndbufMax {
		mc.wantReady = false
		mc.readyPending = true
		m.enqueueEv(mc)
	}
}

func (me *mtcpEvents) RemoteClosed(c *tcp.Conn) {
	m := me.m()
	mc := m.connOf(c)
	if mc == nil {
		return
	}
	mc.eofPending = true
	m.enqueueEv(mc)
}

func (me *mtcpEvents) Dead(c *tcp.Conn, reason tcp.Reason) {
	m := me.m()
	mc := m.connOf(c)
	if mc == nil {
		return
	}
	m.revokeConn(c.Cookie)
	mc.deadPending = true
	m.enqueueEv(mc)
}
