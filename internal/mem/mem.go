// Package mem models the IX dataplane memory subsystem (§4.2 of the
// paper): memory is handed to a dataplane in 2 MB large pages, all hot-path
// objects come from per-hardware-thread pools of identically sized objects
// provisioned in page-sized blocks with simple free lists, and mbufs — the
// storage object for network packets — are contiguous chunks of
// bookkeeping data plus an MTU-sized buffer used for both RX and TX.
//
// The pools deliberately accept internal fragmentation for simplicity, and
// allocation never synchronizes: every elastic thread owns its pools.
package mem

import (
	"fmt"
)

// PageSize is the large-page granularity at which the control plane grants
// memory to dataplanes (2 MB, §4.2).
const PageSize = 2 << 20

// A Region is the memory the control plane has allocated to one dataplane,
// in large pages. Pools draw pages from a region; exhausting the region
// makes allocation fail, which models the coarse-grained provisioning of
// the control plane.
type Region struct {
	limitPages int
	usedPages  int
}

// NewRegion returns a region with capacity for pages large pages.
func NewRegion(pages int) *Region {
	return &Region{limitPages: pages}
}

// TakePage accounts one page from the region; it reports whether a page
// was available.
func (r *Region) TakePage() bool {
	if r.usedPages >= r.limitPages {
		return false
	}
	r.usedPages++
	return true
}

// Used returns the number of pages consumed.
func (r *Region) Used() int { return r.usedPages }

// Cap returns the region's capacity in pages.
func (r *Region) Cap() int { return r.limitPages }

// Grow adds pages to the region (control plane granting more memory).
func (r *Region) Grow(pages int) { r.limitPages += pages }

// MbufHeadroom is reserved at the front of each mbuf so the stack can
// prepend ethernet/IP/TCP headers without copying the payload.
const MbufHeadroom = 64

// MbufSize is the payload capacity of one mbuf: one MTU plus headroom,
// so a full-sized frame fits in a single buffer.
const MbufSize = 1536 + MbufHeadroom

// An Mbuf is a fixed-size packet buffer with reference-counted, zero-copy
// semantics: incoming packets are mapped read-only into the application,
// which may hold them and release them later via recv_done; outgoing
// scatter-gather entries reference mbuf bytes that must stay immutable
// until acked.
type Mbuf struct {
	buf  [MbufSize]byte
	off  int // start of valid data
	len  int // length of valid data
	refs int
	pool *MbufPool

	// ReadOnly marks the buffer as mapped read-only into user space.
	ReadOnly bool
	// Owner is an opaque tag identifying the elastic thread whose pool
	// the buffer belongs to; the dune gate uses it to reject cross-thread
	// recv_done calls.
	Owner int
}

// Reset prepares a freshly allocated mbuf: data begins at the headroom
// offset with zero length.
func (m *Mbuf) Reset() {
	m.off = MbufHeadroom
	m.len = 0
	m.ReadOnly = false
}

// Bytes returns the valid data in the mbuf.
func (m *Mbuf) Bytes() []byte { return m.buf[m.off : m.off+m.len] }

// SetData copies b into the buffer body (after headroom) and sets the
// length. It panics if b exceeds the buffer capacity.
//
//ix:hotpath
func (m *Mbuf) SetData(b []byte) {
	if len(b) > MbufSize-MbufHeadroom {
		//ixvet:ignore(hotpath) panic path: an oversized frame is a stack bug, never steady state
		panic(fmt.Sprintf("mem: frame of %d bytes exceeds mbuf capacity", len(b)))
	}
	m.off = MbufHeadroom
	m.len = copy(m.buf[m.off:], b)
}

// Append extends the valid data with b and returns the number of bytes
// appended (bounded by remaining capacity).
//
//ix:hotpath
func (m *Mbuf) Append(b []byte) int {
	n := copy(m.buf[m.off+m.len:], b)
	m.len += n
	return n
}

// Prepend grows the valid data forward into the headroom by n bytes and
// returns the slice covering the new front. It panics if headroom is
// insufficient — a stack bug, not a runtime condition.
func (m *Mbuf) Prepend(n int) []byte {
	if n > m.off {
		panic("mem: insufficient mbuf headroom")
	}
	m.off -= n
	m.len += n
	return m.buf[m.off : m.off+n]
}

// Trim shortens the valid data to length n.
func (m *Mbuf) Trim(n int) {
	if n < m.len {
		m.len = n
	}
}

// Len returns the number of valid bytes.
func (m *Mbuf) Len() int { return m.len }

// Refs returns the current reference count.
func (m *Mbuf) Refs() int { return m.refs }

// Ref takes an additional reference on the buffer.
func (m *Mbuf) Ref() { m.refs++ }

// Unref drops a reference, returning the buffer to its pool when the
// count reaches zero. Unref of an already-free buffer panics: it is the
// moral equivalent of a double free.
//
//ix:hotpath
func (m *Mbuf) Unref() {
	if m.refs <= 0 {
		panic("mem: mbuf double free")
	}
	m.refs--
	if m.refs == 0 {
		m.pool.put(m)
	}
}

// MbufPool is a per-thread pool of mbufs provisioned from a Region in
// page-sized blocks. Page accounting happens at page granularity, but the
// Mbuf objects themselves materialize lazily on first use — provisioning
// a pool does not zero 2 MB of buffers up front.
type MbufPool struct {
	region *Region
	free   []*Mbuf
	// Owner tags buffers allocated from this pool.
	Owner int

	allocated int // mbufs backed by taken pages (page granularity)
	spare     int // page-backed mbufs not yet materialized
	inUse     int

	// Stats.
	Allocs    uint64
	Frees     uint64
	Exhausted uint64 // allocation failures
}

// mbufsPerPage is how many mbufs one large page provisions.
const mbufsPerPage = PageSize / MbufSize

// NewMbufPool returns a pool drawing from region, tagged with owner.
func NewMbufPool(region *Region, owner int) *MbufPool {
	return &MbufPool{region: region, Owner: owner}
}

// Alloc returns a reset mbuf with one reference, or nil if the region is
// exhausted (the caller drops the packet, as real IX drops when a pool
// runs dry).
//
//ix:hotpath
func (p *MbufPool) Alloc() *Mbuf {
	var m *Mbuf
	if n := len(p.free); n > 0 {
		m = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	} else {
		if p.spare == 0 {
			if !p.region.TakePage() {
				p.Exhausted++
				return nil
			}
			p.spare = mbufsPerPage
			p.allocated += mbufsPerPage
		}
		p.spare--
		//ixvet:ignore(hotpath) lazy materialization: amortized over the page, steady state hits the free list
		m = &Mbuf{pool: p, Owner: p.Owner}
	}
	m.Reset()
	m.refs = 1
	m.ReadOnly = false
	p.inUse++
	p.Allocs++
	return m
}

//ix:hotpath
func (p *MbufPool) put(m *Mbuf) {
	p.inUse--
	p.Frees++
	p.free = append(p.free, m)
}

// InUse returns the number of live mbufs.
func (p *MbufPool) InUse() int { return p.inUse }

// Provisioned returns the number of mbufs backed by pages so far.
func (p *MbufPool) Provisioned() int { return p.allocated }

// A Pool is a per-thread free-list allocator of identically sized objects,
// provisioned in page-sized blocks from a Region. It is the generic
// analogue of the dataplane's hot-path object pools (PCBs, event entries).
type Pool[T any] struct {
	region  *Region
	free    []*T
	perPage int

	allocated int
	inUse     int
	Exhausted uint64
}

// NewPool returns a pool for objects of type T, with objSize the modelled
// byte size of T used to compute how many objects one page provisions.
func NewPool[T any](region *Region, objSize int) *Pool[T] {
	if objSize <= 0 {
		panic("mem: pool object size must be positive")
	}
	pp := PageSize / objSize
	if pp < 1 {
		pp = 1
	}
	return &Pool[T]{region: region, perPage: pp}
}

// Get returns a zeroed object, or nil if the region is exhausted.
func (p *Pool[T]) Get() *T {
	if len(p.free) == 0 {
		if !p.region.TakePage() {
			p.Exhausted++
			return nil
		}
		for i := 0; i < p.perPage; i++ {
			p.free = append(p.free, new(T))
		}
		p.allocated += p.perPage
	}
	o := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	var zero T
	*o = zero
	p.inUse++
	return o
}

// Put returns an object to the pool.
func (p *Pool[T]) Put(o *T) {
	p.inUse--
	p.free = append(p.free, o)
}

// InUse returns the number of live objects.
func (p *Pool[T]) InUse() int { return p.inUse }
