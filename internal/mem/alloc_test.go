package mem

import "testing"

// Steady-state mbuf churn (alloc → fill → free, the per-packet pattern)
// must not allocate once the pool is provisioned.

func TestZeroAllocMbufAllocFree(t *testing.T) {
	pool := NewMbufPool(NewRegion(8), 0)
	// Provision: a burst deep enough to cover the benchmark's working set.
	var warm []*Mbuf
	for i := 0; i < 64; i++ {
		warm = append(warm, pool.Alloc())
	}
	for _, m := range warm {
		m.Unref()
	}
	payload := make([]byte, 64)
	allocs := testing.AllocsPerRun(1000, func() {
		m := pool.Alloc()
		m.SetData(payload)
		m.Unref()
	})
	if allocs != 0 {
		t.Fatalf("mbuf alloc/free allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkMbufAllocFree(b *testing.B) {
	pool := NewMbufPool(NewRegion(8), 0)
	payload := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := pool.Alloc()
		m.SetData(payload)
		m.Unref()
	}
}
