package mem

import (
	"bytes"
	"testing"
)

// TestTxChunkPoolRegionAccounting: chunks provision from the region at
// page granularity and recycle through the free list without taking
// further pages.
func TestTxChunkPoolRegionAccounting(t *testing.T) {
	r := NewRegion(1)
	p := NewTxChunkPool(r, 0)
	var got []*TxChunk
	for i := 0; i < txChunksPerPage; i++ {
		k := p.Alloc()
		if k == nil {
			t.Fatalf("alloc %d failed with a page available", i)
		}
		got = append(got, k)
	}
	if r.Used() != 1 {
		t.Fatalf("used pages = %d, want 1", r.Used())
	}
	if p.Alloc() != nil {
		t.Fatal("allocation succeeded beyond the region grant")
	}
	if p.Exhausted != 1 {
		t.Fatalf("Exhausted = %d, want 1", p.Exhausted)
	}
	for _, k := range got {
		k.Release()
	}
	if p.InUse() != 0 {
		t.Fatalf("InUse = %d after releasing all", p.InUse())
	}
	// Recycling serves from the free list: no more pages taken.
	for i := 0; i < 2*txChunksPerPage; i++ {
		k := p.Alloc()
		if k == nil {
			t.Fatalf("recycled alloc %d failed", i)
		}
		k.Release()
	}
	if r.Used() != 1 {
		t.Fatalf("used pages = %d after recycling, want 1", r.Used())
	}
}

// TestTxArenaFIFOReclaim: the release cursor frees chunks in append
// order, and a fully drained arena holds no chunks.
func TestTxArenaFIFOReclaim(t *testing.T) {
	p := NewTxChunkPool(NewRegion(4), 0)
	var a TxArena
	a.Init(p)

	// Fill two chunks and a bit of a third.
	msg := bytes.Repeat([]byte{0xab}, TxChunkSize/2)
	total := 0
	for i := 0; i < 5; i++ {
		b := msg
		for len(b) > 0 {
			v := a.Append(b)
			if len(v) == 0 {
				t.Fatal("append failed")
			}
			b = b[len(v):]
			total += len(v)
		}
	}
	if a.Live() != total {
		t.Fatalf("Live = %d, want %d", a.Live(), total)
	}
	if a.Chunks() != 3 {
		t.Fatalf("chunks = %d, want 3", a.Chunks())
	}
	// Releasing one chunk's worth frees exactly the first chunk.
	a.Release(TxChunkSize)
	if p.InUse() != 2 {
		t.Fatalf("InUse = %d after first chunk released, want 2", p.InUse())
	}
	// Release the rest: everything returns, cursors reset.
	a.Release(total - TxChunkSize)
	if p.InUse() != 0 || a.Chunks() != 0 || a.Live() != 0 {
		t.Fatalf("drained arena: InUse=%d chunks=%d live=%d", p.InUse(), a.Chunks(), a.Live())
	}
}

// TestTxArenaViewsImmutableUntilRelease: views returned by Append keep
// their bytes until the release cursor passes them, even as later
// appends land in the same chunk.
func TestTxArenaViewsImmutableUntilRelease(t *testing.T) {
	p := NewTxChunkPool(NewRegion(4), 0)
	var a TxArena
	a.Init(p)
	v1 := a.Append([]byte("first-message"))
	v2 := a.Append([]byte("second-message"))
	if string(v1) != "first-message" || string(v2) != "second-message" {
		t.Fatalf("views corrupted: %q %q", v1, v2)
	}
	// Releasing only v1 must leave v2 intact (same chunk still live).
	a.Release(len(v1))
	if string(v2) != "second-message" {
		t.Fatalf("v2 corrupted after partial release: %q", v2)
	}
	if p.InUse() != 1 {
		t.Fatalf("chunk freed while v2 live: InUse=%d", p.InUse())
	}
	a.Release(len(v2))
	if p.InUse() != 0 {
		t.Fatalf("chunk not freed after full release: InUse=%d", p.InUse())
	}
}

// TestTxArenaReleaseAll drops every chunk regardless of cursor state.
func TestTxArenaReleaseAll(t *testing.T) {
	p := NewTxChunkPool(NewRegion(4), 0)
	var a TxArena
	a.Init(p)
	big := make([]byte, 3*TxChunkSize)
	for b := big; len(b) > 0; {
		v := a.Append(b)
		b = b[len(v):]
	}
	a.Release(10) // partial
	a.ReleaseAll()
	if p.InUse() != 0 || a.Live() != 0 || a.Chunks() != 0 {
		t.Fatalf("ReleaseAll left InUse=%d live=%d chunks=%d", p.InUse(), a.Live(), a.Chunks())
	}
}

// TestZeroAllocTxArenaCycle: the steady-state append/release cycle — one
// message in, ACK releases it — must not allocate once warm.
func TestZeroAllocTxArenaCycle(t *testing.T) {
	p := NewTxChunkPool(NewRegion(4), 0)
	var a TxArena
	a.Init(p)
	msg := make([]byte, 64)
	// Warm the pool and the arena's chunk slice.
	v := a.Append(msg)
	a.Release(len(v))
	allocs := testing.AllocsPerRun(1000, func() {
		w := a.Append(msg)
		a.Release(len(w))
	})
	if allocs != 0 {
		t.Fatalf("arena append/release allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkTxArenaAppendRelease(b *testing.B) {
	p := NewTxChunkPool(NewRegion(4), 0)
	var a TxArena
	a.Init(p)
	msg := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := a.Append(msg)
		a.Release(len(v))
	}
}
