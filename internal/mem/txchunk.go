// TX arena chunks: the memory behind the zero-copy libix transmit path.
//
// The paper's sendv contract (§3.3, §4.5) is that the application hands
// buffers to the dataplane and may not touch them until the `sent` event
// condition reports the peer's acknowledgment. libix implements that
// contract with a per-connection arena built from pooled, fixed-size
// chunks: Send appends message bytes to the arena, the transmit vector
// and the TCP retransmission queue reference arena bytes in place, and a
// release cursor — advanced only by cumulative ACK — returns drained
// chunks to the pool. Chunks follow the §4.2 region model: per-thread
// pools provisioned from the dataplane's large-page grant, free lists,
// no synchronization.
package mem

import "unsafe"

// TxChunkSize is the payload capacity of one TX arena chunk. Small
// enough that short-lived RPC traffic cycles a single chunk per
// connection, large enough that a bulk send does not fragment into
// hundreds of scatter-gather entries.
const TxChunkSize = 16 << 10

// txChunksPerPage is how many chunks one large page provisions.
const txChunksPerPage = PageSize / TxChunkSize

// A TxChunk is one fixed-size arena chunk. Bytes between the release
// cursor of its arena and its write cursor are referenced by the
// dataplane's transmit path (txq scatter-gather entries and TCP
// retransmission segments) and must stay immutable.
type TxChunk struct {
	buf  [TxChunkSize]byte
	used int
	pool *TxChunkPool
}

// Used returns the number of bytes written.
func (k *TxChunk) Used() int { return k.used }

// Room returns the bytes still writable.
func (k *TxChunk) Room() int { return TxChunkSize - k.used }

// Append copies as much of b as fits and returns the chunk-backed view
// of the appended bytes (empty when the chunk is full). The view stays
// valid — and its bytes immutable — until the owning arena's release
// cursor passes it. The view's capacity deliberately extends to the
// chunk end so a later contiguous append can be merged into it by
// reslicing; callers must never grow the view themselves.
//
//ix:hotpath
func (k *TxChunk) Append(b []byte) []byte {
	n := copy(k.buf[k.used:], b)
	v := k.buf[k.used : k.used+n]
	k.used += n
	return v
}

// Reset rewinds the write cursor. Only legal when no live reference to
// the chunk's bytes remains (the arena enforces this).
func (k *TxChunk) Reset() { k.used = 0 }

// Release returns the chunk to its pool. Only legal when no live
// reference to the chunk's bytes remains.
//
//ix:hotpath
func (k *TxChunk) Release() {
	k.used = 0
	k.pool.put(k)
}

// TxChunkPool is a per-thread free-list pool of TX arena chunks,
// provisioned from a Region in page-sized blocks (chunks materialize
// lazily, like mbufs).
type TxChunkPool struct {
	region *Region
	free   []*TxChunk
	// Owner tags the elastic thread the pool belongs to.
	Owner int

	allocated int // chunks backed by taken pages
	spare     int // page-backed chunks not yet materialized
	inUse     int

	// Stats.
	Allocs    uint64
	Frees     uint64
	Exhausted uint64 // allocation failures (region dry)
}

// NewTxChunkPool returns a pool drawing from region, tagged with owner.
func NewTxChunkPool(region *Region, owner int) *TxChunkPool {
	return &TxChunkPool{region: region, Owner: owner}
}

// Alloc returns an empty chunk, or nil if the region is exhausted (the
// caller accepts fewer bytes, pushing buffering back to the app).
//
//ix:hotpath
func (p *TxChunkPool) Alloc() *TxChunk {
	var k *TxChunk
	if n := len(p.free); n > 0 {
		k = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	} else {
		if p.spare == 0 {
			if !p.region.TakePage() {
				p.Exhausted++
				return nil
			}
			p.spare = txChunksPerPage
			p.allocated += txChunksPerPage
		}
		p.spare--
		//ixvet:ignore(hotpath) lazy materialization: amortized over the page, steady state hits the free list
		k = &TxChunk{pool: p}
	}
	k.used = 0
	p.inUse++
	p.Allocs++
	return k
}

//ix:hotpath
func (p *TxChunkPool) put(k *TxChunk) {
	p.inUse--
	p.Frees++
	p.free = append(p.free, k)
}

// InUse returns the number of chunks held by arenas.
func (p *TxChunkPool) InUse() int { return p.inUse }

// Ready reports whether the next Alloc will succeed: a chunk on the
// free list, a page-backed spare awaiting materialization, or region
// capacity for another page. The send-ready condition uses this to
// avoid waking a pool-blocked writer into another failed allocation.
func (p *TxChunkPool) Ready() bool {
	return len(p.free) > 0 || p.spare > 0 || p.region.Used() < p.region.Cap()
}

// Provisioned returns the number of chunks backed by pages so far.
func (p *TxChunkPool) Provisioned() int { return p.allocated }

// A TxArena is one connection's FIFO transmit arena. Appends go to the
// newest chunk; the release cursor — advanced only as TCP reports
// segments fully acknowledged — trails through the oldest. Between the
// two cursors the bytes are immutable: they are referenced in place by
// the transmit vector and the retransmission queue. Chunks return to
// the pool the moment the release cursor passes them, so a connection
// in request-response steady state cycles one chunk through the free
// list with no allocation.
type TxArena struct {
	pool   *TxChunkPool
	chunks []*TxChunk // chunks[head:] are live; the last is the write chunk
	// The cursors are int32 — head counts chunks, relOff stays below
	// TxChunkSize, live below the pending-send budget — so the arena
	// header packs with its owner (the per-connection byte budget).
	head   int32
	relOff int32 // released bytes within chunks[head]
	live   int32 // appended and not yet released bytes
}

// Init points the arena at its chunk pool.
func (a *TxArena) Init(pool *TxChunkPool) { a.pool = pool }

// Live returns bytes appended but not yet released.
func (a *TxArena) Live() int { return int(a.live) }

// Chunks returns the number of chunks the arena currently holds.
func (a *TxArena) Chunks() int { return len(a.chunks) - int(a.head) }

// Append copies a prefix of b into the arena and returns the
// arena-backed view of it; the view's bytes stay immutable until
// Release passes them. A shorter-than-b view means the write chunk
// filled — call again with the remainder. An empty view means the pool
// is exhausted.
//
//ix:hotpath
func (a *TxArena) Append(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	var k *TxChunk
	if n := len(a.chunks); n > int(a.head) {
		k = a.chunks[n-1]
	}
	if k == nil || k.Room() == 0 {
		k = a.pool.Alloc()
		if k == nil {
			return nil
		}
		a.chunks = append(a.chunks, k)
	}
	v := k.Append(b)
	a.live += int32(len(v))
	return v
}

// Release advances the release cursor by n bytes — the ACK-driven
// reclamation step. Chunks the cursor has fully passed return to the
// pool; the write chunk is released too once every appended byte is
// acknowledged (the request-response steady state), so idle connections
// pin no chunks.
//
//ix:hotpath
func (a *TxArena) Release(n int) {
	if n <= 0 {
		return
	}
	a.live -= int32(n)
	if a.live < 0 {
		a.live = 0
	}
	a.relOff += int32(n)
	for int(a.head) < len(a.chunks) {
		k := a.chunks[a.head]
		if int(a.relOff) < k.used {
			break
		}
		if int(a.head) == len(a.chunks)-1 && a.live > 0 {
			// The write chunk still holds unreleased bytes beyond the
			// cursor arithmetic (defensive; cannot happen when releases
			// mirror appends).
			break
		}
		a.relOff -= int32(k.used)
		k.Release()
		a.chunks[a.head] = nil
		a.head++
	}
	if int(a.head) == len(a.chunks) {
		// Fully drained. A one-slot backing (the request-response steady
		// state: one chunk cycling through the free list) is kept so the
		// steady cycle stays allocation-free; anything larger — grown by
		// a bulk send — is released, so an idle connection pins at most
		// one pointer slot.
		if cap(a.chunks) > 1 {
			a.chunks = nil
		} else {
			a.chunks = a.chunks[:0]
		}
		a.head = 0
		a.relOff = 0
	}
}

// FootprintBytes returns the bytes the arena pins right now: held
// chunks (whole struct size — a chunk is pinned in full no matter how
// little of it is written) plus the chunks-slice backing. Part of the
// memprobe per-connection accounting contract; pool free lists are
// amortized across the population and excluded.
func (a *TxArena) FootprintBytes() int64 {
	return int64(a.Chunks())*int64(unsafe.Sizeof(TxChunk{})) +
		int64(cap(a.chunks))*int64(unsafe.Sizeof((*TxChunk)(nil)))
}

// ReleaseAll returns every chunk to the pool regardless of the release
// cursor. Only legal once nothing references the arena — i.e. the
// owning connection is dead and its retransmission queue dropped.
func (a *TxArena) ReleaseAll() {
	for i := int(a.head); i < len(a.chunks); i++ {
		a.chunks[i].Release()
		a.chunks[i] = nil
	}
	a.chunks = nil
	a.head = 0
	a.relOff = 0
	a.live = 0
}
