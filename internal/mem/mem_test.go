package mem

import (
	"testing"
	"testing/quick"
)

func TestRegionAccounting(t *testing.T) {
	r := NewRegion(2)
	if !r.TakePage() || !r.TakePage() {
		t.Fatal("pages not granted")
	}
	if r.TakePage() {
		t.Fatal("page granted beyond capacity")
	}
	if r.Used() != 2 || r.Cap() != 2 {
		t.Fatalf("used=%d cap=%d", r.Used(), r.Cap())
	}
	r.Grow(1)
	if !r.TakePage() {
		t.Fatal("grown page not granted")
	}
}

func TestMbufLifecycle(t *testing.T) {
	p := NewMbufPool(NewRegion(1), 3)
	m := p.Alloc()
	if m == nil {
		t.Fatal("alloc failed")
	}
	if m.Owner != 3 {
		t.Fatalf("owner = %d, want 3", m.Owner)
	}
	m.SetData([]byte("hello"))
	if string(m.Bytes()) != "hello" {
		t.Fatalf("data = %q", m.Bytes())
	}
	m.Ref()
	m.Unref()
	if p.InUse() != 1 {
		t.Fatalf("inuse = %d, want 1", p.InUse())
	}
	m.Unref()
	if p.InUse() != 0 {
		t.Fatalf("inuse = %d, want 0", p.InUse())
	}
}

func TestMbufDoubleFreePanics(t *testing.T) {
	p := NewMbufPool(NewRegion(1), 0)
	m := p.Alloc()
	m.Unref()
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	m.Unref()
}

func TestMbufHeadroom(t *testing.T) {
	p := NewMbufPool(NewRegion(1), 0)
	m := p.Alloc()
	m.SetData([]byte("payload"))
	hdr := m.Prepend(4)
	copy(hdr, "HDRX")
	if string(m.Bytes()) != "HDRXpayload" {
		t.Fatalf("after prepend: %q", m.Bytes())
	}
	m.Trim(4)
	if string(m.Bytes()) != "HDRX" {
		t.Fatalf("after trim: %q", m.Bytes())
	}
}

func TestMbufPoolExhaustion(t *testing.T) {
	p := NewMbufPool(NewRegion(1), 0)
	var bufs []*Mbuf
	for {
		m := p.Alloc()
		if m == nil {
			break
		}
		bufs = append(bufs, m)
	}
	if p.Exhausted == 0 {
		t.Fatal("exhaustion not counted")
	}
	if len(bufs) != PageSize/MbufSize {
		t.Fatalf("provisioned %d mbufs from one page, want %d", len(bufs), PageSize/MbufSize)
	}
	// Free one: allocation works again.
	bufs[0].Unref()
	if p.Alloc() == nil {
		t.Fatal("alloc failed after free")
	}
}

// TestMbufUniqueness: allocated buffers are distinct objects until freed.
func TestMbufUniqueness(t *testing.T) {
	p := NewMbufPool(NewRegion(4), 0)
	f := func(n uint8) bool {
		count := int(n%32) + 1
		seen := map[*Mbuf]bool{}
		var all []*Mbuf
		for i := 0; i < count; i++ {
			m := p.Alloc()
			if m == nil || seen[m] {
				return false
			}
			seen[m] = true
			all = append(all, m)
		}
		for _, m := range all {
			m.Unref()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGenericPool(t *testing.T) {
	type pcb struct{ a, b int }
	p := NewPool[pcb](NewRegion(1), 1024)
	o := p.Get()
	if o == nil {
		t.Fatal("get failed")
	}
	o.a = 42
	p.Put(o)
	o2 := p.Get()
	if o2.a != 0 {
		t.Fatal("recycled object not zeroed")
	}
	if p.InUse() != 1 {
		t.Fatalf("inuse = %d", p.InUse())
	}
}
