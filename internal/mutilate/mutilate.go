// Package mutilate reproduces the measurement methodology of §5.5: a
// distributed load generator that coordinates many client threads to
// place a selected load (requests per second) on a memcached server,
// while one separate, unloaded agent issues one request at a time to
// measure response latency. Clients may pipeline up to four requests per
// connection to sustain their target rate, exactly as the paper permits.
//
// Two Facebook-derived workloads are provided (Atikoglu et al.,
// SIGMETRICS '12): ETC (20–70 B keys, 1 B–1 KB values, 75% GETs) and USR
// (<20 B keys, 2 B values, 99% GETs — nearly all minimum-size packets).
package mutilate

import (
	"strconv"
	"time"

	"ix/internal/app"
	"ix/internal/apps/memcached"
	"ix/internal/stats"
	"ix/internal/wire"
)

// Workload describes key/value sizes and the GET fraction.
type Workload struct {
	Name           string
	KeyMin, KeyMax int
	ValMin, ValMax int
	GetFrac        float64
	// Keys is the keyspace size.
	Keys int
}

// ETC is Facebook's highest-capacity deployment: 20–70 B keys, 1 B–1 KB
// values, 75% GET.
var ETC = Workload{Name: "ETC", KeyMin: 20, KeyMax: 70, ValMin: 1, ValMax: 1024, GetFrac: 0.75, Keys: 8192}

// USR is the GET-dominated deployment: short keys, 2 B values, 99% GET;
// almost all traffic is minimum-sized TCP packets.
var USR = Workload{Name: "USR", KeyMin: 8, KeyMax: 19, ValMin: 2, ValMax: 2, GetFrac: 0.99, Keys: 8192}

// KeyFor builds the deterministic key for index i: digits then 'k'
// padding up to the workload's length for that index.
func (w Workload) KeyFor(i int) string {
	ln := w.KeyMin
	if w.KeyMax > w.KeyMin {
		ln += i % (w.KeyMax - w.KeyMin + 1)
	}
	s := strconv.Itoa(i)
	if len(s) >= ln {
		return s
	}
	b := make([]byte, ln)
	copy(b, s)
	for j := len(s); j < ln; j++ {
		b[j] = 'k'
	}
	return string(b)
}

// ValFor builds the deterministic value for index i.
func (w Workload) ValFor(i int) []byte {
	ln := w.ValMin
	if w.ValMax > w.ValMin {
		// Log-skewed sizes: most values small, a tail of large ones.
		span := w.ValMax - w.ValMin
		x := (i*2654435761 + 12345) & 0xffff
		frac := float64(x) / 65536.0
		frac = frac * frac // square to skew small
		ln += int(frac * float64(span))
	}
	v := make([]byte, ln)
	for j := range v {
		v[j] = byte('a' + (i+j)%26)
	}
	return v
}

// Preload installs the full keyspace into a store (done out-of-band
// before measurement, as mutilate's loadonly pass does).
func Preload(store *memcached.Store, w Workload) {
	for i := 0; i < w.Keys; i++ {
		store.SetDirect(w.KeyFor(i), w.ValFor(i))
	}
}

// Metrics aggregates results across all load threads and the agent.
type Metrics struct {
	// Responses counts completed requests on load connections.
	Responses stats.Counter
	// AgentLatency is the unloaded agent's response-time histogram —
	// the latency the paper reports.
	AgentLatency *stats.Histogram
	// LoadLatency is response time seen by loaded connections.
	LoadLatency *stats.Histogram
	// Tap, when non-nil, receives a copy of every load-latency sample —
	// an independently reset histogram for control loops (the
	// multi-tenant arbiter) reading short windowed percentiles without
	// disturbing the measurement window.
	Tap *stats.Histogram
	// Dropped counts requests skipped because all pipelines were full
	// (target unreachable).
	Dropped stats.Counter
	Running bool
}

// NewMetrics returns a metrics sink with Running set.
func NewMetrics() *Metrics {
	return &Metrics{
		AgentLatency: stats.NewHistogram(),
		LoadLatency:  stats.NewHistogram(),
		Running:      true,
	}
}

// ResetWindow begins a measurement window.
func (m *Metrics) ResetWindow() {
	m.Responses.Reset()
	m.Dropped.Reset()
	m.AgentLatency.Reset()
	m.LoadLatency.Reset()
}

// LoadConfig parameterizes load-generating threads.
type LoadConfig struct {
	ServerIP wire.IPv4
	Port     uint16
	Workload Workload
	// Conns is connections per client thread.
	Conns int
	// TargetRPS is this thread's share of the offered load.
	TargetRPS float64
	// Schedule, when non-nil, overrides TargetRPS each pacing tick with
	// the offered load (requests/s, this thread's share) as a function of
	// virtual time — the load ramps of the elastic-scaling experiments.
	Schedule func(now int64) float64
	// Pipeline is the max outstanding requests per connection (§5.5
	// allows up to 4).
	Pipeline int
	Metrics  *Metrics
	Seed     uint64
}

// pending is one outstanding request.
type pending struct {
	t0  int64
	get bool
}

// lconn is per-connection client state.
type lconn struct {
	q   []pending
	buf []byte
}

type loadgen struct {
	env   app.Env
	cfg   LoadConfig
	conns []app.Conn
	rng   uint64
	// pacing
	budget  float64
	next    int // round-robin cursor
	appCost time.Duration
}

// clientReqCost is the client-side CPU per request (build + parse).
const clientReqCost = 900 * time.Nanosecond

// tick is the pacing quantum.
const tick = 100 * time.Microsecond

// LoadFactory builds load-generator threads.
func LoadFactory(cfg LoadConfig) app.Factory {
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 4
	}
	return func(env app.Env, thread, threads int) app.Handler {
		g := &loadgen{env: env, cfg: cfg, rng: cfg.Seed ^ (uint64(thread)+1)*0x9e3779b97f4a7c15}
		for i := 0; i < cfg.Conns; i++ {
			_ = env.Connect(cfg.ServerIP, cfg.Port, nil)
		}
		// Stagger thread phases so independent generators don't tick in
		// lock-step (synchronized bursts would inflate tails).
		stagger := time.Duration(g.rand() % uint64(tick))
		env.After(tick+stagger, g.pace)
		return g
	}
}

func (g *loadgen) rand() uint64 {
	g.rng ^= g.rng << 13
	g.rng ^= g.rng >> 7
	g.rng ^= g.rng << 17
	return g.rng
}

// pace issues this tick's request budget across connections.
func (g *loadgen) pace() {
	m := g.cfg.Metrics
	if !m.Running {
		return
	}
	rate := g.cfg.TargetRPS
	if g.cfg.Schedule != nil {
		rate = g.cfg.Schedule(g.env.Now())
	}
	g.budget += rate * tick.Seconds()
	issued := 0
	tries := 0
	for g.budget >= 1 && len(g.conns) > 0 && tries < 2*len(g.conns) {
		c := g.conns[g.next%len(g.conns)]
		g.next++
		tries++
		st := c.Cookie().(*lconn)
		if len(st.q) >= g.cfg.Pipeline {
			continue
		}
		g.issue(c, st)
		g.budget--
		issued++
		tries = 0
	}
	if g.budget >= 1 {
		// All pipelines full: the offered load exceeds capacity.
		m.Dropped.Add(uint64(g.budget))
		g.budget = 0
	}
	g.env.After(tick, g.pace)
}

// issue sends one randomized request on c.
func (g *loadgen) issue(c app.Conn, st *lconn) {
	w := g.cfg.Workload
	i := int(g.rand() % uint64(w.Keys))
	get := float64(g.rand()%10000)/10000.0 < w.GetFrac
	g.env.Charge(clientReqCost)
	if get {
		c.Send(memcached.FormatGet(w.KeyFor(i)))
	} else {
		c.Send(memcached.FormatSet(w.KeyFor(i), w.ValFor(i)))
	}
	st.q = append(st.q, pending{t0: g.env.Now(), get: get})
}

func (g *loadgen) OnAccept(c app.Conn) {}

func (g *loadgen) OnConnected(c app.Conn, ok bool) {
	if !ok {
		return
	}
	c.SetCookie(&lconn{})
	g.conns = append(g.conns, c)
}

func (g *loadgen) OnRecv(c app.Conn, data []byte) {
	st, _ := c.Cookie().(*lconn)
	if st == nil {
		return
	}
	st.buf = append(st.buf, data...)
	for len(st.q) > 0 {
		n := consumeResponse(st.buf, st.q[0].get)
		if n == 0 {
			break
		}
		g.env.Charge(clientReqCost / 2)
		m := g.cfg.Metrics
		m.Responses.Inc()
		rtt := time.Duration(g.env.Now() - st.q[0].t0)
		m.LoadLatency.Record(rtt)
		if m.Tap != nil {
			m.Tap.Record(rtt)
		}
		st.buf = st.buf[n:]
		st.q = st.q[1:]
	}
	if len(st.buf) == 0 {
		st.buf = nil
	}
}

func (g *loadgen) OnSent(c app.Conn, n int) {}
func (g *loadgen) OnEOF(c app.Conn)         { c.Close() }
func (g *loadgen) OnClosed(c app.Conn)      {}

// AgentConfig parameterizes the unloaded latency agent.
type AgentConfig struct {
	ServerIP wire.IPv4
	Port     uint16
	Workload Workload
	Metrics  *Metrics
	Seed     uint64
}

// AgentFactory builds the unloaded latency-sampling agent: one
// connection, one outstanding GET at a time.
func AgentFactory(cfg AgentConfig) app.Factory {
	return func(env app.Env, thread, threads int) app.Handler {
		if thread != 0 {
			return nopHandler{}
		}
		a := &agent{env: env, cfg: cfg, rng: cfg.Seed | 1}
		_ = env.Connect(cfg.ServerIP, cfg.Port, nil)
		return a
	}
}

type agent struct {
	env app.Env
	cfg AgentConfig
	rng uint64
	t0  int64
	buf []byte
}

func (a *agent) rand() uint64 {
	a.rng ^= a.rng << 13
	a.rng ^= a.rng >> 7
	a.rng ^= a.rng << 17
	return a.rng
}

func (a *agent) issue(c app.Conn) {
	w := a.cfg.Workload
	a.t0 = a.env.Now()
	a.env.Charge(clientReqCost)
	c.Send(memcached.FormatGet(w.KeyFor(int(a.rand() % uint64(w.Keys)))))
}

func (a *agent) OnAccept(c app.Conn) {}

func (a *agent) OnConnected(c app.Conn, ok bool) {
	if ok {
		a.issue(c)
	}
}

func (a *agent) OnRecv(c app.Conn, data []byte) {
	a.buf = append(a.buf, data...)
	n := consumeResponse(a.buf, true)
	if n == 0 {
		return
	}
	a.buf = a.buf[n:]
	if len(a.buf) == 0 {
		a.buf = nil
	}
	a.cfg.Metrics.AgentLatency.Record(time.Duration(a.env.Now() - a.t0))
	if a.cfg.Metrics.Running {
		a.issue(c)
	}
}

func (a *agent) OnSent(c app.Conn, n int) {}
func (a *agent) OnEOF(c app.Conn)         { c.Close() }
func (a *agent) OnClosed(c app.Conn)      {}

type nopHandler struct{}

func (nopHandler) OnAccept(app.Conn)          {}
func (nopHandler) OnConnected(app.Conn, bool) {}
func (nopHandler) OnRecv(app.Conn, []byte)    {}
func (nopHandler) OnSent(app.Conn, int)       {}
func (nopHandler) OnEOF(app.Conn)             {}
func (nopHandler) OnClosed(app.Conn)          {}

// consumeResponse returns the byte length of one complete memcached
// response at the front of buf, or 0 if incomplete. get selects the
// expected response family.
func consumeResponse(buf []byte, get bool) int {
	if !get {
		// STORED\r\n (or an error line)
		return lineLen(buf)
	}
	// Either "END\r\n" (miss) or "VALUE k f n\r\n<data>\r\nEND\r\n".
	nl := lineLen(buf)
	if nl == 0 {
		return 0
	}
	line := buf[:nl-2]
	if len(line) >= 3 && string(line[:3]) == "END" {
		return nl
	}
	if len(line) > 6 && string(line[:6]) == "VALUE " {
		// Parse the byte count (last space-separated field).
		last := -1
		for i := len(line) - 1; i >= 0; i-- {
			if line[i] == ' ' {
				last = i
				break
			}
		}
		if last < 0 {
			return nl
		}
		n, err := strconv.Atoi(string(line[last+1:]))
		if err != nil {
			return nl
		}
		total := nl + n + 2 + 5 // data + \r\n + END\r\n
		if len(buf) < total {
			return 0
		}
		return total
	}
	return nl
}

// lineLen returns the length of the first CRLF-terminated line including
// the CRLF, or 0.
func lineLen(buf []byte) int {
	for i := 0; i+1 < len(buf); i++ {
		if buf[i] == '\r' && buf[i+1] == '\n' {
			return i + 2
		}
	}
	return 0
}
