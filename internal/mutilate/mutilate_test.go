package mutilate

import (
	"testing"
	"testing/quick"

	"ix/internal/apps/memcached"
)

func TestWorkloadShapes(t *testing.T) {
	for i := 0; i < 1000; i++ {
		k := ETC.KeyFor(i)
		if len(k) < ETC.KeyMin || len(k) > ETC.KeyMax {
			t.Fatalf("ETC key %q length %d outside [%d,%d]", k, len(k), ETC.KeyMin, ETC.KeyMax)
		}
		v := ETC.ValFor(i)
		if len(v) < ETC.ValMin || len(v) > ETC.ValMax {
			t.Fatalf("ETC val length %d outside range", len(v))
		}
		uk := USR.KeyFor(i)
		if len(uk) >= 20 {
			t.Fatalf("USR key %q not short", uk)
		}
		if len(USR.ValFor(i)) != 2 {
			t.Fatal("USR values must be 2 bytes")
		}
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	for i := 0; i < 100; i++ {
		if ETC.KeyFor(i) != ETC.KeyFor(i) || string(ETC.ValFor(i)) != string(ETC.ValFor(i)) {
			t.Fatal("workload generation not deterministic")
		}
	}
}

func TestPreload(t *testing.T) {
	st := memcached.NewStore(256 << 20)
	Preload(st, USR)
	if st.Len() != USR.Keys {
		t.Fatalf("preloaded %d keys, want %d", st.Len(), USR.Keys)
	}
}

func TestConsumeResponse(t *testing.T) {
	cases := []struct {
		buf  string
		get  bool
		want int
	}{
		{"STORED\r\n", false, 8},
		{"END\r\n", true, 5},
		{"VALUE key 0 5\r\nhello\r\nEND\r\n", true, 27},
		{"VALUE key 0 5\r\nhel", true, 0}, // incomplete body
		{"VALUE key 0 5\r", true, 0},      // incomplete header
		{"STOR", false, 0},                // incomplete line
	}
	for _, c := range cases {
		if got := consumeResponse([]byte(c.buf), c.get); got != c.want {
			t.Errorf("consumeResponse(%q, get=%v) = %d, want %d", c.buf, c.get, got, c.want)
		}
	}
}

// TestConsumeResponseRoundTrip: a rendered GET hit response is consumed
// exactly, for arbitrary values.
func TestConsumeResponseRoundTrip(t *testing.T) {
	f := func(val []byte) bool {
		resp := []byte("VALUE k 0 ")
		resp = append(resp, []byte(itoa(len(val)))...)
		resp = append(resp, '\r', '\n')
		resp = append(resp, val...)
		resp = append(resp, []byte("\r\nEND\r\n")...)
		return consumeResponse(resp, true) == len(resp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
