// Package analysis is a dependency-free miniature of golang.org/x/tools'
// go/analysis framework: just enough Analyzer/Pass/Diagnostic machinery to
// host the ixvet invariant checkers (determinism, ownership, hotpath) and
// drive them from `go vet -vettool=ixvet` without pulling a module the
// build environment does not vendor.
//
// The deliberate differences from the real framework:
//
//   - No facts, no Requires DAG, no result passing: every ixvet analyzer
//     is a self-contained intra-package (mostly intra-function) pass.
//   - Suppressions are first-class. A diagnostic on line L is dropped iff
//     line L or line L-1 carries `//ixvet:ignore(<analyzer>) <reason>`;
//     dropped diagnostics are counted per analyzer so CI can report
//     suppression growth. Malformed suppressions (missing reason, unknown
//     analyzer name) are themselves diagnostics and cannot be suppressed.
//   - Test files (*_test.go) are excluded: the invariants bind the
//     simulator proper, and tests legitimately use wall clocks, ad-hoc
//     goroutines and unordered iteration for assertions.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in the
	// //ixvet:ignore(<name>) suppression grammar.
	Name string
	// Doc is a one-paragraph statement of the contract the analyzer
	// enforces.
	Doc string
	// Run inspects the package held by pass and reports violations
	// through pass.Reportf.
	Run func(pass *Pass) error
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Pass holds one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	suppress *suppressionIndex
	report   func(Diagnostic)
}

// Reportf reports a diagnostic at pos unless an in-scope
// //ixvet:ignore(<analyzer>) suppression covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.suppress != nil && p.suppress.covers(p.Fset, pos, p.Analyzer.Name) {
		return
	}
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file sits in a *_test.go source file,
// which the ixvet contracts exclude.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// Result aggregates one package's analysis outcome.
type Result struct {
	Diagnostics []Diagnostic
	// Suppressed counts dropped diagnostics per analyzer name.
	Suppressed map[string]int
	// SuppressionSites is the number of well-formed //ixvet:ignore
	// comments present in the package (whether or not they fired), the
	// figure CI tracks for suppression growth.
	SuppressionSites int
}

// RunAnalyzers executes the analyzers over one type-checked package and
// returns position-sorted diagnostics. Malformed //ixvet:ignore comments
// are reported under the pseudo-analyzer name "ixvet".
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) (*Result, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	idx, malformed := indexSuppressions(fset, files, known)

	res := &Result{Suppressed: make(map[string]int)}
	res.Diagnostics = append(res.Diagnostics, malformed...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			suppress:  idx,
			report: func(d Diagnostic) {
				res.Diagnostics = append(res.Diagnostics, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	for name, n := range idx.used {
		res.Suppressed[name] = n
	}
	res.SuppressionSites = idx.sites
	sort.SliceStable(res.Diagnostics, func(i, j int) bool {
		if res.Diagnostics[i].Pos != res.Diagnostics[j].Pos {
			return res.Diagnostics[i].Pos < res.Diagnostics[j].Pos
		}
		return res.Diagnostics[i].Analyzer < res.Diagnostics[j].Analyzer
	})
	return res, nil
}
