package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// touchy reports one diagnostic per ExprStmt, giving the suppression
// machinery something to bite on.
var touchy = &Analyzer{
	Name: "touchy",
	Doc:  "reports every expression statement (test analyzer)",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if es, ok := n.(*ast.ExprStmt); ok {
					pass.Reportf(es.Pos(), "expression statement")
				}
				return true
			})
		}
		return nil
	},
}

func runOnSource(t *testing.T, src string) *Result {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewTypesInfo()
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAnalyzers(fset, []*ast.File{f}, pkg, info, []*Analyzer{touchy})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSuppressionSameLineAndLineAbove(t *testing.T) {
	res := runOnSource(t, `package p
func f() {}
func g() {
	f() //ixvet:ignore(touchy) trailing-comment form
	//ixvet:ignore(touchy) comment-above form
	f()
	f()
}
`)
	if n := len(res.Diagnostics); n != 1 {
		t.Fatalf("want exactly the unsuppressed diagnostic, got %d: %v", n, res.Diagnostics)
	}
	if res.Suppressed["touchy"] != 2 {
		t.Fatalf("want 2 suppressed, got %v", res.Suppressed)
	}
	if res.SuppressionSites != 2 {
		t.Fatalf("want 2 suppression sites, got %d", res.SuppressionSites)
	}
}

func TestMalformedSuppressionsAreDiagnostics(t *testing.T) {
	res := runOnSource(t, `package p
func f() {}
func g() {
	f() //ixvet:ignore(touchy)
	f() //ixvet:ignore(nosuch) typo'd analyzer name
	f() //ixvet:ignore missing parens
}
`)
	var msgs []string
	for _, d := range res.Diagnostics {
		if d.Analyzer == "ixvet" {
			msgs = append(msgs, d.Message)
		}
	}
	if len(msgs) != 3 {
		t.Fatalf("want 3 malformed-suppression diagnostics, got %d: %v", len(msgs), msgs)
	}
	for want, frag := range map[string]string{
		"missing reason":   "needs a reason",
		"unknown analyzer": "unknown analyzer",
		"missing parens":   "needs an analyzer list",
	} {
		found := false
		for _, m := range msgs {
			if strings.Contains(m, frag) {
				found = true
			}
		}
		if !found {
			t.Errorf("no diagnostic for %s (fragment %q) in %v", want, frag, msgs)
		}
	}
	// A malformed suppression must not suppress: all three f() calls
	// still get the touchy diagnostic.
	touchyCount := 0
	for _, d := range res.Diagnostics {
		if d.Analyzer == "touchy" {
			touchyCount++
		}
	}
	if touchyCount != 3 {
		t.Fatalf("malformed suppressions must not suppress; want 3 touchy diagnostics, got %d", touchyCount)
	}
	if res.SuppressionSites != 0 {
		t.Fatalf("malformed comments are not suppression sites, got %d", res.SuppressionSites)
	}
}

func TestCountSuppressionSites(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	// Counted: two well-formed sites. Not counted: a malformed site
	// (missing reason), an unknown analyzer, and a prose mention of the
	// grammar in a doc comment or string literal.
	write("pkg/a.go", `package pkg
// Suppress with //ixvet:ignore(touchy) <reason> as documented.
const grammar = "//ixvet:ignore(touchy) from a string"
func f() {
	//ixvet:ignore(touchy) first real site
	_ = grammar
	_ = grammar //ixvet:ignore(touchy) second real site
	_ = grammar //ixvet:ignore(touchy)
	_ = grammar //ixvet:ignore(nosuch) unknown analyzer
}
`)
	// Excluded wholesale: test files and testdata trees.
	write("pkg/a_test.go", `package pkg
func g() {
	//ixvet:ignore(touchy) fixture in a test file
}
`)
	write("pkg/testdata/src/x/x.go", `package x
func h() {
	//ixvet:ignore(touchy) fixture in testdata
}
`)
	n, err := CountSuppressionSites(dir, []*Analyzer{touchy})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("want 2 counted suppression sites, got %d", n)
	}
}
