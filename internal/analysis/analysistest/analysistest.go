// Package analysistest is a self-contained miniature of x/tools'
// analysistest: it loads a GOPATH-style testdata tree
// (testdata/src/<pkg>/*.go), type-checks it against sibling testdata
// packages and the standard library, runs one analyzer, and compares
// the diagnostics against `// want` expectations.
//
// Expectation grammar, on the offending line:
//
//	code() // want "regexp" "second regexp"
//
// Every diagnostic on a line must match one unconsumed want on that
// line and vice versa. Suppression comments (//ixvet:ignore) are active
// exactly as in production, so a green case can demonstrate them.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"ix/internal/analysis"
)

// Run loads testdata/src/<pkg> relative to the test's working
// directory, applies the analyzer, and reports mismatches via t.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	l := newLoader(root)
	lp, err := l.load(pkg)
	if err != nil {
		t.Fatalf("loading testdata package %s: %v", pkg, err)
	}
	res, err := analysis.RunAnalyzers(l.fset, lp.files, lp.pkg, lp.info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkExpectations(t, l.fset, lp.files, res.Diagnostics)
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	fset *token.FileSet
	root string
	pkgs map[string]*loadedPkg
	std  types.Importer
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset: fset,
		root: root,
		pkgs: make(map[string]*loadedPkg),
		// The source importer compiles stdlib dependencies from GOROOT
		// source: no export data needed, works offline.
		std: importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer: sibling testdata packages first,
// then the standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp.pkg, nil
	}
	if fi, err := os.Stat(filepath.Join(l.root, path)); err == nil && fi.IsDir() {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*loadedPkg, error) {
	dir := filepath.Join(l.root, path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := analysis.NewTypesInfo()
	tc := &types.Config{Importer: l}
	pkg, err := tc.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	l.pkgs[path] = lp
	return lp, nil
}

var wantRE = regexp.MustCompile(`//[ \t]*want[ \t]+(.*)$`)
var wantArgRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type want struct {
	re   *regexp.Regexp
	used bool
}

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, arg := range wantArgRE.FindAllString(m[1], -1) {
					var pat string
					if arg[0] == '`' {
						pat = arg[1 : len(arg)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(arg)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, arg, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants[k] = append(wants[k], &want{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", pos, d.Analyzer, d.Message)
		}
	}
	var keys []key
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.used {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w.re)
			}
		}
	}
}
