package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// unitConfig mirrors the JSON compilation-unit description `go vet`
// hands to a -vettool (the unpublished vet command-line protocol, the
// same struct x/tools' unitchecker reads). Only the fields ixvet uses
// are declared; the decoder ignores the rest.
type unitConfig struct {
	ID                        string
	Compiler                  string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
	// GOOS/GOARCH describe the unit's target platform. cmd/go versions
	// through at least go1.24 do not emit them (json's case-insensitive
	// match will bind GoOS/GoArch if a future protocol adds them), so
	// unitSizes falls back to build.Default, which honors the GOARCH
	// environment variable go vet propagates on cross builds.
	GOOS   string
	GOARCH string
}

// RunUnit analyzes the single compilation unit described by cfgFile and
// returns the process exit code: 0 clean, 1 diagnostics reported, 2
// operational failure. Diagnostics go to stderr in the standard
// file:line:col format `go vet` relays.
func RunUnit(cfgFile string, analyzers []*Analyzer) int {
	cfg, err := readUnitConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ixvet: %v\n", err)
		return 2
	}
	// ixvet analyzers export no facts, but go vet schedules dependency
	// units for fact generation and expects the output file to exist.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "ixvet: writing facts: %v\n", err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			writeVetx()
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "ixvet: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	tc := &types.Config{
		Importer:  unitImporter(cfg, fset),
		Sizes:     unitSizes(cfg),
		GoVersion: cfg.GoVersion,
	}
	info := NewTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		writeVetx()
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "ixvet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	res, err := RunAnalyzers(fset, files, pkg, info, analyzers)
	writeVetx()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ixvet: %v\n", err)
		return 2
	}
	for _, d := range res.Diagnostics {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if res.SuppressionSites > 0 {
		fmt.Fprintf(os.Stderr, "ixvet: %s: %d //ixvet:ignore suppression(s) present\n", cfg.ImportPath, res.SuppressionSites)
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}

// unitSizes resolves the type-size model for the unit's target, so a
// cross-GOARCH `go vet -vettool` run type-checks with the target's
// sizes, not the host's. Preference order: the unit config's own
// Compiler/GOARCH, then build.Default.GOARCH (environment-derived, not
// runtime-derived), then the gc defaults if the pair is unknown.
func unitSizes(cfg *unitConfig) types.Sizes {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	arch := cfg.GOARCH
	if arch == "" {
		arch = build.Default.GOARCH
	}
	if s := types.SizesFor(compiler, arch); s != nil {
		return s
	}
	return types.SizesFor("gc", build.Default.GOARCH)
}

// NewTypesInfo returns a types.Info with every map the analyzers may
// consult populated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

func readUnitConfig(name string) (*unitConfig, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("decoding %s: %v", name, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package %s has no files", cfg.ImportPath)
	}
	return cfg, nil
}

// unitImporter resolves imports through the export-data files the build
// already produced (cfg.PackageFile), exactly as cmd/vet's unitchecker
// does, so type-checking a unit never re-compiles dependencies.
func unitImporter(cfg *unitConfig, fset *token.FileSet) types.Importer {
	gc := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return gc.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
