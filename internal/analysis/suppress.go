package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"regexp"
	"strings"
)

// Suppression grammar:
//
//	//ixvet:ignore(<analyzer>[,<analyzer>...]) <reason>
//
// The comment suppresses the named analyzers' diagnostics on its own line
// (trailing comment) and on the line directly below (comment-above-
// statement). The reason is mandatory: a suppression that does not say
// why it exists is a diagnostic, not a shield. Unknown analyzer names are
// likewise diagnosed, so a typo cannot silently disable nothing.
var ignoreRE = regexp.MustCompile(`^//ixvet:ignore(?:\(([^)]*)\))?[ \t]*(.*)$`)

type suppressionIndex struct {
	// byLine maps file name → line of the ignore comment → analyzer names.
	byLine map[string]map[int][]string
	used   map[string]int
	sites  int
}

// indexSuppressions scans file comments for the ixvet:ignore grammar.
// Well-formed suppressions land in the index; malformed ones come back as
// diagnostics attributed to the pseudo-analyzer "ixvet".
func indexSuppressions(fset *token.FileSet, files []*ast.File, known map[string]bool) (*suppressionIndex, []Diagnostic) {
	idx := &suppressionIndex{
		byLine: make(map[string]map[int][]string),
		used:   make(map[string]int),
	}
	var malformed []Diagnostic
	bad := func(pos token.Pos, format string, args ...any) {
		malformed = append(malformed, Diagnostic{Pos: pos, Analyzer: "ixvet", Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//ixvet:") {
					continue
				}
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil || !strings.HasPrefix(c.Text, "//ixvet:ignore") {
					bad(c.Pos(), "unrecognized //ixvet: directive (want //ixvet:ignore(<analyzer>) <reason>)")
					continue
				}
				names, reason := m[1], strings.TrimSpace(m[2])
				if names == "" {
					bad(c.Pos(), "ixvet:ignore needs an analyzer list: //ixvet:ignore(<analyzer>) <reason>")
					continue
				}
				if reason == "" {
					bad(c.Pos(), "ixvet:ignore(%s) needs a reason", names)
					continue
				}
				var list []string
				ok := true
				for _, n := range strings.Split(names, ",") {
					n = strings.TrimSpace(n)
					if !known[n] {
						bad(c.Pos(), "ixvet:ignore names unknown analyzer %q", n)
						ok = false
						continue
					}
					list = append(list, n)
				}
				if !ok || len(list) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					idx.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], list...)
				idx.sites++
			}
		}
	}
	return idx, malformed
}

// CountSuppressionSites walks the Go sources under root and returns the
// number of well-formed //ixvet:ignore sites naming any of the given
// analyzers. It parses real comments with the production grammar, so
// prose mentions of the directive (doc strings, analyzer documentation)
// and malformed comments do not count. Test files and testdata trees
// are skipped: the analyzers do not bind there, so a suppression there
// is a fixture, not a shield. CI reports this figure so growth in
// suppressions stays visible; it deliberately does not come from the
// vet output, which go vet's result cache elides on warm runs.
func CountSuppressionSites(root string, analyzers []*Analyzer) (int, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	total := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".")) {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		idx, _ := indexSuppressions(fset, []*ast.File{f}, known)
		total += idx.sites
		return nil
	})
	return total, err
}

// covers reports whether a suppression for analyzer name is in scope at
// pos, counting the hit when it is.
func (idx *suppressionIndex) covers(fset *token.FileSet, pos token.Pos, name string) bool {
	p := fset.Position(pos)
	lines := idx.byLine[p.Filename]
	if lines == nil {
		return false
	}
	for _, l := range [2]int{p.Line, p.Line - 1} {
		for _, n := range lines[l] {
			if n == name {
				idx.used[name]++
				return true
			}
		}
	}
	return false
}
