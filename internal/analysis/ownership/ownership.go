// Package ownership enforces the pooled-buffer ownership contract on
// fabric.Frame and mem.TxChunk values (DESIGN.md §Zero-copy TX, §Fault
// injection): a pooled value acquired in a function must, on every path
// out of that function, be Released, Detached, or handed off (passed to
// a callee, stored, or returned); a released value must never be used
// again; Release must not run twice.
//
// The analysis is intra-procedural and flow-sensitive over the AST:
// if/else and switch branches fork the tracking state and merge
// conservatively (divergent states silence further reports for that
// value), so the analyzer errs toward false negatives rather than
// false positives. The one class it deliberately nails is the leak the
// repository has fixed by hand twice: acquire a frame, take an early
// error return, and never release it.
package ownership

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ix/internal/analysis"
)

// Analyzer is the pooled-ownership invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "ownership",
	Doc: `tracks pooled fabric.Frame/mem.TxChunk values: use-after-Release, double Release, and early returns that leak an acquired value.
Acquisition sites are FramePool.Get and TxChunkPool.Alloc; obligations
are cleared by Release, Detach, a deferred Release, a handoff (call
argument, store, return) — or an //ixvet:ignore(ownership) with a
documented reason.`,
	Run: run,
}

// tracked pooled pointer types, matched by (package path tail, type
// name) so analysistest fixtures can stand in for the real packages.
var trackedTypes = map[[2]string]bool{
	{"fabric", "Frame"}: true,
	{"mem", "TxChunk"}:  true,
}

// acquireMethods are the pool methods whose results carry a release
// obligation.
var acquireMethods = map[string]bool{"Get": true, "Alloc": true}

type state uint8

const (
	stOwned    state = iota // acquired here; must release/detach/hand off
	stReleased              // Release ran; any further use is a bug
	stDeferred              // defer x.Release() pending; obligations met
	stDetached              // Detach ran; obligations met, uses fine
	stEscaped               // handed off; obligations transferred
	stMuted                 // divergent merge or already reported
)

type track struct {
	st     state
	acqPos token.Pos
}

type env map[*types.Var]*track

func (e env) clone() env {
	c := make(env, len(e))
	for k, v := range e {
		cp := *v
		c[k] = &cp
	}
	return c
}

func isTrackedPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	path := n.Obj().Pkg().Path()
	tail := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		tail = path[i+1:]
	}
	return trackedTypes[[2]string{tail, n.Obj().Name()}]
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// goto makes the structured walk unsound; skip such
			// functions entirely (none exist in this repository).
			if hasGoto(fn.Body) {
				continue
			}
			w := &walker{pass: pass}
			ev := env{}
			if !w.stmts(fn.Body.List, ev) {
				// Fell off the end: same obligations as a return.
				w.leakCheck(fn.Body.Rbrace, ev)
			}
		}
	}
	return nil
}

func hasGoto(b *ast.BlockStmt) bool {
	found := false
	ast.Inspect(b, func(n ast.Node) bool {
		if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.GOTO {
			found = true
		}
		return !found
	})
	return found
}

type walker struct {
	pass *analysis.Pass
}

func (w *walker) varOf(e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := w.pass.TypesInfo.ObjectOf(id).(*types.Var)
	if v == nil || !isTrackedPtr(v.Type()) {
		return nil
	}
	return v
}

// stmts runs the statement list under ev, reporting as it goes, and
// returns whether the list definitely terminates (return/panic), in
// which case its final state must not merge into the fall-through path.
func (w *walker) stmts(list []ast.Stmt, ev env) bool {
	for _, s := range list {
		if w.stmt(s, ev) {
			return true
		}
	}
	return false
}

func (w *walker) stmt(s ast.Stmt, ev env) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.ExprStmt:
		w.exprStmtCall(s.X, ev)
		return false
	case *ast.AssignStmt:
		w.assign(s, ev)
		return false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					w.scan(val, ev, true)
				}
			}
		}
		return false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scan(r, ev, true)
		}
		w.leakCheck(s.Pos(), ev)
		return true
	case *ast.DeferStmt:
		if v, m := w.receiverMethod(s.Call, ev); v != nil {
			switch m {
			case "Release":
				w.onDeferRelease(s.Call.Pos(), ev, v)
			case "Detach":
				ev[v].st = stDetached
			default:
				w.use(s.Call.Pos(), ev, v)
			}
			w.scanArgs(s.Call, ev)
			return false
		}
		w.scan(s.Call, ev, true)
		return false
	case *ast.GoStmt:
		w.scan(s.Call, ev, true)
		return false
	case *ast.SendStmt:
		w.scan(s.Chan, ev, false)
		w.scan(s.Value, ev, true)
		return false
	case *ast.IncDecStmt:
		w.scan(s.X, ev, false)
		return false
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, ev)
		}
		w.scan(s.Cond, ev, false)
		thenEv := ev.clone()
		elseEv := ev.clone()
		// Nil refinement: under `if x == nil` the then-branch provably
		// holds no buffer (an exhausted pool returns nil), so x carries
		// no obligation there; symmetrically for `x != nil`.
		if v, eq := w.nilCheck(s.Cond); v != nil {
			if eq {
				delete(thenEv, v)
			} else {
				delete(elseEv, v)
			}
		}
		thenTerm := w.stmts(s.Body.List, thenEv)
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.stmt(s.Else, elseEv)
		}
		w.merge(ev, thenEv, thenTerm, elseEv, elseTerm)
		return thenTerm && elseTerm
	case *ast.BlockStmt:
		return w.stmts(s.List, ev)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, ev)
		}
		if s.Tag != nil {
			w.scan(s.Tag, ev, false)
		}
		w.cases(s.Body, ev)
		return false
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, ev)
		}
		w.cases(s.Body, ev)
		return false
	case *ast.SelectStmt:
		w.cases(s.Body, ev)
		return false
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, ev)
		}
		if s.Cond != nil {
			w.scan(s.Cond, ev, false)
		}
		body := ev.clone()
		term := w.stmts(s.Body.List, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
		w.merge(ev, body, term, ev.clone(), false)
		return false
	case *ast.RangeStmt:
		w.scan(s.X, ev, false)
		body := ev.clone()
		// Range vars of tracked type (e.g. frames in a ring) carry no
		// acquisition obligation; leave them untracked.
		term := w.stmts(s.Body.List, body)
		w.merge(ev, body, term, ev.clone(), false)
		return false
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, ev)
	case *ast.BranchStmt, *ast.EmptyStmt:
		return false
	default:
		return false
	}
}

// cases forks the environment per case clause and merges everything.
func (w *walker) cases(body *ast.BlockStmt, ev env) {
	forks := []env{ev.clone()} // the no-case-taken world
	for _, cc := range body.List {
		var stmts []ast.Stmt
		switch cc := cc.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.scan(e, ev, false)
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				w.stmt(cc.Comm, ev)
			}
			stmts = cc.Body
		}
		fork := ev.clone()
		if !w.stmts(stmts, fork) {
			forks = append(forks, fork)
		}
	}
	// Merge all non-terminating forks pairwise into ev.
	for _, f := range forks {
		w.merge(ev, f, false, ev.clone(), false)
	}
}

// merge folds two branch outcomes back into ev. A terminated branch
// (ended in return) contributes nothing. Divergent states mute the
// value: no further reports, no leak obligation.
func (w *walker) merge(ev, a env, aTerm bool, b env, bTerm bool) {
	keys := make(map[*types.Var]bool)
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	for k := range keys {
		av, bv := a[k], b[k]
		switch {
		case aTerm && bTerm:
			delete(ev, k)
		case aTerm:
			if bv != nil {
				ev[k] = bv
			} else {
				delete(ev, k)
			}
		case bTerm:
			if av != nil {
				ev[k] = av
			} else {
				delete(ev, k)
			}
		case av != nil && bv != nil && av.st == bv.st:
			ev[k] = av
		case av == nil && bv == nil:
			delete(ev, k)
		default:
			pos := token.NoPos
			if av != nil {
				pos = av.acqPos
			} else if bv != nil {
				pos = bv.acqPos
			}
			ev[k] = &track{st: stMuted, acqPos: pos}
		}
	}
}

// exprStmtCall handles a call in statement position.
func (w *walker) exprStmtCall(e ast.Expr, ev env) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		w.scan(e, ev, false)
		return
	}
	if v, m := w.receiverMethod(call, ev); v != nil {
		t := ev[v]
		switch m {
		case "Release":
			switch t.st {
			case stReleased:
				w.pass.Reportf(call.Pos(), "double Release of pooled %s (previous Release already returned it to its pool)", v.Name())
				t.st = stMuted
			case stDeferred:
				w.pass.Reportf(call.Pos(), "%s.Release() runs again when the deferred Release fires: double release", v.Name())
				t.st = stMuted
			case stMuted, stDetached:
				// no report: divergent history or detached no-op
			default:
				t.st = stReleased
			}
		case "Detach":
			if t.st == stReleased {
				w.pass.Reportf(call.Pos(), "use of %s after Release: Detach on a released value corrupts pool accounting", v.Name())
				t.st = stMuted
			} else if t.st != stMuted {
				t.st = stDetached
			}
		default:
			w.use(call.Pos(), ev, v)
		}
		w.scanArgs(call, ev)
		return
	}
	w.scan(call, ev, false)
}

// receiverMethod matches `x.M(...)` where x is a tracked variable,
// returning (x, M). It also lazily begins tracking parameters and
// loads the first time Release/Detach runs on them, so use-after-
// release applies to values the function did not itself acquire.
func (w *walker) receiverMethod(call *ast.CallExpr, ev env) (*types.Var, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	v := w.varOf(sel.X)
	if v == nil {
		return nil, ""
	}
	if ev[v] == nil {
		// Untracked (parameter, field load): only start tracking at an
		// ownership-transition method; plain method calls stay free.
		isTransition := sel.Sel.Name == "Release" || sel.Sel.Name == "Detach"
		if !isTransition {
			return nil, ""
		}
		ev[v] = &track{st: stEscaped, acqPos: sel.X.Pos()}
	}
	return v, sel.Sel.Name
}

func (w *walker) onDeferRelease(pos token.Pos, ev env, v *types.Var) {
	t := ev[v]
	switch t.st {
	case stReleased:
		w.pass.Reportf(pos, "deferred Release of %s runs after an explicit Release: double release", v.Name())
		t.st = stMuted
	case stMuted:
	default:
		t.st = stDeferred
	}
}

// nilCheck matches `x == nil` / `x != nil` over a tracked variable,
// returning (x, true) for == and (x, false) for !=.
func (w *walker) nilCheck(cond ast.Expr) (*types.Var, bool) {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return nil, false
	}
	x, y := bin.X, bin.Y
	if w.isNil(x) {
		x, y = y, x
	}
	if !w.isNil(y) {
		return nil, false
	}
	if v := w.varOf(x); v != nil {
		return v, bin.Op == token.EQL
	}
	return nil, false
}

func (w *walker) isNil(e ast.Expr) bool {
	tv, ok := w.pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// use records a read of v, reporting if v was released.
func (w *walker) use(pos token.Pos, ev env, v *types.Var) {
	t := ev[v]
	if t == nil {
		return
	}
	if t.st == stReleased {
		w.pass.Reportf(pos, "use of pooled %s after Release: the buffer may already be recycled by its pool", v.Name())
		t.st = stMuted
	}
}

// scan walks an expression. Every mention of a tracked variable is a
// use; when escape is true (or the walk enters an escaping context:
// call argument, composite literal, address-of, alias assignment), a
// mention also clears the leak obligation.
func (w *walker) scan(e ast.Expr, ev env, escape bool) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		if v := w.varOf(e); v != nil {
			w.use(e.Pos(), ev, v)
			if t := ev[v]; t != nil && escape && t.st == stOwned {
				t.st = stEscaped
			}
		}
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if v := w.varOf(sel.X); v != nil {
				// Receiver position: a use, not a handoff.
				w.use(sel.X.Pos(), ev, v)
			} else {
				w.scan(sel.X, ev, false)
			}
		} else {
			w.scan(e.Fun, ev, false)
		}
		w.scanArgs(e, ev)
	case *ast.SelectorExpr:
		// Field read x.Data: a use; the field value may alias the
		// buffer but the pointer itself is not handed off.
		w.scan(e.X, ev, escape)
	case *ast.UnaryExpr:
		w.scan(e.X, ev, true)
	case *ast.StarExpr:
		w.scan(e.X, ev, escape)
	case *ast.ParenExpr:
		w.scan(e.X, ev, escape)
	case *ast.BinaryExpr:
		// Comparisons (f == nil) are uses, never handoffs.
		w.scan(e.X, ev, false)
		w.scan(e.Y, ev, false)
	case *ast.IndexExpr:
		w.scan(e.X, ev, escape)
		w.scan(e.Index, ev, false)
	case *ast.SliceExpr:
		w.scan(e.X, ev, escape)
		w.scan(e.Low, ev, false)
		w.scan(e.High, ev, false)
		w.scan(e.Max, ev, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.scan(kv.Value, ev, true)
			} else {
				w.scan(el, ev, true)
			}
		}
	case *ast.TypeAssertExpr:
		w.scan(e.X, ev, escape)
	case *ast.FuncLit:
		// A closure capturing a tracked var takes over its lifetime.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v := w.varOf(id); v != nil {
					if t := ev[v]; t != nil && t.st == stOwned {
						t.st = stEscaped
					}
				}
			}
			return true
		})
	case *ast.KeyValueExpr:
		w.scan(e.Value, ev, escape)
	}
}

func (w *walker) scanArgs(call *ast.CallExpr, ev env) {
	for _, a := range call.Args {
		w.scan(a, ev, true)
	}
}

// assign handles acquisition, aliasing and overwrites.
func (w *walker) assign(s *ast.AssignStmt, ev env) {
	// Acquisition: x := pool.Get(n) / x = pool.Alloc().
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok && w.isAcquire(call) {
			if id, ok := s.Lhs[0].(*ast.Ident); ok {
				if v, _ := w.pass.TypesInfo.ObjectOf(id).(*types.Var); v != nil {
					w.overwriteCheck(s.Pos(), ev, v)
					ev[v] = &track{st: stOwned, acqPos: s.Pos()}
					w.scanArgs(call, ev)
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
						w.scan(sel.X, ev, false)
					}
					return
				}
			}
		}
	}
	for _, r := range s.Rhs {
		w.scan(r, ev, true)
	}
	for _, l := range s.Lhs {
		if id, ok := l.(*ast.Ident); ok {
			if v := w.varOf(id); v != nil {
				w.overwriteCheck(s.Pos(), ev, v)
				delete(ev, v) // fresh, untracked value (nil, alias, load)
				continue
			}
			continue
		}
		// Store target like q.ring[i] or c.pending: scan index/receiver
		// parts as uses.
		w.scan(l, ev, false)
	}
}

// overwriteCheck fires when an owned value's only reference is about to
// be clobbered.
func (w *walker) overwriteCheck(pos token.Pos, ev env, v *types.Var) {
	if t := ev[v]; t != nil && t.st == stOwned {
		w.pass.Reportf(pos, "pooled %s (acquired at %s) overwritten without Release/Detach/handoff: the buffer leaks from its pool", v.Name(), w.pass.Fset.Position(t.acqPos))
	}
}

// isAcquire matches pool.Get(...) / pool.Alloc(...) returning a tracked
// pointer.
func (w *walker) isAcquire(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !acquireMethods[sel.Sel.Name] {
		return false
	}
	t := w.pass.TypesInfo.TypeOf(call)
	return t != nil && isTrackedPtr(t)
}

// leakCheck fires at returns: every still-owned value leaks on this
// path. Leaks are reported in acquisition order so output is stable
// (the checker holds itself to its own determinism contract).
func (w *walker) leakCheck(pos token.Pos, ev env) {
	var owned []*types.Var
	for v, t := range ev {
		if t.st == stOwned {
			owned = append(owned, v)
		}
	}
	sort.Slice(owned, func(i, j int) bool { return ev[owned[i]].acqPos < ev[owned[j]].acqPos })
	for _, v := range owned {
		t := ev[v]
		w.pass.Reportf(pos, "return leaks pooled %s (acquired at %s): this path neither Releases, Detaches nor hands it off", v.Name(), w.pass.Fset.Position(t.acqPos))
		t.st = stMuted
	}
}
