package ownership_test

import (
	"testing"

	"ix/internal/analysis/analysistest"
	"ix/internal/analysis/ownership"
)

func TestOwnership(t *testing.T) {
	analysistest.Run(t, ownership.Analyzer, "a")
}
