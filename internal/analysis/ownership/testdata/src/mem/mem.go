// Package mem is an ownership-analyzer fixture mirroring the real
// ix/internal/mem TxChunk surface.
package mem

type TxChunk struct {
	used int
}

func (k *TxChunk) Release()            {}
func (k *TxChunk) Append(b []byte) int { return len(b) }

type TxChunkPool struct{}

func (p *TxChunkPool) Alloc() *TxChunk { return &TxChunk{} }
