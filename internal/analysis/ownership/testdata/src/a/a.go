// Package a exercises the ownership analyzer: use-after-Release, double
// Release, and error-path leaks of pooled fabric.Frame / mem.TxChunk
// values, plus every sanctioned way of discharging the obligation.
package a

import (
	"fabric"
	"mem"
)

type host struct {
	pool *fabric.FramePool
	port *fabric.Port
	ring []*fabric.Frame
}

// --- red: use after Release ---

func useAfterRelease(f *fabric.Frame) int {
	f.Release()
	return len(f.Data) // want `use of pooled f after Release`
}

func detachAfterRelease(f *fabric.Frame) {
	f.Release()
	f.Detach() // want `use of f after Release: Detach on a released value`
}

// --- red: double Release ---

func doubleRelease(f *fabric.Frame) {
	f.Release()
	f.Release() // want `double Release of pooled f`
}

func deferThenRelease(f *fabric.Frame) {
	defer f.Release()
	f.Release() // want `runs again when the deferred Release fires`
}

// --- red: error-path leak (the PR 3/PR 4 class) ---

func errPathLeak(h *host, n int, bad bool) {
	f := h.pool.Get(n)
	if bad {
		return // want `return leaks pooled f`
	}
	h.port.Send(f)
}

func leakByFallingOff(h *host) {
	f := h.pool.Get(64) // acquired...
	_ = f.Tenant()
} // want `return leaks pooled f`

func overwriteLeak(h *host) {
	f := h.pool.Get(64)
	f = h.pool.Get(128) // want `overwritten without Release/Detach/handoff`
	h.port.Send(f)
}

func chunkLeak(p *mem.TxChunkPool, fail bool) int {
	k := p.Alloc()
	if fail {
		return 0 // want `return leaks pooled k`
	}
	n := k.Append([]byte("x"))
	k.Release()
	return n
}

// --- green: obligations discharged ---

func releasedOnErrPath(h *host, n int, bad bool) {
	f := h.pool.Get(n)
	if bad {
		f.Release()
		return
	}
	h.port.Send(f)
}

func detachHandoff(h *host, n int) *fabric.Frame {
	f := h.pool.Get(n)
	f.Detach() // pool accounting balanced; caller owns the bytes
	return f
}

func returnedToCaller(h *host, n int) *fabric.Frame {
	return h.pool.Get(n)
}

func storedInRing(h *host, n int) {
	f := h.pool.Get(n)
	h.ring = append(h.ring, f)
}

func deferredRelease(h *host, n int) int {
	f := h.pool.Get(n)
	defer f.Release()
	return len(f.Data)
}

func releasedBothBranches(h *host, n int, bad bool) {
	f := h.pool.Get(n)
	if bad {
		f.Release()
	} else {
		h.port.Send(f)
	}
	// merged state is divergent: no further obligations, no reports
}

func consumerReleases(h *host, fs []*fabric.Frame) {
	for _, f := range fs {
		f.Release()
	}
}

func nilRefinement(p *mem.TxChunkPool) *mem.TxChunk {
	k := p.Alloc()
	if k == nil {
		return nil // exhausted pool: nothing acquired, nothing leaks
	}
	return k
}

func nilRefinementNeq(p *mem.TxChunkPool) *mem.TxChunk {
	k := p.Alloc()
	if k != nil {
		return k
	}
	return nil // nil world: no obligation
}

// --- green: suppression with a reason ---

func suppressedLeak(h *host, bad bool) {
	f := h.pool.Get(16)
	if bad {
		//ixvet:ignore(ownership) fixture: documented intentional leak for the suppression green case
		return
	}
	h.port.Send(f)
}
