// Package fabric is an ownership-analyzer fixture mirroring the real
// ix/internal/fabric surface: the analyzer matches tracked types by
// (package-path tail, type name), so this stand-in exercises it without
// importing the real tree.
package fabric

type Frame struct {
	Data []byte
	free bool
}

func (f *Frame) Release()    { f.free = true }
func (f *Frame) Detach()     {}
func (f *Frame) Tenant() int { return 0 }

type FramePool struct{}

func (p *FramePool) Get(n int) *Frame { return &Frame{Data: make([]byte, n)} }

type Port struct{}

func (p *Port) Send(f *Frame) {}
