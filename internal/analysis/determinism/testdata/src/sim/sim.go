// Package sim is determinism-analyzer test fixture: its bare import
// path starts with a sim-visible component, so the analyzer treats it
// exactly like ix/internal/sim.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

type engine struct {
	rng   *rand.Rand
	now   int64
	state map[string]int
}

// --- red: wall clock ---

func wallClock(e *engine) time.Duration {
	t0 := time.Now()             // want `time\.Now in sim-visible package`
	time.Sleep(time.Millisecond) // want `time\.Sleep in sim-visible package`
	return time.Since(t0)        // want `time\.Since in sim-visible package`
}

// --- red: global PRNG ---

func globalRand() int {
	return rand.Intn(10) // want `global rand\.Intn in sim-visible package`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand\.Shuffle in sim-visible package`
}

// --- green: engine-owned seeded PRNG (the sanctioned idiom) ---

func seeded(seed int64) *engine {
	return &engine{rng: rand.New(rand.NewSource(seed))}
}

func (e *engine) draw() int { return e.rng.Intn(10) }

// --- red: goroutines ---

func spawn(f func()) {
	go f() // want `go statement in sim-visible package`
}

// --- red: order-dependent map iteration ---

func emit(e *engine, out func(string, int)) {
	for k, v := range e.state { // want `map iteration order is randomized`
		out(k, v)
	}
}

func firstKey(e *engine) string {
	for k := range e.state { // want `map iteration order is randomized`
		return k
	}
	return ""
}

func appendNoSort(e *engine) []string {
	var ks []string
	for k := range e.state { // want `map iteration order is randomized`
		ks = append(ks, k)
	}
	return ks
}

// --- green: sorted-key idiom ---

func emitSorted(e *engine, out func(string, int)) {
	ks := make([]string, 0, len(e.state))
	for k := range e.state {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	for _, k := range ks {
		out(k, e.state[k])
	}
}

// --- green: sorted via a slice-taking helper whose name says sort ---

func sortStable(xs []string) { sort.Strings(xs) }

func emitHelperSorted(e *engine, out func(string, int)) {
	var ks []string
	for k := range e.state {
		ks = append(ks, k)
	}
	sortStable(ks)
	for _, k := range ks {
		out(k, e.state[k])
	}
}

// --- red: "sort"-named callees that never receive the slice ---

func sortKey(k string) string { return k }
func resorted(n int) int      { return n }

func appendFakeSort(e *engine, out func(string)) {
	var ks []string
	for k := range e.state { // want `map iteration order is randomized`
		ks = append(ks, k)
	}
	sortKey(ks[0])    // mentions ks but takes a string, not the slice
	resorted(len(ks)) // likewise: an int is not a sort of ks
	for _, k := range ks {
		out(k)
	}
}

// --- green: commutative bodies ---

func tally(e *engine) (n, sum int) {
	for _, v := range e.state {
		n++
		sum += v
	}
	return
}

func flags(m map[int]uint64) uint64 {
	var acc uint64
	for _, v := range m {
		acc |= v
	}
	return acc
}

func filterCount(m map[int]int) int {
	n := 0
	for _, v := range m {
		if v == 0 {
			continue
		}
		n++
	}
	return n
}

func invert(m map[string]int) map[int]bool {
	out := make(map[int]bool, len(m))
	for _, v := range m {
		out[v] = true // value-keyed: may collide, but same value written
	}
	return out
}

func regroup(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2 // distinct-key insert keyed by the range key
	}
	return out
}

func drop(m map[string]int, dead map[string]bool) {
	for k := range dead {
		delete(m, k)
	}
}

// --- red: string accumulation is not commutative ---

func concat(m map[string]string) string {
	s := ""
	for _, v := range m { // want `map iteration order is randomized`
		s += v
	}
	return s
}

// --- green: suppression with a reason ---

func suppressed(e *engine, sink func(int)) {
	//ixvet:ignore(determinism) fixture: demonstrates the suppression grammar in a green test
	for _, v := range e.state {
		sink(v)
	}
}
