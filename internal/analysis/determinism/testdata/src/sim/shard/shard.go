// Package shard is the determinism-analyzer fixture for the
// shard-runtime allowlist: its bare path "sim/shard" matches
// shardRuntimeAllowlist exactly, so OS-level concurrency — goroutines,
// sync imports, wall-clock telemetry — is sanctioned here at package
// granularity. The global-PRNG and map-iteration checks still apply:
// nondeterminism in the runtime would leak into cross-shard merge order.
package shard

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

type runtime struct {
	mu    sync.Mutex
	idle  time.Duration
	posts atomic.Uint64
	queue map[int][]int
}

// --- green: goroutines, sync and wall-clock telemetry are this
// package's job ---

func (r *runtime) spawnWorkers(n int, body func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			body(id)
		}(i)
	}
	wg.Wait()
}

func (r *runtime) barrierIdle(f func()) {
	t0 := time.Now()
	f()
	r.mu.Lock()
	r.idle += time.Since(t0)
	r.mu.Unlock()
}

func (r *runtime) post() { r.posts.Add(1) }

// --- red: the PRNG and map-order checks are NOT relaxed ---

func (r *runtime) shuffleSeq(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand\.Shuffle in sim-visible package`
}

func (r *runtime) drainUnordered(deliver func(int)) {
	for _, posts := range r.queue { // want `map iteration order is randomized`
		for _, p := range posts {
			deliver(p)
		}
	}
}
