package sim

// --- red: sync primitives outside the shard runtime ---
//
// A mutex or atomic in a sim-visible package means state is shared
// across goroutines, which the single-goroutine shard model forbids.
// Shared sinks (stats counters) go through ix/internal/sim/shard's
// exported primitives instead.

import (
	"sync"        // want `import "sync" in sim-visible package`
	"sync/atomic" // want `import "sync/atomic" in sim-visible package`
)

type counters struct {
	mu sync.Mutex
	n  atomic.Uint64
}

func (c *counters) bump() {
	c.mu.Lock()
	c.n.Add(1)
	c.mu.Unlock()
}

// --- red: goroutines stay banned here too ---

func spawnWorker(fn func()) {
	go fn() // want `go statement in sim-visible package`
}
