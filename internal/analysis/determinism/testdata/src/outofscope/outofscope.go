// Package outofscope is not sim-visible: the determinism analyzer must
// stay silent here even on otherwise-red patterns (tooling and offline
// analysis code may use wall clocks freely).
package outofscope

import "time"

func wallClockIsFine() time.Time { return time.Now() }

func unorderedIsFine(m map[string]int, out func(string, int)) {
	for k, v := range m {
		out(k, v)
	}
}
