package determinism_test

import (
	"testing"

	"ix/internal/analysis/analysistest"
	"ix/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "sim")
}

func TestShardRuntimeAllowlist(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "sim/shard")
}

func TestOutOfScopePackagesIgnored(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "outofscope")
}
