// Package determinism enforces the simulator's byte-identical fixed-seed
// contract (DESIGN.md §Determinism) at build time: inside sim-visible
// packages nothing may consult a wall clock, the global math/rand state,
// spawn goroutines, import sync primitives, or let Go's randomized map
// iteration order reach simulation state, events or output.
//
// The parallel engine's shard runtime (ix/internal/sim/shard) is the one
// sanctioned home for OS-level concurrency: goroutines, sync/atomic and
// wall-clock telemetry live there behind the epoch-barrier protocol, so
// those checks are relaxed for the packages in shardRuntimeAllowlist —
// a package-granularity decision recorded here, not a per-line
// suppression. The global-PRNG and map-iteration checks still apply in
// relaxed packages: nondeterminism there would leak into merge order.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"ix/internal/analysis"
)

// Analyzer is the determinism invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: `forbids wall clocks, global PRNG state, goroutines, sync imports and unordered map iteration in sim-visible packages.
Each simulation shard is single-goroutine and a fixed seed must
reproduce byte-identical output (DESIGN.md §Determinism). Sanctioned
idioms: injector/engine-owned seeded *rand.Rand instances
(rand.New(rand.NewSource(seed))), and map iteration that either only
performs commutative updates or collects keys into a slice that is
sorted before use. The shard runtime packages (shardRuntimeAllowlist)
may spawn goroutines, import sync and read the wall clock — OS-level
concurrency is their whole job — but stay subject to the PRNG and
map-iteration checks.`,
	Run: run,
}

// scopeRoots are the first path components under ix/internal/ that are
// sim-visible: code whose behaviour feeds simulated state, events or
// figure output. Bare paths (no ix/internal/ prefix) are matched on
// their first component too, which is how analysistest packages opt in.
var scopeRoots = map[string]bool{
	"sim": true, "fabric": true, "nicsim": true, "tcp": true,
	"libix": true, "core": true, "linuxstack": true, "mtcpstack": true,
	"netstack": true, "faults": true, "cp": true, "harness": true,
	"timerwheel": true, "mem": true, "wire": true, "apps": true,
	"mutilate": true, "stats": true, "dune": true, "ixnet": true,
}

// wallClockFuncs are the package time functions that read or arm the
// host's wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// randConstructors are the math/rand functions that merely build seeded
// generators — the sanctioned idiom — rather than drawing from the
// package-global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

// shardRuntimeAllowlist names the packages (paths relative to
// ix/internal/, matched exactly) that implement the parallel engine's
// OS-thread runtime. Concurrency inside them is the mechanism that keeps
// every other sim-visible package single-goroutine, so the go-statement,
// sync-import and wall-clock checks do not apply; the global-PRNG and
// map-iteration checks still do. Extending this list is a design
// decision — new entries need the epoch-barrier analysis in DESIGN.md
// §"Parallel engine and the determinism contract".
var shardRuntimeAllowlist = map[string]bool{
	"sim/shard": true,
	// ixnet's green-thread fibers are goroutines, but only one ever runs
	// at a time: park/resume hand a baton over unbuffered channels, and
	// the FIFO run queue is drained from the simulation thread. See
	// DESIGN.md §"ixnet: blocking facade and deterministic fibers".
	"ixnet": true,
}

// syncImports are the import paths whose presence means OS-level
// synchronization — mutexes, atomics, channels of control — which only
// the shard runtime may use.
var syncImports = map[string]bool{
	"sync": true, "sync/atomic": true,
}

func trimScope(pkgPath string) string {
	rest, ok := strings.CutPrefix(pkgPath, "ix/internal/")
	if !ok {
		rest = pkgPath
	}
	return rest
}

func inScope(pkgPath string) bool {
	first, _, _ := strings.Cut(trimScope(pkgPath), "/")
	return scopeRoots[first]
}

// shardRuntime reports whether pkgPath is an allowlisted shard-runtime
// package (relaxed checks).
func shardRuntime(pkgPath string) bool {
	return shardRuntimeAllowlist[trimScope(pkgPath)]
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	relaxed := shardRuntime(pass.Pkg.Path())
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		if !relaxed {
			checkSyncImports(pass, f)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if !relaxed {
					pass.Reportf(n.Pos(), "go statement in sim-visible package %s: the simulation is single-goroutine; concurrency here breaks fixed-seed determinism (only the shard runtime may spawn workers)", pass.Pkg.Name())
				}
			case *ast.SelectorExpr:
				checkSelector(pass, n, relaxed)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, n.Body)
				}
				return true
			}
			return true
		})
	}
	return nil
}

// checkSyncImports flags sync/atomic imports outside the shard runtime.
func checkSyncImports(pass *analysis.Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if syncImports[path] {
			pass.Reportf(imp.Pos(), "import %q in sim-visible package %s: mutexes and atomics imply cross-goroutine sharing, which breaks the single-goroutine shard model; shared sinks go through ix/internal/sim/shard's exported primitives", path, pass.Pkg.Name())
		}
	}
}

// checkSelector flags wall-clock reads and global math/rand draws. The
// wall-clock check is waived for shard-runtime packages (barrier idle
// telemetry measures real time by design); the PRNG check never is.
func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr, relaxed bool) {
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if !relaxed && wallClockFuncs[fn.Name()] {
			pass.Reportf(sel.Pos(), "time.%s in sim-visible package %s: wall-clock time breaks fixed-seed determinism; use the engine's virtual clock (sim.Time)", fn.Name(), pass.Pkg.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(sel.Pos(), "global rand.%s in sim-visible package %s: the process-global PRNG breaks fixed-seed determinism; draw from an engine- or injector-owned rand.New(rand.NewSource(seed))", fn.Name(), pass.Pkg.Name())
		}
	}
}

// checkMapRanges walks one function body and flags map-range loops whose
// effects depend on iteration order. Two shapes are sanctioned:
//
//   - commutative bodies: counters (x++, x += n on numeric types),
//     bitmask accumulation, delete, distinct-key inserts m2[k] = v keyed
//     directly by the range key, filtering via if/continue;
//   - the sorted-key idiom: the body only appends to slices, and every
//     such slice is passed to a sort call later in the same function.
func checkMapRanges(pass *analysis.Pass, body *ast.BlockStmt) {
	// Collect the function's statements once so the "sorted later"
	// check can look downstream of each range loop.
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		c := &rangeCheck{pass: pass, rng: rng}
		if c.bodyCommutes(rng.Body) {
			if len(c.appended) == 0 || c.appendTargetsSorted(body) {
				return true
			}
		}
		pass.Reportf(rng.Pos(), "map iteration order is randomized and this loop's effects are order-dependent; collect the keys, sort, and iterate the slice (DESIGN.md §Determinism)")
		return true
	})
}

type rangeCheck struct {
	pass *analysis.Pass
	rng  *ast.RangeStmt
	// appended are the slice variables the loop appends to; they must be
	// sorted downstream for the loop to pass.
	appended []*types.Var
}

// bodyCommutes reports whether every statement's effect is independent
// of iteration order (given distinct keys), recording append targets.
func (c *rangeCheck) bodyCommutes(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if !c.stmtCommutes(s) {
			return false
		}
	}
	return true
}

func (c *rangeCheck) stmtCommutes(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE && s.Label == nil
	case *ast.EmptyStmt:
		return true
	case *ast.BlockStmt:
		return c.bodyCommutes(s)
	case *ast.IfStmt:
		if s.Init != nil && !c.stmtCommutes(s.Init) {
			return false
		}
		if !c.bodyCommutes(s.Body) {
			return false
		}
		if s.Else != nil {
			return c.stmtCommutes(s.Else)
		}
		return true
	case *ast.ExprStmt:
		// delete(m2, k): each iteration touches its own key.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
		return false
	case *ast.AssignStmt:
		return c.assignCommutes(s)
	default:
		return false
	}
}

func (c *rangeCheck) assignCommutes(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
		token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative accumulation — but only on numeric types (string
		// concatenation via += is order-dependent).
		for _, l := range s.Lhs {
			t := c.pass.TypesInfo.TypeOf(l)
			if t == nil {
				return false
			}
			b, ok := t.Underlying().(*types.Basic)
			if !ok || b.Info()&types.IsNumeric == 0 {
				return false
			}
		}
		return true
	case token.ASSIGN, token.DEFINE:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		// x = append(x, ...): sanctioned iff x is sorted downstream.
		if v := c.appendToSelf(s); v != nil {
			c.appended = append(c.appended, v)
			return true
		}
		// Map inserts that commute. m2[k] = v keyed by the range key
		// writes distinct keys; m2[v] = e keyed by the range value may
		// collide, so the written value must not depend on the range
		// key (colliding writes are then identical). Neither may read
		// the target map.
		if idx, ok := s.Lhs[0].(*ast.IndexExpr); ok && s.Tok == token.ASSIGN {
			if kid, ok := idx.Index.(*ast.Ident); ok && !c.mentions(s.Rhs[0], idx.X) {
				if c.isRangeVar(kid, c.rng.Key) && !c.mentions(idx.X, c.rng.Key) {
					return true
				}
				if c.isRangeVar(kid, c.rng.Value) && !c.mentions(s.Rhs[0], c.rng.Key) {
					return true
				}
			}
		}
		return false
	}
	return false
}

// appendToSelf matches `x = append(x, ...)` and returns x's variable.
func (c *rangeCheck) appendToSelf(s *ast.AssignStmt) *types.Var {
	lid, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fid, ok := call.Fun.(*ast.Ident)
	if !ok || fid.Name != "append" {
		return nil
	}
	if _, isBuiltin := c.pass.TypesInfo.Uses[fid].(*types.Builtin); !isBuiltin {
		return nil
	}
	aid, ok := call.Args[0].(*ast.Ident)
	if !ok || aid.Name != lid.Name {
		return nil
	}
	v, _ := c.pass.TypesInfo.ObjectOf(lid).(*types.Var)
	return v
}

// isRangeVar reports whether id denotes the same variable as the range
// clause's key or value ident rv.
func (c *rangeCheck) isRangeVar(id *ast.Ident, rv ast.Expr) bool {
	rid, ok := rv.(*ast.Ident)
	if !ok {
		return false
	}
	ro := c.pass.TypesInfo.ObjectOf(rid)
	return ro != nil && c.pass.TypesInfo.ObjectOf(id) == ro
}

// mentions reports whether expression e references the object named by
// expression target (an ident; non-idents conservatively return true).
func (c *rangeCheck) mentions(e ast.Expr, target ast.Expr) bool {
	if e == nil {
		return false
	}
	tid, ok := target.(*ast.Ident)
	if !ok {
		return true // can't prove independence of a non-ident target
	}
	to := c.pass.TypesInfo.ObjectOf(tid)
	if to == nil {
		return false // blank ident: nothing can reference it
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.pass.TypesInfo.ObjectOf(id) == to {
			found = true
		}
		return !found
	})
	return found
}

// appendTargetsSorted reports whether every slice the loop appends to is
// passed to a sort call after the loop within the same function body.
func (c *rangeCheck) appendTargetsSorted(fnBody *ast.BlockStmt) bool {
	for _, v := range c.appended {
		if v == nil || !c.sortedAfter(fnBody, v) {
			return false
		}
	}
	return true
}

func (c *rangeCheck) sortedAfter(fnBody *ast.BlockStmt, v *types.Var) bool {
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < c.rng.End() {
			return true
		}
		if c.callSorts(call, v) {
			sorted = true
		}
		return true
	})
	return sorted
}

// callSorts reports whether call is a sanctioned sort of the appended
// slice v. Two shapes qualify:
//
//   - a sort or slices package call that mentions v anywhere in its
//     arguments (sort.Strings(ks), sort.Slice(ks, less), slices.SortFunc);
//   - a helper whose name contains "sort" AND that receives v directly
//     as an argument in a slice-typed parameter slot. The signature
//     requirement keeps the heuristic narrow: sortKey(ks[0]) or
//     resorted(len(ks)) merely mention v and do not discharge the
//     obligation.
func (c *rangeCheck) callSorts(call *ast.CallExpr, v *types.Var) bool {
	fun := call.Fun
	switch idx := fun.(type) { // unwrap explicit generic instantiation
	case *ast.IndexExpr:
		fun = idx.X
	case *ast.IndexListExpr:
		fun = idx.X
	}
	var name string
	switch f := fun.(type) {
	case *ast.SelectorExpr:
		if obj, ok := c.pass.TypesInfo.Uses[f.Sel].(*types.Func); ok && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sort", "slices":
				return c.argsMention(call.Args, v)
			}
		}
		name = f.Sel.Name
	case *ast.Ident:
		name = f.Name
	default:
		return false
	}
	if !strings.Contains(strings.ToLower(name), "sort") {
		return false
	}
	sig, ok := c.pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false
	}
	for i, a := range call.Args {
		id, ok := a.(*ast.Ident)
		if !ok || c.pass.TypesInfo.ObjectOf(id) != v {
			continue
		}
		if paramIsSlice(sig, i) {
			return true
		}
	}
	return false
}

// argsMention reports whether v appears anywhere in args.
func (c *rangeCheck) argsMention(args []ast.Expr, v *types.Var) bool {
	found := false
	for _, a := range args {
		ast.Inspect(a, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && c.pass.TypesInfo.ObjectOf(id) == v {
				found = true
			}
			return !found
		})
	}
	return found
}

// paramIsSlice reports whether the parameter receiving argument i has
// slice type (for a variadic final parameter, whether the collected
// element type is a slice).
func paramIsSlice(sig *types.Signature, i int) bool {
	params := sig.Params()
	if params.Len() == 0 {
		return false
	}
	last := params.Len() - 1
	if i >= params.Len() {
		if !sig.Variadic() {
			return false
		}
		i = last
	}
	t := params.At(i).Type()
	if sig.Variadic() && i == last {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		t = s.Elem()
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}
