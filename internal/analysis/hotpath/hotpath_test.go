package hotpath_test

import (
	"testing"

	"ix/internal/analysis/analysistest"
	"ix/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, hotpath.Analyzer, "hp")
}
