// Package hp exercises the hotpath analyzer: every rejected allocation
// shape under an //ix:hotpath annotation, and the sanctioned idioms
// (hoisted buffers, bound method values, pointer-shaped `any` args).
package hp

import "fmt"

type ring struct {
	buf     []byte
	scratch [64]byte
	onFire  func(any)
	sink    []int
}

type frame struct{ n int }

func sinkAny(a any)      {}
func variadic(xs ...any) {}
func plain(n int) int    { return n }

// --- red cases ---

//ix:hotpath
func closures(r *ring) {
	f := func() {} // want `closure literal allocates per call`
	f()
}

//ix:hotpath
func spawns(r *ring) {
	go plain(1) // want `go statement on a per-message path`
}

//ix:hotpath
func defers(r *ring) {
	defer plain(1) // want `defer on a per-message path`
}

//ix:hotpath
func formats(r *ring, n int) {
	fmt.Println(n) // want `fmt\.Println formats and allocates per call`
}

//ix:hotpath
func allocates(r *ring, n int) *frame {
	b := make([]byte, n) // want `make\(\.\.\.\) allocates per call`
	_ = b
	p := new(frame) // want `new\(\.\.\.\) heap-allocates per call`
	_ = p
	return &frame{n: n} // want `&frame\{\.\.\.\} heap-allocates per call`
}

//ix:hotpath
func sliceLit(r *ring, b []byte) {
	bufs := [][]byte{b} // want `\[\]\[\]byte literal allocates per call`
	_ = bufs
}

//ix:hotpath
func stringBuild(r *ring, a, b string) string {
	return a + b // want `string concatenation allocates per call`
}

//ix:hotpath
func stringConv(r *ring, b []byte) string {
	return string(b) // want `string\(\.\.\.\) conversion copies and allocates per call`
}

//ix:hotpath
func boxesInt(r *ring, n int) {
	sinkAny(n) // want `boxing int into any heap-allocates per call`
}

//ix:hotpath
func boxesStruct(r *ring, f frame) {
	var a any
	a = f // want `boxing frame into any heap-allocates per call`
	_ = a
}

//ix:hotpath
func variadicBox(r *ring, n int) {
	variadic(n, n) // want `call materializes a variadic any slice per call` `boxing int into any` `boxing int into any`
}

// --- green cases ---

//ix:hotpath
func hoistedAppend(r *ring, b []byte) {
	r.buf = r.buf[:0]
	r.buf = append(r.buf, b...) // append into a hoisted buffer is sanctioned
	n := copy(r.scratch[:], b)
	_ = n
}

//ix:hotpath
func pointerShapedAny(r *ring, f *frame) {
	sinkAny(f) // *frame rides the interface word: no allocation
	r.onFire(f)
}

//ix:hotpath
func boundMethod(r *ring, n int) int {
	return plain(n)
}

//ix:hotpath
func valueStruct(r *ring, n int) frame {
	return frame{n: n} // value composite literal stays on the stack
}

//ix:hotpath
func constBox(r *ring, n int) {
	if n < 0 {
		panic("hp: negative count") // constants box into static data: no per-call allocation
	}
	sinkAny("tag") // likewise for any constant operand
}

//ix:hotpath
func suppressedAlloc(r *ring) []byte {
	//ixvet:ignore(hotpath) fixture: cold sub-path, demonstrates the suppression grammar
	return make([]byte, 1)
}

// unannotated functions may do anything.
func coldPath(n int) string {
	return fmt.Sprintf("%d", n)
}
