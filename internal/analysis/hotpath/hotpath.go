// Package hotpath turns the repository's TestZeroAlloc* runtime contract
// into a compile-time gate. A function annotated with an `//ix:hotpath`
// doc-comment line is a per-message path (tcp send/ACK, nicsim rings,
// the libix event loop, the faults pass-through): under it the analyzer
// rejects the syntactic forms that allocate or box on every call.
//
// Rejected under //ix:hotpath:
//
//   - closure literals (captures allocate; the sanctioned idiom is a
//     bound method value hoisted to a struct field at setup time)
//   - go and defer statements
//   - any use of package fmt
//   - new(T), make(...), &T{...}, and slice/map composite literals
//   - string concatenation and string<->[]byte conversions
//   - boxing a non-pointer-shaped value into an interface (pointer,
//     chan, map and func values fit an interface word and do not
//     allocate — the engine's `any`-typed event trampolines rely on
//     exactly that — but ints, structs and slices heap-allocate)
//   - calls that materialize a variadic interface slice (fmt-style APIs)
//
// Appends are allowed: the repository's hot paths append into slices
// whose capacity is hoisted and ping-ponged, which the runtime
// TestZeroAlloc* suite still verifies.
package hotpath

import (
	"go/ast"
	"go/types"
	"strings"

	"ix/internal/analysis"
)

// Marker is the annotation that opts a function into the hot-path
// contract.
const Marker = "//ix:hotpath"

// Analyzer is the zero-alloc hot-path checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: `rejects per-call allocation and boxing under //ix:hotpath-annotated functions.
The annotation marks per-message functions whose steady state must not
allocate (the TestZeroAlloc* contract); violations are closures, defers,
fmt, new/make/&T{}, slice/map literals, string building, non-pointer
interface boxing and variadic-interface calls.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !annotated(fn) {
				continue
			}
			c := &checker{pass: pass, fn: fn}
			c.block(fn.Body)
		}
	}
	return nil
}

func annotated(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, Marker) {
			return true
		}
	}
	return false
}

type checker struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
}

func (c *checker) report(n ast.Node, format string, args ...any) {
	c.pass.Reportf(n.Pos(), "//ix:hotpath %s: "+format,
		append([]any{c.fn.Name.Name}, args...)...)
}

func (c *checker) block(b *ast.BlockStmt) {
	ast.Inspect(b, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.report(n, "closure literal allocates per call; hoist a bound method value at setup time")
			return false
		case *ast.GoStmt:
			c.report(n, "go statement on a per-message path")
			return false
		case *ast.DeferStmt:
			c.report(n, "defer on a per-message path")
			return false
		case *ast.UnaryExpr:
			if cl, ok := n.X.(*ast.CompositeLit); ok {
				c.report(n, "&%s{...} heap-allocates per call", typeLabel(c.pass, cl))
				return false
			}
		case *ast.CompositeLit:
			if t := c.pass.TypesInfo.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					c.report(n, "%s literal allocates per call; reuse a hoisted buffer", typeLabel(c.pass, n))
					return false
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if t := c.pass.TypesInfo.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						c.report(n, "string concatenation allocates per call")
					}
				}
			}
		case *ast.CallExpr:
			c.call(n)
		case *ast.AssignStmt:
			c.boxingInAssign(n)
		case *ast.ReturnStmt:
			c.boxingInReturn(n)
		}
		return true
	})
}

func (c *checker) call(call *ast.CallExpr) {
	// fmt use.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			c.report(call, "fmt.%s formats and allocates per call", obj.Name())
			return
		}
	}
	// Builtins and conversions.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "new":
				c.report(call, "new(...) heap-allocates per call")
				return
			case "make":
				c.report(call, "make(...) allocates per call; hoist the buffer")
				return
			}
		}
	}
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		c.conversion(call, tv.Type)
		return
	}
	// Interface boxing at argument positions + variadic interface calls.
	sig := c.signatureOf(call.Fun)
	if sig == nil {
		return
	}
	params := sig.Params()
	np := params.Len()
	for i, a := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			st := params.At(np - 1).Type().(*types.Slice)
			pt = st.Elem()
			if call.Ellipsis == 0 && isInterface(pt) && i == np-1 {
				c.report(call, "call materializes a variadic %s slice per call", pt)
			}
		case i < np:
			pt = params.At(i).Type()
		default:
			continue
		}
		c.boxing(a, pt)
	}
}

// conversion flags allocating conversions: string<->[]byte/[]rune and
// concrete->interface.
func (c *checker) conversion(call *ast.CallExpr, to types.Type) {
	from := c.pass.TypesInfo.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	toU, fromU := to.Underlying(), from.Underlying()
	if isInterface(to) {
		c.boxing(call.Args[0], to)
		return
	}
	_, toSlice := toU.(*types.Slice)
	_, fromSlice := fromU.(*types.Slice)
	toStr := isString(toU)
	fromStr := isString(fromU)
	if (toSlice && fromStr) || (toStr && fromSlice) {
		c.report(call, "%s(...) conversion copies and allocates per call", types.TypeString(to, types.RelativeTo(c.pass.Pkg)))
	}
}

func (c *checker) boxingInAssign(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i := range s.Lhs {
		lt := c.pass.TypesInfo.TypeOf(s.Lhs[i])
		if lt != nil {
			c.boxing(s.Rhs[i], lt)
		}
	}
}

func (c *checker) boxingInReturn(s *ast.ReturnStmt) {
	sig, ok := c.pass.TypesInfo.Defs[c.fn.Name].(*types.Func)
	if !ok {
		return
	}
	res := sig.Type().(*types.Signature).Results()
	if res.Len() != len(s.Results) {
		return
	}
	for i, r := range s.Results {
		c.boxing(r, res.At(i).Type())
	}
}

// boxing reports expr if assigning it to target boxes a value that
// cannot ride in the interface word.
func (c *checker) boxing(expr ast.Expr, target types.Type) {
	if !isInterface(target) {
		return
	}
	t := c.pass.TypesInfo.TypeOf(expr)
	if t == nil || isInterface(t) {
		return
	}
	// nil never allocates; neither do constants — the compiler boxes
	// them once into static read-only data (panic("msg") is the common
	// case on guard paths).
	if tv, ok := c.pass.TypesInfo.Types[expr]; ok && (tv.IsNil() || tv.Value != nil) {
		return
	}
	if pointerShaped(t) {
		return
	}
	c.report(expr, "boxing %s into %s heap-allocates per call (only pointer-shaped values ride the interface word)",
		types.TypeString(t, types.RelativeTo(c.pass.Pkg)),
		types.TypeString(target, types.RelativeTo(c.pass.Pkg)))
}

func (c *checker) signatureOf(fun ast.Expr) *types.Signature {
	t := c.pass.TypesInfo.TypeOf(fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// pointerShaped reports whether values of t fit the interface data word
// without allocation.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func typeLabel(pass *analysis.Pass, cl *ast.CompositeLit) string {
	if t := pass.TypesInfo.TypeOf(cl); t != nil {
		return types.TypeString(t, types.RelativeTo(pass.Pkg))
	}
	return "composite"
}
