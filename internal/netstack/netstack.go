// Package netstack provides the per-core network stack instance that
// surrounds the TCP engine: Ethernet framing, ARP (the paper implemented
// its own RFC-compliant UDP, ARP and ICMP, §4.2), IPv4 with header
// checksums, ICMP echo, a minimal UDP layer, and zero-copy frame assembly
// for transmit. One Stack per elastic thread; the ARP table is the single
// RCU-style shared structure between threads on a host (§4.4).
package netstack

import (
	"time"

	"ix/internal/fabric"
	"ix/internal/mem"
	"ix/internal/tcp"
	"ix/internal/timerwheel"
	"ix/internal/wire"
)

// ARPTable is the host-wide ARP cache. Reads are coherence-free in the
// common case (single-writer updates bump a version, mimicking RCU
// publication); the Reads/Updates counters make the paper's "common case
// reads are coherence-free but rare updates are not" auditable in tests.
type ARPTable struct {
	entries map[wire.IPv4]wire.MAC
	version uint64

	Reads   uint64
	Updates uint64
}

// NewARPTable returns an empty table.
func NewARPTable() *ARPTable {
	return &ARPTable{entries: make(map[wire.IPv4]wire.MAC)}
}

// Lookup resolves ip, reporting whether an entry exists.
func (t *ARPTable) Lookup(ip wire.IPv4) (wire.MAC, bool) {
	t.Reads++
	m, ok := t.entries[ip]
	return m, ok
}

// Learn installs or refreshes a mapping (the RCU update path).
func (t *ARPTable) Learn(ip wire.IPv4, mac wire.MAC) {
	t.Updates++
	t.version++
	t.entries[ip] = mac
}

// Version returns the update generation, used by tests to verify the
// read path does not publish.
func (t *ARPTable) Version() uint64 { return t.version }

// UDPHandler consumes a received datagram. The mbuf backing data follows
// the same zero-copy reference rules as TCP receive.
type UDPHandler func(src wire.IPv4, srcPort, dstPort uint16, data []byte, buf *mem.Mbuf)

// Config assembles a Stack.
type Config struct {
	LocalIP  wire.IPv4
	LocalMAC wire.MAC
	// Now returns virtual nanoseconds.
	Now func() int64
	// Wheel is the per-thread timer wheel (shared with TCP).
	Wheel *timerwheel.Wheel
	// SendFrame transmits an assembled L2 frame (to the thread's NIC TX
	// queue). The frame comes from the stack's frame pool; whoever
	// consumes it on the receiving side releases it.
	SendFrame func(frame *fabric.Frame)
	// Events receives TCP protocol events.
	Events tcp.Events
	// ARP is the host-shared ARP table.
	ARP *ARPTable
	// TCP tuning passed through to the TCP engine.
	RcvWnd     int
	MSS        int
	PortOK     func(port uint16, dst wire.IPv4, dport uint16) bool
	Seed       uint64
	MinRTO     time.Duration
	MaxRexmits int
	TimeWait   time.Duration
	DelAck     time.Duration
	// ExpectedConns presizes the TCP engine's connection table.
	ExpectedConns int
}

// Stack is one per-core network stack instance.
type Stack struct {
	cfg    Config
	tcp    *tcp.Stack
	udp    map[uint16]UDPHandler
	frames *fabric.FramePool

	// pendingARP holds frames awaiting resolution, per next hop.
	pendingARP map[wire.IPv4][]*fabric.Frame

	ipID uint16

	// Stats.
	RxFrames    uint64
	RxARP       uint64
	RxICMP      uint64
	RxUDP       uint64
	RxTCP       uint64
	RxDropped   uint64
	TxFrames    uint64
	ARPRequests uint64
	ARPReplies  uint64
}

// New builds a stack and its embedded TCP engine.
func New(cfg Config) *Stack {
	if cfg.ARP == nil {
		cfg.ARP = NewARPTable()
	}
	s := &Stack{
		cfg:        cfg,
		udp:        make(map[uint16]UDPHandler),
		frames:     fabric.NewFramePool(),
		pendingARP: make(map[wire.IPv4][]*fabric.Frame),
	}
	s.tcp = tcp.NewStack(tcp.Config{
		LocalIP:    cfg.LocalIP,
		Now:        cfg.Now,
		Wheel:      cfg.Wheel,
		Output:     s.outputTCP,
		Events:     cfg.Events,
		RcvWnd:     cfg.RcvWnd,
		MSS:        cfg.MSS,
		PortOK:     cfg.PortOK,
		Seed:       cfg.Seed,
		MinRTO:     cfg.MinRTO,
		MaxRexmits: cfg.MaxRexmits,
		TimeWait:   cfg.TimeWait,
		DelAck:     cfg.DelAck,

		ExpectedConns: cfg.ExpectedConns,
	})
	return s
}

// TCP returns the embedded TCP engine.
func (s *Stack) TCP() *tcp.Stack { return s.tcp }

// FramePool returns the stack's transmit frame pool, for the
// frame-conservation invariants of the fault-injection tests.
func (s *Stack) FramePool() *fabric.FramePool { return s.frames }

// Input processes one received frame held in buf (the posted receive
// mbuf the simulated DMA wrote into). The stack keeps zero-copy views
// into buf for TCP/UDP payload delivery; callers must Unref buf after
// Input returns (receivers take their own references).
func (s *Stack) Input(buf *mem.Mbuf) {
	s.RxFrames++
	data := buf.Bytes()
	var eth wire.EthHeader
	if err := eth.Unmarshal(data); err != nil {
		s.RxDropped++
		return
	}
	switch eth.EtherType {
	case wire.EtherTypeARP:
		s.RxARP++
		s.inputARP(data[wire.EthHdrLen:])
	case wire.EtherTypeIPv4:
		s.inputIPv4(data[wire.EthHdrLen:], buf)
	default:
		s.RxDropped++
	}
}

func (s *Stack) inputARP(p []byte) {
	var arp wire.ARPPacket
	if arp.Unmarshal(p) != nil {
		s.RxDropped++
		return
	}
	// Learn the sender either way.
	s.cfg.ARP.Learn(arp.SenderIP, arp.SenderHW)
	s.flushPending(arp.SenderIP)
	if arp.Op == wire.ARPRequest && arp.TargetIP == s.cfg.LocalIP {
		reply := wire.ARPPacket{
			Op:       wire.ARPReply,
			SenderHW: s.cfg.LocalMAC,
			SenderIP: s.cfg.LocalIP,
			TargetHW: arp.SenderHW,
			TargetIP: arp.SenderIP,
		}
		s.ARPReplies++
		s.sendEth(arp.SenderHW, wire.EtherTypeARP, func(b []byte) { reply.Marshal(b) }, wire.ARPLen)
	}
}

func (s *Stack) inputIPv4(p []byte, buf *mem.Mbuf) {
	var iph wire.IPv4Header
	if err := iph.Unmarshal(p); err != nil {
		s.RxDropped++
		return
	}
	if iph.Dst != s.cfg.LocalIP {
		s.RxDropped++
		return
	}
	if int(iph.TotalLen) > len(p) {
		s.RxDropped++
		return
	}
	body := p[wire.IPv4HdrLen:iph.TotalLen]
	switch iph.Proto {
	case wire.ProtoTCP:
		s.RxTCP++
		s.tcp.Input(iph.Src, iph.Dst, body, buf)
	case wire.ProtoUDP:
		s.RxUDP++
		s.inputUDP(iph.Src, body, buf)
	case wire.ProtoICMP:
		s.RxICMP++
		s.inputICMP(iph.Src, body)
	default:
		s.RxDropped++
	}
}

func (s *Stack) inputUDP(src wire.IPv4, p []byte, buf *mem.Mbuf) {
	var uh wire.UDPHeader
	if uh.Unmarshal(p) != nil || int(uh.Length) > len(p) {
		s.RxDropped++
		return
	}
	h, ok := s.udp[uh.DstPort]
	if !ok {
		s.RxDropped++
		return
	}
	h(src, uh.SrcPort, uh.DstPort, p[wire.UDPHdrLen:uh.Length], buf)
}

func (s *Stack) inputICMP(src wire.IPv4, p []byte) {
	var icmp wire.ICMPEcho
	if icmp.Unmarshal(p) != nil {
		s.RxDropped++
		return
	}
	if icmp.Type != wire.ICMPEchoRequest {
		return
	}
	// Echo reply with the same payload.
	payload := p[wire.ICMPHdrLen:]
	reply := wire.ICMPEcho{Type: wire.ICMPEchoReply, ID: icmp.ID, Seq: icmp.Seq}
	s.sendIPv4(src, wire.ProtoICMP, wire.ICMPHdrLen+len(payload), func(b []byte) {
		copy(b[wire.ICMPHdrLen:], payload)
		reply.Marshal(b)
	})
}

// RegisterUDP binds a handler to a local UDP port.
func (s *Stack) RegisterUDP(port uint16, h UDPHandler) { s.udp[port] = h }

// SendUDP transmits a datagram.
func (s *Stack) SendUDP(dst wire.IPv4, srcPort, dstPort uint16, payload []byte) {
	uh := wire.UDPHeader{SrcPort: srcPort, DstPort: dstPort, Length: uint16(wire.UDPHdrLen + len(payload))}
	s.sendIPv4(dst, wire.ProtoUDP, wire.UDPHdrLen+len(payload), func(b []byte) {
		uh.Marshal(b)
		copy(b[wire.UDPHdrLen:], payload)
	})
}

// outputTCP assembles a TCP segment into a frame (the simulated DMA
// gather of the zero-copy scatter/gather transmit path).
func (s *Stack) outputTCP(c *tcp.Conn, hdr *wire.TCPHeader, payload [][]byte) {
	n := 0
	for _, b := range payload {
		n += len(b)
	}
	segLen := hdr.Len() + n
	dst := c.Key().DstIP
	s.sendIPv4(dst, wire.ProtoTCP, segLen, func(b []byte) {
		hdr.Marshal(b)
		off := hdr.Len()
		for _, pb := range payload {
			off += copy(b[off:], pb)
		}
		wire.SetTCPChecksum(s.cfg.LocalIP, dst, b[:segLen])
	})
}

// sendIPv4 builds the IP packet around fill (which writes the transport
// body of bodyLen bytes) and transmits it, resolving ARP as needed. The
// frame buffer comes from the stack's pool; fill must write every body
// byte (pooled buffers are not zeroed).
func (s *Stack) sendIPv4(dst wire.IPv4, proto uint8, bodyLen int, fill func([]byte)) {
	total := wire.EthHdrLen + wire.IPv4HdrLen + bodyLen
	f := s.frames.Get(total)
	frame := f.Data
	s.ipID++
	iph := wire.IPv4Header{
		TotalLen: uint16(wire.IPv4HdrLen + bodyLen),
		ID:       s.ipID,
		Flags:    wire.DontFragment,
		TTL:      64,
		Proto:    proto,
		Src:      s.cfg.LocalIP,
		Dst:      dst,
	}
	iph.Marshal(frame[wire.EthHdrLen:])
	fill(frame[wire.EthHdrLen+wire.IPv4HdrLen:])
	if mac, ok := s.cfg.ARP.Lookup(dst); ok {
		s.finishEth(f, mac)
		return
	}
	// Queue behind ARP resolution.
	s.pendingARP[dst] = append(s.pendingARP[dst], f)
	if len(s.pendingARP[dst]) == 1 {
		s.sendARPRequest(dst)
	}
}

func (s *Stack) sendARPRequest(dst wire.IPv4) {
	req := wire.ARPPacket{
		Op:       wire.ARPRequest,
		SenderHW: s.cfg.LocalMAC,
		SenderIP: s.cfg.LocalIP,
		TargetIP: dst,
	}
	s.ARPRequests++
	s.sendEth(wire.Broadcast, wire.EtherTypeARP, func(b []byte) { req.Marshal(b) }, wire.ARPLen)
}

func (s *Stack) flushPending(ip wire.IPv4) {
	frames := s.pendingARP[ip]
	if len(frames) == 0 {
		return
	}
	delete(s.pendingARP, ip)
	mac, ok := s.cfg.ARP.Lookup(ip)
	if !ok {
		return
	}
	for _, f := range frames {
		s.finishEth(f, mac)
	}
}

// finishEth writes the Ethernet header into an assembled frame and sends.
func (s *Stack) finishEth(f *fabric.Frame, dst wire.MAC) {
	eth := wire.EthHeader{Dst: dst, Src: s.cfg.LocalMAC, EtherType: wire.EtherTypeIPv4}
	eth.Marshal(f.Data)
	s.TxFrames++
	s.cfg.SendFrame(f)
}

// sendEth builds and sends a non-IP frame (ARP).
func (s *Stack) sendEth(dst wire.MAC, etherType uint16, fill func([]byte), bodyLen int) {
	f := s.frames.Get(wire.EthHdrLen + bodyLen)
	eth := wire.EthHeader{Dst: dst, Src: s.cfg.LocalMAC, EtherType: etherType}
	eth.Marshal(f.Data)
	fill(f.Data[wire.EthHdrLen:])
	s.TxFrames++
	s.cfg.SendFrame(f)
}

// Flush emits pending pure ACKs (see tcp.Stack.Flush).
func (s *Stack) Flush() { s.tcp.Flush() }
