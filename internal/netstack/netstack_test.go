package netstack

import (
	"testing"
	"time"

	"ix/internal/fabric"
	"ix/internal/mem"
	"ix/internal/tcp"
	"ix/internal/timerwheel"
	"ix/internal/wire"
)

type nullEvents struct{ recvd []byte }

func (n *nullEvents) Knock(l *tcp.Listener, key wire.FlowKey) bool { return true }
func (n *nullEvents) Accepted(c *tcp.Conn)                         {}
func (n *nullEvents) Connected(c *tcp.Conn, ok bool)               {}
func (n *nullEvents) Recv(c *tcp.Conn, buf *mem.Mbuf, data []byte) {
	n.recvd = append(n.recvd, data...)
}
func (n *nullEvents) Sent(c *tcp.Conn, acked, released int) {}
func (n *nullEvents) RemoteClosed(c *tcp.Conn)       {}
func (n *nullEvents) Dead(c *tcp.Conn, r tcp.Reason) {}

type host struct {
	s      *Stack
	out    [][]byte
	pool   *mem.MbufPool
	events *nullEvents
}

func newHost(now *int64, ip wire.IPv4, mac wire.MAC, arp *ARPTable) *host {
	h := &host{pool: mem.NewMbufPool(mem.NewRegion(4), 0), events: &nullEvents{}}
	h.s = New(Config{
		LocalIP:  ip,
		LocalMAC: mac,
		Now:      func() int64 { return *now },
		Wheel:    timerwheel.New(timerwheel.DefaultTick, 0),
		SendFrame: func(f *fabric.Frame) {
			h.out = append(h.out, append([]byte(nil), f.Data...))
			f.Release()
		},
		Events: h.events,
		ARP:    arp,
	})
	return h
}

// exchange delivers frames between two hosts until quiescent.
func exchange(a, b *host) {
	for i := 0; i < 50; i++ {
		moved := false
		for _, f := range a.out {
			buf := b.pool.Alloc()
			buf.SetData(f)
			b.s.Input(buf)
			buf.Unref()
			moved = true
		}
		a.out = nil
		for _, f := range b.out {
			buf := a.pool.Alloc()
			buf.SetData(f)
			a.s.Input(buf)
			buf.Unref()
			moved = true
		}
		b.out = nil
		a.s.Flush()
		b.s.Flush()
		if !moved && len(a.out) == 0 && len(b.out) == 0 {
			return
		}
	}
}

func TestARPResolution(t *testing.T) {
	now := int64(0)
	ipA, ipB := wire.Addr4(10, 0, 0, 1), wire.Addr4(10, 0, 0, 2)
	a := newHost(&now, ipA, wire.MAC{2, 0, 0, 0, 0, 1}, nil)
	b := newHost(&now, ipB, wire.MAC{2, 0, 0, 0, 0, 2}, nil)
	// a pings b with no ARP entry: must queue behind an ARP request.
	a.s.SendUDP(ipB, 1000, 2000, []byte("queued"))
	if a.s.ARPRequests != 1 {
		t.Fatalf("arp requests = %d", a.s.ARPRequests)
	}
	got := []byte(nil)
	b.s.RegisterUDP(2000, func(src wire.IPv4, sp, dp uint16, data []byte, buf *mem.Mbuf) {
		got = append([]byte(nil), data...)
	})
	exchange(a, b)
	if string(got) != "queued" {
		t.Fatalf("udp payload after ARP resolution = %q", got)
	}
	if b.s.ARPReplies != 1 {
		t.Fatalf("b sent %d arp replies", b.s.ARPReplies)
	}
	// Second send uses the cached entry: no new request.
	a.s.SendUDP(ipB, 1000, 2000, []byte("fast"))
	if a.s.ARPRequests != 1 {
		t.Fatal("ARP cache not used")
	}
}

func TestICMPEcho(t *testing.T) {
	now := int64(0)
	arp := NewARPTable()
	ipA, ipB := wire.Addr4(10, 0, 0, 1), wire.Addr4(10, 0, 0, 2)
	macA, macB := wire.MAC{2, 0, 0, 0, 0, 1}, wire.MAC{2, 0, 0, 0, 0, 2}
	b := newHost(&now, ipB, macB, arp)
	arp.Learn(ipA, macA)
	arp.Learn(ipB, macB)
	// Build an ICMP echo request from a to b by crafting a frame.
	msg := make([]byte, wire.ICMPHdrLen+8)
	copy(msg[wire.ICMPHdrLen:], "payload!")
	icmp := wire.ICMPEcho{Type: wire.ICMPEchoRequest, ID: 42, Seq: 7}
	icmp.Marshal(msg)
	frame := make([]byte, wire.EthHdrLen+wire.IPv4HdrLen+len(msg))
	(&wire.EthHeader{Dst: macB, Src: macA, EtherType: wire.EtherTypeIPv4}).Marshal(frame)
	iph := wire.IPv4Header{TotalLen: uint16(wire.IPv4HdrLen + len(msg)), TTL: 64, Proto: wire.ProtoICMP, Src: ipA, Dst: ipB}
	iph.Marshal(frame[wire.EthHdrLen:])
	copy(frame[wire.EthHdrLen+wire.IPv4HdrLen:], msg)
	buf := b.pool.Alloc()
	buf.SetData(frame)
	b.s.Input(buf)
	buf.Unref()
	if len(b.out) != 1 {
		t.Fatalf("echo reply frames = %d", len(b.out))
	}
	// Validate the reply.
	reply := b.out[0]
	var riph wire.IPv4Header
	if err := riph.Unmarshal(reply[wire.EthHdrLen:]); err != nil {
		t.Fatal(err)
	}
	if riph.Dst != ipA || riph.Proto != wire.ProtoICMP {
		t.Fatalf("reply header: %+v", riph)
	}
	var re wire.ICMPEcho
	if err := re.Unmarshal(reply[wire.EthHdrLen+wire.IPv4HdrLen : wire.EthHdrLen+riph.TotalLen]); err != nil {
		t.Fatal(err)
	}
	if re.Type != wire.ICMPEchoReply || re.ID != 42 || re.Seq != 7 {
		t.Fatalf("reply: %+v", re)
	}
}

func TestTCPOverNetstack(t *testing.T) {
	now := int64(0)
	arp := NewARPTable()
	ipA, ipB := wire.Addr4(10, 0, 0, 1), wire.Addr4(10, 0, 0, 2)
	macA, macB := wire.MAC{2, 0, 0, 0, 0, 1}, wire.MAC{2, 0, 0, 0, 0, 2}
	a := newHost(&now, ipA, macA, arp)
	b := newHost(&now, ipB, macB, arp)
	arp.Learn(ipA, macA)
	arp.Learn(ipB, macB)
	if _, err := b.s.TCP().Listen(80, nil); err != nil {
		t.Fatal(err)
	}
	c, err := a.s.TCP().Connect(ipB, 80, 0)
	if err != nil {
		t.Fatal(err)
	}
	exchange(a, b)
	if c.State() != tcp.StateEstablished {
		t.Fatalf("state = %v", c.State())
	}
	c.Send([]byte("through ethernet and ip"))
	exchange(a, b)
	if string(b.events.recvd) != "through ethernet and ip" {
		t.Fatalf("b received %q", b.events.recvd)
	}
}

func TestARPTableRCUStats(t *testing.T) {
	arp := NewARPTable()
	arp.Learn(wire.Addr4(1, 1, 1, 1), wire.MAC{1})
	v := arp.Version()
	for i := 0; i < 100; i++ {
		arp.Lookup(wire.Addr4(1, 1, 1, 1))
	}
	if arp.Version() != v {
		t.Fatal("reads published a new version (should be coherence-free)")
	}
	if arp.Reads != 100 {
		t.Fatalf("reads = %d", arp.Reads)
	}
	arp.Learn(wire.Addr4(1, 1, 1, 2), wire.MAC{2})
	if arp.Version() != v+1 || arp.Updates != 2 {
		t.Fatal("update accounting wrong")
	}
}

func TestDropsCounted(t *testing.T) {
	now := int64(0)
	h := newHost(&now, wire.Addr4(10, 0, 0, 1), wire.MAC{2, 0, 0, 0, 0, 1}, nil)
	// Not-for-us IP packet.
	frame := make([]byte, wire.EthHdrLen+wire.IPv4HdrLen)
	(&wire.EthHeader{Dst: wire.MAC{2, 0, 0, 0, 0, 1}, EtherType: wire.EtherTypeIPv4}).Marshal(frame)
	iph := wire.IPv4Header{TotalLen: wire.IPv4HdrLen, TTL: 64, Proto: wire.ProtoTCP,
		Src: wire.Addr4(9, 9, 9, 9), Dst: wire.Addr4(8, 8, 8, 8)}
	iph.Marshal(frame[wire.EthHdrLen:])
	buf := h.pool.Alloc()
	buf.SetData(frame)
	h.s.Input(buf)
	buf.Unref()
	if h.s.RxDropped != 1 {
		t.Fatalf("dropped = %d", h.s.RxDropped)
	}
	_ = time.Now
}
