package core

import (
	"fmt"
	"sort"
	"time"

	"ix/internal/cost"
	"ix/internal/dune"
	"ix/internal/fabric"
	"ix/internal/mem"
	"ix/internal/memprobe"
	"ix/internal/netstack"
	"ix/internal/nicsim"
	"ix/internal/sim"
	"ix/internal/tcp"
	"ix/internal/wire"
)

// Config describes one IX dataplane instance (one application).
type Config struct {
	Name string
	IP   wire.IPv4
	MAC  wire.MAC

	// Threads is the number of elastic threads at start.
	Threads int
	// MaxThreads provisions NIC queue pairs (hardware bound); defaults
	// to Threads. The control plane may grow up to this many.
	MaxThreads int
	// BatchBound is the adaptive batching upper bound B (§5.1 uses 64).
	BatchBound int
	// Cost is the dataplane cost model.
	Cost cost.IX
	// MemPages is the large-page grant from the control plane
	// (default 512 pages = 1 GB).
	MemPages int
	// RcvWnd, MinRTO tune the TCP engine.
	RcvWnd int
	MinRTO time.Duration
	// ExpectedConns is the anticipated host-wide steady-state flow
	// population; each elastic thread presizes its connection table,
	// syscall gate and cookie table for its RSS share of it (0 = grow
	// on demand).
	ExpectedConns int
	// Seed makes the instance deterministic.
	Seed uint64
	// Tenant is the isolation-accounting tag stamped on every frame
	// pool this dataplane creates (including threads grown later), so
	// shared fabric egress can charge this tenant's traffic separately
	// (0 = untagged single-tenant operation).
	Tenant int
	// User constructs the ring-3 program for each elastic thread
	// (libix.Program does this for applications).
	User func(api *UserAPI, thread, threads int) UserProgram
	// NICRing overrides the descriptor ring size.
	NICRing int
	// ITR is the NIC interrupt moderation (only relevant for the
	// interrupt fallback; IX polls).
	ITR time.Duration
	// OnNonResponsive is notified when the §4.5 user-mode timeout
	// interrupt marks a thread non-responsive.
	OnNonResponsive func(thread int)
}

// DefaultBatchBound is the paper's B=64 (§5.1).
const DefaultBatchBound = 64

// Dataplane is one IX instance: an application-specific OS running on
// dedicated hardware threads with pass-through NIC access.
type Dataplane struct {
	eng     *sim.Engine
	cfg     Config
	nic     *nicsim.NIC
	arp     *netstack.ARPTable
	region  *mem.Region
	threads []*ElasticThread

	// Domain is the dataplane's protection domain (VMX non-root ring 0).
	Domain dune.Domain

	// missCache avoids recomputing the DDIO penalty every cycle.
	missConns    int
	missPenalty_ time.Duration
	// missFloor_ is the handshake-frame miss charge, a run constant.
	missFloor_ time.Duration

	// shard/releaser: frame-pool ownership on a parallel engine (see
	// SetShard); zero-valued on the serial engine.
	shard    int
	releaser fabric.RemoteReleaser

	// Migration accounting (control-plane observability).
	//
	// Migrations counts flow-group (RETA bucket) migrations completed;
	// FlowsMigrated counts connections re-homed; FramesRehomed counts
	// in-flight frames drained from a source RX ring into a destination
	// ring during migration.
	Migrations    uint64
	FlowsMigrated uint64
	FramesRehomed uint64

	// Loss/reorder indicators carried over from revoked threads, so the
	// totals below survive consolidation.
	retiredOOO         uint64
	retiredRetrans     uint64
	retiredFastRetrans uint64
	retiredPoolDrops   uint64
	// Busy time carried over from revoked threads, so per-tenant cycle
	// charges survive core revocation mid-window.
	retiredKernelNs int64
	retiredUserNs   int64

	// timerSeq numbers user-timer registrations dataplane-wide so
	// re-homing can replay them in registration order (wheel slots fire
	// in insertion order, so transfer order is sim-visible).
	timerSeq uint64
}

// LossTotals aggregates the loss and reordering indicators across all
// elastic threads, including ones already revoked — migration tests
// assert on these, and a violation on a thread that is later revoked
// must stay visible.
func (d *Dataplane) LossTotals() (ooo, retrans, fastRetrans, poolDrops uint64) {
	ooo, retrans, fastRetrans, poolDrops =
		d.retiredOOO, d.retiredRetrans, d.retiredFastRetrans, d.retiredPoolDrops
	for _, et := range d.threads {
		t := et.ns.TCP()
		ooo += t.OutOfOrderSegs
		retrans += t.Retransmits
		fastRetrans += t.FastRetransmits
		poolDrops += et.PoolDrops
	}
	return
}

// New creates a dataplane. Attach NIC ports (links) before Start.
func New(eng *sim.Engine, cfg Config) *Dataplane {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.MaxThreads < cfg.Threads {
		cfg.MaxThreads = cfg.Threads
	}
	if cfg.BatchBound <= 0 {
		cfg.BatchBound = DefaultBatchBound
	}
	if cfg.MemPages <= 0 {
		cfg.MemPages = 512
	}
	if cfg.Cost == (cost.IX{}) {
		cfg.Cost = cost.DefaultIX()
	}
	if cfg.User == nil {
		panic("core: Config.User is required")
	}
	d := &Dataplane{
		eng:    eng,
		cfg:    cfg,
		arp:    netstack.NewARPTable(),
		region: mem.NewRegion(cfg.MemPages),
		Domain: dune.Domain{Name: cfg.Name, Ring: dune.Ring0NonRoot},
	}
	d.missFloor_ = time.Duration(cost.MissesPerMsg(0) * float64(d.cfg.Cost.L3Miss))
	d.nic = nicsim.New(eng, cfg.MAC, nicsim.Config{
		Queues:   cfg.MaxThreads,
		RingSize: cfg.NICRing,
		ITR:      cfg.ITR,
	})
	return d
}

// NIC returns the dataplane's pass-through NIC (for fabric attachment).
func (d *Dataplane) NIC() *nicsim.NIC { return d.nic }

// ARP returns the host's shared ARP table (preloaded by the harness, as
// a warmed-up testbed would be).
func (d *Dataplane) ARP() *netstack.ARPTable { return d.arp }

// IP returns the dataplane's address.
func (d *Dataplane) IP() wire.IPv4 { return d.cfg.IP }

// MAC returns the dataplane's hardware address.
func (d *Dataplane) MAC() wire.MAC { return d.cfg.MAC }

// Engine returns the simulation engine.
func (d *Dataplane) Engine() *sim.Engine { return d.eng }

// BatchBound returns the configured adaptive batch bound B.
func (d *Dataplane) BatchBound() int { return d.cfg.BatchBound }

// Start spawns the elastic threads and their user programs.
func (d *Dataplane) Start() {
	for i := 0; i < d.cfg.Threads; i++ {
		d.spawnThread(i)
	}
	d.nic.SpreadRETA(len(d.threads))
}

func (d *Dataplane) spawnThread(id int) {
	et := newElasticThread(d, id)
	// Tag at spawn, not just at Start: threads granted later by the
	// control plane charge the same tenant (and, on a sharded engine,
	// return remote frame releases to the same shard).
	et.ns.FramePool().SetTenant(d.cfg.Tenant)
	if d.releaser != nil {
		et.ns.FramePool().SetShard(d.shard, d.releaser)
	}
	d.threads = append(d.threads, et)
	et.user = d.cfg.User(et.api, id, d.cfg.Threads)
	// Kick once so programs that queued work at construction run.
	et.wake()
}

// SetShard declares the shard owning this dataplane's frame pools on a
// parallel engine. It must be called before Start; every thread spawned
// afterwards — including elastic threads granted mid-run — tags its
// pool at spawn, so cross-shard releases route home through r.
func (d *Dataplane) SetShard(sh int, r fabric.RemoteReleaser) {
	d.shard, d.releaser = sh, r
	for _, et := range d.threads {
		et.ns.FramePool().SetShard(sh, r)
	}
}

// Threads returns the active elastic thread count.
func (d *Dataplane) Threads() int { return len(d.threads) }

// Thread returns elastic thread i.
func (d *Dataplane) Thread(i int) *ElasticThread { return d.threads[i] }

// ConnCount sums live connections across elastic threads.
func (d *Dataplane) ConnCount() int {
	n := 0
	for _, et := range d.threads {
		n += et.ns.TCP().ConnCount()
	}
	return n
}

// Footprinter is implemented by user programs (libix) that account
// their per-flow state under the memprobe contract.
type Footprinter interface {
	Footprint() memprobe.Footprint
}

// Footprint sums the dataplane's per-connection memory: each elastic
// thread's TCP engine (PCBs, retransmission backing, timer nodes), its
// capability table in the protection gate, and — when the user program
// implements Footprinter — the ring-3 per-flow state (libix
// descriptors and TX arenas), added as a layer over the same
// connection population.
func (d *Dataplane) Footprint() memprobe.Footprint {
	var f memprobe.Footprint
	for _, et := range d.threads {
		f.Add(et.ns.TCP().Footprint())
		f.Bytes += et.gate.FootprintBytes()
		if fp, ok := et.user.(Footprinter); ok {
			f.AddLayer(fp.Footprint())
		}
	}
	return f
}

// missPenalty returns the per-packet LLC-miss stall given the current
// connection working set (Fig. 4's DDIO model), cached until the
// connection count moves by >1%.
func (d *Dataplane) missPenalty() time.Duration {
	conns := d.ConnCount()
	if d.missPenalty_ != 0 && conns > 0 {
		lo := d.missConns - d.missConns/64
		hi := d.missConns + d.missConns/64
		if conns >= lo && conns <= hi {
			return d.missPenalty_
		}
	}
	d.missConns = conns
	d.missPenalty_ = time.Duration(cost.MissesPerMsg(conns) * float64(d.cfg.Cost.L3Miss))
	return d.missPenalty_
}

// missFloor is the handshake-frame miss charge: SYN/SYN-ACK processing
// touches the listener and a fresh PCB, not the established-connection
// working set the DDIO curve models, so establishment bursts charge the
// ≤10k-connection floor regardless of population (batched SYN admission).
func (d *Dataplane) missFloor() time.Duration { return d.missFloor_ }

func (d *Dataplane) notifyNonResponsive(et *ElasticThread) {
	if d.cfg.OnNonResponsive != nil {
		d.cfg.OnNonResponsive(et.id)
	}
}

// AddElasticThread grows the dataplane by one elastic thread (control
// plane grant). The RSS indirection table is repartitioned with minimal
// movement: only the flow groups whose RETA bucket is reassigned to the
// new queue migrate; every other flow stays on its thread untouched.
// Returns an error at the hardware queue limit.
func (d *Dataplane) AddElasticThread() error {
	if len(d.threads) >= d.cfg.MaxThreads {
		return fmt.Errorf("core: no NIC queues left (%d)", d.cfg.MaxThreads)
	}
	id := len(d.threads)
	d.spawnThread(id)
	d.applyRepartition(d.nic.PlanRepartition(len(d.threads)))
	return nil
}

// RemoveElasticThread revokes the highest elastic thread (control plane
// revocation): each of its flow groups migrates — with its in-flight
// frames and timers — to a surviving thread chosen by the repartition
// plan, its user timers re-home to thread 0, and the thread halts.
func (d *Dataplane) RemoveElasticThread() error {
	if len(d.threads) <= 1 {
		return fmt.Errorf("core: cannot remove the last elastic thread")
	}
	n := len(d.threads) - 1
	victim := d.threads[n]
	d.applyRepartition(d.nic.PlanRepartition(n))
	// Safety net: any connection still homed on the victim (e.g. one
	// whose reply flow was never RSS-classified) moves to the thread its
	// bucket now selects.
	d.migrateResidual(victim)
	// User timers survive core revocation: they re-home to thread 0 with
	// deadlines intact.
	d.rehomeUserTimers(victim, d.threads[0])
	d.threads = d.threads[:n]
	t := victim.ns.TCP()
	d.retiredOOO += t.OutOfOrderSegs
	d.retiredRetrans += t.Retransmits
	d.retiredFastRetrans += t.FastRetransmits
	d.retiredPoolDrops += victim.PoolDrops
	d.retiredKernelNs += victim.KernelNs
	d.retiredUserNs += victim.UserNs
	victim.stopped = true
	if victim.idleWake != nil {
		d.eng.Cancel(victim.idleWake)
		victim.idleWake = nil
	}
	return nil
}

// MigrateFlowGroup moves one RSS flow group (RETA bucket) to the elastic
// thread serving queue dstID. This is the §4.4 migration mechanism, in
// four steps at one run-to-completion boundary:
//
//  1. quiesce the source thread — pending event conditions are delivered
//     and batched system calls complete against their original handles;
//  2. repoint the RETA entry, so new arrivals land on the destination;
//  3. drain the flow group's in-flight frames from the source RX ring
//     into the destination ring in arrival order (no reordering, no
//     loss);
//  4. re-home the group's connections: TCP state, pending retransmission
//     and TIME_WAIT timers (original deadlines), protection-domain
//     handles, and an EvMigrated event telling the destination's user
//     program to adopt each flow.
func (d *Dataplane) MigrateFlowGroup(bucket, dstID int) {
	srcID := int(d.nic.RETA()[bucket])
	if srcID == dstID {
		return
	}
	if srcID >= len(d.threads) || dstID >= len(d.threads) {
		panic("core: MigrateFlowGroup references a stopped thread")
	}
	d.applyRepartition([]nicsim.RetaChange{
		{Bucket: bucket, From: uint8(srcID), To: uint8(dstID)},
	})
}

// applyRepartition executes a repartition plan, amortizing the per-bucket
// work: each distinct source thread is quiesced once, its RETA entries
// flip together, its in-flight frames drain in one ring pass, and its
// connection table is scanned once — O(sources × (ring + conns)) rather
// than O(buckets × conns). The four-step migration contract of
// MigrateFlowGroup holds for every bucket in the plan.
func (d *Dataplane) applyRepartition(plan []nicsim.RetaChange) {
	if len(plan) == 0 {
		return
	}
	bySrc := make(map[int][]nicsim.RetaChange)
	for _, ch := range plan {
		bySrc[int(ch.From)] = append(bySrc[int(ch.From)], ch)
	}
	// Iterate sources in thread order, not map order (determinism).
	for srcID := 0; srcID < len(d.threads); srcID++ {
		changes := bySrc[srcID]
		if len(changes) == 0 {
			continue
		}
		src := d.threads[srcID]
		// bucket → destination thread, for this source's moving buckets.
		dstOf := make(map[int]*ElasticThread, len(changes))
		// (1) Quiesce the source once for all its outgoing buckets: the
		// run-to-completion model guarantees no flow state is
		// mid-operation between cycles; finishing the user batch extends
		// that guarantee to the syscall/event arrays.
		src.quiesce()
		// (2) Flip this source's RETA entries together; new arrivals for
		// the moving buckets now land on their destinations.
		for _, ch := range changes {
			dstOf[ch.Bucket] = d.threads[ch.To]
			d.nic.SetRETAEntry(ch.Bucket, int(ch.To))
		}
		// (3) One ordered pass over the source ring. Frames here belong
		// only to buckets this source owned, and the destination rings
		// cannot yet hold frames of the moving groups (flip and drain
		// share a virtual instant), so tail insertion preserves
		// intra-flow order.
		for _, f := range src.rxq.Extract(func(f *fabric.Frame) bool {
			b, ok := d.nic.FrameBucket(f.Data)
			return ok && dstOf[b] != nil
		}) {
			b, _ := d.nic.FrameBucket(f.Data)
			if dstOf[b].rxq.Inject(f) {
				d.FramesRehomed++
			}
		}
		// (4) One pass over the source's connections.
		for _, c := range src.ns.TCP().Conns() {
			dst := dstOf[d.nic.RSSBucket(c.Key().Reverse())]
			if dst == nil {
				continue
			}
			d.moveConn(src, dst, c)
		}
		d.Migrations += uint64(len(changes))
		for _, ch := range changes {
			d.threads[ch.To].wake()
		}
	}
}

// migrateResidual sweeps src for connections whose bucket no longer maps
// to it and re-homes them (removal safety net).
func (d *Dataplane) migrateResidual(src *ElasticThread) {
	src.quiesce()
	for _, c := range src.ns.TCP().Conns() {
		want := d.nic.RSSQueue(c.Key().Reverse())
		if want == src.id {
			want = 0
		}
		if want >= len(d.threads) || d.threads[want] == src {
			want = 0
		}
		dst := d.threads[want]
		if dst == src {
			continue
		}
		d.moveConn(src, dst, c)
		dst.wake()
	}
}

// rehomeUserTimers transfers every pending user timer from src's wheel to
// dst's, preserving deadlines. The timer records carry their owning
// thread, so the EvTimer condition fires in dst's user phase.
func (d *Dataplane) rehomeUserTimers(src, dst *ElasticThread) {
	// Timers sharing a wheel slot fire in insertion order, so the
	// transfer sequence is sim-visible: walk the set in registration
	// order, never map-iteration order (found by ixvet/determinism).
	uts := make([]*userTimer, 0, len(src.userTimers))
	for ut := range src.userTimers {
		uts = append(uts, ut)
	}
	sort.Slice(uts, func(i, j int) bool { return uts[i].seq < uts[j].seq })
	moved := false
	for _, ut := range uts {
		delete(src.userTimers, ut)
		if !src.wheel.Transfer(ut.t, dst.wheel) {
			continue
		}
		ut.et = dst
		dst.userTimers[ut] = struct{}{}
		moved = true
	}
	if moved {
		// Re-evaluate dst's idle wakeup against the new earliest deadline.
		dst.wake()
	}
}

// moveConn re-homes one connection from src to dst: TCP state and timers,
// the protection-domain handle, and the user program's adoption event.
func (d *Dataplane) moveConn(src, dst *ElasticThread, c *tcp.Conn) {
	src.ns.TCP().Migrate(c, dst.ns.TCP())
	// Re-grant the handle in the destination namespace; the old handle
	// dies with the source thread's namespace.
	src.gate.Revoke(c.Handle)
	c.Handle = dst.gate.Grant(c)
	// Tell the destination's user program to adopt the flow.
	dst.events = append(dst.events, Event{Type: EvMigrated, Handle: c.Handle, Cookie: c.Cookie})
	d.FlowsMigrated++
}

// Tenant returns the dataplane's isolation-accounting tag.
func (d *Dataplane) Tenant() int { return d.cfg.Tenant }

// ResetStats zeroes measurement counters on all threads (start of a
// measurement window).
func (d *Dataplane) ResetStats() {
	d.retiredKernelNs = 0
	d.retiredUserNs = 0
	for _, et := range d.threads {
		et.Cycles = 0
		et.RxPackets = 0
		et.TxPackets = 0
		et.PoolDrops = 0
		et.KernelNs = 0
		et.UserNs = 0
		et.BatchHist.Reset()
		et.core.ResetStats()
	}
}

// CPUBreakdown reports aggregate kernel and user busy time across
// elastic threads since ResetStats (the §5.5 kernel-time measurement),
// including time retired with threads revoked mid-window — the charge
// stays with the tenant that spent it, not with whoever holds the core
// next.
func (d *Dataplane) CPUBreakdown() (kernel, user time.Duration) {
	kernel = time.Duration(d.retiredKernelNs)
	user = time.Duration(d.retiredUserNs)
	for _, et := range d.threads {
		kernel += time.Duration(et.KernelNs)
		user += time.Duration(et.UserNs)
	}
	return kernel, user
}

// BusyTotal is kernel plus user busy time since ResetStats (revoked
// threads included): the cycle charge of the isolation-accounting
// contract.
func (d *Dataplane) BusyTotal() time.Duration {
	k, u := d.CPUBreakdown()
	return k + u
}

// MeanBatch returns the average adaptive batch size over the window.
func (d *Dataplane) MeanBatch() float64 {
	var sum float64
	var n uint64
	for _, et := range d.threads {
		sum += float64(et.BatchHist.Mean()) * float64(et.BatchHist.Count())
		n += et.BatchHist.Count()
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RxDrops reports NIC-edge drops (ring overflow) — where all queueing
// happens in IX (§3).
func (d *Dataplane) RxDrops() uint64 { return d.nic.RxDrops }

// MaxThreads returns the hardware queue-pair budget.
func (d *Dataplane) MaxThreads() int { return d.cfg.MaxThreads }
