package core

import (
	"fmt"
	"time"

	"ix/internal/cost"
	"ix/internal/dune"
	"ix/internal/mem"
	"ix/internal/netstack"
	"ix/internal/nicsim"
	"ix/internal/sim"
	"ix/internal/wire"
)

// Config describes one IX dataplane instance (one application).
type Config struct {
	Name string
	IP   wire.IPv4
	MAC  wire.MAC

	// Threads is the number of elastic threads at start.
	Threads int
	// MaxThreads provisions NIC queue pairs (hardware bound); defaults
	// to Threads. The control plane may grow up to this many.
	MaxThreads int
	// BatchBound is the adaptive batching upper bound B (§5.1 uses 64).
	BatchBound int
	// Cost is the dataplane cost model.
	Cost cost.IX
	// MemPages is the large-page grant from the control plane
	// (default 512 pages = 1 GB).
	MemPages int
	// RcvWnd, MinRTO tune the TCP engine.
	RcvWnd int
	MinRTO time.Duration
	// Seed makes the instance deterministic.
	Seed uint64
	// User constructs the ring-3 program for each elastic thread
	// (libix.Program does this for applications).
	User func(api *UserAPI, thread, threads int) UserProgram
	// NICRing overrides the descriptor ring size.
	NICRing int
	// ITR is the NIC interrupt moderation (only relevant for the
	// interrupt fallback; IX polls).
	ITR time.Duration
	// OnNonResponsive is notified when the §4.5 user-mode timeout
	// interrupt marks a thread non-responsive.
	OnNonResponsive func(thread int)
}

// DefaultBatchBound is the paper's B=64 (§5.1).
const DefaultBatchBound = 64

// Dataplane is one IX instance: an application-specific OS running on
// dedicated hardware threads with pass-through NIC access.
type Dataplane struct {
	eng     *sim.Engine
	cfg     Config
	nic     *nicsim.NIC
	arp     *netstack.ARPTable
	region  *mem.Region
	threads []*ElasticThread

	// Domain is the dataplane's protection domain (VMX non-root ring 0).
	Domain dune.Domain

	// missCache avoids recomputing the DDIO penalty every cycle.
	missConns    int
	missPenalty_ time.Duration
}

// New creates a dataplane. Attach NIC ports (links) before Start.
func New(eng *sim.Engine, cfg Config) *Dataplane {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.MaxThreads < cfg.Threads {
		cfg.MaxThreads = cfg.Threads
	}
	if cfg.BatchBound <= 0 {
		cfg.BatchBound = DefaultBatchBound
	}
	if cfg.MemPages <= 0 {
		cfg.MemPages = 512
	}
	if cfg.Cost == (cost.IX{}) {
		cfg.Cost = cost.DefaultIX()
	}
	if cfg.User == nil {
		panic("core: Config.User is required")
	}
	d := &Dataplane{
		eng:    eng,
		cfg:    cfg,
		arp:    netstack.NewARPTable(),
		region: mem.NewRegion(cfg.MemPages),
		Domain: dune.Domain{Name: cfg.Name, Ring: dune.Ring0NonRoot},
	}
	d.nic = nicsim.New(eng, cfg.MAC, nicsim.Config{
		Queues:   cfg.MaxThreads,
		RingSize: cfg.NICRing,
		ITR:      cfg.ITR,
	})
	return d
}

// NIC returns the dataplane's pass-through NIC (for fabric attachment).
func (d *Dataplane) NIC() *nicsim.NIC { return d.nic }

// ARP returns the host's shared ARP table (preloaded by the harness, as
// a warmed-up testbed would be).
func (d *Dataplane) ARP() *netstack.ARPTable { return d.arp }

// IP returns the dataplane's address.
func (d *Dataplane) IP() wire.IPv4 { return d.cfg.IP }

// MAC returns the dataplane's hardware address.
func (d *Dataplane) MAC() wire.MAC { return d.cfg.MAC }

// Engine returns the simulation engine.
func (d *Dataplane) Engine() *sim.Engine { return d.eng }

// BatchBound returns the configured adaptive batch bound B.
func (d *Dataplane) BatchBound() int { return d.cfg.BatchBound }

// Start spawns the elastic threads and their user programs.
func (d *Dataplane) Start() {
	for i := 0; i < d.cfg.Threads; i++ {
		d.spawnThread(i)
	}
	d.nic.SpreadRETA(len(d.threads))
}

func (d *Dataplane) spawnThread(id int) {
	et := newElasticThread(d, id)
	d.threads = append(d.threads, et)
	et.user = d.cfg.User(et.api, id, d.cfg.Threads)
	// Kick once so programs that queued work at construction run.
	et.wake()
}

// Threads returns the active elastic thread count.
func (d *Dataplane) Threads() int { return len(d.threads) }

// Thread returns elastic thread i.
func (d *Dataplane) Thread(i int) *ElasticThread { return d.threads[i] }

// ConnCount sums live connections across elastic threads.
func (d *Dataplane) ConnCount() int {
	n := 0
	for _, et := range d.threads {
		n += et.ns.TCP().ConnCount()
	}
	return n
}

// missPenalty returns the per-packet LLC-miss stall given the current
// connection working set (Fig. 4's DDIO model), cached until the
// connection count moves by >1%.
func (d *Dataplane) missPenalty() time.Duration {
	conns := d.ConnCount()
	if d.missPenalty_ != 0 && conns > 0 {
		lo := d.missConns - d.missConns/64
		hi := d.missConns + d.missConns/64
		if conns >= lo && conns <= hi {
			return d.missPenalty_
		}
	}
	d.missConns = conns
	d.missPenalty_ = time.Duration(cost.MissesPerMsg(conns) * float64(d.cfg.Cost.L3Miss))
	return d.missPenalty_
}

func (d *Dataplane) notifyNonResponsive(et *ElasticThread) {
	if d.cfg.OnNonResponsive != nil {
		d.cfg.OnNonResponsive(et.id)
	}
}

// AddElasticThread grows the dataplane by one elastic thread (control
// plane grant), reprogramming RSS and migrating flows so each flow group
// is served by the thread its hash now selects. Returns an error at the
// hardware queue limit.
func (d *Dataplane) AddElasticThread() error {
	if len(d.threads) >= d.cfg.MaxThreads {
		return fmt.Errorf("core: no NIC queues left (%d)", d.cfg.MaxThreads)
	}
	id := len(d.threads)
	d.spawnThread(id)
	d.nic.SpreadRETA(len(d.threads))
	d.rebalance()
	return nil
}

// RemoveElasticThread revokes the highest elastic thread (control plane
// revocation), migrating its flows to the threads RSS now selects.
func (d *Dataplane) RemoveElasticThread() error {
	if len(d.threads) <= 1 {
		return fmt.Errorf("core: cannot remove the last elastic thread")
	}
	victim := d.threads[len(d.threads)-1]
	d.threads = d.threads[:len(d.threads)-1]
	d.nic.SpreadRETA(len(d.threads))
	// Drain frames parked in the victim's RX ring back through RSS
	// classification (they re-land on surviving queues).
	for _, f := range victim.rxq.Take(victim.rxq.Len()) {
		d.nic.Deliver(f)
	}
	d.rebalance()
	// Migrate the victim's remaining flows explicitly.
	d.migrateFrom(victim)
	victim.stopped = true
	if victim.idleWake != nil {
		d.eng.Cancel(victim.idleWake)
		victim.idleWake = nil
	}
	return nil
}

// rebalance re-homes every flow to the elastic thread its RSS bucket now
// maps to. Resource reallocation is rare and coarse-grained (§4.4), so
// the synchronization this implies is acceptable.
func (d *Dataplane) rebalance() {
	for _, et := range d.threads {
		d.migrateFrom(et)
	}
}

func (d *Dataplane) migrateFrom(src *ElasticThread) {
	// Quiesce the source thread's user batches first: pending syscalls
	// must execute against their original handles, and their return
	// codes must reach the user library, before handles move (the
	// quiescence the paper gets from run-to-completion boundaries).
	src.drainUser()
	for _, c := range src.ns.TCP().Conns() {
		want := d.nic.RSSQueue(c.Key().Reverse())
		if want == src.id && !src.stopped && src.id < len(d.threads) {
			continue
		}
		if want >= len(d.threads) {
			want = 0
		}
		dst := d.threads[want]
		if dst == src {
			continue
		}
		src.ns.TCP().Migrate(c, dst.ns.TCP())
		// Re-grant the handle in the destination namespace; the old
		// handle dies with the source thread's namespace.
		src.gate.Revoke(c.Handle)
		c.Handle = dst.gate.Grant(c)
		// Tell the destination's user program to adopt the flow.
		dst.events = append(dst.events, Event{Type: EvMigrated, Handle: c.Handle, Cookie: c.Cookie})
		dst.wake()
	}
}

// ResetStats zeroes measurement counters on all threads (start of a
// measurement window).
func (d *Dataplane) ResetStats() {
	for _, et := range d.threads {
		et.Cycles = 0
		et.RxPackets = 0
		et.TxPackets = 0
		et.PoolDrops = 0
		et.KernelNs = 0
		et.UserNs = 0
		et.BatchHist.Reset()
		et.core.ResetStats()
	}
}

// CPUBreakdown reports aggregate kernel and user busy time across
// elastic threads since ResetStats (the §5.5 kernel-time measurement).
func (d *Dataplane) CPUBreakdown() (kernel, user time.Duration) {
	for _, et := range d.threads {
		kernel += time.Duration(et.KernelNs)
		user += time.Duration(et.UserNs)
	}
	return kernel, user
}

// MeanBatch returns the average adaptive batch size over the window.
func (d *Dataplane) MeanBatch() float64 {
	var sum float64
	var n uint64
	for _, et := range d.threads {
		sum += float64(et.BatchHist.Mean()) * float64(et.BatchHist.Count())
		n += et.BatchHist.Count()
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RxDrops reports NIC-edge drops (ring overflow) — where all queueing
// happens in IX (§3).
func (d *Dataplane) RxDrops() uint64 { return d.nic.RxDrops }

// MaxThreads returns the hardware queue-pair budget.
func (d *Dataplane) MaxThreads() int { return d.cfg.MaxThreads }
