package core

import (
	"testing"
	"time"

	"ix/internal/dune"
	"ix/internal/mem"
	"ix/internal/sim"
	"ix/internal/wire"
)

// scriptProgram is a minimal UserProgram driven by a function.
type scriptProgram struct {
	run func(api *UserAPI, events []Event, results []SyscallResult)
}

func (p *scriptProgram) Run(api *UserAPI, events []Event, results []SyscallResult) {
	if p.run != nil {
		p.run(api, events, results)
	}
}

// loopback wires a dataplane NIC port back to itself through a second
// dataplane, so two IX instances can talk (no switch needed).
func twoDataplanes(t *testing.T, userA, userB func(api *UserAPI, thread, threads int) UserProgram) (*sim.Engine, *Dataplane, *Dataplane) {
	t.Helper()
	eng := sim.NewEngine(5)
	a := New(eng, Config{
		Name: "a", IP: wire.Addr4(10, 0, 0, 1), MAC: wire.MAC{2, 0, 0, 0, 0, 1},
		Threads: 1, Seed: 1, User: userA,
	})
	b := New(eng, Config{
		Name: "b", IP: wire.Addr4(10, 0, 0, 2), MAC: wire.MAC{2, 0, 0, 0, 0, 2},
		Threads: 1, Seed: 2, User: userB,
	})
	link := newLink(eng)
	a.NIC().AttachPort(link.Port(0))
	b.NIC().AttachPort(link.Port(1))
	a.ARP().Learn(b.IP(), b.MAC())
	b.ARP().Learn(a.IP(), a.MAC())
	return eng, a, b
}

func TestDataplaneEndToEnd(t *testing.T) {
	var serverGot []byte
	var clientGot []byte
	var clientHandle uint64
	server := func(api *UserAPI, thread, threads int) UserProgram {
		if err := api.Listen(80); err != nil {
			t.Fatal(err)
		}
		return &scriptProgram{run: func(api *UserAPI, events []Event, results []SyscallResult) {
			for _, ev := range events {
				switch ev.Type {
				case EvKnock:
					api.Accept(ev.Handle, 0x517)
				case EvRecv:
					serverGot = append(serverGot, ev.Data...)
					api.Sendv(ev.Handle, [][]byte{[]byte("pong")})
					api.RecvDone(ev.Handle, ev.Bytes, []*mem.Mbuf{ev.Mbuf})
				}
			}
		}}
	}
	client := func(api *UserAPI, thread, threads int) UserProgram {
		api.Connect(0xc11, wire.Addr4(10, 0, 0, 2), 80)
		return &scriptProgram{run: func(api *UserAPI, events []Event, results []SyscallResult) {
			for _, r := range results {
				if r.Type == SysConnect && r.Err == nil {
					clientHandle = r.Handle
				}
			}
			for _, ev := range events {
				switch ev.Type {
				case EvConnected:
					if !ev.Outcome {
						t.Error("connect failed")
					}
					api.Sendv(ev.Handle, [][]byte{[]byte("ping")})
				case EvRecv:
					clientGot = append(clientGot, ev.Data...)
					api.RecvDone(ev.Handle, ev.Bytes, []*mem.Mbuf{ev.Mbuf})
				}
			}
		}}
	}
	eng, a, b := twoDataplanes(t,
		func(api *UserAPI, th, ths int) UserProgram { return client(api, th, ths) },
		func(api *UserAPI, th, ths int) UserProgram { return server(api, th, ths) })
	a.Start()
	b.Start()
	eng.RunUntil(sim.Time(10 * time.Millisecond))
	if string(serverGot) != "ping" || string(clientGot) != "pong" {
		t.Fatalf("server got %q, client got %q", serverGot, clientGot)
	}
	if clientHandle == 0 {
		t.Fatal("connect result handle missing")
	}
	// No buffers leaked: all recv_done'd.
	if a.Thread(0).Pool().InUse() != 0 || b.Thread(0).Pool().InUse() != 0 {
		t.Fatalf("mbufs leaked: a=%d b=%d", a.Thread(0).Pool().InUse(), b.Thread(0).Pool().InUse())
	}
}

// TestMaliciousApp verifies the §4.5 security model: forged, foreign and
// stale handles, recv_done overruns, and writes to read-only buffers are
// all rejected with violations counted, and the dataplane keeps working.
func TestMaliciousApp(t *testing.T) {
	var mal *UserAPI
	var victim *Dataplane
	var gotMbuf *mem.Mbuf
	attacks := 0
	server := func(api *UserAPI, thread, threads int) UserProgram {
		_ = api.Listen(80)
		return &scriptProgram{run: func(api *UserAPI, events []Event, results []SyscallResult) {
			for _, r := range results {
				if r.Err != nil {
					attacks++
				}
			}
			for _, ev := range events {
				switch ev.Type {
				case EvKnock:
					api.Accept(ev.Handle, 0)
				case EvRecv:
					gotMbuf = ev.Mbuf
					// Attack 1: forge a handle.
					api.Sendv(0xdeadbeef00000000, [][]byte{[]byte("forged")})
					// Attack 2: recv_done more than delivered.
					api.RecvDone(ev.Handle, ev.Bytes*100, nil)
					// Attack 3: write to the read-only buffer.
					if err := api.TryWriteMbuf(ev.Mbuf, []byte("overwrite")); err == nil {
						t.Error("read-only mbuf write allowed")
					}
					// Legitimate path still works afterwards.
					api.Sendv(ev.Handle, [][]byte{[]byte("ok")})
					api.RecvDone(ev.Handle, ev.Bytes, []*mem.Mbuf{ev.Mbuf})
				}
			}
			mal = api
		}}
	}
	var clientOK bool
	client := func(api *UserAPI, thread, threads int) UserProgram {
		api.Connect(0, wire.Addr4(10, 0, 0, 2), 80)
		return &scriptProgram{run: func(api *UserAPI, events []Event, results []SyscallResult) {
			for _, ev := range events {
				switch ev.Type {
				case EvConnected:
					api.Sendv(ev.Handle, [][]byte{[]byte("req")})
				case EvRecv:
					if string(ev.Data) == "ok" {
						clientOK = true
					}
					api.RecvDone(ev.Handle, ev.Bytes, []*mem.Mbuf{ev.Mbuf})
				}
			}
		}}
	}
	eng, a, b := twoDataplanes(t,
		func(api *UserAPI, th, ths int) UserProgram { return client(api, th, ths) },
		func(api *UserAPI, th, ths int) UserProgram { return server(api, th, ths) })
	victim = b
	a.Start()
	b.Start()
	eng.RunUntil(sim.Time(10 * time.Millisecond))
	if !clientOK {
		t.Fatal("legitimate traffic broken by the malicious app")
	}
	if attacks < 2 {
		t.Fatalf("attack syscalls returned %d errors, want ≥2", attacks)
	}
	g := victim.Thread(0).Gate()
	if g.Violations(dune.VioBadHandle)+g.Violations(dune.VioForeignHandle) == 0 {
		t.Fatal("forged handle not counted")
	}
	if g.Violations(dune.VioRecvDoneOverrun) == 0 {
		t.Fatal("recv_done overrun not counted")
	}
	if g.Violations(dune.VioReadOnlyWrite) == 0 {
		t.Fatal("read-only write not counted")
	}
	_ = mal
	_ = gotMbuf
}

// TestBatchBoundRespected: cycles never take more than B frames.
func TestBatchBoundRespected(t *testing.T) {
	// Covered end-to-end by harness tests; here check the config default.
	eng := sim.NewEngine(1)
	d := New(eng, Config{
		Name: "x", IP: wire.Addr4(1, 1, 1, 1), MAC: wire.MAC{2},
		Threads: 1,
		User:    func(api *UserAPI, t, n int) UserProgram { return &scriptProgram{} },
	})
	if d.BatchBound() != DefaultBatchBound {
		t.Fatalf("default B = %d", d.BatchBound())
	}
}

// TestUserTimeout: an application burning >10ms of user CPU in one cycle
// is marked non-responsive and reported to the control plane (§4.5).
func TestUserTimeout(t *testing.T) {
	reported := -1
	eng := sim.NewEngine(1)
	d := New(eng, Config{
		Name: "x", IP: wire.Addr4(1, 1, 1, 1), MAC: wire.MAC{2},
		Threads:         1,
		OnNonResponsive: func(th int) { reported = th },
		User: func(api *UserAPI, th, n int) UserProgram {
			// Burn 20ms of user time at startup.
			api.Charge(20 * time.Millisecond)
			return &scriptProgram{}
		},
	})
	link := newLink(eng)
	d.NIC().AttachPort(link.Port(0))
	d.Start()
	eng.RunUntil(sim.Time(50 * time.Millisecond))
	if reported != 0 {
		t.Fatalf("non-responsive thread not reported (got %d)", reported)
	}
	if !d.Thread(0).NonResponsive {
		t.Fatal("thread not flagged")
	}
}

func TestKernelUserAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, Config{
		Name: "x", IP: wire.Addr4(1, 1, 1, 1), MAC: wire.MAC{2},
		Threads: 1,
		User: func(api *UserAPI, th, n int) UserProgram {
			api.Charge(100 * time.Microsecond)
			return &scriptProgram{}
		},
	})
	link := newLink(eng)
	d.NIC().AttachPort(link.Port(0))
	d.Start()
	eng.RunUntil(sim.Time(time.Millisecond))
	k, u := d.CPUBreakdown()
	if u < 100*time.Microsecond {
		t.Fatalf("user time = %v, want ≥100µs", u)
	}
	if k <= 0 {
		t.Fatalf("kernel time = %v", k)
	}
}
