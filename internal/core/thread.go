package core

import (
	"time"

	"ix/internal/dune"
	"ix/internal/fabric"
	"ix/internal/mem"
	"ix/internal/netstack"
	"ix/internal/nicsim"
	"ix/internal/sim"
	"ix/internal/stats"
	"ix/internal/tcp"
	"ix/internal/timerwheel"
	"ix/internal/wire"
)

// UserProgram is the ring-3 side of an elastic thread: libix implements
// it. Run is invoked at the user transition of each run-to-completion
// cycle with the event condition array and the return codes of the
// previous batch; it issues new batched system calls through the api.
type UserProgram interface {
	Run(api *UserAPI, events []Event, results []SyscallResult)
}

// userTimeout is the §4.5 timeout interrupt bound on time in user mode.
const userTimeout = 10 * time.Millisecond

// ElasticThread is one dataplane hardware thread: it owns an RX/TX queue
// pair, a mbuf pool, a timer wheel, a TCP/IP stack instance and the
// shared-memory syscall/event arrays of one application thread. Nothing
// here is shared with other elastic threads (§4.4) except the host ARP
// table.
type ElasticThread struct {
	dp   *Dataplane
	id   int
	core *sim.Core

	ns     *netstack.Stack
	wheel  *timerwheel.Wheel
	pool   *mem.MbufPool
	txpool *mem.TxChunkPool
	gate   *dune.Gate
	rxq    *nicsim.RxQueue
	txq    *nicsim.TxQueue

	user UserProgram
	api  *UserAPI

	// Shared-memory arrays (Table 1). The spare fields hold drained
	// backing arrays for reuse, so the steady-state cycle does not
	// allocate event/syscall/result storage.
	events   []Event
	syscalls []Syscall
	results  []SyscallResult
	evSpare  []Event
	sysSpare []Syscall
	resSpare []SyscallResult

	// Frames assembled this cycle accumulate in outFrames and are posted
	// to the TX ring at cycle end (txPending); txSpare recycles the
	// posted backing array so the ping-pong is allocation-free.
	outFrames []*fabric.Frame
	txPending []*fabric.Frame
	txSpare   []*fabric.Frame

	// cycleFn/idleFn are bound methods, created once so neither a wake
	// nor an idle-timer arming allocates a closure.
	cycleFn func(*sim.Meter)
	idleFn  func()

	cycleActive bool
	idleWake    *sim.Event
	descDebt    int

	// pendingCharge accumulates user CPU cost incurred outside a cycle
	// (e.g. at application start), applied to the next user phase.
	pendingCharge time.Duration

	// userTimers tracks live application timers so the control plane can
	// re-home them when it revokes this thread's core.
	userTimers map[*userTimer]struct{}

	// Measurements.
	Cycles        uint64
	BatchHist     *stats.Histogram // batch size per cycle (as duration units)
	RxPackets     uint64
	TxPackets     uint64
	PoolDrops     uint64
	KernelNs      int64
	UserNs        int64
	NonResponsive bool

	stopped bool
}

// ID returns the elastic thread index within its dataplane.
func (et *ElasticThread) ID() int { return et.id }

// Gate exposes the thread's dune syscall gate (tests, security checks).
func (et *ElasticThread) Gate() *dune.Gate { return et.gate }

// Stack exposes the thread's network stack instance.
func (et *ElasticThread) Stack() *netstack.Stack { return et.ns }

// newElasticThread wires up thread id on the dataplane.
func newElasticThread(dp *Dataplane, id int) *ElasticThread {
	// Per-thread share of the host's expected flow population: RSS
	// spreads flows near-uniformly over the provisioned queue pairs.
	expected := 0
	if n := dp.cfg.ExpectedConns; n > 0 {
		threads := dp.cfg.MaxThreads
		if threads <= 0 {
			threads = dp.cfg.Threads
		}
		if threads <= 0 {
			threads = 1
		}
		expected = n / threads
	}
	et := &ElasticThread{
		dp:         dp,
		id:         id,
		core:       sim.NewCore(dp.eng, id),
		pool:       mem.NewMbufPool(dp.region, id),
		txpool:     mem.NewTxChunkPool(dp.region, id),
		gate:       dune.NewGate(id, expected),
		wheel:      timerwheel.New(timerwheel.DefaultTick, int64(dp.eng.Now())),
		BatchHist:  stats.NewHistogram(),
		userTimers: make(map[*userTimer]struct{}),
	}
	et.cycleFn = et.cycle
	et.idleFn = et.idleFired
	et.rxq = dp.nic.RxQueue(id)
	et.txq = dp.nic.TxQueue(id)
	et.rxq.Mode = nicsim.ModePoll
	et.rxq.OnFrame = et.wake
	et.ns = netstack.New(netstack.Config{
		LocalIP:   dp.cfg.IP,
		LocalMAC:  dp.cfg.MAC,
		Now:       func() int64 { return int64(dp.eng.Now()) },
		Wheel:     et.wheel,
		SendFrame: func(f *fabric.Frame) { et.outFrames = append(et.outFrames, f) },
		Events:    (*threadEvents)(et),
		ARP:       dp.arp,
		Seed:      dp.cfg.Seed + uint64(id)*0x9e3779b97f4a7c15,
		RcvWnd:    dp.cfg.RcvWnd,
		MinRTO:    dp.cfg.MinRTO,

		ExpectedConns: expected,
		PortOK: func(p uint16, dst wire.IPv4, dport uint16) bool {
			// Probe until replies for this flow RSS-hash to our queue.
			ret := wire.FlowKey{
				SrcIP: dst, DstIP: dp.cfg.IP,
				SrcPort: dport, DstPort: p,
				Proto: wire.ProtoTCP,
			}
			return dp.nic.RSSQueue(ret) == id
		},
	})
	et.api = &UserAPI{et: et}
	return et
}

// wake schedules a run-to-completion cycle if one is not already queued.
func (et *ElasticThread) wake() {
	if et.cycleActive || et.stopped {
		return
	}
	if et.idleWake != nil {
		et.dp.eng.Cancel(et.idleWake)
		et.idleWake = nil
	}
	et.cycleActive = true
	et.core.Submit(sim.ClassDataplane, et.cycleFn)
}

// cycle is one run-to-completion iteration (Fig. 1b): (1) poll the RX
// ring and replenish descriptors, (2) protocol processing generating
// event conditions, (3) user transition — the application consumes all
// events and batches system calls, (4) process batched syscalls, (5) run
// kernel timers, (6) place outgoing frames on the TX ring at cycle end.
func (et *ElasticThread) cycle(m *sim.Meter) {
	c := &et.dp.cfg.Cost
	now := int64(et.dp.eng.Now())
	et.Cycles++
	m.Charge(c.CyclePoll)

	// (1) Poll a bounded batch; batching is adaptive — we take whatever
	// is present up to B, never waiting to accumulate (§3).
	frames := et.rxq.Take(et.dp.cfg.BatchBound)
	et.BatchHist.Record(time.Duration(len(frames)))
	// Replenish descriptors, coalescing PCIe doorbell writes (§6).
	et.descDebt += len(frames)
	if c.NoDoorbellCoalesce {
		// Ablation: one PCIe write per descriptor, the §6 bottleneck.
		m.ChargeN(et.descDebt, c.DescriptorPost)
		et.rxq.PostDescriptors(et.descDebt)
		et.descDebt = 0
	} else if et.descDebt >= 32 || (et.descDebt > 0 && et.rxq.DescAvail() < 64) {
		et.rxq.PostDescriptors(et.descDebt)
		et.descDebt = 0
		m.Charge(c.DescriptorPost)
	}

	// (2) Protocol processing, generating event conditions. Each frame's
	// bytes are copied into a posted mbuf (the simulated DMA write) and
	// the wire buffer returns to its sender's pool. Handshake frames
	// charge the miss floor, not the population-scaled DDIO curve
	// (batched SYN admission: accept-path state stays LLC-resident
	// across an establishment burst).
	missNs := et.dp.missPenalty()
	missFloor := et.dp.missFloor()
	for _, f := range frames {
		buf := et.pool.Alloc()
		if buf == nil {
			et.PoolDrops++
			f.Release()
			continue
		}
		buf.SetData(f.Data)
		et.RxPackets++
		m.Charge(c.ProtoRx)
		m.Charge(c.ProtoRxByte.Cost(len(f.Data)))
		m.Charge(c.CopyPerByte.Cost(len(f.Data))) // zero-copy ablation only
		if nicsim.IsTCPSYN(f.Data) {
			m.Charge(missFloor)
		} else {
			m.Charge(missNs)
		}
		f.Release()
		et.ns.Input(buf)
		buf.Unref()
	}

	// (3) User transition: the application consumes all event
	// conditions and issues batched system calls.
	var userSpent time.Duration
	if len(et.events) > 0 || len(et.syscalls) > 0 || len(et.results) > 0 || et.pendingCharge > 0 {
		m.Charge(2 * c.UserTransition) // enter + leave ring 3
		m.ChargeN(len(et.events), c.EventCond)
		events := et.events
		results := et.results
		et.events = et.evSpare[:0]
		et.results = et.resSpare[:0]
		et.evSpare = nil
		et.resSpare = nil
		preUser := m.Elapsed()
		m.Charge(et.pendingCharge)
		et.pendingCharge = 0
		et.api.meter = m
		et.user.Run(et.api, events, results)
		et.api.meter = nil
		userSpent = m.Elapsed() - preUser
		if userSpent > userTimeout {
			// §4.5 timeout interrupt: mark non-responsive, tell the CP.
			et.NonResponsive = true
			et.dp.notifyNonResponsive(et)
		}
		// Recycle the consumed arrays (pool-allocated in spirit): zero the
		// entries to drop mbuf/cookie references, keep the storage.
		for i := range events {
			events[i] = Event{}
		}
		et.evSpare = events[:0]
		for i := range results {
			results[i] = SyscallResult{}
		}
		et.resSpare = results[:0]
	}

	// (4) Process the batched system calls, writing return codes back.
	if len(et.syscalls) > 0 {
		batch := et.syscalls
		et.syscalls = et.sysSpare[:0]
		et.sysSpare = nil
		for i := range batch {
			m.Charge(c.Syscall)
			et.results = append(et.results, et.dispatch(&batch[i], m))
		}
		for i := range batch {
			batch[i] = Syscall{}
		}
		et.sysSpare = batch[:0]
	}

	// (5) Run kernel timers for TCP compliance.
	et.wheel.Advance(now)
	m.Charge(c.TimerCycle)

	// Acknowledgment pacing: pure ACKs go out only now, after the
	// application has consumed its events (§3).
	et.ns.Flush()

	// Account kernel vs user time for the Fig. 5 CPU breakdown: all of
	// the cycle except the user phase is dataplane kernel time.
	et.UserNs += int64(userSpent)
	et.KernelNs += int64(m.Elapsed() - userSpent)

	// (6) Outgoing frames hit the TX descriptor ring at cycle end; the
	// NIC DMA-reads them directly from mbuf memory (zero-copy).
	et.txPending = et.outFrames
	et.outFrames = et.txSpare[:0]
	et.txSpare = nil
	m.AtEndCall(cycleFinish, et)
}

// cycleFinish runs at the cycle's virtual end time: post the cycle's
// frames, recycle the slice backing, and decide whether to run again.
func cycleFinish(a any) {
	et := a.(*ElasticThread)
	out := et.txPending
	et.txPending = nil
	for i, f := range out {
		if et.txq.Post(f) {
			et.TxPackets++
		}
		out[i] = nil
	}
	et.txSpare = out[:0]
	et.cycleEnd()
}

// cycleEnd decides between another immediate cycle and quiescence.
func (et *ElasticThread) cycleEnd() {
	et.cycleActive = false
	if et.stopped {
		return
	}
	now := int64(et.dp.eng.Now())
	// NextFireTime, not NextDeadline: a deadline inside the current
	// wheel tick cannot fire before the next tick boundary, and waking
	// for it earlier re-runs cycles in which Advance makes no progress
	// — the charged mid-tick spin the baselines' ensureTimerWake was
	// already cured of.
	ft, hasTimer := et.wheel.NextFireTime()
	if et.rxq.Len() > 0 || len(et.events) > 0 || len(et.syscalls) > 0 ||
		len(et.results) > 0 || (hasTimer && ft <= now) {
		et.wake()
		return
	}
	// Quiescent: hyperthread-friendly polling. A frame arrival wakes us
	// via OnFrame; a pending timer schedules an explicit wakeup.
	if hasTimer {
		et.idleWake = et.dp.eng.At(sim.Time(ft), et.idleFn)
	}
}

// idleFired is the idle-loop timer wakeup (bound once; see idleFn).
func (et *ElasticThread) idleFired() {
	et.idleWake = nil
	et.wake()
}

// dispatch executes one batched system call in the dataplane kernel.
func (et *ElasticThread) dispatch(sc *Syscall, m *sim.Meter) SyscallResult {
	c := &et.dp.cfg.Cost
	res := SyscallResult{Type: sc.Type, Handle: sc.Handle, Cookie: sc.Cookie}
	switch sc.Type {
	case SysConnect:
		m.Charge(c.ConnSetup)
		conn, err := et.ns.TCP().Connect(sc.DstIP, sc.DstPort, sc.Cookie)
		if err != nil {
			res.Err = err
			et.events = append(et.events, Event{Type: EvConnected, Cookie: sc.Cookie, Outcome: false})
			return res
		}
		conn.Handle = et.gate.Grant(conn)
		res.Handle = conn.Handle
	case SysAccept:
		obj, err := et.gate.Lookup(sc.Handle)
		if err != nil {
			res.Err = err
			return res
		}
		conn := obj.(*tcp.Conn)
		conn.Cookie = sc.Cookie
	case SysSendv:
		obj, err := et.gate.Lookup(sc.Handle)
		if err != nil {
			res.Err = err
			return res
		}
		conn := obj.(*tcp.Conn)
		n := conn.Sendv(sc.SG)
		res.N = n
		segs := (n + wire.MSS - 1) / wire.MSS
		m.ChargeN(segs, c.ProtoTx)
		m.Charge(c.ProtoTxByte.Cost(n))
		m.Charge(c.CopyPerByte.Cost(n)) // zero-copy ablation only
	case SysRecvDone:
		if err := et.gate.RecvDone(sc.Handle, sc.Bytes); err != nil {
			res.Err = err
			return res
		}
		obj, err := et.gate.Lookup(sc.Handle)
		if err != nil {
			res.Err = err
			return res
		}
		obj.(*tcp.Conn).RecvDone(sc.Bytes)
		for _, b := range sc.Bufs {
			if b.Owner != et.pool.Owner {
				res.Err = et.gate.Deny()
				return res
			}
			b.Unref()
		}
	case SysClose:
		obj, err := et.gate.Lookup(sc.Handle)
		if err != nil {
			res.Err = err
			return res
		}
		m.Charge(c.ConnSetup / 2)
		obj.(*tcp.Conn).Close()
	case SysAbort:
		obj, err := et.gate.Lookup(sc.Handle)
		if err != nil {
			res.Err = err
			return res
		}
		m.Charge(c.ConnSetup / 2)
		obj.(*tcp.Conn).Abort()
	}
	return res
}

// threadEvents adapts tcp.Events callbacks into event conditions.
// (Methods run in dataplane kernel context during protocol processing.)
type threadEvents ElasticThread

func (te *threadEvents) et() *ElasticThread { return (*ElasticThread)(te) }

// Knock always lets the handshake proceed; the knock event condition is
// raised at establishment and the application accepts or closes then
// (a batching-friendly compression of the Table 1 handshake; see
// DESIGN.md).
func (te *threadEvents) Knock(l *tcp.Listener, key wire.FlowKey) bool { return true }

func (te *threadEvents) Accepted(c *tcp.Conn) {
	et := te.et()
	c.Handle = et.gate.Grant(c)
	et.events = append(et.events, Event{
		Type:    EvKnock,
		Handle:  c.Handle,
		SrcIP:   c.Key().DstIP,
		SrcPort: c.Key().DstPort,
	})
}

func (te *threadEvents) Connected(c *tcp.Conn, ok bool) {
	et := te.et()
	if !ok && c.Handle != 0 {
		et.gate.Revoke(c.Handle)
	}
	et.events = append(et.events, Event{
		Type: EvConnected, Handle: c.Handle, Cookie: c.Cookie, Outcome: ok,
	})
}

func (te *threadEvents) Recv(c *tcp.Conn, buf *mem.Mbuf, data []byte) {
	et := te.et()
	if buf != nil {
		buf.Ref()
		buf.ReadOnly = true // mapped read-only into ring 3 (§4.5)
	}
	et.gate.Delivered(c.Handle, len(data))
	et.events = append(et.events, Event{
		Type: EvRecv, Handle: c.Handle, Cookie: c.Cookie,
		Mbuf: buf, Data: data, Bytes: len(data),
	})
}

func (te *threadEvents) Sent(c *tcp.Conn, acked, released int) {
	et := te.et()
	et.events = append(et.events, Event{
		Type: EvSent, Handle: c.Handle, Cookie: c.Cookie,
		Bytes: acked, Window: c.UsableWindow(), Released: released,
	})
}

func (te *threadEvents) RemoteClosed(c *tcp.Conn) {
	et := te.et()
	et.events = append(et.events, Event{Type: EvEOF, Handle: c.Handle, Cookie: c.Cookie})
}

func (te *threadEvents) Dead(c *tcp.Conn, reason tcp.Reason) {
	et := te.et()
	et.gate.Revoke(c.Handle)
	et.events = append(et.events, Event{
		Type: EvDead, Handle: c.Handle, Cookie: c.Cookie, Reason: reason,
	})
}

// UserAPI is the application-visible system interface of one elastic
// thread: batched system calls plus the few unbatched services (listen,
// timers). libix wraps it; applications normally never see it directly.
type UserAPI struct {
	et    *ElasticThread
	meter *sim.Meter // non-nil only during the user phase
}

// Thread returns the elastic thread index.
func (u *UserAPI) Thread() int { return u.et.id }

// Threads returns the dataplane's current elastic thread count.
func (u *UserAPI) Threads() int { return len(u.et.dp.threads) }

// ExpectedConns reports the host-wide anticipated flow population from
// the dataplane configuration (0 = unknown). User libraries presize
// their connection tables from it.
func (u *UserAPI) ExpectedConns() int { return u.et.dp.cfg.ExpectedConns }

// Now returns virtual time (ns).
func (u *UserAPI) Now() int64 { return int64(u.et.dp.eng.Now()) }

// Charge accounts application CPU time on this thread's core.
func (u *UserAPI) Charge(d time.Duration) {
	if u.meter != nil {
		u.meter.Charge(d)
	} else {
		u.et.pendingCharge += d
	}
}

// Elapsed returns the CPU time charged so far in the current cycle (the
// thread's virtual progress within the batch).
func (u *UserAPI) Elapsed() time.Duration {
	if u.meter != nil {
		return u.meter.Elapsed()
	}
	return u.et.pendingCharge
}

// Queue appends a batched system call for the next kernel phase.
func (u *UserAPI) Queue(sc Syscall) {
	u.et.syscalls = append(u.et.syscalls, sc)
	if u.meter == nil {
		u.et.wake()
	}
}

// Connect issues a connect syscall.
func (u *UserAPI) Connect(cookie uint64, dst wire.IPv4, port uint16) {
	u.Queue(Syscall{Type: SysConnect, Cookie: cookie, DstIP: dst, DstPort: port})
}

// Accept issues an accept syscall.
func (u *UserAPI) Accept(handle uint64, cookie uint64) {
	u.Queue(Syscall{Type: SysAccept, Handle: handle, Cookie: cookie})
}

// Sendv issues a sendv syscall; the result's N reports accepted bytes.
func (u *UserAPI) Sendv(handle uint64, sg [][]byte) {
	u.Queue(Syscall{Type: SysSendv, Handle: handle, SG: sg})
}

// RecvDone returns n consumed bytes and recycles bufs.
func (u *UserAPI) RecvDone(handle uint64, n int, bufs []*mem.Mbuf) {
	u.Queue(Syscall{Type: SysRecvDone, Handle: handle, Bytes: n, Bufs: bufs})
}

// Close issues an orderly close.
func (u *UserAPI) Close(handle uint64) { u.Queue(Syscall{Type: SysClose, Handle: handle}) }

// Abort issues a RST close.
func (u *UserAPI) Abort(handle uint64) { u.Queue(Syscall{Type: SysAbort, Handle: handle}) }

// TxChunks exposes the thread's TX arena chunk pool. libix draws
// per-connection transmit arenas from it; like every hot-path pool it is
// per-thread memory provisioned from the dataplane's region grant.
func (u *UserAPI) TxChunks() *mem.TxChunkPool { return u.et.txpool }

// Listen binds this elastic thread's stack to port (per-thread listener;
// RSS spreads incoming flows across threads).
func (u *UserAPI) Listen(port uint16) error {
	_, err := u.et.ns.TCP().Listen(port, nil)
	return err
}

// userTimer is one live application timer. It records its current owning
// thread so a control-plane core revocation can re-home it (the EvTimer
// condition must fire on a thread that still exists).
type userTimer struct {
	et *ElasticThread
	fn func()
	t  *timerwheel.Timer
	// seq is the dataplane-wide registration number; re-homing replays
	// timers in seq order so same-slot timers keep their firing order.
	seq uint64
}

// fire runs in wheel context (cycle step 5) on whatever thread currently
// owns the timer.
func (ut *userTimer) fire() {
	delete(ut.et.userTimers, ut)
	ut.et.events = append(ut.et.events, Event{Type: EvTimer, Fn: ut.fn})
}

// After registers a user timer; it fires as an EvTimer event condition in
// a subsequent cycle's user phase. The timer survives control-plane
// revocation of this thread's core: it is re-homed with its deadline
// intact.
func (u *UserAPI) After(d time.Duration, fn func()) {
	et := u.et
	deadline := int64(et.dp.eng.Now()) + int64(d)
	et.dp.timerSeq++
	ut := &userTimer{et: et, fn: fn, seq: et.dp.timerSeq}
	ut.t = et.wheel.Add(deadline, ut.fire)
	et.userTimers[ut] = struct{}{}
	if u.meter == nil {
		// Ensure the idle loop knows about the new deadline.
		et.wake()
	}
}

// TryWriteMbuf attempts to modify a message buffer, enforcing the
// read-only mapping of incoming buffers (§4.5). Used by tests to show a
// malicious application cannot corrupt dataplane memory.
func (u *UserAPI) TryWriteMbuf(m *mem.Mbuf, b []byte) error {
	if err := u.et.gate.CheckWritable(m.ReadOnly); err != nil {
		return err
	}
	m.Append(b)
	return nil
}

// quiesce synchronously completes the thread's in-flight user work:
// pending event conditions are delivered, queued batched system calls
// execute against their original handles, and return codes reach the user
// library — leaving no user batch state in flight. This is the quiescence
// a flow-group migration needs beyond what run-to-completion boundaries
// already guarantee. Migration points are rare and coarse-grained (§4.4),
// so the synchronous processing is acceptable.
func (et *ElasticThread) quiesce() {
	for len(et.events) > 0 || len(et.syscalls) > 0 || len(et.results) > 0 {
		events := et.events
		res := et.results
		et.events = nil
		et.results = nil
		if len(events) > 0 || len(res) > 0 {
			et.user.Run(et.api, events, res)
		}
		if batch := et.syscalls; len(batch) > 0 {
			et.syscalls = nil
			m := &sim.Meter{}
			for i := range batch {
				et.results = append(et.results, et.dispatch(&batch[i], m))
			}
		}
	}
	// Pure ACKs owed by the drained batch leave now, as at cycle end —
	// and the frames go straight to the TX ring: a thread quiesced for
	// revocation will not reach another cycle end to post them.
	et.ns.Flush()
	out := et.outFrames
	et.outFrames = nil
	for _, f := range out {
		if et.txq.Post(f) {
			et.TxPackets++
		}
	}
}

// RxQueueLen reports the thread's RX descriptor ring occupancy — the
// queue depth signal the dataplane exports to the control plane (§3:
// "the dataplane can also monitor queue depths at the NIC edge and
// signal the control plane to allocate additional resources").
func (et *ElasticThread) RxQueueLen() int { return et.rxq.Len() }

// CoreUtilization reports the busy fraction of the thread's hardware
// thread since the last stats reset.
func (et *ElasticThread) CoreUtilization() float64 {
	_, total := et.core.Utilization()
	return total
}

// Pool exposes the thread's mbuf pool (tests and CP accounting).
func (et *ElasticThread) Pool() *mem.MbufPool { return et.pool }

// TxPool exposes the thread's TX arena chunk pool (conservation checks).
func (et *ElasticThread) TxPool() *mem.TxChunkPool { return et.txpool }

// ResetUtilWindow starts a fresh utilization measurement window (used by
// the control plane's policy loop).
func (et *ElasticThread) ResetUtilWindow() { et.core.ResetStats() }
