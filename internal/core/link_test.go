package core

import (
	"time"

	"ix/internal/fabric"
	"ix/internal/sim"
)

// newLink returns a short 10GbE link for loopback-style tests.
func newLink(eng *sim.Engine) *fabric.Link {
	return fabric.NewLink(eng, 10*fabric.Gbps, 500*time.Nanosecond)
}
