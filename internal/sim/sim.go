// Package sim provides the deterministic discrete-event engine that all of
// the IX reproduction runs on: a virtual nanosecond clock, a stable-order
// event queue, cancellable timers, and a model of CPU cores that serialize
// work items and account busy time.
//
// Everything in the repository executes on a single goroutine driven by
// Engine.Run; determinism is guaranteed by the stable (time, sequence)
// ordering of events and by using only the engine's seeded RNG.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// String formats the time as a duration since simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// An Event is a scheduled callback. Events are created with Engine.At or
// Engine.After and may be cancelled before they fire.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap index, -1 if not queued
	canceled bool
}

// At returns the virtual time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	rng     *rand.Rand
	stopped bool

	// Processed counts events executed, for diagnostics.
	Processed uint64
}

// NewEngine returns an engine with its clock at zero and its RNG seeded
// with seed (the same seed always yields the same simulation).
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it always indicates a modelling bug.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn, index: -1}
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d from now. Negative d is clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel prevents ev from firing. Cancelling a nil, already-fired, or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index >= 0 {
		heap.Remove(&e.events, ev.index)
		ev.index = -1
	}
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.Processed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ t, then sets the clock to t.
// Events scheduled at exactly t are executed.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 {
		// Peek.
		next := e.events[0]
		if next.canceled {
			heap.Pop(&e.events)
			continue
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now.Add(d)) }

// Pending reports the number of queued (non-cancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.canceled {
			n++
		}
	}
	return n
}
