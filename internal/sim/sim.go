// Package sim provides the deterministic discrete-event engine that all of
// the IX reproduction runs on: a virtual nanosecond clock, a stable-order
// event queue, cancellable timers, and a model of CPU cores that serialize
// work items and account busy time.
//
// Everything in the repository executes on a single goroutine driven by
// Engine.Run; determinism is guaranteed by the stable (time, sequence)
// ordering of events and by using only the engine's seeded RNG.
//
// The event queue is built for the per-packet simulation hot path: events
// scheduled at the current instant go to a FIFO ring instead of the heap
// (most dispatches are "run this now"), one-shot fire-and-forget events
// created with Call/CallAfter are pooled and recycled without garbage, and
// cancellation is lazy (cancelled events are skipped when popped rather
// than removed from the middle of the heap).
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// String formats the time as a duration since simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// An Event is a scheduled callback. Events are created with Engine.At or
// Engine.After and may be cancelled before they fire. One-shot events
// created with Call/CallAfter are pooled internally and never returned.
type Event struct {
	at  Time
	seq uint64
	// Exactly one of fn / fnArg is set; fnArg avoids a closure allocation
	// for hot-path callbacks that need a single argument.
	fn       func()
	fnArg    func(any)
	arg      any
	index    int // heap index, -1 if not queued in the heap
	canceled bool
	pooled   bool // recycled into the engine free list after firing
}

// At returns the virtual time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// heapEntry carries the ordering key by value so sift comparisons touch
// only the heap array — no pointer chasing on the hottest loop in the
// simulator.
type heapEntry struct {
	at  Time
	seq uint64
	ev  *Event
}

// eventHeap is a hand-rolled 4-ary min-heap ordered by (at, seq). The
// wider fan-out halves tree depth versus a binary heap and the inlined
// comparisons avoid container/heap's interface dispatch.
type eventHeap []heapEntry

func entLess(a, b *heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e *Event) {
	*h = append(*h, heapEntry{})
	h.siftUp(len(*h)-1, heapEntry{at: e.at, seq: e.seq, ev: e})
}

func (h eventHeap) siftUp(i int, e heapEntry) {
	for i > 0 {
		parent := (i - 1) >> 2
		p := h[parent]
		if !entLess(&e, &p) {
			break
		}
		h[i] = p
		p.ev.index = i
		i = parent
	}
	h[i] = e
	e.ev.index = i
}

func (h eventHeap) siftDown(i int, e heapEntry) {
	n := len(h)
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		// Smallest of up to four children.
		best := first
		bc := h[first]
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if entLess(&h[c], &bc) {
				best = c
				bc = h[c]
			}
		}
		if !entLess(&bc, &e) {
			break
		}
		h[i] = bc
		bc.ev.index = i
		i = best
	}
	h[i] = e
	e.ev.index = i
}

// popMin removes and returns the minimum event.
func (h *eventHeap) popMin() *Event {
	old := *h
	top := old[0].ev
	n := len(old) - 1
	last := old[n]
	old[n] = heapEntry{}
	*h = old[:n]
	if n > 0 {
		(*h).siftDown(0, last)
	}
	top.index = -1
	return top
}

// remove deletes the event at index i.
func (h *eventHeap) remove(i int) {
	old := *h
	n := len(old) - 1
	ev := old[i].ev
	last := old[n]
	old[n] = heapEntry{}
	*h = old[:n]
	if i < n {
		// Re-place the substituted element in either direction.
		(*h).siftDown(i, last)
		if last.ev.index == i {
			(*h).siftUp(i, last)
		}
	}
	ev.index = -1
}

// Engine is the discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	// ring holds events scheduled at the current instant, in FIFO (= seq)
	// order. The engine's clock never advances while the ring is
	// non-empty, so ring events are always due. Heap events at the same
	// instant were necessarily scheduled earlier (smaller seq) and fire
	// first.
	ring     []*Event
	ringHead int
	free     []*Event // recycled pooled events
	rng      *rand.Rand

	// Processed counts events executed, for diagnostics.
	Processed uint64
}

// NewEngine returns an engine with its clock at zero and its RNG seeded
// with seed (the same seed always yields the same simulation).
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// alloc returns an event ready to schedule, recycled from the free list
// when possible. Every event returns to the pool when it fires or is
// cancelled, so steady-state scheduling — including the cancellable
// At/Cancel idle-wake churn of the OS models — does not allocate.
//
//ix:hotpath
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	//ixvet:ignore(hotpath) pool growth: every event recycles, so steady state hits the free list
	return &Event{pooled: true}
}

// recycle clears a popped event and returns pooled ones to the free list.
//
//ix:hotpath
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.fnArg = nil
	ev.arg = nil
	if ev.pooled {
		ev.canceled = false
		e.free = append(e.free, ev)
	}
}

// schedule assigns the sequence number and queues ev: the same-instant
// ring when ev.at equals the current time, the heap otherwise.
//
//ix:hotpath
func (e *Engine) schedule(ev *Event) {
	if ev.at < e.now {
		//ixvet:ignore(hotpath) panic path: scheduling in the past is a modelling bug, never steady state
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", ev.at, e.now))
	}
	e.seq++
	ev.seq = e.seq
	ev.canceled = false
	if ev.at == e.now {
		ev.index = -1
		e.ring = append(e.ring, ev)
		return
	}
	e.events.push(ev)
}

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it always indicates a modelling bug.
//
// The returned event may be cancelled until it fires. Once it has fired
// or been cancelled it belongs to the engine's pool again: the pointer
// must not be handed back to Cancel from a stale reference — null the
// reference when the callback runs or right after cancelling, as every
// in-tree caller does.
func (e *Engine) At(t Time, fn func()) *Event {
	ev := e.alloc()
	ev.at = t
	ev.fn = fn
	e.schedule(ev)
	return ev
}

// After schedules fn to run d from now. Negative d is clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Call schedules the one-shot fn(arg) at virtual time t. The event is
// pooled and recycled after it fires: it cannot be cancelled and no
// reference escapes. This is the allocation-free path for fire-and-forget
// hot-path work (frame arrivals, task dispatch, TX completions).
//
//ix:hotpath
func (e *Engine) Call(t Time, fn func(any), arg any) {
	ev := e.alloc()
	ev.at = t
	ev.fnArg = fn
	ev.arg = arg
	e.schedule(ev)
}

// CallAfter schedules the one-shot fn(arg) d from now (clamped at zero),
// with the same pooled, non-cancellable semantics as Call.
//
//ix:hotpath
func (e *Engine) CallAfter(d time.Duration, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	e.Call(e.now.Add(d), fn, arg)
}

// Cancel prevents ev from firing. Cancelling a nil or already-cancelled
// event is a no-op. Heap events are removed eagerly and recycled (they
// may be far in the future); same-instant ring events are marked and
// recycled when the engine reaches them. The pointer is dead after
// Cancel returns.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index >= 0 {
		e.events.remove(ev.index)
		e.recycle(ev)
	}
}

// next pops the next due event, or nil when the engine is drained.
// Cancelled ring events are discarded here.
//
//ix:hotpath
func (e *Engine) next() *Event {
	for {
		var ev *Event
		if e.ringHead < len(e.ring) {
			// Ring events are due at the current instant; heap events at
			// the same instant carry smaller sequence numbers (they were
			// scheduled before the clock reached this instant) and fire
			// first.
			if len(e.events) > 0 && e.events[0].at <= e.now {
				ev = e.events.popMin()
			} else {
				ev = e.ring[e.ringHead]
				e.ring[e.ringHead] = nil
				e.ringHead++
				if e.ringHead == len(e.ring) {
					e.ring = e.ring[:0]
					e.ringHead = 0
				}
			}
		} else if len(e.events) > 0 {
			ev = e.events.popMin()
		} else {
			return nil
		}
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		return ev
	}
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
//
//ix:hotpath
func (e *Engine) Step() bool {
	ev := e.next()
	if ev == nil {
		return false
	}
	e.now = ev.at
	e.Processed++
	fn, fnArg, arg := ev.fn, ev.fnArg, ev.arg
	e.recycle(ev)
	if fnArg != nil {
		fnArg(arg)
	} else {
		fn()
	}
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ t, then sets the clock to t.
// Events scheduled at exactly t are executed.
func (e *Engine) RunUntil(t Time) {
	for {
		if e.ringHead < len(e.ring) {
			// Same-instant events are due now (now ≤ t).
			e.Step()
			continue
		}
		if len(e.events) == 0 || e.events[0].at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now.Add(d)) }

// ringLive reports whether a live same-instant event is queued,
// discarding lazily-cancelled entries from the ring front. RunBefore and
// NextEventAt must not trust raw ring occupancy: a cancelled-only ring
// would make Step fall through to a heap event possibly at or past an
// epoch boundary (RunBefore), or understate the next event time
// (NextEventAt).
func (e *Engine) ringLive() bool {
	for e.ringHead < len(e.ring) {
		ev := e.ring[e.ringHead]
		if !ev.canceled {
			return true
		}
		e.ring[e.ringHead] = nil
		e.ringHead++
		if e.ringHead == len(e.ring) {
			e.ring = e.ring[:0]
			e.ringHead = 0
		}
		e.recycle(ev)
	}
	return false
}

// RunBefore executes events with time strictly less than t and leaves the
// clock at the last executed event (it does NOT pad the clock to t). This
// is the epoch body of the sharded runtime: an epoch [T, T+L) owns every
// event before its end and must not touch the boundary instant, which the
// next epoch (after cross-shard merges) owns.
func (e *Engine) RunBefore(t Time) {
	for {
		if e.ringLive() {
			// Same-instant events are due at e.now, which is < t.
			e.Step()
			continue
		}
		if len(e.events) == 0 || e.events[0].at >= t {
			return
		}
		e.Step()
	}
}

// NextEventAt returns the time of the earliest pending event. When the
// engine is drained it returns (0, false). Heap cancellation is eager
// and ringLive skips cancelled ring entries, so the answer is exact.
func (e *Engine) NextEventAt() (Time, bool) {
	if e.ringLive() {
		return e.now, true
	}
	if len(e.events) > 0 {
		return e.events[0].at, true
	}
	return 0, false
}

// A Remote posts one-shot events into another shard's engine. Cross-shard
// producers (fabric links whose two ports live on different shards) hand
// (at, fn, arg) to the destination shard's inbound queue; the shard
// runtime merges queued posts into the destination engine at epoch
// barriers in deterministic (at, source shard, source sequence) order.
// Implementations live in the shard runtime package — the simulation side
// only ever calls Post.
type Remote interface {
	Post(at Time, fn func(any), arg any)
}

// Pending reports the number of queued (non-cancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ent := range e.events {
		if !ent.ev.canceled {
			n++
		}
	}
	for _, ev := range e.ring[e.ringHead:] {
		if !ev.canceled {
			n++
		}
	}
	return n
}
