package sim

import (
	"testing"
	"time"
)

// The steady-state event path — pooled one-shot scheduling via Call /
// CallAfter, same-instant ring dispatch, heap push/pop — must not
// allocate: it runs once or more per simulated packet.

func TestZeroAllocEventCall(t *testing.T) {
	e := NewEngine(1)
	fn := func(any) {}
	// Warm the pool and the heap storage.
	for i := 0; i < 1024; i++ {
		e.CallAfter(time.Microsecond, fn, nil)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.CallAfter(time.Microsecond, fn, nil) // heap path
		e.Call(e.Now(), fn, nil)               // same-instant ring path
		e.Step()
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("event schedule/fire allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkEventScheduleFire(b *testing.B) {
	e := NewEngine(1)
	fn := func(any) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.CallAfter(time.Microsecond, fn, nil)
		e.Step()
	}
}

func BenchmarkEventRingDispatch(b *testing.B) {
	e := NewEngine(1)
	fn := func(any) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Call(e.Now(), fn, nil)
		e.Step()
	}
}
