package sim

import (
	"testing"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(10, func() { got = append(got, 1) })
	e.At(5, func() { got = append(got, 0) })
	e.At(10, func() { got = append(got, 2) }) // same time: FIFO by seq
	e.Run()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("order = %v, want [0 1 2]", got)
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %v, want 10", e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.After(time.Microsecond, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double cancel is a no-op
	e.Cancel(nil)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, d := range []time.Duration{10, 20, 30} {
		d := d
		e.After(d*time.Nanosecond, func() { fired = append(fired, e.Now()) })
	}
	e.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=20, want 2", len(fired))
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %v, want 20", e.Now())
	}
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %d events total, want 3", len(fired))
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []int64 {
		e := NewEngine(42)
		var trace []int64
		var rec func()
		n := 0
		rec = func() {
			trace = append(trace, int64(e.Now()))
			n++
			if n < 50 {
				e.After(time.Duration(e.Rand().Intn(1000))*time.Nanosecond, rec)
			}
		}
		e.After(0, rec)
		e.Run()
		return trace
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCoreSerializesTasks(t *testing.T) {
	e := NewEngine(1)
	c := NewCore(e, 0)
	var done []Time
	for i := 0; i < 3; i++ {
		c.Submit(ClassDataplane, func(m *Meter) {
			m.Charge(100 * time.Nanosecond)
			m.AtEnd(func() { done = append(done, e.Now()) })
		})
	}
	e.Run()
	want := []Time{100, 200, 300}
	for i, w := range want {
		if done[i] != w {
			t.Fatalf("task %d finished at %v, want %v", i, done[i], w)
		}
	}
}

func TestCoreContextSwitchCharge(t *testing.T) {
	e := NewEngine(1)
	c := NewCore(e, 0)
	c.CtxSwitch = 50 * time.Nanosecond
	var end Time
	c.Submit(ClassKernel, func(m *Meter) { m.Charge(100 * time.Nanosecond) })
	c.Submit(ClassUser, func(m *Meter) {
		m.Charge(100 * time.Nanosecond)
		m.AtEnd(func() { end = e.Now() })
	})
	e.Run()
	// 100 (kernel) + 50 (switch) + 100 (user) = 250.
	if end != 250 {
		t.Fatalf("end = %v, want 250", end)
	}
}

func TestCoreSubmitAfterDelay(t *testing.T) {
	e := NewEngine(1)
	c := NewCore(e, 0)
	var start Time
	c.SubmitAfter(500*time.Nanosecond, ClassUser, func(m *Meter) { start = e.Now() })
	e.Run()
	if start != 500 {
		t.Fatalf("task started at %v, want 500", start)
	}
}

func TestCoreUtilization(t *testing.T) {
	e := NewEngine(1)
	c := NewCore(e, 0)
	c.Submit(ClassKernel, func(m *Meter) { m.Charge(300 * time.Nanosecond) })
	c.Submit(ClassUser, func(m *Meter) { m.Charge(100 * time.Nanosecond) })
	e.Run()
	e.RunUntil(1000)
	by, total := c.Utilization()
	if total < 0.39 || total > 0.41 {
		t.Fatalf("total utilization = %v, want ~0.4", total)
	}
	if by[ClassKernel] < 0.29 || by[ClassKernel] > 0.31 {
		t.Fatalf("kernel utilization = %v, want ~0.3", by[ClassKernel])
	}
}

func TestMeterAtEndOrder(t *testing.T) {
	e := NewEngine(1)
	c := NewCore(e, 0)
	var order []int
	c.Submit(ClassDataplane, func(m *Meter) {
		m.AtEnd(func() { order = append(order, 1) })
		m.AtEnd(func() { order = append(order, 2) })
	})
	e.Run()
	if len(order) != 2 || order[0] != 1 {
		t.Fatalf("AtEnd order = %v", order)
	}
}
