package sim

import (
	"time"
)

// endAction is one deferred end-of-task callback. The two-form layout
// mirrors Event: fnArg+arg avoids a closure allocation on hot paths.
type endAction struct {
	fn    func()
	fnArg func(any)
	arg   any
}

// A Meter accumulates the virtual CPU cost of a task as it executes, and
// collects actions to release when the task's virtual time window ends
// (e.g. frames to place on a NIC ring at the end of a run-to-completion
// cycle). Task logic runs instantaneously in host time at the task's
// virtual start; the meter determines when the core becomes free and when
// the task's externally visible outputs appear.
type Meter struct {
	total time.Duration
	atEnd []endAction
	start Time
}

// Charge adds d of virtual CPU time to the task.
func (m *Meter) Charge(d time.Duration) {
	if d > 0 {
		m.total += d
	}
}

// ChargeN adds n×d of virtual CPU time.
func (m *Meter) ChargeN(n int, d time.Duration) {
	if n > 0 && d > 0 {
		m.total += time.Duration(n) * d
	}
}

// Elapsed returns the cost charged so far.
func (m *Meter) Elapsed() time.Duration { return m.total }

// Start returns the virtual time at which the task began executing.
func (m *Meter) Start() Time { return m.start }

// AtEnd registers fn to run at the task's virtual end time, after all cost
// has been charged. Registered functions run in order.
func (m *Meter) AtEnd(fn func()) { m.atEnd = append(m.atEnd, endAction{fn: fn}) }

// AtEndCall registers the one-shot fn(arg) to run at the task's virtual
// end time — the allocation-free AtEnd for per-cycle hot paths.
func (m *Meter) AtEndCall(fn func(any), arg any) {
	m.atEnd = append(m.atEnd, endAction{fnArg: fn, arg: arg})
}

// runEnd fires the registered end actions in order and clears them.
// Actions registered by a running end action (re-entrant AtEnd) are
// picked up by re-reading the live slice each iteration.
func (m *Meter) runEnd() {
	for i := 0; i < len(m.atEnd); i++ {
		a := m.atEnd[i]
		m.atEnd[i] = endAction{}
		if a.fnArg != nil {
			a.fnArg(a.arg)
		} else if a.fn != nil {
			a.fn()
		}
	}
}

// TaskClass labels work so cores can charge a context-switch penalty when
// switching between classes (e.g. Linux softirq vs. application thread).
type TaskClass int

// Task classes used by the OS architecture models.
const (
	ClassDataplane TaskClass = iota // IX elastic thread cycle
	ClassKernel                     // Linux hardirq/softirq work
	ClassUser                       // application thread work
	ClassTCPThread                  // mTCP per-core TCP thread
)

// numClasses sizes the per-class accounting array.
const numClasses = 4

type coreTask struct {
	class TaskClass
	fn    func(*Meter)
	ready Time // earliest virtual start
}

// A Core models one hardware thread. Tasks submitted to a core run
// serially; each task's virtual duration is whatever its function charges
// to the Meter. Cores track utilization for the kernel-time/user-time
// breakdowns reported in the paper's §5.5.
type Core struct {
	Eng *Engine
	ID  int

	// CtxSwitch is charged when consecutive tasks have different classes
	// (thread switch on a shared core). Zero for dedicated-core models.
	CtxSwitch time.Duration

	busy      bool
	freeAt    Time
	lastClass TaskClass
	queue     []coreTask
	qHead     int

	// pending is the task handed to the dispatch event; meter is reused
	// across tasks (the core runs one task at a time).
	pending coreTask
	meter   Meter

	// Utilization accounting, by class.
	busyTime  [numClasses]time.Duration
	statStart Time
}

// NewCore returns an idle core attached to eng.
func NewCore(eng *Engine, id int) *Core {
	return &Core{Eng: eng, ID: id, lastClass: -1}
}

// Submit enqueues fn on the core with the given class. The task starts as
// soon as the core is free (FIFO, no preemption).
func (c *Core) Submit(class TaskClass, fn func(*Meter)) {
	c.SubmitAfter(0, class, fn)
}

// SubmitAfter enqueues fn but prevents it from starting earlier than delay
// from now, modelling e.g. scheduler wakeup latency for a blocked thread.
func (c *Core) SubmitAfter(delay time.Duration, class TaskClass, fn func(*Meter)) {
	t := coreTask{class: class, fn: fn, ready: c.Eng.Now().Add(delay)}
	c.queue = append(c.queue, t)
	if !c.busy {
		c.dispatch()
	}
}

// popTask removes the head of the queue, reusing the backing array once
// drained so steady-state submission does not allocate.
func (c *Core) popTask() (coreTask, bool) {
	if c.qHead >= len(c.queue) {
		return coreTask{}, false
	}
	t := c.queue[c.qHead]
	c.queue[c.qHead] = coreTask{}
	c.qHead++
	if c.qHead == len(c.queue) {
		c.queue = c.queue[:0]
		c.qHead = 0
	}
	return t, true
}

// coreStart / coreFinish are the static dispatch trampolines; using
// Engine.Call with the core as argument keeps per-task scheduling
// allocation-free.
func coreStart(a any)  { a.(*Core).runTask() }
func coreFinish(a any) { a.(*Core).finishTask() }

// dispatch starts the next runnable task. Called when the core is idle.
func (c *Core) dispatch() {
	t, ok := c.popTask()
	if !ok {
		return
	}
	start := c.Eng.Now()
	if t.ready > start {
		start = t.ready
	}
	c.busy = true
	c.pending = t
	c.Eng.Call(start, coreStart, c)
}

func (c *Core) runTask() {
	t := c.pending
	c.pending = coreTask{}
	m := &c.meter
	m.total = 0
	m.start = c.Eng.Now()
	m.atEnd = m.atEnd[:0]
	if c.lastClass >= 0 && c.lastClass != t.class && c.CtxSwitch > 0 {
		m.Charge(c.CtxSwitch)
	}
	c.lastClass = t.class
	t.fn(m)
	end := c.Eng.Now().Add(m.total)
	c.freeAt = end
	c.busyTime[t.class] += m.total
	c.Eng.Call(end, coreFinish, c)
}

func (c *Core) finishTask() {
	c.meter.runEnd()
	c.busy = false
	c.dispatch()
}

// Busy reports whether the core is currently executing or has queued work.
func (c *Core) Busy() bool { return c.busy || c.qHead < len(c.queue) }

// QueueLen reports the number of tasks waiting (not including the running
// one).
func (c *Core) QueueLen() int { return len(c.queue) - c.qHead }

// ResetStats zeroes utilization counters and marks the measurement epoch.
func (c *Core) ResetStats() {
	c.busyTime = [numClasses]time.Duration{}
	c.statStart = c.Eng.Now()
}

// Utilization returns the fraction of time since ResetStats the core spent
// in each class, and the total busy fraction. Returns zeros before any
// time has passed.
func (c *Core) Utilization() (byClass map[TaskClass]float64, total float64) {
	elapsed := c.Eng.Now().Sub(c.statStart)
	byClass = make(map[TaskClass]float64)
	if elapsed <= 0 {
		return byClass, 0
	}
	var busy time.Duration
	for cl, d := range c.busyTime {
		if d > 0 {
			byClass[TaskClass(cl)] = float64(d) / float64(elapsed)
		}
		busy += d
	}
	return byClass, float64(busy) / float64(elapsed)
}
