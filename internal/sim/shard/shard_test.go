package shard

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"ix/internal/sim"
)

const testLookahead = 2 * time.Microsecond

// newTestRuntime builds n shards with a fixed lookahead and returns the
// runtime plus a per-shard execution trace. Trace slices are only
// appended to by the owning shard's worker and only read after RunFor
// returns (the worker join gives happens-before), mirroring how the
// harness owns per-shard state.
func newTestRuntime(n int) (*Runtime, [][]string) {
	engs := make([]*sim.Engine, n)
	for i := range engs {
		engs[i] = sim.NewEngine(int64(1000 + i))
	}
	rt := New(engs)
	if n > 1 {
		rt.ObserveLink(testLookahead)
	}
	traces := make([][]string, n)
	return rt, traces
}

func at(us int64) sim.Time { return sim.Time(us * 1000) }

func TestCrossShardPostArrivesAtExactTime(t *testing.T) {
	rt, traces := newTestRuntime(2)
	remote := rt.Remote(0, 1)
	// Shard 0 fires at t=1µs and hands a frame-like post to shard 1 due
	// exactly one lookahead later — the earliest legal arrival, landing
	// exactly on the epoch boundary E+L. It must execute on shard 1 at
	// exactly 3µs, in the epoch that owns [3µs, ...).
	rt.Engine(0).At(at(1), func() {
		remote.Post(at(3), func(any) {
			traces[1] = append(traces[1], fmt.Sprintf("arrive@%v", rt.Engine(1).Now()))
		}, nil)
	})
	rt.RunFor(10 * time.Microsecond)
	want := []string{"arrive@3µs"}
	if len(traces[1]) != 1 || traces[1][0] != want[0] {
		t.Fatalf("cross-shard arrival trace = %v, want %v", traces[1], want)
	}
	for i := 0; i < rt.Shards(); i++ {
		if now := rt.Engine(i).Now(); now != at(10) {
			t.Fatalf("shard %d clock = %v after RunFor, want 10µs", i, now)
		}
	}
}

func TestZeroLatencyIntraShardChainRunsInOneEpoch(t *testing.T) {
	rt, traces := newTestRuntime(2)
	// A same-instant self-call chain (zero-latency loopback inside one
	// shard) must run to completion within its instant — the epoch
	// barrier may not buffer any link of the chain into a later epoch,
	// and FIFO order must hold.
	const n = 5
	var hop func(i int)
	eng := rt.Engine(1)
	hop = func(i int) {
		traces[1] = append(traces[1], fmt.Sprintf("hop%d@%v", i, eng.Now()))
		if i+1 < n {
			eng.At(eng.Now(), func() { hop(i + 1) })
		}
	}
	eng.At(at(1), func() { hop(0) })
	// A later event pins the epoch count: if the chain leaked across
	// epochs, hops would show a later timestamp.
	rt.RunFor(4 * time.Microsecond)
	if len(traces[1]) != n {
		t.Fatalf("got %d hops, want %d: %v", len(traces[1]), n, traces[1])
	}
	for i, tr := range traces[1] {
		if want := fmt.Sprintf("hop%d@1µs", i); tr != want {
			t.Fatalf("hop %d = %q, want %q (chain deferred or reordered)", i, tr, want)
		}
	}
}

func TestIdleSkipJumpsQuietStretches(t *testing.T) {
	rt, traces := newTestRuntime(2)
	// Two events 1ms apart: the leader must jump the gap in one epoch
	// rather than grinding through 500 lookahead windows.
	rt.Engine(0).At(at(1), func() { traces[0] = append(traces[0], "a") })
	rt.Engine(1).At(at(1000), func() { traces[1] = append(traces[1], "b") })
	rt.RunFor(2 * time.Millisecond)
	if len(traces[0]) != 1 || len(traces[1]) != 1 {
		t.Fatalf("events lost: %v %v", traces[0], traces[1])
	}
	if got := rt.Telemetry().Epochs; got > 8 {
		t.Fatalf("idle-skip missing: %d epochs for two sparse events", got)
	}
}

func TestDeterministicMergeOrderAcrossSources(t *testing.T) {
	// Same-instant posts from different source shards must merge in
	// (time, source shard, source seq) order regardless of which worker
	// ran first; repeating the run must reproduce it exactly.
	run := func() []string {
		rt, traces := newTestRuntime(3)
		for _, src := range []int{2, 1} {
			src := src
			remote := rt.Remote(src, 0)
			rt.Engine(src).At(at(1), func() {
				for k := 0; k < 2; k++ {
					k := k
					remote.Post(at(5), func(any) {
						traces[0] = append(traces[0], fmt.Sprintf("s%dk%d", src, k))
					}, nil)
				}
			})
		}
		rt.RunFor(10 * time.Microsecond)
		return traces[0]
	}
	want := "s1k0 s1k1 s2k0 s2k1"
	for i := 0; i < 20; i++ {
		if got := strings.Join(run(), " "); got != want {
			t.Fatalf("run %d merged %q, want %q", i, got, want)
		}
	}
}

func TestRunForMatchesSerialClockAdvance(t *testing.T) {
	rt, _ := newTestRuntime(4)
	rt.RunFor(time.Millisecond)
	rt.RunFor(3 * time.Microsecond)
	for i := 0; i < rt.Shards(); i++ {
		if now := rt.Engine(i).Now(); now != sim.Time(time.Millisecond+3*time.Microsecond) {
			t.Fatalf("shard %d clock = %v, want 1.003ms", i, now)
		}
	}
}

func TestSubLookaheadPostPanics(t *testing.T) {
	rt, _ := newTestRuntime(2)
	remote := rt.Remote(0, 1)
	// A cross-shard arrival inside the current epoch means the link is
	// faster than the configured lookahead — a conservative-model
	// violation that must fail loudly, not silently misorder.
	rt.Engine(0).At(at(1), func() {
		remote.Post(at(1).Add(100*time.Nanosecond), func(any) {}, nil)
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("sub-lookahead cross-shard post did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "violates epoch end") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	rt.RunFor(10 * time.Microsecond)
}

func TestWorkerPanicPropagatesWithoutDeadlock(t *testing.T) {
	rt, _ := newTestRuntime(4)
	rt.Engine(2).At(at(5), func() { panic("boom on shard 2") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic swallowed")
		}
		if !strings.Contains(fmt.Sprint(r), "boom on shard 2") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	rt.RunFor(time.Millisecond)
}

func TestRunForWithoutLookaheadPanics(t *testing.T) {
	engs := []*sim.Engine{sim.NewEngine(1), sim.NewEngine(2)}
	rt := New(engs)
	defer func() {
		if recover() == nil {
			t.Fatal("RunFor with no ObserveLink must panic: no lookahead bound exists")
		}
	}()
	rt.RunFor(time.Microsecond)
}

func TestTelemetryCountsCrossShardPosts(t *testing.T) {
	rt, _ := newTestRuntime(2)
	remote := rt.Remote(0, 1)
	const n = 7
	rt.Engine(0).At(at(1), func() {
		for k := 0; k < n; k++ {
			remote.Post(at(10), func(any) {}, nil)
		}
	})
	rt.RunFor(20 * time.Microsecond)
	tel := rt.Telemetry()
	if tel.Shards != 2 || tel.CrossShardFrames != n {
		t.Fatalf("telemetry = %+v, want Shards=2 CrossShardFrames=%d", tel, n)
	}
	if tel.Epochs == 0 {
		t.Fatal("telemetry epochs not counted")
	}
}

func TestAtomicMinMax(t *testing.T) {
	var lo, hi int64 = 100, 100
	for _, v := range []int64{103, 99, 180, 42, 150} {
		MinI64(&lo, v)
		MaxI64(&hi, v)
	}
	if lo != 42 || hi != 180 {
		t.Fatalf("MinI64/MaxI64 = %d/%d, want 42/180", lo, hi)
	}
}
