// Package shard is the parallel runtime of the simulator: it drives N
// sim.Engine instances (shards) on N OS workers, advancing virtual time
// in epochs bounded by the minimum cross-shard link latency — classic
// conservative parallel discrete-event simulation with link-latency
// lookahead. Hosts interact only through fabric links with nonzero
// latency, so a message generated inside epoch [T, T+L) can only arrive
// at another shard at or after T+L: each shard may execute its own
// events up to the epoch end without ever hearing from a peer too late.
//
// This package is the ONLY sim-visible package where goroutines, sync
// primitives and the wall clock are sanctioned (ixvet's determinism
// analyzer carries an explicit allowlist for it). Everything that needs
// cross-OS-thread machinery — epoch barriers, cross-shard handoff
// queues, the frame return boxes, atomic measurement counters — lives
// here, behind interfaces (sim.Remote, fabric.RemoteReleaser) that the
// engine and fabric consume without importing this package.
//
// Determinism contract (DESIGN.md §Parallel engine): a shard's execution
// is a deterministic function of its epoch inputs. Cross-shard posts are
// merged at epoch barriers in (arrival time, source shard, source
// sequence) order, so a fixed seed plus a fixed shard count reproduces
// byte-identical runs. Across different shard counts only same-instant
// tie order can differ (serial breaks simultaneous cross-host events by
// global scheduling order, which no local key can reproduce), so
// experiment statistics agree exactly on robust counts and within small
// tolerances on rates.
package shard

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ix/internal/fabric"
	"ix/internal/sim"
)

// post is one cross-shard event: a pooled one-shot (fn, arg) due at at,
// stamped with the source queue's sequence number for the deterministic
// merge tiebreak.
type post struct {
	at  sim.Time
	seq uint64
	fn  func(any)
	arg any
}

// mpost is a post tagged with its source shard during the merge.
type mpost struct {
	post
	src int
}

// handoff is the single-producer single-consumer queue for one (src,
// dst) shard pair. The producer appends during its epoch run phase; the
// consumer drains at the next barrier. The phases never overlap (the
// epoch barrier separates them and establishes happens-before), so the
// buffer needs no per-element synchronization.
type handoff struct {
	rt  *Runtime
	buf []post
	seq uint64
}

// Post implements sim.Remote: enqueue (fn, arg) for execution at at on
// the destination shard. Posting an arrival before the current epoch's
// end would be a conservative-lookahead violation (a cross-shard link
// faster than the configured lookahead) and panics.
func (q *handoff) Post(at sim.Time, fn func(any), arg any) {
	if at < q.rt.epochEnd {
		panic(fmt.Sprintf("shard: cross-shard post at %v violates epoch end %v (link latency below lookahead?)", at, q.rt.epochEnd))
	}
	q.seq++
	q.buf = append(q.buf, post{at: at, seq: q.seq, fn: fn, arg: arg})
}

// retbox collects frames whose Release ran on a shard other than their
// pool's owner. The owner drains the box at every epoch barrier and
// completes the release there, keeping FramePool accounting single-
// threaded and its free list lock-free on the hot path.
type retbox struct {
	mu     sync.Mutex
	frames []*fabric.Frame
	pools  []*fabric.FramePool // detached frames: accounting-only returns
}

// ReleaseRemote implements fabric.RemoteReleaser.
func (b *retbox) ReleaseRemote(f *fabric.Frame) {
	b.mu.Lock()
	b.frames = append(b.frames, f)
	b.mu.Unlock()
}

// DetachRemote implements fabric.RemoteReleaser.
func (b *retbox) DetachRemote(p *fabric.FramePool) {
	b.mu.Lock()
	b.pools = append(b.pools, p)
	b.mu.Unlock()
}

// worker is one shard's execution state.
type worker struct {
	id  int
	eng *sim.Engine

	// nextAt/hasNext publish the shard's earliest pending event to the
	// leader's idle-skip computation (written before, read after a
	// barrier).
	nextAt  sim.Time
	hasNext bool

	scratch []mpost // merge buffer, reused across epochs

	// Telemetry (read between runs only).
	crossPosts     uint64
	remoteReleases uint64
	idle           time.Duration // wall time spent waiting at barriers
}

// barrier is a sense-reversing spinning barrier. Workers spin briefly,
// then yield; the simulation's epochs are microseconds of virtual time,
// so parking on a futex every epoch would dominate the run.
type barrier struct {
	n     int32
	count atomic.Int32
	sense atomic.Uint32
}

// wait blocks until all n participants arrive. Returns false when the
// runtime aborted (a sibling worker panicked) — the caller must unwind.
func (b *barrier) wait(rt *Runtime, w *worker) bool {
	gen := b.sense.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.sense.Add(1)
		return !rt.aborted.Load()
	}
	t0 := time.Now()
	for spins := 0; b.sense.Load() == gen; spins++ {
		if rt.aborted.Load() {
			return false
		}
		if spins > 64 {
			runtime.Gosched()
		}
	}
	w.idle += time.Since(t0)
	return !rt.aborted.Load()
}

// Runtime drives one engine per shard through lookahead-bounded epochs.
// Construct with New, connect cross-shard producers via Remote and frame
// pools via Releaser, then drive with RunFor. All Runtime methods must
// be called from the coordinating goroutine between runs; only the
// Remote/Releaser handles are touched from inside the simulation.
type Runtime struct {
	engs    []*sim.Engine
	workers []*worker
	queues  [][]*handoff // [src][dst]
	boxes   []*retbox    // per destination (pool-owner) shard
	bar     barrier

	lookahead time.Duration

	// Epoch state: written by the leader between barriers, read by every
	// worker after the next barrier (happens-before via the barrier).
	target   sim.Time // RunFor's end of virtual time
	epochEnd sim.Time // current epoch boundary
	final    bool     // epoch runs inclusive to target
	done     bool

	epochs  uint64
	aborted atomic.Bool
	abortMu sync.Mutex
	abortV  any
}

// New builds a runtime over the given engines (one per shard; engine i
// is shard i). Shard 0 is the coordinator's shard: RunFor executes it on
// the calling goroutine.
func New(engs []*sim.Engine) *Runtime {
	rt := &Runtime{engs: engs}
	rt.bar.n = int32(len(engs))
	rt.queues = make([][]*handoff, len(engs))
	for src := range engs {
		rt.queues[src] = make([]*handoff, len(engs))
		for dst := range engs {
			if src != dst {
				rt.queues[src][dst] = &handoff{rt: rt}
			}
		}
	}
	for i, e := range engs {
		rt.workers = append(rt.workers, &worker{id: i, eng: e})
		rt.boxes = append(rt.boxes, &retbox{})
		_ = i
	}
	return rt
}

// Shards returns the shard count.
func (rt *Runtime) Shards() int { return len(rt.engs) }

// Engine returns shard i's engine.
func (rt *Runtime) Engine(i int) *sim.Engine { return rt.engs[i] }

// ObserveLink lowers the conservative lookahead to the latency of a
// cross-shard link. The harness calls it for every cable whose two ports
// land on different shards; the minimum bounds every epoch.
func (rt *Runtime) ObserveLink(latency time.Duration) {
	if latency <= 0 {
		panic("shard: cross-shard link with zero latency has no lookahead")
	}
	if rt.lookahead == 0 || latency < rt.lookahead {
		rt.lookahead = latency
	}
}

// Lookahead returns the configured epoch bound.
func (rt *Runtime) Lookahead() time.Duration { return rt.lookahead }

// Remote returns the cross-shard post handle for events produced on
// shard src and consumed on shard dst, or nil when src == dst (local
// scheduling needs no handoff).
func (rt *Runtime) Remote(src, dst int) sim.Remote {
	if src == dst {
		return nil
	}
	return rt.queues[src][dst]
}

// Releaser returns the frame return box of the pool-owner shard.
func (rt *Runtime) Releaser(owner int) fabric.RemoteReleaser {
	return rt.boxes[owner]
}

// RunFor advances all shards by d of virtual time. Equivalent to every
// engine's RunFor(d) under the conservative epoch schedule: at return,
// every engine's clock is exactly start+d, all boundary-time events have
// executed, and all cross-shard arrivals generated before the end are
// either executed or scheduled in their destination engines.
func (rt *Runtime) RunFor(d time.Duration) {
	if rt.aborted.Load() {
		panic(rt.abortV)
	}
	if len(rt.engs) > 1 && rt.lookahead <= 0 {
		panic("shard: RunFor without a cross-shard lookahead (ObserveLink never called)")
	}
	rt.target = rt.engs[0].Now().Add(d)
	rt.done, rt.final = false, false
	var wg sync.WaitGroup
	for _, w := range rt.workers[1:] {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			rt.runWorker(w)
		}(w)
	}
	rt.runWorker(rt.workers[0])
	wg.Wait()
	if rt.aborted.Load() {
		panic(rt.abortV)
	}
}

// abortWith records the first worker panic and poisons the runtime so
// every sibling unwinds at its next barrier check.
func (rt *Runtime) abortWith(v any) {
	rt.abortMu.Lock()
	if rt.abortV == nil {
		rt.abortV = v
	}
	rt.abortMu.Unlock()
	rt.aborted.Store(true)
}

// runWorker is one shard's epoch loop. Every iteration: merge inbound
// posts and homecoming frames, publish the next-event time, let the
// leader pick the epoch window (idle-skip to the global minimum next
// event, bounded by lookahead), then run the engine to the boundary.
func (rt *Runtime) runWorker(w *worker) {
	defer func() {
		if r := recover(); r != nil {
			rt.abortWith(r)
		}
	}()
	for {
		rt.drain(w)
		w.nextAt, w.hasNext = w.eng.NextEventAt()
		if !rt.bar.wait(rt, w) {
			return
		}
		if w.id == 0 {
			rt.computeEpoch()
		}
		if !rt.bar.wait(rt, w) {
			return
		}
		if rt.done {
			return
		}
		if rt.final {
			w.eng.RunUntil(rt.epochEnd)
		} else {
			w.eng.RunBefore(rt.epochEnd)
		}
		if !rt.bar.wait(rt, w) {
			return
		}
	}
}

// computeEpoch picks the next epoch window (leader only, between
// barriers). E = the earliest pending event across shards (idle-skip:
// quiet stretches are jumped in one step); the epoch then covers
// [E, E+L) exclusive, or runs inclusive to the target once E+L reaches
// it — every arrival generated at t ≥ E lands at t+L ≥ E+L, i.e. beyond
// the boundary, which is exactly the conservative-lookahead argument.
func (rt *Runtime) computeEpoch() {
	if rt.final {
		rt.done = true
		return
	}
	s := rt.target
	e := s
	for _, w := range rt.workers {
		if w.hasNext && w.nextAt < e {
			e = w.nextAt
		}
	}
	if e < rt.epochEnd {
		panic(fmt.Sprintf("shard: next event %v before finished epoch %v (lookahead violation)", e, rt.epochEnd))
	}
	rt.epochs++
	if end := e.Add(rt.lookahead); e < s && end < s {
		rt.epochEnd = end
		return
	}
	rt.epochEnd = s
	rt.final = true
}

// drain merges this shard's inbound cross-shard posts in deterministic
// (arrival time, source shard, source sequence) order, then completes
// releases of homecoming frames. Runs with every producer parked at the
// barrier, so the queue buffers are safely owned here.
func (rt *Runtime) drain(w *worker) {
	s := w.scratch[:0]
	for src := range rt.engs {
		if src == w.id {
			continue
		}
		q := rt.queues[src][w.id]
		for i := range q.buf {
			s = append(s, mpost{post: q.buf[i], src: src})
		}
		if n := len(q.buf); n > 0 {
			w.crossPosts += uint64(n)
			for i := range q.buf {
				q.buf[i] = post{}
			}
			q.buf = q.buf[:0]
		}
	}
	if len(s) > 1 {
		sort.Slice(s, func(i, j int) bool {
			if s[i].at != s[j].at {
				return s[i].at < s[j].at
			}
			if s[i].src != s[j].src {
				return s[i].src < s[j].src
			}
			return s[i].seq < s[j].seq
		})
	}
	for i := range s {
		w.eng.Call(s[i].at, s[i].fn, s[i].arg)
	}
	w.scratch = s

	b := rt.boxes[w.id]
	b.mu.Lock()
	frames, pools := b.frames, b.pools
	b.frames, b.pools = nil, nil
	b.mu.Unlock()
	for _, f := range frames {
		f.CompleteRemoteRelease()
	}
	for _, p := range pools {
		p.CompleteRemoteDetach()
	}
	w.remoteReleases += uint64(len(frames))
	if cap(frames) > 0 || cap(pools) > 0 {
		b.mu.Lock()
		if b.frames == nil {
			b.frames = frames[:0]
		}
		if b.pools == nil {
			b.pools = pools[:0]
		}
		b.mu.Unlock()
	}
}

// Telemetry is the per-run engine instrumentation the experiment footer
// prints (the data the next lookahead/granularity tuning PR needs).
type Telemetry struct {
	Shards int
	// Epochs counts epoch windows executed across all RunFor calls.
	Epochs uint64
	// CrossShardFrames counts cross-shard posts merged (every post is a
	// frame delivery in the current fabric).
	CrossShardFrames uint64
	// RemoteReleases counts frames released on a foreign shard and
	// completed at their owner's barrier drain.
	RemoteReleases uint64
	// BarrierIdle is wall-clock time workers spent waiting at epoch
	// barriers, summed over workers (load-imbalance indicator).
	BarrierIdle time.Duration
}

// Telemetry snapshots the runtime counters. Call between runs.
func (rt *Runtime) Telemetry() Telemetry {
	t := Telemetry{Shards: len(rt.engs), Epochs: rt.epochs}
	for _, w := range rt.workers {
		t.CrossShardFrames += w.crossPosts
		t.RemoteReleases += w.remoteReleases
		t.BarrierIdle += w.idle
	}
	return t
}

// String formats the telemetry for an experiment footer.
func (t Telemetry) String() string {
	return fmt.Sprintf("shards=%d epochs=%d cross-shard frames=%d remote releases=%d barrier idle=%v",
		t.Shards, t.Epochs, t.CrossShardFrames, t.RemoteReleases, t.BarrierIdle.Round(time.Millisecond))
}

// --- shared-measurement primitives ---
//
// Measurement sinks (stats counters/histograms, app metrics) are host Go
// memory shared across hosts, which under the sharded runtime means
// across OS workers. Sim-visible packages may not import sync or
// sync/atomic (ixvet bans it — concurrency there is exactly what breaks
// fixed-seed determinism), so the few primitives they legitimately need
// are exported from here: commutative atomic accumulation, whose final
// values are independent of worker interleaving, and a mutex for the
// rare order-independent map update.

// Add64 atomically adds n to *p.
func Add64(p *uint64, n uint64) { atomic.AddUint64(p, n) }

// Load64 atomically loads *p.
func Load64(p *uint64) uint64 { return atomic.LoadUint64(p) }

// AddI64 atomically adds n to *p.
func AddI64(p *int64, n int64) { atomic.AddInt64(p, n) }

// LoadI64 atomically loads *p.
func LoadI64(p *int64) int64 { return atomic.LoadInt64(p) }

// MinI64 atomically lowers *p to v if v is smaller.
func MinI64(p *int64, v int64) {
	for {
		old := atomic.LoadInt64(p)
		if v >= old || atomic.CompareAndSwapInt64(p, old, v) {
			return
		}
	}
}

// MaxI64 atomically raises *p to v if v is larger.
func MaxI64(p *int64, v int64) {
	for {
		old := atomic.LoadInt64(p)
		if v <= old || atomic.CompareAndSwapInt64(p, old, v) {
			return
		}
	}
}

// Mutex is a plain mutex for measurement-sink updates that cannot be
// expressed as commutative atomics (e.g. incast's per-round maps). The
// guarded update must still be order-independent — the lock serializes
// workers, it does not order them.
type Mutex struct{ sync.Mutex }
