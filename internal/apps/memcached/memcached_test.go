package memcached

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"ix/internal/app"
	"ix/internal/wire"
)

// fakeEnv satisfies app.Env for direct protocol tests.
type fakeEnv struct {
	now     int64
	charged time.Duration
}

func (f *fakeEnv) Now() int64                           { return f.now }
func (f *fakeEnv) Charge(d time.Duration)               { f.charged += d }
func (f *fakeEnv) Elapsed() time.Duration               { return f.charged }
func (f *fakeEnv) Connect(wire.IPv4, uint16, any) error { return nil }
func (f *fakeEnv) Listen(uint16) error                  { return nil }
func (f *fakeEnv) After(time.Duration, func())          {}
func (f *fakeEnv) Thread() int                          { return 0 }

// fakeConn records sends.
type fakeConn struct {
	cookie any
	out    []byte
	closed bool
}

func (c *fakeConn) Send(b []byte) int { c.out = append(c.out, b...); return len(b) }
func (c *fakeConn) Close()            { c.closed = true }
func (c *fakeConn) Abort()            { c.closed = true }
func (c *fakeConn) Cookie() any       { return c.cookie }
func (c *fakeConn) SetCookie(v any)   { c.cookie = v }
func (c *fakeConn) Unsent() int       { return 0 }

func newServer(t *testing.T) (*server, *fakeEnv) {
	env := &fakeEnv{}
	st := NewStore(1 << 20)
	return &server{env: env, store: st}, env
}

func feed(s *server, c *fakeConn, data string) {
	s.OnRecv(c, []byte(data))
}

func TestSetGet(t *testing.T) {
	s, _ := newServer(t)
	c := &fakeConn{}
	s.OnAccept(c)
	feed(s, c, "set foo 0 0 5\r\nhello\r\n")
	if string(c.out) != "STORED\r\n" {
		t.Fatalf("set response %q", c.out)
	}
	c.out = nil
	feed(s, c, "get foo\r\n")
	if string(c.out) != "VALUE foo 0 5\r\nhello\r\nEND\r\n" {
		t.Fatalf("get response %q", c.out)
	}
	c.out = nil
	feed(s, c, "get missing\r\n")
	if string(c.out) != "END\r\n" {
		t.Fatalf("miss response %q", c.out)
	}
	if s.store.Hits != 1 || s.store.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", s.store.Hits, s.store.Misses)
	}
}

// TestFragmentedRequests: commands arriving byte by byte parse correctly.
func TestFragmentedRequests(t *testing.T) {
	s, _ := newServer(t)
	c := &fakeConn{}
	s.OnAccept(c)
	msg := "set k 0 0 3\r\nabc\r\nget k\r\n"
	for i := 0; i < len(msg); i++ {
		feed(s, c, msg[i:i+1])
	}
	if !strings.HasSuffix(string(c.out), "VALUE k 0 3\r\nabc\r\nEND\r\n") {
		t.Fatalf("responses %q", c.out)
	}
}

// TestPipelinedRequests: multiple commands in one segment all answer.
func TestPipelinedRequests(t *testing.T) {
	s, _ := newServer(t)
	c := &fakeConn{}
	s.OnAccept(c)
	feed(s, c, "set a 0 0 1\r\nx\r\nset b 0 0 1\r\ny\r\nget a\r\nget b\r\n")
	want := "STORED\r\nSTORED\r\nVALUE a 0 1\r\nx\r\nEND\r\nVALUE b 0 1\r\ny\r\nEND\r\n"
	if string(c.out) != want {
		t.Fatalf("got %q\nwant %q", c.out, want)
	}
}

func TestBadCommands(t *testing.T) {
	s, _ := newServer(t)
	c := &fakeConn{}
	s.OnAccept(c)
	feed(s, c, "bogus nonsense\r\n")
	if string(c.out) != "ERROR\r\n" {
		t.Fatalf("response %q", c.out)
	}
	c.out = nil
	feed(s, c, "set broken zz\r\n")
	if !strings.HasPrefix(string(c.out), "CLIENT_ERROR") {
		t.Fatalf("response %q", c.out)
	}
	feed(s, c, "quit\r\n")
	if !c.closed {
		t.Fatal("quit did not close")
	}
}

func TestLRUEviction(t *testing.T) {
	st := NewStore(1000)
	for i := 0; i < 100; i++ {
		st.set(fmt.Sprintf("key%02d", i), make([]byte, 50))
	}
	if st.Bytes() > 1000 {
		t.Fatalf("bytes %d exceed cap", st.Bytes())
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions")
	}
	// The most recent keys survive.
	if _, ok := st.get("key99"); !ok {
		t.Fatal("most recent key evicted")
	}
	if _, ok := st.get("key00"); ok {
		t.Fatal("oldest key survived")
	}
}

func TestLRUTouchOnGet(t *testing.T) {
	st := NewStore(150)
	st.set("a", make([]byte, 60))
	st.set("b", make([]byte, 60))
	st.get("a") // touch a so b is now oldest
	st.set("c", make([]byte, 60))
	if _, ok := st.get("a"); !ok {
		t.Fatal("touched key evicted")
	}
	if _, ok := st.get("b"); ok {
		t.Fatal("LRU order ignored touch")
	}
}

func TestLockContentionModel(t *testing.T) {
	st := NewStore(1 << 20)
	st.Contenders = 4
	// Saturate the window with demand, then check queueing kicks in.
	var total time.Duration
	now := int64(0)
	for i := 0; i < 2000; i++ {
		total += st.lock(now, lockHoldSet)
		now += int64(600 * time.Nanosecond) // near-saturation arrival rate
	}
	if st.LockSpin == 0 {
		t.Fatal("no contention under saturating write load")
	}
	// Low demand: spin stays near the coherence floor.
	st2 := NewStore(1 << 20)
	st2.Contenders = 4
	now = 0
	st2.lastUtil = 0
	var low time.Duration
	for i := 0; i < 100; i++ {
		low += st2.lock(now, lockHoldGet)
		now += int64(100 * time.Microsecond)
	}
	if low/100 > 2*time.Microsecond {
		t.Fatalf("uncontended lock cost too high: %v", low/100)
	}
	_ = total
	_ = app.Env(nil)
}
