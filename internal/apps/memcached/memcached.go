// Package memcached is a port of the paper's §5.5 workload: an in-memory
// key-value store speaking the memcached text protocol (get/set), built —
// as the original is — on an event library (here the app interface that
// libix and the baseline adapters implement). Like memcached 1.4.18 it
// uses a hash table with LRU eviction and a *global cache lock* whose
// contention on write-heavy workloads is what limits scaling ("the
// improvement for ETC is lower due to the increased lock contention
// within the application itself"; IX sees no gain beyond 6 cores).
package memcached

import (
	"fmt"
	"strconv"
	"time"

	"ix/internal/app"
)

// CPU cost constants for the application logic, calibrated against the
// §5.5 CPU breakdown: at peak, Linux spends ~25% of 8 cores in user mode
// at 550 kRPS (≈3.6 µs/req) and IX reaches 1.55 MRPS on 6 cores with
// <10% kernel time (≈3.2 µs/req of app work).
const (
	parseCost   = 700 * time.Nanosecond  // request parse + dispatch
	lookupCost  = 1100 * time.Nanosecond // hash + bucket walk + LRU touch
	respondCost = 700 * time.Nanosecond  // response header assembly
	storeCost   = 900 * time.Nanosecond  // item allocation + link (sets)
	perByteCost = 0.45                   // ns/byte of key+value handled
	lockHoldGet = 120 * time.Nanosecond  // global lock hold for a GET
	lockHoldSet = 550 * time.Nanosecond  // global lock hold for a SET
	lockAcquire = 60 * time.Nanosecond   // uncontended acquire/release
)

// item is a stored object.
type item struct {
	key        string
	value      []byte
	prev, next *item // LRU list
}

// Store is the shared cache: one per server process, shared by all
// threads exactly as in multithreaded memcached.
type Store struct {
	items map[string]*item
	// LRU list head/tail (head = most recent).
	head, tail *item
	bytes      int
	maxBytes   int

	// Global cache lock contention model. Tasks on different cores
	// call lock() with arbitrary virtual-time ordering, so instead of a
	// reservation queue we track lock *utilization* over a sliding
	// window and charge M/M/1-style queueing delay plus a cache-line
	// coherence term that grows with the number of contending threads.
	// This reproduces the write-frequency-dependent contention of §5.5
	// ("the improvement for ETC is lower due to the increased lock
	// contention ... higher write frequency").
	winStart  int64
	winDemand int64 // ns of lock hold requested in this window
	lastUtil  float64
	// Contenders is the number of server threads sharing the store.
	Contenders int

	// Stats.
	Gets, Sets, Hits, Misses, Evictions uint64
	LockSpin                            time.Duration
}

// NewStore builds a store bounded at maxBytes (default 64 MB).
func NewStore(maxBytes int) *Store {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &Store{items: make(map[string]*item), maxBytes: maxBytes}
}

// lockWindow is the utilization-averaging window.
const lockWindow = int64(200 * time.Microsecond)

// lock models acquiring the global cache lock at virtual time now and
// holding it for hold; it returns the total time the caller must charge
// (acquire + queueing spin + hold + coherence transfer).
func (st *Store) lock(now int64, hold time.Duration) time.Duration {
	if now-st.winStart >= lockWindow {
		if now > st.winStart {
			st.lastUtil = float64(st.winDemand) / float64(now-st.winStart)
		}
		st.winStart = now
		st.winDemand = 0
	}
	st.winDemand += int64(hold)
	rho := st.lastUtil
	if rho > 0.95 {
		rho = 0.95
	}
	spin := time.Duration(float64(hold) * rho / (1 - rho))
	// Cache-line ping-pong: the lock word and hot LRU head bounce
	// between the contending cores.
	if st.Contenders > 1 {
		spin += time.Duration(st.Contenders-1) * 35 * time.Nanosecond
	}
	st.LockSpin += spin
	return spin + hold + lockAcquire
}

// get returns the value for key, touching LRU.
func (st *Store) get(key string) ([]byte, bool) {
	st.Gets++
	it, ok := st.items[key]
	if !ok {
		st.Misses++
		return nil, false
	}
	st.Hits++
	st.touch(it)
	return it.value, true
}

// set inserts or replaces key.
func (st *Store) set(key string, val []byte) {
	st.Sets++
	if it, ok := st.items[key]; ok {
		st.bytes += len(val) - len(it.value)
		it.value = val
		st.touch(it)
	} else {
		it := &item{key: key, value: val}
		st.items[key] = it
		st.bytes += len(key) + len(val)
		st.pushFront(it)
	}
	for st.bytes > st.maxBytes && st.tail != nil {
		ev := st.tail
		st.unlink(ev)
		delete(st.items, ev.key)
		st.bytes -= len(ev.key) + len(ev.value)
		st.Evictions++
	}
}

func (st *Store) touch(it *item) {
	if st.head == it {
		return
	}
	st.unlink(it)
	st.pushFront(it)
}

func (st *Store) pushFront(it *item) {
	it.prev = nil
	it.next = st.head
	if st.head != nil {
		st.head.prev = it
	}
	st.head = it
	if st.tail == nil {
		st.tail = it
	}
}

func (st *Store) unlink(it *item) {
	if it.prev != nil {
		it.prev.next = it.next
	} else if st.head == it {
		st.head = it.next
	}
	if it.next != nil {
		it.next.prev = it.prev
	} else if st.tail == it {
		st.tail = it.prev
	}
	it.prev, it.next = nil, nil
}

// Len returns the number of stored items.
func (st *Store) Len() int { return len(st.items) }

// Bytes returns stored bytes.
func (st *Store) Bytes() int { return st.bytes }

// ServerFactory returns the memcached server application sharing store,
// listening on port on every thread.
func ServerFactory(store *Store, port uint16) app.Factory {
	return func(env app.Env, thread, threads int) app.Handler {
		if threads > store.Contenders {
			store.Contenders = threads
		}
		s := &server{env: env, store: store}
		if err := env.Listen(port); err != nil {
			panic(err)
		}
		return s
	}
}

type server struct {
	env   app.Env
	store *Store
}

// connState buffers a partially received request stream.
type connState struct {
	buf []byte
}

func (s *server) OnAccept(c app.Conn) { c.SetCookie(&connState{}) }

func (s *server) OnConnected(c app.Conn, ok bool) {}

func (s *server) OnRecv(c app.Conn, data []byte) {
	st, _ := c.Cookie().(*connState)
	if st == nil {
		st = &connState{}
		c.SetCookie(st)
	}
	st.buf = append(st.buf, data...)
	for {
		n := s.process(c, st.buf)
		if n == 0 {
			break
		}
		st.buf = st.buf[n:]
	}
	if len(st.buf) == 0 {
		st.buf = nil
	}
}

// process parses one complete command from buf, executes it, and returns
// the bytes consumed (0 if incomplete).
func (s *server) process(c app.Conn, buf []byte) int {
	nl := indexCRLF(buf)
	if nl < 0 {
		return 0
	}
	line := string(buf[:nl])
	consumed := nl + 2
	s.env.Charge(parseCost + time.Duration(float64(nl)*perByteCost))
	switch {
	case len(line) > 4 && line[:4] == "get ":
		key := line[4:]
		spin := s.store.lock(s.env.Now()+int64(s.env.Elapsed()), lockHoldGet)
		s.env.Charge(spin + lookupCost)
		val, ok := s.store.get(key)
		s.env.Charge(respondCost)
		if ok {
			s.env.Charge(time.Duration(float64(len(val)) * perByteCost))
			resp := fmt.Sprintf("VALUE %s 0 %d\r\n", key, len(val))
			c.Send([]byte(resp))
			c.Send(val)
			c.Send(crlfEnd)
		} else {
			c.Send(endOnly)
		}
		return consumed
	case len(line) > 4 && line[:4] == "set ":
		// set <key> <flags> <exptime> <bytes>
		var key string
		var flags, exp, nbytes int
		if _, err := fmt.Sscanf(line[4:], "%s %d %d %d", &key, &flags, &exp, &nbytes); err != nil {
			c.Send([]byte("CLIENT_ERROR bad command line\r\n"))
			return consumed
		}
		total := consumed + nbytes + 2
		if len(buf) < total {
			return 0 // wait for the body
		}
		body := append([]byte(nil), buf[consumed:consumed+nbytes]...)
		spin := s.store.lock(s.env.Now()+int64(s.env.Elapsed()), lockHoldSet)
		s.env.Charge(spin + storeCost + time.Duration(float64(nbytes)*perByteCost))
		s.store.set(key, body)
		s.env.Charge(respondCost)
		c.Send(stored)
		return total
	case line == "quit":
		c.Close()
		return consumed
	default:
		c.Send([]byte("ERROR\r\n"))
		return consumed
	}
}

func (s *server) OnSent(c app.Conn, n int) {}
func (s *server) OnEOF(c app.Conn)         { c.Close() }
func (s *server) OnClosed(c app.Conn)      {}

var (
	crlfEnd = []byte("\r\nEND\r\n")
	endOnly = []byte("END\r\n")
	stored  = []byte("STORED\r\n")
)

func indexCRLF(b []byte) int {
	for i := 0; i+1 < len(b); i++ {
		if b[i] == '\r' && b[i+1] == '\n' {
			return i
		}
	}
	return -1
}

// FormatGet renders a get request (client side).
func FormatGet(key string) []byte {
	return []byte("get " + key + "\r\n")
}

// FormatSet renders a set request (client side).
func FormatSet(key string, val []byte) []byte {
	b := make([]byte, 0, len(key)+len(val)+32)
	b = append(b, "set "...)
	b = append(b, key...)
	b = append(b, " 0 0 "...)
	b = strconv.AppendInt(b, int64(len(val)), 10)
	b = append(b, "\r\n"...)
	b = append(b, val...)
	b = append(b, "\r\n"...)
	return b
}

// SetDirect installs a key without lock or CPU modelling — used by the
// harness to preload the keyspace before measurement, like mutilate's
// --loadonly pass.
func (st *Store) SetDirect(key string, val []byte) { st.set(key, val) }
