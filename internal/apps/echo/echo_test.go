package echo

import "testing"

func TestZerosReuse(t *testing.T) {
	a := zeros(64)
	b := zeros(128)
	if len(a) != 64 || len(b) != 128 {
		t.Fatal("zeros sizing broken")
	}
	for _, x := range b {
		if x != 0 {
			t.Fatal("zeros not zero")
		}
	}
}

func TestMetricsWindow(t *testing.T) {
	m := NewMetrics()
	m.Msgs.Add(10)
	m.ResetWindow()
	m.Msgs.Add(5)
	if m.Msgs.Since() != 5 || m.Msgs.Total() != 15 {
		t.Fatal("window accounting broken")
	}
}
