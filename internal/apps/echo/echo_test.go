package echo

import "testing"

func TestFillPatternDeterministic(t *testing.T) {
	a, b := make([]byte, 256), make([]byte, 256)
	fillPattern(a, 42, 3)
	fillPattern(b, 42, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same (pat, round) produced different bytes")
		}
	}
	fillPattern(b, 42, 4)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different rounds produced identical patterns")
	}
}

func TestFnvStreamSumPositionSensitive(t *testing.T) {
	// The whole-transfer checksum must catch reordering, not just byte
	// histograms: FNV-1a over a stream is position-sensitive.
	x := fnvAdd(fnvAdd(uint64(fnvOffset), []byte("ab")), []byte("cd"))
	y := fnvAdd(fnvAdd(uint64(fnvOffset), []byte("cd")), []byte("ab"))
	if x == y {
		t.Fatal("stream checksum insensitive to segment order")
	}
	z := fnvAdd(uint64(fnvOffset), []byte("abcd"))
	if x != z {
		t.Fatal("chunking changed the stream checksum")
	}
}

func TestZerosReuse(t *testing.T) {
	var zb []byte
	a := zeros(&zb, 64)
	b := zeros(&zb, 128)
	if len(a) != 64 || len(b) != 128 {
		t.Fatal("zeros sizing broken")
	}
	for _, x := range b {
		if x != 0 {
			t.Fatal("zeros not zero")
		}
	}
}

func TestMetricsWindow(t *testing.T) {
	m := NewMetrics()
	m.Msgs.Add(10)
	m.ResetWindow()
	m.Msgs.Add(5)
	if m.Msgs.Since() != 5 || m.Msgs.Total() != 15 {
		t.Fatal("window accounting broken")
	}
}
