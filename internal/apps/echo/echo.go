// Package echo implements the microbenchmark application of §5.2–5.4: the
// same benchmark used to evaluate MegaPipe and mTCP. Clients connect to a
// single server port, send a remote request of size s, and wait for an
// echo of the same size; each client performs this synchronous RPC n
// times before closing the connection with a reset (TCP RST) to avoid
// exhausting ephemeral ports. The server holds off its echo until the
// message has been entirely received (as NetPIPE does).
//
// The same handler pair runs on IX, Linux and mTCP via the app interface.
package echo

import (
	"time"

	"ix/internal/app"
	"ix/internal/stats"
	"ix/internal/wire"
)

// Server tuning: the per-message application cost of the trivial echo
// logic (buffer bookkeeping and the send call).
const serverMsgCost = 100 * time.Nanosecond

// perByteCost is the application's per-byte touch cost (it reads the
// request and writes the response from cache).
const perByteCost = 0.05 // ns per byte

// ServerFactory returns an app.Factory serving echo on port with
// expected message size s.
func ServerFactory(port uint16, msgSize int) app.Factory {
	return func(env app.Env, thread, threads int) app.Handler {
		s := &server{env: env, size: msgSize}
		if err := env.Listen(port); err != nil {
			panic(err)
		}
		return s
	}
}

type server struct {
	env  app.Env
	size int
}

type srvConn struct {
	got int
}

func (s *server) OnAccept(c app.Conn) { c.SetCookie(&srvConn{}) }

func (s *server) OnConnected(c app.Conn, ok bool) {}

func (s *server) OnRecv(c app.Conn, data []byte) {
	st := c.Cookie().(*srvConn)
	st.got += len(data)
	s.env.Charge(time.Duration(float64(len(data)) * perByteCost))
	for st.got >= s.size {
		st.got -= s.size
		s.env.Charge(serverMsgCost)
		c.Send(zeros(s.size))
	}
}

func (s *server) OnSent(c app.Conn, n int) {}
func (s *server) OnEOF(c app.Conn)         { c.Close() }
func (s *server) OnClosed(c app.Conn)      {}

// Metrics aggregates client-side results. One instance is shared by all
// client threads of an experiment (host Go memory, not simulated state).
type Metrics struct {
	Msgs     stats.Counter
	Conns    stats.Counter
	Failures stats.Counter
	// TxAcked counts bytes the stack reported acknowledged through the
	// sent event condition (tx_sent) — the zero-copy reclamation signal;
	// experiments can assert it tracks the bytes offered.
	TxAcked stats.Counter
	// Latency is per-RPC round-trip time.
	Latency *stats.Histogram
	// Running gates reconnects: when false, clients wind down.
	Running bool
}

// NewMetrics returns a metrics sink with Running set.
func NewMetrics() *Metrics {
	return &Metrics{Latency: stats.NewHistogram(), Running: true}
}

// ResetWindow starts a measurement window.
func (m *Metrics) ResetWindow() {
	m.Msgs.Reset()
	m.Conns.Reset()
	m.TxAcked.Reset()
	m.Latency.Reset()
}

// ClientConfig parameterizes the echo client load.
type ClientConfig struct {
	ServerIP    wire.IPv4
	Port        uint16
	MsgSize     int
	Rounds      int // n round trips per connection; then RST + reconnect
	Conns       int // concurrent connections per client thread
	Metrics     *Metrics
	NoReconnect bool // single-shot connections (NetPIPE uses 1 conn, ∞ rounds)

	// Outstanding, when non-zero, enables the §5.4 rotation mode: the
	// thread keeps only this many RPCs in flight, rotating round-robin
	// over its (many) open connections — "each thread repeatedly
	// performing a 64B RPC with a variable number of active
	// connections". Rounds is ignored in this mode (connections stay
	// open).
	Outstanding int

	// RampBatch/RampGap override the connection ramp pacing (defaults
	// connectBatch/connectBatchGap). Large Fig. 4 fleets set these so
	// the aggregate SYN rate stays below the server's ingest capacity;
	// otherwise NIC-edge drops leave establishment to synchronized
	// retransmission waves.
	RampBatch int
	RampGap   time.Duration
}

// clientConn tracks one RPC stream.
type clientConn struct {
	rounds int
	got    int
	t0     int64
	busy   bool
}

// connectBatch/connectBatchGap pace connection ramp-up for large
// connection counts (§5.4 scale): opening tens of thousands of
// connections in one instant would overrun listener SYN backlogs and
// leave establishment to retransmission backoff. Counts up to one batch
// open immediately, exactly as before.
const (
	connectBatch    = 64
	connectBatchGap = 50 * time.Microsecond
)

// ClientFactory returns an app.Factory generating echo load per cfg.
func ClientFactory(cfg ClientConfig) app.Factory {
	return func(env app.Env, thread, threads int) app.Handler {
		c := &client{env: env, cfg: cfg}
		c.rampConnect(cfg.Conns)
		return c
	}
}

// rampConnect opens up to one batch of connections now and schedules the
// remainder.
func (cl *client) rampConnect(remaining int) {
	batch, gap := cl.cfg.RampBatch, cl.cfg.RampGap
	if batch <= 0 {
		batch = connectBatch
	}
	if gap <= 0 {
		gap = connectBatchGap
	}
	n := remaining
	if n > batch {
		n = batch
	}
	for i := 0; i < n; i++ {
		cl.connect()
	}
	if rest := remaining - n; rest > 0 {
		cl.env.After(gap, func() { cl.rampConnect(rest) })
	}
}

type client struct {
	env app.Env
	cfg ClientConfig

	// Rotation mode state.
	ring     []app.Conn
	cursor   int
	inFlight int
}

func (cl *client) connect() {
	_ = cl.env.Connect(cl.cfg.ServerIP, cl.cfg.Port, nil)
}

func (cl *client) OnAccept(c app.Conn) {}

func (cl *client) OnConnected(c app.Conn, ok bool) {
	if !ok {
		cl.cfg.Metrics.Failures.Inc()
		if cl.cfg.Metrics.Running && !cl.cfg.NoReconnect {
			cl.connect()
		}
		return
	}
	st := &clientConn{}
	c.SetCookie(st)
	if cl.cfg.Outstanding > 0 {
		cl.ring = append(cl.ring, c)
		if cl.inFlight < cl.cfg.Outstanding {
			cl.inFlight++
			cl.sendReq(c, st)
		}
		return
	}
	cl.sendReq(c, st)
}

// issueNext launches an RPC on the next idle connection in the ring.
func (cl *client) issueNext() {
	for tries := 0; tries < len(cl.ring); tries++ {
		c := cl.ring[cl.cursor%len(cl.ring)]
		cl.cursor++
		st, _ := c.Cookie().(*clientConn)
		if st == nil || st.busy {
			continue
		}
		cl.sendReq(c, st)
		return
	}
	cl.inFlight--
}

func (cl *client) sendReq(c app.Conn, st *clientConn) {
	st.t0 = cl.env.Now()
	st.got = 0
	st.busy = true
	cl.env.Charge(serverMsgCost)
	c.Send(zeros(cl.cfg.MsgSize))
}

func (cl *client) OnRecv(c app.Conn, data []byte) {
	st, _ := c.Cookie().(*clientConn)
	if st == nil {
		return
	}
	st.got += len(data)
	cl.env.Charge(time.Duration(float64(len(data)) * perByteCost))
	if st.got < cl.cfg.MsgSize {
		return
	}
	m := cl.cfg.Metrics
	m.Msgs.Inc()
	m.Latency.Record(time.Duration(cl.env.Now() - st.t0))
	st.busy = false
	if cl.cfg.Outstanding > 0 {
		// Rotation mode: move the in-flight slot to the next conn.
		if m.Running {
			cl.issueNext()
		} else {
			cl.inFlight--
		}
		return
	}
	st.rounds++
	if st.rounds < cl.cfg.Rounds || cl.cfg.Rounds <= 0 {
		cl.sendReq(c, st)
		return
	}
	// Close with RST to avoid ephemeral-port exhaustion (§5.3).
	m.Conns.Inc()
	c.Abort()
	if m.Running && !cl.cfg.NoReconnect {
		cl.connect()
	}
}

// OnSent consumes the tx_sent event condition: n request bytes were
// acknowledged by the server and their transmit buffers reclaimed.
func (cl *client) OnSent(c app.Conn, n int) { cl.cfg.Metrics.TxAcked.Add(uint64(n)) }
func (cl *client) OnEOF(c app.Conn)         { c.Close() }

func (cl *client) OnClosed(c app.Conn) {
	st, _ := c.Cookie().(*clientConn)
	if cl.cfg.Outstanding > 0 {
		// Rotation mode: drop the dead connection from the ring, free its
		// in-flight slot, and replace it to hold the population at target.
		for i, rc := range cl.ring {
			if rc == c {
				cl.ring = append(cl.ring[:i], cl.ring[i+1:]...)
				break
			}
		}
		if st != nil && st.busy {
			st.busy = false
			if cl.cfg.Metrics.Running && len(cl.ring) > 0 {
				cl.issueNext()
			} else {
				cl.inFlight--
			}
		}
		if cl.cfg.Metrics.Running && !cl.cfg.NoReconnect {
			cl.cfg.Metrics.Failures.Inc()
			cl.connect()
		}
		return
	}
	// RST-closed connections already accounted in OnRecv; unexpected
	// deaths trigger a reconnect to sustain load.
	if st != nil && st.rounds < cl.cfg.Rounds && cl.cfg.Metrics.Running && !cl.cfg.NoReconnect {
		cl.cfg.Metrics.Failures.Inc()
		cl.connect()
	}
}

// zeros returns a read-only buffer of n zero bytes (shared; applications
// treat transmitted buffers as immutable).
func zeros(n int) []byte {
	for cap(zeroBuf) < n {
		zeroBuf = make([]byte, n)
	}
	return zeroBuf[:n]
}

var zeroBuf = make([]byte, 64<<10)
