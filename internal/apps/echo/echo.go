// Package echo implements the microbenchmark application of §5.2–5.4: the
// same benchmark used to evaluate MegaPipe and mTCP. Clients connect to a
// single server port, send a remote request of size s, and wait for an
// echo of the same size; each client performs this synchronous RPC n
// times before closing the connection with a reset (TCP RST) to avoid
// exhausting ephemeral ports. The server holds off its echo until the
// message has been entirely received (as NetPIPE does).
//
// The same handler pair runs on IX, Linux and mTCP via the app interface.
package echo

import (
	"time"

	"ix/internal/app"
	"ix/internal/stats"
	"ix/internal/wire"
)

// Server tuning: the per-message application cost of the trivial echo
// logic (buffer bookkeeping and the send call).
const serverMsgCost = 100 * time.Nanosecond

// perByteCost is the application's per-byte touch cost (it reads the
// request and writes the response from cache).
const perByteCost = 0.05 // ns per byte

// ServerFactory returns an app.Factory serving echo on port with
// expected message size s.
func ServerFactory(port uint16, msgSize int) app.Factory {
	return func(env app.Env, thread, threads int) app.Handler {
		s := &server{env: env, size: msgSize}
		if err := env.Listen(port); err != nil {
			panic(err)
		}
		return s
	}
}

type server struct {
	env  app.Env
	size int
	zb   []byte // per-instance zeros backing
}

type srvConn struct {
	got int
}

func (s *server) OnAccept(c app.Conn) { c.SetCookie(&srvConn{}) }

func (s *server) OnConnected(c app.Conn, ok bool) {}

func (s *server) OnRecv(c app.Conn, data []byte) {
	st := c.Cookie().(*srvConn)
	st.got += len(data)
	s.env.Charge(time.Duration(float64(len(data)) * perByteCost))
	for st.got >= s.size {
		st.got -= s.size
		s.env.Charge(serverMsgCost)
		c.Send(zeros(&s.zb, s.size))
	}
}

func (s *server) OnSent(c app.Conn, n int) {}
func (s *server) OnEOF(c app.Conn)         { c.Close() }
func (s *server) OnClosed(c app.Conn)      {}

// VerifyingServerFactory returns an echo server that echoes the exact
// bytes it receives (the plain server replies with zeros of the right
// length). Clients running with Verify on check the response stream
// byte-for-byte against what they sent, so any duplicate, reordered or
// corrupted delivery that leaks through TCP under fault injection is
// caught at the application. msgSize only drives CPU charging.
func VerifyingServerFactory(port uint16, msgSize int) app.Factory {
	return func(env app.Env, thread, threads int) app.Handler {
		s := &vserver{env: env, size: msgSize}
		if err := env.Listen(port); err != nil {
			panic(err)
		}
		return s
	}
}

type vserver struct {
	env  app.Env
	size int
}

// vconn buffers bytes received but not yet accepted by Send: the echo
// must preserve stream order even when the send budget momentarily
// rejects part of a reply.
type vconn struct {
	pend []byte
	got  int // bytes toward the current message (CPU charging only)
}

func (s *vserver) OnAccept(c app.Conn) { c.SetCookie(&vconn{}) }

func (s *vserver) OnConnected(c app.Conn, ok bool) {}

func (s *vserver) OnRecv(c app.Conn, data []byte) {
	st := c.Cookie().(*vconn)
	s.env.Charge(time.Duration(float64(len(data)) * perByteCost))
	st.got += len(data)
	for st.got >= s.size {
		st.got -= s.size
		s.env.Charge(serverMsgCost)
	}
	// data is only valid during the callback: push what Send accepts,
	// copy the remainder.
	if len(st.pend) == 0 {
		n := c.Send(data)
		data = data[n:]
	}
	if len(data) > 0 {
		st.pend = append(st.pend, data...)
	}
}

func (s *vserver) OnSent(c app.Conn, n int) {
	st, _ := c.Cookie().(*vconn)
	if st == nil || len(st.pend) == 0 {
		return
	}
	sent := c.Send(st.pend)
	st.pend = st.pend[:copy(st.pend, st.pend[sent:])]
}

func (s *vserver) OnEOF(c app.Conn)    { c.Close() }
func (s *vserver) OnClosed(c app.Conn) {}

// Metrics aggregates client-side results. One instance is shared by all
// client threads of an experiment (host Go memory, not simulated state).
type Metrics struct {
	Msgs     stats.Counter
	Conns    stats.Counter
	Failures stats.Counter
	// TxAcked counts bytes the stack reported acknowledged through the
	// sent event condition (tx_sent) — the zero-copy reclamation signal;
	// experiments can assert it tracks the bytes offered.
	TxAcked stats.Counter
	// VerifyErrors counts response bytes that differed from the request
	// pattern (Verify mode): any duplicate, reordered or corrupted
	// delivery leaking through TCP shows up here.
	VerifyErrors stats.Counter
	// SumMismatches counts rounds whose whole-transfer FNV checksum of
	// received bytes differed from the sent stream's.
	SumMismatches stats.Counter
	// Latency is per-RPC round-trip time.
	Latency *stats.Histogram
	// Tap, when non-nil, receives a copy of every latency sample —
	// a second, independently reset histogram, so a control loop (the
	// multi-tenant arbiter) can read short windowed percentiles without
	// disturbing the experiment's measurement window.
	Tap *stats.Histogram
	// Running gates reconnects: when false, clients wind down.
	Running bool
}

// NewMetrics returns a metrics sink with Running set.
func NewMetrics() *Metrics {
	return &Metrics{Latency: stats.NewHistogram(), Running: true}
}

// ResetWindow starts a measurement window.
func (m *Metrics) ResetWindow() {
	m.Msgs.Reset()
	m.Conns.Reset()
	m.TxAcked.Reset()
	m.Latency.Reset()
}

// ClientConfig parameterizes the echo client load.
type ClientConfig struct {
	ServerIP    wire.IPv4
	Port        uint16
	MsgSize     int
	Rounds      int // n round trips per connection; then RST + reconnect
	Conns       int // concurrent connections per client thread
	Metrics     *Metrics
	NoReconnect bool // single-shot connections (NetPIPE uses 1 conn, ∞ rounds)

	// Outstanding, when non-zero, enables the §5.4 rotation mode: the
	// thread keeps only this many RPCs in flight, rotating round-robin
	// over its (many) open connections — "each thread repeatedly
	// performing a 64B RPC with a variable number of active
	// connections". Rounds is ignored in this mode (connections stay
	// open).
	Outstanding int

	// RampBatch/RampGap override the connection ramp pacing (defaults
	// connectBatch/connectBatchGap). Large Fig. 4 fleets set these so
	// the aggregate SYN rate stays below the server's ingest capacity;
	// otherwise NIC-edge drops leave establishment to synchronized
	// retransmission waves.
	RampBatch int
	RampGap   time.Duration

	// Verify sends a deterministic per-round byte pattern instead of
	// zeros and checks the response stream byte-for-byte (pair with
	// VerifyingServerFactory). Chaos/fault experiments use this as the
	// end-to-end integrity invariant. VerifySeed diversifies patterns
	// across client threads.
	Verify     bool
	VerifySeed uint64

	// QuietRamp defers all RPC traffic until this thread's target
	// connection population is established (rotation mode only):
	// during the ramp, handshake frames have the NIC rings, the event
	// queues and the client CPU to themselves, so establishment runs
	// several times faster than it would while competing with data
	// segments. Traffic starts on the thread the instant its target
	// population is reached (unless the thread is fleet-paused).
	QuietRamp bool

	// Fleet, when non-nil, registers this client thread for
	// cross-sweep-point coordination: a persistent-cluster harness
	// pauses the fleet, drains in-flight RPCs, retargets the
	// population (delta establishment or paced-FIN teardown) and
	// resumes — reusing one warmed testbed across measurement points.
	Fleet *Fleet
}

// clientConn tracks one RPC stream.
type clientConn struct {
	rounds int
	got    int
	t0     int64
	busy   bool
	// retiring marks a connection being torn down by a fleet retarget
	// (paced FIN); its death is expected and must not trigger the
	// dead-connection replacement path.
	retiring bool

	// Verify mode: pat seeds this connection's request pattern, buf
	// holds the current round's request bytes, unsent its not-yet-
	// accepted tail, txSum/rxSum are running FNV-1a checksums of the
	// whole sent/received streams.
	pat          uint64
	buf          []byte
	unsent       []byte
	txSum, rxSum uint64
}

// fnvOffset/fnvPrime are the FNV-1a constants for the whole-transfer
// stream checksums.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvAdd(sum uint64, data []byte) uint64 {
	for _, b := range data {
		sum = (sum ^ uint64(b)) * fnvPrime
	}
	return sum
}

// fillPattern writes the deterministic request payload for one round.
func fillPattern(buf []byte, pat uint64, round int) {
	x := pat + uint64(round)*0x9e3779b97f4a7c15
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = byte(x)
	}
}

// connectBatch/connectBatchGap pace connection ramp-up for large
// connection counts (§5.4 scale): opening tens of thousands of
// connections in one instant would overrun listener SYN backlogs and
// leave establishment to retransmission backoff. Counts up to one batch
// open immediately, exactly as before.
const (
	connectBatch    = 64
	connectBatchGap = 50 * time.Microsecond
)

// DefaultRampPacing exposes the default connect/retire batch pacing, so
// harnesses sizing drain budgets can compute how long a paced teardown
// actually takes when a ClientConfig leaves RampBatch/RampGap zero.
func DefaultRampPacing() (batch int, gap time.Duration) {
	return connectBatch, connectBatchGap
}

// ClientFactory returns an app.Factory generating echo load per cfg.
func ClientFactory(cfg ClientConfig) app.Factory {
	return func(env app.Env, thread, threads int) app.Handler {
		c := &client{env: env, cfg: cfg, target: cfg.Conns}
		c.quiet = cfg.QuietRamp && cfg.Outstanding > 0
		if cfg.Fleet != nil {
			cfg.Fleet.clients = append(cfg.Fleet.clients, c)
		}
		c.rampConnect(cfg.Conns)
		return c
	}
}

// rampConnect opens up to one batch of connections now and schedules the
// remainder.
func (cl *client) rampConnect(remaining int) { cl.rampStep(cl.rampGen, remaining) }

// rampPacing returns the effective connect batch size and inter-batch gap.
func (cl *client) rampPacing() (batch int, gap time.Duration) {
	batch, gap = cl.cfg.RampBatch, cl.cfg.RampGap
	if batch <= 0 {
		batch = connectBatch
	}
	if gap <= 0 {
		gap = connectBatchGap
	}
	return batch, gap
}

// rampStep opens one paced batch and schedules the next. gen guards the
// chain: a fleet retarget bumps rampGen, killing stale chains from the
// previous sweep point. In rotation mode the remaining work is recomputed
// from the live population (ring + unresolved connects vs target) so a
// chain self-terminates exactly when the point's delta is covered.
func (cl *client) rampStep(gen uint64, remaining int) {
	if gen != cl.rampGen {
		return
	}
	batch, gap := cl.rampPacing()
	n := remaining
	if cl.cfg.Outstanding > 0 {
		if want := cl.target - len(cl.ring) - cl.pending; want < n {
			n = want
		}
	}
	if n > batch {
		n = batch
	}
	for i := 0; i < n; i++ {
		cl.connect()
	}
	rest := remaining - n
	more := rest > 0
	if cl.cfg.Outstanding > 0 {
		more = cl.target-len(cl.ring)-cl.pending > 0
		rest = cl.target // upper bound; the live recomputation paces it
	}
	if more {
		cl.env.After(gap, func() { cl.rampStep(gen, rest) })
	}
}

type client struct {
	env app.Env
	cfg ClientConfig

	// zb backs zero-filled request payloads (per-instance; see zeros).
	zb []byte

	// connSeq numbers connections for verify-mode pattern seeding.
	connSeq uint64

	// Rotation mode state.
	ring     []app.Conn
	cursor   int
	inFlight int

	// target is the current connection-population goal; it starts at
	// cfg.Conns and moves with fleet retargets. OnClosed replaces dead
	// connections only while the ring sits below it.
	target int
	// quiet defers RPC issue until the ring reaches target (QuietRamp).
	quiet bool
	// paused stops new RPC issue (in-flight ones finish): the fleet
	// drain state between persistent-cluster measurement points.
	paused bool
	// pending counts connects issued and not yet resolved either way.
	pending int
	// rampGen guards paced ramp/retire chains across retargets.
	rampGen uint64
}

func (cl *client) connect() {
	cl.pending++
	_ = cl.env.Connect(cl.cfg.ServerIP, cl.cfg.Port, nil)
}

func (cl *client) OnAccept(c app.Conn) {}

func (cl *client) OnConnected(c app.Conn, ok bool) {
	if cl.pending > 0 {
		cl.pending--
	}
	if !ok {
		cl.cfg.Metrics.Failures.Inc()
		if cl.cfg.Metrics.Running && !cl.cfg.NoReconnect {
			cl.connect()
		}
		return
	}
	st := &clientConn{}
	if cl.cfg.Verify {
		cl.connSeq++
		st.pat = (cl.cfg.VerifySeed + cl.connSeq) * 0xbf58476d1ce4e5b9
		st.buf = make([]byte, cl.cfg.MsgSize)
		st.txSum, st.rxSum = fnvOffset, fnvOffset
	}
	c.SetCookie(st)
	if cl.cfg.Outstanding > 0 {
		cl.ring = append(cl.ring, c)
		if cl.quiet {
			// Quiet ramp: hold all traffic until the population is
			// complete, then open the rotation at full outstanding.
			if len(cl.ring) >= cl.target {
				cl.quiet = false
				if !cl.paused {
					cl.startRotation()
				}
			}
			return
		}
		if !cl.paused && cl.inFlight < cl.cfg.Outstanding {
			cl.inFlight++
			cl.sendReq(c, st)
		}
		return
	}
	cl.sendReq(c, st)
}

// startRotation opens the rotation window: up to Outstanding RPCs issued
// over the ring (the moment quiet ramp completes, or a fleet resume).
func (cl *client) startRotation() {
	n := cl.cfg.Outstanding
	if n > len(cl.ring) {
		n = len(cl.ring)
	}
	// Bounded by slot count, not inFlight: issueNext gives a slot back
	// when every ring entry is already busy.
	for i := cl.inFlight; i < n; i++ {
		cl.inFlight++
		cl.issueNext()
	}
}

// issueNext launches an RPC on the next idle connection in the ring.
func (cl *client) issueNext() {
	for tries := 0; tries < len(cl.ring); tries++ {
		c := cl.ring[cl.cursor%len(cl.ring)]
		cl.cursor++
		st, _ := c.Cookie().(*clientConn)
		if st == nil || st.busy {
			continue
		}
		cl.sendReq(c, st)
		return
	}
	cl.inFlight--
}

func (cl *client) sendReq(c app.Conn, st *clientConn) {
	st.t0 = cl.env.Now()
	st.got = 0
	st.busy = true
	cl.env.Charge(serverMsgCost)
	if st.buf != nil {
		fillPattern(st.buf, st.pat, st.rounds)
		n := c.Send(st.buf)
		st.txSum = fnvAdd(st.txSum, st.buf[:n])
		// A short accept leaves a tail to push as OnSent reopens the
		// send budget.
		st.unsent = st.buf[n:]
		return
	}
	c.Send(zeros(&cl.zb, cl.cfg.MsgSize))
}

func (cl *client) OnRecv(c app.Conn, data []byte) {
	st, _ := c.Cookie().(*clientConn)
	if st == nil {
		return
	}
	if st.buf != nil {
		// Integrity invariant: the response stream must equal the
		// request stream byte-for-byte, at the right positions.
		m := cl.cfg.Metrics
		if st.got+len(data) > len(st.buf) {
			m.VerifyErrors.Add(uint64(st.got + len(data) - len(st.buf)))
			data = data[:len(st.buf)-st.got]
		}
		for i, b := range data {
			if b != st.buf[st.got+i] {
				m.VerifyErrors.Inc()
			}
		}
		st.rxSum = fnvAdd(st.rxSum, data)
	}
	st.got += len(data)
	cl.env.Charge(time.Duration(float64(len(data)) * perByteCost))
	if st.got < cl.cfg.MsgSize {
		return
	}
	m := cl.cfg.Metrics
	m.Msgs.Inc()
	rtt := time.Duration(cl.env.Now() - st.t0)
	m.Latency.Record(rtt)
	if m.Tap != nil {
		m.Tap.Record(rtt)
	}
	if st.buf != nil && st.rxSum != st.txSum {
		// Whole-transfer checksum over everything this connection ever
		// sent vs received: equal iff the echoed stream is intact.
		m.SumMismatches.Inc()
	}
	st.busy = false
	if cl.cfg.Outstanding > 0 {
		if st.retiring {
			// Late response on a retired connection: retireStep already
			// returned its rotation slot when it cleared busy, so the
			// completion must not give one back again.
			return
		}
		// Rotation mode: move the in-flight slot to the next conn.
		if m.Running && !cl.paused {
			cl.issueNext()
		} else {
			cl.inFlight--
		}
		return
	}
	st.rounds++
	if st.rounds < cl.cfg.Rounds || cl.cfg.Rounds <= 0 {
		cl.sendReq(c, st)
		return
	}
	// Close with RST to avoid ephemeral-port exhaustion (§5.3).
	m.Conns.Inc()
	c.Abort()
	if m.Running && !cl.cfg.NoReconnect {
		cl.connect()
	}
}

// OnSent consumes the tx_sent event condition: n request bytes were
// acknowledged by the server and their transmit buffers reclaimed. In
// verify mode it also pushes any request tail a short accept left over.
func (cl *client) OnSent(c app.Conn, n int) {
	cl.cfg.Metrics.TxAcked.Add(uint64(n))
	if st, _ := c.Cookie().(*clientConn); st != nil && len(st.unsent) > 0 {
		k := c.Send(st.unsent)
		st.txSum = fnvAdd(st.txSum, st.unsent[:k])
		st.unsent = st.unsent[k:]
	}
}
func (cl *client) OnEOF(c app.Conn) { c.Close() }

func (cl *client) OnClosed(c app.Conn) {
	st, _ := c.Cookie().(*clientConn)
	if cl.cfg.Outstanding > 0 {
		if st != nil && st.retiring {
			// Paced-FIN teardown: the retarget already removed the
			// connection from the ring; its death is the expected end
			// of the FIN handshake, not a failure to repair.
			return
		}
		// Rotation mode: drop the dead connection from the ring, free its
		// in-flight slot, and replace it to hold the population at target.
		for i, rc := range cl.ring {
			if rc == c {
				cl.ring = append(cl.ring[:i], cl.ring[i+1:]...)
				break
			}
		}
		if st != nil && st.busy {
			st.busy = false
			if cl.cfg.Metrics.Running && !cl.paused && len(cl.ring) > 0 {
				cl.issueNext()
			} else {
				cl.inFlight--
			}
		}
		if cl.cfg.Metrics.Running && !cl.cfg.NoReconnect && len(cl.ring) < cl.target {
			cl.cfg.Metrics.Failures.Inc()
			cl.connect()
		}
		return
	}
	// RST-closed connections already accounted in OnRecv; unexpected
	// deaths trigger a reconnect to sustain load.
	if st != nil && st.rounds < cl.cfg.Rounds && cl.cfg.Metrics.Running && !cl.cfg.NoReconnect {
		cl.cfg.Metrics.Failures.Inc()
		cl.connect()
	}
}

// retireStep closes one paced batch of excess connections with FIN and
// schedules the next — the teardown mirror of rampStep. Retired
// connections leave the ring immediately (so the rotation never issues
// on a dying stream) and are marked so their eventual death is not
// treated as a failure to repair.
func (cl *client) retireStep(gen uint64) {
	if gen != cl.rampGen {
		return
	}
	batch, gap := cl.rampPacing()
	for i := 0; i < batch && len(cl.ring) > cl.target; i++ {
		c := cl.ring[len(cl.ring)-1]
		cl.ring[len(cl.ring)-1] = nil
		cl.ring = cl.ring[:len(cl.ring)-1]
		if st, _ := c.Cookie().(*clientConn); st != nil {
			st.retiring = true
			if st.busy {
				// Defensive: retargets run on a drained fleet, but a
				// busy victim must still give its in-flight slot back.
				st.busy = false
				cl.inFlight--
			}
		}
		c.Close()
	}
	if len(cl.ring) > cl.target {
		cl.env.After(gap, func() { cl.retireStep(gen) })
	}
}

// retarget moves this thread to a new population target: quiet delta
// establishment when growing, paced-FIN teardown when shrinking. seed is
// the thread's slice of the sweep point's seed schedule — verify-mode
// patterns restart from it on every connection, surviving ones included,
// so a point's byte patterns depend only on (point seed, thread,
// connection index), never on sweep history.
func (cl *client) retarget(conns, outstanding int, seed uint64) {
	cl.rampGen++
	gen := cl.rampGen
	cl.target = conns
	cl.cfg.Outstanding = outstanding
	cl.cfg.VerifySeed = seed
	cl.connSeq = 0
	if cl.cfg.Verify {
		// Reseed the surviving population: pattern state and stream
		// checksums restart from the new point's schedule, exactly as a
		// cold cluster's connections would start. The fleet is drained
		// (no RPC in flight), so no round straddles the reset.
		for _, c := range cl.ring {
			st, _ := c.Cookie().(*clientConn)
			if st == nil {
				continue
			}
			cl.connSeq++
			st.pat = (seed + cl.connSeq) * 0xbf58476d1ce4e5b9
			st.txSum, st.rxSum = fnvOffset, fnvOffset
			st.rounds = 0
		}
	}
	switch {
	case len(cl.ring) < conns:
		cl.quiet = cl.cfg.QuietRamp
		cl.env.After(0, func() { cl.rampStep(gen, conns) })
	case len(cl.ring) > conns:
		cl.env.After(0, func() { cl.retireStep(gen) })
	}
}

// Fleet coordinates a rotation-mode client population across the sweep
// points of a persistent-cluster experiment. All methods are host-side
// (Go memory, not simulated state) and must be called between simulation
// runs; actions they trigger are scheduled into each thread's own task
// context so CPU time is charged where the work happens.
type Fleet struct {
	clients []*client
}

// Pause stops new RPC issue fleet-wide; in-flight RPCs finish and park.
func (f *Fleet) Pause() {
	for _, cl := range f.clients {
		cl.paused = true
	}
}

// Resume restarts the rotation on every thread over whatever population
// is established (clearing any unfinished quiet ramp).
func (f *Fleet) Resume() {
	for _, cl := range f.clients {
		cl.paused = false
		cl.quiet = false
		c := cl
		cl.env.After(0, func() {
			if !c.paused && c.cfg.Metrics.Running {
				c.startRotation()
			}
		})
	}
}

// Retarget moves every thread to connsPerThread connections with the
// given rotation depth. seed heads the sweep point's seed schedule; each
// thread derives its slice from it deterministically.
func (f *Fleet) Retarget(connsPerThread, outstanding int, seed uint64) {
	for i, cl := range f.clients {
		cl.retarget(connsPerThread, outstanding, seed+uint64(i+1)*0x9e3779b97f4a7c15)
	}
}

// InFlight sums outstanding RPCs across the fleet (zero once a pause has
// drained).
func (f *Fleet) InFlight() int {
	n := 0
	for _, cl := range f.clients {
		n += cl.inFlight
	}
	return n
}

// Open sums established connections across the fleet.
func (f *Fleet) Open() int {
	n := 0
	for _, cl := range f.clients {
		n += len(cl.ring)
	}
	return n
}

// Pending sums connects issued and not yet resolved.
func (f *Fleet) Pending() int {
	n := 0
	for _, cl := range f.clients {
		n += cl.pending
	}
	return n
}

// Target sums the per-thread population targets.
func (f *Fleet) Target() int {
	n := 0
	for _, cl := range f.clients {
		n += cl.target
	}
	return n
}

// Threads returns the number of registered client threads.
func (f *Fleet) Threads() int { return len(f.clients) }

// zeros returns a read-only buffer of n zero bytes backed by *buf,
// growing it on demand (applications treat transmitted buffers as
// immutable). Each server/client instance carries its own backing buffer:
// a package-global grow-on-demand block would race when instances on
// different shards resize it concurrently.
func zeros(buf *[]byte, n int) []byte {
	for cap(*buf) < n {
		*buf = make([]byte, n)
	}
	return (*buf)[:n]
}
