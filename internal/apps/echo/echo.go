// Package echo implements the microbenchmark application of §5.2–5.4: the
// same benchmark used to evaluate MegaPipe and mTCP. Clients connect to a
// single server port, send a remote request of size s, and wait for an
// echo of the same size; each client performs this synchronous RPC n
// times before closing the connection with a reset (TCP RST) to avoid
// exhausting ephemeral ports. The server holds off its echo until the
// message has been entirely received (as NetPIPE does).
//
// The same handler pair runs on IX, Linux and mTCP via the app interface.
package echo

import (
	"time"

	"ix/internal/app"
	"ix/internal/stats"
	"ix/internal/wire"
)

// Server tuning: the per-message application cost of the trivial echo
// logic (buffer bookkeeping and the send call).
const serverMsgCost = 100 * time.Nanosecond

// perByteCost is the application's per-byte touch cost (it reads the
// request and writes the response from cache).
const perByteCost = 0.05 // ns per byte

// ServerFactory returns an app.Factory serving echo on port with
// expected message size s.
func ServerFactory(port uint16, msgSize int) app.Factory {
	return func(env app.Env, thread, threads int) app.Handler {
		s := &server{env: env, size: msgSize}
		if err := env.Listen(port); err != nil {
			panic(err)
		}
		return s
	}
}

type server struct {
	env  app.Env
	size int
}

type srvConn struct {
	got int
}

func (s *server) OnAccept(c app.Conn) { c.SetCookie(&srvConn{}) }

func (s *server) OnConnected(c app.Conn, ok bool) {}

func (s *server) OnRecv(c app.Conn, data []byte) {
	st := c.Cookie().(*srvConn)
	st.got += len(data)
	s.env.Charge(time.Duration(float64(len(data)) * perByteCost))
	for st.got >= s.size {
		st.got -= s.size
		s.env.Charge(serverMsgCost)
		c.Send(zeros(s.size))
	}
}

func (s *server) OnSent(c app.Conn, n int) {}
func (s *server) OnEOF(c app.Conn)         { c.Close() }
func (s *server) OnClosed(c app.Conn)      {}

// VerifyingServerFactory returns an echo server that echoes the exact
// bytes it receives (the plain server replies with zeros of the right
// length). Clients running with Verify on check the response stream
// byte-for-byte against what they sent, so any duplicate, reordered or
// corrupted delivery that leaks through TCP under fault injection is
// caught at the application. msgSize only drives CPU charging.
func VerifyingServerFactory(port uint16, msgSize int) app.Factory {
	return func(env app.Env, thread, threads int) app.Handler {
		s := &vserver{env: env, size: msgSize}
		if err := env.Listen(port); err != nil {
			panic(err)
		}
		return s
	}
}

type vserver struct {
	env  app.Env
	size int
}

// vconn buffers bytes received but not yet accepted by Send: the echo
// must preserve stream order even when the send budget momentarily
// rejects part of a reply.
type vconn struct {
	pend []byte
	got  int // bytes toward the current message (CPU charging only)
}

func (s *vserver) OnAccept(c app.Conn) { c.SetCookie(&vconn{}) }

func (s *vserver) OnConnected(c app.Conn, ok bool) {}

func (s *vserver) OnRecv(c app.Conn, data []byte) {
	st := c.Cookie().(*vconn)
	s.env.Charge(time.Duration(float64(len(data)) * perByteCost))
	st.got += len(data)
	for st.got >= s.size {
		st.got -= s.size
		s.env.Charge(serverMsgCost)
	}
	// data is only valid during the callback: push what Send accepts,
	// copy the remainder.
	if len(st.pend) == 0 {
		n := c.Send(data)
		data = data[n:]
	}
	if len(data) > 0 {
		st.pend = append(st.pend, data...)
	}
}

func (s *vserver) OnSent(c app.Conn, n int) {
	st, _ := c.Cookie().(*vconn)
	if st == nil || len(st.pend) == 0 {
		return
	}
	sent := c.Send(st.pend)
	st.pend = st.pend[:copy(st.pend, st.pend[sent:])]
}

func (s *vserver) OnEOF(c app.Conn)    { c.Close() }
func (s *vserver) OnClosed(c app.Conn) {}

// Metrics aggregates client-side results. One instance is shared by all
// client threads of an experiment (host Go memory, not simulated state).
type Metrics struct {
	Msgs     stats.Counter
	Conns    stats.Counter
	Failures stats.Counter
	// TxAcked counts bytes the stack reported acknowledged through the
	// sent event condition (tx_sent) — the zero-copy reclamation signal;
	// experiments can assert it tracks the bytes offered.
	TxAcked stats.Counter
	// VerifyErrors counts response bytes that differed from the request
	// pattern (Verify mode): any duplicate, reordered or corrupted
	// delivery leaking through TCP shows up here.
	VerifyErrors stats.Counter
	// SumMismatches counts rounds whose whole-transfer FNV checksum of
	// received bytes differed from the sent stream's.
	SumMismatches stats.Counter
	// Latency is per-RPC round-trip time.
	Latency *stats.Histogram
	// Running gates reconnects: when false, clients wind down.
	Running bool
}

// NewMetrics returns a metrics sink with Running set.
func NewMetrics() *Metrics {
	return &Metrics{Latency: stats.NewHistogram(), Running: true}
}

// ResetWindow starts a measurement window.
func (m *Metrics) ResetWindow() {
	m.Msgs.Reset()
	m.Conns.Reset()
	m.TxAcked.Reset()
	m.Latency.Reset()
}

// ClientConfig parameterizes the echo client load.
type ClientConfig struct {
	ServerIP    wire.IPv4
	Port        uint16
	MsgSize     int
	Rounds      int // n round trips per connection; then RST + reconnect
	Conns       int // concurrent connections per client thread
	Metrics     *Metrics
	NoReconnect bool // single-shot connections (NetPIPE uses 1 conn, ∞ rounds)

	// Outstanding, when non-zero, enables the §5.4 rotation mode: the
	// thread keeps only this many RPCs in flight, rotating round-robin
	// over its (many) open connections — "each thread repeatedly
	// performing a 64B RPC with a variable number of active
	// connections". Rounds is ignored in this mode (connections stay
	// open).
	Outstanding int

	// RampBatch/RampGap override the connection ramp pacing (defaults
	// connectBatch/connectBatchGap). Large Fig. 4 fleets set these so
	// the aggregate SYN rate stays below the server's ingest capacity;
	// otherwise NIC-edge drops leave establishment to synchronized
	// retransmission waves.
	RampBatch int
	RampGap   time.Duration

	// Verify sends a deterministic per-round byte pattern instead of
	// zeros and checks the response stream byte-for-byte (pair with
	// VerifyingServerFactory). Chaos/fault experiments use this as the
	// end-to-end integrity invariant. VerifySeed diversifies patterns
	// across client threads.
	Verify     bool
	VerifySeed uint64
}

// clientConn tracks one RPC stream.
type clientConn struct {
	rounds int
	got    int
	t0     int64
	busy   bool

	// Verify mode: pat seeds this connection's request pattern, buf
	// holds the current round's request bytes, unsent its not-yet-
	// accepted tail, txSum/rxSum are running FNV-1a checksums of the
	// whole sent/received streams.
	pat          uint64
	buf          []byte
	unsent       []byte
	txSum, rxSum uint64
}

// fnvOffset/fnvPrime are the FNV-1a constants for the whole-transfer
// stream checksums.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvAdd(sum uint64, data []byte) uint64 {
	for _, b := range data {
		sum = (sum ^ uint64(b)) * fnvPrime
	}
	return sum
}

// fillPattern writes the deterministic request payload for one round.
func fillPattern(buf []byte, pat uint64, round int) {
	x := pat + uint64(round)*0x9e3779b97f4a7c15
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = byte(x)
	}
}

// connectBatch/connectBatchGap pace connection ramp-up for large
// connection counts (§5.4 scale): opening tens of thousands of
// connections in one instant would overrun listener SYN backlogs and
// leave establishment to retransmission backoff. Counts up to one batch
// open immediately, exactly as before.
const (
	connectBatch    = 64
	connectBatchGap = 50 * time.Microsecond
)

// ClientFactory returns an app.Factory generating echo load per cfg.
func ClientFactory(cfg ClientConfig) app.Factory {
	return func(env app.Env, thread, threads int) app.Handler {
		c := &client{env: env, cfg: cfg}
		c.rampConnect(cfg.Conns)
		return c
	}
}

// rampConnect opens up to one batch of connections now and schedules the
// remainder.
func (cl *client) rampConnect(remaining int) {
	batch, gap := cl.cfg.RampBatch, cl.cfg.RampGap
	if batch <= 0 {
		batch = connectBatch
	}
	if gap <= 0 {
		gap = connectBatchGap
	}
	n := remaining
	if n > batch {
		n = batch
	}
	for i := 0; i < n; i++ {
		cl.connect()
	}
	if rest := remaining - n; rest > 0 {
		cl.env.After(gap, func() { cl.rampConnect(rest) })
	}
}

type client struct {
	env app.Env
	cfg ClientConfig

	// connSeq numbers connections for verify-mode pattern seeding.
	connSeq uint64

	// Rotation mode state.
	ring     []app.Conn
	cursor   int
	inFlight int
}

func (cl *client) connect() {
	_ = cl.env.Connect(cl.cfg.ServerIP, cl.cfg.Port, nil)
}

func (cl *client) OnAccept(c app.Conn) {}

func (cl *client) OnConnected(c app.Conn, ok bool) {
	if !ok {
		cl.cfg.Metrics.Failures.Inc()
		if cl.cfg.Metrics.Running && !cl.cfg.NoReconnect {
			cl.connect()
		}
		return
	}
	st := &clientConn{}
	if cl.cfg.Verify {
		cl.connSeq++
		st.pat = (cl.cfg.VerifySeed + cl.connSeq) * 0xbf58476d1ce4e5b9
		st.buf = make([]byte, cl.cfg.MsgSize)
		st.txSum, st.rxSum = fnvOffset, fnvOffset
	}
	c.SetCookie(st)
	if cl.cfg.Outstanding > 0 {
		cl.ring = append(cl.ring, c)
		if cl.inFlight < cl.cfg.Outstanding {
			cl.inFlight++
			cl.sendReq(c, st)
		}
		return
	}
	cl.sendReq(c, st)
}

// issueNext launches an RPC on the next idle connection in the ring.
func (cl *client) issueNext() {
	for tries := 0; tries < len(cl.ring); tries++ {
		c := cl.ring[cl.cursor%len(cl.ring)]
		cl.cursor++
		st, _ := c.Cookie().(*clientConn)
		if st == nil || st.busy {
			continue
		}
		cl.sendReq(c, st)
		return
	}
	cl.inFlight--
}

func (cl *client) sendReq(c app.Conn, st *clientConn) {
	st.t0 = cl.env.Now()
	st.got = 0
	st.busy = true
	cl.env.Charge(serverMsgCost)
	if st.buf != nil {
		fillPattern(st.buf, st.pat, st.rounds)
		n := c.Send(st.buf)
		st.txSum = fnvAdd(st.txSum, st.buf[:n])
		// A short accept leaves a tail to push as OnSent reopens the
		// send budget.
		st.unsent = st.buf[n:]
		return
	}
	c.Send(zeros(cl.cfg.MsgSize))
}

func (cl *client) OnRecv(c app.Conn, data []byte) {
	st, _ := c.Cookie().(*clientConn)
	if st == nil {
		return
	}
	if st.buf != nil {
		// Integrity invariant: the response stream must equal the
		// request stream byte-for-byte, at the right positions.
		m := cl.cfg.Metrics
		if st.got+len(data) > len(st.buf) {
			m.VerifyErrors.Add(uint64(st.got + len(data) - len(st.buf)))
			data = data[:len(st.buf)-st.got]
		}
		for i, b := range data {
			if b != st.buf[st.got+i] {
				m.VerifyErrors.Inc()
			}
		}
		st.rxSum = fnvAdd(st.rxSum, data)
	}
	st.got += len(data)
	cl.env.Charge(time.Duration(float64(len(data)) * perByteCost))
	if st.got < cl.cfg.MsgSize {
		return
	}
	m := cl.cfg.Metrics
	m.Msgs.Inc()
	m.Latency.Record(time.Duration(cl.env.Now() - st.t0))
	if st.buf != nil && st.rxSum != st.txSum {
		// Whole-transfer checksum over everything this connection ever
		// sent vs received: equal iff the echoed stream is intact.
		m.SumMismatches.Inc()
	}
	st.busy = false
	if cl.cfg.Outstanding > 0 {
		// Rotation mode: move the in-flight slot to the next conn.
		if m.Running {
			cl.issueNext()
		} else {
			cl.inFlight--
		}
		return
	}
	st.rounds++
	if st.rounds < cl.cfg.Rounds || cl.cfg.Rounds <= 0 {
		cl.sendReq(c, st)
		return
	}
	// Close with RST to avoid ephemeral-port exhaustion (§5.3).
	m.Conns.Inc()
	c.Abort()
	if m.Running && !cl.cfg.NoReconnect {
		cl.connect()
	}
}

// OnSent consumes the tx_sent event condition: n request bytes were
// acknowledged by the server and their transmit buffers reclaimed. In
// verify mode it also pushes any request tail a short accept left over.
func (cl *client) OnSent(c app.Conn, n int) {
	cl.cfg.Metrics.TxAcked.Add(uint64(n))
	if st, _ := c.Cookie().(*clientConn); st != nil && len(st.unsent) > 0 {
		k := c.Send(st.unsent)
		st.txSum = fnvAdd(st.txSum, st.unsent[:k])
		st.unsent = st.unsent[k:]
	}
}
func (cl *client) OnEOF(c app.Conn)         { c.Close() }

func (cl *client) OnClosed(c app.Conn) {
	st, _ := c.Cookie().(*clientConn)
	if cl.cfg.Outstanding > 0 {
		// Rotation mode: drop the dead connection from the ring, free its
		// in-flight slot, and replace it to hold the population at target.
		for i, rc := range cl.ring {
			if rc == c {
				cl.ring = append(cl.ring[:i], cl.ring[i+1:]...)
				break
			}
		}
		if st != nil && st.busy {
			st.busy = false
			if cl.cfg.Metrics.Running && len(cl.ring) > 0 {
				cl.issueNext()
			} else {
				cl.inFlight--
			}
		}
		if cl.cfg.Metrics.Running && !cl.cfg.NoReconnect {
			cl.cfg.Metrics.Failures.Inc()
			cl.connect()
		}
		return
	}
	// RST-closed connections already accounted in OnRecv; unexpected
	// deaths trigger a reconnect to sustain load.
	if st != nil && st.rounds < cl.cfg.Rounds && cl.cfg.Metrics.Running && !cl.cfg.NoReconnect {
		cl.cfg.Metrics.Failures.Inc()
		cl.connect()
	}
}

// zeros returns a read-only buffer of n zero bytes (shared; applications
// treat transmitted buffers as immutable).
func zeros(n int) []byte {
	for cap(zeroBuf) < n {
		zeroBuf = make([]byte, n)
	}
	return zeroBuf[:n]
}

var zeroBuf = make([]byte, 64<<10)
