// Package httpkv is the blocking-facade workload: an HTTP/1.1 echo
// server and a redis-style key-value store, plus a connection-pooled
// closed-loop client, all written purely against net.Conn / net.Listener.
// Nothing in this package knows which stack it runs on — the same code
// runs on IX, Linux and mTCP through ixnet's deterministic fibers,
// demonstrating that the event-driven dataplane API can carry an
// unmodified sockets-style application (the libix compatibility goal
// of §4.3, taken one layer further than the libevent shim).
package httpkv

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"time"

	"ix/internal/app"
	"ix/internal/ixnet"
	"ix/internal/stats"
	"ix/internal/wire"
)

// serveCost is the per-request application cost of the trivial
// echo/store logic (parsing, map touch, response assembly).
const serveCost = 300 * time.Nanosecond

// perByteCost is the application's per-byte touch cost (ns/byte).
const perByteCost = 0.05

// HTTPServerFactory serves HTTP/1.1 echo on port: POST bodies come
// back verbatim, GETs get a fixed banner. Keep-alive by default,
// Connection: close honored. One accept loop per elastic thread; each
// connection is served by its own fiber.
func HTTPServerFactory(port uint16) app.Factory {
	return ixnet.Factory(func(n *ixnet.Net) {
		l, err := n.Listen(port)
		if err != nil {
			panic(err)
		}
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			conn := c
			n.Go(func() { serveHTTP(n, conn) })
		}
	})
}

func serveHTTP(n *ixnet.Net, c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	var resp bytes.Buffer
	for {
		method, _, body, keep, err := readHTTPRequest(br)
		if err != nil {
			return // EOF, reset or malformed: drop the connection
		}
		n.Charge(serveCost + time.Duration(float64(len(body))*perByteCost))
		if method == "GET" {
			body = []byte("ixnet httpkv\n")
		}
		resp.Reset()
		fmt.Fprintf(&resp, "HTTP/1.1 200 OK\r\nContent-Length: %d\r\n", len(body))
		if keep {
			resp.WriteString("Connection: keep-alive\r\n\r\n")
		} else {
			resp.WriteString("Connection: close\r\n\r\n")
		}
		resp.Write(body)
		if _, err := c.Write(resp.Bytes()); err != nil {
			return
		}
		if !keep {
			return
		}
	}
}

// readHTTPRequest parses one request off br: request line, headers
// (only Content-Length and Connection are interpreted), then exactly
// Content-Length body bytes.
func readHTTPRequest(br *bufio.Reader) (method, target string, body []byte, keep bool, err error) {
	line, err := readLine(br)
	if err != nil {
		return "", "", nil, false, err
	}
	sp1 := bytes.IndexByte(line, ' ')
	sp2 := bytes.LastIndexByte(line, ' ')
	if sp1 < 0 || sp2 <= sp1 {
		return "", "", nil, false, errMalformed
	}
	method = string(line[:sp1])
	target = string(line[sp1+1 : sp2])
	keep = true // HTTP/1.1 default
	clen := 0
	for {
		h, err := readLine(br)
		if err != nil {
			return "", "", nil, false, err
		}
		if len(h) == 0 {
			break
		}
		col := bytes.IndexByte(h, ':')
		if col < 0 {
			return "", "", nil, false, errMalformed
		}
		name := string(bytes.ToLower(bytes.TrimSpace(h[:col])))
		val := string(bytes.TrimSpace(h[col+1:]))
		switch name {
		case "content-length":
			clen, err = strconv.Atoi(val)
			if err != nil || clen < 0 {
				return "", "", nil, false, errMalformed
			}
		case "connection":
			keep = val != "close"
		}
	}
	if clen > 0 {
		body = make([]byte, clen)
		if _, err := io.ReadFull(br, body); err != nil {
			return "", "", nil, false, err
		}
	}
	return method, target, body, keep, nil
}

var errMalformed = errors.New("httpkv: malformed request")

// readLine reads one CRLF-terminated line, returning it without the
// terminator.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// Store is the key-value state shared by every server thread on the
// host (host Go memory; threads on one host are engine-serialized, the
// same sharing model as the memcached store).
type Store struct {
	m    map[string]string
	Sets uint64
	Gets uint64
	Hits uint64
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{m: make(map[string]string)} }

// KVServerFactory serves the line protocol on port against store:
//
//	SET <key> <value>\r\n  → +OK\r\n
//	GET <key>\r\n          → $<len>\r\n<value>\r\n  (or $-1\r\n on miss)
//
// — the redis shape, line-framed values.
func KVServerFactory(port uint16, store *Store) app.Factory {
	return ixnet.Factory(func(n *ixnet.Net) {
		l, err := n.Listen(port)
		if err != nil {
			panic(err)
		}
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			conn := c
			n.Go(func() { serveKV(n, conn, store) })
		}
	})
}

func serveKV(n *ixnet.Net, c net.Conn, store *Store) {
	defer c.Close()
	br := bufio.NewReader(c)
	var resp bytes.Buffer
	for {
		line, err := readLine(br)
		if err != nil {
			return
		}
		n.Charge(serveCost + time.Duration(float64(len(line))*perByteCost))
		resp.Reset()
		sp := bytes.IndexByte(line, ' ')
		cmd := line
		if sp >= 0 {
			cmd = line[:sp]
		}
		switch string(cmd) {
		case "SET":
			rest := line[sp+1:]
			vsp := bytes.IndexByte(rest, ' ')
			if sp < 0 || vsp < 0 {
				resp.WriteString("-ERR\r\n")
				break
			}
			store.m[string(rest[:vsp])] = string(rest[vsp+1:])
			store.Sets++
			resp.WriteString("+OK\r\n")
		case "GET":
			if sp < 0 {
				resp.WriteString("-ERR\r\n")
				break
			}
			store.Gets++
			if v, ok := store.m[string(line[sp+1:])]; ok {
				store.Hits++
				fmt.Fprintf(&resp, "$%d\r\n%s\r\n", len(v), v)
			} else {
				resp.WriteString("$-1\r\n")
			}
		default:
			resp.WriteString("-ERR\r\n")
		}
		if _, err := c.Write(resp.Bytes()); err != nil {
			return
		}
	}
}

// Metrics aggregates client-side results across every client thread of
// an experiment (host Go memory, like echo.Metrics).
type Metrics struct {
	HTTPOps stats.Counter
	KVOps   stats.Counter
	Errors  stats.Counter
	// VerifyErrors counts responses whose payload differed from what
	// the protocol guarantees (echo mismatch, KV read-your-write miss).
	VerifyErrors stats.Counter
	// Latency is per-operation round-trip time (HTTP and KV samples).
	Latency *stats.Histogram
	// Running gates the closed loop: when false, workers finish the
	// in-flight operation, return pooled connections and close.
	Running bool
}

// NewMetrics returns a metrics sink with Running set.
func NewMetrics() *Metrics {
	return &Metrics{Latency: stats.NewHistogram(), Running: true}
}

// ResetWindow starts a measurement window.
func (m *Metrics) ResetWindow() {
	m.HTTPOps.Reset()
	m.KVOps.Reset()
	m.Errors.Reset()
	m.Latency.Reset()
}

// Pool is a trivial connection pool: Get reuses an idle connection or
// dials a new one; Put returns it. Fibers of one thread share it (one
// runs at a time, so no locking).
type Pool struct {
	dial func() (net.Conn, error)
	idle []net.Conn
}

// NewPool returns a pool dialing with dial.
func NewPool(dial func() (net.Conn, error)) *Pool {
	return &Pool{dial: dial}
}

// Get pops an idle connection or dials.
func (p *Pool) Get() (net.Conn, error) {
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
		return c, nil
	}
	return p.dial()
}

// Put returns a healthy connection to the pool.
func (p *Pool) Put(c net.Conn) { p.idle = append(p.idle, c) }

// Close closes every idle connection.
func (p *Pool) Close() {
	for _, c := range p.idle {
		c.Close()
	}
	p.idle = nil
}

// ClientConfig parameterizes the closed-loop client.
type ClientConfig struct {
	HTTPIP   wire.IPv4
	HTTPPort uint16
	KVIP     wire.IPv4
	KVPort   uint16
	// Workers is the number of client fibers per thread; each keeps a
	// persistent HTTP connection and draws KV connections from the
	// thread's shared pool.
	Workers int
	// BodySize is the HTTP echo payload size.
	BodySize int
	Metrics  *Metrics
}

// ClientFactory returns the closed-loop client: each worker fiber
// alternates an HTTP echo POST and a KV SET/GET pair, verifying both
// responses, until Metrics.Running clears.
func ClientFactory(cfg ClientConfig) app.Factory {
	return ixnet.Factory(func(n *ixnet.Net) {
		d := ixnet.Dialer{Net: n, Timeout: 2 * time.Second}
		pool := NewPool(func() (net.Conn, error) { return d.Dial(cfg.KVIP, cfg.KVPort) })
		for i := 0; i < cfg.Workers; i++ {
			w := i
			n.Go(func() { worker(n, &d, pool, cfg, w) })
		}
	})
}

func worker(n *ixnet.Net, d *ixnet.Dialer, pool *Pool, cfg ClientConfig, id int) {
	m := cfg.Metrics
	hc, err := d.Dial(cfg.HTTPIP, cfg.HTTPPort)
	if err != nil {
		m.Errors.Inc()
		return
	}
	defer hc.Close()
	hbr := bufio.NewReader(hc)
	body := make([]byte, cfg.BodySize)
	for i := range body {
		body[i] = byte('a' + (id+i)%23)
	}
	var req bytes.Buffer
	seq := 0
	for m.Running {
		// HTTP echo round.
		t0 := n.Now()
		req.Reset()
		fmt.Fprintf(&req, "POST /echo HTTP/1.1\r\nHost: ix\r\nContent-Length: %d\r\n\r\n", len(body))
		req.Write(body)
		if _, err := hc.Write(req.Bytes()); err != nil {
			m.Errors.Inc()
			return
		}
		echoed, err := readHTTPResponse(hbr)
		if err != nil {
			m.Errors.Inc()
			return
		}
		if !bytes.Equal(echoed, body) {
			m.VerifyErrors.Inc()
		}
		m.Latency.Record(n.Now().Sub(t0))
		m.HTTPOps.Inc()

		// KV round on a pooled connection: SET then read-your-write GET.
		kc, err := pool.Get()
		if err != nil {
			m.Errors.Inc()
			return
		}
		key := fmt.Sprintf("t%d-w%d-%d", n.Thread(), id, seq%32)
		val := fmt.Sprintf("v%d", seq)
		seq++
		t0 = n.Now()
		got, err := kvSetGet(n, kc, key, val)
		if err != nil {
			m.Errors.Inc()
			kc.Close()
			return
		}
		if got != val {
			m.VerifyErrors.Inc()
		}
		m.Latency.Record(n.Now().Sub(t0))
		m.KVOps.Inc()
		pool.Put(kc)
	}
	pool.Close()
}

// readHTTPResponse parses one response off br and returns its body.
func readHTTPResponse(br *bufio.Reader) ([]byte, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	if !bytes.HasPrefix(line, []byte("HTTP/1.1 200")) {
		return nil, errMalformed
	}
	clen := 0
	for {
		h, err := readLine(br)
		if err != nil {
			return nil, err
		}
		if len(h) == 0 {
			break
		}
		col := bytes.IndexByte(h, ':')
		if col < 0 {
			return nil, errMalformed
		}
		if string(bytes.ToLower(bytes.TrimSpace(h[:col]))) == "content-length" {
			clen, err = strconv.Atoi(string(bytes.TrimSpace(h[col+1:])))
			if err != nil || clen < 0 {
				return nil, errMalformed
			}
		}
	}
	body := make([]byte, clen)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	return body, nil
}

// kvSetGet issues SET key val, then GET key, returning the read value.
// br is per-call because pooled connections migrate between workers;
// the protocol is strictly request-response, so no bytes straddle ops.
func kvSetGet(n *ixnet.Net, kc net.Conn, key, val string) (string, error) {
	var req bytes.Buffer
	fmt.Fprintf(&req, "SET %s %s\r\nGET %s\r\n", key, val, key)
	if _, err := kc.Write(req.Bytes()); err != nil {
		return "", err
	}
	br := bufio.NewReader(kc)
	ok, err := readLine(br)
	if err != nil {
		return "", err
	}
	if string(ok) != "+OK" {
		return "", errMalformed
	}
	hdr, err := readLine(br)
	if err != nil {
		return "", err
	}
	if len(hdr) < 1 || hdr[0] != '$' {
		return "", errMalformed
	}
	vlen, err := strconv.Atoi(string(hdr[1:]))
	if err != nil {
		return "", errMalformed
	}
	if vlen < 0 {
		return "", nil // miss
	}
	buf := make([]byte, vlen+2)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf[:vlen]), nil
}
