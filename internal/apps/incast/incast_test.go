package incast

import "testing"

// TestMetricsRoundAccounting: every round settles into RoundsDone or
// RoundsFailed no matter how senders account for it, and the tracking
// maps drain (bounded memory under churn).
func TestMetricsRoundAccounting(t *testing.T) {
	m := NewMetrics()
	m.Senders = 3

	// Clean round: all enter, all finish.
	for i := 0; i < 3; i++ {
		m.enter(0, 100)
	}
	for i := 0; i < 3; i++ {
		m.finish(0, int64(200+i))
	}
	if m.RoundsDone.Total() != 1 || m.RoundsFailed.Total() != 0 {
		t.Fatalf("clean round: done=%d failed=%d", m.RoundsDone.Total(), m.RoundsFailed.Total())
	}

	// One sender dead at the barrier: two enter, one skips. The round
	// fails once and settles after the enterers finish or move on.
	m.enter(1, 300)
	m.enter(1, 300)
	m.skip(1)
	m.finish(1, 400)
	m.finish(1, 410)
	if m.RoundsFailed.Total() != 1 {
		t.Fatalf("skipped round not failed: %d", m.RoundsFailed.Total())
	}

	// Overrun: all enter, none finish before the next barrier fails it.
	for i := 0; i < 3; i++ {
		m.enter(2, 500)
	}
	m.fail(2)
	if m.RoundsFailed.Total() != 2 {
		t.Fatalf("overrun round not failed: %d", m.RoundsFailed.Total())
	}
	// A straggler's late finish on the settled round must not resurrect
	// its tracking.
	m.finish(2, 600)

	// Nobody makes a barrier (all reconnecting): pure-skip round.
	for i := 0; i < 3; i++ {
		m.skip(3)
	}
	if m.RoundsFailed.Total() != 3 {
		t.Fatalf("pure-skip round not failed: %d", m.RoundsFailed.Total())
	}

	if len(m.start)+len(m.entered)+len(m.skipped)+len(m.done)+len(m.failed) != 0 {
		t.Fatalf("tracking maps not drained: start=%d entered=%d skipped=%d done=%d failed=%d",
			len(m.start), len(m.entered), len(m.skipped), len(m.done), len(m.failed))
	}
	if m.RoundsDone.Total() != 1 {
		t.Fatalf("done = %d, want 1", m.RoundsDone.Total())
	}
}
