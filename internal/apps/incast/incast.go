// Package incast implements the N-to-1 synchronized-sender workload:
// every sender bursts a fixed block at the same virtual instant toward
// one sink behind a shallow-buffered switch egress port, the classic
// TCP incast pattern. Whole windows are tail-dropped at the egress, the
// lost flows stall in retransmission timeout, and goodput collapses —
// the scenario for which the paper cites retransmission timeouts as low
// as 16 µs (§4.2), reproduced here by sweeping tcp.Config.MinRTO.
//
// Synchronization needs no cross-host calls: all hosts share the
// virtual clock, so each sender arms its round-k burst at the absolute
// instant Start + k·Period on its own thread timer and the bursts
// collide at the switch exactly as a barrier-driven original would.
// Completion is receiver-confirmed: the sink replies a one-byte token
// per full block (the reverse path is uncongested), so the measurement
// works identically on all three OS adapters — kernel sockets learn
// nothing about ACK progress, exactly as on Linux.
package incast

import (
	"time"

	"ix/internal/app"
	"ix/internal/sim/shard"
	"ix/internal/stats"
	"ix/internal/wire"
)

// warmBytes is the small pre-measurement ping each sender issues at
// connect: it seeds both ends' RTT estimators so the retransmission
// timeout has collapsed from the 1 ms initial value to ~MinRTO before
// round 0, and its token confirms the connection is live.
const warmBytes = 64

// per-byte/message CPU costs mirror the echo application.
const (
	senderMsgCost = 100 * time.Nanosecond
	perByteCost   = 0.05 // ns per byte
)

// Metrics aggregates the experiment outcome across senders (host Go
// memory shared by all sender threads, like echo.Metrics).
type Metrics struct {
	// Senders is the number of registered sender threads.
	Senders int
	// RoundsDone counts rounds every sender completed; RoundsFailed
	// counts rounds abandoned (a sender missed the next barrier with
	// its block unconfirmed, or its connection died).
	RoundsDone, RoundsFailed stats.Counter
	// Bytes counts receiver-confirmed burst bytes.
	Bytes stats.Counter
	// SinkBytes counts bytes the sink application received.
	SinkBytes stats.Counter
	// Completion records per-round completion time: last sender's
	// confirmation token minus the synchronized start.
	Completion *stats.Histogram
	// Running gates reconnects and new rounds.
	Running bool

	// mu guards the per-round tracking maps: senders live on different
	// shards, so barrier bookkeeping can race in real time. The guarded
	// updates are order-independent (start keeps the virtual-time
	// minimum, lastFin the maximum, the rest are counts), so the lock
	// serializes without ordering and fixed-seed results stay exact.
	mu      shard.Mutex
	start   map[int]int64
	lastFin map[int]int64
	entered map[int]int
	skipped map[int]int
	done    map[int]int
	failed  map[int]bool
}

// NewMetrics returns a running metrics sink.
func NewMetrics() *Metrics {
	return &Metrics{
		Completion: stats.NewHistogram(),
		Running:    true,
		start:      map[int]int64{},
		lastFin:    map[int]int64{},
		entered:    map[int]int{},
		skipped:    map[int]int{},
		done:       map[int]int{},
		failed:     map[int]bool{},
	}
}

// Every sender accounts for every round exactly once — enter (burst at
// the barrier) or skip (dead/reconnecting at the barrier) — so rounds
// always land in RoundsDone or RoundsFailed and the tracking maps stay
// bounded.

// enter records the round's burst start as the minimum entering virtual
// time (in serial runs the first caller has it; in parallel runs callers
// arrive in arbitrary real order, so min-write makes the result
// order-independent and serial-identical).
func (m *Metrics) enter(round int, now int64) {
	m.mu.Lock()
	if v, ok := m.start[round]; !ok || now < v {
		m.start[round] = now
	}
	m.entered[round]++
	m.mu.Unlock()
}

// finish records a confirmation: completion time is the maximum
// finishing virtual time minus the round start (the serial last-caller's
// value, computed order-independently).
func (m *Metrics) finish(round int, now int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, live := m.start[round]; !live {
		return // already settled (e.g. failed and forgotten)
	}
	if now > m.lastFin[round] {
		m.lastFin[round] = now
	}
	m.done[round]++
	if m.done[round] == m.Senders && m.entered[round] == m.Senders && !m.failed[round] {
		m.RoundsDone.Inc()
		m.Completion.Record(time.Duration(m.lastFin[round] - m.start[round]))
		m.forget(round)
		return
	}
	m.settle(round)
}

// skip accounts a barrier a sender could not make (no live connection,
// or it was behind after a reconnect): the round can no longer complete
// cleanly.
func (m *Metrics) skip(round int) {
	m.mu.Lock()
	m.skipped[round]++
	if !m.failed[round] {
		m.failed[round] = true
		m.RoundsFailed.Inc()
	}
	m.settle(round)
	m.mu.Unlock()
}

func (m *Metrics) fail(round int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if round < 0 || m.failed[round] {
		return
	}
	if _, live := m.start[round]; !live {
		return // already completed and forgotten
	}
	m.failed[round] = true
	m.RoundsFailed.Inc()
	m.settle(round)
}

// forget and settle run with mu held.

func (m *Metrics) forget(round int) {
	delete(m.start, round)
	delete(m.lastFin, round)
	delete(m.entered, round)
	delete(m.skipped, round)
	delete(m.done, round)
	delete(m.failed, round)
}

// settle drops a failed round's tracking once every sender has
// accounted for it (bounded memory under sustained overrun or churn).
func (m *Metrics) settle(round int) {
	if m.failed[round] && m.entered[round]+m.skipped[round] >= m.Senders {
		m.forget(round)
	}
}

// Config parameterizes the sender fleet.
type Config struct {
	ServerIP wire.IPv4
	Port     uint16
	// Burst is the block size each sender transmits per round.
	Burst int
	// Start is the absolute virtual time of round 0's barrier; Period
	// separates successive barriers.
	Start  time.Duration
	Period time.Duration
	// Rounds bounds the experiment (0 = until Metrics.Running clears).
	Rounds  int
	Metrics *Metrics
}

// SinkFactory returns the receiving application: it consumes blocks
// (zero-copy receive with per-byte CPU charge) and confirms each one —
// the warm ping, then every Burst bytes — with a one-byte token.
func SinkFactory(port uint16, burst int, m *Metrics) app.Factory {
	return func(env app.Env, thread, threads int) app.Handler {
		if err := env.Listen(port); err != nil {
			panic(err)
		}
		return &sink{env: env, burst: burst, m: m}
	}
}

type sink struct {
	env   app.Env
	burst int
	m     *Metrics
}

// sinkConn frames the byte stream into confirmable blocks.
type sinkConn struct {
	got, need int
}

func (s *sink) OnAccept(c app.Conn)            { c.SetCookie(&sinkConn{need: warmBytes}) }
func (s *sink) OnConnected(c app.Conn, b bool) {}

func (s *sink) OnRecv(c app.Conn, data []byte) {
	s.env.Charge(time.Duration(float64(len(data)) * perByteCost))
	if s.m != nil {
		s.m.SinkBytes.Add(uint64(len(data)))
	}
	st, _ := c.Cookie().(*sinkConn)
	if st == nil {
		return
	}
	st.got += len(data)
	for st.got >= st.need {
		st.got -= st.need
		st.need = s.burst
		s.env.Charge(senderMsgCost)
		c.Send(token[:])
	}
}

func (s *sink) OnSent(c app.Conn, n int) {}
func (s *sink) OnEOF(c app.Conn)         { c.Close() }
func (s *sink) OnClosed(c app.Conn)      {}

var token = [1]byte{0xA5}

// SenderFactory returns one synchronized sender per thread.
func SenderFactory(cfg Config) app.Factory {
	return func(env app.Env, thread, threads int) app.Handler {
		s := &sender{env: env, cfg: cfg, cur: -1}
		cfg.Metrics.Senders++
		s.connect()
		return s
	}
}

type sender struct {
	env  app.Env
	cfg  Config
	conn app.Conn

	warmDone bool
	entered  int    // rounds burst on this connection
	tokens   int    // round confirmations received on this connection
	unsent   []byte // current burst's not-yet-accepted tail
	burstBuf []byte // per-sender zero block backing unsent
	round    int    // next round index to fire
	cur      int    // round in flight (-1 = idle)
	armed    bool
}

func (s *sender) connect() {
	_ = s.env.Connect(s.cfg.ServerIP, s.cfg.Port, nil)
}

func (s *sender) OnAccept(c app.Conn) {}

func (s *sender) OnConnected(c app.Conn, ok bool) {
	if !ok {
		if s.cfg.Metrics.Running {
			s.connect()
		}
		return
	}
	s.conn = c
	// Warm the RTT estimators before the first barrier; the token
	// confirms liveness.
	c.Send(s.burstBytes(warmBytes))
	s.arm()
}

// arm schedules the next barrier this sender can still make.
func (s *sender) arm() {
	if s.armed || !s.cfg.Metrics.Running {
		return
	}
	if s.cfg.Rounds > 0 && s.round >= s.cfg.Rounds {
		return
	}
	now := s.env.Now()
	at := int64(s.cfg.Start) + int64(s.round)*int64(s.cfg.Period)
	for at <= now {
		// A barrier this sender missed (it was dead or reconnecting):
		// account the skip so the round's bookkeeping still settles.
		s.cfg.Metrics.skip(s.round)
		s.round++
		if s.cfg.Rounds > 0 && s.round >= s.cfg.Rounds {
			return
		}
		at += int64(s.cfg.Period)
	}
	s.armed = true
	s.env.After(time.Duration(at-now), s.fire)
}

// fire is the barrier: burst one block, synchronized with every other
// sender by virtue of the shared virtual clock.
func (s *sender) fire() {
	s.armed = false
	m := s.cfg.Metrics
	if !m.Running {
		return
	}
	k := s.round
	s.round++
	if s.conn == nil {
		// Mid-reconnect at the barrier: skip this round and re-arm.
		m.skip(k)
		s.arm()
		return
	}
	if s.cur >= 0 {
		// Previous round still unconfirmed at the next barrier: the
		// round is abandoned (goodput collapse made it overrun).
		m.fail(s.cur)
	}
	s.cur = k
	s.entered++
	m.enter(k, s.env.Now())
	s.env.Charge(senderMsgCost)
	// Carry any unflushed tail of the abandoned burst: the sink frames
	// blocks purely by byte count, so dropping accepted-ledger bytes
	// would desynchronize every later block boundary on this
	// connection.
	s.unsent = s.burstBytes(s.cfg.Burst + len(s.unsent))
	s.push()
	s.arm()
}

// push offers the burst tail to the stack (large bursts can exceed the
// adapter's pending-send budget; OnSent reopens it).
func (s *sender) push() {
	for len(s.unsent) > 0 {
		n := s.conn.Send(s.unsent)
		if n == 0 {
			return
		}
		s.unsent = s.unsent[n:]
	}
}

// OnRecv consumes confirmation tokens. The stream is serialized — warm
// token first, then one per burst in round order — so the current round
// completes when the token count catches up with the bursts sent.
func (s *sender) OnRecv(c app.Conn, data []byte) {
	for range data {
		if !s.warmDone {
			s.warmDone = true
			continue
		}
		s.tokens++
	}
	if s.cur >= 0 && s.tokens >= s.entered {
		m := s.cfg.Metrics
		m.Bytes.Add(uint64(s.cfg.Burst))
		m.finish(s.cur, s.env.Now())
		s.cur = -1
	}
}

func (s *sender) OnSent(c app.Conn, n int) { s.push() }

func (s *sender) OnEOF(c app.Conn) { c.Close() }

func (s *sender) OnClosed(c app.Conn) {
	m := s.cfg.Metrics
	m.fail(s.cur)
	s.cur = -1
	s.conn = nil
	s.warmDone, s.entered, s.tokens, s.unsent = false, 0, 0, nil
	if m.Running {
		s.connect()
	}
}

// burstBytes returns an immutable zero block (zero-copy senders must not
// mutate transmitted buffers). The buffer is per-sender: a global shared
// grow-on-demand block would race when senders on different shards
// resize it concurrently.
func (s *sender) burstBytes(n int) []byte {
	for cap(s.burstBuf) < n {
		s.burstBuf = make([]byte, n)
	}
	return s.burstBuf[:n]
}
