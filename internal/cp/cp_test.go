package cp_test

import (
	"testing"
	"time"

	"ix/internal/apps/echo"
	"ix/internal/cp"
	"ix/internal/harness"
)

// TestElasticScaleUpAndDown: IXCP grows the dataplane under load and
// shrinks it when load stops, with flows migrating and traffic flowing
// throughout.
func TestElasticScaleUpAndDown(t *testing.T) {
	cl := harness.NewCluster(13)
	m := echo.NewMetrics()
	cl.AddHost("server", harness.HostSpec{
		Arch: harness.ArchIX, Cores: 1, MaxThreads: 4,
		Factory: echo.ServerFactory(9000, 64),
	})
	srv := cl.IXServer(0)
	for i := 0; i < 4; i++ {
		cl.AddHost("client", harness.HostSpec{
			Arch: harness.ArchLinux, Cores: 4,
			Factory: echo.ClientFactory(echo.ClientConfig{
				ServerIP: srv.IP(), Port: 9000, MsgSize: 64, Rounds: 64, Conns: 8, Metrics: m,
			}),
		})
	}
	cl.Start()
	ctl := cp.New(cl.Eng, srv, cp.DefaultPolicy())
	ctl.Start()
	cl.Run(20 * time.Millisecond)
	if srv.Threads() < 2 {
		t.Fatalf("did not scale up under load: threads=%d", srv.Threads())
	}
	peak := srv.Threads()
	before := m.Msgs.Total()
	cl.Run(10 * time.Millisecond)
	if m.Msgs.Total() == before {
		t.Fatal("traffic stalled after scaling")
	}
	// Stop load: controller should shrink.
	m.Running = false
	cl.Run(40 * time.Millisecond)
	if srv.Threads() >= peak {
		t.Fatalf("did not scale down when idle: threads=%d (peak %d)", srv.Threads(), peak)
	}
	if len(ctl.Log) < 2 {
		t.Fatalf("controller log too short: %v", ctl.Log)
	}
	// Handles must have been re-granted consistently during migration:
	// no gate violations on the surviving threads.
	for i := 0; i < srv.Threads(); i++ {
		if v := srv.Thread(i).Gate().TotalViolations(); v != 0 {
			t.Fatalf("thread %d has %d violations after migrations", i, v)
		}
	}
}

// TestPolicyBounds: the controller respects Min/MaxThreads.
func TestPolicyBounds(t *testing.T) {
	cl := harness.NewCluster(17)
	m := echo.NewMetrics()
	cl.AddHost("server", harness.HostSpec{
		Arch: harness.ArchIX, Cores: 2, MaxThreads: 2,
		Factory: echo.ServerFactory(9000, 64),
	})
	srv := cl.IXServer(0)
	cl.AddHost("client", harness.HostSpec{
		Arch: harness.ArchLinux, Cores: 2,
		Factory: echo.ClientFactory(echo.ClientConfig{
			ServerIP: srv.IP(), Port: 9000, MsgSize: 64, Rounds: 64, Conns: 16, Metrics: m,
		}),
	})
	cl.Start()
	p := cp.DefaultPolicy()
	p.MinThreads = 2
	ctl := cp.New(cl.Eng, srv, p)
	ctl.Start()
	cl.Run(15 * time.Millisecond)
	if srv.Threads() != 2 {
		t.Fatalf("threads=%d, max is 2", srv.Threads())
	}
	m.Running = false
	cl.Run(30 * time.Millisecond)
	if srv.Threads() < 2 {
		t.Fatalf("went below MinThreads: %d", srv.Threads())
	}
}
