package cp_test

import (
	"testing"
	"time"

	"ix/internal/apps/echo"
	"ix/internal/cp"
	"ix/internal/harness"
)

// TestElasticScaleUpAndDown: IXCP grows the dataplane under load and
// shrinks it when load stops, with flows migrating and traffic flowing
// throughout.
func TestElasticScaleUpAndDown(t *testing.T) {
	cl := harness.NewCluster(13)
	m := echo.NewMetrics()
	cl.AddHost("server", harness.HostSpec{
		Arch: harness.ArchIX, Cores: 1, MaxThreads: 4,
		Factory: echo.ServerFactory(9000, 64),
	})
	srv := cl.IXServer(0)
	for i := 0; i < 4; i++ {
		cl.AddHost("client", harness.HostSpec{
			Arch: harness.ArchLinux, Cores: 4,
			Factory: echo.ClientFactory(echo.ClientConfig{
				ServerIP: srv.IP(), Port: 9000, MsgSize: 64, Rounds: 64, Conns: 8, Metrics: m,
			}),
		})
	}
	cl.Start()
	ctl := cp.New(cl.Eng, srv, cp.DefaultPolicy())
	ctl.Start()
	cl.Run(20 * time.Millisecond)
	if srv.Threads() < 2 {
		t.Fatalf("did not scale up under load: threads=%d", srv.Threads())
	}
	peak := srv.Threads()
	before := m.Msgs.Total()
	cl.Run(10 * time.Millisecond)
	if m.Msgs.Total() == before {
		t.Fatal("traffic stalled after scaling")
	}
	// Stop load: controller should shrink.
	m.Running = false
	cl.Run(40 * time.Millisecond)
	if srv.Threads() >= peak {
		t.Fatalf("did not scale down when idle: threads=%d (peak %d)", srv.Threads(), peak)
	}
	if len(ctl.Log) < 2 {
		t.Fatalf("controller log too short: %v", ctl.Log)
	}
	// Handles must have been re-granted consistently during migration:
	// no gate violations on the surviving threads.
	for i := 0; i < srv.Threads(); i++ {
		if v := srv.Thread(i).Gate().TotalViolations(); v != 0 {
			t.Fatalf("thread %d has %d violations after migrations", i, v)
		}
	}
}

// TestPolicyBounds: the controller respects Min/MaxThreads.
func TestPolicyBounds(t *testing.T) {
	cl := harness.NewCluster(17)
	m := echo.NewMetrics()
	cl.AddHost("server", harness.HostSpec{
		Arch: harness.ArchIX, Cores: 2, MaxThreads: 2,
		Factory: echo.ServerFactory(9000, 64),
	})
	srv := cl.IXServer(0)
	cl.AddHost("client", harness.HostSpec{
		Arch: harness.ArchLinux, Cores: 2,
		Factory: echo.ClientFactory(echo.ClientConfig{
			ServerIP: srv.IP(), Port: 9000, MsgSize: 64, Rounds: 64, Conns: 16, Metrics: m,
		}),
	})
	cl.Start()
	p := cp.DefaultPolicy()
	p.MinThreads = 2
	ctl := cp.New(cl.Eng, srv, p)
	ctl.Start()
	cl.Run(15 * time.Millisecond)
	if srv.Threads() != 2 {
		t.Fatalf("threads=%d, max is 2", srv.Threads())
	}
	m.Running = false
	cl.Run(30 * time.Millisecond)
	if srv.Threads() < 2 {
		t.Fatalf("went below MinThreads: %d", srv.Threads())
	}
}

// TestAdaptiveSamplingInterval: the controller's cadence backs off
// toward MaxInterval while the managed dataplane is idle (cutting the
// idle cluster's event load) and snaps back to Interval the moment a
// sample carries load.
func TestAdaptiveSamplingInterval(t *testing.T) {
	cl := harness.NewCluster(29)
	m := echo.NewMetrics()
	fleet := &echo.Fleet{}
	cl.AddHost("server", harness.HostSpec{
		Arch: harness.ArchIX, Cores: 1, MaxThreads: 2,
		Factory: echo.ServerFactory(9000, 64),
	})
	srv := cl.IXServer(0)
	cl.AddHost("client", harness.HostSpec{
		Arch: harness.ArchLinux, Cores: 2,
		Factory: echo.ClientFactory(echo.ClientConfig{
			ServerIP: srv.IP(), Port: 9000, MsgSize: 64,
			Conns: 4, Outstanding: 2, Fleet: fleet, Metrics: m,
		}),
	})
	cl.Start()
	pol := cp.DefaultPolicy()
	ctl := cp.New(cl.Eng, srv, pol)
	ctl.Start()

	// Loaded phase: cadence stays at the base interval.
	cl.Run(10 * time.Millisecond)
	if got := ctl.Interval(); got != pol.Interval {
		t.Fatalf("interval under load = %v, want %v", got, pol.Interval)
	}
	loaded := len(ctl.History)

	// Idle phase: pause the fleet, let in-flight RPCs drain, and watch
	// the cadence stretch to MaxInterval.
	fleet.Pause()
	cl.Run(2 * time.Millisecond)
	idleStart := len(ctl.History)
	cl.Run(40 * time.Millisecond)
	if got := ctl.Interval(); got != pol.MaxInterval {
		t.Fatalf("idle interval = %v, want MaxInterval %v", got, pol.MaxInterval)
	}
	idleSamples := len(ctl.History) - idleStart
	fixed := int(40 * time.Millisecond / pol.Interval)
	if idleSamples >= fixed/3 {
		t.Fatalf("idle phase took %d samples; a fixed cadence takes %d — no backoff", idleSamples, fixed)
	}

	// Load returns: the next loaded sample snaps the cadence back.
	fleet.Resume()
	cl.Run(2 * pol.MaxInterval)
	if got := ctl.Interval(); got != pol.Interval {
		t.Fatalf("interval after load returned = %v, want %v", got, pol.Interval)
	}
	if loaded == 0 || m.Msgs.Total() == 0 {
		t.Fatal("no load was ever observed")
	}
	// History semantics: every sample carries its covering window.
	for i, s := range ctl.History {
		if s.Window <= 0 {
			t.Fatalf("sample %d has no window", i)
		}
	}
}
