package cp

import (
	"time"

	"ix/internal/sim"
)

// This file is the multi-tenant half of IXCP. The paper's control plane
// (§4.1) allocates cores across *multiple dataplanes* on one machine —
// each tenant runs its own IX instance — and leaves the policy to future
// work (§6). The Arbiter is that policy: it samples every tenant's tail
// latency and utilization on a coarse cadence and moves one core per
// decision from the tenant with the most headroom to the tenant
// violating its SLO, using the same elastic-thread grow/shrink (and thus
// flow-group migration) mechanism the single-dataplane Controller drives.

// Resizer is the core-ownership surface of one managed dataplane — the
// subset of *core.Dataplane the arbiter needs, kept narrow so policy
// tests can drive it with fakes.
type Resizer interface {
	Threads() int
	AddElasticThread() error
	RemoveElasticThread() error
}

// Member is one tenant under arbitration: a dataplane, its SLO, its core
// bounds and its telemetry probes.
type Member struct {
	Name string
	DP   Resizer
	// SLO is the p99 tail-latency target; zero means best-effort (the
	// member never counts as violating, so it can only donate).
	SLO time.Duration
	// MinCores/MaxCores bound what arbitration may do to this member
	// (Min defaults to 1; Max defaults to the cluster core budget).
	MinCores, MaxCores int
	// P99 samples the member's tail latency over the window since the
	// previous call (reset-on-read); required.
	P99 func() time.Duration
	// Util samples mean core utilization over the same window
	// (reset-on-read); optional — nil reads as zero, which makes the
	// member always pass the donor-utilization check.
	Util func() float64
}

// ArbiterPolicy parameterizes the reallocation loop. The three
// hysteresis controls — ViolateAfter, the donor-headroom gap and
// Residency — are what keep two tenants oscillating near their SLO
// boundaries from ping-ponging a core every decision: a violation must
// persist, the donor must sit well below its own SLO (not merely below
// it), and a completed move freezes further moves for a few decisions.
type ArbiterPolicy struct {
	// Interval between arbitration decisions (the reallocation cadence).
	Interval time.Duration
	// ViolateAfter is the number of consecutive violating samples
	// required before a member is eligible to receive a core.
	ViolateAfter int
	// DonorHeadroom: a member may donate only while its p99 is at most
	// this fraction of its own SLO. The gap between 1.0 and this value
	// is the hysteresis band that keeps near-boundary tenants out of
	// the donor pool.
	DonorHeadroom float64
	// DonorUtil: a member may donate only while its mean utilization is
	// at most this fraction (a saturated tenant is no donor even if its
	// latency currently looks healthy).
	DonorUtil float64
	// Residency is the number of decisions skipped after a completed
	// move, letting the receiver's queues drain and its p99 window
	// reflect the new allocation before the arbiter acts again.
	Residency int
}

// DefaultArbiterPolicy returns the conservative arbitration policy.
func DefaultArbiterPolicy() ArbiterPolicy {
	return ArbiterPolicy{
		Interval:      time.Millisecond,
		ViolateAfter:  2,
		DonorHeadroom: 0.6,
		DonorUtil:     0.75,
		Residency:     1,
	}
}

// MemberSample is one member's telemetry at one decision.
type MemberSample struct {
	Name  string
	Cores int
	P99   time.Duration
	Util  float64
	// Violating is true when P99 exceeded the member's SLO this window;
	// Streak counts consecutive violating samples including this one.
	Violating bool
	Streak    int
}

// Move records one completed core transfer. From is empty when the core
// came from the unallocated budget rather than another member.
type Move struct {
	At       sim.Time
	Decision int
	From, To string
}

// Arbiter is the cluster-level core arbiter: one instance manages the
// core budget of one machine shared by several tenant dataplanes.
type Arbiter struct {
	eng     *sim.Engine
	pol     ArbiterPolicy
	members []*Member
	budget  int

	streaks  []int
	cooldown int
	stopped  bool

	// Decisions counts arbitration ticks; Moves logs completed
	// transfers; History holds one row of member samples per decision
	// (telemetry for the claim tests and the tenants experiment).
	Decisions int
	Moves     []Move
	History   [][]MemberSample
}

// NewArbiter builds an arbiter over members sharing a budget of cores.
// budget <= 0 means the sum of the members' current allocations (a fully
// subscribed machine). Member bounds are normalized here: MinCores
// defaults to 1, MaxCores to the budget.
func NewArbiter(eng *sim.Engine, pol ArbiterPolicy, budget int, members ...*Member) *Arbiter {
	def := DefaultArbiterPolicy()
	if pol.Interval <= 0 {
		pol.Interval = def.Interval
	}
	if pol.ViolateAfter <= 0 {
		pol.ViolateAfter = def.ViolateAfter
	}
	if pol.DonorHeadroom <= 0 {
		pol.DonorHeadroom = def.DonorHeadroom
	}
	if pol.DonorUtil <= 0 {
		pol.DonorUtil = def.DonorUtil
	}
	if budget <= 0 {
		for _, m := range members {
			budget += m.DP.Threads()
		}
	}
	for _, m := range members {
		if m.MinCores < 1 {
			m.MinCores = 1
		}
		if m.MaxCores <= 0 {
			m.MaxCores = budget
		}
	}
	return &Arbiter{eng: eng, pol: pol, members: members, budget: budget,
		streaks: make([]int, len(members))}
}

// Policy returns the arbiter's active policy.
func (a *Arbiter) Policy() ArbiterPolicy { return a.pol }

// Budget returns the machine's core budget.
func (a *Arbiter) Budget() int { return a.budget }

// Allocated sums the members' current core allocations.
func (a *Arbiter) Allocated() int {
	n := 0
	for _, m := range a.members {
		n += m.DP.Threads()
	}
	return n
}

// Start begins the periodic decision loop.
func (a *Arbiter) Start() {
	a.eng.After(a.pol.Interval, a.tick)
}

// Stop halts the loop.
func (a *Arbiter) Stop() { a.stopped = true }

// TickNow runs one arbitration decision synchronously, without the
// self-rearming engine timer. Sharded harnesses use it between RunFor
// chunks: at that point every shard worker is parked at the epoch
// barrier, so reading the probes and moving cores is ordered after all
// of the epoch's events (an engine-timer tick would instead fire
// mid-epoch on shard 0, racing the other shards). Call either Start or
// TickNow for a given arbiter, not both.
func (a *Arbiter) TickNow() {
	if a.stopped {
		return
	}
	a.decide()
}

func (a *Arbiter) tick() {
	if a.stopped {
		return
	}
	defer func() { a.eng.After(a.pol.Interval, a.tick) }()
	a.decide()
}

// sloRatio normalizes a member's p99 against its SLO (0 for best-effort
// members): > 1 is a violation, and the lowest ratio marks the most
// headroom.
func sloRatio(m *Member, p99 time.Duration) float64 {
	if m.SLO <= 0 {
		return 0
	}
	return float64(p99) / float64(m.SLO)
}

// decide runs one arbitration step: sample every member (the probes are
// reset-on-read, so sampling happens every decision regardless of
// cooldown — windows stay aligned with the cadence), then move at most
// one core toward the worst eligible violator.
func (a *Arbiter) decide() {
	a.Decisions++
	row := make([]MemberSample, len(a.members))
	for i, m := range a.members {
		s := MemberSample{Name: m.Name, Cores: m.DP.Threads(), P99: m.P99()}
		if m.Util != nil {
			s.Util = m.Util()
		}
		s.Violating = m.SLO > 0 && s.P99 > m.SLO
		if s.Violating {
			a.streaks[i]++
		} else {
			a.streaks[i] = 0
		}
		s.Streak = a.streaks[i]
		row[i] = s
	}
	a.History = append(a.History, row)
	if a.cooldown > 0 {
		a.cooldown--
		return
	}

	// The receiver: the persistently violating member with the worst
	// p99/SLO ratio and room to grow. Strict > keeps the first member
	// on ties (deterministic member order).
	recv := -1
	worst := 0.0
	for i, m := range a.members {
		if row[i].Streak < a.pol.ViolateAfter || m.DP.Threads() >= m.MaxCores {
			continue
		}
		if r := sloRatio(m, row[i].P99); r > worst {
			worst = r
			recv = i
		}
	}
	if recv < 0 {
		return
	}
	to := a.members[recv]

	// Unallocated budget is granted before anyone is shrunk.
	if a.Allocated() < a.budget {
		if err := to.DP.AddElasticThread(); err == nil {
			a.Moves = append(a.Moves, Move{At: a.eng.Now(), Decision: a.Decisions, To: to.Name})
			a.cooldown = a.pol.Residency
		}
		return
	}

	// The donor: most headroom (lowest p99/SLO ratio, then lowest
	// utilization, then member order), currently healthy by a margin
	// (p99 ≤ DonorHeadroom × SLO), not saturated, above its floor.
	donor := -1
	best := 0.0
	bestUtil := 0.0
	for i, m := range a.members {
		if i == recv || m.DP.Threads() <= m.MinCores || row[i].Violating {
			continue
		}
		r := sloRatio(m, row[i].P99)
		if m.SLO > 0 && r > a.pol.DonorHeadroom {
			continue
		}
		if row[i].Util > a.pol.DonorUtil {
			continue
		}
		if donor < 0 || r < best || (r == best && row[i].Util < bestUtil) {
			donor, best, bestUtil = i, r, row[i].Util
		}
	}
	if donor < 0 {
		return
	}
	from := a.members[donor]
	if err := from.DP.RemoveElasticThread(); err != nil {
		return
	}
	if err := to.DP.AddElasticThread(); err != nil {
		// Receiver at its hardware queue limit: undo the shrink so the
		// budget stays fully allocated.
		_ = from.DP.AddElasticThread()
		return
	}
	a.Moves = append(a.Moves, Move{At: a.eng.Now(), Decision: a.Decisions, From: from.Name, To: to.Name})
	a.cooldown = a.pol.Residency
}
