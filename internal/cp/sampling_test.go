package cp_test

import (
	"testing"
	"time"

	"ix/internal/apps/echo"
	"ix/internal/cp"
	"ix/internal/harness"
)

// idleController builds a one-host idle cluster (no clients, no traffic)
// with a telemetry-only controller: thresholds set so the policy never
// grows or shrinks, isolating the sampling cadence under test.
func idleController(seed int64, pol cp.Policy) (*harness.Cluster, *cp.Controller) {
	cl := harness.NewCluster(seed)
	cl.AddHost("server", harness.HostSpec{
		Arch: harness.ArchIX, Cores: 1, MaxThreads: 2,
		Factory: echo.ServerFactory(9000, 64),
	})
	cl.Start()
	ctl := cp.New(cl.Eng, cl.IXServer(0), pol)
	ctl.Start()
	return cl, ctl
}

// TestMaxIntervalExactBoundary: the idle doubling chain must land on
// MaxInterval exactly — both when the bound is a power-of-two multiple
// of Interval (the chain lands on it) and when it is not (the overshoot
// clamps to exactly the bound, not to the next doubling).
func TestMaxIntervalExactBoundary(t *testing.T) {
	base := cp.DefaultPolicy()

	// Power-of-two bound: 500µs → 1ms → 2ms → 4ms, no clamp needed.
	pol := base
	pol.MaxInterval = 8 * pol.Interval
	cl, ctl := idleController(31, pol)
	cl.Run(100 * time.Millisecond)
	if got := ctl.Interval(); got != pol.MaxInterval {
		t.Fatalf("interval = %v, want exactly MaxInterval %v", got, pol.MaxInterval)
	}
	for i, s := range ctl.History {
		if s.Window > pol.MaxInterval {
			t.Fatalf("sample %d window %v exceeds MaxInterval %v", i, s.Window, pol.MaxInterval)
		}
	}

	// Non-power-of-two bound: 500µs → 1ms → 2ms clamps to 1.5ms; the
	// cadence must sit exactly at the bound, never beyond it.
	pol = base
	pol.MaxInterval = 3 * pol.Interval / 2
	cl, ctl = idleController(32, pol)
	cl.Run(100 * time.Millisecond)
	if got := ctl.Interval(); got != pol.MaxInterval {
		t.Fatalf("clamped interval = %v, want exactly MaxInterval %v", got, pol.MaxInterval)
	}

	// MaxInterval == Interval disables adaptation entirely.
	pol = base
	pol.MaxInterval = pol.Interval
	cl, ctl = idleController(33, pol)
	cl.Run(20 * time.Millisecond)
	if got := ctl.Interval(); got != pol.Interval {
		t.Fatalf("interval = %v with MaxInterval==Interval, want fixed %v", got, pol.Interval)
	}
	_ = cl
}

// TestSnapBackAfterIdleChain: after a long idle chain has stretched the
// cadence to MaxInterval, the first sample that carries load covers the
// stretched window (its rates integrate over what was actually waited)
// and the very next sample is back on the base cadence.
func TestSnapBackAfterIdleChain(t *testing.T) {
	cl := harness.NewCluster(34)
	m := echo.NewMetrics()
	fleet := &echo.Fleet{}
	cl.AddHost("server", harness.HostSpec{
		Arch: harness.ArchIX, Cores: 1, MaxThreads: 2,
		Factory: echo.ServerFactory(9000, 64),
	})
	srv := cl.IXServer(0)
	cl.AddHost("client", harness.HostSpec{
		Arch: harness.ArchLinux, Cores: 2,
		Factory: echo.ClientFactory(echo.ClientConfig{
			ServerIP: srv.IP(), Port: 9000, MsgSize: 64,
			Conns: 4, Outstanding: 2, Fleet: fleet, Metrics: m,
		}),
	})
	cl.Start()
	pol := cp.DefaultPolicy()
	ctl := cp.New(cl.Eng, srv, pol)
	ctl.Start()

	// Load, then a long idle phase: the chain must reach MaxInterval.
	cl.Run(5 * time.Millisecond)
	fleet.Pause()
	cl.Run(50 * time.Millisecond)
	if got := ctl.Interval(); got != pol.MaxInterval {
		t.Fatalf("idle chain stalled at %v, want MaxInterval %v", got, pol.MaxInterval)
	}
	mark := len(ctl.History)

	// Resume and find the first loaded sample after the idle chain.
	fleet.Resume()
	cl.Run(4 * pol.MaxInterval)
	first := -1
	for i := mark; i < len(ctl.History); i++ {
		if ctl.History[i].Pkts > 0 {
			first = i
			break
		}
	}
	if first < 0 {
		t.Fatal("no loaded sample after resume")
	}
	s := ctl.History[first]
	// The loaded sample still covers the stretched window it closed.
	if s.Window != pol.MaxInterval {
		t.Fatalf("first loaded sample window = %v, want the stretched %v", s.Window, pol.MaxInterval)
	}
	if want := float64(s.Pkts) / s.Window.Seconds(); s.PPS != want {
		t.Fatalf("PPS %v not integrated over the stretched window (want %v)", s.PPS, want)
	}
	// Snap-back: the next sample arrives one base interval later.
	if first+1 >= len(ctl.History) {
		t.Fatal("no sample after the snap-back")
	}
	if w := ctl.History[first+1].Window; w != pol.Interval {
		t.Fatalf("post-snap-back window = %v, want base %v", w, pol.Interval)
	}
	if got := ctl.Interval(); got != pol.Interval {
		t.Fatalf("cadence after snap-back = %v, want %v", got, pol.Interval)
	}
}

// TestSampleWindowOnMidWindowRevoke: a core revoked between ticks (by an
// external actor — e.g. the multi-tenant arbiter — not the controller's
// own policy) must not corrupt the next sample: the window still covers
// the full interval, the packet count does not underflow even though the
// revoked thread took its cumulative RxPackets with it, and the sample
// history tiles virtual time exactly.
func TestSampleWindowOnMidWindowRevoke(t *testing.T) {
	cl := harness.NewCluster(35)
	m := echo.NewMetrics()
	cl.AddHost("server", harness.HostSpec{
		Arch: harness.ArchIX, Cores: 2, MaxThreads: 2,
		Factory: echo.ServerFactory(9000, 64),
	})
	srv := cl.IXServer(0)
	cl.AddHost("client", harness.HostSpec{
		Arch: harness.ArchLinux, Cores: 2,
		Factory: echo.ClientFactory(echo.ClientConfig{
			ServerIP: srv.IP(), Port: 9000, MsgSize: 64,
			Conns: 8, Outstanding: 2, Metrics: m,
		}),
	})
	cl.Start()
	// Telemetry-only policy: thresholds the traffic can never cross, a
	// fixed cadence, so the only thread-count change is ours.
	pol := cp.DefaultPolicy()
	pol.AddQueueDepth = 1 << 30
	pol.AddUtil = 0
	pol.RemoveUtil = 0
	pol.MaxInterval = 0
	ctl := cp.New(cl.Eng, srv, pol)
	ctl.Start()

	cl.Run(4 * pol.Interval)
	before := len(ctl.History)
	// Mid-window revocation: half an interval past the last tick.
	cl.Run(pol.Interval / 2)
	if err := srv.RemoveElasticThread(); err != nil {
		t.Fatalf("revoke: %v", err)
	}
	cl.Run(10 * pol.Interval)
	m.Running = false

	if len(ctl.History) <= before {
		t.Fatal("no samples after the revoke")
	}
	s := ctl.History[before]
	if s.Threads != 1 {
		t.Fatalf("sample spanning the revoke reports %d threads, want 1", s.Threads)
	}
	if s.Window != pol.Interval {
		t.Fatalf("revoke did not preserve the window: %v, want %v", s.Window, pol.Interval)
	}
	// The revoked thread's cumulative RxPackets vanished from the sum;
	// the clamp must floor the delta at zero rather than wrapping.
	for i, smp := range ctl.History {
		if smp.Pkts > 1<<40 {
			t.Fatalf("sample %d packet count underflowed: %d", i, smp.Pkts)
		}
	}
	// Window integration: samples tile the run — the sum of windows
	// equals the span from just before the first sample to the last.
	var sum time.Duration
	for _, smp := range ctl.History {
		sum += smp.Window
	}
	span := time.Duration(ctl.History[len(ctl.History)-1].At) // engine starts at 0; first window starts there
	if sum != span {
		t.Fatalf("windows sum to %v, history spans %v", sum, span)
	}
	if m.Msgs.Total() == 0 {
		t.Fatal("no traffic was ever observed")
	}
}
