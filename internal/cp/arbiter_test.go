package cp_test

import (
	"errors"
	"testing"
	"time"

	"ix/internal/cp"
	"ix/internal/sim"
)

// fakeDP is a Resizer whose core count is pure bookkeeping, so arbiter
// policy tests run without a cluster.
type fakeDP struct {
	threads       int
	addErr        error
	adds, removes int
}

func (f *fakeDP) Threads() int { return f.threads }
func (f *fakeDP) AddElasticThread() error {
	if f.addErr != nil {
		return f.addErr
	}
	f.adds++
	f.threads++
	return nil
}
func (f *fakeDP) RemoveElasticThread() error {
	if f.threads <= 1 {
		return errors.New("last thread")
	}
	f.removes++
	f.threads--
	return nil
}

// seq returns a probe cycling through vals, one per call — a scripted
// telemetry stream indexed by decision.
func seq(vals ...time.Duration) func() time.Duration {
	i := 0
	return func() time.Duration {
		v := vals[i%len(vals)]
		i++
		return v
	}
}

// runDecisions drives the arbiter through n decision ticks.
func runDecisions(eng *sim.Engine, a *cp.Arbiter, n int) {
	a.Start()
	eng.RunFor(time.Duration(n)*a.Policy().Interval + a.Policy().Interval/2)
	a.Stop()
}

// TestArbiterThrashHysteresis is the red/green thrash regression: two
// tenants oscillate around their SLO boundaries in opposite phase, the
// classic ping-pong stimulus. A naive policy (act on the first violating
// sample, donate with any sub-SLO margin, no residency) moves a core
// nearly every decision; the default hysteresis holds the allocation
// still.
func TestArbiterThrashHysteresis(t *testing.T) {
	const slo = time.Millisecond
	const decisions = 60
	run := func(pol cp.ArbiterPolicy) (moves int, total int) {
		eng := sim.NewEngine(1)
		a := &fakeDP{threads: 5}
		b := &fakeDP{threads: 5}
		// Opposite-phase oscillation straddling the SLO: 1.05× then
		// 0.55× on alternate decisions. The low phase sits under the
		// naive donor bar and (just) under the default DonorHeadroom,
		// so only the streak/residency hysteresis separates the two
		// policies.
		arb := cp.NewArbiter(eng, pol, 0,
			&cp.Member{Name: "A", DP: a, SLO: slo,
				P99: seq(slo*105/100, slo*55/100)},
			&cp.Member{Name: "B", DP: b, SLO: slo,
				P99: seq(slo*55/100, slo*105/100)},
		)
		runDecisions(eng, arb, decisions)
		if arb.Decisions != decisions {
			t.Fatalf("decisions = %d, want %d", arb.Decisions, decisions)
		}
		return len(arb.Moves), a.threads + b.threads
	}

	naive := cp.DefaultArbiterPolicy()
	naive.ViolateAfter = 1
	naive.DonorHeadroom = 0.99
	naive.Residency = 0
	red, total := run(naive)
	if red < decisions*2/3 {
		t.Fatalf("naive policy moved only %d times in %d decisions — the thrash stimulus is broken", red, decisions)
	}
	if total != 10 {
		t.Fatalf("naive run leaked cores: total %d, want 10", total)
	}

	green, total := run(cp.DefaultArbiterPolicy())
	// The max-moves bound: one move per (ViolateAfter + Residency)
	// decisions is the structural ceiling; period-2 oscillation never
	// builds the required streak, so the default policy must sit far
	// below even that.
	bound := decisions / (cp.DefaultArbiterPolicy().ViolateAfter + cp.DefaultArbiterPolicy().Residency)
	if green > bound {
		t.Fatalf("hysteresis policy moved %d times in %d decisions (bound %d)", green, decisions, bound)
	}
	if green != 0 {
		t.Fatalf("period-2 oscillation should never reach ViolateAfter=2: moved %d times", green)
	}
	if total != 10 {
		t.Fatalf("hysteresis run leaked cores: total %d, want 10", total)
	}
	if red <= green {
		t.Fatalf("red/green inverted: naive %d moves vs hysteresis %d", red, green)
	}
}

// TestArbiterPersistentViolationMoves: a genuine sustained violation
// (not oscillation) must transfer cores from the headroom tenant, and
// every move must conserve the budget.
func TestArbiterPersistentViolationMoves(t *testing.T) {
	const slo = time.Millisecond
	eng := sim.NewEngine(2)
	a := &fakeDP{threads: 2}
	b := &fakeDP{threads: 8}
	arb := cp.NewArbiter(eng, cp.DefaultArbiterPolicy(), 0,
		&cp.Member{Name: "A", DP: a, SLO: slo, MaxCores: 6, P99: seq(3 * slo)},
		&cp.Member{Name: "B", DP: b, SLO: slo, MinCores: 4, P99: seq(slo / 10)},
	)
	runDecisions(eng, arb, 30)
	if a.threads != 6 {
		t.Fatalf("violator reached %d cores, want MaxCores=6", a.threads)
	}
	if b.threads != 4 {
		t.Fatalf("donor at %d cores, want MinCores=4", b.threads)
	}
	if got := a.threads + b.threads; got != arb.Budget() {
		t.Fatalf("allocation %d != budget %d", got, arb.Budget())
	}
	for _, mv := range arb.Moves {
		if mv.From != "B" || mv.To != "A" {
			t.Fatalf("unexpected move %+v", mv)
		}
	}
	// Residency spacing: consecutive moves are at least
	// Residency+1 decisions apart.
	for i := 1; i < len(arb.Moves); i++ {
		if d := arb.Moves[i].Decision - arb.Moves[i-1].Decision; d < arb.Policy().Residency+1 {
			t.Fatalf("moves %d decisions apart, residency %d", d, arb.Policy().Residency)
		}
	}
}

// TestArbiterFreePoolGrant: unallocated budget is granted to a violator
// before anyone is shrunk.
func TestArbiterFreePoolGrant(t *testing.T) {
	const slo = time.Millisecond
	eng := sim.NewEngine(3)
	a := &fakeDP{threads: 2}
	b := &fakeDP{threads: 2}
	arb := cp.NewArbiter(eng, cp.DefaultArbiterPolicy(), 6,
		// MaxCores 4 = base + the free budget, so the violator absorbs
		// the pool and then stops; B must never be touched.
		&cp.Member{Name: "A", DP: a, SLO: slo, MaxCores: 4, P99: seq(2 * slo)},
		&cp.Member{Name: "B", DP: b, SLO: slo, P99: seq(slo / 10)},
	)
	runDecisions(eng, arb, 12)
	if b.removes != 0 {
		t.Fatalf("healthy tenant was shrunk %d times while budget was free", b.removes)
	}
	if a.threads != 4 || arb.Allocated() != 6 {
		t.Fatalf("free budget not granted: A=%d allocated=%d budget=6", a.threads, arb.Allocated())
	}
	for _, mv := range arb.Moves {
		if mv.From != "" {
			t.Fatalf("move %+v should have come from the free pool", mv)
		}
	}
}

// TestArbiterSaturatedDonorExcluded: a tenant whose utilization exceeds
// DonorUtil must not donate even with healthy latency.
func TestArbiterSaturatedDonorExcluded(t *testing.T) {
	const slo = time.Millisecond
	eng := sim.NewEngine(4)
	a := &fakeDP{threads: 4}
	b := &fakeDP{threads: 4}
	arb := cp.NewArbiter(eng, cp.DefaultArbiterPolicy(), 0,
		&cp.Member{Name: "A", DP: a, SLO: slo, P99: seq(2 * slo)},
		&cp.Member{Name: "B", DP: b, SLO: slo, P99: seq(slo / 10),
			Util: func() float64 { return 0.95 }},
	)
	runDecisions(eng, arb, 10)
	if len(arb.Moves) != 0 {
		t.Fatalf("saturated donor was shrunk: %+v", arb.Moves)
	}
	if b.threads != 4 {
		t.Fatalf("B at %d cores, want 4", b.threads)
	}
}

// TestArbiterRollbackOnReceiverLimit: when the receiver's grow fails at
// its hardware queue limit, the donor's shrink is rolled back so the
// budget stays fully allocated.
func TestArbiterRollbackOnReceiverLimit(t *testing.T) {
	const slo = time.Millisecond
	eng := sim.NewEngine(5)
	a := &fakeDP{threads: 4, addErr: errors.New("no NIC queues left")}
	b := &fakeDP{threads: 4}
	arb := cp.NewArbiter(eng, cp.DefaultArbiterPolicy(), 0,
		// MaxCores above the fake's real hardware limit, so the arbiter
		// attempts the move and hits the error path.
		&cp.Member{Name: "A", DP: a, SLO: slo, MaxCores: 8, P99: seq(2 * slo)},
		&cp.Member{Name: "B", DP: b, SLO: slo, P99: seq(slo / 10)},
	)
	runDecisions(eng, arb, 10)
	if len(arb.Moves) != 0 {
		t.Fatalf("failed grows must not be logged as moves: %+v", arb.Moves)
	}
	if a.threads != 4 || b.threads != 4 {
		t.Fatalf("rollback failed: A=%d B=%d, want 4/4", a.threads, b.threads)
	}
	if arb.Allocated() != arb.Budget() {
		t.Fatalf("allocation %d != budget %d after rollback", arb.Allocated(), arb.Budget())
	}
}
