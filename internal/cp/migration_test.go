package cp_test

import (
	"testing"
	"time"

	"ix/internal/app"
	"ix/internal/apps/echo"
	"ix/internal/cp"
	"ix/internal/harness"
)

// timersPerThread one-shot continuity probes are registered when each
// elastic thread spawns; every one must fire even if its thread's core is
// revoked before the deadline.
const timersPerThread = 4

// probedFactory wraps an application factory so each elastic thread
// registers continuity-probe timers at start.
func probedFactory(inner app.Factory, fired *int) app.Factory {
	// Short probes fire while their thread is still running; the long
	// ones are guaranteed to still be pending when the down-ramp revokes
	// threads 1–3, so they only fire if revocation re-homes them.
	probes := [timersPerThread]time.Duration{
		4 * time.Millisecond, 12 * time.Millisecond,
		45 * time.Millisecond, 70 * time.Millisecond,
	}
	return func(env app.Env, thread, threads int) app.Handler {
		for _, d := range probes {
			env.After(d, func() { *fired++ })
		}
		return inner(env, thread, threads)
	}
}

// TestFlowGroupMigration141 is the deterministic elastic scaling
// round-trip: a load ramp drives one IX dataplane 1→4 threads and back to
// 1, with every flow group migrating via the RSS indirection table. It
// asserts the §4.4 migration invariants:
//
//   - no packet loss: zero NIC-edge drops, zero mbuf-pool drops, and
//     zero TCP retransmissions anywhere in the cluster;
//   - no intra-flow reordering: zero out-of-order TCP segments on the
//     server and on every client (a reordering migration would put
//     segments into reassembly);
//   - timer continuity: user timers registered on threads that were
//     later revoked still fire, with their original deadlines;
//   - protection: no syscall-gate violations on surviving threads.
func TestFlowGroupMigration141(t *testing.T) {
	cl := harness.NewCluster(29)
	m := echo.NewMetrics()
	fired := 0
	registered := 0

	cl.AddHost("server", harness.HostSpec{
		Arch: harness.ArchIX, Cores: 1, MaxThreads: 4,
		Factory: probedFactory(func(env app.Env, thread, threads int) app.Handler {
			registered += timersPerThread
			return echo.ServerFactory(9000, 64)(env, thread, threads)
		}, &fired),
	})
	srv := cl.IXServer(0)
	// 8 client machines: enough closed-loop offered load to push the
	// server through the 0.9-utilization grow threshold at 3 threads.
	// (PR 5's linuxstack event routing — established sockets wake their
	// owning core's epoll instead of the RSS core's — ended an artifact
	// where one client thread's connections were serviced in parallel by
	// every core of its host, inflating each host's offered load; the
	// old 6-host fleet then saturated only 3 server threads.)
	const clientHosts = 8
	for i := 0; i < clientHosts; i++ {
		cl.AddHost("client", harness.HostSpec{
			Arch: harness.ArchLinux, Cores: 4,
			Factory: echo.ClientFactory(echo.ClientConfig{
				ServerIP: srv.IP(), Port: 9000, MsgSize: 64,
				Rounds: 64, Conns: 8, Metrics: m,
			}),
		})
	}
	cl.Start()
	ctl := cp.New(cl.Eng, srv, cp.DefaultPolicy())
	ctl.Start()

	// Ramp up: run until the controller has grown the dataplane to its
	// full hardware budget.
	deadline := 60 * time.Millisecond
	for elapsed := time.Duration(0); srv.Threads() < 4; elapsed += time.Millisecond {
		if elapsed > deadline {
			t.Fatalf("never scaled to 4 threads (at %d after %v)", srv.Threads(), deadline)
		}
		cl.Run(time.Millisecond)
	}
	msgsAtPeak := m.Msgs.Total()
	cl.Run(5 * time.Millisecond)
	if m.Msgs.Total() == msgsAtPeak {
		t.Fatal("traffic stalled at peak allocation")
	}

	// Ramp down: stop the load and run until full consolidation.
	m.Running = false
	for elapsed := time.Duration(0); srv.Threads() > 1; elapsed += time.Millisecond {
		if elapsed > deadline {
			t.Fatalf("never consolidated to 1 thread (at %d after %v)", srv.Threads(), deadline)
		}
		cl.Run(time.Millisecond)
	}
	// Let the continuity probes on late-spawned threads expire (the
	// longest is 70 ms after a spawn that happens within the first ramp).
	cl.Run(100 * time.Millisecond)

	if srv.Migrations == 0 || srv.FlowsMigrated == 0 {
		t.Fatalf("no migrations recorded: %d groups, %d flows", srv.Migrations, srv.FlowsMigrated)
	}

	// No packet loss and no intra-flow reordering — aggregated across
	// every elastic thread the server ever had, including the revoked
	// ones (LossTotals carries their counters over, so a violation on a
	// thread that later disappears still fails the test).
	if d := srv.RxDrops(); d != 0 {
		t.Errorf("server NIC-edge drops: %d", d)
	}
	ooo, retrans, fastRetrans, poolDrops := srv.LossTotals()
	if poolDrops != 0 {
		t.Errorf("server mbuf pool drops: %d", poolDrops)
	}
	if retrans != 0 || fastRetrans != 0 {
		t.Errorf("server retransmits: %d slow, %d fast", retrans, fastRetrans)
	}
	if ooo != 0 {
		t.Errorf("server saw %d out-of-order segments", ooo)
	}

	// The client side of every flow must agree.
	for i := 0; i < clientHosts; i++ {
		ctcp := cl.LinuxHost(i).Stack().TCP()
		if ctcp.OutOfOrderSegs != 0 {
			t.Errorf("client %d saw %d out-of-order segments", i, ctcp.OutOfOrderSegs)
		}
		if ctcp.Retransmits != 0 {
			t.Errorf("client %d retransmitted %d segments", i, ctcp.Retransmits)
		}
	}

	// Timer continuity: probes registered on threads 1–3 (revoked on the
	// way down) must have fired exactly once each.
	if registered != 4*timersPerThread {
		t.Fatalf("expected %d probe timers, registered %d", 4*timersPerThread, registered)
	}
	if fired != registered {
		t.Errorf("timer continuity broken: %d/%d probes fired", fired, registered)
	}

	// Protection invariants survive handle re-granting.
	for i := 0; i < srv.Threads(); i++ {
		if v := srv.Thread(i).Gate().TotalViolations(); v != 0 {
			t.Errorf("thread %d has %d gate violations after migrations", i, v)
		}
	}
}

// TestMigrationDeterminism: two identical runs produce identical
// controller logs and migration counts (the simulation is a deterministic
// function of the seed, including every migration point).
func TestMigrationDeterminism(t *testing.T) {
	run := func() (log []cp.Event, migrations, flows uint64, msgs uint64) {
		cl := harness.NewCluster(31)
		m := echo.NewMetrics()
		cl.AddHost("server", harness.HostSpec{
			Arch: harness.ArchIX, Cores: 1, MaxThreads: 4,
			Factory: echo.ServerFactory(9000, 64),
		})
		srv := cl.IXServer(0)
		for i := 0; i < 4; i++ {
			cl.AddHost("client", harness.HostSpec{
				Arch: harness.ArchLinux, Cores: 4,
				Factory: echo.ClientFactory(echo.ClientConfig{
					ServerIP: srv.IP(), Port: 9000, MsgSize: 64,
					Rounds: 64, Conns: 8, Metrics: m,
				}),
			})
		}
		cl.Start()
		ctl := cp.New(cl.Eng, srv, cp.DefaultPolicy())
		ctl.Start()
		cl.Run(20 * time.Millisecond)
		m.Running = false
		cl.Run(20 * time.Millisecond)
		return ctl.Log, srv.Migrations, srv.FlowsMigrated, m.Msgs.Total()
	}
	l1, g1, f1, m1 := run()
	l2, g2, f2, m2 := run()
	if g1 != g2 || f1 != f2 || m1 != m2 {
		t.Fatalf("runs diverged: migrations %d/%d flows %d/%d msgs %d/%d", g1, g2, f1, f2, m1, m2)
	}
	if len(l1) != len(l2) {
		t.Fatalf("controller logs diverged: %d vs %d events", len(l1), len(l2))
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("controller log event %d diverged: %+v vs %+v", i, l1[i], l2[i])
		}
	}
}
