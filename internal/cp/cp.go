// Package cp implements the IX control plane (§4.1): the IXCP policy
// daemon that, together with the Linux kernel, owns coarse-grained
// resource allocation — cores, large-page memory and NIC hardware queues
// — across dataplanes. The paper implements the mechanisms and leaves
// dynamic policies to future work (§6); this package provides both the
// mechanism plumbing and a working elastic-thread policy: it watches NIC-
// edge queue depths and core utilization and grows or shrinks a
// dataplane's elastic thread set, driving the RSS re-balancing and flow
// migration implemented in the dataplane.
package cp

import (
	"fmt"
	"time"

	"ix/internal/core"
	"ix/internal/dune"
	"ix/internal/sim"
	"ix/internal/stats"
)

// Policy parameterizes the elastic scaling loop.
type Policy struct {
	// Interval between policy evaluations (coarse-grained, §4.4).
	Interval time.Duration
	// AddQueueDepth: grow when any RX ring holds at least this many
	// frames at evaluation time (congestion building at the NIC edge).
	AddQueueDepth int
	// AddUtil: grow when average core utilization over the last
	// interval reaches this fraction (saturation without ring growth —
	// closed-loop clients adapt their rate to the server).
	AddUtil float64
	// RemoveUtil: shrink when average core utilization over the last
	// interval falls below this fraction.
	RemoveUtil float64
	// ShrinkGuard uses the smoothed cycles-per-packet estimate to veto a
	// shrink that would immediately saturate the survivors: the projected
	// post-shrink utilization (this window's packet count × the EWMA of
	// ns-per-packet, spread over one fewer thread) must stay below
	// ShrinkGuard × AddUtil. The EWMA — not the same window's
	// measurement, whose terms would cancel back to plain utilization —
	// is what makes this a service-time signal: a low-load window is
	// judged against the cost per packet the dataplane has recently
	// demonstrated, not against its own noisy sample. Zero disables the
	// guard.
	ShrinkGuard float64
	// MinThreads/MaxThreads bound the allocation.
	MinThreads, MaxThreads int
	// Cooldown intervals after a change before acting again.
	Cooldown int
	// MaxInterval, when above Interval, makes the sampling cadence
	// load-adaptive: while the dataplane is idle (no packets, empty
	// rings, near-zero utilization) the controller doubles its interval
	// toward this bound, cutting the idle cluster's event load; the
	// first sample that shows load snaps the cadence back to Interval.
	// Zero keeps the fixed cadence.
	MaxInterval time.Duration
}

// DefaultPolicy returns a conservative elastic policy.
func DefaultPolicy() Policy {
	return Policy{
		Interval:      500 * time.Microsecond,
		AddQueueDepth: 96,
		AddUtil:       0.9,
		// RemoveUtil can sit fairly high because the cycles-per-packet
		// shrink guard below vetoes any shrink the measured service time
		// says would immediately re-saturate the survivors.
		RemoveUtil:  0.45,
		ShrinkGuard: 0.8,
		MinThreads:  1,
		Cooldown:    4,
		MaxInterval: 4 * time.Millisecond,
	}
}

// Sample is one policy-interval observation of the managed dataplane —
// the control plane's view of the queue-depth and cycles-per-packet
// signals the dataplane exports (§3).
type Sample struct {
	At      sim.Time
	Threads int
	// Window is the observation interval this sample covers (equal to
	// Policy.Interval under load; longer while the adaptive cadence is
	// backed off on an idle cluster). Rates and per-packet figures are
	// computed over it.
	Window time.Duration
	// AvgUtil is the mean busy fraction across elastic threads.
	AvgUtil float64
	// MaxDepth is the deepest RX descriptor ring (NIC-edge queueing).
	MaxDepth int
	// Pkts is packets delivered during the interval; PPS its rate.
	Pkts uint64
	PPS  float64
	// NsPerPkt is busy time per delivered packet over the interval — the
	// cycles-per-packet signal (service time including batching
	// amortization).
	NsPerPkt time.Duration
}

// Event records one control plane action, for inspection and tests.
type Event struct {
	At      sim.Time
	Action  string
	Threads int
}

// Controller is IXCP: one instance manages one dataplane.
type Controller struct {
	eng    *sim.Engine
	dp     *core.Dataplane
	policy Policy

	// Domain is the control plane's protection domain (VMX root).
	Domain dune.Domain

	cooldown int
	stopped  bool
	prevRx   uint64
	// interval is the current sampling cadence; lastAt stamps the last
	// observation (the adaptive-cadence window bookkeeping).
	interval time.Duration
	lastAt   sim.Time
	// svcEWMA is the exponentially smoothed ns-per-packet estimate
	// (α = 1/8), the service-time signal behind the shrink guard.
	svcEWMA time.Duration

	// Log of actions taken.
	Log []Event
	// History holds one Sample per policy interval (telemetry for the
	// elastic-scaling harness and tests).
	History []Sample
	// SvcTime is the distribution of the per-interval cycles-per-packet
	// signal over the run.
	SvcTime *stats.Histogram
	// NonResponsive counts §4.5 timeout-interrupt reports.
	NonResponsive int
}

// New builds a controller for dp.
func New(eng *sim.Engine, dp *core.Dataplane, policy Policy) *Controller {
	if policy.Interval <= 0 {
		policy.Interval = DefaultPolicy().Interval
	}
	if policy.MaxThreads <= 0 {
		policy.MaxThreads = dp.MaxThreads()
	}
	if policy.MinThreads <= 0 {
		policy.MinThreads = 1
	}
	return &Controller{
		eng:      eng,
		dp:       dp,
		policy:   policy,
		interval: policy.Interval,
		Domain:   dune.Domain{Name: "ixcp", Ring: dune.RingVMXRoot0},
		SvcTime:  stats.NewHistogram(),
	}
}

// Policy returns the controller's active policy.
func (c *Controller) Policy() Policy { return c.policy }

// ReportNonResponsive is the dataplane's §4.5 notification hook.
func (c *Controller) ReportNonResponsive(thread int) {
	c.NonResponsive++
	c.Log = append(c.Log, Event{At: c.eng.Now(), Action: fmt.Sprintf("non-responsive thread %d", thread), Threads: c.dp.Threads()})
}

// Start begins the periodic policy loop.
func (c *Controller) Start() {
	c.resetWindow()
	c.interval = c.policy.Interval
	c.lastAt = c.eng.Now()
	c.eng.After(c.interval, c.tick)
}

// Stop halts the loop.
func (c *Controller) Stop() { c.stopped = true }

func (c *Controller) resetWindow() {
	for i := 0; i < c.dp.Threads(); i++ {
		c.dp.Thread(i).ResetUtilWindow()
	}
}

// observe gathers one interval's signals from the dataplane.
func (c *Controller) observe() Sample {
	s := Sample{At: c.eng.Now(), Threads: c.dp.Threads()}
	s.Window = time.Duration(s.At - c.lastAt)
	if s.Window <= 0 {
		s.Window = c.policy.Interval
	}
	c.lastAt = s.At
	var utilSum float64
	var rx uint64
	for i := 0; i < s.Threads; i++ {
		et := c.dp.Thread(i)
		if d := et.RxQueueLen(); d > s.MaxDepth {
			s.MaxDepth = d
		}
		utilSum += et.CoreUtilization()
		rx += et.RxPackets
	}
	s.AvgUtil = utilSum / float64(s.Threads)
	// Per-thread RxPackets are cumulative; a removed thread takes its
	// count with it, so clamp the window on shrink.
	if rx < c.prevRx {
		c.prevRx = rx
	}
	s.Pkts = rx - c.prevRx
	c.prevRx = rx
	s.PPS = stats.Rate(s.Pkts, s.Window)
	if s.Pkts > 0 {
		busy := time.Duration(utilSum * float64(s.Window))
		s.NsPerPkt = busy / time.Duration(s.Pkts)
		c.SvcTime.Record(s.NsPerPkt)
		if c.svcEWMA == 0 {
			c.svcEWMA = s.NsPerPkt
		} else {
			c.svcEWMA += (s.NsPerPkt - c.svcEWMA) / 8
		}
	}
	c.History = append(c.History, s)
	return s
}

// SvcEWMA returns the smoothed cycles-per-packet estimate (zero until
// the first packet-carrying interval).
func (c *Controller) SvcEWMA() time.Duration { return c.svcEWMA }

func (c *Controller) tick() {
	if c.stopped {
		return
	}
	defer func() { c.eng.After(c.interval, c.tick) }()
	s := c.observe()
	c.adaptInterval(s)
	if c.cooldown > 0 {
		c.cooldown--
		c.resetWindow()
		return
	}
	n := s.Threads
	grow := s.MaxDepth >= c.policy.AddQueueDepth ||
		(c.policy.AddUtil > 0 && s.AvgUtil >= c.policy.AddUtil)
	shrink := s.AvgUtil < c.policy.RemoveUtil && n > c.policy.MinThreads
	if shrink && c.policy.ShrinkGuard > 0 && c.policy.AddUtil > 0 && c.svcEWMA > 0 && n > 1 {
		// Cycles-per-packet veto: would this window's packet load, at the
		// service time the dataplane has recently demonstrated (EWMA, not
		// this window's own noisy sample), saturate one fewer thread?
		projected := float64(s.Pkts) * float64(c.svcEWMA) /
			(float64(n-1) * float64(c.policy.Interval))
		if projected >= c.policy.ShrinkGuard*c.policy.AddUtil {
			shrink = false
		}
	}
	switch {
	case grow && n < c.policy.MaxThreads:
		if err := c.dp.AddElasticThread(); err == nil {
			c.Log = append(c.Log, Event{At: c.eng.Now(), Action: "add", Threads: c.dp.Threads()})
			c.cooldown = c.policy.Cooldown
		}
	case shrink:
		if err := c.dp.RemoveElasticThread(); err == nil {
			c.Log = append(c.Log, Event{At: c.eng.Now(), Action: "remove", Threads: c.dp.Threads()})
			c.cooldown = c.policy.Cooldown
		}
	}
	c.resetWindow()
}

// adaptInterval applies the load-adaptive sampling cadence: back off
// toward MaxInterval while the dataplane is idle, snap back to Interval
// the moment a sample carries load. With the engine's hot paths now much
// faster, a fixed fine-grained cadence is a measurable share of an idle
// cluster's event load.
func (c *Controller) adaptInterval(s Sample) {
	if c.policy.MaxInterval <= c.policy.Interval {
		return
	}
	idle := s.Pkts == 0 && s.MaxDepth == 0 && s.AvgUtil < 0.01
	if idle {
		c.interval *= 2
		if c.interval > c.policy.MaxInterval {
			c.interval = c.policy.MaxInterval
		}
	} else {
		c.interval = c.policy.Interval
	}
}

// Interval reports the controller's current sampling cadence.
func (c *Controller) Interval() time.Duration { return c.interval }

// Threads reports the managed dataplane's current elastic thread count.
func (c *Controller) Threads() int { return c.dp.Threads() }
