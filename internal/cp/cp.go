// Package cp implements the IX control plane (§4.1): the IXCP policy
// daemon that, together with the Linux kernel, owns coarse-grained
// resource allocation — cores, large-page memory and NIC hardware queues
// — across dataplanes. The paper implements the mechanisms and leaves
// dynamic policies to future work (§6); this package provides both the
// mechanism plumbing and a working elastic-thread policy: it watches NIC-
// edge queue depths and core utilization and grows or shrinks a
// dataplane's elastic thread set, driving the RSS re-balancing and flow
// migration implemented in the dataplane.
package cp

import (
	"fmt"
	"time"

	"ix/internal/core"
	"ix/internal/dune"
	"ix/internal/sim"
)

// Policy parameterizes the elastic scaling loop.
type Policy struct {
	// Interval between policy evaluations (coarse-grained, §4.4).
	Interval time.Duration
	// AddQueueDepth: grow when any RX ring holds at least this many
	// frames at evaluation time (congestion building at the NIC edge).
	AddQueueDepth int
	// AddUtil: grow when average core utilization over the last
	// interval reaches this fraction (saturation without ring growth —
	// closed-loop clients adapt their rate to the server).
	AddUtil float64
	// RemoveUtil: shrink when average core utilization over the last
	// interval falls below this fraction.
	RemoveUtil float64
	// MinThreads/MaxThreads bound the allocation.
	MinThreads, MaxThreads int
	// Cooldown intervals after a change before acting again.
	Cooldown int
}

// DefaultPolicy returns a conservative elastic policy.
func DefaultPolicy() Policy {
	return Policy{
		Interval:      500 * time.Microsecond,
		AddQueueDepth: 96,
		AddUtil:       0.9,
		RemoveUtil:    0.25,
		MinThreads:    1,
		Cooldown:      4,
	}
}

// Event records one control plane action, for inspection and tests.
type Event struct {
	At      sim.Time
	Action  string
	Threads int
}

// Controller is IXCP: one instance manages one dataplane.
type Controller struct {
	eng    *sim.Engine
	dp     *core.Dataplane
	policy Policy

	// Domain is the control plane's protection domain (VMX root).
	Domain dune.Domain

	cooldown int
	stopped  bool

	// Log of actions taken.
	Log []Event
	// NonResponsive counts §4.5 timeout-interrupt reports.
	NonResponsive int
}

// New builds a controller for dp.
func New(eng *sim.Engine, dp *core.Dataplane, policy Policy) *Controller {
	if policy.Interval <= 0 {
		policy.Interval = DefaultPolicy().Interval
	}
	if policy.MaxThreads <= 0 {
		policy.MaxThreads = dp.MaxThreads()
	}
	if policy.MinThreads <= 0 {
		policy.MinThreads = 1
	}
	return &Controller{
		eng:    eng,
		dp:     dp,
		policy: policy,
		Domain: dune.Domain{Name: "ixcp", Ring: dune.RingVMXRoot0},
	}
}

// ReportNonResponsive is the dataplane's §4.5 notification hook.
func (c *Controller) ReportNonResponsive(thread int) {
	c.NonResponsive++
	c.Log = append(c.Log, Event{At: c.eng.Now(), Action: fmt.Sprintf("non-responsive thread %d", thread), Threads: c.dp.Threads()})
}

// Start begins the periodic policy loop.
func (c *Controller) Start() {
	c.resetWindow()
	c.eng.After(c.policy.Interval, c.tick)
}

// Stop halts the loop.
func (c *Controller) Stop() { c.stopped = true }

func (c *Controller) resetWindow() {
	for i := 0; i < c.dp.Threads(); i++ {
		c.dp.Thread(i).ResetUtilWindow()
	}
}

func (c *Controller) tick() {
	if c.stopped {
		return
	}
	defer c.eng.After(c.policy.Interval, c.tick)
	if c.cooldown > 0 {
		c.cooldown--
		c.resetWindow()
		return
	}
	maxDepth := 0
	var utilSum float64
	n := c.dp.Threads()
	for i := 0; i < n; i++ {
		et := c.dp.Thread(i)
		if d := et.RxQueueLen(); d > maxDepth {
			maxDepth = d
		}
		utilSum += et.CoreUtilization()
	}
	avgUtil := utilSum / float64(n)
	grow := maxDepth >= c.policy.AddQueueDepth ||
		(c.policy.AddUtil > 0 && avgUtil >= c.policy.AddUtil)
	switch {
	case grow && n < c.policy.MaxThreads:
		if err := c.dp.AddElasticThread(); err == nil {
			c.Log = append(c.Log, Event{At: c.eng.Now(), Action: "add", Threads: c.dp.Threads()})
			c.cooldown = c.policy.Cooldown
		}
	case avgUtil < c.policy.RemoveUtil && n > c.policy.MinThreads:
		if err := c.dp.RemoveElasticThread(); err == nil {
			c.Log = append(c.Log, Event{At: c.eng.Now(), Action: "remove", Threads: c.dp.Threads()})
			c.cooldown = c.policy.Cooldown
		}
	}
	c.resetWindow()
}

// Threads reports the managed dataplane's current elastic thread count.
func (c *Controller) Threads() int { return c.dp.Threads() }
