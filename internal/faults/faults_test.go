package faults

import (
	"testing"
	"time"

	"ix/internal/fabric"
	"ix/internal/sim"
	"ix/internal/wire"
)

// collector is an endpoint recording delivery order and releasing frames.
type collector struct {
	eng    *sim.Engine
	seqs   []int // sequence tags parsed from the frame payload
	times  []sim.Time
	frames int
}

func (c *collector) Deliver(f *fabric.Frame) {
	c.frames++
	if len(f.Data) >= tcpOff+2 {
		c.seqs = append(c.seqs, int(f.Data[tcpOff])<<8|int(f.Data[tcpOff+1]))
	}
	c.times = append(c.times, c.eng.Now())
	f.Release()
}

const tcpOff = wire.EthHdrLen + wire.IPv4HdrLen

// ipFrame builds a minimal IPv4 frame with a 2-byte sequence tag in the
// transport region so corruption targeting stays past the IP header.
func ipFrame(pool *fabric.FramePool, seq int) *fabric.Frame {
	f := pool.Get(tcpOff + 32)
	for i := range f.Data {
		f.Data[i] = 0
	}
	f.Data[12] = byte(wire.EtherTypeIPv4 >> 8)
	f.Data[13] = byte(wire.EtherTypeIPv4 & 0xff)
	f.Data[tcpOff] = byte(seq >> 8)
	f.Data[tcpOff+1] = byte(seq)
	return f
}

func feed(eng *sim.Engine, in *Injector, pool *fabric.FramePool, n int) {
	for i := 0; i < n; i++ {
		in.Deliver(ipFrame(pool, i))
	}
	eng.Run()
}

func TestBernoulliLossRateAndNoLeak(t *testing.T) {
	eng := sim.NewEngine(1)
	rx := &collector{eng: eng}
	in := Wrap(eng, rx, 7)
	in.Apply(Config{LossP: 0.3})
	pool := fabric.NewFramePool()
	const n = 10000
	feed(eng, in, pool, n)
	st := in.Stats()
	if st.Dropped+st.Delivered != n {
		t.Fatalf("dropped %d + delivered %d != %d", st.Dropped, st.Delivered, n)
	}
	rate := float64(st.Dropped) / n
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("loss rate %.3f, want ~0.30", rate)
	}
	if pool.InUse() != 0 {
		t.Fatalf("%d frames leaked", pool.InUse())
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	eng := sim.NewEngine(1)
	rx := &collector{eng: eng}
	in := Wrap(eng, rx, 11)
	in.Apply(Config{GE: GELoss(0.05)})
	pool := fabric.NewFramePool()
	const n = 60000
	// Track drop runs to verify burstiness (mean run length > Bernoulli's).
	drops := 0
	runs, runLen := 0, 0
	var lens []int
	for i := 0; i < n; i++ {
		before := in.Stats().Dropped
		in.Deliver(ipFrame(pool, i))
		if in.Stats().Dropped > before {
			drops++
			runLen++
		} else if runLen > 0 {
			runs++
			lens = append(lens, runLen)
			runLen = 0
		}
	}
	eng.Run()
	rate := float64(drops) / n
	if rate < 0.035 || rate > 0.065 {
		t.Fatalf("GE loss rate %.3f, want ~0.05", rate)
	}
	mean := 0.0
	for _, l := range lens {
		mean += float64(l)
	}
	mean /= float64(runs)
	// A Bernoulli channel at 5% has mean run length ~1.05; the bursty
	// channel's runs are much longer.
	if mean < 1.5 {
		t.Fatalf("mean drop-run length %.2f — not bursty", mean)
	}
	if pool.InUse() != 0 {
		t.Fatalf("%d frames leaked", pool.InUse())
	}
}

func TestDuplicationCopiesFrames(t *testing.T) {
	eng := sim.NewEngine(1)
	rx := &collector{eng: eng}
	in := Wrap(eng, rx, 3)
	in.Apply(Config{DupP: 1.0})
	pool := fabric.NewFramePool()
	feed(eng, in, pool, 4)
	if rx.frames != 8 {
		t.Fatalf("delivered %d frames, want 8 (every frame doubled)", rx.frames)
	}
	if pool.InUse() != 0 {
		t.Fatalf("%d frames leaked (duplicate released a pooled frame twice?)", pool.InUse())
	}
	// Duplicates carry the same sequence tags as their originals.
	counts := map[int]int{}
	for _, s := range rx.seqs {
		counts[s]++
	}
	for s, c := range counts {
		if c != 2 {
			t.Fatalf("seq %d delivered %d times, want 2", s, c)
		}
	}
}

func TestCorruptionFlipsTransportBits(t *testing.T) {
	eng := sim.NewEngine(1)
	var got []byte
	rx := endpointFunc(func(f *fabric.Frame) {
		got = append([]byte(nil), f.Data...)
		f.Release()
	})
	in := Wrap(eng, rx, 5)
	in.Apply(Config{CorruptP: 1.0})
	pool := fabric.NewFramePool()
	orig := ipFrame(pool, 1)
	want := append([]byte(nil), orig.Data...)
	in.Deliver(orig)
	eng.Run()
	if in.Stats().Corrupted != 1 {
		t.Fatalf("corrupted = %d, want 1", in.Stats().Corrupted)
	}
	diff, diffAt := 0, -1
	for i := range got {
		if got[i] != want[i] {
			diff++
			diffAt = i
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	if diffAt < tcpOff {
		t.Fatalf("corruption at offset %d — inside L2/L3 headers", diffAt)
	}
	// Non-IPv4 frames (ARP) are never touched.
	arp := pool.Get(42)
	for i := range arp.Data {
		arp.Data[i] = 0xaa
	}
	in.Deliver(arp)
	eng.Run()
	if in.Stats().Corrupted != 1 {
		t.Fatal("non-IPv4 frame was corrupted")
	}
}

type endpointFunc func(*fabric.Frame)

func (fn endpointFunc) Deliver(f *fabric.Frame) { fn(f) }

func TestJitterReorders(t *testing.T) {
	eng := sim.NewEngine(1)
	rx := &collector{eng: eng}
	in := Wrap(eng, rx, 9)
	in.Apply(Config{JitterP: 0.5, Jitter: 50 * time.Microsecond})
	pool := fabric.NewFramePool()
	const n = 200
	for i := 0; i < n; i++ {
		in.Deliver(ipFrame(pool, i))
		eng.RunFor(time.Microsecond) // spread arrivals so delays overtake
	}
	eng.Run()
	if rx.frames != n {
		t.Fatalf("delivered %d frames, want %d (jitter must not drop)", rx.frames, n)
	}
	inversions := 0
	for i := 1; i < len(rx.seqs); i++ {
		if rx.seqs[i] < rx.seqs[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("jitter produced no reordering")
	}
	if pool.InUse() != 0 {
		t.Fatalf("%d frames leaked", pool.InUse())
	}
}

func TestDownDropsEverythingAndHeals(t *testing.T) {
	eng := sim.NewEngine(1)
	rx := &collector{eng: eng}
	in := Wrap(eng, rx, 1)
	in.Apply(Config{Down: true})
	pool := fabric.NewFramePool()
	feed(eng, in, pool, 10)
	if rx.frames != 0 {
		t.Fatalf("%d frames crossed a down link", rx.frames)
	}
	in.Apply(Config{})
	feed(eng, in, pool, 10)
	if rx.frames != 10 {
		t.Fatalf("healed link delivered %d, want 10", rx.frames)
	}
	if pool.InUse() != 0 {
		t.Fatalf("%d frames leaked", pool.InUse())
	}
}

func TestPlanScheduleAppliesSteps(t *testing.T) {
	eng := sim.NewEngine(1)
	rx := &collector{eng: eng}
	in := Wrap(eng, rx, 1)
	in.Schedule(Flap(100*time.Microsecond, 50*time.Microsecond, 200*time.Microsecond, 2))
	pool := fabric.NewFramePool()
	// One frame every 10µs for 500µs: outages at [100,150) and [300,350).
	for i := 0; i < 50; i++ {
		eng.RunUntil(sim.Time(i * 10_000))
		in.Deliver(ipFrame(pool, i))
	}
	eng.Run()
	if in.Stats().Dropped != 10 {
		t.Fatalf("dropped %d frames, want 10 (two 50µs outages)", in.Stats().Dropped)
	}
	if rx.frames != 40 {
		t.Fatalf("delivered %d, want 40", rx.frames)
	}
}

// TestDeterministicSchedule: identical seeds make identical decisions;
// different seeds diverge.
func TestDeterministicSchedule(t *testing.T) {
	run := func(seed uint64) []int {
		eng := sim.NewEngine(1)
		rx := &collector{eng: eng}
		in := Wrap(eng, rx, seed)
		in.Apply(Config{GE: GELoss(0.10), DupP: 0.05, CorruptP: 0.02,
			JitterP: 0.1, Jitter: 20 * time.Microsecond})
		pool := fabric.NewFramePool()
		for i := 0; i < 2000; i++ {
			in.Deliver(ipFrame(pool, i))
			eng.RunFor(500 * time.Nanosecond)
		}
		eng.Run()
		if pool.InUse() != 0 {
			t.Fatalf("%d frames leaked", pool.InUse())
		}
		return append([]int(nil), rx.seqs...)
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("same seed, different delivery counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at delivery %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}
