package faults

import (
	"testing"

	"ix/internal/fabric"
	"ix/internal/sim"
)

// TestZeroAllocFaultFreePath: an attached injector with no impairment
// configured adds zero heap allocations per frame — instrumenting every
// link of a cluster for later fault injection costs the fault-free
// figure benchmarks nothing.
func TestZeroAllocFaultFreePath(t *testing.T) {
	eng := sim.NewEngine(1)
	l := fabric.NewLink(eng, 10*fabric.Gbps, 0)
	rx := releaser{}
	l.Port(1).Attach(rx)
	in := Interpose(eng, l.Port(1), 99)
	pool := fabric.NewFramePool()

	// Warm the pool and the engine's event free list.
	for i := 0; i < 64; i++ {
		l.Port(0).Send(pool.Get(1000))
	}
	eng.Run()

	const frames = 100
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < frames; i++ {
			l.Port(0).Send(pool.Get(1000))
		}
		eng.Run()
	})
	if allocs != 0 {
		t.Fatalf("fault-free path allocates %.2f per %d frames, want 0", allocs, frames)
	}
	// Pass-through must not even touch the stats (that is the whole
	// point of the fast path).
	if got := in.Stats().Delivered; got != 0 {
		t.Fatalf("fast path updated stats (%d delivered)", got)
	}
	if pool.InUse() != 0 {
		t.Fatalf("%d frames leaked", pool.InUse())
	}
}

type releaser struct{}

func (releaser) Deliver(f *fabric.Frame) { f.Release() }
