// Package faults is the deterministic link-impairment layer: it
// interposes on fabric frame delivery (via Port.Interpose) and applies
// configurable impairments — Bernoulli and Gilbert–Elliott burst loss,
// duplication, reordering via jitter, payload corruption (caught by the
// RFC 1071 checksum at the receiving stack), and link down/flap — to
// every frame crossing the wrapped direction of a link.
//
// Determinism contract: every random decision comes from the injector's
// own seeded PRNG, consulted in frame-delivery order, which the engine's
// stable (time, sequence) event order makes reproducible; a fixed seed
// therefore yields a byte-identical fault schedule and byte-identical
// experiment output. An attached injector with no active impairment
// draws nothing from the PRNG and adds zero allocations per frame
// (TestZeroAllocFaultFreePath), so instrumented and bare topologies
// behave identically until a fault is configured.
//
// Frame-ownership rules (the moral contract with fabric.FramePool):
//
//   - pass-through and delayed frames are delivered exactly once, so
//     the downstream endpoint releases them as usual;
//   - dropped frames are released by the injector (it is the consumer,
//     like a full NIC ring);
//   - duplicates are fresh unpooled frames carrying a copy of the
//     bytes — the original's buffer is never aliased, so its recycling
//     is unaffected;
//   - corruption mutates bytes in place on a frame the injector is
//     about to deliver and still owns; pooled buffers are rewritten in
//     full by the next sender, so no corruption outlives the frame.
package faults

import (
	"math/rand"
	"time"

	"ix/internal/fabric"
	"ix/internal/sim"
	"ix/internal/wire"
)

// GE parameterizes a Gilbert–Elliott two-state burst-loss channel: the
// chain moves Good→Bad with probability PGoodBad per frame and Bad→Good
// with PBadGood; frames drop with probability LossGood in the good state
// and LossBad in the bad state. The stationary loss rate is
// LossBad·PGoodBad/(PGoodBad+PBadGood) (+ the LossGood term).
type GE struct {
	PGoodBad, PBadGood float64
	LossGood, LossBad  float64
}

// GELoss returns a bursty channel with the given average loss rate:
// bursts drop 75% of frames and last ~5 frames on average.
func GELoss(avg float64) *GE {
	const lossBad, pBadGood = 0.75, 0.2
	// avg = lossBad * pB, pB = pgb/(pgb+pbg)  →  pgb solved below.
	pB := avg / lossBad
	pgb := pB * pBadGood / (1 - pB)
	return &GE{PGoodBad: pgb, PBadGood: pBadGood, LossBad: lossBad}
}

// Config is one impairment setting for one direction of a link. The zero
// value is a clean wire.
type Config struct {
	// LossP drops each frame independently (Bernoulli).
	LossP float64
	// GE, when set, drives burst loss instead of (in addition to) LossP.
	GE *GE
	// DupP delivers an extra copy of the frame (a fresh unpooled frame
	// carrying copied bytes).
	DupP float64
	// CorruptP flips one bit in the frame's transport bytes; the
	// receiving stack's RFC 1071 checksum verification drops the
	// segment and counts BadChecksums.
	CorruptP float64
	// JitterP delays a frame by a uniform [0, Jitter] extra latency,
	// letting later frames overtake it (reordering).
	JitterP float64
	Jitter  time.Duration
	// Down drops everything: link failure / switch-port partition.
	Down bool
}

// active reports whether the config impairs anything.
func (c *Config) active() bool {
	return c.Down || c.LossP > 0 || c.GE != nil || c.DupP > 0 || c.CorruptP > 0 ||
		(c.JitterP > 0 && c.Jitter > 0)
}

// Stats counts impairment decisions.
type Stats struct {
	Delivered uint64 // frames passed through (possibly corrupted/delayed)
	Dropped   uint64 // loss + down drops
	Duplicated,
	Corrupted,
	Delayed uint64
}

// add accumulates.
func (s *Stats) add(o Stats) {
	s.Delivered += o.Delivered
	s.Dropped += o.Dropped
	s.Duplicated += o.Duplicated
	s.Corrupted += o.Corrupted
	s.Delayed += o.Delayed
}

// Injector impairs one direction of one link. It implements
// fabric.Endpoint and wraps the endpoint previously attached to a port.
type Injector struct {
	eng   *sim.Engine
	rng   *rand.Rand
	inner fabric.Endpoint

	cfg    Config
	on     bool // cfg.active(), cached for the per-frame fast path
	geBad  bool // Gilbert–Elliott channel state
	stats  Stats
	heldFn func(any) // bound deliverHeld (method values allocate per use)
}

// Interpose attaches a new injector in front of the port's endpoint and
// returns it. The injector starts clean (pass-through).
func Interpose(eng *sim.Engine, p *fabric.Port, seed uint64) *Injector {
	in := newInjector(eng, seed)
	p.Interpose(func(ep fabric.Endpoint) fabric.Endpoint {
		in.inner = ep
		return in
	})
	return in
}

// Wrap interposes the injector in front of an arbitrary endpoint (tests).
func Wrap(eng *sim.Engine, ep fabric.Endpoint, seed uint64) *Injector {
	in := newInjector(eng, seed)
	in.inner = ep
	return in
}

func newInjector(eng *sim.Engine, seed uint64) *Injector {
	// Splitmix-style scramble so adjacent caller seeds (host i, host
	// i+1) land in unrelated stream positions.
	seed = (seed + 0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9
	in := &Injector{eng: eng, rng: rand.New(rand.NewSource(int64(seed)))}
	in.heldFn = in.deliverHeld
	return in
}

// Apply replaces the active impairment. The Gilbert–Elliott channel
// state resets to good.
func (in *Injector) Apply(cfg Config) {
	in.cfg = cfg
	in.on = cfg.active()
	in.geBad = false
}

// Stats returns the impairment counters.
func (in *Injector) Stats() Stats { return in.stats }

// Deliver implements fabric.Endpoint. With no impairment configured this
// is a tail call into the wrapped endpoint: no branch draws from the
// PRNG and nothing allocates.
//
//ix:hotpath
func (in *Injector) Deliver(f *fabric.Frame) {
	if !in.on {
		in.inner.Deliver(f)
		return
	}
	in.impair(f)
}

// impair runs the configured impairments in order: down, loss, corrupt,
// duplicate, jitter.
func (in *Injector) impair(f *fabric.Frame) {
	cfg := &in.cfg
	if cfg.Down {
		in.stats.Dropped++
		f.Release()
		return
	}
	if ge := cfg.GE; ge != nil {
		// Advance the channel, then draw the state's loss probability.
		if in.geBad {
			if in.rng.Float64() < ge.PBadGood {
				in.geBad = false
			}
		} else if in.rng.Float64() < ge.PGoodBad {
			in.geBad = true
		}
		p := ge.LossGood
		if in.geBad {
			p = ge.LossBad
		}
		if p > 0 && in.rng.Float64() < p {
			in.stats.Dropped++
			f.Release()
			return
		}
	}
	if cfg.LossP > 0 && in.rng.Float64() < cfg.LossP {
		in.stats.Dropped++
		f.Release()
		return
	}
	if cfg.CorruptP > 0 && in.rng.Float64() < cfg.CorruptP {
		if in.corrupt(f) {
			in.stats.Corrupted++
		}
	}
	if cfg.DupP > 0 && in.rng.Float64() < cfg.DupP {
		// The duplicate is an unpooled copy so the original's pooled
		// buffer is never aliased; it trails the original by nothing
		// (same instant, later sequence number).
		dup := fabric.NewFrame(append([]byte(nil), f.Data...))
		dup.SentAt = f.SentAt
		in.stats.Duplicated++
		in.eng.Call(in.eng.Now(), in.heldFn, dup)
	}
	if cfg.JitterP > 0 && cfg.Jitter > 0 && in.rng.Float64() < cfg.JitterP {
		d := time.Duration(in.rng.Int63n(int64(cfg.Jitter)) + 1)
		in.stats.Delayed++
		in.eng.Call(in.eng.Now().Add(d), in.heldFn, f)
		return
	}
	in.stats.Delivered++
	in.inner.Deliver(f)
}

// deliverHeld is the trampoline for delayed frames and duplicates. It
// bypasses the impairment pipeline: a held frame already paid its tolls.
func (in *Injector) deliverHeld(a any) {
	in.stats.Delivered++
	in.inner.Deliver(a.(*fabric.Frame))
}

// corrupt flips one bit in the frame's transport region (past the IP
// header, so L2/L3 routing and classification still work and the damage
// is caught by the transport checksum). Non-IPv4 frames — ARP, whose
// replicated broadcast payloads are aliased across frames — are left
// alone; reports whether a bit was flipped.
func (in *Injector) corrupt(f *fabric.Frame) bool {
	const hdr = wire.EthHdrLen + wire.IPv4HdrLen
	d := f.Data
	if len(d) <= hdr+1 || uint16(d[12])<<8|uint16(d[13]) != wire.EtherTypeIPv4 {
		return false
	}
	i := hdr + in.rng.Intn(len(d)-hdr)
	d[i] ^= 1 << uint(in.rng.Intn(8))
	return true
}

// A Step is one timeline entry of a Plan: at At (measured from the
// moment the plan is scheduled), the direction's impairment becomes Cfg.
type Step struct {
	At  time.Duration
	Cfg Config
}

// A Plan is a deterministic impairment timeline. Steps apply in order;
// the last step's config persists until replaced.
type Plan struct {
	Steps []Step
}

// Flap returns a plan that takes the link down at each start for the
// given outage, repeating every period for n cycles, then leaves it up.
func Flap(start, outage, period time.Duration, n int) Plan {
	var p Plan
	for i := 0; i < n; i++ {
		at := start + time.Duration(i)*period
		p.Steps = append(p.Steps, Step{At: at, Cfg: Config{Down: true}})
		p.Steps = append(p.Steps, Step{At: at + outage, Cfg: Config{}})
	}
	return p
}

// Schedule arms the plan's steps on the engine relative to now.
func (in *Injector) Schedule(p Plan) {
	for _, st := range p.Steps {
		cfg := st.Cfg
		in.eng.After(st.At, func() { in.Apply(cfg) })
	}
}

// A Site groups the injectors of one host's links (both directions of
// every cable) so a whole machine can be impaired or partitioned with
// one call — the harness-level attachment point (cluster.Faults).
type Site struct {
	Injectors []*Injector
}

// Apply sets every direction's impairment.
func (s *Site) Apply(cfg Config) {
	for _, in := range s.Injectors {
		in.Apply(cfg)
	}
}

// Schedule arms a plan on every direction.
func (s *Site) Schedule(p Plan) {
	for _, in := range s.Injectors {
		in.Schedule(p)
	}
}

// Partition takes every link of the site down (switch-port partition);
// Heal reverses it.
func (s *Site) Partition() { s.Apply(Config{Down: true}) }

// Heal clears all impairments.
func (s *Site) Heal() { s.Apply(Config{}) }

// Stats aggregates over all directions.
func (s *Site) Stats() Stats {
	var out Stats
	for _, in := range s.Injectors {
		out.add(in.stats)
	}
	return out
}
