package fabric

import (
	"testing"
	"time"

	"ix/internal/sim"
	"ix/internal/wire"
)

type sink struct {
	frames []*Frame
	times  []sim.Time
	eng    *sim.Engine
}

func (s *sink) Deliver(f *Frame) {
	s.frames = append(s.frames, f)
	s.times = append(s.times, s.eng.Now())
}

func TestLinkSerializationAndLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, 10*Gbps, 2*time.Microsecond)
	rx := &sink{eng: eng}
	l.Port(1).Attach(rx)
	// A 1000-byte frame: wire length 1024B → 819.2ns at 10Gbps.
	l.Port(0).Send(NewFrame(make([]byte, 1000)))
	eng.Run()
	if len(rx.frames) != 1 {
		t.Fatal("frame not delivered")
	}
	got := time.Duration(rx.times[0])
	want := time.Duration(float64(wire.WireLen(1000)*8)/(10*Gbps)*1e9) + 2*time.Microsecond
	if got < want-time.Nanosecond || got > want+time.Nanosecond {
		t.Fatalf("arrival = %v, want %v", got, want)
	}
}

func TestLinkBackToBackOrdering(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, 10*Gbps, time.Microsecond)
	rx := &sink{eng: eng}
	l.Port(1).Attach(rx)
	for i := 0; i < 5; i++ {
		l.Port(0).Send(NewFrame(make([]byte, 1500)))
	}
	eng.Run()
	if len(rx.frames) != 5 {
		t.Fatalf("delivered %d frames", len(rx.frames))
	}
	for i := 1; i < 5; i++ {
		gap := rx.times[i] - rx.times[i-1]
		// Gaps equal full serialization time: frames queue behind each
		// other on the transmit side.
		want := time.Duration(float64(wire.WireLen(1500)*8) / (10 * Gbps) * 1e9)
		if time.Duration(gap) < want-time.Nanosecond {
			t.Fatalf("frames overlapped on the wire: gap %v < %v", time.Duration(gap), want)
		}
	}
}

func frameTo(dst, src wire.MAC) []byte {
	f := make([]byte, wire.EthMinFrame)
	(&wire.EthHeader{Dst: dst, Src: src, EtherType: 0x0800}).Marshal(f)
	return f
}

func TestSwitchForwarding(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng)
	macA := wire.MAC{2, 0, 0, 0, 0, 1}
	macB := wire.MAC{2, 0, 0, 0, 0, 2}
	la := NewLink(eng, 10*Gbps, time.Microsecond)
	lb := NewLink(eng, 10*Gbps, time.Microsecond)
	pa := sw.AddPort(la.Port(1))
	pb := sw.AddPort(lb.Port(1))
	sw.Learn(macA, pa)
	sw.Learn(macB, pb)
	rxB := &sink{eng: eng}
	lb.Port(0).Attach(rxB)
	la.Port(0).Send(NewFrame(frameTo(macB, macA)))
	eng.Run()
	if len(rxB.frames) != 1 {
		t.Fatal("frame not switched to B")
	}
	if sw.Forwarded != 1 {
		t.Fatalf("forwarded = %d", sw.Forwarded)
	}
}

func TestSwitchUnknownDstDropped(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng)
	la := NewLink(eng, 10*Gbps, time.Microsecond)
	sw.AddPort(la.Port(1))
	la.Port(0).Send(NewFrame(frameTo(wire.MAC{9, 9, 9, 9, 9, 9}, wire.MAC{1, 1, 1, 1, 1, 1})))
	eng.Run()
	if sw.Flooded != 1 {
		t.Fatalf("flooded = %d, want 1", sw.Flooded)
	}
}

func TestSwitchBroadcast(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng)
	var rxs []*sink
	var links []*Link
	for i := 0; i < 3; i++ {
		l := NewLink(eng, 10*Gbps, time.Microsecond)
		sw.AddPort(l.Port(1))
		rx := &sink{eng: eng}
		l.Port(0).Attach(rx)
		rxs = append(rxs, rx)
		links = append(links, l)
	}
	links[0].Port(0).Send(NewFrame(frameTo(wire.Broadcast, wire.MAC{1, 1, 1, 1, 1, 1})))
	eng.Run()
	if len(rxs[0].frames) != 0 {
		t.Fatal("broadcast echoed to ingress")
	}
	if len(rxs[1].frames) != 1 || len(rxs[2].frames) != 1 {
		t.Fatal("broadcast not replicated")
	}
}

// releaser consumes and immediately releases delivered frames, counting
// them — the well-behaved endpoint for pool-accounting tests.
type releaser struct{ n int }

func (r *releaser) Deliver(f *Frame) { r.n++; f.Release() }

func TestTxBufferTailDrop(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, 10*Gbps, time.Microsecond)
	rx := &releaser{}
	l.Port(1).Attach(rx)
	pool := NewFramePool()
	// Bound the egress to ~4 full frames of wire occupancy.
	l.Port(0).SetTxBuffer(4 * wire.WireLen(1500))
	for i := 0; i < 10; i++ {
		f := pool.Get(1500)
		l.Port(0).Send(f)
	}
	eng.Run()
	if l.Port(0).TxDropped == 0 {
		t.Fatal("bounded egress never tail-dropped")
	}
	if got := rx.n + int(l.Port(0).TxDropped); got != 10 {
		t.Fatalf("delivered %d + dropped %d != 10 sent", rx.n, l.Port(0).TxDropped)
	}
	if pool.InUse() != 0 {
		t.Fatalf("tail drop leaked %d frames from the pool", pool.InUse())
	}
	// Once the queue drains, the buffer accepts frames again.
	f := pool.Get(1500)
	l.Port(0).Send(f)
	eng.Run()
	if pool.InUse() != 0 {
		t.Fatalf("post-drain send leaked %d frames", pool.InUse())
	}
	if rx.n != 10-int(l.Port(0).TxDropped)+1 {
		t.Fatalf("post-drain frame not delivered (rx=%d)", rx.n)
	}
}

func TestFramePoolInUseAccounting(t *testing.T) {
	pool := NewFramePool()
	a, b := pool.Get(100), pool.Get(200)
	if pool.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", pool.InUse())
	}
	a.Release()
	if pool.InUse() != 1 {
		t.Fatalf("InUse = %d after one release, want 1", pool.InUse())
	}
	// Oversized frames are accounted but not recycled.
	big := pool.Get(FrameCap + 1)
	if pool.InUse() != 2 {
		t.Fatalf("InUse = %d with oversized frame, want 2", pool.InUse())
	}
	big.Release()
	b.Release()
	if pool.InUse() != 0 {
		t.Fatalf("InUse = %d at quiescence, want 0", pool.InUse())
	}
	// Recycled buffers do not double-count.
	c := pool.Get(64)
	if pool.InUse() != 1 {
		t.Fatalf("InUse = %d after recycle, want 1", pool.InUse())
	}
	c.Release()
	// Detach (broadcast replication) balances the books.
	d := pool.Get(64)
	d.Detach()
	if pool.InUse() != 0 {
		t.Fatalf("InUse = %d after detach, want 0", pool.InUse())
	}
}

func TestInterposeWrapsDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, 10*Gbps, time.Microsecond)
	rx := &releaser{}
	l.Port(1).Attach(rx)
	seen := 0
	l.Port(1).Interpose(func(ep Endpoint) Endpoint {
		return endpointFunc(func(f *Frame) { seen++; ep.Deliver(f) })
	})
	l.Port(0).Send(NewFrame(make([]byte, 100)))
	eng.Run()
	if seen != 1 || rx.n != 1 {
		t.Fatalf("interposer saw %d, endpoint saw %d; want 1/1", seen, rx.n)
	}
}

type endpointFunc func(*Frame)

func (fn endpointFunc) Deliver(f *Frame) { fn(f) }

func TestBondSpreadsFlows(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng)
	serverMAC := wire.MAC{2, 0, 0, 0, 0, 9}
	in := NewLink(eng, 10*Gbps, time.Microsecond)
	sw.AddPort(in.Port(1))
	var members []int
	var sinks []*sink
	for i := 0; i < 4; i++ {
		l := NewLink(eng, 10*Gbps, time.Microsecond)
		members = append(members, sw.AddPort(l.Port(1)))
		rx := &sink{eng: eng}
		l.Port(0).Attach(rx)
		sinks = append(sinks, rx)
	}
	sw.Bond(serverMAC, members)
	// Many flows: build proper IPv4/TCP frames with distinct ports.
	for port := 0; port < 64; port++ {
		f := make([]byte, wire.EthHdrLen+wire.IPv4HdrLen+wire.TCPHdrLen)
		(&wire.EthHeader{Dst: serverMAC, Src: wire.MAC{1}, EtherType: wire.EtherTypeIPv4}).Marshal(f)
		iph := wire.IPv4Header{TotalLen: uint16(len(f) - wire.EthHdrLen), TTL: 64, Proto: wire.ProtoTCP,
			Src: wire.Addr4(10, 0, 0, 1), Dst: wire.Addr4(10, 0, 0, 2)}
		iph.Marshal(f[wire.EthHdrLen:])
		th := wire.TCPHeader{SrcPort: uint16(30000 + port), DstPort: 80, WScale: -1}
		th.Marshal(f[wire.EthHdrLen+wire.IPv4HdrLen:])
		in.Port(0).Send(NewFrame(f))
	}
	eng.Run()
	spread := 0
	total := 0
	for _, rx := range sinks {
		if len(rx.frames) > 0 {
			spread++
		}
		total += len(rx.frames)
	}
	if total != 64 {
		t.Fatalf("delivered %d frames, want 64", total)
	}
	if spread < 3 {
		t.Fatalf("bond used only %d of 4 members", spread)
	}
}

// TestTenantEgressAccounting: frames from tenant-tagged pools are
// charged to the right per-tenant slot on both the transmit and the
// tail-drop path, the slots always sum to the port totals, and
// recycled frames are restamped from their pool at every allocation.
func TestTenantEgressAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, 10*Gbps, time.Microsecond)
	rx := &releaser{}
	l.Port(1).Attach(rx)
	p1, p2 := NewFramePool(), NewFramePool()
	p1.SetTenant(1)
	p2.SetTenant(2)

	f := p1.Get(100)
	if f.Tenant() != 1 {
		t.Fatalf("tenant = %d, want 1", f.Tenant())
	}
	l.Port(0).Send(f)
	l.Port(0).Send(p2.Get(200))
	l.Port(0).Send(p2.Get(300))
	l.Port(0).Send(NewFrame(make([]byte, 64))) // untagged → slot 0
	eng.Run()

	port := l.Port(0)
	if got := port.TenantTxStats(1); got.Frames != 1 || got.Bytes != 100 {
		t.Fatalf("tenant 1 stats = %+v", got)
	}
	if got := port.TenantTxStats(2); got.Frames != 2 || got.Bytes != 500 {
		t.Fatalf("tenant 2 stats = %+v", got)
	}
	if got := port.TenantTxStats(0); got.Frames != 1 || got.Bytes != 64 {
		t.Fatalf("untagged stats = %+v", got)
	}
	var frames, bytes uint64
	for tag := 0; tag < port.TenantTags(); tag++ {
		s := port.TenantTxStats(tag)
		frames += s.Frames
		bytes += s.Bytes
	}
	if frames != port.TxFrames || bytes != port.TxBytes {
		t.Fatalf("tenant slots (%d frames, %d bytes) != totals (%d, %d)",
			frames, bytes, port.TxFrames, port.TxBytes)
	}

	// Recycled buffers restamp from the pool that reissues them: move
	// p1's recycled frame through p2's books by re-tagging the pool.
	p1.SetTenant(7)
	f2 := p1.Get(64)
	if f2.Tenant() != 7 {
		t.Fatalf("recycled frame tenant = %d, want restamped 7", f2.Tenant())
	}
	f2.Release()

	// Tail drops are charged per tenant too, and the drop slots sum to
	// TxDropped.
	port.SetTxBuffer(2 * wire.WireLen(1500))
	for i := 0; i < 6; i++ {
		port.Send(p1.Get(1500))
	}
	eng.Run()
	if port.TxDropped == 0 {
		t.Fatal("bounded egress never dropped")
	}
	var dropped uint64
	for tag := 0; tag < port.TenantTags(); tag++ {
		dropped += port.TenantTxStats(tag).Dropped
	}
	if dropped != port.TxDropped {
		t.Fatalf("tenant drop slots %d != TxDropped %d", dropped, port.TxDropped)
	}
	if got := port.TenantTxStats(7).Dropped; got != port.TxDropped {
		t.Fatalf("drops charged to tag 7 = %d, want all %d", got, port.TxDropped)
	}
	if p1.InUse() != 0 || p2.InUse() != 0 {
		t.Fatalf("pools leaked: %d/%d", p1.InUse(), p2.InUse())
	}
}

// TestSwitchSealFreezesFDB: the forwarding database is a
// construction-time artifact. Once traffic flows (or Seal is called
// explicitly), Learn/Bond must panic rather than mutate the FDB under
// in-flight frames — on the parallel engine the switch's shard would
// otherwise observe a partially-built table.
func TestSwitchSealFreezesFDB(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng)
	macA := wire.MAC{2, 0, 0, 0, 0, 1}
	macB := wire.MAC{2, 0, 0, 0, 0, 2}
	la := NewLink(eng, 10*Gbps, time.Microsecond)
	lb := NewLink(eng, 10*Gbps, time.Microsecond)
	pa := sw.AddPort(la.Port(1))
	pb := sw.AddPort(lb.Port(1))
	sw.Learn(macA, pa)
	sw.Learn(macB, pb)
	if sw.Sealed() {
		t.Fatal("switch sealed before construction finished")
	}

	// First forwarded frame seals implicitly: in-flight frames and FDB
	// construction can never interleave.
	rxB := &sink{eng: eng}
	lb.Port(0).Attach(rxB)
	la.Port(0).Send(NewFrame(frameTo(macB, macA)))
	eng.Run()
	if len(rxB.frames) != 1 {
		t.Fatal("frame not switched to B")
	}
	if !sw.Sealed() {
		t.Fatal("first forward did not seal the FDB")
	}

	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s after seal did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Learn", func() { sw.Learn(wire.MAC{2, 0, 0, 0, 0, 3}, pa) })
	mustPanic("Bond", func() { sw.Bond(wire.MAC{2, 0, 0, 0, 0, 4}, []int{pa, pb}) })

	// The sealed FDB still forwards.
	la.Port(0).Send(NewFrame(frameTo(macB, macA)))
	eng.Run()
	if len(rxB.frames) != 2 {
		t.Fatal("sealed switch stopped forwarding")
	}
}

// TestSwitchSealExplicit: the harness seals at Start, before any
// traffic, so misconfigured late Learn calls fail at the call site.
func TestSwitchSealExplicit(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng)
	la := NewLink(eng, 10*Gbps, time.Microsecond)
	pa := sw.AddPort(la.Port(1))
	sw.Seal()
	defer func() {
		if recover() == nil {
			t.Fatal("Learn after explicit Seal did not panic")
		}
	}()
	sw.Learn(wire.MAC{2, 0, 0, 0, 0, 9}, pa)
}
