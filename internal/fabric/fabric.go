// Package fabric models the experiment network: full-duplex Ethernet links
// with bandwidth serialization and propagation delay, and a cut-through
// switch (the paper's Quanta/Cumulus 48x10GbE with a Broadcom Trident+
// ASIC) including LACP-style bond groups that hash on L3+L4, which is how
// the 4x10GbE server configuration is built (§5.1).
package fabric

import (
	"fmt"
	"time"

	"ix/internal/sim"
	"ix/internal/wire"
)

// Gbps expresses link bandwidth.
const Gbps = 1e9

// Common datacenter timing constants (§2.2 of the paper).
const (
	// SwitchLatency is a cut-through crossing (a few hundred ns).
	SwitchLatency = 300 * time.Nanosecond
	// PropDelay covers ~100 m of fiber within the datacenter plus PHY.
	PropDelay = 500 * time.Nanosecond
	// NICLatency is the one-way latency through a 10 GbE NIC (the paper
	// quotes 3 µs across a *pair* of NICs, so 1.5 µs each).
	NICLatency = 1500 * time.Nanosecond
)

// A Frame is a packet in flight with its arrival timestamp metadata.
type Frame struct {
	Data []byte
	// SentAt is when the sender posted the frame (for diagnostics).
	SentAt sim.Time
}

// An Endpoint consumes frames delivered by a link.
type Endpoint interface {
	// Deliver is invoked at the frame's arrival time.
	Deliver(f *Frame)
}

// A Port is one side of a link: frames are transmitted by calling Send and
// received through the attached Endpoint.
type Port struct {
	link *Link
	side int
	ep   Endpoint

	busyUntil sim.Time // transmit serialization

	// TxFrames/TxBytes count transmitted traffic.
	TxFrames, TxBytes uint64
}

// Attach sets the endpoint that receives frames arriving at this port.
func (p *Port) Attach(ep Endpoint) { p.ep = ep }

// Peer returns the port at the other end of the link.
func (p *Port) Peer() *Port { return &p.link.ports[1-p.side] }

// Send transmits data out of the port. Serialization at the link rate and
// propagation delay determine the arrival time at the peer endpoint. The
// data is not copied; callers hand over ownership (the simulated DMA
// engine has already copied out of mbufs at the NIC).
func (p *Port) Send(data []byte) {
	l := p.link
	now := l.eng.Now()
	start := now
	if p.busyUntil > start {
		start = p.busyUntil
	}
	ser := l.serialize(len(data))
	depart := start.Add(ser)
	p.busyUntil = depart
	p.TxFrames++
	p.TxBytes += uint64(len(data))
	arrive := depart.Add(l.latency)
	peer := p.Peer()
	f := &Frame{Data: data, SentAt: now}
	l.eng.At(arrive, func() {
		if peer.ep != nil {
			peer.ep.Deliver(f)
		}
	})
}

// Busy returns the time until which the port's transmit side is
// serializing already-queued frames.
func (p *Port) Busy() sim.Time { return p.busyUntil }

// A Link is a full-duplex point-to-point cable.
type Link struct {
	eng     *sim.Engine
	bps     float64
	latency time.Duration
	ports   [2]Port
}

// NewLink creates a link with the given bandwidth (bits/s) and one-way
// propagation latency.
func NewLink(eng *sim.Engine, bps float64, latency time.Duration) *Link {
	l := &Link{eng: eng, bps: bps, latency: latency}
	l.ports[0] = Port{link: l, side: 0}
	l.ports[1] = Port{link: l, side: 1}
	return l
}

// Port returns side i (0 or 1) of the link.
func (l *Link) Port(i int) *Port { return &l.ports[i] }

// serialize returns the wire time of a frame of n L2 bytes, including
// Ethernet preamble/FCS/IFG overhead and minimum-frame padding.
func (l *Link) serialize(n int) time.Duration {
	bits := float64(wire.WireLen(n) * 8)
	return time.Duration(bits / l.bps * 1e9)
}

// A Switch is a store-of-nothing cut-through L2 switch with static MAC
// learning and bond groups. Ports are link endpoints.
type Switch struct {
	eng     *sim.Engine
	latency time.Duration
	ports   []*switchPort
	fdb     map[wire.MAC]int // MAC -> port index
	bonds   map[wire.MAC][]int

	// Forwarded counts frames switched.
	Forwarded uint64
	// Flooded counts frames with unknown destination (dropped: the
	// benchmark topologies never rely on flooding).
	Flooded uint64
}

type switchPort struct {
	sw   *Switch
	idx  int
	port *Port
}

// Deliver implements Endpoint: a frame arriving on a switch port is
// forwarded after the cut-through latency.
func (sp *switchPort) Deliver(f *Frame) {
	sp.sw.forward(sp.idx, f)
}

// NewSwitch creates a switch.
func NewSwitch(eng *sim.Engine) *Switch {
	return &Switch{eng: eng, latency: SwitchLatency, fdb: make(map[wire.MAC]int), bonds: make(map[wire.MAC][]int)}
}

// AddPort connects one side of a link to the switch and returns the port
// index.
func (s *Switch) AddPort(p *Port) int {
	idx := len(s.ports)
	sp := &switchPort{sw: s, idx: idx, port: p}
	p.Attach(sp)
	s.ports = append(s.ports, sp)
	return idx
}

// Learn installs a static FDB entry: frames for mac leave through port
// index idx.
func (s *Switch) Learn(mac wire.MAC, idx int) {
	if idx < 0 || idx >= len(s.ports) {
		panic(fmt.Sprintf("fabric: bad port index %d", idx))
	}
	s.fdb[mac] = idx
}

// Bond declares that frames for mac are distributed across the given port
// indices by an L3+L4 hash (the switch-side half of the paper's 4x10GbE
// configuration).
func (s *Switch) Bond(mac wire.MAC, idxs []int) {
	s.bonds[mac] = append([]int(nil), idxs...)
}

func (s *Switch) forward(in int, f *Frame) {
	var eth wire.EthHeader
	if err := eth.Unmarshal(f.Data); err != nil {
		return
	}
	out := -1
	if members, ok := s.bonds[eth.Dst]; ok && len(members) > 0 {
		out = members[int(l3l4Hash(f.Data))%len(members)]
	} else if idx, ok := s.fdb[eth.Dst]; ok {
		out = idx
	} else if eth.Dst == wire.Broadcast {
		// Broadcast (ARP): replicate to all ports except ingress.
		s.eng.After(s.latency, func() {
			for i, sp := range s.ports {
				if i != in {
					sp.port.Send(f.Data)
				}
			}
		})
		s.Forwarded++
		return
	}
	if out < 0 || out == in {
		s.Flooded++
		return
	}
	s.Forwarded++
	sp := s.ports[out]
	s.eng.After(s.latency, func() { sp.port.Send(f.Data) })
}

// l3l4Hash is the bond-member selection hash: a cheap fold over the IPv4
// addresses and transport ports, matching "bonded by the switch with an
// L3+L4 hash" (§5.1).
func l3l4Hash(frame []byte) uint32 {
	if len(frame) < wire.EthHdrLen+wire.IPv4HdrLen {
		return 0
	}
	var eth wire.EthHeader
	_ = eth.Unmarshal(frame)
	if eth.EtherType != wire.EtherTypeIPv4 {
		return 0
	}
	ip := frame[wire.EthHdrLen:]
	var h uint32
	for _, b := range ip[12:20] { // src+dst IP
		h = h*31 + uint32(b)
	}
	proto := ip[9]
	if proto == wire.ProtoTCP || proto == wire.ProtoUDP {
		ihl := int(ip[0]&0xf) * 4
		if len(ip) >= ihl+4 {
			for _, b := range ip[ihl : ihl+4] { // ports
				h = h*31 + uint32(b)
			}
		}
	}
	return h
}
