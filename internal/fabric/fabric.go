// Package fabric models the experiment network: full-duplex Ethernet links
// with bandwidth serialization and propagation delay, and a cut-through
// switch (the paper's Quanta/Cumulus 48x10GbE with a Broadcom Trident+
// ASIC) including LACP-style bond groups that hash on L3+L4, which is how
// the 4x10GbE server configuration is built (§5.1).
//
// Frames are reference-carrying objects: a sender allocates one from its
// FramePool, the same object travels every hop (host → switch → host), and
// the final consumer calls Release to hand the buffer back to the
// originating pool. On the steady-state path no per-frame memory is
// allocated.
package fabric

import (
	"fmt"
	"time"

	"ix/internal/sim"
	"ix/internal/wire"
)

// Gbps expresses link bandwidth.
const Gbps = 1e9

// Common datacenter timing constants (§2.2 of the paper).
const (
	// SwitchLatency is a cut-through crossing (a few hundred ns).
	SwitchLatency = 300 * time.Nanosecond
	// PropDelay covers ~100 m of fiber within the datacenter plus PHY.
	PropDelay = 500 * time.Nanosecond
	// NICLatency is the one-way latency through a 10 GbE NIC (the paper
	// quotes 3 µs across a *pair* of NICs, so 1.5 µs each).
	NICLatency = 1500 * time.Nanosecond
)

// FrameCap is the buffer capacity of pooled frames: a full MTU frame with
// L2 framing and slack. Larger frames fall back to one-off allocations.
const FrameCap = 1600

// A Frame is a packet in flight with its arrival timestamp metadata.
// Frames allocated from a FramePool are recycled: whoever consumes the
// frame (receiving stack, dropping queue, flooding switch) must call
// Release exactly once.
type Frame struct {
	Data []byte
	// SentAt is when the sender posted the frame (for diagnostics).
	SentAt sim.Time

	buf  []byte // full-capacity backing storage of pooled frames
	pool *FramePool
	free bool

	// remote marks a pooled frame currently held by a shard other than
	// its pool's owner. It is restamped at every cross-shard link
	// crossing (the ownership-transfer boundary) and never changes on
	// intra-shard hops, so it always answers "would releasing here touch
	// a foreign pool?". Serial runs never set it.
	remote bool

	// In-flight routing state, so delivery and switch forwarding run as
	// pooled one-shot engine events without closure allocations.
	dst *Port // delivery target (set while traversing a link)
	via *Port // egress port (set while crossing the switch)

	// tenant is the isolation-accounting tag stamped from the
	// originating pool at Get time (frames recycle, so the stamp is
	// refreshed per allocation). It rides the frame across every hop so
	// shared switch egress can charge the right tenant.
	tenant int
}

// Tenant returns the frame's isolation-accounting tag (0 = untagged
// infrastructure traffic).
func (f *Frame) Tenant() int { return f.tenant }

// NewFrame wraps data in an unpooled frame (tests, broadcast replication).
// Release on an unpooled frame is a no-op.
func NewFrame(data []byte) *Frame { return &Frame{Data: data} }

// Detach permanently removes a pooled frame from its pool, balancing the
// in-use accounting. Broadcast replication aliases the frame's bytes in
// unpooled replicas, so the buffer can never safely be recycled.
func (f *Frame) Detach() {
	if f.pool == nil {
		return
	}
	if f.remote {
		// Foreign shard: the accounting decrement must run on the pool
		// owner's worker. Queue it; the owner drains at its next barrier.
		p := f.pool
		f.pool = nil
		f.remote = false
		p.releaser.DetachRemote(p)
		return
	}
	f.pool.inUse--
	f.pool = nil
}

// Release returns a pooled frame's buffer to its originating pool. It must
// be called exactly once by the frame's final consumer; double release
// panics (the moral equivalent of a double free).
func (f *Frame) Release() {
	if f == nil {
		return
	}
	// The double-release check precedes the pool check so oversized
	// frames (detached from the pool on their first release) still trip
	// the panic; unpooled NewFrame frames never set free and keep their
	// documented no-op behaviour.
	if f.free {
		panic("fabric: frame double release")
	}
	if f.pool == nil {
		return
	}
	f.free = true
	f.dst, f.via = nil, nil
	if f.remote {
		// Released on a foreign shard: the free list and in-use count
		// belong to the owner's worker, so the frame rides a return box
		// home and the owner completes the release at its next epoch
		// barrier (CompleteRemoteRelease).
		if f.pool.releaser == nil {
			panic(fmt.Sprintf("fabric: remote release of a frame owned by shard %d, but its pool has no releaser", f.pool.shard))
		}
		f.pool.releaser.ReleaseRemote(f)
		return
	}
	f.pool.inUse--
	if f.buf == nil {
		// Oversized one-off: accounted, but not recycled.
		f.pool = nil
		return
	}
	f.pool.free = append(f.pool.free, f)
}

// A RemoteReleaser queues frames (or pool accounting decrements) whose
// Release or Detach ran on a shard other than the pool owner's. The
// sharded runtime implements it with per-owner return boxes drained at
// epoch barriers; serial runs never touch it.
type RemoteReleaser interface {
	ReleaseRemote(f *Frame)
	DetachRemote(p *FramePool)
}

// A FramePool recycles frame buffers for one sender (a network stack
// instance). A pool is owned by one shard: all allocation and free-list
// mutation runs on the owner's worker (serially, lock-free); releases
// from other shards detour through the RemoteReleaser.
type FramePool struct {
	free  []*Frame
	inUse int

	// Sharded-runtime ownership: the owning shard's index and the return
	// box frames released elsewhere come home through. Zero-valued (and
	// unused) in serial runs.
	shard    int
	releaser RemoteReleaser

	// tenant tags every frame allocated from this pool (multi-tenant
	// isolation accounting; 0 = untagged).
	tenant int

	// Stats: Gets counts allocations served, News counts fresh buffers
	// (pool misses and oversized frames).
	Gets, News uint64
}

// SetShard declares the pool's owning shard and the return box for
// frames released on other shards. The harness calls it at cluster
// construction when running sharded.
func (p *FramePool) SetShard(shard int, r RemoteReleaser) {
	p.shard, p.releaser = shard, r
}

// CompleteRemoteRelease finishes, on the owner's worker, a release that
// was initiated on a foreign shard: the in-use count drops and the
// buffer rejoins the free list. Called only by the shard runtime's
// barrier drain.
func (f *Frame) CompleteRemoteRelease() {
	p := f.pool
	f.remote = false
	p.inUse--
	if f.buf == nil {
		// Oversized one-off: accounted, but not recycled.
		f.pool = nil
		return
	}
	p.free = append(p.free, f)
}

// CompleteRemoteDetach finishes a Detach initiated on a foreign shard
// (accounting only; the detached frame never returns). Called only by
// the shard runtime's barrier drain.
func (p *FramePool) CompleteRemoteDetach() { p.inUse-- }

// SetTenant tags the pool: every frame subsequently allocated carries
// this isolation-accounting tag.
func (p *FramePool) SetTenant(tag int) { p.tenant = tag }

// Tenant returns the pool's tag.
func (p *FramePool) Tenant() int { return p.tenant }

// InUse reports frames allocated from the pool and not yet released —
// the frame-conservation invariant the fault-injection tests assert:
// whatever drops, duplicates or delays frames, a quiesced cluster must
// drain every pool back to zero.
func (p *FramePool) InUse() int { return p.inUse }

// NewFramePool returns an empty pool.
func NewFramePool() *FramePool { return &FramePool{} }

// Get returns a frame with an n-byte Data slice. The bytes are NOT zeroed:
// callers are expected to write the full frame (every producer in this
// repository marshals headers and payload over the entire length).
func (p *FramePool) Get(n int) *Frame {
	p.Gets++
	p.inUse++
	if n > FrameCap {
		p.News++
		return &Frame{Data: make([]byte, n), pool: p, tenant: p.tenant}
	}
	if ln := len(p.free); ln > 0 {
		f := p.free[ln-1]
		p.free[ln-1] = nil
		p.free = p.free[:ln-1]
		f.free = false
		f.Data = f.buf[:n]
		f.tenant = p.tenant
		return f
	}
	p.News++
	f := &Frame{buf: make([]byte, FrameCap), pool: p, tenant: p.tenant}
	f.Data = f.buf[:n]
	return f
}

// An Endpoint consumes frames delivered by a link.
type Endpoint interface {
	// Deliver is invoked at the frame's arrival time. The endpoint takes
	// ownership of the frame and must eventually Release it.
	Deliver(f *Frame)
}

// A Port is one side of a link: frames are transmitted by calling Send and
// received through the attached Endpoint.
type Port struct {
	link *Link
	side int
	ep   Endpoint

	// Sharded-runtime wiring. eng is the engine driving this port's
	// transmit side (the link's engine unless SetShard overrode it);
	// remote, when non-nil, is the cross-shard post queue to the peer's
	// shard — delivery becomes an enqueue instead of a local event, and
	// frame ownership transfers at this boundary.
	eng       *sim.Engine
	remote    sim.Remote
	shard     int
	peerShard int

	busyUntil sim.Time // transmit serialization

	// txBuffer, when positive, bounds the transmit queue in bytes: a
	// shallow-buffer egress (the switch ASIC's per-port share) that
	// tail-drops under incast fan-in. Zero means unbounded (the
	// default, matching the drop-free fabric of the figure benchmarks).
	txBuffer int

	// TxFrames/TxBytes count transmitted traffic; TxDropped counts
	// frames tail-dropped by the bounded transmit buffer.
	TxFrames, TxBytes uint64
	TxDropped         uint64

	// txTenant is the per-tenant breakdown of the totals above, indexed
	// by frame tag and grown lazily on first sight of a tag (steady
	// state allocates nothing). Every sent or dropped frame is charged
	// to exactly one slot, so the slots always sum to the totals — the
	// isolation-accounting conservation invariant.
	txTenant []TenantTx
}

// TenantTx is one tenant tag's egress through one port.
type TenantTx struct {
	Frames, Bytes, Dropped uint64
}

func (p *Port) tenantSlot(tag int) *TenantTx {
	if tag < 0 {
		tag = 0
	}
	for len(p.txTenant) <= tag {
		p.txTenant = append(p.txTenant, TenantTx{})
	}
	return &p.txTenant[tag]
}

// TenantTxStats returns the egress charged to tag through this port
// (zero for never-seen tags).
func (p *Port) TenantTxStats(tag int) TenantTx {
	if tag < 0 || tag >= len(p.txTenant) {
		return TenantTx{}
	}
	return p.txTenant[tag]
}

// TenantTags returns the number of tag slots the port has charged
// (tags 0..TenantTags()-1 may hold traffic).
func (p *Port) TenantTags() int { return len(p.txTenant) }

// SetShard places the port's transmit side on a shard: eng is the
// owning shard's engine, and remote (non-nil iff the peer lives on a
// different shard) carries deliveries across the boundary. The harness
// calls it at cluster construction when running sharded.
func (p *Port) SetShard(eng *sim.Engine, shard, peerShard int, remote sim.Remote) {
	p.eng = eng
	p.shard, p.peerShard = shard, peerShard
	p.remote = remote
}

// Shard returns the index of the shard driving this port.
func (p *Port) Shard() int { return p.shard }

// Engine returns the engine driving this port's transmit side.
func (p *Port) Engine() *sim.Engine { return p.eng }

// Attach sets the endpoint that receives frames arriving at this port.
func (p *Port) Attach(ep Endpoint) { p.ep = ep }

// Interpose wraps the port's currently attached endpoint — the hook the
// fault-injection layer uses to interpose on frame delivery without the
// port or its endpoint knowing. Must be called after Attach.
func (p *Port) Interpose(wrap func(Endpoint) Endpoint) { p.ep = wrap(p.ep) }

// SetTxBuffer bounds the port's transmit queue to n bytes of wire
// occupancy (0 = unbounded). Frames arriving while the queue holds n or
// more queued wire bytes are tail-dropped and released.
func (p *Port) SetTxBuffer(n int) { p.txBuffer = n }

// queuedBytes converts the pending serialization backlog to wire bytes.
func (p *Port) queuedBytes(now sim.Time) int {
	if p.busyUntil <= now {
		return 0
	}
	return int(float64(p.busyUntil-now) / 1e9 * p.link.bps / 8)
}

// Peer returns the port at the other end of the link.
func (p *Port) Peer() *Port { return &p.link.ports[1-p.side] }

// deliverFrame is the arrival trampoline for Port.Send's pooled event.
func deliverFrame(a any) {
	f := a.(*Frame)
	dst := f.dst
	f.dst = nil
	if dst.ep != nil {
		dst.ep.Deliver(f)
	} else {
		f.Release()
	}
}

// Send transmits the frame out of the port. Serialization at the link rate
// and propagation delay determine the arrival time at the peer endpoint.
// The caller hands over ownership of the frame (the simulated DMA engine
// has already copied out of mbufs at the NIC).
func (p *Port) Send(f *Frame) {
	l := p.link
	now := p.eng.Now()
	if p.txBuffer > 0 && p.queuedBytes(now)+wire.WireLen(len(f.Data)) > p.txBuffer {
		// Shallow egress buffer full: tail drop at the switch port,
		// exactly the incast failure mode (§5, 16 µs RTO discussion).
		p.TxDropped++
		p.tenantSlot(f.tenant).Dropped++
		f.Release()
		return
	}
	start := now
	if p.busyUntil > start {
		start = p.busyUntil
	}
	ser := l.serialize(len(f.Data))
	depart := start.Add(ser)
	p.busyUntil = depart
	p.TxFrames++
	p.TxBytes += uint64(len(f.Data))
	slot := p.tenantSlot(f.tenant)
	slot.Frames++
	slot.Bytes += uint64(len(f.Data))
	arrive := depart.Add(l.latency)
	f.SentAt = now
	f.dst = p.Peer()
	if p.remote != nil {
		// Cross-shard boundary: ownership transfers with the frame. The
		// stamp records whether the frame will be foreign to its pool on
		// the far side; intra-shard hops never touch it, so it stays
		// correct across any number of local forwards.
		f.remote = f.pool != nil && f.pool.shard != p.peerShard
		p.remote.Post(arrive, deliverFrame, f)
		return
	}
	p.eng.Call(arrive, deliverFrame, f)
}

// Busy returns the time until which the port's transmit side is
// serializing already-queued frames.
func (p *Port) Busy() sim.Time { return p.busyUntil }

// A Link is a full-duplex point-to-point cable.
type Link struct {
	eng     *sim.Engine
	bps     float64
	latency time.Duration
	ports   [2]Port
}

// NewLink creates a link with the given bandwidth (bits/s) and one-way
// propagation latency.
func NewLink(eng *sim.Engine, bps float64, latency time.Duration) *Link {
	l := &Link{eng: eng, bps: bps, latency: latency}
	l.ports[0] = Port{link: l, side: 0, eng: eng}
	l.ports[1] = Port{link: l, side: 1, eng: eng}
	return l
}

// Latency returns the link's one-way propagation latency (the harness
// derives the sharded runtime's lookahead from it).
func (l *Link) Latency() time.Duration { return l.latency }

// Port returns side i (0 or 1) of the link.
func (l *Link) Port(i int) *Port { return &l.ports[i] }

// serialize returns the wire time of a frame of n L2 bytes, including
// Ethernet preamble/FCS/IFG overhead and minimum-frame padding.
func (l *Link) serialize(n int) time.Duration {
	bits := float64(wire.WireLen(n) * 8)
	return time.Duration(bits / l.bps * 1e9)
}

// A Switch is a store-of-nothing cut-through L2 switch with static MAC
// learning and bond groups. Ports are link endpoints.
type Switch struct {
	eng     *sim.Engine
	latency time.Duration
	ports   []*switchPort
	fdb     map[wire.MAC]int // MAC -> port index
	bonds   map[wire.MAC][]int

	// sealed freezes the FDB and bond tables. Topology is static in
	// every experiment, so learning belongs to cluster construction; the
	// seal (explicit via Seal, or implicit on the first forwarded frame)
	// guarantees no frame can ever observe a partially built table —
	// which is also what makes the read-only maps safe under the sharded
	// runtime.
	sealed bool

	// Forwarded counts frames switched.
	Forwarded uint64
	// Flooded counts frames with unknown destination (dropped: the
	// benchmark topologies never rely on flooding).
	Flooded uint64
}

type switchPort struct {
	sw   *Switch
	idx  int
	port *Port
}

// Deliver implements Endpoint: a frame arriving on a switch port is
// forwarded after the cut-through latency.
func (sp *switchPort) Deliver(f *Frame) {
	sp.sw.forward(sp.idx, f)
}

// NewSwitch creates a switch.
func NewSwitch(eng *sim.Engine) *Switch {
	return &Switch{eng: eng, latency: SwitchLatency, fdb: make(map[wire.MAC]int), bonds: make(map[wire.MAC][]int)}
}

// AddPort connects one side of a link to the switch and returns the port
// index.
func (s *Switch) AddPort(p *Port) int {
	idx := len(s.ports)
	sp := &switchPort{sw: s, idx: idx, port: p}
	p.Attach(sp)
	s.ports = append(s.ports, sp)
	return idx
}

// Learn installs a static FDB entry: frames for mac leave through port
// index idx. Learning is a construction-time operation: once the switch
// is sealed, Learn panics.
func (s *Switch) Learn(mac wire.MAC, idx int) {
	if s.sealed {
		panic("fabric: Learn on a sealed switch (MAC learning is construction-time only)")
	}
	if idx < 0 || idx >= len(s.ports) {
		panic(fmt.Sprintf("fabric: bad port index %d", idx))
	}
	s.fdb[mac] = idx
}

// Bond declares that frames for mac are distributed across the given port
// indices by an L3+L4 hash (the switch-side half of the paper's 4x10GbE
// configuration). Construction-time only, like Learn.
func (s *Switch) Bond(mac wire.MAC, idxs []int) {
	if s.sealed {
		panic("fabric: Bond on a sealed switch (bond setup is construction-time only)")
	}
	s.bonds[mac] = append([]int(nil), idxs...)
}

// Seal freezes the FDB and bond tables. The harness seals at cluster
// start; the first forwarded frame seals implicitly as a backstop, so a
// frame already in flight during construction forwards against the
// complete, frozen topology or trips the construction-time panic — never
// a partial table.
func (s *Switch) Seal() { s.sealed = true }

// Sealed reports whether the switch tables are frozen.
func (s *Switch) Sealed() bool { return s.sealed }

// forwardFrame is the cut-through trampoline: the frame leaves through the
// egress port chosen by forward.
func forwardFrame(a any) {
	f := a.(*Frame)
	out := f.via
	f.via = nil
	out.Send(f)
}

func (s *Switch) forward(in int, f *Frame) {
	s.sealed = true // implicit seal: forwarding freezes the topology
	var eth wire.EthHeader
	if err := eth.Unmarshal(f.Data); err != nil {
		f.Release()
		return
	}
	out := -1
	if members, ok := s.bonds[eth.Dst]; ok && len(members) > 0 {
		out = members[int(l3l4Hash(f.Data))%len(members)]
	} else if idx, ok := s.fdb[eth.Dst]; ok {
		out = idx
	} else if eth.Dst == wire.Broadcast {
		// Broadcast (ARP): replicate to all ports except ingress. The
		// replicas are unpooled frames sharing the payload bytes, so the
		// original is detached from its pool (rare control-plane path).
		f.Detach()
		s.eng.After(s.latency, func() {
			for i, sp := range s.ports {
				if i != in {
					sp.port.Send(NewFrame(f.Data))
				}
			}
		})
		s.Forwarded++
		return
	}
	if out < 0 || out == in {
		s.Flooded++
		f.Release()
		return
	}
	s.Forwarded++
	f.via = s.ports[out].port
	s.eng.CallAfter(s.latency, forwardFrame, f)
}

// l3l4Hash is the bond-member selection hash: a cheap fold over the IPv4
// addresses and transport ports, matching "bonded by the switch with an
// L3+L4 hash" (§5.1).
func l3l4Hash(frame []byte) uint32 {
	if len(frame) < wire.EthHdrLen+wire.IPv4HdrLen {
		return 0
	}
	var eth wire.EthHeader
	_ = eth.Unmarshal(frame)
	if eth.EtherType != wire.EtherTypeIPv4 {
		return 0
	}
	ip := frame[wire.EthHdrLen:]
	var h uint32
	for _, b := range ip[12:20] { // src+dst IP
		h = h*31 + uint32(b)
	}
	proto := ip[9]
	if proto == wire.ProtoTCP || proto == wire.ProtoUDP {
		ihl := int(ip[0]&0xf) * 4
		if len(ip) >= ihl+4 {
			for _, b := range ip[ihl : ihl+4] { // ports
				h = h*31 + uint32(b)
			}
		}
	}
	return h
}
