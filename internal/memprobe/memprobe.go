// Package memprobe defines the per-connection memory accounting
// contract behind the Fig. 4 bytes/conn budget. A Footprint is a
// deterministic sum of the live bytes a layer holds *per connection*:
// struct sizes via unsafe.Sizeof plus the capacities of growable
// per-conn storage (retransmit-queue backing, receive/send buffers,
// zero-copy arena chunks, pending timer nodes, cookie-table slots).
//
// The contract is additive and layer-local: each layer reports only the
// bytes it owns (the TCP engine its PCBs, the socket adapters their
// buffers, libix its per-flow descriptors), and the harness sums the
// layers of one host. Pooled free objects — recycled conns, timer
// free lists, arena chunks parked in their pool — are amortized across
// the population and deliberately excluded: the budget measures what an
// *established connection* pins, not what the host provisioned.
//
// Everything here is arithmetic over Go-visible state, so a probe never
// perturbs the simulation: sampling a Footprint between engine steps
// keeps fixed-seed output byte-identical.
package memprobe

// Footprint is a per-host (or per-layer) connection memory tally.
type Footprint struct {
	// Conns is the number of live connections walked.
	Conns int
	// Bytes is the live per-conn bytes summed over those connections.
	Bytes int64
}

// Add accumulates o into f. Layers of one host share a connection
// population, so callers adding a *layer* contribution (adapter bytes
// on top of TCP bytes) should add Bytes only and let the owning layer
// report Conns; AddLayer does that.
func (f *Footprint) Add(o Footprint) {
	f.Conns += o.Conns
	f.Bytes += o.Bytes
}

// AddLayer accumulates a secondary layer's bytes for the same
// connection population (Conns is not double-counted).
func (f *Footprint) AddLayer(o Footprint) {
	f.Bytes += o.Bytes
}

// PerConn returns bytes per connection, zero for an empty population.
func (f Footprint) PerConn() float64 {
	if f.Conns == 0 {
		return 0
	}
	return float64(f.Bytes) / float64(f.Conns)
}
