// Package ixnet is a net-compatible blocking facade over the
// event-driven stacks: ixnet.Conn implements net.Conn (blocking
// Read/Write/Close plus the SetDeadline family), ixnet.Listener
// implements net.Listener, and ixnet.Dialer blocks until the handshake
// resolves. Applications written purely against net.Conn — an HTTP
// server, a redis-style client — run unmodified on IX, Linux and mTCP.
//
// The bridge is deterministic green threads (see fiber.go): blocking
// calls park the calling fiber and stack events resume it — EvRecv
// wakes readers, the writable-again condition (ACK-driven arena release
// reopening MaxPendingSend, kernel sndbuf draining below its cap) wakes
// writers, timer-service deadlines fire os.ErrDeadlineExceeded, accept
// events wake acceptors. Wakeups drain from a FIFO run queue, so the
// interleaving is a pure function of the event sequence and fixed-seed
// runs stay byte-identical. The package is sanctioned by the
// determinism analyzer the same way sim/shard is: its goroutines
// synchronize exclusively through the baton channels.
package ixnet

import (
	"time"

	"ix/internal/app"
)

// Net is one elastic thread's entry to the blocking facade. The main
// function handed to Factory receives it; fibers it spawns share it.
// All methods must be called on the owning thread (from its fibers or
// its timer callbacks) — never across threads.
type Net struct {
	env     app.Env
	s       *sched
	thread  int
	threads int
	lis     *Listener
}

// Factory adapts a blocking main function to the event-driven app
// contract. main runs as the thread's root fiber: it may Listen and
// loop over Accept, Dial and drive connections, spawn more fibers with
// Go — every blocking call parks the fiber until the corresponding
// stack event. One main instance runs per elastic thread.
func Factory(main func(n *Net)) app.Factory {
	return func(env app.Env, thread, threads int) app.Handler {
		n := &Net{env: env, s: newSched(), thread: thread, threads: threads}
		n.s.spawn(func() { main(n) })
		// Run the root fiber to its first park at start of day so
		// listeners exist before the first SYN arrives.
		n.s.pump()
		return &handler{n: n}
	}
}

// Thread returns this thread's index on its host.
func (n *Net) Thread() int { return n.thread }

// Threads returns the host's thread count.
func (n *Net) Threads() int { return n.threads }

// Now returns the simulation clock as a time.Time (nanoseconds since
// the virtual epoch) — the clock deadlines are measured against.
func (n *Net) Now() time.Time { return time.Unix(0, n.env.Now()) }

// Charge accounts application CPU time on the thread's core.
func (n *Net) Charge(d time.Duration) { n.env.Charge(d) }

// Go spawns fn as a new fiber on this thread. Legal from fiber or
// simulation context; the fiber starts at the next pump.
func (n *Net) Go(fn func()) {
	n.s.spawn(fn)
	n.s.pump()
}

// Sleep parks the calling fiber for d of virtual time.
func (n *Net) Sleep(d time.Duration) {
	f := n.s.current()
	n.after(d, func() { n.s.wake(f) })
	n.s.park()
}

// after schedules fn on the thread's timer service and pumps the
// fibers it wakes (timer callbacks run in simulation context).
func (n *Net) after(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	n.env.After(d, func() {
		fn()
		n.s.pump()
	})
}

// handler adapts stack events to fiber wakeups. Every callback mutates
// facade state, marks the affected fibers runnable, then pumps. Pumps
// route through the conn's owning Net (c.n), not the delivering
// thread's: under IX connection migration events can arrive on a
// different elastic thread than the one whose fibers own the conn, and
// threads on one host share an engine, so running the owner's fibers
// from here preserves the baton discipline.
type handler struct {
	n *Net
}

var (
	_ app.Handler          = (*handler)(nil)
	_ app.SendReadyHandler = (*handler)(nil)
)

func (h *handler) conn(ac app.Conn) *Conn {
	c, _ := ac.Cookie().(*Conn)
	return c
}

func (h *handler) OnAccept(ac app.Conn) {
	l := h.n.lis
	if l == nil || l.closed || len(l.backlog) >= l.maxBacklog {
		// No listener (or backlog full): refuse, as a kernel would
		// once the accept queue overflows.
		ac.Abort()
		return
	}
	c := newConn(h.n, ac)
	ac.SetCookie(c)
	l.backlog = append(l.backlog, c)
	l.wakeAcceptor()
	h.n.s.pump()
}

func (h *handler) OnConnected(ac app.Conn, ok bool) {
	c := h.conn(ac)
	if c == nil {
		return
	}
	c.ac = ac
	c.connDone = true
	c.connOK = ok
	if !ok {
		c.dead = true
	}
	if c.abandoned {
		// The dialer timed out and walked away; nobody owns this
		// connection any more.
		if ok {
			ac.Abort()
		}
		return
	}
	if c.dialer != nil {
		c.n.s.wake(c.dialer)
		c.dialer = nil
	}
	c.n.s.pump()
}

func (h *handler) OnRecv(ac app.Conn, data []byte) {
	c := h.conn(ac)
	if c == nil {
		return
	}
	// data is valid only during the callback: copy into the conn's
	// receive buffer before any fiber runs.
	c.rb = append(c.rb, data...)
	c.wakeReader()
	c.n.s.pump()
}

func (h *handler) OnSent(ac app.Conn, acked int) {}

func (h *handler) OnSendReady(ac app.Conn) {
	c := h.conn(ac)
	if c == nil {
		return
	}
	c.wakeWriter()
	c.n.s.pump()
}

func (h *handler) OnEOF(ac app.Conn) {
	c := h.conn(ac)
	if c == nil {
		return
	}
	c.eof = true
	c.wakeReader()
	c.n.s.pump()
}

func (h *handler) OnClosed(ac app.Conn) {
	c := h.conn(ac)
	if c == nil {
		return
	}
	c.dead = true
	if !c.eof && !c.localClosed {
		// Termination with no FIN seen and no local close: the peer
		// reset (or the connection failed under it).
		c.reset = true
	}
	c.wakeReader()
	c.wakeWriter()
	c.n.s.pump()
}
