package ixnet

import (
	"fmt"
	"io"
	"net"
	"os"
	"syscall"
	"time"

	"ix/internal/app"
	"ix/internal/wire"
)

// Addr is an ixnet endpoint address.
type Addr struct {
	IP   wire.IPv4
	Port uint16
}

// Network names the simulated fabric.
func (a Addr) Network() string { return "ix" }

func (a Addr) String() string { return fmt.Sprintf("%v:%d", a.IP, a.Port) }

// Conn is a blocking, net.Conn-compatible view of one stack
// connection. It may be used by at most one reading fiber and one
// writing fiber concurrently (the net.Conn contract); Close and the
// deadline setters may be called from any fiber or timer callback on
// the owning thread.
type Conn struct {
	n  *Net
	ac app.Conn // the underlying event-driven connection

	laddr, raddr Addr

	// Receive buffer: bytes copied out of OnRecv, rOff the read cursor.
	rb   []byte
	rOff int

	// Stream state set by the handler.
	eof         bool // peer FIN delivered (after buffered data drains → io.EOF)
	reset       bool // terminated with no FIN and no local close → ECONNRESET
	dead        bool // OnClosed fired
	localClosed bool

	// Parked fibers.
	reader *fiber
	writer *fiber
	dialer *fiber

	// Dial state.
	connDone  bool
	connOK    bool
	abandoned bool // dialer timed out; OnConnected must discard

	// Deadlines, as virtual-clock instants; zero means none. The
	// generation counters invalidate timers armed for superseded
	// deadlines (the timer service cannot cancel).
	rdl, wdl time.Time
	rdGen    int
	wdGen    int
	// Timer-armed generation: one wakeup timer per deadline value.
	rdArmed, wdArmed int
}

var _ net.Conn = (*Conn)(nil)

func newConn(n *Net, ac app.Conn) *Conn {
	return &Conn{n: n, ac: ac}
}

// Read blocks until data, EOF, reset, close or deadline. Buffered data
// is always delivered before a pending error — a stream that ends in
// FIN yields every byte, then io.EOF.
func (c *Conn) Read(p []byte) (int, error) {
	for {
		if c.rOff < len(c.rb) {
			n := copy(p, c.rb[c.rOff:])
			c.rOff += n
			if c.rOff == len(c.rb) {
				c.rb = c.rb[:0]
				c.rOff = 0
			}
			return n, nil
		}
		if c.localClosed {
			return 0, net.ErrClosed
		}
		if c.reset {
			return 0, syscall.ECONNRESET
		}
		if c.eof {
			return 0, io.EOF
		}
		if c.deadlineExpired(c.rdl) {
			return 0, os.ErrDeadlineExceeded
		}
		if len(p) == 0 {
			return 0, nil
		}
		if c.reader != nil {
			panic("ixnet: concurrent Read on one Conn")
		}
		c.reader = c.n.s.current()
		c.armReadTimer()
		c.n.s.park()
		c.reader = nil
	}
}

// Write blocks until every byte is accepted by the stack (the
// writable-again event condition resumes it across pending-send budget
// and transmit-pool backpressure), or an error. On error it reports the
// bytes accepted so far.
func (c *Conn) Write(p []byte) (int, error) {
	wrote := 0
	for {
		if c.localClosed {
			return wrote, net.ErrClosed
		}
		if c.reset || c.dead {
			return wrote, syscall.ECONNRESET
		}
		if c.deadlineExpired(c.wdl) {
			return wrote, os.ErrDeadlineExceeded
		}
		if wrote == len(p) {
			return wrote, nil
		}
		n := c.ac.Send(p[wrote:])
		wrote += n
		if wrote == len(p) {
			return wrote, nil
		}
		// Short write: the stack armed its send-ready condition when it
		// came up short; park until OnSendReady.
		if c.writer != nil {
			panic("ixnet: concurrent Write on one Conn")
		}
		c.writer = c.n.s.current()
		c.armWriteTimer()
		c.n.s.park()
		c.writer = nil
	}
}

// Close performs an orderly close: bytes already accepted by the stack
// drain to the wire before the FIN (the stacks' deferred-FIN close).
// Parked readers and writers unblock with net.ErrClosed.
func (c *Conn) Close() error {
	if c.localClosed {
		return net.ErrClosed
	}
	c.localClosed = true
	c.wakeReader()
	c.wakeWriter()
	if c.ac != nil && !c.dead {
		c.ac.Close()
	}
	c.n.s.pump()
	return nil
}

// LocalAddr returns the local endpoint (zero for accepted connections:
// the event API does not surface peer addresses).
func (c *Conn) LocalAddr() net.Addr { return c.laddr }

// RemoteAddr returns the remote endpoint (known for dialed
// connections; zero for accepted ones).
func (c *Conn) RemoteAddr() net.Addr { return c.raddr }

// SetDeadline sets both read and write deadlines.
func (c *Conn) SetDeadline(t time.Time) error {
	c.SetReadDeadline(t)
	return c.SetWriteDeadline(t)
}

// SetReadDeadline sets the read deadline: a parked or future Read past
// t fails with os.ErrDeadlineExceeded. The zero time clears it; unlike
// an error, an expired deadline is not sticky once reset.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.rdl = t
	c.rdGen++
	if c.reader != nil {
		c.armReadTimer()
	}
	c.n.s.pump()
	return nil
}

// SetWriteDeadline sets the write deadline, as SetReadDeadline.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.wdl = t
	c.wdGen++
	if c.writer != nil {
		c.armWriteTimer()
	}
	c.n.s.pump()
	return nil
}

func (c *Conn) deadlineExpired(dl time.Time) bool {
	return !dl.IsZero() && !c.n.Now().Before(dl)
}

// armReadTimer schedules a wakeup at the read deadline (at most one
// per deadline generation — superseded timers no-op on the gen check).
func (c *Conn) armReadTimer() {
	if c.rdl.IsZero() || c.rdArmed == c.rdGen {
		return
	}
	c.rdArmed = c.rdGen
	gen := c.rdGen
	c.n.after(c.rdl.Sub(c.n.Now()), func() {
		if gen == c.rdGen {
			c.wakeReader()
		}
	})
}

func (c *Conn) armWriteTimer() {
	if c.wdl.IsZero() || c.wdArmed == c.wdGen {
		return
	}
	c.wdArmed = c.wdGen
	gen := c.wdGen
	c.n.after(c.wdl.Sub(c.n.Now()), func() {
		if gen == c.wdGen {
			c.wakeWriter()
		}
	})
}

func (c *Conn) wakeReader() {
	if c.reader != nil {
		c.n.s.wake(c.reader)
	}
}

func (c *Conn) wakeWriter() {
	if c.writer != nil {
		c.n.s.wake(c.writer)
	}
}
