// Edge-case tests for the blocking facade: deadlines firing mid-Read,
// Close semantics (local close vs EOF vs reset) on parked fibers,
// concurrent reader+writer fibers on one connection, accept-backlog
// overflow, and fixed-seed determinism of the fiber interleaving.
//
// The tests drive real clusters (IX stack) so fibers park and resume on
// genuine stack events, not mocks.
package ixnet_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"syscall"
	"testing"
	"time"

	"ix/internal/app"
	"ix/internal/harness"
	"ix/internal/ixnet"
	"ix/internal/wire"
)

const port = 7000

// pair builds a one-server one-client IX cluster and runs it for d.
func pair(serverFactory app.Factory, clientMain func(n *ixnet.Net, srv wire.IPv4), d time.Duration) {
	cl := harness.NewCluster(1)
	hs := cl.AddHost("server", harness.HostSpec{Arch: harness.ArchIX, Cores: 1, Factory: serverFactory})
	srvIP := hs.IP()
	cl.AddHost("client", harness.HostSpec{Arch: harness.ArchIX, Cores: 1,
		Factory: ixnet.Factory(func(n *ixnet.Net) { clientMain(n, srvIP) })})
	cl.Start()
	cl.Run(d)
}

// silentServer accepts and never writes.
func silentServer() app.Factory {
	return ixnet.Factory(func(n *ixnet.Net) {
		l, err := n.Listen(port)
		if err != nil {
			panic(err)
		}
		var keep []net.Conn
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			keep = append(keep, c)
			_ = keep
		}
	})
}

func TestReadDeadlineMidRead(t *testing.T) {
	var (
		dialErr      error
		firstErr     error
		firstElapsed time.Duration
		secondErr    error
	)
	pair(silentServer(), func(n *ixnet.Net, srv wire.IPv4) {
		c, err := n.Dial(srv, port)
		if dialErr = err; err != nil {
			return
		}
		buf := make([]byte, 64)
		c.SetReadDeadline(n.Now().Add(2 * time.Millisecond))
		t0 := n.Now()
		_, firstErr = c.Read(buf)
		firstElapsed = n.Now().Sub(t0)
		// The expired deadline is not sticky: arming a fresh one lets
		// the next Read park again and time out again.
		c.SetReadDeadline(n.Now().Add(time.Millisecond))
		_, secondErr = c.Read(buf)
		c.Close()
	}, 20*time.Millisecond)
	if dialErr != nil {
		t.Fatalf("dial: %v", dialErr)
	}
	if !errors.Is(firstErr, os.ErrDeadlineExceeded) {
		t.Fatalf("first Read err = %v, want ErrDeadlineExceeded", firstErr)
	}
	if firstElapsed < 2*time.Millisecond || firstElapsed > 3*time.Millisecond {
		t.Errorf("deadline fired after %v, want ~2ms", firstElapsed)
	}
	if !errors.Is(secondErr, os.ErrDeadlineExceeded) {
		t.Errorf("second Read err = %v, want ErrDeadlineExceeded (deadline must re-arm)", secondErr)
	}
}

func TestCloseUnblocksParkedReader(t *testing.T) {
	var readErr error
	done := false
	pair(silentServer(), func(n *ixnet.Net, srv wire.IPv4) {
		c, err := n.Dial(srv, port)
		if err != nil {
			return
		}
		n.Go(func() {
			_, readErr = c.Read(make([]byte, 64))
			done = true
		})
		n.Sleep(time.Millisecond) // let the reader park on EvRecv
		c.Close()
	}, 20*time.Millisecond)
	if !done {
		t.Fatal("reader never unblocked after Close")
	}
	if !errors.Is(readErr, net.ErrClosed) {
		t.Errorf("Read err = %v, want net.ErrClosed", readErr)
	}
}

func TestRemoteCloseDeliversDataThenEOF(t *testing.T) {
	// Server writes a payload and closes in the same fiber step: the
	// orderly close must deliver every byte, then io.EOF — exercising
	// the deferred-FIN drain through the facade.
	payload := bytes.Repeat([]byte("ix"), 4096)
	srv := ixnet.Factory(func(n *ixnet.Net) {
		l, err := n.Listen(port)
		if err != nil {
			panic(err)
		}
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Write(payload)
			c.Close()
		}
	})
	var got []byte
	var finalErr error
	pair(srv, func(n *ixnet.Net, srv wire.IPv4) {
		c, err := n.Dial(srv, port)
		if err != nil {
			return
		}
		buf := make([]byte, 1024)
		for {
			k, err := c.Read(buf)
			got = append(got, buf[:k]...)
			if err != nil {
				finalErr = err
				break
			}
		}
		c.Close()
	}, 20*time.Millisecond)
	if finalErr != io.EOF {
		t.Fatalf("final Read err = %v, want io.EOF", finalErr)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("received %d bytes before EOF, want %d (close must drain first)", len(got), len(payload))
	}
}

// abortServer is a raw event-driven handler that resets every
// connection the moment it receives data.
type abortServer struct{}

func abortFactory() app.Factory {
	return func(env app.Env, thread, threads int) app.Handler {
		if err := env.Listen(port); err != nil {
			panic(err)
		}
		return abortServer{}
	}
}

func (abortServer) OnAccept(c app.Conn)             {}
func (abortServer) OnConnected(c app.Conn, ok bool) {}
func (abortServer) OnRecv(c app.Conn, data []byte)  { c.Abort() }
func (abortServer) OnSent(c app.Conn, n int)        {}
func (abortServer) OnEOF(c app.Conn)                { c.Close() }
func (abortServer) OnClosed(c app.Conn)             {}

func TestResetDeliversECONNRESET(t *testing.T) {
	var readErr error
	pair(abortFactory(), func(n *ixnet.Net, srv wire.IPv4) {
		c, err := n.Dial(srv, port)
		if err != nil {
			return
		}
		if _, err := c.Write([]byte("x")); err != nil {
			return
		}
		_, readErr = c.Read(make([]byte, 64))
	}, 20*time.Millisecond)
	if !errors.Is(readErr, syscall.ECONNRESET) {
		t.Errorf("Read err = %v, want ECONNRESET", readErr)
	}
}

// echoServer copies every byte back.
func echoServer() app.Factory {
	return ixnet.Factory(func(n *ixnet.Net) {
		l, err := n.Listen(port)
		if err != nil {
			panic(err)
		}
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			conn := c
			n.Go(func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					k, err := conn.Read(buf)
					if k > 0 {
						if _, werr := conn.Write(buf[:k]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			})
		}
	})
}

// runConcurrentRW drives one connection with independent reader and
// writer fibers and returns a deterministic event log.
func runConcurrentRW(t *testing.T) (log []string, sent, rcvd int) {
	t.Helper()
	const total = 512 << 10
	pair(echoServer(), func(n *ixnet.Net, srv wire.IPv4) {
		c, err := n.Dial(srv, port)
		if err != nil {
			return
		}
		writerDone := false
		n.Go(func() {
			chunk := make([]byte, 8192)
			for i := range chunk {
				chunk[i] = byte(i)
			}
			for sent < total {
				k, err := c.Write(chunk)
				sent += k
				if err != nil {
					break
				}
			}
			writerDone = true
			log = append(log, fmt.Sprintf("%d w:done sent=%d", n.Now().UnixNano(), sent))
		})
		n.Go(func() {
			buf := make([]byte, 16384)
			for rcvd < total {
				k, err := c.Read(buf)
				rcvd += k
				log = append(log, fmt.Sprintf("%d r:%d", n.Now().UnixNano(), rcvd))
				if err != nil {
					break
				}
			}
			_ = writerDone
			c.Close()
		})
	}, 100*time.Millisecond)
	return log, sent, rcvd
}

func TestConcurrentReaderWriterFibers(t *testing.T) {
	log, sent, rcvd := runConcurrentRW(t)
	if sent != 512<<10 {
		t.Errorf("writer pushed %d bytes, want %d", sent, 512<<10)
	}
	if rcvd != sent {
		t.Errorf("reader saw %d of %d echoed bytes", rcvd, sent)
	}
	if len(log) == 0 {
		t.Fatal("no events logged")
	}
}

// TestFiberDeterminism runs the concurrent reader/writer workload
// twice with the same seed and requires byte-identical event logs —
// same wakeup order, same virtual timestamps, same byte counts.
func TestFiberDeterminism(t *testing.T) {
	log1, _, _ := runConcurrentRW(t)
	log2, _, _ := runConcurrentRW(t)
	if len(log1) != len(log2) {
		t.Fatalf("run lengths differ: %d vs %d events", len(log1), len(log2))
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("event %d differs:\n  run1: %s\n  run2: %s", i, log1[i], log2[i])
		}
	}
}

func TestAcceptBacklogOverflow(t *testing.T) {
	// Server listens with a backlog of 1 and never accepts: the first
	// connection queues; the rest are refused with RST at the accept
	// event, surfacing as ECONNRESET on the client.
	srv := ixnet.Factory(func(n *ixnet.Net) {
		if _, err := n.ListenBacklog(port, 1); err != nil {
			panic(err)
		}
		n.Sleep(time.Hour)
	})
	var timeouts, resets, other int
	pair(srv, func(n *ixnet.Net, srv wire.IPv4) {
		conns := make([]net.Conn, 0, 4)
		for i := 0; i < 4; i++ {
			c, err := n.Dial(srv, port)
			if err != nil {
				other++
				continue
			}
			c.Write([]byte("x"))
			conns = append(conns, c)
		}
		for _, c := range conns {
			c.SetReadDeadline(n.Now().Add(5 * time.Millisecond))
			_, err := c.Read(make([]byte, 16))
			switch {
			case errors.Is(err, os.ErrDeadlineExceeded):
				timeouts++
			case errors.Is(err, syscall.ECONNRESET):
				resets++
			default:
				other++
			}
			c.Close()
		}
	}, 60*time.Millisecond)
	if timeouts != 1 || resets != 3 || other != 0 {
		t.Errorf("got timeouts=%d resets=%d other=%d, want 1 queued (timeout) and 3 refused (reset)",
			timeouts, resets, other)
	}
}
