package ixnet

import (
	"net"
	"os"
	"syscall"
	"time"

	"ix/internal/wire"
)

// DefaultBacklog is the accept-queue depth when ListenBacklog is not
// used; connections arriving beyond it are refused (RST), as a kernel
// accept-queue overflow would.
const DefaultBacklog = 128

// Listener is a blocking net.Listener over the thread's listen port.
type Listener struct {
	n          *Net
	addr       Addr
	backlog    []*Conn
	maxBacklog int
	waiters    []*fiber // parked acceptor fibers, FIFO
	closed     bool
}

var _ net.Listener = (*Listener)(nil)

// Listen binds this thread's stack to port with the default backlog.
// The event API delivers accepts without a port, so each thread
// supports one listener at a time.
func (n *Net) Listen(port uint16) (*Listener, error) {
	return n.ListenBacklog(port, DefaultBacklog)
}

// ListenBacklog is Listen with an explicit accept-queue depth.
func (n *Net) ListenBacklog(port uint16, backlog int) (*Listener, error) {
	if n.lis != nil && !n.lis.closed {
		return nil, syscall.EADDRINUSE
	}
	if err := n.env.Listen(port); err != nil {
		return nil, err
	}
	if backlog < 1 {
		backlog = 1
	}
	l := &Listener{n: n, addr: Addr{Port: port}, maxBacklog: backlog}
	n.lis = l
	return l, nil
}

// Accept blocks until a connection is ready or the listener closes.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		if len(l.backlog) > 0 {
			c := l.backlog[0]
			l.backlog[0] = nil
			l.backlog = l.backlog[1:]
			if len(l.backlog) == 0 {
				l.backlog = nil
			}
			return c, nil
		}
		if l.closed {
			return nil, net.ErrClosed
		}
		l.waiters = append(l.waiters, l.n.s.current())
		l.n.s.park()
	}
}

// Close stops accepting: parked acceptors unblock with net.ErrClosed
// and later arrivals are refused. Connections already accepted (or
// sitting in the backlog, which Accept still drains) are unaffected.
func (l *Listener) Close() error {
	if l.closed {
		return net.ErrClosed
	}
	l.closed = true
	for _, f := range l.waiters {
		l.n.s.wake(f)
	}
	l.waiters = nil
	l.n.s.pump()
	return nil
}

// Addr returns the listen address.
func (l *Listener) Addr() net.Addr { return l.addr }

// wakeAcceptor pops one parked acceptor, if any.
func (l *Listener) wakeAcceptor() {
	if len(l.waiters) == 0 {
		return
	}
	f := l.waiters[0]
	l.waiters[0] = nil
	l.waiters = l.waiters[1:]
	if len(l.waiters) == 0 {
		l.waiters = nil
	}
	l.n.s.wake(f)
}

// Dialer blocks a fiber until its connection attempt resolves.
type Dialer struct {
	Net *Net
	// Timeout bounds the handshake; zero means none. On expiry Dial
	// returns os.ErrDeadlineExceeded and the late connection, if it
	// ever completes, is aborted.
	Timeout time.Duration
}

// Dial connects to dst:port, blocking until established or failed.
func (d *Dialer) Dial(dst wire.IPv4, port uint16) (net.Conn, error) {
	n := d.Net
	f := n.s.current()
	c := &Conn{n: n, raddr: Addr{IP: dst, Port: port}}
	if err := n.env.Connect(dst, port, c); err != nil {
		return nil, err
	}
	var deadline time.Time
	if d.Timeout > 0 {
		deadline = n.Now().Add(d.Timeout)
		n.after(d.Timeout, func() {
			if !c.connDone && c.dialer != nil {
				n.s.wake(c.dialer)
			}
		})
	}
	for !c.connDone {
		if !deadline.IsZero() && !n.Now().Before(deadline) {
			c.abandoned = true
			c.dialer = nil
			return nil, os.ErrDeadlineExceeded
		}
		c.dialer = f
		n.s.park()
	}
	c.dialer = nil
	if !c.connOK {
		return nil, syscall.ECONNREFUSED
	}
	return c, nil
}

// Dial connects with no timeout.
func (n *Net) Dial(dst wire.IPv4, port uint16) (net.Conn, error) {
	d := Dialer{Net: n}
	return d.Dial(dst, port)
}
