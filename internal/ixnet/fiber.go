// Deterministic green threads for the blocking facade.
//
// A fiber is a goroutine that runs only while the simulation hands it
// the baton: the scheduler resumes exactly one fiber at a time over an
// unbuffered channel pair and the simulation thread blocks until the
// fiber parks or finishes. At any instant at most one goroutine — the
// simulation thread or a single fiber — is running, so fibers may touch
// per-thread state without locks, and every handoff is a channel
// operation the race detector recognizes as a happens-before edge.
//
// Determinism: wakeups enqueue on a FIFO run queue and the pump drains
// it in order, so for a fixed event sequence (which the engine already
// guarantees per seed) the fiber interleaving is a pure function of the
// program. No wall clock, no select over multiple channels, no
// goroutine ever runnable concurrently with another.
package ixnet

// sched runs a thread's fibers. It is owned by the elastic thread's
// event loop: pump may only be called from simulation context (handler
// callbacks, timer callbacks, factory init), park only from a fiber.
type sched struct {
	// yield carries the baton fiber→pump; each fiber's resume channel
	// carries it pump→fiber. Both are unbuffered: a send is a rendezvous.
	yield chan struct{}
	runq  []*fiber // FIFO of runnable fibers
	cur   *fiber   // the fiber holding the baton, nil in sim context
	// pumping guards against re-entry when a public API that kicks the
	// pump is invoked from fiber context (the outer pump's loop will
	// reach the new work).
	pumping bool
}

type fiber struct {
	s      *sched
	resume chan struct{}
	queued bool // sitting in runq
	done   bool
}

func newSched() *sched {
	return &sched{yield: make(chan struct{})}
}

// spawn creates a fiber running fn and marks it runnable. fn starts
// executing at the next pump.
func (s *sched) spawn(fn func()) *fiber {
	f := &fiber{s: s, resume: make(chan struct{})}
	go func() {
		<-f.resume
		fn()
		f.done = true
		s.yield <- struct{}{}
	}()
	s.wake(f)
	return f
}

// wake marks f runnable. Idempotent while queued; a no-op for finished
// fibers. Callable from either context.
func (s *sched) wake(f *fiber) {
	if f == nil || f.queued || f.done {
		return
	}
	f.queued = true
	s.runq = append(s.runq, f)
}

// current returns the running fiber; it panics outside fiber context —
// blocking facade calls (Read, Write, Accept, Dial, Sleep) are only
// legal from a fiber.
func (s *sched) current() *fiber {
	if s.cur == nil {
		panic("ixnet: blocking call outside fiber context (use Net.Go)")
	}
	return s.cur
}

// park yields the baton until the next wake of the current fiber.
func (s *sched) park() {
	f := s.current()
	s.yield <- struct{}{}
	<-f.resume
}

// pump drains the run queue, running each fiber to its next park (or
// completion). Fibers woken mid-drain run in the same pass. Must be
// called from simulation context; a call from fiber context (via a
// public API) is a harmless no-op because the active pump's loop picks
// up the new work.
func (s *sched) pump() {
	if s.pumping {
		return
	}
	s.pumping = true
	for len(s.runq) > 0 {
		f := s.runq[0]
		s.runq[0] = nil
		s.runq = s.runq[1:]
		if len(s.runq) == 0 {
			s.runq = nil // let the backing array go once drained
		}
		f.queued = false
		s.cur = f
		f.resume <- struct{}{}
		<-s.yield
		s.cur = nil
	}
	s.pumping = false
}
