package harness

// Serial-vs-parallel equivalence and shard-sweep determinism: the
// acceptance tests of the sharded engine (DESIGN.md §Parallel engine and
// the determinism contract). A fixed seed at a fixed shard count must
// reproduce runs exactly; across shard counts the invariant counts must
// agree exactly (only same-instant tie order may differ between the
// serial global schedule and the per-shard merge, and the invariants are
// robust to it) and rates must agree within small tolerances.

import (
	"math"
	"testing"
	"time"

	"ix/internal/sim/shard"
)

// equivShardCounts is the sweep of the equivalence tests; 1 is the
// serial reference (rt == nil — the pre-sharding code path).
var equivShardCounts = []int{1, 2, 4, 8}

func equivIncastSetup(shards int) IncastSetup {
	return IncastSetup{
		SenderArch: ArchLinux,
		Senders:    12,
		MinRTO:     50 * time.Microsecond,
		Rounds:     5,
		Seed:       2024,
		Shards:     shards,
	}
}

func equivChaosSetup(shards int) ChaosSetup {
	return ChaosSetup{
		ServerCores: 2,
		ClientHosts: 3,
		ClientCores: 2,
		Phases:      4,
		PhaseLen:    2 * time.Millisecond,
		Seed:        77,
		Shards:      shards,
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) / den
}

// TestSerialParallelEquivalenceIncast: the incast collapse experiment
// produces the same statistics on 2/4/8 shards as on the serial engine —
// exact round accounting and zero-leak invariants, goodput within a
// tie-order tolerance.
func TestSerialParallelEquivalenceIncast(t *testing.T) {
	ref := RunIncast(equivIncastSetup(1))
	if ref.RoundsDone == 0 {
		t.Fatal("serial reference completed no rounds")
	}
	for _, shards := range equivShardCounts[1:] {
		res := RunIncast(equivIncastSetup(shards))
		if res.FramesLeaked != 0 {
			t.Errorf("shards=%d: %d frames leaked", shards, res.FramesLeaked)
		}
		if got, want := res.RoundsDone+res.RoundsFailed, ref.RoundsDone+ref.RoundsFailed; got != want {
			t.Errorf("shards=%d: %d rounds accounted, serial %d", shards, got, want)
		}
		if res.SinkBytes != ref.SinkBytes {
			t.Errorf("shards=%d: sink received %d bytes, serial %d", shards, res.SinkBytes, ref.SinkBytes)
		}
		if d := relDiff(res.GoodputBps, ref.GoodputBps); d > 0.05 {
			t.Errorf("shards=%d: goodput %.4g vs serial %.4g (%.2f%% off)",
				shards, res.GoodputBps, ref.GoodputBps, 100*d)
		}
		if res.Telemetry.Shards != shards || res.Telemetry.CrossShardFrames == 0 {
			t.Errorf("shards=%d: telemetry %+v shows no cross-shard traffic", shards, res.Telemetry)
		}
	}
}

// TestSerialParallelEquivalenceChaos: under randomized loss, dup,
// corruption and jitter — injectors drawing from the owning shard's
// fault streams — the end-to-end integrity invariants hold on every
// shard count and the message totals stay in tolerance.
func TestSerialParallelEquivalenceChaos(t *testing.T) {
	ref := RunChaos(equivChaosSetup(1))
	if ref.Msgs == 0 {
		t.Fatal("serial reference moved no messages")
	}
	for _, shards := range equivShardCounts[1:] {
		res := RunChaos(equivChaosSetup(shards))
		if res.VerifyErrors != 0 || res.SumMismatches != 0 {
			t.Errorf("shards=%d: integrity violated: %d verify errors, %d sum mismatches",
				shards, res.VerifyErrors, res.SumMismatches)
		}
		if res.FramesLeaked != 0 {
			t.Errorf("shards=%d: %d frames leaked", shards, res.FramesLeaked)
		}
		if d := relDiff(float64(res.Msgs), float64(ref.Msgs)); d > 0.05 {
			t.Errorf("shards=%d: %d msgs vs serial %d (%.2f%% off)",
				shards, res.Msgs, ref.Msgs, 100*d)
		}
	}
}

// TestShardSweepDeterminism: at a fixed (seed, shard count) the parallel
// engine is exactly reproducible — the deterministic (arrival time,
// source shard, source seq) merge leaves no room for worker timing to
// reach simulation state.
func TestShardSweepDeterminism(t *testing.T) {
	for _, shards := range equivShardCounts {
		a := RunIncast(equivIncastSetup(shards))
		b := RunIncast(equivIncastSetup(shards))
		a.Telemetry, b.Telemetry = shard.Telemetry{}, shard.Telemetry{}
		if a != b {
			t.Errorf("shards=%d: two fixed-seed incast runs differ:\n  %+v\n  %+v", shards, a, b)
		}
	}
}

// TestShardSweepDeterminismChaos repeats the reproducibility check under
// fault injection, where per-link injector PRNG streams must land on the
// owning shard and nowhere else.
func TestShardSweepDeterminismChaos(t *testing.T) {
	for _, shards := range []int{1, 4} {
		a := RunChaos(equivChaosSetup(shards))
		b := RunChaos(equivChaosSetup(shards))
		if a.Msgs != b.Msgs || a.VerifyErrors != b.VerifyErrors ||
			a.Injected != b.Injected || a.Retransmits != b.Retransmits ||
			a.OutOfOrder != b.OutOfOrder || a.ConnFailures != b.ConnFailures {
			t.Errorf("shards=%d: two fixed-seed chaos runs differ:\n  %+v\n  %+v", shards, a, b)
		}
	}
}
