package harness

import (
	"testing"
	"time"

	"ix/internal/faults"
)

// drainedFootprint quiesces the bench — no new RPCs, in-flight ones
// complete, retransmission and delayed-ACK tails clear — and samples the
// server's memprobe footprint. The drained instant is the comparable
// one: live traffic pins transient state (arena chunks, recycle batches,
// spilled retransmission backings) by design.
func drainedFootprint(b *EchoBench) (int64, int) {
	b.fleet.Pause()
	db := drainBudget + time.Duration(b.fleet.InFlight())*drainPerMsg
	b.runUntil(db, drainStep, func() bool { return b.fleet.InFlight() == 0 })
	b.cl.Run(5 * time.Millisecond)
	f := b.cl.HostFootprint(b.cl.hosts[0])
	return f.Bytes, f.Conns
}

// TestFootprintRecoveryAfterBurstLoss drives the inline→spill→release
// cycle end to end: a Gilbert–Elliott loss burst on a client's link
// forces multi-segment echo responses into RTO storms, spilling
// retransmission queues past their inline capacity and re-materializing
// receive buffers; once the link heals and traffic drains, the server's
// footprint must return to the pre-fault drained baseline — spilled
// backings, arena chunks and receive buffers all released, nothing
// pinned by the burst.
func TestFootprintRecoveryAfterBurstLoss(t *testing.T) {
	const conns = 768
	threads := 4 * 4
	b := NewEchoBench(EchoSetup{
		ServerArch: ArchIX, ServerCores: 2,
		ClientArch: ArchLinux, ClientHosts: 4, ClientCores: 4,
		MsgSize: 4096, // 3 segments per response: spill-prone under loss
		RampBatch: 16, RampGap: Fig4QuietGap(ArchIX, threads),
		ExpectedConns: conns,
	})
	defer b.Stop()

	b.MeasurePoint(conns, 3, 3*time.Millisecond)
	baseBytes, baseConns := drainedFootprint(b)
	if baseConns < conns {
		t.Fatalf("baseline established %d conns, want %d", baseConns, conns)
	}

	// Burst loss on one client's link while the whole fleet keeps
	// echoing: the server's responses toward that client retransmit
	// until the RTO storm subsides.
	site := b.cl.Faults(b.cl.hosts[1])
	site.Apply(faults.Config{GE: faults.GELoss(0.05)})
	b.MeasurePoint(conns, 3, 10*time.Millisecond)
	site.Heal()

	rexmit := uint64(0)
	dp := b.cl.IXServer(0)
	for i := 0; i < dp.Threads(); i++ {
		rexmit += dp.Thread(i).Stack().TCP().Retransmits
	}
	if rexmit == 0 {
		t.Fatal("no server retransmissions — the loss burst exercised nothing")
	}

	// Recover and re-drain. The population is back at the target and
	// every burst-era backing must be gone: the budget allows only the
	// churn the fault itself caused (cookie-table free-stack growth from
	// torn-down connections), a fraction of a percent.
	b.MeasurePoint(conns, 3, 3*time.Millisecond)
	afterBytes, afterConns := drainedFootprint(b)
	if afterConns != baseConns {
		t.Fatalf("population drifted across the fault: %d conns vs baseline %d", afterConns, baseConns)
	}
	if limit := baseBytes + baseBytes/50; afterBytes > limit {
		t.Fatalf("footprint did not recover: %d bytes drained vs %d baseline (+%.1f%%)",
			afterBytes, baseBytes, 100*float64(afterBytes-baseBytes)/float64(baseBytes))
	}
	t.Logf("drained footprint: baseline=%d after-burst=%d (rexmit=%d)", baseBytes, afterBytes, rexmit)
}

// TestPresizeGrowShrinkDeterminism pins the presized-table contract on
// both engines with a grow → shrink → regrow cycle and ExpectedConns
// set. Two properties, matching the DESIGN.md determinism contract:
// reruns at a fixed shard count are byte-identical (drained footprints
// included — the accounting must not depend on map iteration or
// scheduling); across shard counts the established populations are
// identical and the drained footprints equivalent (teardown
// interleavings may shift free-stack peak capacities by a hair, never
// the per-connection story).
func TestPresizeGrowShrinkDeterminism(t *testing.T) {
	type sample struct {
		bytes int64
		conns int
	}
	run := func(shards int) []sample {
		threads := 4 * 4
		b := NewEchoBench(EchoSetup{
			ServerArch: ArchIX, ServerCores: 4,
			ClientArch: ArchLinux, ClientHosts: 4, ClientCores: 4,
			MsgSize: 64, RampBatch: 16, RampGap: Fig4QuietGap(ArchIX, threads),
			ExpectedConns: 2400, Shards: shards,
		})
		defer b.Stop()
		var out []sample
		for _, point := range []int{2400, 400, 1600} {
			b.MeasurePoint(point, 3, 2*time.Millisecond)
			bytes, conns := drainedFootprint(b)
			out = append(out, sample{bytes, conns})
		}
		return out
	}
	for _, shards := range []int{1, 4} {
		a, b := run(shards), run(shards)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("shards=%d point %d: rerun diverged: %+v vs %+v", shards, i, a[i], b[i])
			}
		}
	}
	serial, sharded := run(1), run(4)
	for i := range serial {
		if serial[i].conns != sharded[i].conns {
			t.Errorf("point %d: established %d conns at shards=1 vs %d at shards=4",
				i, serial[i].conns, sharded[i].conns)
		}
		diff := serial[i].bytes - sharded[i].bytes
		if diff < 0 {
			diff = -diff
		}
		if diff*100 > serial[i].bytes {
			t.Errorf("point %d: drained footprint %d bytes at shards=1 vs %d at shards=4 (>1%% apart)",
				i, serial[i].bytes, sharded[i].bytes)
		}
	}
	t.Logf("grow/shrink samples (shards=1): %+v", serial)
}
