package harness

import (
	"testing"
	"time"

	"ix/internal/apps/echo"
	"ix/internal/wire"
)

// TestSmokeEchoIXIX runs one IX client against one IX server and checks
// RPCs complete with sane latency.
func TestSmokeEchoIXIX(t *testing.T) {
	smoke(t, ArchIX, ArchIX, 4*time.Microsecond, 12*time.Microsecond)
}

// TestSmokeEchoLinuxLinux checks the Linux model end to end.
func TestSmokeEchoLinuxLinux(t *testing.T) {
	smoke(t, ArchLinux, ArchLinux, 30*time.Microsecond, 90*time.Microsecond)
}

// TestSmokeEchoMTCP checks the mTCP model end to end.
func TestSmokeEchoMTCP(t *testing.T) {
	smoke(t, ArchMTCP, ArchMTCP, 80*time.Microsecond, 200*time.Microsecond)
}

// TestSmokeCross runs a Linux client against an IX server.
func TestSmokeCross(t *testing.T) {
	smoke(t, ArchIX, ArchLinux, 15*time.Microsecond, 60*time.Microsecond)
}

func smoke(t *testing.T, server, client Arch, minRTT, maxRTT time.Duration) {
	t.Helper()
	cl := NewCluster(1)
	m := echo.NewMetrics()
	cl.AddHost("server", HostSpec{Arch: server, Cores: 2, Factory: echo.ServerFactory(7777, 64)})
	var srvIP wire.IPv4
	srvIP = cl.hosts[0].IP()
	cl.AddHost("client", HostSpec{Arch: client, Cores: 2, Factory: echo.ClientFactory(echo.ClientConfig{
		ServerIP: srvIP, Port: 7777, MsgSize: 64, Rounds: 0, Conns: 2, Metrics: m,
	})})
	cl.Start()
	cl.Run(20 * time.Millisecond)
	if m.Msgs.Total() == 0 {
		t.Fatalf("no echo RPCs completed; failures=%d", m.Failures.Total())
	}
	rtt := m.Latency.Quantile(0.5)
	t.Logf("%v->%v: msgs=%d rtt p50=%v p99=%v", client, server, m.Msgs.Total(), rtt, m.Latency.Quantile(0.99))
	if rtt < minRTT || rtt > maxRTT {
		t.Errorf("median RTT %v outside expected [%v, %v]", rtt, minRTT, maxRTT)
	}
}
