package harness

import (
	"testing"
	"time"
)

// TestPerPointTeardownBudget: the drain/teardown budgets of a persistent
// sweep are per-point, sized from the point's own delta and the fleet's
// configured pacing. With tiny batches and a slow gap, retiring the
// excess of a large shrink takes ~78 ms of pacing alone — more than the
// old fixed 50 ms budget shared by every point, which left the excess
// connections alive into the next point's measurement.
func TestPerPointTeardownBudget(t *testing.T) {
	b := NewEchoBench(EchoSetup{
		ServerArch: ArchIX, ServerCores: 2,
		ClientArch: ArchLinux, ClientHosts: 1, ClientCores: 2,
		MsgSize: 64, RampBatch: 1, RampGap: 2 * time.Millisecond,
		Seed: 7,
	})
	defer b.Stop()

	grow := b.MeasurePoint(80, 2, time.Millisecond)
	if grow.ServerConns != 80 {
		t.Fatalf("slow-paced establishment reached %d server conns, want 80", grow.ServerConns)
	}
	// Shrink 80 -> 2: 39 retire steps per thread at 2 ms each.
	res := b.MeasurePoint(2, 2, time.Millisecond)
	if res.ServerConns > 2 {
		t.Errorf("per-point teardown budget too small: %d server connections survived the shrink, want 2",
			res.ServerConns)
	}
}
