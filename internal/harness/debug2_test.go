package harness

import (
	"testing"
	"time"

	"ix/internal/apps/echo"
)

// TestDebugScaling bisects the client-scaling collapse.
func TestDebugScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic dump, no assertions")
	}
	for _, tc := range []struct{ hosts, cores int }{
		{1, 1}, {1, 4}, {4, 1}, {4, 4}, {10, 6},
	} {
		cl := NewCluster(3)
		m := echo.NewMetrics()
		cl.AddHost("server", HostSpec{Arch: ArchIX, Cores: 8, Factory: echo.ServerFactory(7777, 64)})
		srvIP := cl.hosts[0].IP()
		for i := 0; i < tc.hosts; i++ {
			cl.AddHost("client", HostSpec{Arch: ArchLinux, Cores: tc.cores, Factory: echo.ClientFactory(echo.ClientConfig{
				ServerIP: srvIP, Port: 7777, MsgSize: 64, Rounds: 1024, Conns: 4, Metrics: m,
			})})
		}
		cl.Start()
		cl.Run(10 * time.Millisecond)
		srv := cl.IXServer(0)
		var segsIn, rexmit uint64
		for i := 0; i < srv.Threads(); i++ {
			segsIn += srv.Thread(i).Stack().TCP().SegsIn
			rexmit += srv.Thread(i).Stack().TCP().Retransmits
		}
		t.Logf("hosts=%d cores=%d: msgs=%d (%.0fK/s) p50=%v p99=%v rexmit=%d nicdrops=%d",
			tc.hosts, tc.cores, m.Msgs.Total(), float64(m.Msgs.Total())/0.01/1000,
			m.Latency.Quantile(0.5), m.Latency.Quantile(0.99), rexmit, srv.RxDrops())
	}
}
