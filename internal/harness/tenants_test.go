package harness

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"ix/internal/cp"
	"ix/internal/faults"
)

// tenantSums adds up every tag's isolation-accounting charges (tag 0 is
// untagged infrastructure — the shared client hosts).
func tenantSums(cl *Cluster) (frames, chunks int, egress uint64) {
	for tag := 0; tag <= cl.MaxTenantTag(); tag++ {
		frames += cl.TenantFramesInUse(tag)
		chunks += cl.TenantTxChunksInUse(tag)
		egress += cl.TenantEgressBytes(tag)
	}
	return
}

// checkConservation asserts the per-tenant charges tile the cluster
// totals exactly — every frame, TX chunk and egress byte is charged to
// exactly one tenant tag.
func checkConservation(t *testing.T, cl *Cluster, when string) {
	t.Helper()
	frames, chunks, egress := tenantSums(cl)
	if got := cl.FramesInUse(); frames != got {
		t.Errorf("%s: per-tenant frame charges sum to %d, cluster total %d", when, frames, got)
	}
	if got := cl.TxChunksInUse(); chunks != got {
		t.Errorf("%s: per-tenant TX chunk charges sum to %d, cluster total %d", when, chunks, got)
	}
	if got := cl.EgressBytes(); egress != got {
		t.Errorf("%s: per-tenant egress-byte charges sum to %d, cluster total %d", when, egress, got)
	}
}

// flashCrowdRun is one full execution of the flash-crowd scenario: two
// memcached tenants share a 40-core machine, tenant A takes a 4×
// offered-load spike, and the arbiter must shift cores from B to A.
type flashCrowdRun struct {
	history    [][]cp.MemberSample
	moves      []cp.Move
	usage      []TenantUsage
	transcript string
}

func flashCrowd(t *testing.T) flashCrowdRun {
	t.Helper()
	const (
		fcWarm  = 4 * time.Millisecond
		fcSpike = 12 * time.Millisecond
		fcAfter = 6 * time.Millisecond
		fcBase  = 250_000.0
	)
	tc := BuildTenants(TenantsSetup{
		HostCores:   40,
		ClientHosts: 4,
		ClientCores: 4,
		Seed:        42,
		Tenants: []TenantSpec{
			{
				Name: "A", App: TenantMemc,
				SLO:   SLOSpec{P99: SLA, Envelope: 8 * SLA},
				Cores: 2, MinCores: 2, MaxCores: 16,
				ClientThreads: 12, Conns: 16,
				Schedule: func(now int64) float64 {
					if now >= int64(fcWarm) && now < int64(fcWarm+fcSpike) {
						return 4 * fcBase
					}
					return fcBase
				},
			},
			{
				Name: "B", App: TenantMemc,
				SLO:   SLOSpec{P99: 2 * time.Millisecond, Envelope: 2 * time.Millisecond},
				Cores: 38, MinCores: 8, MaxCores: 38,
				ClientThreads: 4, Conns: 8,
				RPS: 100_000,
			},
		},
	})

	// Base period, then mid-spike and end-of-run conservation checks:
	// the charges must tile the totals while traffic is in full flight,
	// not just after a drain.
	tc.Run(fcWarm)
	checkConservation(t, tc.Cl, "pre-spike")
	tc.Run(fcSpike / 2)
	checkConservation(t, tc.Cl, "mid-spike")
	tc.Run(fcSpike/2 + fcAfter)
	checkConservation(t, tc.Cl, "post-spike")

	usage := tc.Usage()
	tc.Stop()
	tc.Run(8 * time.Millisecond) // drain in-flight traffic

	if n := tc.Cl.FramesInUse(); n != 0 {
		t.Errorf("frames leaked after drain: %d", n)
	}
	if n := tc.Cl.TxChunksInUse(); n != 0 {
		t.Errorf("TX chunks leaked after drain: %d", n)
	}
	for tag := 0; tag <= tc.Cl.MaxTenantTag(); tag++ {
		if n := tc.Cl.TenantFramesInUse(tag); n != 0 {
			t.Errorf("tag %d holds %d frames after drain", tag, n)
		}
	}

	var b strings.Builder
	for d, row := range tc.Arb.History {
		fmt.Fprintf(&b, "decision %d:", d)
		for _, s := range row {
			fmt.Fprintf(&b, " %s cores=%d p99=%d util=%.6f v=%v streak=%d;",
				s.Name, s.Cores, s.P99.Nanoseconds(), s.Util, s.Violating, s.Streak)
		}
		b.WriteString("\n")
	}
	for _, mv := range tc.Arb.Moves {
		fmt.Fprintf(&b, "move at=%v decision=%d %q->%q\n", mv.At, mv.Decision, mv.From, mv.To)
	}
	for _, u := range usage {
		fmt.Fprintf(&b, "usage %s tag=%d cores=%d egressB=%d drops=%d busy=%d resp=%d\n",
			u.Name, u.Tag, u.Cores, u.EgressBytes, u.EgressDrops,
			u.Busy.Nanoseconds(), u.Responses)
	}
	return flashCrowdRun{
		history:    tc.Arb.History,
		moves:      tc.Arb.Moves,
		usage:      usage,
		transcript: b.String(),
	}
}

// TestClaimFlashCrowdReallocation is the PR's acceptance claim: on a
// shared 40-core machine a 4× offered-load flash crowd on tenant A
// makes the arbiter move cores from tenant B, restoring A's 500 µs p99
// SLO within a bounded number of decisions, while B stays inside its
// stated 2 ms envelope, nothing leaks, and the whole run is
// byte-identical across executions at a fixed seed.
func TestClaimFlashCrowdReallocation(t *testing.T) {
	run := flashCrowd(t)

	// A must genuinely violate once the spike lands.
	firstViolation := -1
	for d, row := range run.history {
		if row[0].Violating {
			firstViolation = d
			break
		}
	}
	if firstViolation < 0 {
		t.Fatal("the 4x spike never drove tenant A over its SLO — the scenario is not exercising arbitration")
	}

	// Recovery bound: within 15 decisions of the first violation, A is
	// back under SLO with more cores than its starting 2.
	const bound = 15
	recovered := -1
	for d := firstViolation; d < len(run.history) && d <= firstViolation+bound; d++ {
		s := run.history[d][0]
		if !s.Violating && s.P99 > 0 && s.Cores > 2 {
			recovered = d
			break
		}
	}
	if recovered < 0 {
		t.Errorf("tenant A did not recover within %d decisions of its first violation (decision %d)",
			bound, firstViolation)
	} else {
		t.Logf("first violation at decision %d, recovered at decision %d with %d cores",
			firstViolation, recovered, run.history[recovered][0].Cores)
	}

	// The recovery must come from real core transfers B -> A.
	toA := 0
	for _, mv := range run.moves {
		if mv.To == "A" {
			toA++
			if mv.From != "B" {
				t.Errorf("move to A at decision %d came from %q, want B (no free pool exists)", mv.Decision, mv.From)
			}
		}
	}
	if toA < 2 {
		t.Errorf("only %d core moves to tenant A, want at least 2", toA)
	}

	// B's p99 stays inside its stated envelope at every decision.
	for d, row := range run.history {
		if p := row[1].P99; p > 2*time.Millisecond {
			t.Errorf("decision %d: tenant B p99 %v exceeds its 2ms envelope", d, p)
		}
	}

	// Core budget conservation at every decision.
	for d, row := range run.history {
		total := 0
		for _, s := range row {
			total += s.Cores
		}
		if total != 40 {
			t.Errorf("decision %d: %d cores allocated, budget is 40", d, total)
		}
	}

	// Fixed seed, byte-identical repeat.
	again := flashCrowd(t)
	if run.transcript != again.transcript {
		t.Errorf("fixed-seed runs differ:\n--- first ---\n%s--- second ---\n%s",
			run.transcript, again.transcript)
	}
}

// TestTenantIsolationAccounting is the conservation property test: for
// several seeds, a multi-tenant cluster under a randomized fault
// schedule (loss, duplication, corruption, jitter) and shallow egress
// buffers keeps its per-tenant frame/TX-chunk/egress charges summing
// exactly to the cluster totals at every checkpoint, and drains to zero
// everywhere after heal.
func TestTenantIsolationAccounting(t *testing.T) {
	for _, seed := range []int64{3, 17, 101} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			tc := BuildTenants(TenantsSetup{
				HostCores:   8,
				ClientHosts: 2,
				ClientCores: 2,
				Seed:        seed,
				Tenants: []TenantSpec{
					{
						Name: "echo", App: TenantEcho,
						SLO:   SLOSpec{P99: 2 * time.Millisecond},
						Cores: 3, MinCores: 1,
						ClientThreads: 2, Conns: 8, Outstanding: 4,
					},
					{
						Name: "bulk", App: TenantIncast,
						SLO:   SLOSpec{P99: 10 * time.Millisecond},
						Cores: 5, MinCores: 1,
						ClientThreads: 2, Conns: 8, Outstanding: 8,
						MsgSize: 8192,
					},
				},
			})
			// Shallow egress buffers toward the clients force switch
			// tail drops, exercising the per-tenant drop charging.
			for _, h := range tc.ClientFleet {
				tc.Cl.LimitEgress(h, 4<<10)
			}
			sites := make([]*faults.Site, 0, len(tc.ClientFleet)+len(tc.ServerHosts))
			for _, h := range tc.ClientFleet {
				sites = append(sites, tc.Cl.Faults(h))
			}
			for _, h := range tc.ServerHosts {
				sites = append(sites, tc.Cl.Faults(h))
			}

			rng := rand.New(rand.NewSource(seed))
			for phase := 0; phase < 6; phase++ {
				for _, site := range sites {
					site.Apply(chaosMenu(rng))
				}
				tc.Run(time.Millisecond)
				checkConservation(t, tc.Cl, fmt.Sprintf("phase %d", phase))
			}

			for _, site := range sites {
				site.Heal()
			}
			tc.Stop()
			tc.Run(10 * time.Millisecond)
			checkConservation(t, tc.Cl, "after drain")
			if n := tc.Cl.FramesInUse(); n != 0 {
				t.Errorf("frames leaked: %d", n)
			}
			if n := tc.Cl.TxChunksInUse(); n != 0 {
				t.Errorf("TX chunks leaked: %d", n)
			}

			// The scenario must actually have produced tagged egress
			// drops, or the drop-charging path went untested.
			var tagged uint64
			for tag := 1; tag <= tc.Cl.MaxTenantTag(); tag++ {
				tagged += tc.Cl.TenantEgressDrops(tag)
			}
			if tagged == 0 {
				t.Error("no tenant-tagged egress drops: the drop-charging path went unexercised")
			}
		})
	}
}

// TestTenantsExperiment smoke-runs the registered `tenants` experiment
// end to end at a small scale.
func TestTenantsExperiment(t *testing.T) {
	r := Tenants(Scale{Warmup: 2 * time.Millisecond, Window: 8 * time.Millisecond})
	if len(r.Series) == 0 {
		t.Fatal("tenants experiment produced no series")
	}
	if len(r.Tables) == 0 || len(r.Tables[0].Rows) != 3 {
		t.Fatalf("tenants experiment table malformed: %+v", r.Tables)
	}
}
