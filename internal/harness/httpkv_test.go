package harness

import (
	"fmt"
	"testing"
	"time"
)

// httpkv claim tests: the HTTP+KV composite application is written
// purely against net.Conn via the ixnet facade, so these runs prove the
// blocking bridge carries a real protocol stack — request parsing,
// keep-alive, connection pooling, read-your-write verification — on
// every stack, with the paper's IX > Linux ordering intact.

func httpkvSetup(arch Arch) HTTPKVSetup {
	return HTTPKVSetup{
		ServerArch: arch,
		ClientArch: arch,
		Warmup:     10 * time.Millisecond,
		Window:     40 * time.Millisecond,
	}
}

// TestClaimHTTPKVAllStacks: the same net.Conn application code runs
// unmodified on IX, Linux and mTCP; every request verifies its echo
// body and every KV GET reads back the preceding SET, so a nonzero ops
// count with zero verify errors is an end-to-end correctness proof for
// the facade on that stack. Drained clusters must leak nothing.
func TestClaimHTTPKVAllStacks(t *testing.T) {
	ops := map[Arch]float64{}
	for _, arch := range []Arch{ArchIX, ArchLinux, ArchMTCP} {
		res := RunHTTPKV(httpkvSetup(arch))
		t.Logf("%v: http=%.0f/s kv=%.0f/s p50=%v p99=%v", arch,
			res.HTTPPerSec, res.KVPerSec, res.RTTp50, res.RTTp99)
		if res.HTTPPerSec <= 0 || res.KVPerSec <= 0 {
			t.Errorf("%v: no throughput (http=%v kv=%v)", arch, res.HTTPPerSec, res.KVPerSec)
		}
		if res.Errors != 0 || res.VerifyErrors != 0 {
			t.Errorf("%v: errors=%d verifyErrors=%d, want zero", arch, res.Errors, res.VerifyErrors)
		}
		if res.KVHits == 0 {
			t.Errorf("%v: KV store recorded no hits", arch)
		}
		if res.FramesLeaked != 0 || res.TxChunksLeaked != 0 {
			t.Errorf("%v: leaked frames=%d txchunks=%d at drain", arch,
				res.FramesLeaked, res.TxChunksLeaked)
		}
		ops[arch] = res.HTTPPerSec + res.KVPerSec
	}
	if !(ops[ArchIX] > ops[ArchLinux]) {
		t.Errorf("ordering violated: IX=%.0f ops/s should exceed Linux=%.0f ops/s",
			ops[ArchIX], ops[ArchLinux])
	}
}

// TestClaimHTTPKVDeterminism: a fixed-seed httpkv run — hundreds of
// fibers parking and waking across two server hosts and a pooled
// client — is byte-identical across executions. This is the facade's
// determinism contract: FIFO run-queue wakeup plus virtual-time
// deadlines leave the seed as the only source of variation.
func TestClaimHTTPKVDeterminism(t *testing.T) {
	run := func() string {
		return fmt.Sprintf("%+v", RunHTTPKV(httpkvSetup(ArchIX)))
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("fixed-seed httpkv runs differ:\n  run1: %s\n  run2: %s", a, b)
	}
}
