package harness

import (
	"testing"
	"time"
)

// TestElasticTracksLoad encodes the elastic-scaling acceptance bar: over
// a triangle load ramp the controller's core allocation must track the
// offered load up and down, peak throughput must be within 5% of a
// static run pinned at MaxCores, and the migrations must be lossless.
func TestElasticTracksLoad(t *testing.T) {
	set := ElasticSetup{
		MaxCores:    4,
		PeakRPS:     900_000,
		Steps:       4,
		StepWindow:  5 * time.Millisecond,
		ClientHosts: 6,
		ClientCores: 2,
	}
	el := RunElastic(set)
	stat := set
	stat.Static = true
	st := RunElastic(stat)

	// Scale-up and scale-down both happened.
	maxCores, endCores := 0, 0
	for _, p := range el.Points {
		if p.Cores > maxCores {
			maxCores = p.Cores
		}
		endCores = p.Cores
	}
	if el.Points[0].Cores != 1 {
		t.Errorf("ramp did not start consolidated: %d cores", el.Points[0].Cores)
	}
	if maxCores != set.MaxCores {
		t.Errorf("allocation peaked at %d cores, want %d", maxCores, set.MaxCores)
	}
	if endCores >= maxCores {
		t.Errorf("no scale-down: ended at %d of %d cores", endCores, maxCores)
	}

	// Elastic throughput within 5% of the static allocation at peak.
	if st.PeakAchievedRPS <= 0 {
		t.Fatal("static baseline achieved nothing")
	}
	ratio := el.PeakAchievedRPS / st.PeakAchievedRPS
	if ratio < 0.95 {
		t.Errorf("elastic peak %.0f RPS is %.1f%% of static %.0f RPS (want ≥95%%)",
			el.PeakAchievedRPS, ratio*100, st.PeakAchievedRPS)
	}

	// Elasticity must pay off in core-seconds.
	if el.CoreSeconds >= st.CoreSeconds {
		t.Errorf("elastic used %.4f core-seconds, static %.4f", el.CoreSeconds, st.CoreSeconds)
	}

	// Migrations happened and were lossless at the NIC edge.
	if el.Migrations == 0 || el.FlowsMigrated == 0 {
		t.Errorf("no migrations recorded: %d groups, %d flows", el.Migrations, el.FlowsMigrated)
	}
	if el.Drops != 0 {
		t.Errorf("elastic run dropped %d frames at the NIC edge", el.Drops)
	}
}
