package harness

import (
	"fmt"
	"math/rand"
	"time"

	"ix/internal/apps/echo"
	"ix/internal/faults"
	"ix/internal/sim/shard"
)

// ChaosSetup configures the randomized fault-schedule experiment: an
// echo fleet in Verify mode (patterned payloads, byte-exact response
// checking) runs while every client link cycles through a seeded random
// sequence of impairment phases — burst loss, duplication, corruption,
// jitter reordering, link flaps — and the server link takes a brief
// outage. The run then heals, drains, and checks end-to-end invariants:
// no byte of any response ever differed from its request, whole-transfer
// checksums match, and every frame pool drains to zero (nothing leaked,
// nothing double-freed).
type ChaosSetup struct {
	ServerArch  Arch // zero value = ArchIX
	ServerCores int
	ClientHosts int
	ClientCores int
	// ConnsPerThread / Rounds / MsgSize follow echo semantics.
	ConnsPerThread int
	Rounds         int
	MsgSize        int
	// Phases random impairment phases of PhaseLen each.
	Phases   int
	PhaseLen time.Duration
	Warmup   time.Duration
	Seed     int64
	// Shards runs the cluster on the sharded engine (0/1 = serial).
	Shards int
}

// ChaosResult is the outcome plus every invariant input.
type ChaosResult struct {
	Msgs uint64
	// PhaseRates is achieved msgs/s per impairment phase.
	PhaseRates []float64
	// VerifyErrors/SumMismatches are the end-to-end integrity
	// invariants (must be zero).
	VerifyErrors  uint64
	SumMismatches uint64
	// Injected aggregates what the fault layer actually did.
	Injected faults.Stats
	// Protocol counters summed over every stack.
	Retransmits  uint64
	BadChecksums uint64
	OutOfOrder   uint64
	ConnFailures uint64
	// FramesLeaked is the cluster frame-pool imbalance after heal+drain
	// (must be zero: the frame-conservation invariant).
	FramesLeaked int
	// Telemetry is the parallel engine's per-run instrumentation
	// (Shards==1 for serial runs).
	Telemetry shard.Telemetry
}

// chaosMenu returns the impairment for one phase draw (clean with
// probability ~1/3, otherwise one of the fault regimes).
func chaosMenu(rng *rand.Rand) faults.Config {
	switch rng.Intn(9) {
	case 0, 1, 2:
		return faults.Config{} // clean phase
	case 3:
		return faults.Config{LossP: 0.02}
	case 4:
		return faults.Config{GE: faults.GELoss(0.05)}
	case 5:
		return faults.Config{DupP: 0.02}
	case 6:
		return faults.Config{CorruptP: 0.01}
	case 7:
		return faults.Config{JitterP: 0.3, Jitter: 30 * time.Microsecond}
	default:
		return faults.Config{LossP: 0.01, DupP: 0.01, CorruptP: 0.005,
			JitterP: 0.1, Jitter: 20 * time.Microsecond}
	}
}

// RunChaos executes one randomized fault schedule.
func RunChaos(s ChaosSetup) ChaosResult {
	if s.Seed == 0 {
		s.Seed = 23
	}
	if s.ServerCores <= 0 {
		s.ServerCores = 2
	}
	if s.ClientHosts <= 0 {
		s.ClientHosts = 4
	}
	if s.ClientCores <= 0 {
		s.ClientCores = 2
	}
	if s.ConnsPerThread <= 0 {
		s.ConnsPerThread = 4
	}
	if s.Rounds <= 0 {
		s.Rounds = 32
	}
	if s.MsgSize <= 0 {
		// Two segments per message, so jitter phases genuinely reorder
		// in-flight data and exercise reassembly end to end.
		s.MsgSize = 2048
	}
	if s.Phases <= 0 {
		s.Phases = 8
	}
	if s.PhaseLen <= 0 {
		s.PhaseLen = time.Millisecond
	}
	if s.Warmup <= 0 {
		s.Warmup = 2 * time.Millisecond
	}
	cl := NewClusterShards(s.Seed, s.Shards)
	m := echo.NewMetrics()
	const port = 9000
	server := cl.AddHost("server", HostSpec{
		Arch:    s.ServerArch,
		Cores:   s.ServerCores,
		Factory: echo.VerifyingServerFactory(port, s.MsgSize),
	})
	var clients []Host
	for i := 0; i < s.ClientHosts; i++ {
		clients = append(clients, cl.AddHost("client", HostSpec{
			Arch:  ArchLinux,
			Cores: s.ClientCores,
			Factory: echo.ClientFactory(echo.ClientConfig{
				ServerIP:   server.IP(),
				Port:       port,
				MsgSize:    s.MsgSize,
				Rounds:     s.Rounds,
				Conns:      s.ConnsPerThread,
				Metrics:    m,
				Verify:     true,
				VerifySeed: uint64(s.Seed) + uint64(i)*1313,
			}),
		}))
	}

	// Build the randomized-but-reproducible schedule: one independent
	// phase sequence per client link, plus one brief mid-run outage of
	// the server link (every flow survives it via retransmission).
	rng := rand.New(rand.NewSource(s.Seed*0x9e3779b9 + 17))
	var sites []*faults.Site
	for _, h := range clients {
		site := cl.Faults(h)
		sites = append(sites, site)
		var plan faults.Plan
		for p := 0; p < s.Phases; p++ {
			at := s.Warmup + time.Duration(p)*s.PhaseLen
			cfg := chaosMenu(rng)
			plan.Steps = append(plan.Steps, faults.Step{At: at, Cfg: cfg})
			if rng.Intn(8) == 0 {
				// Short link flap inside the phase.
				plan.Steps = append(plan.Steps,
					faults.Step{At: at + s.PhaseLen/4, Cfg: faults.Config{Down: true}},
					faults.Step{At: at + s.PhaseLen/2, Cfg: cfg})
			}
		}
		plan.Steps = append(plan.Steps,
			faults.Step{At: s.Warmup + time.Duration(s.Phases)*s.PhaseLen, Cfg: faults.Config{}})
		site.Schedule(plan)
	}
	srvSite := cl.Faults(server)
	sites = append(sites, srvSite)
	mid := s.Warmup + time.Duration(s.Phases/2)*s.PhaseLen
	srvSite.Schedule(faults.Plan{Steps: []faults.Step{
		{At: mid, Cfg: faults.Config{Down: true}},
		{At: mid + 150*time.Microsecond, Cfg: faults.Config{}},
	}})

	cl.Start()
	cl.Run(s.Warmup)
	res := ChaosResult{}
	prev := m.Msgs.Total()
	for p := 0; p < s.Phases; p++ {
		cl.Run(s.PhaseLen)
		now := m.Msgs.Total()
		res.PhaseRates = append(res.PhaseRates, float64(now-prev)/s.PhaseLen.Seconds())
		prev = now
	}
	// Heal everything and drain: in-flight rounds finish, retransmission
	// queues empty, clients stop reconnecting.
	for _, site := range sites {
		site.Heal()
	}
	m.Running = false
	cl.Run(30 * time.Millisecond)

	res.Msgs = m.Msgs.Total()
	res.VerifyErrors = m.VerifyErrors.Total()
	res.SumMismatches = m.SumMismatches.Total()
	res.ConnFailures = m.Failures.Total()
	for _, site := range sites {
		st := site.Stats()
		res.Injected.Delivered += st.Delivered
		res.Injected.Dropped += st.Dropped
		res.Injected.Duplicated += st.Duplicated
		res.Injected.Corrupted += st.Corrupted
		res.Injected.Delayed += st.Delayed
	}
	addTCP := func(rexmit, bad, ooo uint64) {
		res.Retransmits += rexmit
		res.BadChecksums += bad
		res.OutOfOrder += ooo
	}
	for _, dp := range cl.ixs {
		for i := 0; i < dp.Threads(); i++ {
			t := dp.Thread(i).Stack().TCP()
			addTCP(t.Retransmits, t.BadChecksums, t.OutOfOrderSegs)
		}
	}
	for _, lh := range cl.linuxes {
		t := lh.Stack().TCP()
		addTCP(t.Retransmits, t.BadChecksums, t.OutOfOrderSegs)
	}
	for _, mh := range cl.mtcps {
		for i := 0; i < mh.Cores(); i++ {
			t := mh.Stack(i).TCP()
			addTCP(t.Retransmits, t.BadChecksums, t.OutOfOrderSegs)
		}
	}
	res.FramesLeaked = cl.FramesInUse()
	res.Telemetry = cl.Telemetry()
	return res
}

// Chaos is the registry experiment: the echo fleet's throughput per
// impairment phase, with the invariant outcomes tabled.
func Chaos(sc Scale) *Result {
	r := &Result{
		Name:   "echo fleet under randomized fault schedule",
		Figure: "chaos (robustness: §3 NIC-edge drops, impaired links)",
		XLabel: "phase",
		YLabel: "msgs/s",
	}
	phases := 8
	if sc.Window >= 20*time.Millisecond {
		phases = 16
	}
	res := RunChaos(ChaosSetup{Phases: phases, Seed: 23, Shards: sc.Shards})
	for i, rate := range res.PhaseRates {
		r.AddPoint("msgs/s", float64(i), rate)
	}
	r.Tables = append(r.Tables, Table{
		Title:   "fault injection and invariant outcomes",
		Columns: []string{"quantity", "value"},
		Rows: [][]string{
			{"msgs completed", fmt.Sprint(res.Msgs)},
			{"frames dropped/dup/corrupt/delayed", fmt.Sprintf("%d/%d/%d/%d",
				res.Injected.Dropped, res.Injected.Duplicated,
				res.Injected.Corrupted, res.Injected.Delayed)},
			{"tcp retransmits", fmt.Sprint(res.Retransmits)},
			{"tcp bad checksums", fmt.Sprint(res.BadChecksums)},
			{"tcp out-of-order segs", fmt.Sprint(res.OutOfOrder)},
			{"conn failures (reconnected)", fmt.Sprint(res.ConnFailures)},
			{"verify errors", fmt.Sprint(res.VerifyErrors)},
			{"checksum mismatches", fmt.Sprint(res.SumMismatches)},
			{"frames leaked", fmt.Sprint(res.FramesLeaked)},
		},
	})
	if sc.Shards > 1 {
		r.Notes = append(r.Notes, fmt.Sprintf("parallel engine: %v", res.Telemetry))
	}
	if res.VerifyErrors != 0 || res.SumMismatches != 0 || res.FramesLeaked != 0 {
		r.Notes = append(r.Notes, "INVARIANT VIOLATION — see table")
	} else {
		r.Notes = append(r.Notes,
			"invariants held: byte-exact echo streams, zero frame leaks under loss/dup/corrupt/reorder/flap")
	}
	return r
}
