package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Series is one labelled curve of a figure.
type Series struct {
	Label string
	// X is the independent variable (cores, message count, size, ...).
	X []float64
	// Y is the measured value (messages/s, Gbps, µs, ...).
	Y []float64
}

// Table is a formatted result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Result is the output of one experiment.
type Result struct {
	Name   string
	Figure string // paper figure/table this regenerates
	XLabel string
	YLabel string
	Series []Series
	Tables []Table
	Notes  []string
	// Scalars are named headline values that are not series points —
	// e.g. the Fig. 4 bytes/conn at the largest population. They feed
	// benchmark metrics and CI gates; Fprint does not render them (the
	// human-readable form already appears in Notes).
	Scalars []Scalar
}

// Scalar is one named headline value.
type Scalar struct {
	Name  string
	Value float64
}

// AddScalar records a named headline value.
func (r *Result) AddScalar(name string, v float64) {
	r.Scalars = append(r.Scalars, Scalar{Name: name, Value: v})
}

// Scalar returns the named headline value.
func (r *Result) Scalar(name string) (float64, bool) {
	for _, s := range r.Scalars {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// AddPoint appends to the named series, creating it on first use.
func (r *Result) AddPoint(label string, x, y float64) {
	for i := range r.Series {
		if r.Series[i].Label == label {
			r.Series[i].X = append(r.Series[i].X, x)
			r.Series[i].Y = append(r.Series[i].Y, y)
			return
		}
	}
	r.Series = append(r.Series, Series{Label: label, X: []float64{x}, Y: []float64{y}})
}

// Get returns the y value at x for the labelled series.
func (r *Result) Get(label string, x float64) (float64, bool) {
	for _, s := range r.Series {
		if s.Label != label {
			continue
		}
		for i, xv := range s.X {
			if xv == x {
				return s.Y[i], true
			}
		}
	}
	return 0, false
}

// Max returns the maximum y of the labelled series.
func (r *Result) Max(label string) float64 {
	best := 0.0
	for _, s := range r.Series {
		if s.Label != label {
			continue
		}
		for _, y := range s.Y {
			if y > best {
				best = y
			}
		}
	}
	return best
}

// Fprint renders the result as aligned text.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s (%s) ==\n", r.Name, r.Figure)
	if len(r.Series) > 0 {
		// Collect the x grid.
		xs := map[float64]bool{}
		for _, s := range r.Series {
			for _, x := range s.X {
				xs[x] = true
			}
		}
		grid := make([]float64, 0, len(xs))
		for x := range xs {
			grid = append(grid, x)
		}
		sort.Float64s(grid)
		fmt.Fprintf(w, "%-12s", r.XLabel)
		for _, s := range r.Series {
			fmt.Fprintf(w, " %16s", s.Label)
		}
		fmt.Fprintf(w, "   [%s]\n", r.YLabel)
		for _, x := range grid {
			fmt.Fprintf(w, "%-12g", x)
			for _, s := range r.Series {
				if y, ok := r.Get(s.Label, x); ok {
					fmt.Fprintf(w, " %16.4g", y)
				} else {
					fmt.Fprintf(w, " %16s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
	for _, t := range r.Tables {
		fmt.Fprintf(w, "-- %s --\n", t.Title)
		widths := make([]int, len(t.Columns))
		for i, c := range t.Columns {
			widths[i] = len(c)
		}
		for _, row := range t.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		for i, c := range t.Columns {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
		for _, row := range t.Rows {
			for i, cell := range row {
				fmt.Fprintf(w, "%-*s  ", widths[i], cell)
			}
			fmt.Fprintln(w)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the result.
func (r *Result) String() string {
	var b strings.Builder
	r.Fprint(&b)
	return b.String()
}

// Scale controls experiment size so the same code serves `go test
// -bench` (Quick) and the paper-scale `ixbench` runs (Full).
type Scale struct {
	Name        string
	Warmup      time.Duration
	Window      time.Duration
	EchoClients int // client machines for §5.3/5.4 (paper: 18)
	ClientCores int // cores per client machine (paper: 8)
	MemcClients int // client machines for §5.5 (paper: 23)
	MemcCores   int // cores per memcached client machine
	MaxConns    int // Fig. 4 sweep ceiling (paper: 250k)
	RPSSteps    int // points per latency-throughput curve
	// Shards runs shard-aware experiments (Fig. 4, incast, chaos) on the
	// parallel engine with this many OS workers (0/1 = serial). See
	// DESIGN.md "Parallel engine and the determinism contract".
	Shards int
}

// Full approximates the paper's testbed scale.
var Full = Scale{
	Name:        "full",
	Warmup:      10 * time.Millisecond,
	Window:      40 * time.Millisecond,
	EchoClients: 18,
	ClientCores: 8,
	MemcClients: 23,
	MemcCores:   2,
	// The paper's testbed tops out at 250k connections; the full-scale
	// reproduction sweeps Fig. 4 on to 1M to exercise the per-connection
	// memory budget.
	MaxConns: 1_000_000,
	RPSSteps: 10,
}

// Quick is a reduced configuration for unit benchmarks.
var Quick = Scale{
	Name:        "quick",
	Warmup:      4 * time.Millisecond,
	Window:      10 * time.Millisecond,
	EchoClients: 6,
	ClientCores: 4,
	MemcClients: 8,
	MemcCores:   2,
	MaxConns:    20_000,
	RPSSteps:    5,
}
