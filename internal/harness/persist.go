package harness

import (
	"time"

	"ix/internal/apps/echo"
)

// Pacing and budgets of the persistent-cluster measurement engine. All
// are virtual durations; every loop below advances the simulation in
// fixed steps and polls deterministic state, so a fixed-seed sweep is a
// pure function of its setup.
const (
	// drainStep/drainBudget bound the between-points RPC drain;
	// drainPerMsg extends the budget per in-flight RPC so large
	// populations get proportionally more time (budgets are upper
	// bounds — the poll exits as soon as the drain completes).
	drainStep   = 100 * time.Microsecond
	drainBudget = 20 * time.Millisecond
	drainPerMsg = 2 * time.Microsecond
	// establishStep paces the establishment poll; the budget scales
	// with the point's connection delta (quiet ramps run at a few
	// thousand conns/ms, so 4 µs/conn is several-fold slack for SYN
	// retransmission hiccups).
	establishStep    = 250 * time.Microsecond
	establishBase    = 2 * time.Millisecond
	establishPerConn = 4 * time.Microsecond
	// teardownBudget is the fixed floor of the wait for paced-FIN
	// excess to clear the server's connection table; MeasurePoint adds
	// the time the pacing itself needs for the point's excess (see
	// teardownBudgetFor), so one big shrink cannot exhaust a budget
	// sized for small ones.
	teardownBudget = 50 * time.Millisecond
	// settleRun separates establishment/teardown from the measurement
	// window, letting handshake tails and pure-ACK exchanges quiesce.
	settleRun = time.Millisecond
)

// EchoBench is a persistent, warmed echo testbed reused across the sweep
// points of one configuration — the Fig. 4 establishment fast path.
// Where RunEcho pays a full cluster build and connection ramp per point,
// an EchoBench ramps quietly once and then moves between points by
// draining in-flight RPCs, establishing only the delta of connections
// (or retiring the excess via paced FIN), and resetting meters without
// reallocating pools. Each point draws its seed material from a
// per-point schedule, so fixed-seed output is byte-identical run to run
// regardless of how many points preceded it.
type EchoBench struct {
	setup   EchoSetup
	cl      *Cluster
	m       *echo.Metrics
	fleet   *echo.Fleet
	threads int
	point   uint64
}

// NewEchoBench builds the warmed testbed: the full client fleet is
// created up front with an empty connection target; the first
// MeasurePoint establishes its population quietly.
func NewEchoBench(s EchoSetup) *EchoBench {
	if s.ClientHosts <= 0 {
		s.ClientHosts = 1
	}
	if s.ClientCores <= 0 {
		s.ClientCores = 1
	}
	s.ConnsPerThread = 0
	if s.Outstanding <= 0 {
		s.Outstanding = 1
	}
	s.QuietRamp = true
	b := &EchoBench{
		setup:   s,
		m:       echo.NewMetrics(),
		fleet:   &echo.Fleet{},
		threads: s.ClientHosts * s.ClientCores,
	}
	b.cl = buildEchoCluster(&b.setup, b.m, b.fleet)
	b.cl.Start()
	return b
}

// Cluster exposes the underlying testbed (conservation checks, faults).
func (b *EchoBench) Cluster() *Cluster { return b.cl }

// Fleet exposes the client-population coordinator, for callers driving
// pause/drain/retarget cycles directly instead of through MeasurePoint.
func (b *EchoBench) Fleet() *echo.Fleet { return b.fleet }

// Threads returns the client fleet's thread count.
func (b *EchoBench) Threads() int { return b.threads }

// Established returns the fleet's current open-connection count.
func (b *EchoBench) Established() int { return b.fleet.Open() }

// Stop winds the fleet down (no further reconnects).
func (b *EchoBench) Stop() { b.m.Running = false }

// runUntil advances the simulation in fixed steps until done reports
// true or the budget is exhausted; it reports whether done held. The
// polling cadence is fixed, so the stopping time is deterministic.
func (b *EchoBench) runUntil(budget, step time.Duration, done func() bool) bool {
	for elapsed := time.Duration(0); elapsed < budget; elapsed += step {
		if done() {
			return true
		}
		b.cl.Run(step)
	}
	return done()
}

// pacingTime returns how long the fleet's own connect/retire pacing
// needs to move `delta` connections: each thread works through batches
// of RampBatch every RampGap, so the slowest thread takes
// ceil(perThread/batch) gaps. This is the floor any establishment or
// teardown budget must sit above.
func (b *EchoBench) pacingTime(delta int) time.Duration {
	batch, gap := b.setup.RampBatch, b.setup.RampGap
	db, dg := echo.DefaultRampPacing()
	if batch <= 0 {
		batch = db
	}
	if gap <= 0 {
		gap = dg
	}
	perThread := (delta + b.threads - 1) / b.threads
	steps := (perThread + batch - 1) / batch
	return time.Duration(steps) * gap
}

// teardownBudgetFor sizes the paced-FIN wait for one point's shrink of
// `excess` connections: the time the retire pacing itself needs plus
// the fixed teardownBudget floor for FIN-handshake completion. The
// budget used to be the bare constant shared by every sweep point, so a
// single large shrink — or a sweep configured with slow pacing — could
// run out of time and leak its excess into the next point's
// measurement.
func (b *EchoBench) teardownBudgetFor(excess int) time.Duration {
	return teardownBudget + b.pacingTime(excess)
}

// pointSeed is the per-point seed schedule: a splitmix64 scramble of the
// cluster seed and the point ordinal. Every per-point random draw (e.g.
// verify-mode patterns) descends from it, never from sweep history.
func pointSeed(base int64, point uint64) uint64 {
	z := uint64(base) + point*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// MeasurePoint moves the warmed testbed to total connections (rotation
// depth outstanding per thread) and measures one window, returning the
// same steady-state figures RunEcho would. Between points it drains
// in-flight RPCs, establishes only the connection delta (quiet ramp) or
// retires the excess via paced FIN, and resets meters in place.
func (b *EchoBench) MeasurePoint(total, outstanding int, window time.Duration) EchoResult {
	per := (total + b.threads - 1) / b.threads
	if per < 1 {
		per = 1
	}
	out := outstanding
	if out < 1 {
		out = 1
	}
	if per < out {
		out = per
	}
	target := per * b.threads

	// Quiesce: no new RPCs, in-flight ones complete. The budget is
	// per-point — proportional to this point's in-flight population,
	// floored at the fixed constant — so a deep rotation at one sweep
	// point cannot consume slack that later points rely on.
	b.fleet.Pause()
	db := drainBudget + time.Duration(b.fleet.InFlight())*drainPerMsg
	b.runUntil(db, drainStep, func() bool { return b.fleet.InFlight() == 0 })

	// Move the population: delta establishment or paced-FIN teardown.
	b.point++
	prevOpen := b.fleet.Open()
	shrink := prevOpen > target
	delta := target - prevOpen
	if delta < 0 {
		delta = -delta
	}
	b.fleet.Retarget(per, out, pointSeed(b.setup.Seed, b.point))
	budget := establishBase + time.Duration(delta)*establishPerConn + b.pacingTime(delta)
	b.runUntil(budget, establishStep, func() bool {
		return b.fleet.Open() >= target && b.fleet.Pending() == 0
	})
	if shrink {
		// The ring shrank immediately; wait for the FIN handshakes to
		// clear the server's connection table too.
		b.runUntil(b.teardownBudgetFor(delta), establishStep, func() bool {
			return echoServerConns(b.cl, b.setup.ServerArch) <= target
		})
	}
	b.cl.Run(settleRun)

	// Fresh window over reused pools and meters.
	b.m.ResetWindow()
	resetEchoServerStats(b.cl, b.setup.ServerArch)
	b.fleet.Resume()
	b.cl.Run(window)
	if b.setup.Shards > 1 {
		lastFig4Telemetry = b.cl.Telemetry()
	}
	return collectEcho(b.cl, &b.setup, b.m, window)
}
