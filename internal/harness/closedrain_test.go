// Regression tests for the Write-then-Close bug family and the
// writable-again (send-ready) event condition, exercised uniformly on
// all three stacks.
//
// The close-drain bug: app.Conn.Close documents an orderly close, but
// each stack used to issue the TCP FIN immediately — sequencing it at
// sndNxt ahead of bytes still queued in the libix txq / kernel sndbuf /
// mTCP user-level sndbuf, which the engine then refused to transmit in
// FIN_WAIT_1. A Write-then-Close in one callback silently lost the tail
// of the stream. The fix defers the FIN until the ACK-driven flush
// drains the buffer.
//
// The backpressure bug: Send used to truncate silently at the pending
// budget with no writable-again signal, leaving bulk writers to poll
// OnSent or spin. app.SendReadyHandler now delivers exactly one wake
// when the connection can accept bytes again.
package harness

import (
	"testing"
	"time"

	"ix/internal/app"
	"ix/internal/wire"
)

// drainSink counts received bytes and EOFs; it never replies. One
// instance per host (single-core hosts in these tests).
type drainSink struct {
	bytes *int
	eofs  *int
}

func sinkFactory(port uint16, bytes, eofs *int) app.Factory {
	return func(env app.Env, thread, threads int) app.Handler {
		if err := env.Listen(port); err != nil {
			panic(err)
		}
		return &drainSink{bytes: bytes, eofs: eofs}
	}
}

func (s *drainSink) OnAccept(c app.Conn)             {}
func (s *drainSink) OnConnected(c app.Conn, ok bool) {}
func (s *drainSink) OnRecv(c app.Conn, data []byte)  { *s.bytes += len(data) }
func (s *drainSink) OnSent(c app.Conn, n int)        {}
func (s *drainSink) OnEOF(c app.Conn)                { *s.eofs++; c.Close() }
func (s *drainSink) OnClosed(c app.Conn)             {}

// closeClient writes one payload and calls Close in the same callback —
// the pattern that used to race the FIN past the queued bytes.
type closeClient struct {
	payload  int
	accepted *int
}

func closeClientFactory(dst wire.IPv4, port uint16, payload int, accepted *int) app.Factory {
	return func(env app.Env, thread, threads int) app.Handler {
		if err := env.Connect(dst, port, nil); err != nil {
			panic(err)
		}
		return &closeClient{payload: payload, accepted: accepted}
	}
}

func (cc *closeClient) OnAccept(c app.Conn) {}
func (cc *closeClient) OnConnected(c app.Conn, ok bool) {
	if !ok {
		panic("closeClient: connect failed")
	}
	*cc.accepted = c.Send(make([]byte, cc.payload))
	c.Close()
}
func (cc *closeClient) OnRecv(c app.Conn, data []byte) {}
func (cc *closeClient) OnSent(c app.Conn, n int)       {}
func (cc *closeClient) OnEOF(c app.Conn)               {}
func (cc *closeClient) OnClosed(c app.Conn)            {}

// TestCloseDrainsQueuedBytes asserts every byte Send accepted before
// Close reaches the peer ahead of the FIN, on each stack.
func TestCloseDrainsQueuedBytes(t *testing.T) {
	const payload = 256 << 10
	for _, arch := range []Arch{ArchIX, ArchLinux, ArchMTCP} {
		t.Run(arch.String(), func(t *testing.T) {
			cl := NewCluster(1)
			var got, eofs, accepted int
			cl.AddHost("server", HostSpec{Arch: arch, Cores: 1, Factory: sinkFactory(9000, &got, &eofs)})
			srvIP := cl.hosts[0].IP()
			cl.AddHost("client", HostSpec{Arch: arch, Cores: 1, Factory: closeClientFactory(srvIP, 9000, payload, &accepted)})
			cl.Start()
			cl.Run(200 * time.Millisecond)
			if accepted < payload/2 {
				t.Fatalf("Send accepted only %d of %d bytes", accepted, payload)
			}
			if got != accepted {
				t.Errorf("server received %d of %d bytes queued before Close (tail lost to the FIN)", got, accepted)
			}
			if eofs != 1 {
				t.Errorf("server saw %d EOFs, want 1 (FIN never arrived?)", eofs)
			}
			if n := cl.FramesInUse(); n != 0 {
				t.Errorf("%d frames leaked after drain", n)
			}
			if n := cl.TxChunksInUse(); n != 0 {
				t.Errorf("%d TX arena chunks leaked after drain", n)
			}
		})
	}
}

// srStats is shared between the send-ready client and the test.
type srStats struct {
	left  int // bytes not yet accepted by Send
	wakes int // OnSendReady deliveries
	spins int // wakes where a retry accepted nothing
}

// srClient pushes a bulk stream through Send, parking on the
// send-ready condition whenever the stack accepts a short write. It
// deliberately ignores OnSent: OnSendReady must be sufficient on its
// own to complete the transfer, and every wake must make progress.
type srClient struct {
	chunk []byte
	st    *srStats
}

func srClientFactory(dst wire.IPv4, port uint16, st *srStats) app.Factory {
	return func(env app.Env, thread, threads int) app.Handler {
		if err := env.Connect(dst, port, nil); err != nil {
			panic(err)
		}
		return &srClient{chunk: make([]byte, 1<<20), st: st}
	}
}

func (cc *srClient) pump(c app.Conn) {
	for cc.st.left > 0 {
		b := cc.chunk
		if cc.st.left < len(b) {
			b = b[:cc.st.left]
		}
		n := c.Send(b)
		cc.st.left -= n
		if n < len(b) {
			return // short write: the send-ready condition is armed
		}
	}
	c.Close()
}

func (cc *srClient) OnAccept(c app.Conn) {}
func (cc *srClient) OnConnected(c app.Conn, ok bool) {
	if !ok {
		panic("srClient: connect failed")
	}
	cc.pump(c)
}
func (cc *srClient) OnRecv(c app.Conn, data []byte) {}
func (cc *srClient) OnSent(c app.Conn, n int)       {}
func (cc *srClient) OnSendReady(c app.Conn) {
	cc.st.wakes++
	before := cc.st.left
	cc.pump(c)
	if cc.st.left == before {
		cc.st.spins++
	}
}
func (cc *srClient) OnEOF(c app.Conn)    {}
func (cc *srClient) OnClosed(c app.Conn) {}

var _ app.SendReadyHandler = (*srClient)(nil)

// TestSendReadyCompletesBlockedWrite asserts a bulk write far beyond
// the pending-send budget completes driven purely by OnSendReady, with
// zero spin wakeups (every delivery lets Send accept more bytes), on
// each stack.
func TestSendReadyCompletesBlockedWrite(t *testing.T) {
	const total = 6 << 20
	for _, arch := range []Arch{ArchIX, ArchLinux, ArchMTCP} {
		t.Run(arch.String(), func(t *testing.T) {
			cl := NewCluster(1)
			var got, eofs int
			st := &srStats{left: total}
			cl.AddHost("server", HostSpec{Arch: arch, Cores: 1, Factory: sinkFactory(9001, &got, &eofs)})
			srvIP := cl.hosts[0].IP()
			cl.AddHost("client", HostSpec{Arch: arch, Cores: 1, Factory: srClientFactory(srvIP, 9001, st)})
			cl.Start()
			cl.Run(500 * time.Millisecond)
			if st.left != 0 {
				t.Fatalf("writer still blocked with %d of %d bytes unaccepted after %d wakes", st.left, total, st.wakes)
			}
			if got != total {
				t.Errorf("server received %d of %d bytes", got, total)
			}
			if st.wakes == 0 {
				t.Errorf("write never blocked: send-ready path not exercised (raise total?)")
			}
			if st.spins != 0 {
				t.Errorf("%d of %d send-ready wakes made no progress (spin)", st.spins, st.wakes)
			}
			t.Logf("%v: %d bytes in %d wakes", arch, total, st.wakes)
			if n := cl.FramesInUse(); n != 0 {
				t.Errorf("%d frames leaked after drain", n)
			}
			if n := cl.TxChunksInUse(); n != 0 {
				t.Errorf("%d TX arena chunks leaked after drain", n)
			}
		})
	}
}
