package harness

import (
	"fmt"
	"time"

	"ix/internal/app"
	"ix/internal/apps/echo"
	"ix/internal/apps/memcached"
	"ix/internal/core"
	"ix/internal/cp"
	"ix/internal/mutilate"
	"ix/internal/stats"
)

// The multi-tenant runtime. The paper's control plane (§4.1) allocates
// cores across multiple dataplanes sharing one machine — each tenant is
// its own IX instance with its own application. This file builds that
// shape on the simulated testbed: one dataplane per tenant drawing from
// a shared core budget, a shared Linux client fleet whose threads are
// divided among the tenants' load generators (so switch egress toward
// the clients genuinely carries multi-tenant traffic), per-tenant frame
// pool tags for isolation accounting, and a cp.Arbiter moving cores
// between the dataplanes by SLO.

// TenantApp selects a tenant's application mix.
type TenantApp int

const (
	// TenantEcho is the closed-loop 64B-RPC echo rotation (§5.2/§5.4).
	TenantEcho TenantApp = iota
	// TenantMemc is the memcached clone under mutilate open-loop load
	// (§5.5) — the only app kind with an offered-load schedule, so
	// flash crowds live here.
	TenantMemc
	// TenantIncast is a bulk-transfer echo variant (large messages,
	// deep rotation): the fan-in-heavy neighbour whose storms the
	// isolation accounting must charge to the right budget.
	TenantIncast
)

func (a TenantApp) String() string {
	switch a {
	case TenantEcho:
		return "echo"
	case TenantMemc:
		return "memc"
	case TenantIncast:
		return "incast"
	}
	return "?"
}

// SLOSpec is a tenant's latency contract.
type SLOSpec struct {
	// P99 is the tail-latency target the arbiter enforces (zero =
	// best-effort: the tenant can only donate cores).
	P99 time.Duration
	// Envelope is the worst p99 the tenant's owner accepts while the
	// arbiter serves other tenants' violations — what the claim tests
	// assert for the background tenant. Not used by the arbiter.
	Envelope time.Duration
}

// TenantSpec describes one tenant: its app, its SLO and its resources.
type TenantSpec struct {
	Name string
	App  TenantApp
	SLO  SLOSpec
	// Cores is the tenant's starting allocation; MinCores/MaxCores
	// bound what arbitration may do (MaxCores also provisions the
	// dataplane's NIC queue pairs).
	Cores, MinCores, MaxCores int
	// ClientThreads is how many threads of the shared client fleet
	// drive this tenant's load.
	ClientThreads int
	// Conns is connections per client thread.
	Conns int
	// Outstanding is the echo/incast rotation depth per thread.
	Outstanding int
	// MsgSize is the echo/incast message size.
	MsgSize int
	// RPS is the memc tenant's aggregate offered load; Schedule, when
	// non-nil, overrides it with aggregate offered load as a function
	// of virtual time (flash crowds, diurnal ramps).
	RPS      float64
	Schedule func(now int64) float64
	// Workload is the memc key/value mix (default ETC).
	Workload mutilate.Workload
}

// Tenant is one running tenant: its dataplane, its meters and its
// telemetry probes.
type Tenant struct {
	Spec TenantSpec
	// Tag is the isolation-accounting tag (1-based; 0 stays reserved
	// for untagged infrastructure traffic).
	Tag int
	DP  *core.Dataplane
	// Echo/Memc: exactly one is non-nil, matching Spec.App.
	Echo *echo.Metrics
	Memc *mutilate.Metrics
	// Port is the tenant's service port.
	Port uint16

	tap *stats.Histogram
}

// P99Window returns the tenant's 99th-percentile latency over the
// window since the previous call and resets the window (the arbiter's
// reset-on-read probe). A window with no completed responses reads as
// zero — indistinguishable from fast, so pick arbiter cadences long
// enough that a live tenant always completes responses per window.
func (t *Tenant) P99Window() time.Duration {
	p := t.tap.Quantile(0.99)
	t.tap.Reset()
	return p
}

// UtilWindow returns mean core utilization across the tenant's threads
// since the previous call and resets the per-thread windows.
func (t *Tenant) UtilWindow() float64 {
	n := t.DP.Threads()
	if n == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += t.DP.Thread(i).CoreUtilization()
	}
	for i := 0; i < n; i++ {
		t.DP.Thread(i).ResetUtilWindow()
	}
	return sum / float64(n)
}

// Cores returns the tenant's current allocation.
func (t *Tenant) Cores() int { return t.DP.Threads() }

// Responses returns total completed requests (all-time).
func (t *Tenant) Responses() uint64 {
	if t.Memc != nil {
		return t.Memc.Responses.Total()
	}
	return t.Echo.Msgs.Total()
}

// stopLoad winds the tenant's clients down.
func (t *Tenant) stopLoad() {
	if t.Memc != nil {
		t.Memc.Running = false
	}
	if t.Echo != nil {
		t.Echo.Running = false
	}
}

// TenantsSetup configures a multi-tenant testbed.
type TenantsSetup struct {
	// HostCores is the shared server machine's core budget (the
	// arbiter's budget); tenant starting allocations must fit in it.
	HostCores int
	// Ports is NIC ports per tenant dataplane (default 1).
	Ports int
	// ClientHosts/ClientCores size the shared Linux client fleet; the
	// tenants' ClientThreads must fit in ClientHosts×ClientCores.
	ClientHosts, ClientCores int
	// Policy overrides the arbitration policy (nil = default).
	Policy *cp.ArbiterPolicy
	Seed   int64

	// Shards runs the cluster on the sharded engine (0/1 = serial). On
	// a sharded run the arbiter is barrier-stepped: Run slices time
	// into policy intervals and ticks the arbiter between RunFor calls,
	// when every shard worker is parked (an engine-timer tick would
	// fire mid-epoch on shard 0 and race the other shards). The serial
	// path is byte-identical to previous PRs.
	Shards int

	Tenants []TenantSpec
}

// TenantUsage is one tenant's isolation-accounting charge sheet.
type TenantUsage struct {
	Name     string
	Tag      int
	Cores    int
	Frames   int
	TxChunks int
	// EgressBytes/EgressDrops are switch-egress traffic charged to the
	// tenant's tag across every port of the shared fabric.
	EgressBytes uint64
	EgressDrops uint64
	// Busy is the dataplane's kernel+user busy time since the last
	// ResetStats, revoked cores included.
	Busy      time.Duration
	Responses uint64
}

// TenantCluster is a running multi-tenant testbed.
type TenantCluster struct {
	Setup   TenantsSetup
	Cl      *Cluster
	Tenants []*Tenant
	Arb     *cp.Arbiter
	// ServerHosts[i] is tenant i's dataplane host; ClientFleet holds
	// the shared Linux client hosts. Both are fault-injection and
	// egress-limit sites.
	ServerHosts []Host
	ClientFleet []Host

	// Barrier-stepped arbitration state (sharded runs): Run ticks the
	// arbiter every arbStep of virtual time; arbCarry is the phase left
	// over when a Run call ends between ticks.
	arbStep  time.Duration
	arbCarry time.Duration
}

// clientSlot maps one shared-fleet thread to a tenant-local ordinal.
type clientSlot struct {
	tenant  int // index into specs; -1 = idle spare
	ordinal int
}

// idleHandler occupies spare client threads.
type idleHandler struct{}

func (idleHandler) OnAccept(app.Conn)          {}
func (idleHandler) OnConnected(app.Conn, bool) {}
func (idleHandler) OnRecv(app.Conn, []byte)    {}
func (idleHandler) OnSent(app.Conn, int)       {}
func (idleHandler) OnEOF(app.Conn)             {}
func (idleHandler) OnClosed(app.Conn)          {}

// BuildTenants assembles and starts the multi-tenant testbed: one IX
// dataplane per tenant on the shared-core server machine, the shared
// client fleet with threads interleaved across tenants, and the
// arbiter (started, deciding on its cadence as the caller runs the
// cluster).
func BuildTenants(s TenantsSetup) *TenantCluster {
	if s.HostCores <= 0 {
		s.HostCores = 40
	}
	if s.Ports <= 0 {
		s.Ports = 1
	}
	if s.ClientHosts <= 0 {
		s.ClientHosts = 4
	}
	if s.ClientCores <= 0 {
		s.ClientCores = 4
	}
	if s.Seed == 0 {
		s.Seed = 61
	}
	if len(s.Tenants) == 0 {
		panic("harness: BuildTenants needs at least one tenant")
	}
	alloc := 0
	for i := range s.Tenants {
		sp := &s.Tenants[i]
		if sp.Cores <= 0 {
			sp.Cores = 1
		}
		if sp.MinCores <= 0 {
			sp.MinCores = 1
		}
		if sp.MaxCores <= 0 {
			sp.MaxCores = s.HostCores
		}
		if sp.ClientThreads <= 0 {
			sp.ClientThreads = 1
		}
		if sp.Conns <= 0 {
			sp.Conns = 8
		}
		if sp.MsgSize <= 0 {
			if sp.App == TenantIncast {
				sp.MsgSize = 4096
			} else {
				sp.MsgSize = 64
			}
		}
		if sp.Outstanding <= 0 {
			sp.Outstanding = 4
		}
		if sp.Workload.Keys == 0 {
			sp.Workload = mutilate.ETC
		}
		alloc += sp.Cores
	}
	if alloc > s.HostCores {
		panic(fmt.Sprintf("harness: tenant allocations (%d cores) exceed the host budget (%d)", alloc, s.HostCores))
	}
	fleetThreads := s.ClientHosts * s.ClientCores
	want := 0
	for i := range s.Tenants {
		want += s.Tenants[i].ClientThreads
	}
	if want > fleetThreads {
		panic(fmt.Sprintf("harness: tenant client threads (%d) exceed the shared fleet (%d)", want, fleetThreads))
	}

	cl := NewClusterShards(s.Seed, s.Shards)
	tc := &TenantCluster{Setup: s, Cl: cl}

	// Server machine: one dataplane per tenant, tagged 1-based so tag 0
	// stays the untagged-infrastructure slot.
	for i := range s.Tenants {
		sp := s.Tenants[i]
		tag := i + 1
		t := &Tenant{Spec: sp, Tag: tag, tap: stats.NewHistogram()}
		var factory app.Factory
		switch sp.App {
		case TenantMemc:
			t.Port = uint16(11211)
			store := memcached.NewStore(256 << 20)
			mutilate.Preload(store, sp.Workload)
			factory = memcached.ServerFactory(store, t.Port)
			m := mutilate.NewMetrics()
			m.Tap = t.tap
			t.Memc = m
		default:
			t.Port = uint16(9000)
			factory = echo.ServerFactory(t.Port, sp.MsgSize)
			m := echo.NewMetrics()
			m.Tap = t.tap
			t.Echo = m
		}
		h := cl.AddHost(sp.Name, HostSpec{
			Arch:       ArchIX,
			Cores:      sp.Cores,
			MaxThreads: sp.MaxCores,
			Ports:      s.Ports,
			Factory:    factory,
			Tenant:     tag,
		})
		t.DP = cl.IXServer(i)
		tc.Tenants = append(tc.Tenants, t)
		tc.ServerHosts = append(tc.ServerHosts, h)
	}

	// Shared client fleet: interleave tenant threads round-robin across
	// the hosts so each shared host (and the switch egress toward it)
	// carries a mix of tenants.
	slots := make([]clientSlot, fleetThreads)
	for i := range slots {
		slots[i].tenant = -1
	}
	remaining := make([]int, len(s.Tenants))
	ordinal := make([]int, len(s.Tenants))
	for i := range s.Tenants {
		remaining[i] = s.Tenants[i].ClientThreads
	}
	idx := 0
	for idx < fleetThreads {
		progress := false
		for ti := range s.Tenants {
			if remaining[ti] > 0 && idx < fleetThreads {
				slots[idx] = clientSlot{tenant: ti, ordinal: ordinal[ti]}
				ordinal[ti]++
				remaining[ti]--
				idx++
				progress = true
			}
		}
		if !progress {
			break
		}
	}

	// Per-tenant client sub-factories, invoked with tenant-local thread
	// ordinals so seeds and load shares split by tenant, not by host.
	subs := make([]app.Factory, len(s.Tenants))
	for i := range s.Tenants {
		sp := s.Tenants[i]
		t := tc.Tenants[i]
		srvIP := t.DP.IP()
		switch sp.App {
		case TenantMemc:
			share := float64(sp.ClientThreads)
			var sched func(int64) float64
			if sp.Schedule != nil {
				outer := sp.Schedule
				sched = func(now int64) float64 { return outer(now) / share }
			}
			subs[i] = mutilate.LoadFactory(mutilate.LoadConfig{
				ServerIP:  srvIP,
				Port:      t.Port,
				Workload:  sp.Workload,
				Conns:     sp.Conns,
				TargetRPS: sp.RPS / share,
				Schedule:  sched,
				Pipeline:  4,
				Metrics:   t.Memc,
				Seed:      uint64(s.Seed) + uint64(t.Tag)*977,
			})
		default:
			subs[i] = echo.ClientFactory(echo.ClientConfig{
				ServerIP:    srvIP,
				Port:        t.Port,
				MsgSize:     sp.MsgSize,
				Conns:       sp.Conns,
				Outstanding: sp.Outstanding,
				Metrics:     t.Echo,
			})
		}
	}

	for h := 0; h < s.ClientHosts; h++ {
		base := h * s.ClientCores
		ch := cl.AddHost("clients", HostSpec{
			Arch:  ArchLinux,
			Cores: s.ClientCores,
			Factory: func(env app.Env, local, threads int) app.Handler {
				slot := slots[base+local]
				if slot.tenant < 0 {
					return idleHandler{}
				}
				sp := s.Tenants[slot.tenant]
				return subs[slot.tenant](env, slot.ordinal, sp.ClientThreads)
			},
		})
		tc.ClientFleet = append(tc.ClientFleet, ch)
	}
	cl.Start()

	pol := cp.DefaultArbiterPolicy()
	if s.Policy != nil {
		pol = *s.Policy
	}
	members := make([]*cp.Member, len(tc.Tenants))
	for i, t := range tc.Tenants {
		members[i] = &cp.Member{
			Name:     t.Spec.Name,
			DP:       t.DP,
			SLO:      t.Spec.SLO.P99,
			MinCores: t.Spec.MinCores,
			MaxCores: t.Spec.MaxCores,
			P99:      t.P99Window,
			Util:     t.UtilWindow,
		}
	}
	tc.Arb = cp.NewArbiter(cl.Eng, pol, s.HostCores, members...)
	if cl.Shards() > 1 {
		// Barrier-stepped arbitration: Run ticks between RunFor chunks.
		tc.arbStep = pol.Interval
	} else {
		tc.Arb.Start()
	}
	return tc
}

// Run advances the testbed. On a sharded cluster it slices d into
// arbitration intervals and ticks the arbiter at each epoch barrier
// (every shard worker parked), carrying fractional phase across calls;
// on a serial cluster the arbiter's own engine timer does the ticking.
func (tc *TenantCluster) Run(d time.Duration) {
	if tc.arbStep <= 0 {
		tc.Cl.Run(d)
		return
	}
	for d > 0 {
		step := tc.arbStep - tc.arbCarry
		if step > d {
			tc.arbCarry += d
			tc.Cl.Run(d)
			return
		}
		d -= step
		tc.arbCarry = 0
		tc.Cl.Run(step)
		tc.Arb.TickNow()
	}
}

// Stop halts arbitration and winds every tenant's load down; run the
// cluster a little longer afterwards to drain in-flight traffic before
// asserting conservation.
func (tc *TenantCluster) Stop() {
	tc.Arb.Stop()
	for _, t := range tc.Tenants {
		t.stopLoad()
	}
}

// Usage reads every tenant's isolation-accounting charges.
func (tc *TenantCluster) Usage() []TenantUsage {
	out := make([]TenantUsage, len(tc.Tenants))
	for i, t := range tc.Tenants {
		out[i] = TenantUsage{
			Name:        t.Spec.Name,
			Tag:         t.Tag,
			Cores:       t.Cores(),
			Frames:      tc.Cl.TenantFramesInUse(t.Tag),
			TxChunks:    tc.Cl.TenantTxChunksInUse(t.Tag),
			EgressBytes: tc.Cl.TenantEgressBytes(t.Tag),
			EgressDrops: tc.Cl.TenantEgressDrops(t.Tag),
			Busy:        t.DP.BusyTotal(),
			Responses:   t.Responses(),
		}
	}
	return out
}

// Tenants regenerates the multi-tenant arbitration experiment: three
// tenants — a memcached frontend that takes a 4× flash crowd, a bulk
// incast-style neighbour and a small echo tenant — share one server
// machine; the arbiter grows the violating frontend through the spike
// and the series track per-tenant cores and p99 per decision.
func Tenants(sc Scale) *Result {
	warmup := sc.Warmup
	window := sc.Window / 2
	spikeAt := warmup + window
	spikeEnd := spikeAt + window
	base := 200_000.0
	spec := TenantsSetup{
		HostCores:   12,
		ClientHosts: 4,
		ClientCores: 4,
		Seed:        61,
		Shards:      sc.Shards,
		Tenants: []TenantSpec{
			{
				Name: "frontend", App: TenantMemc,
				SLO:   SLOSpec{P99: SLA, Envelope: 2 * SLA},
				Cores: 2, MinCores: 2, MaxCores: 8,
				ClientThreads: 8, Conns: 16,
				Schedule: func(now int64) float64 {
					if now >= int64(spikeAt) && now < int64(spikeEnd) {
						return 4 * base
					}
					return base
				},
			},
			{
				Name: "batch", App: TenantIncast,
				SLO:   SLOSpec{P99: 10 * time.Millisecond},
				Cores: 7, MinCores: 2,
				ClientThreads: 4, Conns: 4, Outstanding: 2,
			},
			{
				Name: "echo", App: TenantEcho,
				SLO:   SLOSpec{P99: 2 * time.Millisecond},
				Cores: 3, MinCores: 1,
				ClientThreads: 4, Conns: 8, Outstanding: 2,
			},
		},
	}
	tc := BuildTenants(spec)
	tc.Run(warmup + 2*window + window) // base, spike, recovery
	tc.Stop()
	tc.Run(5 * time.Millisecond) // drain

	r := &Result{
		Name:   "multi-tenant SLO arbitration under a flash crowd",
		Figure: "§4.1 multi-dataplane core allocation (runtime policy)",
		XLabel: "decision",
		YLabel: "cores / µs",
	}
	for d, row := range tc.Arb.History {
		x := float64(d + 1)
		for _, smp := range row {
			r.AddPoint(smp.Name+" cores", x, float64(smp.Cores))
			r.AddPoint(smp.Name+" p99 µs", x, float64(smp.P99.Microseconds()))
		}
	}
	tbl := Table{
		Title:   "isolation accounting (per-tenant charges)",
		Columns: []string{"tenant", "cores", "egress MB", "egress drops", "busy ms", "responses", "frames leaked", "chunks leaked"},
	}
	for _, u := range tc.Usage() {
		tbl.Rows = append(tbl.Rows, []string{
			u.Name,
			fmt.Sprintf("%d", u.Cores),
			fmt.Sprintf("%.2f", float64(u.EgressBytes)/1e6),
			fmt.Sprintf("%d", u.EgressDrops),
			fmt.Sprintf("%.2f", u.Busy.Seconds()*1e3),
			fmt.Sprintf("%d", u.Responses),
			fmt.Sprintf("%d", u.Frames),
			fmt.Sprintf("%d", u.TxChunks),
		})
	}
	r.Tables = append(r.Tables, tbl)
	r.Notes = append(r.Notes,
		fmt.Sprintf("%d arbiter decisions, %d core moves; budget %d cores fully conserved",
			tc.Arb.Decisions, len(tc.Arb.Moves), tc.Arb.Budget()),
		"frontend cores should rise through the spike and its p99 return under the 500µs SLO")
	return r
}
