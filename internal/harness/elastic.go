package harness

import (
	"fmt"
	"time"

	"ix/internal/apps/memcached"
	"ix/internal/cp"
	"ix/internal/mutilate"
)

// ElasticSetup configures the elastic thread scaling experiment: one IX
// memcached server whose core allocation is managed by an IXCP
// controller, under an offered load that ramps up and back down (the
// energy-proportionality / consolidation scenario of §3: "the control
// plane can add or remove cores dynamically, in order to adapt to load
// changes").
type ElasticSetup struct {
	// MaxCores is the hardware queue-pair budget; the static baseline
	// pins this many threads for the whole run.
	MaxCores int
	// PeakRPS is the aggregate offered load at the top of the ramp.
	PeakRPS float64
	// Steps is the number of load levels on each slope of the triangle
	// ramp; the run has 2*Steps+1 measurement windows.
	Steps int
	// StepWindow is the duration of each load level.
	StepWindow time.Duration
	Warmup     time.Duration

	ClientHosts    int
	ClientCores    int
	ConnsPerThread int
	Workload       mutilate.Workload

	// Static pins MaxCores threads with no controller (the comparison
	// baseline for the elastic run).
	Static bool
	// Policy overrides the controller policy (nil = DefaultPolicy).
	Policy *cp.Policy

	Seed int64
}

// ElasticPoint is one measurement window of the ramp.
type ElasticPoint struct {
	// T is virtual time at the window's end, measured from ramp start.
	T          time.Duration
	OfferedRPS float64
	// AchievedRPS counts completed responses in the window.
	AchievedRPS float64
	// Cores is the elastic thread count at the window's end.
	Cores int
	// P99 is the 99th-percentile response latency in the window.
	P99 time.Duration
}

// ElasticResult is the outcome of one ramp run.
type ElasticResult struct {
	Points          []ElasticPoint
	PeakAchievedRPS float64
	// CoreSeconds integrates allocated cores over the measured ramp (the
	// consolidation metric: lower is cheaper at equal throughput).
	CoreSeconds float64
	// Migration mechanics observed on the server dataplane.
	Migrations    uint64
	FlowsMigrated uint64
	FramesRehomed uint64
	// Drops are NIC-edge RX drops over the whole run.
	Drops uint64
	// Log is the controller's action log (empty for a static run).
	Log []cp.Event
}

// RunElastic executes one load ramp against an IX memcached server and
// samples cores-used, throughput and tail latency per window.
func RunElastic(s ElasticSetup) ElasticResult {
	if s.MaxCores <= 0 {
		s.MaxCores = 4
	}
	if s.PeakRPS <= 0 {
		s.PeakRPS = 400_000
	}
	if s.Steps <= 0 {
		s.Steps = 4
	}
	if s.StepWindow <= 0 {
		s.StepWindow = 5 * time.Millisecond
	}
	if s.Warmup <= 0 {
		s.Warmup = 2 * time.Millisecond
	}
	if s.ClientHosts <= 0 {
		s.ClientHosts = 4
	}
	if s.ClientCores <= 0 {
		s.ClientCores = 2
	}
	if s.ConnsPerThread <= 0 {
		s.ConnsPerThread = 8
	}
	if s.Workload.Keys == 0 {
		s.Workload = mutilate.ETC
	}
	if s.Seed == 0 {
		s.Seed = 23
	}

	cl := NewCluster(s.Seed)
	const port = 11211
	store := memcached.NewStore(256 << 20)
	mutilate.Preload(store, s.Workload)
	startCores := 1
	if s.Static {
		startCores = s.MaxCores
	}
	cl.AddHost("memcached", HostSpec{
		Arch:       ArchIX,
		Cores:      startCores,
		MaxThreads: s.MaxCores,
		Factory:    memcached.ServerFactory(store, port),
	})
	srv := cl.IXServer(0)

	// The triangle ramp: level w of 2*Steps+1 windows, anchored at the
	// end of warmup (the engine starts at zero).
	windows := 2*s.Steps + 1
	level := func(w int) float64 {
		if w < 0 {
			w = 0
		}
		if w >= windows {
			w = windows - 1
		}
		up := w + 1
		if w > s.Steps {
			up = windows - w
		}
		return s.PeakRPS * float64(up) / float64(s.Steps+1)
	}
	rampStart := int64(s.Warmup)
	threads := s.ClientHosts * s.ClientCores
	schedule := func(now int64) float64 {
		w := int((now - rampStart) / int64(s.StepWindow))
		return level(w) / float64(threads)
	}

	m := mutilate.NewMetrics()
	for i := 0; i < s.ClientHosts; i++ {
		cl.AddHost("mutilate", HostSpec{
			Arch:  ArchLinux,
			Cores: s.ClientCores,
			Factory: mutilate.LoadFactory(mutilate.LoadConfig{
				ServerIP: srv.IP(),
				Port:     port,
				Workload: s.Workload,
				Conns:    s.ConnsPerThread,
				Schedule: schedule,
				Pipeline: 4,
				Metrics:  m,
				Seed:     uint64(s.Seed) + uint64(i)*977,
			}),
		})
	}
	cl.Start()

	var ctl *cp.Controller
	if !s.Static {
		pol := cp.DefaultPolicy()
		if s.Policy != nil {
			pol = *s.Policy
		}
		pol.MaxThreads = s.MaxCores
		ctl = cp.New(cl.Eng, srv, pol)
		ctl.Start()
	}

	cl.Run(s.Warmup)
	srv.ResetStats()

	res := ElasticResult{}
	for w := 0; w < windows; w++ {
		m.ResetWindow()
		cl.Run(s.StepWindow)
		p := ElasticPoint{
			T:           time.Duration(w+1) * s.StepWindow,
			OfferedRPS:  level(w),
			AchievedRPS: float64(m.Responses.Since()) / s.StepWindow.Seconds(),
			Cores:       srv.Threads(),
			P99:         m.LoadLatency.Quantile(0.99),
		}
		res.Points = append(res.Points, p)
		if p.AchievedRPS > res.PeakAchievedRPS {
			res.PeakAchievedRPS = p.AchievedRPS
		}
	}
	m.Running = false

	// Core-seconds: integrate the controller's per-interval samples over
	// the ramp; a static run used MaxCores throughout.
	if ctl != nil {
		for _, smp := range ctl.History {
			if int64(smp.At) >= rampStart {
				// Each sample covers its own window (the adaptive
				// cadence stretches idle windows).
				res.CoreSeconds += float64(smp.Threads) * smp.Window.Seconds()
			}
		}
		res.Log = ctl.Log
		ctl.Stop()
	} else {
		res.CoreSeconds = float64(s.MaxCores) * (time.Duration(windows) * s.StepWindow).Seconds()
	}
	res.Migrations = srv.Migrations
	res.FlowsMigrated = srv.FlowsMigrated
	res.FramesRehomed = srv.FramesRehomed
	res.Drops = srv.RxDrops()
	return res
}

// Elastic regenerates the elastic-scaling scenario as a figure: offered
// vs achieved load and allocated cores over a load ramp, with a static
// MaxCores allocation as the throughput baseline.
func Elastic(sc Scale) *Result {
	set := ElasticSetup{
		MaxCores:    4,
		PeakRPS:     900_000 * float64(sc.MemcClients*sc.MemcCores) / float64(Quick.MemcClients*Quick.MemcCores),
		Steps:       4,
		StepWindow:  sc.Window / 4,
		Warmup:      sc.Warmup,
		ClientHosts: sc.MemcClients * 3 / 4,
		ClientCores: sc.MemcCores,
	}
	el := RunElastic(set)
	stat := set
	stat.Static = true
	st := RunElastic(stat)

	r := &Result{
		Name:   "elastic thread scaling under a load ramp",
		Figure: "§3/§4.4 consolidation scenario",
		XLabel: "ms (ramp time)",
		YLabel: "kRPS / cores",
	}
	for i, p := range el.Points {
		x := p.T.Seconds() * 1e3
		r.AddPoint("offered kRPS", x, p.OfferedRPS/1000)
		r.AddPoint("elastic kRPS", x, p.AchievedRPS/1000)
		r.AddPoint("elastic cores", x, float64(p.Cores))
		r.AddPoint("elastic p99 µs", x, float64(p.P99.Microseconds()))
		if i < len(st.Points) {
			r.AddPoint("static kRPS", x, st.Points[i].AchievedRPS/1000)
		}
	}
	ratio := 0.0
	if st.PeakAchievedRPS > 0 {
		ratio = el.PeakAchievedRPS / st.PeakAchievedRPS
	}
	saved := 0.0
	if st.CoreSeconds > 0 {
		saved = 1 - el.CoreSeconds/st.CoreSeconds
	}
	r.Tables = append(r.Tables, Table{
		Title:   "elastic vs static allocation",
		Columns: []string{"metric", "elastic", "static"},
		Rows: [][]string{
			{"peak kRPS", fmt.Sprintf("%.0f", el.PeakAchievedRPS/1000), fmt.Sprintf("%.0f", st.PeakAchievedRPS/1000)},
			{"core-seconds", fmt.Sprintf("%.4f", el.CoreSeconds), fmt.Sprintf("%.4f", st.CoreSeconds)},
			{"flow-group migrations", fmt.Sprintf("%d", el.Migrations), "0"},
			{"flows migrated", fmt.Sprintf("%d", el.FlowsMigrated), "0"},
			{"RX drops", fmt.Sprintf("%d", el.Drops), fmt.Sprintf("%d", st.Drops)},
		},
	})
	r.Notes = append(r.Notes,
		fmt.Sprintf("elastic peak throughput is %.1f%% of static; core-seconds saved %.0f%%", ratio*100, saved*100),
		"cores allocated should track the offered-load triangle up and down")
	return r
}
