package harness

import (
	"time"

	"ix/internal/apps/echo"
	"ix/internal/cost"
)

// EchoSetup describes one echo experiment run.
type EchoSetup struct {
	ServerArch  Arch
	ServerCores int
	ServerPorts int // 1 = 10GbE, 4 = 4x10GbE
	BatchBound  int

	// IXCost optionally overrides the server cost model (ablations).
	IXCost *cost.IX

	ClientArch  Arch
	ClientHosts int
	ClientCores int
	// ConnsPerThread is connections each client thread keeps open.
	ConnsPerThread int
	// Outstanding enables §5.4 rotation mode when non-zero.
	Outstanding int
	// RampBatch/RampGap pace connection establishment (see
	// echo.ClientConfig); zero means the echo defaults.
	RampBatch int
	RampGap   time.Duration
	// QuietRamp defers all RPC traffic until each client thread's full
	// connection population is established (rotation mode), letting
	// handshakes run without data segments competing for NIC rings,
	// event queues or client CPU — the establishment fast path of the
	// large Fig. 4 points.
	QuietRamp bool
	// Rounds is n round trips per connection before RST (0 = infinite).
	Rounds  int
	MsgSize int

	// ExpectedConns overrides the server's anticipated steady-state
	// population for table presizing. Zero derives it from the static
	// fleet shape (ClientHosts × ClientCores × ConnsPerThread); set it
	// explicitly in persistent-cluster mode, where the population is
	// established dynamically and ConnsPerThread is zero at build time.
	ExpectedConns int

	Warmup, Window time.Duration
	Seed           int64

	// Shards runs the cluster on the sharded engine (0/1 = serial; the
	// serial path is byte-identical to every previous PR). Experiment
	// statistics are equivalent across shard counts; see DESIGN.md
	// "Parallel engine and the determinism contract".
	Shards int
}

// EchoResult is the measured steady-state behaviour.
type EchoResult struct {
	MsgsPerSec  float64
	ConnsPerSec float64
	// GoodputBps is application payload bits/s in one direction.
	GoodputBps float64
	RTTp50     time.Duration
	RTTp99     time.Duration
	RTTMean    time.Duration
	// ServerKernelShare is kernel CPU time / total busy CPU time.
	ServerKernelShare float64
	MeanBatch         float64
	Drops             uint64
	// KernelPerMsg is server kernel time per delivered message (IX only).
	KernelPerMsg time.Duration
	// ServerConns is the server's live connection count at window end
	// (the established-connection axis of Fig. 4).
	ServerConns int
	// ServerBytesPerConn is the server's live per-connection memory at
	// window end under the memprobe accounting contract (the Fig. 4
	// bytes/conn budget).
	ServerBytesPerConn float64
}

// echoPort is the well-known echo service port of the testbed.
const echoPort = 9000

// buildEchoCluster assembles the echo testbed of s — one server host and
// the client fleet sharing one metrics sink — and optionally registers
// the client threads with a fleet coordinator (persistent-cluster mode).
func buildEchoCluster(s *EchoSetup, m *echo.Metrics, fl *echo.Fleet) *Cluster {
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.ServerPorts == 0 {
		s.ServerPorts = 1
	}
	cl := NewClusterShards(s.Seed, s.Shards)
	// The server's steady-state population is known up front — the
	// fleet's full connection count — so its tables are presized
	// instead of doubling their way up during the ramp.
	expected := s.ExpectedConns
	if expected == 0 {
		expected = s.ClientHosts * s.ClientCores * s.ConnsPerThread
	}
	cl.AddHost("server", HostSpec{
		Arch:          s.ServerArch,
		Cores:         s.ServerCores,
		Ports:         s.ServerPorts,
		BatchBound:    s.BatchBound,
		IXCost:        s.IXCost,
		Factory:       echo.ServerFactory(echoPort, s.MsgSize),
		ExpectedConns: expected,
	})
	srvIP := cl.hosts[0].IP()
	for i := 0; i < s.ClientHosts; i++ {
		cl.AddHost("client", HostSpec{
			Arch:  s.ClientArch,
			Cores: s.ClientCores,
			Factory: echo.ClientFactory(echo.ClientConfig{
				ServerIP:    srvIP,
				Port:        echoPort,
				MsgSize:     s.MsgSize,
				Rounds:      s.Rounds,
				Conns:       s.ConnsPerThread,
				Outstanding: s.Outstanding,
				RampBatch:   s.RampBatch,
				RampGap:     s.RampGap,
				QuietRamp:   s.QuietRamp,
				Fleet:       fl,
				Metrics:     m,
			}),
		})
	}
	return cl
}

// resetEchoServerStats starts a fresh server measurement window.
func resetEchoServerStats(cl *Cluster, arch Arch) {
	switch arch {
	case ArchIX:
		cl.IXServer(0).ResetStats()
	case ArchLinux:
		cl.LinuxHost(0).ResetStats()
	}
}

// echoServerConns reads the server's live connection count.
func echoServerConns(cl *Cluster, arch Arch) int {
	switch arch {
	case ArchIX:
		return cl.IXServer(0).ConnCount()
	case ArchLinux:
		return cl.LinuxHost(0).ConnCount()
	case ArchMTCP:
		return cl.MTCPHost(0).ConnCount()
	}
	return 0
}

// collectEcho reads one measurement window's results off the testbed.
func collectEcho(cl *Cluster, s *EchoSetup, m *echo.Metrics, window time.Duration) EchoResult {
	res := EchoResult{
		MsgsPerSec:  float64(m.Msgs.Since()) / window.Seconds(),
		ConnsPerSec: float64(m.Conns.Since()) / window.Seconds(),
		RTTp50:      m.Latency.Quantile(0.5),
		RTTp99:      m.Latency.Quantile(0.99),
		RTTMean:     m.Latency.Mean(),
	}
	res.GoodputBps = res.MsgsPerSec * float64(s.MsgSize) * 8
	res.ServerConns = echoServerConns(cl, s.ServerArch)
	res.ServerBytesPerConn = cl.HostFootprint(cl.hosts[0]).PerConn()
	if s.ServerArch == ArchIX {
		dp := cl.IXServer(0)
		k, u := dp.CPUBreakdown()
		if k+u > 0 {
			res.ServerKernelShare = float64(k) / float64(k+u)
		}
		if msgs := m.Msgs.Since(); msgs > 0 {
			res.KernelPerMsg = k / time.Duration(msgs)
		}
		res.MeanBatch = dp.MeanBatch()
		res.Drops = dp.RxDrops()
	}
	return res
}

// RunEcho builds a cluster per setup, warms it, measures a window, and
// returns steady-state rates.
func RunEcho(s EchoSetup) EchoResult {
	m := echo.NewMetrics()
	cl := buildEchoCluster(&s, m, nil)
	cl.Start()
	cl.Run(s.Warmup)
	m.ResetWindow()
	if s.ServerArch == ArchIX {
		cl.IXServer(0).ResetStats()
	}
	cl.Run(s.Window)
	res := collectEcho(cl, &s, m, s.Window)
	m.Running = false
	if s.Shards > 1 {
		lastFig4Telemetry = cl.Telemetry()
	}
	return res
}
