package harness

import (
	"testing"
	"time"

	"ix/internal/apps/echo"
)

// TestOverloadDropsAtNICEdge: §3's claim that queues build up (and drops
// happen) only at the NIC edge. Overload an undersized IX server: the
// RX descriptor rings overflow, drops are counted, and the system keeps
// serving at its capacity with no internal failure.
func TestOverloadDropsAtNICEdge(t *testing.T) {
	cl := NewCluster(21)
	m := echo.NewMetrics()
	cl.AddHost("server", HostSpec{
		Arch: ArchIX, Cores: 1, BatchBound: 16,
		Factory: echo.ServerFactory(9000, 64),
	})
	srv := cl.IXServer(0)
	for i := 0; i < 8; i++ {
		cl.AddHost("client", HostSpec{
			Arch: ArchMTCP, Cores: 4, // mTCP clients push harder per core
			Factory: echo.ClientFactory(echo.ClientConfig{
				ServerIP: srv.IP(), Port: 9000, MsgSize: 64, Rounds: 1024,
				Conns: 16, Metrics: m,
			}),
		})
	}
	cl.Start()
	cl.Run(30 * time.Millisecond)
	m.Running = false
	if m.Msgs.Total() == 0 {
		t.Fatal("server made no progress under overload")
	}
	t.Logf("overload: %d msgs, %d NIC-edge drops", m.Msgs.Total(), srv.RxDrops())
	// Retransmissions recovered whatever was dropped; steady service.
	rate := float64(m.Msgs.Total()) / 0.03
	if rate < 500_000 {
		t.Fatalf("rate %.0f too low — overload collapsed the server", rate)
	}
}

// TestMemoryPressure: a dataplane with a tiny large-page grant drops
// packets when its mbuf pool runs dry but does not fail; service
// continues as buffers recycle.
func TestMemoryPressure(t *testing.T) {
	cl := NewCluster(22)
	m := echo.NewMetrics()
	// MemPages is plumbed via core.Config; build host directly.
	cl.AddHost("server", HostSpec{
		Arch: ArchIX, Cores: 1,
		Factory: echo.ServerFactory(9000, 64),
	})
	srv := cl.IXServer(0)
	cl.AddHost("client", HostSpec{
		Arch: ArchLinux, Cores: 2,
		Factory: echo.ClientFactory(echo.ClientConfig{
			ServerIP: srv.IP(), Port: 9000, MsgSize: 64, Rounds: 0, Conns: 8, Metrics: m,
		}),
	})
	cl.Start()
	cl.Run(10 * time.Millisecond)
	m.Running = false
	if m.Msgs.Total() == 0 {
		t.Fatal("no progress")
	}
	// All buffers recycled at quiescence (no steady-state leak).
	cl.Run(5 * time.Millisecond)
	if inUse := srv.Thread(0).Pool().InUse(); inUse > 16 {
		t.Fatalf("mbufs still held at idle: %d", inUse)
	}
}
