package harness

// Temporary determinism spot-capture used while refactoring the TX path:
// prints exact fixed-seed outputs so byte-identical behaviour can be
// verified across the change. Run with BASELINE_CAPTURE=1.

import (
	"fmt"
	"os"
	"testing"
	"time"
)

func TestBaselineCapture(t *testing.T) {
	if os.Getenv("BASELINE_CAPTURE") == "" {
		t.Skip("set BASELINE_CAPTURE=1 to run")
	}
	type cfg struct {
		name string
		s    EchoSetup
	}
	cases := []cfg{
		{"ix-echo", EchoSetup{
			ServerArch: ArchIX, ServerCores: 2,
			ClientArch: ArchLinux, ClientHosts: 2, ClientCores: 2,
			ConnsPerThread: 4, Rounds: 8, MsgSize: 64,
			Warmup: 2 * time.Millisecond, Window: 4 * time.Millisecond,
		}},
		{"ix-netpipe-4k", EchoSetup{
			ServerArch: ArchIX, ServerCores: 1,
			ClientArch: ArchIX, ClientHosts: 1, ClientCores: 1,
			ConnsPerThread: 1, Rounds: 0, MsgSize: 4096,
			Warmup: 2 * time.Millisecond, Window: 4 * time.Millisecond,
		}},
		{"mtcp-echo", EchoSetup{
			ServerArch: ArchMTCP, ServerCores: 2,
			ClientArch: ArchLinux, ClientHosts: 2, ClientCores: 2,
			ConnsPerThread: 4, Rounds: 8, MsgSize: 64,
			Warmup: 2 * time.Millisecond, Window: 4 * time.Millisecond,
		}},
		{"linux-echo", EchoSetup{
			ServerArch: ArchLinux, ServerCores: 2,
			ClientArch: ArchLinux, ClientHosts: 2, ClientCores: 2,
			ConnsPerThread: 4, Rounds: 8, MsgSize: 64,
			Warmup: 2 * time.Millisecond, Window: 4 * time.Millisecond,
		}},
		{"ix-rotation", EchoSetup{
			ServerArch: ArchIX, ServerCores: 2,
			ClientArch: ArchLinux, ClientHosts: 2, ClientCores: 2,
			ConnsPerThread: 50, Outstanding: 3, MsgSize: 64,
			Warmup: 3 * time.Millisecond, Window: 4 * time.Millisecond,
		}},
		{"ix-bigmsg", EchoSetup{
			ServerArch: ArchIX, ServerCores: 1,
			ClientArch: ArchIX, ClientHosts: 1, ClientCores: 1,
			ConnsPerThread: 1, Rounds: 0, MsgSize: 262144,
			Warmup: 2 * time.Millisecond, Window: 4 * time.Millisecond,
		}},
	}
	for _, c := range cases {
		res := RunEcho(c.s)
		fmt.Printf("%s: msgs=%.6f conns=%.6f p50=%v p99=%v mean=%v srvconns=%d kshare=%.9f batch=%.9f drops=%d kpm=%v\n",
			c.name, res.MsgsPerSec, res.ConnsPerSec, res.RTTp50, res.RTTp99, res.RTTMean,
			res.ServerConns, res.ServerKernelShare, res.MeanBatch, res.Drops, res.KernelPerMsg)
	}
}
