package harness

import (
	"testing"
	"time"
)

// TestSpotFullScale measures the Fig. 3b headline points at the paper's
// full client scale (18 machines x 8 cores). ~16s; skipped with -short.
func TestSpotFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale spot check")
	}
	for _, cfg := range []struct {
		label string
		arch  Arch
		ports int
	}{{"IX-10", ArchIX, 1}, {"IX-40", ArchIX, 4}, {"mTCP-10", ArchMTCP, 1}, {"Linux-10", ArchLinux, 1}} {
		res := RunEcho(EchoSetup{
			ServerArch: cfg.arch, ServerCores: 8, ServerPorts: cfg.ports,
			ClientArch: ArchLinux, ClientHosts: 18, ClientCores: 8,
			ConnsPerThread: 4, Rounds: 1024, MsgSize: 64,
			Warmup: 8 * time.Millisecond, Window: 20 * time.Millisecond,
		})
		t.Logf("%s n=1024 FULL: %.2fM msg/s (kern/msg %v, batch %.1f)",
			cfg.label, res.MsgsPerSec/1e6, res.KernelPerMsg, res.MeanBatch)
	}
}
