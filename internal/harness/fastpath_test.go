package harness

import (
	"fmt"
	"testing"
	"time"
)

// Tests for the establishment fast path: quiet-ramp mode, the
// persistent-cluster sweep engine (EchoBench), and the paced-FIN
// teardown conservation invariants.

// quietSetup is a small fixed quiet-ramp configuration: 16 client
// threads ramping 8k connections with traffic deferred until each
// thread's population is complete.
func quietSetup() EchoSetup {
	threads := 4 * 4
	return EchoSetup{
		ServerArch: ArchIX, ServerCores: 4, ServerPorts: 4,
		ClientArch: ArchLinux, ClientHosts: 4, ClientCores: 4,
		ConnsPerThread: 500, Outstanding: 3, MsgSize: 64,
		QuietRamp: true, RampBatch: 16, RampGap: Fig4QuietGap(ArchIX, threads),
		Warmup: 8 * time.Millisecond, Window: 4 * time.Millisecond,
		Seed: 77,
	}
}

// TestQuietRampEstablishes: quiet-ramp mode brings the full population
// up within the warmup and still moves traffic in the window.
func TestQuietRampEstablishes(t *testing.T) {
	s := quietSetup()
	res := RunEcho(s)
	total := s.ClientHosts * s.ClientCores * s.ConnsPerThread
	t.Logf("established=%d/%d msgs/s=%.3gM", res.ServerConns, total, res.MsgsPerSec/1e6)
	if res.ServerConns < total*95/100 {
		t.Fatalf("quiet ramp established %d, want ≥95%% of %d", res.ServerConns, total)
	}
	if res.MsgsPerSec <= 0 {
		t.Fatal("no traffic after quiet ramp")
	}
}

// TestQuietRampDeterminism: a fixed-seed quiet-ramp run is byte-identical
// across repetitions.
func TestQuietRampDeterminism(t *testing.T) {
	run := func() string {
		return fmt.Sprintf("%+v", RunEcho(quietSetup()))
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("quiet-ramp run not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// benchSetup is the persistent-cluster test configuration.
func benchSetup(arch Arch) EchoSetup {
	threads := 4 * 4
	return EchoSetup{
		ServerArch: arch, ServerCores: 4, ServerPorts: 4,
		ClientArch: ArchLinux, ClientHosts: 4, ClientCores: 4,
		MsgSize: 64, RampBatch: 16, RampGap: Fig4QuietGap(arch, threads),
		Seed: 99,
	}
}

// TestPersistentSweepDeterminism: a fixed-seed persistent sweep (grow,
// grow, shrink) is byte-identical across repetitions — the per-point
// seed schedule and the fixed polling cadences leave nothing
// history-dependent outside the simulation state itself.
func TestPersistentSweepDeterminism(t *testing.T) {
	run := func() string {
		b := NewEchoBench(benchSetup(ArchIX))
		defer b.Stop()
		out := ""
		for _, total := range []int{1600, 4800, 800} {
			out += fmt.Sprintf("%d: %+v\n", total, b.MeasurePoint(total, 3, 3*time.Millisecond))
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("persistent sweep not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestPersistentColdEquivalence: measuring a point on a warmed persistent
// cluster (after a smaller point ran on it) gives the same figures as
// measuring it on a cold cluster. Establishment counts must match
// exactly; rates agree within a small tolerance — the warmed cluster's
// TCP microstate (RTT estimators, port/ISS sequences) legitimately
// differs from a cold ramp's, which perturbs event interleaving without
// changing the steady state being measured.
func TestPersistentColdEquivalence(t *testing.T) {
	const window = 3 * time.Millisecond
	warm := NewEchoBench(benchSetup(ArchIX))
	warm.MeasurePoint(1600, 3, window)
	wres := warm.MeasurePoint(4800, 3, window)
	warm.Stop()

	cold := NewEchoBench(benchSetup(ArchIX))
	cres := cold.MeasurePoint(4800, 3, window)
	cold.Stop()

	t.Logf("warm: conns=%d msgs/s=%.0f; cold: conns=%d msgs/s=%.0f",
		wres.ServerConns, wres.MsgsPerSec, cres.ServerConns, cres.MsgsPerSec)
	if wres.ServerConns != cres.ServerConns {
		t.Errorf("established counts differ: warm %d vs cold %d", wres.ServerConns, cres.ServerConns)
	}
	if cres.MsgsPerSec <= 0 {
		t.Fatal("cold run moved no traffic")
	}
	if diff := wres.MsgsPerSec/cres.MsgsPerSec - 1; diff > 0.025 || diff < -0.025 {
		t.Errorf("per-point throughput differs by %.1f%%: warm %.0f vs cold %.0f",
			diff*100, wres.MsgsPerSec, cres.MsgsPerSec)
	}
}

// TestPacedTeardownConservation: a mass paced-FIN teardown (thousands of
// connections) returns every pooled frame and every TX arena chunk —
// the conservation invariants extended over connection teardown.
func TestPacedTeardownConservation(t *testing.T) {
	b := NewEchoBench(benchSetup(ArchIX))
	b.MeasurePoint(4800, 3, 2*time.Millisecond)
	res := b.MeasurePoint(320, 3, 2*time.Millisecond) // tears down 4480 conns
	if res.ServerConns > 400 {
		t.Errorf("teardown left %d server connections, want ~320", res.ServerConns)
	}
	// Quiesce: stop traffic, let FIN/ACK tails and TIME_WAIT clear.
	b.fleet.Pause()
	b.runUntil(drainBudget, drainStep, func() bool { return b.fleet.InFlight() == 0 })
	b.cl.Run(5 * time.Millisecond)
	b.Stop()
	if n := b.cl.FramesInUse(); n != 0 {
		t.Errorf("%d pooled frames leaked across mass teardown", n)
	}
	if n := b.cl.TxChunksInUse(); n != 0 {
		t.Errorf("%d TX arena chunks leaked across mass teardown", n)
	}
	if got := echoServerConns(b.cl, ArchIX); got > 330 {
		t.Errorf("server still holds %d connections after teardown", got)
	}
}

// TestClaimFig4ScalesTo250k: the establishment fast path carries the
// Fig. 4 sweep to the paper's full 250k connections on the IX-40 and
// Linux-40 server configurations: ≥95% of the population is established
// and the server still moves traffic at the top point.
func TestClaimFig4ScalesTo250k(t *testing.T) {
	if testing.Short() {
		t.Skip("250k-connection establishment ramp")
	}
	const total = 250_000
	for _, arch := range []Arch{ArchIX, ArchLinux} {
		t.Run(arch.String(), func(t *testing.T) {
			threads := fig4FleetHosts * fig4FleetCores
			b := NewEchoBench(EchoSetup{
				ServerArch: arch, ServerCores: 8, ServerPorts: 4,
				ClientArch: ArchLinux, ClientHosts: fig4FleetHosts, ClientCores: fig4FleetCores,
				MsgSize: 64, RampBatch: 16, RampGap: Fig4QuietGap(arch, threads),
			})
			defer b.Stop()
			res := b.MeasurePoint(total, 3, 4*time.Millisecond)
			t.Logf("%s: established=%d msgs/s=%.3gM", arch, res.ServerConns, res.MsgsPerSec/1e6)
			if res.ServerConns < total*95/100 {
				t.Fatalf("established %d connections, want ≥95%% of %d", res.ServerConns, total)
			}
			if res.MsgsPerSec <= 0 {
				t.Fatal("no traffic at 250k connections")
			}
		})
	}
}

// TestClaimFig4ScalesTo1M: the compact per-connection state carries the
// Fig. 4 axis 4× past the paper's 250k testbed limit. The claim is
// threefold: the full 1M population establishes (100%, not ≥95% — the
// establishment fast path must not shed load at this scale), the
// per-connection memory stays under the DESIGN.md budget ceiling at the
// top point, and winding the population down leaks no pooled frames or
// TX arena chunks.
func TestClaimFig4ScalesTo1M(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-connection establishment ramp")
	}
	const total = 1_000_000
	// Ceilings are the PR 10 acceptance bounds (≥30% under the pre-PR
	// measurement); amortization means 1M should do no worse per conn
	// than 250k.
	ceiling := map[Arch]float64{ArchIX: 464.5, ArchLinux: 343.3}
	for _, arch := range []Arch{ArchIX, ArchLinux} {
		t.Run(arch.String(), func(t *testing.T) {
			threads := fig4FleetHosts * fig4FleetCores
			b := NewEchoBench(EchoSetup{
				ServerArch: arch, ServerCores: 8, ServerPorts: 4,
				ClientArch: ArchLinux, ClientHosts: fig4FleetHosts, ClientCores: fig4FleetCores,
				MsgSize: 64, RampBatch: 16, RampGap: Fig4QuietGap(arch, threads),
				ExpectedConns: total,
			})
			defer b.Stop()
			res := b.MeasurePoint(total, 3, 4*time.Millisecond)
			t.Logf("%s: established=%d bytes/conn=%.1f msgs/s=%.3gM",
				arch, res.ServerConns, res.ServerBytesPerConn, res.MsgsPerSec/1e6)
			if res.ServerConns < total {
				t.Fatalf("established %d connections, want 100%% of %d", res.ServerConns, total)
			}
			if res.MsgsPerSec <= 0 {
				t.Fatal("no traffic at 1M connections")
			}
			if res.ServerBytesPerConn > ceiling[arch] {
				t.Fatalf("bytes/conn=%.1f exceeds the %.1f budget ceiling",
					res.ServerBytesPerConn, ceiling[arch])
			}
			// Quiesce and check pool conservation at scale: an idle
			// million-connection population must pin no pooled frames and
			// no arena chunks.
			b.fleet.Pause()
			b.runUntil(drainBudget, drainStep, func() bool { return b.fleet.InFlight() == 0 })
			b.cl.Run(5 * time.Millisecond)
			if n := b.cl.FramesInUse(); n != 0 {
				t.Errorf("%d pooled frames leaked at 1M connections", n)
			}
			if n := b.cl.TxChunksInUse(); n != 0 {
				t.Errorf("%d TX arena chunks leaked at 1M connections", n)
			}
		})
	}
}

// TestRetargetWithInFlightRPCs: a shrink retarget issued without a prior
// drain (the exported Fleet API permits it) must keep rotation-slot
// accounting consistent — a late response arriving on a retired
// connection must not return its slot twice.
func TestRetargetWithInFlightRPCs(t *testing.T) {
	b := NewEchoBench(benchSetup(ArchIX))
	b.MeasurePoint(1600, 3, 2*time.Millisecond)
	// Undrained, unpaused shrink: many victims are mid-RPC, so their
	// responses land after retireStep already reclaimed their slots.
	b.fleet.Retarget(10, 3, 12345)
	b.cl.Run(5 * time.Millisecond)
	if n := b.fleet.InFlight(); n < 0 || n > 3*b.Threads() {
		t.Fatalf("in-flight slots corrupted after undrained shrink: %d (threads=%d)", n, b.Threads())
	}
	// The testbed must still measure sanely afterwards.
	res := b.MeasurePoint(1600, 3, 2*time.Millisecond)
	b.Stop()
	if res.MsgsPerSec <= 0 {
		t.Fatal("no traffic after undrained retarget")
	}
	if n := b.fleet.InFlight(); n < 0 {
		t.Fatalf("negative in-flight count: %d", n)
	}
}
