// Package harness builds the paper's experimental setup (§5.1) — a
// cluster of client machines and one server connected by a 48-port 10GbE
// cut-through switch — and defines one function per table and figure of
// the evaluation, each returning the data series the paper plots.
package harness

import (
	"fmt"
	"time"

	"ix/internal/app"
	"ix/internal/core"
	"ix/internal/cost"
	"ix/internal/fabric"
	"ix/internal/faults"
	"ix/internal/libix"
	"ix/internal/linuxstack"
	"ix/internal/memprobe"
	"ix/internal/mtcpstack"
	"ix/internal/netstack"
	"ix/internal/nicsim"
	"ix/internal/sim"
	"ix/internal/sim/shard"
	"ix/internal/wire"
)

// Arch selects an OS architecture for a host.
type Arch int

// Architectures under comparison.
const (
	ArchIX Arch = iota
	ArchLinux
	ArchMTCP
)

func (a Arch) String() string {
	switch a {
	case ArchIX:
		return "IX"
	case ArchLinux:
		return "Linux"
	case ArchMTCP:
		return "mTCP"
	}
	return "?"
}

// Host abstracts over the three host models for cluster plumbing.
type Host interface {
	NIC() *nicsim.NIC
	ARP() *netstack.ARPTable
	IP() wire.IPv4
	MAC() wire.MAC
	Start()
}

// linux/mtcp hosts need a Start adapter (they already have Start).
var (
	_ Host = (*hostAdapter)(nil)
)

// hostAdapter wraps the concrete host types. The frames/chunks closures
// report the host's outstanding pool resources, so cluster-wide and
// per-tenant conservation sums walk one host list instead of three
// arch-specific ones.
type hostAdapter struct {
	nic    *nicsim.NIC
	arp    *netstack.ARPTable
	ip     wire.IPv4
	mac    wire.MAC
	start  func()
	tenant int
	frames func() int
	chunks func() int
	// footprint samples the host's per-connection memory under the
	// memprobe contract (read-only; never perturbs the simulation).
	footprint func() memprobe.Footprint
	setShard  func(sh int, r fabric.RemoteReleaser)
}

func (h *hostAdapter) NIC() *nicsim.NIC        { return h.nic }
func (h *hostAdapter) ARP() *netstack.ARPTable { return h.arp }
func (h *hostAdapter) IP() wire.IPv4           { return h.ip }
func (h *hostAdapter) MAC() wire.MAC           { return h.mac }
func (h *hostAdapter) Start()                  { h.start() }

// HostSpec describes one machine.
type HostSpec struct {
	Arch    Arch
	Cores   int
	Factory app.Factory
	// Ports is the number of 10GbE NIC ports (4 = the bonded 4x10GbE
	// server configuration).
	Ports int
	// BatchBound is IX's B (ignored elsewhere).
	BatchBound int
	// MaxThreads provisions extra NIC queue pairs beyond Cores so the
	// control plane can grow an IX dataplane (ignored elsewhere).
	MaxThreads int
	// IXCost optionally overrides the IX cost model (ablations).
	IXCost *cost.IX
	// RcvWnd optionally overrides the TCP receive window.
	RcvWnd int
	// MinRTO optionally overrides the TCP retransmission-timeout floor
	// (default 200 µs; the paper cites support for 16 µs incast floors).
	MinRTO time.Duration
	// Tenant tags the host's frame pools for multi-tenant isolation
	// accounting (0 = untagged): every frame the host originates
	// charges this tag at shared switch egress.
	Tenant int
	// ExpectedConns presizes the host's connection tables (TCP engine,
	// syscall gate / socket table, user-library cookie table) for the
	// anticipated steady-state flow population (0 = grow on demand).
	ExpectedConns int
}

// Cluster is the experiment testbed.
type Cluster struct {
	// Eng is the coordinator's engine: the only engine in serial runs,
	// shard 0's (the switch shard's) engine in sharded runs.
	Eng    *sim.Engine
	Switch *fabric.Switch

	// Sharded-runtime state (nil/empty for serial clusters): engines[i]
	// drives shard i; hostShard[i] is host i's shard. The switch and all
	// its ports live on shard 0, hosts round-robin over shards 1..N-1, so
	// every host↔switch cable crosses at full link latency — the widest
	// conservative lookahead this topology offers.
	rt        *shard.Runtime
	engines   []*sim.Engine
	hostShard []int
	nshards   int

	hosts []Host
	// links[i] holds host i's cables, in port order: Port(0) faces the
	// host NIC, Port(1) faces the switch.
	links   [][]*fabric.Link
	sites   []*faults.Site
	ixs     []*core.Dataplane
	linuxes []*linuxstack.Host
	mtcps   []*mtcpstack.Host

	nextIP  uint32
	nextMAC uint64
	seed    uint64
}

// LinkBandwidth is one 10GbE port.
const LinkBandwidth = 10 * fabric.Gbps

// linkLatency is NIC traversal plus propagation, one way.
const linkLatency = fabric.NICLatency + fabric.PropDelay

// NewCluster creates an empty serial testbed.
func NewCluster(seed int64) *Cluster {
	return NewClusterShards(seed, 1)
}

// NewClusterShards creates a testbed that runs on shards OS workers.
// shards ≤ 1 yields the exact serial cluster (one engine, no runtime —
// fixed-seed output stays byte-identical to every previous PR); shards
// N > 1 places the switch on shard 0 and round-robins hosts over shards
// 1..N-1, coupling them only through the cross-shard link latency.
func NewClusterShards(seed int64, shards int) *Cluster {
	if shards <= 1 {
		eng := sim.NewEngine(seed)
		return &Cluster{
			Eng:     eng,
			Switch:  fabric.NewSwitch(eng),
			nextIP:  uint32(wire.Addr4(10, 10, 0, 10)),
			nextMAC: 0x02_00_00_00_00_10,
			seed:    uint64(seed)*0x9e3779b97f4a7c15 + 1,
		}
	}
	engines := make([]*sim.Engine, shards)
	for i := range engines {
		// Engine RNGs are currently unused (hosts and injectors carry
		// their own seeded streams), but keep the per-shard seeds
		// deterministic and distinct anyway.
		engines[i] = sim.NewEngine(seed + int64(i)*0x51_7c_c1_b7_27_22_0a95)
	}
	c := &Cluster{
		Eng:     engines[0],
		Switch:  fabric.NewSwitch(engines[0]),
		rt:      shard.New(engines),
		engines: engines,
		nshards: shards,
		nextIP:  uint32(wire.Addr4(10, 10, 0, 10)),
		nextMAC: 0x02_00_00_00_00_10,
		seed:    uint64(seed)*0x9e3779b97f4a7c15 + 1,
	}
	return c
}

// Shards returns the shard count (1 for serial clusters).
func (c *Cluster) Shards() int {
	if c.rt == nil {
		return 1
	}
	return c.nshards
}

// Telemetry returns the sharded runtime's counters (zero Telemetry with
// Shards==1 for serial clusters).
func (c *Cluster) Telemetry() shard.Telemetry {
	if c.rt == nil {
		return shard.Telemetry{Shards: 1}
	}
	return c.rt.Telemetry()
}

func (c *Cluster) nextAddrs() (wire.IPv4, wire.MAC) {
	ip := wire.IPv4(c.nextIP)
	c.nextIP++
	var mac wire.MAC
	v := c.nextMAC
	c.nextMAC++
	for i := 5; i >= 0; i-- {
		mac[i] = byte(v)
		v >>= 8
	}
	return ip, mac
}

// AddHost builds a machine per spec and cables it to the switch.
func (c *Cluster) AddHost(name string, spec HostSpec) Host {
	ip, mac := c.nextAddrs()
	if spec.Ports <= 0 {
		spec.Ports = 1
	}
	if spec.Cores <= 0 {
		spec.Cores = 1
	}
	c.seed = c.seed*6364136223846793005 + 1442695040888963407
	seed := c.seed
	// Shard placement: hosts round-robin over shards 1..N-1 (shard 0 is
	// the switch's). The host's stacks, NIC and pools all live on heng.
	sh := 0
	heng := c.Eng
	if c.rt != nil {
		sh = 1 + len(c.hosts)%(c.nshards-1)
		heng = c.engines[sh]
	}
	var h *hostAdapter
	switch spec.Arch {
	case ArchIX:
		ccfg := core.Config{
			Name:       name,
			IP:         ip,
			MAC:        mac,
			Threads:    spec.Cores,
			MaxThreads: spec.MaxThreads,
			BatchBound: spec.BatchBound,
			Seed:       seed,
			RcvWnd:     spec.RcvWnd,
			MinRTO:     spec.MinRTO,
			Tenant:     spec.Tenant,
			User:       libix.Program(spec.Factory),

			ExpectedConns: spec.ExpectedConns,
		}
		if spec.IXCost != nil {
			ccfg.Cost = *spec.IXCost
		}
		dp := core.New(heng, ccfg)
		c.ixs = append(c.ixs, dp)
		h = &hostAdapter{nic: dp.NIC(), arp: dp.ARP(), ip: ip, mac: mac, start: dp.Start,
			frames: func() int {
				n := 0
				for i := 0; i < dp.Threads(); i++ {
					n += dp.Thread(i).Stack().FramePool().InUse()
				}
				return n
			},
			chunks: func() int {
				n := 0
				for i := 0; i < dp.Threads(); i++ {
					n += dp.Thread(i).TxPool().InUse()
				}
				return n
			},
			footprint: dp.Footprint,
			setShard:  dp.SetShard}
	case ArchLinux:
		lh := linuxstack.New(heng, linuxstack.Config{
			Name:    name,
			IP:      ip,
			MAC:     mac,
			Cores:   spec.Cores,
			Factory: spec.Factory,
			Seed:    seed,
			RcvWnd:  spec.RcvWnd,
			MinRTO:  spec.MinRTO,

			ExpectedConns: spec.ExpectedConns,
		})
		lh.Stack().FramePool().SetTenant(spec.Tenant)
		c.linuxes = append(c.linuxes, lh)
		h = &hostAdapter{nic: lh.NIC(), arp: lh.ARP(), ip: ip, mac: mac, start: lh.Start,
			frames:    func() int { return lh.Stack().FramePool().InUse() },
			chunks:    func() int { return 0 },
			footprint: lh.Footprint,
			setShard: func(sh int, r fabric.RemoteReleaser) {
				lh.Stack().FramePool().SetShard(sh, r)
			}}
	case ArchMTCP:
		mh := mtcpstack.New(heng, mtcpstack.Config{
			Name:    name,
			IP:      ip,
			MAC:     mac,
			Cores:   spec.Cores,
			Factory: spec.Factory,
			Seed:    seed,
			RcvWnd:  spec.RcvWnd,
			MinRTO:  spec.MinRTO,

			ExpectedConns: spec.ExpectedConns,
		})
		for i := 0; i < mh.Cores(); i++ {
			mh.Stack(i).FramePool().SetTenant(spec.Tenant)
		}
		c.mtcps = append(c.mtcps, mh)
		h = &hostAdapter{nic: mh.NIC(), arp: mh.ARP(), ip: ip, mac: mac, start: mh.Start,
			frames: func() int {
				n := 0
				for i := 0; i < mh.Cores(); i++ {
					n += mh.Stack(i).FramePool().InUse()
				}
				return n
			},
			chunks:    func() int { return 0 },
			footprint: mh.Footprint,
			setShard:  mh.SetShard}
	default:
		panic(fmt.Sprintf("harness: unknown arch %d", spec.Arch))
	}
	h.tenant = spec.Tenant
	if c.rt != nil {
		// Frame pools belong to the host's shard: releases from other
		// shards route home through the runtime's return boxes. The hook
		// stores the assignment in the host, which tags each pool as its
		// owning thread spawns (IX and mTCP build stacks at Start, and IX
		// elastic threads can be granted mid-run).
		h.setShard(sh, c.rt.Releaser(sh))
	}
	// Cable the NIC's ports to the switch.
	var portIdxs []int
	var hostLinks []*fabric.Link
	for p := 0; p < spec.Ports; p++ {
		link := fabric.NewLink(c.Eng, LinkBandwidth, linkLatency)
		if c.rt != nil {
			// The host side transmits on the host's shard, the switch
			// side on shard 0; both directions cross, so frame delivery
			// becomes a cross-shard post and this cable's latency bounds
			// the epoch lookahead.
			link.Port(0).SetShard(heng, sh, 0, c.rt.Remote(sh, 0))
			link.Port(1).SetShard(c.Eng, 0, sh, c.rt.Remote(0, sh))
			c.rt.ObserveLink(link.Latency())
		}
		h.NIC().AttachPort(link.Port(0))
		idx := c.Switch.AddPort(link.Port(1))
		portIdxs = append(portIdxs, idx)
		hostLinks = append(hostLinks, link)
	}
	if spec.Ports == 1 {
		c.Switch.Learn(mac, portIdxs[0])
	} else {
		c.Switch.Bond(mac, portIdxs)
	}
	c.hosts = append(c.hosts, h)
	c.hostShard = append(c.hostShard, sh)
	c.links = append(c.links, hostLinks)
	c.sites = append(c.sites, nil)
	return h
}

// HostShard returns the shard index of h (0 in serial clusters).
func (c *Cluster) HostShard(h Host) int { return c.hostShard[c.hostIndex(h)] }

// hostIndex finds h's position in the cluster.
func (c *Cluster) hostIndex(h Host) int {
	for i, o := range c.hosts {
		if o == h {
			return i
		}
	}
	panic("harness: host not in cluster")
}

// HostLinks returns the cables of h, in NIC-port order. Port(0) of each
// link faces the host, Port(1) the switch.
func (c *Cluster) HostLinks(h Host) []*fabric.Link {
	return c.links[c.hostIndex(h)]
}

// Faults returns (attaching on first use) the fault-injection site
// covering both directions of every cable of h. Injector seeds derive
// from the cluster seed chain, so a fixed-seed run replays the same
// fault schedule byte for byte.
func (c *Cluster) Faults(h Host) *faults.Site {
	idx := c.hostIndex(h)
	if c.sites[idx] == nil {
		site := &faults.Site{}
		for _, link := range c.links[idx] {
			c.seed = c.seed*6364136223846793005 + 1442695040888963407
			// Port(0)'s endpoint is the host NIC: impairs traffic
			// toward the host. Port(1)'s endpoint is the switch:
			// impairs traffic from the host. Each injector runs on the
			// engine of the shard that owns its port (delivery side),
			// keeping its PRNG stream on one worker; in serial runs both
			// engines are c.Eng, so schedules replay byte for byte.
			site.Injectors = append(site.Injectors,
				faults.Interpose(link.Port(0).Engine(), link.Port(0), c.seed),
				faults.Interpose(link.Port(1).Engine(), link.Port(1), c.seed^0xa5a5a5a5a5a5a5a5))
		}
		c.sites[idx] = site
	}
	return c.sites[idx]
}

// LimitEgress bounds the switch egress buffer toward h to n bytes per
// port — the shallow-buffer configuration incast experiments need (the
// default fabric queues without bound, so drops happen only at the NIC
// edge, §3).
func (c *Cluster) LimitEgress(h Host, n int) {
	for _, link := range c.HostLinks(h) {
		link.Port(1).SetTxBuffer(n)
	}
}

// EgressDrops sums frames tail-dropped at the switch egress toward h.
func (c *Cluster) EgressDrops(h Host) uint64 {
	var n uint64
	for _, link := range c.HostLinks(h) {
		n += link.Port(1).TxDropped
	}
	return n
}

// FramesInUse sums outstanding frames across every stack's pool: the
// cluster-wide frame-conservation invariant. After traffic quiesces it
// must return to zero — a dropped, duplicated or delayed frame that
// leaks (or double-frees, which panics in fabric) shows up here.
func (c *Cluster) FramesInUse() int {
	n := 0
	for _, h := range c.hosts {
		n += h.(*hostAdapter).frames()
	}
	return n
}

// HostFootprint samples one host's per-connection memory under the
// memprobe contract: live connections and the bytes they pin across
// every layer of that host's stack. Read-only — safe to call between
// engine steps without perturbing fixed-seed output.
func (c *Cluster) HostFootprint(h Host) memprobe.Footprint {
	return c.hosts[c.hostIndex(h)].(*hostAdapter).footprint()
}

// TxChunksInUse sums TX arena chunks held across every IX dataplane
// thread: the zero-copy-arena conservation invariant. Once traffic has
// quiesced (all sends acknowledged, dead connections torn down) it must
// return to zero — a teardown path that fails to release a connection's
// arena shows up here.
func (c *Cluster) TxChunksInUse() int {
	n := 0
	for _, h := range c.hosts {
		n += h.(*hostAdapter).chunks()
	}
	return n
}

// TenantFramesInUse sums outstanding frames across the pools of hosts
// tagged with tenant tag. Because every pool belongs to exactly one
// host and every host carries exactly one tag, summing over all tags
// reproduces FramesInUse exactly — the per-tenant half of the
// conservation contract (no unattributed or double-charged frames).
func (c *Cluster) TenantFramesInUse(tag int) int {
	n := 0
	for _, h := range c.hosts {
		if a := h.(*hostAdapter); a.tenant == tag {
			n += a.frames()
		}
	}
	return n
}

// TenantTxChunksInUse is TenantFramesInUse for TX arena chunks.
func (c *Cluster) TenantTxChunksInUse(tag int) int {
	n := 0
	for _, h := range c.hosts {
		if a := h.(*hostAdapter); a.tenant == tag {
			n += a.chunks()
		}
	}
	return n
}

// MaxTenantTag returns the highest tenant tag any host carries.
func (c *Cluster) MaxTenantTag() int {
	max := 0
	for _, h := range c.hosts {
		if a := h.(*hostAdapter); a.tenant > max {
			max = a.tenant
		}
	}
	return max
}

// EgressBytes sums bytes transmitted by switch egress ports (toward
// hosts) across the cluster — the shared-fabric byte charge.
func (c *Cluster) EgressBytes() uint64 {
	var n uint64
	for _, hostLinks := range c.links {
		for _, link := range hostLinks {
			n += link.Port(1).TxBytes
		}
	}
	return n
}

// TenantEgressBytes sums switch-egress bytes charged to tenant tag
// across every port of the cluster: frames carry their originating
// pool's tag across hops, so a tenant's traffic toward a *shared*
// client host is still charged to that tenant even though the egress
// port is shared.
func (c *Cluster) TenantEgressBytes(tag int) uint64 {
	var n uint64
	for _, hostLinks := range c.links {
		for _, link := range hostLinks {
			n += link.Port(1).TenantTxStats(tag).Bytes
		}
	}
	return n
}

// TenantEgressDrops sums switch-egress tail drops charged to tag.
func (c *Cluster) TenantEgressDrops(tag int) uint64 {
	var n uint64
	for _, hostLinks := range c.links {
		for _, link := range hostLinks {
			n += link.Port(1).TenantTxStats(tag).Dropped
		}
	}
	return n
}

// IXServer returns the i-th IX dataplane added.
func (c *Cluster) IXServer(i int) *core.Dataplane { return c.ixs[i] }

// LinuxHost returns the i-th Linux host added.
func (c *Cluster) LinuxHost(i int) *linuxstack.Host { return c.linuxes[i] }

// MTCPHost returns the i-th mTCP host added.
func (c *Cluster) MTCPHost(i int) *mtcpstack.Host { return c.mtcps[i] }

// Start preloads every host's ARP table with every other host (a warmed
// testbed — the paper's experiments run after connectivity is
// established) and starts all hosts.
func (c *Cluster) Start() {
	for _, a := range c.hosts {
		for _, b := range c.hosts {
			if a != b {
				a.ARP().Learn(b.IP(), b.MAC())
			}
		}
	}
	for _, h := range c.hosts {
		h.Start()
	}
	// Topology is complete: freeze the switch tables so no frame can
	// ever observe a partially built FDB.
	c.Switch.Seal()
}

// Run advances the simulation by d (all shards in lockstep when
// sharded).
func (c *Cluster) Run(d time.Duration) {
	if c.rt != nil {
		c.rt.RunFor(d)
		return
	}
	c.Eng.RunFor(d)
}
