package harness

import (
	"fmt"
	"time"

	"ix/internal/apps/incast"
	"ix/internal/sim/shard"
)

// IncastSetup describes one N-to-1 synchronized-burst measurement: N
// sender machines burst Burst bytes each at barrier instants toward one
// sink whose switch egress port has a shallow EgressBuffer — the classic
// incast collapse, swept over tcp.Config.MinRTO (the paper's §4.2 cites
// supporting retransmission timeouts down to 16 µs for exactly this).
type IncastSetup struct {
	// ServerArch/SenderArch select the sink and sender architectures;
	// the zero value is ArchIX (callers wanting the paper's Linux
	// client fleet set SenderArch: ArchLinux explicitly).
	ServerArch Arch
	SenderArch Arch
	Senders    int
	Burst      int
	// EgressBuffer bounds the switch egress toward the sink, in bytes
	// (default 32 KB — a Trident+-class shallow per-port share; the
	// default 8 KB Burst fits the initial window, so overflow drops
	// whole window tails and recovery is RTO-bound, the regime the
	// 16 µs floor targets).
	EgressBuffer int
	// MinRTO applies to every host (0 = the 200 µs default).
	MinRTO time.Duration
	// Rounds barriers are spaced Period apart, the first at Warmup.
	Rounds int
	Period time.Duration
	Warmup time.Duration
	Seed   int64
	// Shards runs the cluster on the sharded engine (0/1 = serial).
	Shards int
}

// IncastResult is one measured incast point.
type IncastResult struct {
	// GoodputBps is aggregate burst payload over mean completion time.
	GoodputBps float64
	// MeanCompletion/P99Completion: synchronized start to last sender's
	// full acknowledgment.
	MeanCompletion time.Duration
	P99Completion  time.Duration
	RoundsDone     int
	RoundsFailed   int
	// EgressDrops counts switch tail drops toward the sink;
	// Retransmits/Timeouts aggregate the sender stacks' counters.
	EgressDrops uint64
	Retransmits uint64
	SinkBytes   uint64
	// FramesLeaked is the cluster frame-pool imbalance after drain
	// (must be 0: drops and retransmissions must conserve frames).
	FramesLeaked int
	// Telemetry is the parallel engine's per-run instrumentation
	// (Shards==1 for serial runs).
	Telemetry shard.Telemetry
}

// RunIncast executes one synchronized incast configuration.
func RunIncast(s IncastSetup) IncastResult {
	if s.Seed == 0 {
		s.Seed = 11
	}
	if s.Senders <= 0 {
		s.Senders = 16
	}
	if s.Burst <= 0 {
		s.Burst = 8 << 10
	}
	if s.EgressBuffer <= 0 {
		s.EgressBuffer = 32 << 10
	}
	if s.Rounds <= 0 {
		s.Rounds = 8
	}
	if s.Period <= 0 {
		s.Period = 4 * time.Millisecond
	}
	if s.Warmup <= 0 {
		s.Warmup = time.Millisecond
	}
	cl := NewClusterShards(s.Seed, s.Shards)
	m := incast.NewMetrics()
	const port = 5001
	sink := cl.AddHost("sink", HostSpec{
		Arch:    s.ServerArch,
		Cores:   1,
		MinRTO:  s.MinRTO,
		Factory: incast.SinkFactory(port, s.Burst, m),
	})
	cl.LimitEgress(sink, s.EgressBuffer)
	for i := 0; i < s.Senders; i++ {
		cl.AddHost("sender", HostSpec{
			Arch:   s.SenderArch,
			Cores:  1,
			MinRTO: s.MinRTO,
			Factory: incast.SenderFactory(incast.Config{
				ServerIP: sink.IP(),
				Port:     port,
				Burst:    s.Burst,
				Start:    s.Warmup,
				Period:   s.Period,
				Rounds:   s.Rounds,
				Metrics:  m,
			}),
		})
	}
	cl.Start()
	cl.Run(s.Warmup + time.Duration(s.Rounds)*s.Period + s.Period)
	m.Running = false
	cl.Run(20 * time.Millisecond) // drain retransmissions and ACKs

	res := IncastResult{
		MeanCompletion: m.Completion.Mean(),
		P99Completion:  m.Completion.Quantile(0.99),
		RoundsDone:     int(m.RoundsDone.Total()),
		RoundsFailed:   int(m.RoundsFailed.Total()),
		EgressDrops:    cl.EgressDrops(sink),
		SinkBytes:      m.SinkBytes.Total(),
		FramesLeaked:   cl.FramesInUse(),
		Telemetry:      cl.Telemetry(),
	}
	for _, lh := range cl.linuxes {
		res.Retransmits += lh.Stack().TCP().Retransmits
	}
	for _, mh := range cl.mtcps {
		for i := 0; i < mh.Cores(); i++ {
			res.Retransmits += mh.Stack(i).TCP().Retransmits
		}
	}
	for _, dp := range cl.ixs {
		for i := 0; i < dp.Threads(); i++ {
			res.Retransmits += dp.Thread(i).Stack().TCP().Retransmits
		}
	}
	if res.MeanCompletion > 0 {
		total := float64(s.Senders) * float64(s.Burst) * 8
		res.GoodputBps = total / res.MeanCompletion.Seconds()
	}
	return res
}

// incastRTOs is the MinRTO sweep of the incast experiment: the 200 µs
// default down to the paper-cited 16 µs floor.
var incastRTOs = []time.Duration{
	200 * time.Microsecond,
	100 * time.Microsecond,
	50 * time.Microsecond,
	16 * time.Microsecond,
}

// Incast regenerates the incast goodput-collapse/recovery figure: for
// each MinRTO, aggregate goodput vs fan-in. Collapse deepens with
// fan-in under the 200 µs floor (whole-window tail drops stall flows
// for an RTO that dwarfs the transfer), while the 16 µs floor recovers
// most of it — the justification for fine-grained timeouts.
func Incast(sc Scale) *Result {
	r := &Result{
		Name:   "incast goodput vs fan-in (MinRTO sweep)",
		Figure: "incast (§4.2: 16µs RTO floor)",
		XLabel: "senders",
		YLabel: "goodput Gbps",
	}
	fanins := []int{4, 8, 16, 24, 32}
	rounds := 6
	if sc.Window >= 20*time.Millisecond {
		rounds = 10
	}
	for _, rto := range incastRTOs {
		for _, n := range fanins {
			res := RunIncast(IncastSetup{
				SenderArch: ArchLinux,
				Senders:    n,
				MinRTO:     rto,
				Rounds:     rounds,
				Seed:       31,
				Shards:     sc.Shards,
			})
			lastIncastTelemetry = res.Telemetry
			r.AddPoint(fmt.Sprintf("MinRTO=%v", rto), float64(n), res.GoodputBps/1e9)
			if res.FramesLeaked != 0 {
				r.Notes = append(r.Notes, fmt.Sprintf(
					"INVARIANT VIOLATION: %d frames leaked at MinRTO=%v N=%d",
					res.FramesLeaked, rto, n))
			}
		}
	}
	r.Notes = append(r.Notes,
		"whole-window egress tail drops stall flows for MinRTO; 16µs floor recovers goodput")
	if sc.Shards > 1 {
		r.Notes = append(r.Notes, fmt.Sprintf("parallel engine: %v", lastIncastTelemetry))
	}
	return r
}

// lastIncastTelemetry is the most recent sharded incast run's engine
// telemetry, for the experiment footer.
var lastIncastTelemetry = shard.Telemetry{}
