package harness

import (
	"fmt"
	"time"

	"ix/internal/apps/memcached"
	"ix/internal/mutilate"
)

// MemcSetup describes one memcached measurement point (§5.5).
type MemcSetup struct {
	ServerArch  Arch
	ServerCores int
	BatchBound  int
	Workload    mutilate.Workload
	// TargetRPS is the offered load across all clients.
	TargetRPS float64

	ClientHosts    int
	ClientCores    int
	ConnsPerThread int

	Warmup, Window time.Duration
	Seed           int64

	// Shards runs the cluster on the sharded engine (0/1 = serial).
	Shards int
}

// MemcResult is one measured point.
type MemcResult struct {
	AchievedRPS float64
	AgentP99    time.Duration
	AgentMean   time.Duration
	LoadP99     time.Duration
	// ServerKernelShare is the §5.5 CPU breakdown (kernel time share).
	ServerKernelShare float64
	Hits, Misses      uint64
}

// RunMemcached builds the §5.5 testbed: one memcached server (IX or
// Linux), ClientHosts mutilate load machines, and one separate unloaded
// latency agent, with the keyspace preloaded.
func RunMemcached(s MemcSetup) MemcResult {
	if s.Seed == 0 {
		s.Seed = 7
	}
	if s.ConnsPerThread <= 0 {
		s.ConnsPerThread = 32
	}
	cl := NewClusterShards(s.Seed, s.Shards)
	const port = 11211
	store := memcached.NewStore(256 << 20)
	mutilate.Preload(store, s.Workload)
	cl.AddHost("memcached", HostSpec{
		Arch:       s.ServerArch,
		Cores:      s.ServerCores,
		Ports:      1,
		BatchBound: s.BatchBound,
		Factory:    memcached.ServerFactory(store, port),
	})
	srvIP := cl.hosts[0].IP()
	m := mutilate.NewMetrics()
	threads := s.ClientHosts * s.ClientCores
	for i := 0; i < s.ClientHosts; i++ {
		cl.AddHost("mutilate", HostSpec{
			Arch:  ArchLinux, // clients always run Linux (§5.1)
			Cores: s.ClientCores,
			Factory: mutilate.LoadFactory(mutilate.LoadConfig{
				ServerIP:  srvIP,
				Port:      port,
				Workload:  s.Workload,
				Conns:     s.ConnsPerThread,
				TargetRPS: s.TargetRPS / float64(threads),
				Pipeline:  4,
				Metrics:   m,
				Seed:      uint64(s.Seed) + uint64(i)*977,
			}),
		})
	}
	// The separate unloaded latency agent.
	cl.AddHost("agent", HostSpec{
		Arch:  ArchLinux,
		Cores: 1,
		Factory: mutilate.AgentFactory(mutilate.AgentConfig{
			ServerIP: srvIP,
			Port:     port,
			Workload: s.Workload,
			Metrics:  m,
			Seed:     uint64(s.Seed) * 31,
		}),
	})
	cl.Start()
	cl.Run(s.Warmup)
	m.ResetWindow()
	if s.ServerArch == ArchIX {
		cl.IXServer(0).ResetStats()
	} else {
		cl.LinuxHost(0).ResetStats()
	}
	cl.Run(s.Window)
	res := MemcResult{
		AchievedRPS: float64(m.Responses.Since()) / s.Window.Seconds(),
		AgentP99:    m.AgentLatency.Quantile(0.99),
		AgentMean:   m.AgentLatency.Mean(),
		LoadP99:     m.LoadLatency.Quantile(0.99),
		Hits:        store.Hits,
		Misses:      store.Misses,
	}
	var k, u time.Duration
	if s.ServerArch == ArchIX {
		k, u = cl.IXServer(0).CPUBreakdown()
	} else {
		k, u = cl.LinuxHost(0).CPUBreakdown()
	}
	if k+u > 0 {
		res.ServerKernelShare = float64(k) / float64(k+u)
	}
	m.Running = false
	return res
}

// memcConfig is one §5.5 server configuration; the paper reports the
// best core count per system: 8 for Linux, 6 for IX.
type memcConfig struct {
	label string
	arch  Arch
	cores int
	batch int
}

var memcConfigs = []memcConfig{
	{"Linux", ArchLinux, 8, 0},
	{"IX", ArchIX, 6, 64},
}

// rpsGrid builds the offered-load sweep, scaled to client capacity.
func rpsGrid(sc Scale, maxRPS float64) []float64 {
	scaleF := float64(sc.MemcClients*sc.MemcCores) / float64(Full.MemcClients*Full.MemcCores)
	maxRPS *= scaleF
	pts := sc.RPSSteps
	if pts < 3 {
		pts = 3
	}
	grid := make([]float64, 0, pts)
	for i := 0; i < pts; i++ {
		// Half-step offset puts points both well below and at the
		// saturation knee (Linux's SLA point sits low on the axis).
		grid = append(grid, maxRPS*(float64(i)+0.5)/float64(pts))
	}
	return grid
}

// Fig5 regenerates the memcached latency-throughput curves (Fig. 5):
// average and 99th percentile latency vs achieved RPS for ETC and USR on
// Linux and IX.
func Fig5(sc Scale) *Result {
	r := &Result{
		Name:   "memcached ETC/USR latency vs throughput",
		Figure: "Figure 5",
		XLabel: "kRPS",
		YLabel: "latency µs",
	}
	for _, w := range []mutilate.Workload{mutilate.ETC, mutilate.USR} {
		for _, cfg := range memcConfigs {
			for _, target := range rpsGrid(sc, 2_000_000) {
				res := RunMemcached(MemcSetup{
					ServerArch:  cfg.arch,
					ServerCores: cfg.cores,
					BatchBound:  cfg.batch,
					Workload:    w,
					TargetRPS:   target,
					ClientHosts: sc.MemcClients,
					ClientCores: sc.MemcCores,
					Warmup:      sc.Warmup,
					Window:      sc.Window,
					Shards:      sc.Shards,
				})
				base := fmt.Sprintf("%s-%s", w.Name, cfg.label)
				kRPS := res.AchievedRPS / 1000
				r.AddPoint(base+"(avg)", kRPS, float64(res.AgentMean.Microseconds()))
				r.AddPoint(base+"(99th)", kRPS, float64(res.AgentP99.Microseconds()))
				r.AddPoint(base+"(kernel%)", kRPS, res.ServerKernelShare*100)
			}
		}
	}
	r.Notes = append(r.Notes,
		"paper: at peak, CPU time shifts from ~75% kernel (Linux) to <10% (IX dataplane)")
	return r
}

// SLA is the §5.5 service-level agreement on 99th percentile latency.
const SLA = 500 * time.Microsecond

// slaSearch finds the highest achieved RPS whose agent p99 stays under
// the SLA. A fixed offered-load grid is wrong here: Linux's feasible
// region at reduced scale lies below the lowest grid point, so a grid
// scan reports zero. Instead, descend geometrically from the client
// fleet's capacity until a compliant point is found (establishing the
// bracket), then bisect the knee.
func slaSearch(sc Scale, arch Arch, cores, batch int, w mutilate.Workload, maxRPS float64) float64 {
	scaleF := float64(sc.MemcClients*sc.MemcCores) / float64(Full.MemcClients*Full.MemcCores)
	hi := maxRPS * scaleF
	run := func(target float64) (rps float64, ok bool) {
		res := RunMemcached(MemcSetup{
			ServerArch:  arch,
			ServerCores: cores,
			BatchBound:  batch,
			Workload:    w,
			TargetRPS:   target,
			ClientHosts: sc.MemcClients,
			ClientCores: sc.MemcCores,
			Warmup:      sc.Warmup,
			Window:      sc.Window,
			Shards:      sc.Shards,
		})
		return res.AchievedRPS, res.AgentP99 > 0 && res.AgentP99 < SLA
	}
	best := 0.0
	lo := 0.0
	probe := hi
	for i := 0; i < 6; i++ {
		rps, ok := run(probe)
		if ok {
			best = rps
			lo = probe
			break
		}
		hi = probe
		probe /= 2
	}
	if best == 0 {
		return 0 // nothing compliant down to capacity/32
	}
	// Refine the knee. When the very first probe (the capacity ceiling)
	// was already compliant, lo == hi and there is nothing to bisect.
	for i := 0; i < 3 && hi-lo > hi/16; i++ {
		mid := (lo + hi) / 2
		if rps, ok := run(mid); ok {
			if rps > best {
				best = rps
			}
			lo = mid
		} else {
			hi = mid
		}
	}
	return best
}

// Table2 regenerates Table 2: unloaded 99th percentile latency and the
// maximum RPS that still meets the 500 µs SLA at the 99th percentile.
func Table2(sc Scale) *Result {
	r := &Result{
		Name:   "memcached unloaded latency and SLA throughput",
		Figure: "Table 2",
	}
	t := Table{
		Title:   "unloaded 99th pct latency / max RPS with p99 < 500µs",
		Columns: []string{"config", "min latency @99th", "RPS for SLA"},
	}
	for _, w := range []mutilate.Workload{mutilate.ETC, mutilate.USR} {
		for _, cfg := range memcConfigs {
			// Unloaded: agent only, negligible offered load.
			un := RunMemcached(MemcSetup{
				ServerArch:  cfg.arch,
				ServerCores: cfg.cores,
				BatchBound:  cfg.batch,
				Workload:    w,
				TargetRPS:   1000,
				ClientHosts: 1,
				ClientCores: 1,
				Warmup:      sc.Warmup,
				Window:      sc.Window,
				Shards:      sc.Shards,
			})
			// SLA search: bracket by geometric descent, then bisect.
			best := slaSearch(sc, cfg.arch, cfg.cores, cfg.batch, w, 2_000_000)
			label := fmt.Sprintf("%s-%s", w.Name, cfg.label)
			t.Rows = append(t.Rows, []string{
				label,
				un.AgentP99.String(),
				fmt.Sprintf("%.0fK", best/1000),
			})
			r.AddPoint(label, 0, best)
		}
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"paper: ETC 94µs/550K (Linux) vs 45µs/1550K (IX); USR 85µs/500K vs 32µs/1800K")
	return r
}

// Fig6 regenerates the batch-bound sweep (Fig. 6): 99th percentile
// latency vs throughput on USR for B ∈ {1, 2, 8, 16, 64}.
func Fig6(sc Scale) *Result {
	r := &Result{
		Name:   "adaptive batch bound sweep (USR, IX)",
		Figure: "Figure 6",
		XLabel: "kRPS",
		YLabel: "p99 µs",
	}
	for _, b := range []int{1, 2, 8, 16, 64} {
		for _, target := range rpsGrid(sc, 2_000_000) {
			res := RunMemcached(MemcSetup{
				ServerArch:  ArchIX,
				ServerCores: 6,
				BatchBound:  b,
				Workload:    mutilate.USR,
				TargetRPS:   target,
				ClientHosts: sc.MemcClients,
				ClientCores: sc.MemcCores,
				Warmup:      sc.Warmup,
				Window:      sc.Window,
				Shards:      sc.Shards,
			})
			r.AddPoint(fmt.Sprintf("B=%d", b), res.AchievedRPS/1000,
				float64(res.AgentP99.Microseconds()))
		}
	}
	r.Notes = append(r.Notes,
		"paper: B≥16 maximizes throughput (+29% vs B=1); B does not affect tail latency at low load")
	return r
}

// Experiments is the registry used by cmd/ixbench and the benches.
var Experiments = map[string]func(Scale) *Result{
	"fig2":    Fig2,
	"fig3a":   Fig3a,
	"fig3b":   Fig3b,
	"fig3c":   Fig3c,
	"fig4":    Fig4,
	"fig5":    Fig5,
	"fig6":    Fig6,
	"table2":  Table2,
	"elastic": Elastic,
	// Scenario breadth beyond the paper's figures: N-to-1 incast at the
	// §4.2 16 µs RTO floor, and the echo fleet under a randomized
	// fault schedule with end-to-end invariant checks.
	"incast": Incast,
	"chaos":  Chaos,
	// Multi-tenant core arbitration (§4.1 runtime policy): several IX
	// dataplanes share one machine and an SLO-driven arbiter moves
	// cores between them through a flash crowd.
	"tenants": Tenants,
	// The blocking facade: an HTTP/1.1 echo server and a redis-style
	// KV store written purely against net.Conn, bridged onto the
	// event-driven stacks by ixnet's deterministic fibers.
	"httpkv": HTTPKV,
}
