package harness

import (
	"testing"
	"time"

	"ix/internal/mutilate"
)

// These tests assert the paper's qualitative claims — the orderings,
// saturation behaviours and improvement factors of §5 — at reduced scale.
// Absolute numbers come from the calibrated cost model; the *shapes* are
// what reproduction means here (see DESIGN.md §3).

// TestClaimLatencyOrdering: unloaded 64B one-way latency: IX ≈ 5.7µs,
// Linux ≈ 4x worse, mTCP ≈ an order of magnitude worse than IX (§5.2).
func TestClaimLatencyOrdering(t *testing.T) {
	oneWay := map[Arch]time.Duration{}
	for _, a := range []Arch{ArchIX, ArchLinux, ArchMTCP} {
		res := RunEcho(EchoSetup{
			ServerArch: a, ServerCores: 1, ClientArch: a, ClientHosts: 1,
			ClientCores: 1, ConnsPerThread: 1, MsgSize: 64,
			Warmup: 2 * time.Millisecond, Window: 6 * time.Millisecond,
		})
		oneWay[a] = res.RTTMean / 2
	}
	t.Logf("one-way 64B: IX=%v Linux=%v mTCP=%v", oneWay[ArchIX], oneWay[ArchLinux], oneWay[ArchMTCP])
	if oneWay[ArchIX] < 4*time.Microsecond || oneWay[ArchIX] > 8*time.Microsecond {
		t.Errorf("IX one-way = %v, paper: 5.7µs", oneWay[ArchIX])
	}
	ratioLinux := float64(oneWay[ArchLinux]) / float64(oneWay[ArchIX])
	if ratioLinux < 2.5 || ratioLinux > 6 {
		t.Errorf("Linux/IX latency ratio = %.1f, paper: ~4x", ratioLinux)
	}
	ratioMTCP := float64(oneWay[ArchMTCP]) / float64(oneWay[ArchIX])
	if ratioMTCP < 6 {
		t.Errorf("mTCP/IX latency ratio = %.1f, paper: ~10x", ratioMTCP)
	}
}

// TestClaimThroughputOrdering: echo at n=1024: IX > mTCP > Linux, with
// IX ≈ 1.9x mTCP and ≈ 8.8x Linux at paper scale (§5.3, Fig. 3b).
func TestClaimThroughputOrdering(t *testing.T) {
	tput := map[Arch]float64{}
	for _, a := range []Arch{ArchIX, ArchLinux, ArchMTCP} {
		res := RunEcho(EchoSetup{
			ServerArch: a, ServerCores: 8, ClientArch: ArchLinux,
			ClientHosts: 10, ClientCores: 6, ConnsPerThread: 4,
			Rounds: 1024, MsgSize: 64,
			Warmup: 3 * time.Millisecond, Window: 8 * time.Millisecond,
		})
		tput[a] = res.MsgsPerSec
	}
	t.Logf("n=1024 msgs/s: IX=%.2gM mTCP=%.2gM Linux=%.2gM",
		tput[ArchIX]/1e6, tput[ArchMTCP]/1e6, tput[ArchLinux]/1e6)
	if !(tput[ArchIX] > tput[ArchMTCP] && tput[ArchMTCP] > tput[ArchLinux]) {
		t.Fatalf("ordering violated: IX=%v mTCP=%v Linux=%v",
			tput[ArchIX], tput[ArchMTCP], tput[ArchLinux])
	}
	if r := tput[ArchIX] / tput[ArchLinux]; r < 4 {
		t.Errorf("IX/Linux = %.1fx, paper: 8.8x", r)
	}
	if r := tput[ArchIX] / tput[ArchMTCP]; r < 1.3 {
		t.Errorf("IX/mTCP = %.1fx, paper: 1.9x", r)
	}
}

// TestClaimIXSaturatesEarly: Fig. 3a's shape — IX saturates the 10GbE
// link with a fraction of the cores (the paper: 3 of 8; here, by 5 of 8
// IX-10 is within 85% of its 8-core rate), while per-core efficiency
// stays far above Linux's.
func TestClaimIXSaturatesEarly(t *testing.T) {
	run := func(cores int, arch Arch) float64 {
		return RunEcho(EchoSetup{
			ServerArch: arch, ServerCores: cores, ClientArch: ArchLinux,
			ClientHosts: 10, ClientCores: 6, ConnsPerThread: 4,
			Rounds: 1024, MsgSize: 64,
			Warmup: 3 * time.Millisecond, Window: 6 * time.Millisecond,
		}).MsgsPerSec
	}
	at5, at8 := run(5, ArchIX), run(8, ArchIX)
	linux8 := run(8, ArchLinux)
	t.Logf("IX-10: 5 cores %.2gM, 8 cores %.2gM; Linux 8 cores %.2gM", at5/1e6, at8/1e6, linux8/1e6)
	if at5 < 0.85*at8 {
		t.Errorf("IX at 5 cores = %.0f, not near saturation (8 cores = %.0f)", at5, at8)
	}
	if at5 < 3*linux8 {
		t.Errorf("IX on 5 cores (%.0f) should far exceed Linux on 8 (%.0f)", at5, linux8)
	}
}

// TestClaimConnectionScalingDroop: Fig. 4's shape — throughput drops with
// very large connection counts as the working set outgrows the L3.
func TestClaimConnectionScalingDroop(t *testing.T) {
	run := func(conns int) float64 {
		threads := 6 * 4
		per := (conns + threads - 1) / threads
		out := 3
		if per < out {
			out = per
		}
		return RunEcho(EchoSetup{
			ServerArch: ArchIX, ServerCores: 8, ServerPorts: 4,
			ClientArch: ArchLinux, ClientHosts: 6, ClientCores: 4,
			ConnsPerThread: per, Outstanding: out, MsgSize: 64,
			Warmup: 4 * time.Millisecond, Window: 8 * time.Millisecond,
		}).MsgsPerSec
	}
	small, large := run(1000), run(20000)
	t.Logf("IX-40: 1k conns %.2gM, 20k conns %.2gM", small/1e6, large/1e6)
	if large >= small {
		t.Errorf("no droop: %.0f at 20k vs %.0f at 1k conns", large, small)
	}
}

// TestClaimMemcachedGain: IX sustains much higher memcached load than
// Linux under the 500µs p99 SLA (§5.5: 2.8–3.6x), and the CPU breakdown
// shifts from kernel-dominated (Linux ~75%) to dataplane-light (IX).
func TestClaimMemcachedGain(t *testing.T) {
	best := func(arch Arch, cores, batch int) (float64, float64) {
		bestRPS := 0.0
		kern := 0.0
		for _, target := range []float64{100_000, 200_000, 300_000, 500_000, 800_000, 1_200_000, 1_600_000} {
			res := RunMemcached(MemcSetup{
				ServerArch: arch, ServerCores: cores, BatchBound: batch,
				Workload: mutilate.USR, TargetRPS: target,
				ClientHosts: 12, ClientCores: 2,
				Warmup: 4 * time.Millisecond, Window: 10 * time.Millisecond,
			})
			if res.AgentP99 > 0 && res.AgentP99 < SLA && res.AchievedRPS > bestRPS {
				bestRPS = res.AchievedRPS
				kern = res.ServerKernelShare
			}
		}
		return bestRPS, kern
	}
	linuxRPS, linuxKern := best(ArchLinux, 8, 0)
	ixRPS, ixKern := best(ArchIX, 6, 64)
	t.Logf("USR SLA throughput: Linux=%.0fK (kern %.0f%%), IX=%.0fK (kern %.0f%%)",
		linuxRPS/1000, linuxKern*100, ixRPS/1000, ixKern*100)
	if linuxRPS == 0 || ixRPS == 0 {
		t.Fatal("no SLA-compliant point found")
	}
	// Our Linux tail model is pessimistic (see EXPERIMENTS.md), so the
	// ratio can exceed the paper's 3.6x; require at least 2x.
	if r := ixRPS / linuxRPS; r < 2 {
		t.Errorf("IX/Linux SLA gain = %.1fx, paper: 3.6x", r)
	}
	if linuxKern < 0.5 {
		t.Errorf("Linux kernel share = %.0f%%, paper ~75%%", linuxKern*100)
	}
	if ixKern > 0.35 {
		t.Errorf("IX kernel share = %.0f%%, paper <10%%", ixKern*100)
	}
}

// TestClaimBatchBound: Fig. 6 — throughput improves from B=1 to B≥16 and
// plateaus; low-load latency unaffected by B.
func TestClaimBatchBound(t *testing.T) {
	tput := map[int]float64{}
	lowLat := map[int]time.Duration{}
	for _, b := range []int{1, 16, 64} {
		high := RunEcho(EchoSetup{
			ServerArch: ArchIX, ServerCores: 2, BatchBound: b,
			ClientArch: ArchLinux, ClientHosts: 8, ClientCores: 4,
			ConnsPerThread: 8, Rounds: 256, MsgSize: 64,
			Warmup: 3 * time.Millisecond, Window: 6 * time.Millisecond,
		})
		tput[b] = high.MsgsPerSec
		low := RunEcho(EchoSetup{
			ServerArch: ArchIX, ServerCores: 2, BatchBound: b,
			ClientArch: ArchLinux, ClientHosts: 1, ClientCores: 1,
			ConnsPerThread: 1, MsgSize: 64,
			Warmup: 2 * time.Millisecond, Window: 5 * time.Millisecond,
		})
		lowLat[b] = low.RTTp99
	}
	t.Logf("B sweep: tput 1→%.2gM 16→%.2gM 64→%.2gM; low-load p99 %v/%v/%v",
		tput[1]/1e6, tput[16]/1e6, tput[64]/1e6, lowLat[1], lowLat[16], lowLat[64])
	if tput[16] < 1.15*tput[1] {
		t.Errorf("B=16 gain over B=1 = %.0f%%, paper: ~29%%", (tput[16]/tput[1]-1)*100)
	}
	if tput[64] < 0.95*tput[16] {
		t.Errorf("B=64 regressed vs B=16")
	}
	// The Fig. 6 ablation claim at saturating load: batching on beats
	// batching off outright.
	if tput[64] <= tput[1] {
		t.Errorf("B=64 (%.0f) does not beat B=1 (%.0f) at saturation", tput[64], tput[1])
	}
	if lowLat[64] > lowLat[1]*5/4 {
		t.Errorf("batch bound hurt low-load latency: B=1 %v vs B=64 %v", lowLat[1], lowLat[64])
	}
}

// TestClaimAdaptiveBatching: batching never waits — at low load batches
// are ~1, under load they grow toward B (§3 "we never wait to batch
// requests and batching only occurs in the presence of congestion").
func TestClaimAdaptiveBatching(t *testing.T) {
	low := RunEcho(EchoSetup{
		ServerArch: ArchIX, ServerCores: 1, ClientArch: ArchLinux,
		ClientHosts: 1, ClientCores: 1, ConnsPerThread: 1, MsgSize: 64,
		Warmup: 2 * time.Millisecond, Window: 5 * time.Millisecond,
	})
	high := RunEcho(EchoSetup{
		ServerArch: ArchIX, ServerCores: 1, ClientArch: ArchLinux,
		ClientHosts: 8, ClientCores: 4, ConnsPerThread: 8, Rounds: 256, MsgSize: 64,
		Warmup: 3 * time.Millisecond, Window: 6 * time.Millisecond,
	})
	t.Logf("mean batch: low=%.2f high=%.2f", low.MeanBatch, high.MeanBatch)
	if low.MeanBatch > 2 {
		t.Errorf("low-load batch = %.1f, should be ~1 (never wait)", low.MeanBatch)
	}
	if high.MeanBatch < 4 {
		t.Errorf("high-load batch = %.1f, congestion should grow batches", high.MeanBatch)
	}
}

// TestDeterminism: identical seeds give identical results.
func TestDeterminism(t *testing.T) {
	run := func() (float64, time.Duration) {
		r := RunEcho(EchoSetup{
			ServerArch: ArchIX, ServerCores: 2, ClientArch: ArchLinux,
			ClientHosts: 2, ClientCores: 2, ConnsPerThread: 4, Rounds: 64, MsgSize: 64,
			Warmup: 2 * time.Millisecond, Window: 4 * time.Millisecond, Seed: 99,
		})
		return r.MsgsPerSec, r.RTTp50
	}
	m1, l1 := run()
	m2, l2 := run()
	if m1 != m2 || l1 != l2 {
		t.Fatalf("non-deterministic: %v/%v vs %v/%v", m1, l1, m2, l2)
	}
}

// TestClaimFig4ScalesTo100k: the Fig. 4 sweep's largest bench-scale point
// holds ≥100k concurrent established connections on the IX-40 server
// (the paper sweeps to 250k), and the server still moves traffic.
func TestClaimFig4ScalesTo100k(t *testing.T) {
	const total = 100_000
	threads := 18 * 8 // the paper's client fleet (§5.1)
	per := (total + threads - 1) / threads
	res := RunEcho(EchoSetup{
		ServerArch: ArchIX, ServerCores: 8, ServerPorts: 4,
		ClientArch: ArchLinux, ClientHosts: 18, ClientCores: 8,
		ConnsPerThread: per, Outstanding: 3, MsgSize: 64,
		RampBatch: 16, RampGap: time.Duration(threads) * 4 * time.Microsecond,
		Warmup: 2*time.Millisecond + time.Duration(total*3/5)*time.Microsecond,
		Window: 6 * time.Millisecond,
	})
	t.Logf("established=%d msgs/s=%.3gM", res.ServerConns, res.MsgsPerSec/1e6)
	if res.ServerConns < total {
		t.Fatalf("established connections = %d, want ≥ %d", res.ServerConns, total)
	}
	if res.MsgsPerSec <= 0 {
		t.Fatal("no traffic at 100k connections")
	}
}

// TestClaimFig4LinuxFill: the Fig. 4 Linux rows at the 100k point reach
// their target established count before measurement. The Linux kernel
// accept path absorbs only ~400 conns/ms across 8 cores under load, so
// these rows ramp at that rate with a matching warmup (the per-arch ramp
// of Fig4); without it the largest Linux points under-filled to ~28%.
func TestClaimFig4LinuxFill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second establishment ramp")
	}
	const total = 100_000
	threads := 18 * 8
	per := (total + threads - 1) / threads
	gap, warm := Fig4Ramp(ArchLinux, total, threads) // the ramp Fig4 itself uses
	res := RunEcho(EchoSetup{
		ServerArch: ArchLinux, ServerCores: 8, ServerPorts: 4,
		ClientArch: ArchLinux, ClientHosts: 18, ClientCores: 8,
		ConnsPerThread: per, Outstanding: 3, MsgSize: 64,
		RampBatch: 16, RampGap: gap,
		Warmup: 2*time.Millisecond + warm,
		Window: 6 * time.Millisecond,
	})
	t.Logf("established=%d target=%d msgs/s=%.3gM", res.ServerConns, threads*per, res.MsgsPerSec/1e6)
	if res.ServerConns < threads*per*95/100 {
		t.Fatalf("established connections = %d, want ≥ 95%% of %d", res.ServerConns, threads*per)
	}
}

// TestClaimTable2LinuxSLA: Table 2's Linux baseline sustains a nonzero
// SLA-compliant rate (the paper: 500K RPS for USR under a 500µs p99).
// Guards against the SLA search bracketing out the feasible region.
func TestClaimTable2LinuxSLA(t *testing.T) {
	sc := Quick
	sc.Warmup = 2 * time.Millisecond
	sc.Window = 6 * time.Millisecond
	rps := slaSearch(sc, ArchLinux, 8, 0, mutilate.USR, 2_000_000)
	t.Logf("USR-Linux SLA RPS = %.0f", rps)
	if rps <= 0 {
		t.Fatal("Linux SLA-compliant throughput = 0; the search bracket skips the feasible region")
	}
}
