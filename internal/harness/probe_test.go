package harness

import (
	"testing"
	"time"

	"ix/internal/mutilate"
)

// TestProbeEchoThroughput is a calibration probe (not a paper assertion):
// it logs single-point throughputs used while tuning the cost model.
func TestProbeEchoThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	for _, cfg := range []struct {
		label string
		arch  Arch
		ports int
	}{
		{"IX-10", ArchIX, 1}, {"IX-40", ArchIX, 4}, {"Linux-10", ArchLinux, 1}, {"mTCP-10", ArchMTCP, 1},
	} {
		res := RunEcho(EchoSetup{
			ServerArch: cfg.arch, ServerCores: 8, ServerPorts: cfg.ports,
			ClientArch: ArchLinux, ClientHosts: 10, ClientCores: 6,
			ConnsPerThread: 4, Rounds: 1024, MsgSize: 64,
			Warmup: 5 * time.Millisecond, Window: 10 * time.Millisecond,
		})
		t.Logf("%s n=1024: %.2fM msg/s rtt50=%v batch=%.1f kern=%.0f%% kernPerMsg=%v",
			cfg.label, res.MsgsPerSec/1e6, res.RTTp50, res.MeanBatch, res.ServerKernelShare*100, res.KernelPerMsg)
	}
}

// TestProbeMemcached logs one memcached point per config.
func TestProbeMemcached(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	for _, cfg := range memcConfigs {
		for _, target := range []float64{150_000, 250_000, 350_000, 1_500_000} {
			res := RunMemcached(MemcSetup{
				ServerArch: cfg.arch, ServerCores: cfg.cores, BatchBound: cfg.batch,
				Workload: mutilate.USR, TargetRPS: target,
				ClientHosts: 12, ClientCores: 2,
				Warmup: 5 * time.Millisecond, Window: 15 * time.Millisecond,
			})
			t.Logf("USR-%s target=%.0fk: achieved=%.0fk p99=%v mean=%v kern=%.0f%%",
				cfg.label, target/1000, res.AchievedRPS/1000, res.AgentP99, res.AgentMean, res.ServerKernelShare*100)
		}
	}
}
