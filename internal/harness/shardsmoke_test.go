package harness

import (
	"sort"
	"testing"
	"time"
)

// TestExperimentsShards2Smoke runs every registry experiment on the
// sharded engine (shards=2) at a tiny scale: the -shards flag must be
// honored end to end — cluster construction, host placement, stats
// collection, arbiter stepping — by every experiment, not just Fig. 4.
func TestExperimentsShards2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded registry sweep")
	}
	sc := Scale{
		Name:        "shardsmoke",
		Warmup:      2 * time.Millisecond,
		Window:      5 * time.Millisecond,
		EchoClients: 2,
		ClientCores: 2,
		MemcClients: 2,
		MemcCores:   1,
		MaxConns:    2_000,
		RPSSteps:    1,
		Shards:      2,
	}
	names := make([]string, 0, len(Experiments))
	for name := range Experiments {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fn := Experiments[name]
		t.Run(name, func(t *testing.T) {
			res := fn(sc)
			if res == nil {
				t.Fatalf("%s returned nil at shards=2", name)
			}
			if len(res.Series) == 0 && len(res.Tables) == 0 {
				t.Errorf("%s produced no series or tables at shards=2", name)
			}
		})
	}
}
