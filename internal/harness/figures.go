package harness

import (
	"fmt"
	"time"

	"ix/internal/sim/shard"
)

// Fig2 regenerates the NetPIPE experiment (§5.2, Fig. 2): goodput for
// varying message sizes with the same system on both ends, plus the
// headline one-way latencies for 64 B messages.
func Fig2(sc Scale) *Result {
	r := &Result{
		Name:   "NetPIPE ping-pong",
		Figure: "Figure 2",
		XLabel: "msg bytes",
		YLabel: "goodput Gbps",
	}
	sizes := []int{64, 256, 1024, 4096, 16384, 65536, 131072, 262144, 524288}
	archs := []Arch{ArchLinux, ArchMTCP, ArchIX}
	oneWay := map[Arch]time.Duration{}
	for _, a := range archs {
		for _, size := range sizes {
			res := RunEcho(EchoSetup{
				ServerArch:     a,
				ServerCores:    1,
				ClientArch:     a,
				ClientHosts:    1,
				ClientCores:    1,
				ConnsPerThread: 1,
				Rounds:         0,
				MsgSize:        size,
				Warmup:         sc.Warmup,
				Window:         sc.Window,
				Shards:         sc.Shards,
			})
			// NetPIPE reports size / one-way time.
			if res.RTTMean > 0 {
				g := float64(size) * 8 / (res.RTTMean.Seconds() / 2) / 1e9
				r.AddPoint(fmt.Sprintf("%v-%v", a, a), float64(size), g)
			}
			if size == 64 {
				oneWay[a] = res.RTTMean / 2
			}
		}
	}
	r.Tables = append(r.Tables, Table{
		Title:   "unloaded one-way latency, 64B (paper: IX 5.7µs, Linux 24µs, mTCP ~10x IX)",
		Columns: []string{"config", "one-way latency"},
		Rows: [][]string{
			{"IX-IX", oneWay[ArchIX].String()},
			{"Linux-Linux", oneWay[ArchLinux].String()},
			{"mTCP-mTCP", oneWay[ArchMTCP].String()},
		},
	})
	return r
}

// echoSeries runs one point of the §5.3 benchmark for a named config.
type echoConfig struct {
	label string
	arch  Arch
	ports int
}

var echoConfigs10G = []echoConfig{
	{"Linux-10", ArchLinux, 1},
	{"mTCP-10", ArchMTCP, 1},
	{"IX-10", ArchIX, 1},
}

var echoConfigs40G = []echoConfig{
	{"Linux-40", ArchLinux, 4},
	{"IX-40", ArchIX, 4},
}

// Fig3a regenerates the multi-core scalability sweep (Fig. 3a): n=1,
// s=64 B, message (= connection) rate vs server cores. mTCP is reported
// only at 10GbE, as in the paper (no bonding support).
func Fig3a(sc Scale) *Result {
	r := &Result{
		Name:   "echo multi-core scalability (n=1, s=64B)",
		Figure: "Figure 3a",
		XLabel: "server cores",
		YLabel: "messages/s",
	}
	configs := append(append([]echoConfig{}, echoConfigs10G...), echoConfigs40G...)
	for _, cfgc := range configs {
		for cores := 1; cores <= 8; cores++ {
			res := RunEcho(EchoSetup{
				ServerArch:     cfgc.arch,
				ServerCores:    cores,
				ServerPorts:    cfgc.ports,
				ClientArch:     ArchLinux,
				ClientHosts:    sc.EchoClients,
				ClientCores:    sc.ClientCores,
				ConnsPerThread: 4,
				Rounds:         1,
				MsgSize:        64,
				Warmup:         sc.Warmup,
				Window:         sc.Window,
				Shards:         sc.Shards,
			})
			r.AddPoint(cfgc.label, float64(cores), res.MsgsPerSec)
		}
	}
	return r
}

// Fig3b regenerates the round-trips-per-connection sweep (Fig. 3b):
// 8 cores, s=64 B, n ∈ {1..1024}.
func Fig3b(sc Scale) *Result {
	r := &Result{
		Name:   "echo messages per connection (s=64B, 8 cores)",
		Figure: "Figure 3b",
		XLabel: "msgs per conn",
		YLabel: "messages/s",
	}
	ns := []int{1, 2, 8, 32, 64, 128, 256, 512, 1024}
	configs := append(append([]echoConfig{}, echoConfigs10G...), echoConfigs40G...)
	for _, cfgc := range configs {
		for _, n := range ns {
			res := RunEcho(EchoSetup{
				ServerArch:     cfgc.arch,
				ServerCores:    8,
				ServerPorts:    cfgc.ports,
				ClientArch:     ArchLinux,
				ClientHosts:    sc.EchoClients,
				ClientCores:    sc.ClientCores,
				ConnsPerThread: 4,
				Rounds:         n,
				MsgSize:        64,
				Warmup:         sc.Warmup,
				Window:         sc.Window,
				Shards:         sc.Shards,
			})
			r.AddPoint(cfgc.label, float64(n), res.MsgsPerSec)
		}
	}
	return r
}

// Fig3c regenerates the message-size sweep (Fig. 3c): n=1, 8 cores,
// goodput vs message size.
func Fig3c(sc Scale) *Result {
	r := &Result{
		Name:   "echo message sizes (n=1, 8 cores)",
		Figure: "Figure 3c",
		XLabel: "msg bytes",
		YLabel: "goodput Gbps",
	}
	sizes := []int{64, 256, 1024, 4096, 8192}
	configs := append(append([]echoConfig{}, echoConfigs10G...), echoConfigs40G...)
	for _, cfgc := range configs {
		for _, size := range sizes {
			res := RunEcho(EchoSetup{
				ServerArch:     cfgc.arch,
				ServerCores:    8,
				ServerPorts:    cfgc.ports,
				ClientArch:     ArchLinux,
				ClientHosts:    sc.EchoClients,
				ClientCores:    sc.ClientCores,
				ConnsPerThread: 4,
				Rounds:         1,
				MsgSize:        size,
				Warmup:         sc.Warmup,
				Window:         sc.Window,
				Shards:         sc.Shards,
			})
			r.AddPoint(cfgc.label, float64(size), res.GoodputBps/1e9)
		}
	}
	return r
}

// Fig4Ramp returns the connection-ramp pacing for one Fig. 4 point: the
// gap between RampBatch-sized connect batches and the warmup extension
// covering the ramp. Establishment rate is architecture-bound, so the
// ramp is per-arch: an IX server ingests ~4k conns/ms, but the Linux
// kernel's accept path (syscall entry + ConnSetup per accept, sharing
// cores with softirq and the already-established load) absorbs only
// ~400 conns/ms — offering SYNs faster collapses establishment into
// synchronized retransmission waves, leaving the largest Linux points
// under-filled at measurement time. TestClaimFig4LinuxFill pins the
// Linux rate at the 100k point.
func Fig4Ramp(arch Arch, total, threads int) (gap, warmup time.Duration) {
	gapPerThread, warmPerConn := 4*time.Microsecond, 600*time.Nanosecond
	if arch == ArchLinux && total > 20_000 {
		gapPerThread, warmPerConn = 40*time.Microsecond, 2600*time.Nanosecond
	}
	return time.Duration(threads) * gapPerThread, time.Duration(total) * warmPerConn
}

// Fig4QuietGap returns the connect pacing of a quiet ramp, per arch. The
// rates sit just under each server's clean quiet-mode ingest capacity —
// offering faster only converts the excess into SYN retransmission
// storms, which cost far more wall-clock than the pacing saves (a 250k
// IX ramp paced 2× above capacity takes 3× longer in real time). With no
// RPC traffic competing for the accept path and handshake frames charged
// at the DDIO floor, these rates hold constant out to the paper's full
// 250k connections, where the loaded Fig4Ramp rates collapse.
func Fig4QuietGap(arch Arch, threads int) time.Duration {
	per := 8 * time.Microsecond // IX: ~2k conns/ms, retransmission-free
	if arch == ArchLinux {
		per = 32 * time.Microsecond // kernel accept path: ~500 conns/ms
	}
	return time.Duration(threads) * per
}

// fig4Fleet is the paper's full client fleet (18 machines × 8 cores,
// §5.1), used for every point above 20k connections.
const (
	fig4FleetHosts = 18
	fig4FleetCores = 8
)

// Fig4 regenerates connection scalability (§5.4, Fig. 4): maximum 64 B
// message rate vs total established connections, with each client thread
// rotating a bounded number of in-flight RPCs over its connection set
// (n=24 threads per client in the paper). Points up to 20k connections
// are cheap enough to run cold, as before; the large points (50k, 100k
// and the paper's full 250k) share one persistent warmed cluster per
// configuration — established quietly once, then moved between points by
// delta establishment — so the sweep no longer pays a full ramp per
// point (see EchoBench).
func Fig4(sc Scale) *Result {
	r := &Result{
		Name:   "connection scalability (s=64B)",
		Figure: "Figure 4",
		XLabel: "connections",
		YLabel: "messages/s",
	}
	// The paper's figure tops out at its testbed limit of 250k; the
	// reproduction extends the axis to 1M connections (Scale.MaxConns
	// caps how far a given run sweeps) to demonstrate that the
	// per-connection memory budget — not a protocol or table limit — is
	// what bounds the population (DESIGN.md, "Per-connection memory
	// budget").
	counts := []int{10, 100, 1000, 10_000, 50_000, 100_000, 250_000, 1_000_000}
	configs := []echoConfig{
		{"Linux-10", ArchLinux, 1},
		{"Linux-40", ArchLinux, 4},
		{"IX-10", ArchIX, 1},
		{"IX-40", ArchIX, 4},
	}
	for _, cfgc := range configs {
		topConns := 0
		topBytesPerConn := 0.0
		var bench *EchoBench
		for _, total := range counts {
			if total > sc.MaxConns {
				continue
			}
			var res EchoResult
			var x float64
			if total <= 20_000 {
				hosts, cores := sc.EchoClients, sc.ClientCores
				threads := hosts * cores
				per := (total + threads - 1) / threads
				if per < 1 {
					per = 1
				}
				// The paper maximizes throughput at n=24 threads/client;
				// we bound in-flight RPCs per thread similarly.
				out := 3
				if per < out {
					out = per
				}
				gap, warm := Fig4Ramp(cfgc.arch, total, threads)
				res = RunEcho(EchoSetup{
					ServerArch:     cfgc.arch,
					ServerCores:    8,
					ServerPorts:    cfgc.ports,
					ClientArch:     ArchLinux,
					ClientHosts:    hosts,
					ClientCores:    cores,
					ConnsPerThread: per,
					Outstanding:    out,
					MsgSize:        64,
					RampBatch:      16,
					RampGap:        gap,
					Warmup:         sc.Warmup + warm,
					Window:         sc.Window,
					Shards:         sc.Shards,
				})
				x = float64(threads * per)
			} else {
				if bench == nil {
					threads := fig4FleetHosts * fig4FleetCores
					// Presize the server for the sweep's largest point:
					// the persistent cluster will carry the population
					// there by delta establishment, and tables that double
					// their way up both fragment and over-shoot.
					top := 0
					for _, n := range counts {
						if n <= sc.MaxConns && n > top {
							top = n
						}
					}
					bench = NewEchoBench(EchoSetup{
						ServerArch:    cfgc.arch,
						ServerCores:   8,
						ServerPorts:   cfgc.ports,
						ClientArch:    ArchLinux,
						ClientHosts:   fig4FleetHosts,
						ClientCores:   fig4FleetCores,
						MsgSize:       64,
						RampBatch:     16,
						RampGap:       Fig4QuietGap(cfgc.arch, threads),
						Shards:        sc.Shards,
						ExpectedConns: top,
					})
				}
				res = bench.MeasurePoint(total, 3, sc.Window)
				per := (total + bench.Threads() - 1) / bench.Threads()
				x = float64(bench.Threads() * per)
			}
			r.AddPoint(cfgc.label, x, res.MsgsPerSec)
			if res.ServerConns > topConns {
				topConns = res.ServerConns
				topBytesPerConn = res.ServerBytesPerConn
			}
		}
		if bench != nil {
			bench.Stop()
		}
		r.Notes = append(r.Notes,
			fmt.Sprintf("%s: %d connections established at the largest point, %.0f bytes/conn",
				cfgc.label, topConns, topBytesPerConn))
		// Machine-readable form of the same footer for benchmark metrics
		// and the CI bytes/conn gate.
		r.AddScalar(cfgc.label+" bytes/conn", topBytesPerConn)
	}
	r.Notes = append(r.Notes,
		"droop at high counts comes from the DDIO/L3 model: 1.4 misses/msg ≤10k conns → ~25 at 250k")
	if sc.Shards > 1 {
		r.Notes = append(r.Notes, fmt.Sprintf("parallel engine: %v", lastFig4Telemetry))
	}
	return r
}

// lastFig4Telemetry is the most recent sharded Fig. 4 run's engine
// telemetry (stashed by EchoBench/RunEcho when Shards > 1; serial runs
// never touch it, keeping their output byte-identical).
var lastFig4Telemetry = shard.Telemetry{}
