package harness

import (
	"testing"
	"time"

	"ix/internal/apps/echo"
	"ix/internal/faults"
)

// TestClaimIncastRTOFloor: the paper's justification for fine-grained
// timeouts (§4.2, "timeouts as low as 16 µs") — under synchronized
// N-to-1 incast with a shallow switch egress buffer, whole window tails
// are dropped and lost flows stall for MinRTO; lowering the floor from
// the 200 µs default to 16 µs recovers goodput. Fault/drop bookkeeping
// must conserve frames throughout.
func TestClaimIncastRTOFloor(t *testing.T) {
	run := func(rto time.Duration) IncastResult {
		return RunIncast(IncastSetup{
			SenderArch: ArchLinux,
			Senders:    16,
			MinRTO:     rto,
			Rounds:     6,
			Seed:       31,
		})
	}
	slow := run(200 * time.Microsecond)
	fast := run(16 * time.Microsecond)
	t.Logf("200µs: %.2f Gbps (mean %v, p99 %v, drops %d, rexmit %d)",
		slow.GoodputBps/1e9, slow.MeanCompletion, slow.P99Completion, slow.EgressDrops, slow.Retransmits)
	t.Logf(" 16µs: %.2f Gbps (mean %v, p99 %v, drops %d, rexmit %d)",
		fast.GoodputBps/1e9, fast.MeanCompletion, fast.P99Completion, fast.EgressDrops, fast.Retransmits)
	for _, r := range []struct {
		name string
		res  IncastResult
	}{{"200µs", slow}, {"16µs", fast}} {
		if r.res.RoundsDone == 0 {
			t.Fatalf("%s: no rounds completed", r.name)
		}
		if r.res.EgressDrops == 0 {
			t.Fatalf("%s: no egress tail drops — not an incast regime", r.name)
		}
		if r.res.Retransmits == 0 {
			t.Fatalf("%s: no retransmissions despite drops", r.name)
		}
		if r.res.FramesLeaked != 0 {
			t.Fatalf("%s: %d frames leaked", r.name, r.res.FramesLeaked)
		}
	}
	if fast.GoodputBps < 1.3*slow.GoodputBps {
		t.Fatalf("16µs MinRTO goodput %.2f Gbps does not beat 200µs %.2f Gbps by ≥1.3x",
			fast.GoodputBps/1e9, slow.GoodputBps/1e9)
	}
}

// TestIncastDeterminism: a fixed-seed incast run — fault-free wire but
// heavy egress tail-dropping — reproduces byte-identical results.
func TestIncastDeterminism(t *testing.T) {
	run := func() IncastResult {
		return RunIncast(IncastSetup{
			SenderArch: ArchLinux, Senders: 12, MinRTO: 50 * time.Microsecond,
			Rounds: 4, Seed: 77,
		})
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("fixed seed diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestClaimChaosInvariants: an echo fleet survives a randomized fault
// schedule — burst loss, duplication, corruption, reordering jitter,
// link flaps and a server-link outage — with every end-to-end invariant
// intact: not one response byte differed from its request, every
// whole-transfer checksum matched, and every frame pool drained (drops
// and duplicates neither leak nor double-free; a double free panics in
// fabric, so surviving the run is itself an assertion).
func TestClaimChaosInvariants(t *testing.T) {
	res := RunChaos(ChaosSetup{Seed: 23})
	t.Logf("msgs=%d injected=%+v rexmit=%d badck=%d fails=%d",
		res.Msgs, res.Injected, res.Retransmits, res.BadChecksums, res.ConnFailures)
	if res.Msgs < 1000 {
		t.Fatalf("only %d msgs under chaos — fleet did not make progress", res.Msgs)
	}
	// The schedule must actually have exercised the fault space.
	if res.Injected.Dropped == 0 || res.Injected.Duplicated == 0 ||
		res.Injected.Corrupted == 0 || res.Injected.Delayed == 0 {
		t.Fatalf("fault schedule too tame: %+v", res.Injected)
	}
	if res.Retransmits == 0 {
		t.Fatal("loss injected but nothing retransmitted")
	}
	if res.BadChecksums == 0 {
		t.Fatal("corruption injected but no checksum rejected it")
	}
	if res.OutOfOrder == 0 {
		t.Fatal("jitter injected but no segment arrived out of order")
	}
	if res.VerifyErrors != 0 {
		t.Fatalf("%d response bytes differed from their requests", res.VerifyErrors)
	}
	if res.SumMismatches != 0 {
		t.Fatalf("%d whole-transfer checksum mismatches", res.SumMismatches)
	}
	if res.FramesLeaked != 0 {
		t.Fatalf("%d frames leaked across drops/duplicates/delays", res.FramesLeaked)
	}
	for i, rate := range res.PhaseRates {
		if rate <= 0 {
			t.Errorf("phase %d: fleet fully stalled", i)
		}
	}
}

// TestChaosDeterminism: the randomized fault schedule is a pure
// function of the seed — two runs are byte-identical, and a different
// seed genuinely changes the schedule.
func TestChaosDeterminism(t *testing.T) {
	run := func(seed int64) ChaosResult {
		return RunChaos(ChaosSetup{Phases: 4, Seed: seed})
	}
	a, b := run(23), run(23)
	if a.Msgs != b.Msgs || a.Injected != b.Injected || a.Retransmits != b.Retransmits ||
		a.BadChecksums != b.BadChecksums || a.OutOfOrder != b.OutOfOrder {
		t.Fatalf("fixed seed diverged:\n%+v\nvs\n%+v", a, b)
	}
	for i := range a.PhaseRates {
		if a.PhaseRates[i] != b.PhaseRates[i] {
			t.Fatalf("phase %d rate diverged: %v vs %v", i, a.PhaseRates[i], b.PhaseRates[i])
		}
	}
	c := run(24)
	if a.Msgs == c.Msgs && a.Injected == c.Injected {
		t.Fatal("different seeds produced an identical run")
	}
}

// TestClaimStreamIntegrityUnderBurstLoss is the byte-stream integrity
// property for all three stacks: multi-segment echo RPCs cross a link
// under 5% Gilbert–Elliott burst loss plus reordering jitter; TCP must
// mask every drop, duplicate and inversion so the application sees each
// byte exactly once, in order — whole-transfer checksums match and the
// positional verifier finds nothing. Fixed seeds per stack.
func TestClaimStreamIntegrityUnderBurstLoss(t *testing.T) {
	for _, arch := range []Arch{ArchIX, ArchLinux, ArchMTCP} {
		t.Run(arch.String(), func(t *testing.T) {
			cl := NewCluster(91)
			m := echo.NewMetrics()
			const port, msg = 9100, 4096 // 3 segments per message
			server := cl.AddHost("server", HostSpec{
				Arch: arch, Cores: 1,
				Factory: echo.VerifyingServerFactory(port, msg),
			})
			client := cl.AddHost("client", HostSpec{
				Arch: arch, Cores: 1,
				Factory: echo.ClientFactory(echo.ClientConfig{
					ServerIP: server.IP(), Port: port, MsgSize: msg,
					// Finite rounds so Running=false quiesces the fleet
					// (the frame-conservation check needs drained wires).
					Rounds: 64, Conns: 4, Metrics: m,
					Verify: true, VerifySeed: 7,
				}),
			})
			site := cl.Faults(client)
			cl.Start()
			cl.Run(time.Millisecond) // establish clean
			site.Apply(faults.Config{
				GE:      faults.GELoss(0.05),
				JitterP: 0.2, Jitter: 40 * time.Microsecond,
			})
			cl.Run(15 * time.Millisecond)
			site.Heal()
			m.Running = false
			cl.Run(20 * time.Millisecond)

			stats := site.Stats()
			var rexmit, ooo uint64
			collect := func(rx, oo uint64) { rexmit += rx; ooo += oo }
			for _, dp := range cl.ixs {
				tc := dp.Thread(0).Stack().TCP()
				collect(tc.Retransmits, tc.OutOfOrderSegs)
			}
			for _, lh := range cl.linuxes {
				tc := lh.Stack().TCP()
				collect(tc.Retransmits, tc.OutOfOrderSegs)
			}
			for _, mh := range cl.mtcps {
				tc := mh.Stack(0).TCP()
				collect(tc.Retransmits, tc.OutOfOrderSegs)
			}
			t.Logf("%s: msgs=%d dropped=%d delayed=%d rexmit=%d ooo=%d",
				arch, m.Msgs.Total(), stats.Dropped, stats.Delayed, rexmit, ooo)
			if m.Msgs.Total() < 50 {
				t.Fatalf("only %d msgs crossed the impaired link", m.Msgs.Total())
			}
			if stats.Dropped == 0 {
				t.Fatal("GE loss dropped nothing — property not exercised")
			}
			if rexmit == 0 {
				t.Fatal("no retransmissions — loss path not exercised")
			}
			if ooo == 0 {
				t.Fatal("no out-of-order segments — reordering not exercised")
			}
			if got := m.VerifyErrors.Total(); got != 0 {
				t.Fatalf("%d bytes delivered wrong (duplicate/reorder/corruption leaked to app)", got)
			}
			if got := m.SumMismatches.Total(); got != 0 {
				t.Fatalf("%d whole-transfer checksum mismatches", got)
			}
			if leaked := cl.FramesInUse(); leaked != 0 {
				t.Fatalf("%d frames leaked", leaked)
			}
		})
	}
}

// TestPartitionHealsCleanly: a mid-run switch-port partition of a
// client host stalls its flows; healing restores service and the
// drained cluster conserves every frame.
func TestPartitionHealsCleanly(t *testing.T) {
	cl := NewCluster(55)
	m := echo.NewMetrics()
	const port = 9200
	server := cl.AddHost("server", HostSpec{
		Arch: ArchIX, Cores: 1,
		Factory: echo.VerifyingServerFactory(port, 64),
	})
	client := cl.AddHost("client", HostSpec{
		Arch: ArchLinux, Cores: 1,
		Factory: echo.ClientFactory(echo.ClientConfig{
			ServerIP: server.IP(), Port: port, MsgSize: 64,
			Rounds: 32, Conns: 4, Metrics: m, Verify: true,
		}),
	})
	site := cl.Faults(client)
	cl.Start()
	cl.Run(2 * time.Millisecond)
	before := m.Msgs.Total()
	if before == 0 {
		t.Fatal("no traffic before partition")
	}
	site.Partition()
	cl.Run(2 * time.Millisecond)
	during := m.Msgs.Total() - before
	site.Heal()
	cl.Run(5 * time.Millisecond)
	after := m.Msgs.Total() - before - during
	t.Logf("msgs: before=%d during=%d after=%d dropped=%d", before, during, after, site.Stats().Dropped)
	if during > before/10 {
		t.Fatalf("partitioned host still completed %d msgs", during)
	}
	if after < before/4 {
		t.Fatalf("service did not recover after heal: %d msgs", after)
	}
	m.Running = false
	cl.Run(20 * time.Millisecond)
	if got := m.VerifyErrors.Total() + m.SumMismatches.Total(); got != 0 {
		t.Fatalf("%d integrity violations across the partition", got)
	}
	if leaked := cl.FramesInUse(); leaked != 0 {
		t.Fatalf("%d frames leaked", leaked)
	}
}
