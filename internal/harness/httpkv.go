package harness

import (
	"fmt"
	"time"

	"ix/internal/apps/httpkv"
)

// HTTPKVSetup describes one blocking-facade workload run: an HTTP/1.1
// echo server host and a KV store host (both written purely against
// net.Conn through ixnet), plus a closed-loop pooled client fleet.
type HTTPKVSetup struct {
	ServerArch  Arch
	ServerCores int
	ClientArch  Arch
	ClientHosts int
	ClientCores int
	// WorkersPerThread is client fibers per thread (each alternates an
	// HTTP echo and a KV SET/GET pair).
	WorkersPerThread int
	BodySize         int

	Warmup, Window time.Duration
	Seed           int64

	// Shards runs the cluster on the sharded engine (0/1 = serial).
	Shards int
}

// HTTPKVResult is the measured steady-state behaviour.
type HTTPKVResult struct {
	HTTPPerSec float64
	KVPerSec   float64
	RTTp50     time.Duration
	RTTp99     time.Duration
	// Errors and VerifyErrors over the whole run (not just the window):
	// both must be zero on a healthy testbed.
	Errors       uint64
	VerifyErrors uint64
	KVHits       uint64
	// Leaked frame/chunk imbalance after the run winds down.
	FramesLeaked   int
	TxChunksLeaked int
}

const (
	httpPort = 8080
	kvPort   = 6379
)

// RunHTTPKV builds the testbed, warms it, measures a window, then
// winds the clients down and drains before checking pool balances.
func RunHTTPKV(s HTTPKVSetup) HTTPKVResult {
	if s.Seed == 0 {
		s.Seed = 97
	}
	if s.ServerCores == 0 {
		s.ServerCores = 2
	}
	if s.ClientHosts == 0 {
		s.ClientHosts = 1
	}
	if s.ClientCores == 0 {
		s.ClientCores = 2
	}
	if s.WorkersPerThread == 0 {
		s.WorkersPerThread = 4
	}
	if s.BodySize == 0 {
		s.BodySize = 256
	}
	m := httpkv.NewMetrics()
	store := httpkv.NewStore()
	cl := NewClusterShards(s.Seed, s.Shards)
	cl.AddHost("http", HostSpec{
		Arch:    s.ServerArch,
		Cores:   s.ServerCores,
		Factory: httpkv.HTTPServerFactory(httpPort),
	})
	httpIP := cl.hosts[0].IP()
	cl.AddHost("kv", HostSpec{
		Arch:    s.ServerArch,
		Cores:   s.ServerCores,
		Factory: httpkv.KVServerFactory(kvPort, store),
	})
	kvIP := cl.hosts[1].IP()
	for i := 0; i < s.ClientHosts; i++ {
		cl.AddHost("client", HostSpec{
			Arch:  s.ClientArch,
			Cores: s.ClientCores,
			Factory: httpkv.ClientFactory(httpkv.ClientConfig{
				HTTPIP:   httpIP,
				HTTPPort: httpPort,
				KVIP:     kvIP,
				KVPort:   kvPort,
				Workers:  s.WorkersPerThread,
				BodySize: s.BodySize,
				Metrics:  m,
			}),
		})
	}
	cl.Start()
	cl.Run(s.Warmup)
	m.ResetWindow()
	cl.Run(s.Window)
	res := HTTPKVResult{
		HTTPPerSec: float64(m.HTTPOps.Since()) / s.Window.Seconds(),
		KVPerSec:   float64(m.KVOps.Since()) / s.Window.Seconds(),
		RTTp50:     m.Latency.Quantile(0.5),
		RTTp99:     m.Latency.Quantile(0.99),
		KVHits:     store.Hits,
	}
	// Wind down: workers finish the in-flight op and close their
	// connections; the drain lets FINs complete so the frame and TX
	// chunk pools return to balance.
	m.Running = false
	cl.Run(50 * time.Millisecond)
	res.Errors = m.Errors.Total()
	res.VerifyErrors = m.VerifyErrors.Total()
	res.FramesLeaked = cl.FramesInUse()
	res.TxChunksLeaked = cl.TxChunksInUse()
	return res
}

// HTTPKV is the registry experiment: the net.Conn workload on the IX
// dataplane and the Linux baseline, same application bytes.
func HTTPKV(sc Scale) *Result {
	r := &Result{
		Name:   "httpkv",
		Figure: "blocking facade (ixnet): HTTP/1.1 + KV over net.Conn on IX and Linux",
		XLabel: "stack",
		YLabel: "operations/s",
	}
	tbl := Table{
		Title:   "httpkv: closed-loop HTTP echo + pooled KV, identical app bytes per stack",
		Columns: []string{"stack", "HTTP req/s", "KV ops/s", "p50 RTT", "p99 RTT", "errors", "verify errors", "frames leaked"},
	}
	var xs, ys []float64
	for i, arch := range []Arch{ArchIX, ArchLinux} {
		res := RunHTTPKV(HTTPKVSetup{
			ServerArch:  arch,
			ClientArch:  arch,
			ClientHosts: max(1, sc.EchoClients/6),
			ClientCores: max(2, sc.ClientCores/4),
			Warmup:      sc.Warmup,
			Window:      sc.Window,
			Shards:      sc.Shards,
		})
		xs = append(xs, float64(i))
		ys = append(ys, res.HTTPPerSec+res.KVPerSec)
		tbl.Rows = append(tbl.Rows, []string{
			arch.String(),
			fmt.Sprintf("%.0f", res.HTTPPerSec),
			fmt.Sprintf("%.0f", res.KVPerSec),
			res.RTTp50.String(),
			res.RTTp99.String(),
			fmt.Sprint(res.Errors),
			fmt.Sprint(res.VerifyErrors),
			fmt.Sprint(res.FramesLeaked + res.TxChunksLeaked),
		})
	}
	r.Series = []Series{{Label: "HTTP+KV ops/s", X: xs, Y: ys}}
	r.Tables = []Table{tbl}
	r.Notes = append(r.Notes,
		"Application code is written purely against net.Conn/net.Listener (internal/apps/httpkv); ixnet's deterministic fibers bridge it onto the event-driven stacks.",
		"Blocking reads park on EvRecv, blocked writes park on the writable-again condition, deadlines ride the timer service.",
	)
	return r
}
