package harness

import (
	"testing"
	"time"

	"ix/internal/apps/echo"
)

// TestDebugSingleConn is a diagnostic for RPC stalls: one connection,
// closed loop, with protocol counters dumped.
func TestDebugSingleConn(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic dump, no assertions")
	}
	cl := NewCluster(3)
	m := echo.NewMetrics()
	cl.AddHost("server", HostSpec{Arch: ArchIX, Cores: 1, Factory: echo.ServerFactory(7777, 64)})
	srvIP := cl.hosts[0].IP()
	cl.AddHost("client", HostSpec{Arch: ArchLinux, Cores: 1, Factory: echo.ClientFactory(echo.ClientConfig{
		ServerIP: srvIP, Port: 7777, MsgSize: 64, Rounds: 1024, Conns: 4, Metrics: m,
	})})
	cl.Start()
	cl.Run(10 * time.Millisecond)
	st := cl.IXServer(0).Thread(0).Stack().TCP()
	lt := cl.LinuxHost(0)
	_ = lt
	t.Logf("msgs=%d conns=%d p50=%v p99=%v max=%v", m.Msgs.Total(), m.Conns.Total(),
		m.Latency.Quantile(0.5), m.Latency.Quantile(0.99), m.Latency.Max())
	t.Logf("server tcp: in=%d out=%d rexmit=%d fast=%d", st.SegsIn, st.SegsOut, st.Retransmits, st.FastRetransmits)
	et := cl.IXServer(0).Thread(0)
	t.Logf("server thread: cycles=%d rx=%d tx=%d", et.Cycles, et.RxPackets, et.TxPackets)
}
