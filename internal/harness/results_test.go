package harness

import (
	"strings"
	"testing"
)

func TestResultSeriesOps(t *testing.T) {
	r := &Result{Name: "x", Figure: "Fig T", XLabel: "n", YLabel: "v"}
	r.AddPoint("a", 1, 10)
	r.AddPoint("a", 2, 20)
	r.AddPoint("b", 1, 5)
	if v, ok := r.Get("a", 2); !ok || v != 20 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
	if _, ok := r.Get("a", 3); ok {
		t.Fatal("missing x found")
	}
	if r.Max("a") != 20 || r.Max("b") != 5 || r.Max("zzz") != 0 {
		t.Fatal("Max broken")
	}
	out := r.String()
	for _, want := range []string{"Fig T", "a", "b", "20", "n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestResultTableFormatting(t *testing.T) {
	r := &Result{Name: "t", Figure: "Table X"}
	r.Tables = append(r.Tables, Table{
		Title:   "demo",
		Columns: []string{"config", "value"},
		Rows:    [][]string{{"IX", "1550K"}, {"Linux", "550K"}},
	})
	r.Notes = append(r.Notes, "a note")
	out := r.String()
	for _, want := range []string{"demo", "IX", "1550K", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestScalesSane(t *testing.T) {
	for _, sc := range []Scale{Full, Quick} {
		if sc.Window <= 0 || sc.EchoClients <= 0 || sc.MemcClients <= 0 || sc.RPSSteps < 3 {
			t.Fatalf("bad scale %+v", sc)
		}
	}
	if Quick.EchoClients >= Full.EchoClients {
		t.Fatal("quick should be smaller than full")
	}
}
