// Package dune models the protection architecture IX borrows from Dune
// (§4.1, §4.5): three-way isolation between the control plane (Linux in
// VMX root ring 0), the dataplane kernel (VMX non-root ring 0), and
// untrusted application code (VMX non-root ring 3).
//
// Go cannot take hardware faults on stray pointers, so what this package
// enforces is the *security model* — the set of checks that make the IX
// API safe against a malicious or buggy application:
//
//   - flow handles live in per-elastic-thread capability namespaces, so a
//     thread cannot operate on flows it does not own (the commutativity
//     property of §4.4) and forged or stale handles are rejected;
//   - recv_done accounting rejects double frees and over-returns of
//     message buffers;
//   - read-only mbuf mappings are checked on the write paths;
//   - POSIX calls from the application are intermediated and validated
//     before being forwarded to the Linux control plane (§4.1).
//
// Violations never corrupt dataplane state: they return errors and bump
// counters, which is exactly the paper's claim — "a malicious or
// misbehaving application can only hurt itself."
package dune

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"unsafe"
)

// Ring is a protection level.
type Ring int

// Protection levels (Fig. 1a).
const (
	// RingVMXRoot0 runs the Linux control plane.
	RingVMXRoot0 Ring = iota
	// Ring0NonRoot runs the IX dataplane kernel.
	Ring0NonRoot
	// Ring3 runs untrusted application code.
	Ring3
)

func (r Ring) String() string {
	switch r {
	case RingVMXRoot0:
		return "vmx-root ring 0"
	case Ring0NonRoot:
		return "non-root ring 0"
	case Ring3:
		return "non-root ring 3"
	}
	return "unknown"
}

// A Domain is one protection context.
type Domain struct {
	Name string
	Ring Ring
}

// UserTimeout is how long an elastic thread may spend in user mode before
// the dataplane's timeout interrupt marks the application non-responsive
// (§4.5: "in excess of 10ms").
const UserTimeout = "10ms"

// Violation kinds counted by the gate.
type Violation int

// Violation kinds.
const (
	VioBadHandle Violation = iota
	VioForeignHandle
	VioStaleHandle
	VioRecvDoneOverrun
	VioReadOnlyWrite
	VioSyscallDenied
	vioCount
)

var violationNames = [...]string{
	"bad-handle", "foreign-handle", "stale-handle",
	"recv-done-overrun", "read-only-write", "syscall-denied",
}

func (v Violation) String() string { return violationNames[v] }

// Errors returned to the offending application.
var (
	ErrBadHandle     = errors.New("dune: no such flow handle")
	ErrForeignHandle = errors.New("dune: handle owned by another elastic thread")
	ErrStaleHandle   = errors.New("dune: stale handle generation")
	ErrRecvDone      = errors.New("dune: recv_done returns more than delivered")
	ErrReadOnly      = errors.New("dune: write to read-only message buffer")
	ErrDenied        = errors.New("dune: operation not permitted")
)

// handle bit layout: [16 bits thread | 16 bits generation | 32 bits index].
func makeHandle(thread int, gen uint16, idx uint32) uint64 {
	return uint64(thread)<<48 | uint64(gen)<<32 | uint64(idx)
}

func handleThread(h uint64) int { return int(h >> 48) }
func handleGen(h uint64) uint16 { return uint16(h >> 32) }
func handleIdx(h uint64) uint32 { return uint32(h) }

// capEntry is one capability-table slot. Field order packs it into 24
// bytes (interface word pair, then the narrow scalars): with one entry
// per live flow, slot size is a direct term of the per-connection
// memory budget.
type capEntry struct {
	obj any
	// delivered tracks bytes delivered to user space and not yet
	// returned by recv_done, for overrun validation; bounded by the
	// flow's receive window, so 32 bits hold it.
	delivered int32
	gen       uint16
	live      bool
}

// Gate is the per-elastic-thread system call gate: it owns the thread's
// flow-handle namespace and validates every batched system call before it
// reaches the dataplane kernel proper.
type Gate struct {
	thread  int
	entries []capEntry
	freeIdx []uint32

	violations [vioCount]uint64
}

// NewGate creates the gate for elastic thread id. expected presizes the
// capability table for the anticipated flow population (0 = grow on
// demand): a presized table never pays append-doubling's transient
// double allocation, and its capacity is exact rather than the next
// power of two — both visible in the bytes/conn account.
func NewGate(thread, expected int) *Gate {
	g := &Gate{thread: thread}
	if expected > 0 {
		g.entries = make([]capEntry, 0, expected)
	}
	return g
}

// Grant installs obj (a dataplane flow) into the namespace and returns
// its handle.
func (g *Gate) Grant(obj any) uint64 {
	var idx uint32
	if n := len(g.freeIdx); n > 0 {
		idx = g.freeIdx[n-1]
		g.freeIdx = g.freeIdx[:n-1]
	} else {
		idx = uint32(len(g.entries))
		g.entries = append(g.entries, capEntry{})
	}
	e := &g.entries[idx]
	e.gen++
	e.obj = obj
	e.live = true
	e.delivered = 0
	return makeHandle(g.thread, e.gen, idx)
}

// Lookup validates h and returns the granted object.
func (g *Gate) Lookup(h uint64) (any, error) {
	if handleThread(h) != g.thread {
		g.violations[VioForeignHandle]++
		return nil, ErrForeignHandle
	}
	idx := handleIdx(h)
	if int(idx) >= len(g.entries) {
		g.violations[VioBadHandle]++
		return nil, ErrBadHandle
	}
	e := &g.entries[idx]
	if !e.live {
		g.violations[VioBadHandle]++
		return nil, ErrBadHandle
	}
	if e.gen != handleGen(h) {
		g.violations[VioStaleHandle]++
		return nil, ErrStaleHandle
	}
	return e.obj, nil
}

// Revoke removes h from the namespace (flow closed). Stale revokes are
// ignored.
func (g *Gate) Revoke(h uint64) {
	if handleThread(h) != g.thread {
		return
	}
	idx := handleIdx(h)
	if int(idx) >= len(g.entries) {
		return
	}
	e := &g.entries[idx]
	if e.live && e.gen == handleGen(h) {
		e.live = false
		e.obj = nil
		g.freeIdx = append(g.freeIdx, idx)
	}
}

// Delivered accounts bytes passed read-only to the application on h.
func (g *Gate) Delivered(h uint64, n int) {
	idx := handleIdx(h)
	if int(idx) < len(g.entries) && g.entries[idx].live {
		g.entries[idx].delivered += int32(n)
	}
}

// RecvDone validates a recv_done of n bytes against what was actually
// delivered, rejecting overruns (which could otherwise open the receive
// window beyond buffer accounting).
func (g *Gate) RecvDone(h uint64, n int) error {
	obj, err := g.Lookup(h)
	if err != nil {
		return err
	}
	_ = obj
	e := &g.entries[handleIdx(h)]
	if int32(n) > e.delivered {
		g.violations[VioRecvDoneOverrun]++
		return ErrRecvDone
	}
	e.delivered -= int32(n)
	return nil
}

// CheckWritable rejects writes to read-only user mappings (incoming
// mbufs). The readOnly flag comes from the buffer's mapping.
func (g *Gate) CheckWritable(readOnly bool) error {
	if readOnly {
		g.violations[VioReadOnlyWrite]++
		return ErrReadOnly
	}
	return nil
}

// Deny records a rejected system call.
func (g *Gate) Deny() error {
	g.violations[VioSyscallDenied]++
	return ErrDenied
}

// Violations returns the count for one violation kind.
func (g *Gate) Violations(v Violation) uint64 { return g.violations[v] }

// TotalViolations sums all violation counters.
func (g *Gate) TotalViolations() uint64 {
	var t uint64
	for _, v := range g.violations {
		t += v
	}
	return t
}

// FootprintBytes returns the capability-table bytes the gate pins: the
// entries backing (live and freed slots — the table never shrinks below
// its high-water mark) plus the free-index stack. The memprobe
// per-connection accounting charges this to the thread's flow
// population.
func (g *Gate) FootprintBytes() int64 {
	return int64(cap(g.entries))*int64(unsafe.Sizeof(capEntry{})) +
		int64(cap(g.freeIdx))*int64(unsafe.Sizeof(uint32(0)))
}

// Live returns the number of live handles (for leak tests).
func (g *Gate) Live() int {
	n := 0
	for _, e := range g.entries {
		if e.live {
			n++
		}
	}
	return n
}

// Passthrough intermediates POSIX system calls from dataplane threads to
// the Linux control plane (§4.1: "Both elastic and background threads can
// issue arbitrary POSIX system calls that are intermediated and validated
// for security by the dataplane before being forwarded to the Linux
// kernel"). The file namespace is an in-memory sandbox rooted at the
// dataplane's granted prefix.
type Passthrough struct {
	prefix  string
	files   map[string][]byte
	allowed map[string]bool

	Forwarded uint64
	Denied    uint64
	audit     []string
}

// NewPassthrough builds a gate for POSIX calls sandboxed under prefix.
func NewPassthrough(prefix string) *Passthrough {
	return &Passthrough{
		prefix: prefix,
		files:  make(map[string][]byte),
		allowed: map[string]bool{
			"open": true, "read": true, "write": true,
			"close": true, "stat": true, "unlink": true,
		},
	}
}

// Call validates and executes op on path for the calling domain. Only
// non-root domains may call (the control plane does not re-enter itself),
// and elastic threads are expected to avoid blocking calls — the caller
// models that cost; this gate enforces *permission*, not timing.
func (p *Passthrough) Call(d *Domain, op, path string, data []byte) ([]byte, error) {
	if d.Ring == RingVMXRoot0 {
		p.Denied++
		p.audit = append(p.audit, fmt.Sprintf("DENY %s %s %s (ring)", d.Name, op, path))
		return nil, ErrDenied
	}
	if !p.allowed[op] || !strings.HasPrefix(path, p.prefix) {
		p.Denied++
		p.audit = append(p.audit, fmt.Sprintf("DENY %s %s %s", d.Name, op, path))
		return nil, ErrDenied
	}
	p.Forwarded++
	p.audit = append(p.audit, fmt.Sprintf("ALLOW %s %s %s", d.Name, op, path))
	switch op {
	case "write":
		p.files[path] = append(p.files[path][:0:0], data...)
		return nil, nil
	case "read", "open", "stat":
		b, ok := p.files[path]
		if !ok {
			return nil, fmt.Errorf("dune: %s: no such file", path)
		}
		return b, nil
	case "unlink":
		delete(p.files, path)
		return nil, nil
	case "close":
		return nil, nil
	}
	return nil, ErrDenied
}

// Audit returns the ordered audit log.
func (p *Passthrough) Audit() []string { return append([]string(nil), p.audit...) }

// Files lists sandbox contents (sorted), for tests.
func (p *Passthrough) Files() []string {
	names := make([]string, 0, len(p.files))
	for n := range p.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
