package dune

import "testing"

func TestHandleLifecycle(t *testing.T) {
	g := NewGate(3, 0)
	obj := "flow"
	h := g.Grant(obj)
	got, err := g.Lookup(h)
	if err != nil || got != obj {
		t.Fatalf("lookup: %v, %v", got, err)
	}
	g.Revoke(h)
	if _, err := g.Lookup(h); err == nil {
		t.Fatal("revoked handle still valid")
	}
	if g.Live() != 0 {
		t.Fatalf("live = %d", g.Live())
	}
}

func TestStaleGeneration(t *testing.T) {
	g := NewGate(0, 0)
	h1 := g.Grant("first")
	g.Revoke(h1)
	h2 := g.Grant("second") // reuses the slot with a new generation
	if h1 == h2 {
		t.Fatal("generations not distinguishing reused slots")
	}
	if _, err := g.Lookup(h1); err == nil {
		t.Fatal("stale handle accepted")
	}
	if got, err := g.Lookup(h2); err != nil || got != "second" {
		t.Fatalf("fresh handle rejected: %v %v", got, err)
	}
	if g.Violations(VioStaleHandle) == 0 && g.Violations(VioBadHandle) == 0 {
		t.Fatal("stale use not counted")
	}
}

func TestForeignHandleRejected(t *testing.T) {
	g0 := NewGate(0, 0)
	g1 := NewGate(1, 0)
	h := g0.Grant("thread0 flow")
	if _, err := g1.Lookup(h); err != ErrForeignHandle {
		t.Fatalf("foreign handle error = %v", err)
	}
	if g1.Violations(VioForeignHandle) != 1 {
		t.Fatal("violation not counted")
	}
}

func TestForgedHandleRejected(t *testing.T) {
	g := NewGate(0, 0)
	if _, err := g.Lookup(0xdead); err == nil {
		t.Fatal("forged handle accepted")
	}
}

func TestRecvDoneAccounting(t *testing.T) {
	g := NewGate(0, 0)
	h := g.Grant("flow")
	g.Delivered(h, 100)
	if err := g.RecvDone(h, 60); err != nil {
		t.Fatal(err)
	}
	if err := g.RecvDone(h, 60); err != ErrRecvDone {
		t.Fatalf("overrun error = %v", err)
	}
	if g.Violations(VioRecvDoneOverrun) != 1 {
		t.Fatal("overrun not counted")
	}
	if err := g.RecvDone(h, 40); err != nil {
		t.Fatalf("remaining bytes rejected: %v", err)
	}
}

func TestReadOnlyEnforcement(t *testing.T) {
	g := NewGate(0, 0)
	if err := g.CheckWritable(true); err != ErrReadOnly {
		t.Fatalf("got %v", err)
	}
	if err := g.CheckWritable(false); err != nil {
		t.Fatalf("writable buffer rejected: %v", err)
	}
}

func TestPassthroughSandbox(t *testing.T) {
	p := NewPassthrough("/data/")
	app := &Domain{Name: "memcached", Ring: Ring3}
	cp := &Domain{Name: "linux", Ring: RingVMXRoot0}
	if _, err := p.Call(app, "write", "/data/log", []byte("x")); err != nil {
		t.Fatal(err)
	}
	b, err := p.Call(app, "read", "/data/log", nil)
	if err != nil || string(b) != "x" {
		t.Fatalf("read: %q, %v", b, err)
	}
	if _, err := p.Call(app, "write", "/etc/passwd", nil); err != ErrDenied {
		t.Fatal("escape from sandbox allowed")
	}
	if _, err := p.Call(app, "exec", "/data/x", nil); err != ErrDenied {
		t.Fatal("disallowed op permitted")
	}
	if _, err := p.Call(cp, "read", "/data/log", nil); err != ErrDenied {
		t.Fatal("control plane re-entry allowed")
	}
	if p.Denied != 3 || p.Forwarded != 2 {
		t.Fatalf("denied=%d forwarded=%d", p.Denied, p.Forwarded)
	}
	if len(p.Audit()) != 5 {
		t.Fatalf("audit entries = %d", len(p.Audit()))
	}
	if _, err := p.Call(app, "unlink", "/data/log", nil); err != nil {
		t.Fatal(err)
	}
	if len(p.Files()) != 0 {
		t.Fatal("unlink failed")
	}
}

func TestRingStrings(t *testing.T) {
	if RingVMXRoot0.String() == "" || Ring0NonRoot.String() == "" || Ring3.String() == "" {
		t.Fatal("ring names empty")
	}
}
