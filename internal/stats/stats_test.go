package stats

import (
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if m := h.Mean(); m < 48*time.Microsecond || m > 53*time.Microsecond {
		t.Fatalf("mean = %v, want ~50.5µs", m)
	}
	p50 := h.Quantile(0.5)
	if p50 < 45*time.Microsecond || p50 > 55*time.Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 90*time.Microsecond || p99 > 100*time.Microsecond {
		t.Fatalf("p99 = %v", p99)
	}
	if h.Min() != time.Microsecond || h.Max() != 100*time.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

// TestQuantileBounds: quantiles are within the recorded range and
// monotone in q, for arbitrary sample sets.
func TestQuantileBounds(t *testing.T) {
	f := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		h := NewHistogram()
		min, max := time.Duration(1<<62), time.Duration(0)
		for _, s := range samples {
			d := time.Duration(s)
			h.Record(d)
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		last := time.Duration(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v > max || v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuantileAccuracy: relative error bounded by the bucket scheme.
func TestQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	const v = 123456 * time.Nanosecond
	for i := 0; i < 1000; i++ {
		h.Record(v)
	}
	got := h.Quantile(0.99)
	err := float64(got-v) / float64(v)
	if err < -0.05 || err > 0.05 {
		t.Fatalf("p99 of constant %v = %v (err %.3f)", v, got, err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(10 * time.Microsecond)
	b.Record(20 * time.Microsecond)
	a.Merge(b)
	if a.Count() != 2 || a.Max() != 20*time.Microsecond || a.Min() != 10*time.Microsecond {
		t.Fatalf("merge: %v", a)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestCounterWindow(t *testing.T) {
	var c Counter
	c.Add(10)
	c.Reset()
	c.Add(5)
	if c.Since() != 5 || c.Total() != 15 {
		t.Fatalf("since=%d total=%d", c.Since(), c.Total())
	}
}

func TestRate(t *testing.T) {
	if r := Rate(1000, time.Millisecond); r != 1e6 {
		t.Fatalf("rate = %v", r)
	}
	if Rate(5, 0) != 0 {
		t.Fatal("zero window should give zero rate")
	}
}
