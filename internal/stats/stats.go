// Package stats provides the measurement primitives used by the
// experiment harness: log-bucketed latency histograms with percentile
// queries (the paper reports averages and 99th percentiles) and simple
// counters/rates.
//
// Sinks are host Go memory shared by all client threads of an
// experiment, which under the sharded runtime means shared across OS
// workers. Recording therefore uses the commutative atomics exported by
// internal/sim/shard — the final values are independent of worker
// interleaving, so fixed-seed determinism is preserved. Reads
// (quantiles, rates, Reset/Merge) belong between runs, on the
// coordinating goroutine.
package stats

import (
	"fmt"
	"math"
	"time"

	"ix/internal/sim/shard"
)

// Histogram is a log-linear histogram of time.Duration samples, similar in
// spirit to HdrHistogram: buckets grow geometrically so that relative
// error is bounded (~2%) across nanoseconds-to-seconds ranges.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    int64 // nanoseconds; exact (and float64-identical) below 2^53
	min    int64
	max    int64
}

// subBuckets is the number of linear sub-buckets per power of two;
// 32 gives ≈3% worst-case relative error.
const subBuckets = 32

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, 64*subBuckets), min: math.MaxInt64}
}

func bucketOf(v int64) int {
	if v < 1 {
		v = 1
	}
	exp := 63 - leadingZeros(uint64(v))
	if exp < 5 { // values < 32 map linearly
		return int(v)
	}
	sub := (v >> (uint(exp) - 5)) & (subBuckets - 1)
	return (exp-4)*subBuckets + int(sub)
}

func leadingZeros(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// bucketLow returns a representative (lower-bound) value for bucket i.
func bucketLow(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	exp := i/subBuckets + 4
	sub := i % subBuckets
	return (1 << uint(exp)) + int64(sub)<<(uint(exp)-5)
}

// Record adds one sample. Safe to call concurrently from shard workers.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	b := bucketOf(int64(d))
	if b >= len(h.counts) {
		b = len(h.counts) - 1
	}
	shard.Add64(&h.counts[b], 1)
	shard.Add64(&h.total, 1)
	shard.AddI64(&h.sum, int64(d))
	shard.MinI64(&h.min, int64(d))
	shard.MaxI64(&h.max, int64(d))
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return shard.Load64(&h.total) }

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(float64(h.sum) / float64(h.total))
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1), e.g. 0.99 for the 99th
// percentile. The result is a bucket lower bound, so it never overstates
// latency by more than one bucket width.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketLow(i)
			if v > h.max {
				return time.Duration(h.max)
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Reset clears all samples. Between runs only.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

// Merge adds all samples of o into h. Between runs only.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.total > 0 && o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d avg=%v p50=%v p99=%v max=%v",
		h.total, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), time.Duration(h.max))
}

// Counter is a monotonically increasing event counter with a measurement
// epoch, used for throughput (events per second of virtual time).
// Increments are safe from shard workers; Reset belongs between runs.
type Counter struct {
	n     uint64
	epoch uint64 // value at last Reset
}

// Inc adds one.
func (c *Counter) Inc() { shard.Add64(&c.n, 1) }

// Add adds n.
func (c *Counter) Add(n uint64) { shard.Add64(&c.n, n) }

// Total returns the all-time count.
func (c *Counter) Total() uint64 { return shard.Load64(&c.n) }

// Reset marks the start of a measurement window.
func (c *Counter) Reset() { c.epoch = shard.Load64(&c.n) }

// Since returns the count accumulated since the last Reset.
func (c *Counter) Since() uint64 { return shard.Load64(&c.n) - c.epoch }

// Rate returns events per second over a window of virtual duration d.
func Rate(events uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(events) / d.Seconds()
}
