// Package timerwheel implements the hierarchical timing wheel the IX
// dataplane uses for network timeouts such as TCP retransmissions (§4.2).
// It follows Varghese & Lauck: a stack of wheels where each higher level
// covers the full span of the one below, with timers cascading downward as
// time advances. The design is optimized for the common case in which most
// timers are cancelled before they expire (cancel is O(1) list unlink) and
// supports very high resolution timeouts — the default tick is 16 µs,
// which the paper notes matters for TCP incast recovery.
//
// NextDeadline — which the dataplane calls at every run-to-completion
// quiescence point — is served by a lazy-deletion min-heap of deadlines
// maintained at Add/Transfer time: cancelled and fired timers are skimmed
// off the heap top when encountered, so the query is O(1) amortized even
// when thousands of timers share one wheel slot.
package timerwheel

import "time"

const (
	// Levels is the number of wheels in the hierarchy.
	Levels = 4
	// Slots is the number of slots per wheel; with a 16 µs tick the
	// hierarchy spans 16 µs × 256⁴ ≈ 19 hours.
	Slots = 256

	// DefaultTick is the paper's 16 µs timer resolution.
	DefaultTick = 16 * time.Microsecond
)

// A Timer is a pending timeout. Timers are intrusive list nodes, and
// fired or cancelled timers return to a per-wheel free list, so the
// add/fire and add/cancel cycles are allocation-free — the
// per-retransmission-arming pattern of the TCP hot path. A timer that
// has fired or been cancelled belongs to the wheel again and must not
// be used by the caller.
type Timer struct {
	deadline   int64 // ns
	fn         func()
	argFn      func(any)
	arg        any
	next, prev *Timer
	slot       *slotList
	// wheel identifies the owning wheel while pending, so stale min-heap
	// entries from a Transfer are recognized as dead.
	wheel *Wheel
	// gen increments each time the timer dies (fire/cancel), so min-heap
	// entries from a previous life are recognized as dead even after the
	// timer is reused.
	gen uint32
}

// Deadline returns the absolute deadline in nanoseconds.
func (t *Timer) Deadline() int64 { return t.deadline }

// Pending reports whether the timer is scheduled and not yet fired or
// cancelled.
func (t *Timer) Pending() bool { return t.slot != nil }

type slotList struct {
	head Timer // sentinel
}

func (s *slotList) init() {
	s.head.next = &s.head
	s.head.prev = &s.head
}

func (s *slotList) push(t *Timer) {
	t.slot = s
	t.prev = s.head.prev
	t.next = &s.head
	s.head.prev.next = t
	s.head.prev = t
}

func (s *slotList) empty() bool { return s.head.next == &s.head }

func unlink(t *Timer) {
	t.prev.next = t.next
	t.next.prev = t.prev
	t.next, t.prev, t.slot = nil, nil, nil
}

// minEntry is one lazy min-heap record: the deadline by value (so heap
// sifts never chase the timer pointer) plus the timer — and its
// generation at record time — it belonged to.
type minEntry struct {
	deadline int64
	gen      uint32
	t        *Timer
}

// A Wheel is a hierarchical timing wheel. It is single-owner (one per
// elastic thread) and not safe for concurrent use, by design.
type Wheel struct {
	tick    int64 // ns per tick
	curTick int64 // ticks elapsed
	levels  [Levels][Slots]slotList
	count   int

	// minHeap tracks pending deadlines with lazy deletion: every Add or
	// Transfer-in pushes an entry; entries whose timer has fired, been
	// cancelled, moved wheels, or been reused are dropped when they
	// surface at the top.
	minHeap []minEntry

	// free recycles dead timers (allocation-free add/cancel churn).
	free []*Timer

	// Stats for the cancel-dominated workload claim.
	Added     uint64
	Cancelled uint64
	Fired     uint64
	// Migration traffic (Transfer does not disturb the add/cancel stats).
	TransferredIn  uint64
	TransferredOut uint64
}

// New returns a wheel with the given tick resolution starting at time
// now (nanoseconds).
func New(tick time.Duration, now int64) *Wheel {
	if tick <= 0 {
		tick = DefaultTick
	}
	w := &Wheel{tick: int64(tick)}
	w.curTick = now / w.tick
	for l := range w.levels {
		for s := range w.levels[l] {
			w.levels[l][s].init()
		}
	}
	return w
}

// Len returns the number of pending timers.
func (w *Wheel) Len() int { return w.count }

// NextTickTime returns the virtual time of the next tick boundary — the
// earliest instant at which a deadline inside the current tick can fire
// (place never puts a timer in the current tick's slot).
func (w *Wheel) NextTickTime() int64 { return (w.curTick + 1) * w.tick }

// Now returns the wheel's current time in nanoseconds (quantized to the
// tick).
func (w *Wheel) Now() int64 { return w.curTick * w.tick }

// heapPush records a pending deadline.
func (w *Wheel) heapPush(t *Timer) {
	h := w.minHeap
	i := len(h)
	h = append(h, minEntry{deadline: t.deadline, gen: t.gen, t: t})
	for i > 0 {
		parent := (i - 1) >> 1
		if h[parent].deadline <= t.deadline {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = minEntry{deadline: t.deadline, gen: t.gen, t: t}
	w.minHeap = h
}

// heapPop removes the top entry.
func (w *Wheel) heapPop() {
	h := w.minHeap
	n := len(h) - 1
	last := h[n]
	h[n] = minEntry{}
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			c := i<<1 + 1
			if c >= n {
				break
			}
			if c+1 < n && h[c+1].deadline < h[c].deadline {
				c++
			}
			if h[c].deadline >= last.deadline {
				break
			}
			h[i] = h[c]
			i = c
		}
		h[i] = last
	}
	w.minHeap = h
}

// Add schedules fn to fire at absolute deadline ns. Deadlines at or before
// the current tick fire on the next Advance. The returned timer may be
// cancelled until it fires; once fired or cancelled it belongs to the
// wheel again and must not be touched.
func (w *Wheel) Add(deadline int64, fn func()) *Timer {
	var t *Timer
	if n := len(w.free); n > 0 {
		t = w.free[n-1]
		w.free[n-1] = nil
		w.free = w.free[:n-1]
		t.deadline = deadline
		t.fn = fn
	} else {
		t = &Timer{deadline: deadline, fn: fn}
	}
	w.place(t)
	w.heapPush(t)
	w.count++
	w.Added++
	return t
}

// AddArg schedules fn(arg) to fire at absolute deadline ns. It is the
// closure-free variant of Add for per-object timers armed in bulk: a
// package-level fn plus a pointer arg costs nothing per arming, where a
// bound method value like c.onRTO allocates a two-word closure that
// lives as long as the timer — 48 bytes per connection across the
// three TCP timers at Fig. 4 populations. Same contract as Add
// otherwise. A pointer (or other pointer-shaped) arg does not allocate;
// scalar args box and lose the point.
func (w *Wheel) AddArg(deadline int64, fn func(any), arg any) *Timer {
	var t *Timer
	if n := len(w.free); n > 0 {
		t = w.free[n-1]
		w.free[n-1] = nil
		w.free = w.free[:n-1]
		t.deadline = deadline
	} else {
		t = &Timer{deadline: deadline}
	}
	t.argFn = fn
	t.arg = arg
	w.place(t)
	w.heapPush(t)
	w.count++
	w.Added++
	return t
}

// recycle retires a dead timer into the free list, bumping its
// generation so stale min-heap entries referencing this life die.
func (w *Wheel) recycle(t *Timer) {
	t.gen++
	t.fn = nil
	t.argFn = nil
	t.arg = nil
	w.free = append(w.free, t)
}

// place inserts t into the correct level/slot for its deadline.
func (w *Wheel) place(t *Timer) {
	t.wheel = w
	dt := t.deadline/w.tick - w.curTick
	if dt < 1 {
		dt = 1
	}
	tickAt := w.curTick + dt
	for l := 0; l < Levels; l++ {
		span := int64(1) << (8 * uint(l+1)) // ticks covered by levels 0..l
		if dt < span || l == Levels-1 {
			slot := int((tickAt >> (8 * uint(l))) & (Slots - 1))
			w.levels[l][slot].push(t)
			return
		}
	}
}

// Cancel removes t from the wheel; it reports whether the timer was still
// pending. Cancelling nil or an expired timer is a no-op. The min-heap
// entry is left behind and skimmed lazily; the timer itself returns to
// the free list and must not be used again.
func (w *Wheel) Cancel(t *Timer) bool {
	if t == nil || t.slot == nil {
		return false
	}
	unlink(t)
	w.count--
	w.Cancelled++
	w.recycle(t)
	return true
}

// Transfer moves a pending timer from w to dst, preserving its deadline
// and callback — the re-homing primitive behind control-plane flow-group
// migration: a migrated connection's retransmission, TIME_WAIT and
// delayed-ACK timers keep their original deadlines on the destination
// elastic thread's wheel. A deadline already in dst's past fires on dst's
// next Advance. Transferring a fired, cancelled or nil timer is a no-op;
// it does not count as a cancel on w nor an add on dst. Reports whether
// the timer moved.
func (w *Wheel) Transfer(t *Timer, dst *Wheel) bool {
	if t == nil || t.slot == nil || dst == nil || dst == w {
		return false
	}
	unlink(t)
	w.count--
	dst.place(t)
	dst.heapPush(t)
	dst.count++
	w.TransferredOut++
	dst.TransferredIn++
	return true
}

// Advance moves the wheel's clock to now (ns), firing every timer whose
// deadline has passed, in deadline order within a tick's resolution.
func (w *Wheel) Advance(now int64) {
	target := now / w.tick
	for w.curTick < target {
		if w.count == 0 {
			// Nothing pending: jump.
			w.curTick = target
			return
		}
		w.curTick++
		// Cascade when a lower wheel wraps.
		for l := 1; l < Levels; l++ {
			if w.curTick&((int64(1)<<(8*uint(l)))-1) != 0 {
				break
			}
			slot := (w.curTick >> (8 * uint(l))) & (Slots - 1)
			w.cascade(&w.levels[l][slot])
		}
		w.fireSlot(&w.levels[0][w.curTick&(Slots-1)])
	}
}

// cascade re-places every timer in s one level down.
func (w *Wheel) cascade(s *slotList) {
	for !s.empty() {
		t := s.head.next
		unlink(t)
		w.place(t)
	}
}

// fireSlot runs all timers in the current level-0 slot whose deadline is
// due (all of them, by construction). The timer is recycled before its
// callback runs, so a callback that re-arms reuses it immediately.
func (w *Wheel) fireSlot(s *slotList) {
	for !s.empty() {
		t := s.head.next
		unlink(t)
		w.count--
		w.Fired++
		fn, argFn, arg := t.fn, t.argFn, t.arg
		w.recycle(t)
		if argFn != nil {
			argFn(arg)
		} else {
			fn()
		}
	}
}

// NextDeadline returns the earliest pending deadline in nanoseconds and
// true, or zero and false if no timers are pending. Dead heap entries
// (fired, cancelled, or transferred timers) surfacing at the top are
// discarded; each Add pays for at most one such discard, so the query is
// O(1) amortized.
func (w *Wheel) NextDeadline() (int64, bool) {
	if w.count == 0 {
		// Nothing pending: every heap entry is stale. Truncate instead of
		// letting dead entries pile up across add/cancel churn (an
		// RTO-per-message workload adds and cancels without the heap top
		// ever surfacing otherwise).
		if len(w.minHeap) > 0 {
			for i := range w.minHeap {
				w.minHeap[i] = minEntry{}
			}
			w.minHeap = w.minHeap[:0]
		}
		return 0, false
	}
	for len(w.minHeap) > 0 {
		top := w.minHeap[0]
		if top.t.slot != nil && top.t.wheel == w && top.t.gen == top.gen {
			return top.deadline, true
		}
		w.heapPop()
	}
	return 0, false
}

// NextFireTime returns the earliest virtual instant at which a pending
// timer can actually fire, and whether one is pending. It differs from
// NextDeadline by accounting for tick quantization: a deadline at or
// before the current tick cannot fire until the wheel's next tick
// boundary, so — provided the wheel's clock is current — the returned
// time is always strictly in the future. OS models arm their idle
// wakeups from this, never from the raw deadline: arming at a deadline
// inside the current tick re-wakes at an instant where Advance cannot
// make progress, which spins an idle core at one virtual time (the
// timer-wake livelock family).
func (w *Wheel) NextFireTime() (int64, bool) {
	nd, ok := w.NextDeadline()
	if !ok {
		return 0, false
	}
	if next := w.NextTickTime(); nd < next {
		return next, true
	}
	return nd, true
}
