// Package timerwheel implements the hierarchical timing wheel the IX
// dataplane uses for network timeouts such as TCP retransmissions (§4.2).
// It follows Varghese & Lauck: a stack of wheels where each higher level
// covers the full span of the one below, with timers cascading downward as
// time advances. The design is optimized for the common case in which most
// timers are cancelled before they expire (cancel is O(1) list unlink) and
// supports very high resolution timeouts — the default tick is 16 µs,
// which the paper notes matters for TCP incast recovery.
package timerwheel

import "time"

const (
	// Levels is the number of wheels in the hierarchy.
	Levels = 4
	// Slots is the number of slots per wheel; with a 16 µs tick the
	// hierarchy spans 16 µs × 256⁴ ≈ 19 hours.
	Slots = 256

	// DefaultTick is the paper's 16 µs timer resolution.
	DefaultTick = 16 * time.Microsecond
)

// A Timer is a pending timeout. Timers are intrusive list nodes so that
// add and cancel are allocation-free.
type Timer struct {
	deadline   int64 // ns
	fn         func()
	next, prev *Timer
	slot       *slotList
}

// Deadline returns the absolute deadline in nanoseconds.
func (t *Timer) Deadline() int64 { return t.deadline }

// Pending reports whether the timer is scheduled and not yet fired or
// cancelled.
func (t *Timer) Pending() bool { return t.slot != nil }

type slotList struct {
	head Timer // sentinel
}

func (s *slotList) init() {
	s.head.next = &s.head
	s.head.prev = &s.head
}

func (s *slotList) push(t *Timer) {
	t.slot = s
	t.prev = s.head.prev
	t.next = &s.head
	s.head.prev.next = t
	s.head.prev = t
}

func (s *slotList) empty() bool { return s.head.next == &s.head }

func unlink(t *Timer) {
	t.prev.next = t.next
	t.next.prev = t.prev
	t.next, t.prev, t.slot = nil, nil, nil
}

// A Wheel is a hierarchical timing wheel. It is single-owner (one per
// elastic thread) and not safe for concurrent use, by design.
type Wheel struct {
	tick    int64 // ns per tick
	curTick int64 // ticks elapsed
	levels  [Levels][Slots]slotList
	count   int

	// Stats for the cancel-dominated workload claim.
	Added     uint64
	Cancelled uint64
	Fired     uint64
	// Migration traffic (Transfer does not disturb the add/cancel stats).
	TransferredIn  uint64
	TransferredOut uint64
}

// New returns a wheel with the given tick resolution starting at time
// now (nanoseconds).
func New(tick time.Duration, now int64) *Wheel {
	if tick <= 0 {
		tick = DefaultTick
	}
	w := &Wheel{tick: int64(tick)}
	w.curTick = now / w.tick
	for l := range w.levels {
		for s := range w.levels[l] {
			w.levels[l][s].init()
		}
	}
	return w
}

// Len returns the number of pending timers.
func (w *Wheel) Len() int { return w.count }

// Now returns the wheel's current time in nanoseconds (quantized to the
// tick).
func (w *Wheel) Now() int64 { return w.curTick * w.tick }

// Add schedules fn to fire at absolute deadline ns. Deadlines at or before
// the current tick fire on the next Advance. The returned timer may be
// cancelled until it fires.
func (w *Wheel) Add(deadline int64, fn func()) *Timer {
	t := &Timer{deadline: deadline, fn: fn}
	w.place(t)
	w.count++
	w.Added++
	return t
}

// place inserts t into the correct level/slot for its deadline.
func (w *Wheel) place(t *Timer) {
	dt := t.deadline/w.tick - w.curTick
	if dt < 1 {
		dt = 1
	}
	tickAt := w.curTick + dt
	for l := 0; l < Levels; l++ {
		span := int64(1) << (8 * uint(l+1)) // ticks covered by levels 0..l
		if dt < span || l == Levels-1 {
			slot := (tickAt >> (8 * uint(l))) & (Slots - 1)
			w.levels[l][slot].push(t)
			return
		}
	}
}

// Cancel removes t from the wheel; it reports whether the timer was still
// pending. Cancelling nil or an expired timer is a no-op.
func (w *Wheel) Cancel(t *Timer) bool {
	if t == nil || t.slot == nil {
		return false
	}
	unlink(t)
	w.count--
	w.Cancelled++
	return true
}

// Transfer moves a pending timer from w to dst, preserving its deadline
// and callback — the re-homing primitive behind control-plane flow-group
// migration: a migrated connection's retransmission, TIME_WAIT and
// delayed-ACK timers keep their original deadlines on the destination
// elastic thread's wheel. A deadline already in dst's past fires on dst's
// next Advance. Transferring a fired, cancelled or nil timer is a no-op;
// it does not count as a cancel on w nor an add on dst. Reports whether
// the timer moved.
func (w *Wheel) Transfer(t *Timer, dst *Wheel) bool {
	if t == nil || t.slot == nil || dst == nil || dst == w {
		return false
	}
	unlink(t)
	w.count--
	dst.place(t)
	dst.count++
	w.TransferredOut++
	dst.TransferredIn++
	return true
}

// Advance moves the wheel's clock to now (ns), firing every timer whose
// deadline has passed, in deadline order within a tick's resolution.
func (w *Wheel) Advance(now int64) {
	target := now / w.tick
	for w.curTick < target {
		if w.count == 0 {
			// Nothing pending: jump.
			w.curTick = target
			return
		}
		w.curTick++
		// Cascade when a lower wheel wraps.
		for l := 1; l < Levels; l++ {
			if w.curTick&((int64(1)<<(8*uint(l)))-1) != 0 {
				break
			}
			slot := (w.curTick >> (8 * uint(l))) & (Slots - 1)
			w.cascade(&w.levels[l][slot])
		}
		w.fireSlot(&w.levels[0][w.curTick&(Slots-1)])
	}
}

// cascade re-places every timer in s one level down.
func (w *Wheel) cascade(s *slotList) {
	for !s.empty() {
		t := s.head.next
		unlink(t)
		w.place(t)
	}
}

// fireSlot runs all timers in the current level-0 slot whose deadline is
// due (all of them, by construction).
func (w *Wheel) fireSlot(s *slotList) {
	for !s.empty() {
		t := s.head.next
		unlink(t)
		w.count--
		w.Fired++
		t.fn()
	}
}

// NextDeadline returns the earliest pending deadline in nanoseconds and
// true, or zero and false if no timers are pending. It scans at most
// Levels×Slots slots; the dataplane calls it only when about to idle.
func (w *Wheel) NextDeadline() (int64, bool) {
	if w.count == 0 {
		return 0, false
	}
	best := int64(0)
	found := false
	for l := 0; l < Levels; l++ {
		for s := 0; s < Slots; s++ {
			sl := &w.levels[l][s]
			for t := sl.head.next; t != &sl.head; t = t.next {
				if !found || t.deadline < best {
					best = t.deadline
					found = true
				}
			}
		}
		if found {
			// A lower level always holds earlier deadlines than the
			// levels above it can cascade sooner than; stop at the first
			// level with entries.
			break
		}
	}
	if !found {
		return 0, false
	}
	return best, true
}
