package timerwheel

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestFireInOrder(t *testing.T) {
	w := New(DefaultTick, 0)
	var fired []int
	w.Add(100_000, func() { fired = append(fired, 2) })
	w.Add(50_000, func() { fired = append(fired, 1) })
	w.Add(200_000, func() { fired = append(fired, 3) })
	w.Advance(300_000)
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("fire order = %v", fired)
	}
	if w.Len() != 0 {
		t.Fatalf("len = %d after firing all", w.Len())
	}
}

func TestCancel(t *testing.T) {
	w := New(DefaultTick, 0)
	fired := false
	tm := w.Add(100_000, func() { fired = true })
	if !w.Cancel(tm) {
		t.Fatal("cancel reported failure")
	}
	if w.Cancel(tm) {
		t.Fatal("second cancel reported success")
	}
	w.Advance(1_000_000)
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if w.Cancelled != 1 {
		t.Fatalf("cancelled count = %d", w.Cancelled)
	}
}

func TestCascade(t *testing.T) {
	w := New(DefaultTick, 0)
	// A deadline several wheel-levels out.
	far := int64(DefaultTick) * Slots * 10
	fired := int64(0)
	w.Add(far, func() { fired = 1 })
	w.Advance(far - int64(DefaultTick))
	if fired != 0 {
		t.Fatal("fired early")
	}
	w.Advance(far + int64(DefaultTick))
	if fired != 1 {
		t.Fatal("did not fire after cascade")
	}
}

func TestLongJumpWithEmptyWheel(t *testing.T) {
	w := New(DefaultTick, 0)
	w.Advance(int64(time.Hour)) // must not loop for hours of ticks
	w.Add(int64(time.Hour)+50_000, func() {})
	if w.Len() != 1 {
		t.Fatal("timer lost after long jump")
	}
}

func TestNextDeadline(t *testing.T) {
	w := New(DefaultTick, 0)
	if _, ok := w.NextDeadline(); ok {
		t.Fatal("empty wheel reported a deadline")
	}
	w.Add(500_000, func() {})
	w.Add(100_000, func() {})
	nd, ok := w.NextDeadline()
	if !ok || nd != 100_000 {
		t.Fatalf("next deadline = %d, %v; want 100000", nd, ok)
	}
}

// TestNeverEarly: a timer never fires before its deadline (within one
// tick of quantization), across random deadlines and advance patterns.
func TestNeverEarly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := New(DefaultTick, 0)
		type rec struct{ deadline, firedAt int64 }
		var recs []*rec
		now := int64(0)
		for i := 0; i < 40; i++ {
			d := now + rng.Int63n(int64(DefaultTick)*Slots*3)
			r := &rec{deadline: d, firedAt: -1}
			recs = append(recs, r)
			w.Add(d, func() { r.firedAt = w.Now() })
			now += rng.Int63n(int64(DefaultTick) * 50)
			w.Advance(now)
		}
		w.Advance(now + int64(DefaultTick)*Slots*4)
		for _, r := range recs {
			if r.firedAt < 0 {
				return false // never fired
			}
			if r.firedAt+int64(DefaultTick) < r.deadline {
				return false // fired early
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestCancelDominatedWorkload exercises the paper's common case: most
// timers cancelled before expiry (TCP retransmission timers).
func TestCancelDominatedWorkload(t *testing.T) {
	w := New(DefaultTick, 0)
	rng := rand.New(rand.NewSource(7))
	var live []*Timer
	now := int64(0)
	firedCount := 0
	for i := 0; i < 10_000; i++ {
		tm := w.Add(now+int64(200*time.Microsecond), func() { firedCount++ })
		live = append(live, tm)
		if len(live) > 8 {
			// Cancel an old timer (ack arrived).
			idx := rng.Intn(len(live))
			w.Cancel(live[idx])
			live = append(live[:idx], live[idx+1:]...)
		}
		now += int64(10 * time.Microsecond)
		w.Advance(now)
	}
	if w.Cancelled < 8500 {
		t.Fatalf("cancelled = %d, want ≥8500", w.Cancelled)
	}
	if w.Fired+w.Cancelled+uint64(w.Len()) != w.Added {
		t.Fatalf("accounting: added=%d fired=%d cancelled=%d pending=%d",
			w.Added, w.Fired, w.Cancelled, w.Len())
	}
}

func TestFireOrderProperty(t *testing.T) {
	f := func(deadlines []uint32) bool {
		if len(deadlines) == 0 {
			return true
		}
		w := New(DefaultTick, 0)
		var fired []int64
		max := int64(0)
		for _, d := range deadlines {
			dl := int64(d % 100_000_000)
			if dl > max {
				max = dl
			}
			w.Add(dl, func() { fired = append(fired, w.Now()) })
		}
		w.Advance(max + int64(DefaultTick)*2)
		if len(fired) != len(deadlines) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestTransfer: a pending timer re-homes to another wheel with deadline
// and callback intact; fired/cancelled timers do not move.
func TestTransfer(t *testing.T) {
	src := New(DefaultTick, 0)
	dst := New(DefaultTick, 0)
	fired := 0
	tm := src.Add(100_000, func() { fired++ })
	if !src.Transfer(tm, dst) {
		t.Fatal("Transfer refused a pending timer")
	}
	if src.Len() != 0 || dst.Len() != 1 {
		t.Fatalf("counts after transfer: src=%d dst=%d", src.Len(), dst.Len())
	}
	// The source wheel advancing past the deadline must not fire it.
	src.Advance(200_000)
	if fired != 0 {
		t.Fatal("timer fired on the source wheel after transfer")
	}
	dst.Advance(200_000)
	if fired != 1 {
		t.Fatalf("timer did not fire on the destination wheel (fired=%d)", fired)
	}
	// Fired timers do not transfer.
	if src.Transfer(tm, dst) {
		t.Fatal("Transfer moved a fired timer")
	}
	// Cancelled timers do not transfer.
	tm2 := src.Add(300_000, func() {})
	src.Cancel(tm2)
	if src.Transfer(tm2, dst) {
		t.Fatal("Transfer moved a cancelled timer")
	}
	if src.TransferredOut != 1 || dst.TransferredIn != 1 {
		t.Fatalf("transfer stats: out=%d in=%d", src.TransferredOut, dst.TransferredIn)
	}
}

// TestTransferPastDeadline: a deadline already in the destination's past
// fires on its next Advance rather than being lost.
func TestTransferPastDeadline(t *testing.T) {
	src := New(DefaultTick, 0)
	dst := New(DefaultTick, 0)
	dst.Advance(500_000) // destination clock is ahead of the deadline
	fired := false
	tm := src.Add(100_000, func() { fired = true })
	src.Transfer(tm, dst)
	dst.Advance(600_000)
	if !fired {
		t.Fatal("past-deadline timer lost in transfer")
	}
}

// TestNextFireTimeNeverInCurrentTick: the fire-time query quantizes
// deadlines at or before the current tick up to the next tick boundary,
// so an OS model arming an idle wakeup from it can never spin at one
// virtual instant (the timer-wake livelock family).
func TestNextFireTimeNeverInCurrentTick(t *testing.T) {
	w := New(DefaultTick, 0)
	tick := int64(DefaultTick)
	w.Advance(10 * tick)

	// Deadline inside the current tick: fire time is the next boundary.
	tm := w.Add(10*tick+tick/2, func() {})
	ft, ok := w.NextFireTime()
	if !ok {
		t.Fatal("no fire time with a pending timer")
	}
	if ft != 11*tick {
		t.Fatalf("fire time = %d, want next boundary %d", ft, 11*tick)
	}
	if ft <= w.Now() {
		t.Fatalf("fire time %d not after wheel now %d", ft, w.Now())
	}
	// And the timer really does fire when Advance crosses that boundary.
	fired := false
	w.Cancel(tm)
	w.Add(10*tick+tick/2, func() { fired = true })
	w.Advance(11 * tick)
	if !fired {
		t.Fatal("timer did not fire at the reported fire time")
	}

	// A deadline beyond the current tick is reported as-is.
	w.Add(20*tick+5, func() {})
	ft, _ = w.NextFireTime()
	if ft != 20*tick+5 {
		t.Fatalf("future deadline fire time = %d, want %d", ft, 20*tick+5)
	}

	// Empty wheel: no fire time.
	w2 := New(DefaultTick, 0)
	if _, ok := w2.NextFireTime(); ok {
		t.Fatal("fire time reported on an empty wheel")
	}
}

// TestTimerReuseGenerations: recycled timers must not resurrect stale
// min-heap entries — a cancelled timer's old deadline may not surface
// as NextDeadline after the timer object is reused with a later one.
func TestTimerReuseGenerations(t *testing.T) {
	w := New(DefaultTick, 0)
	early := w.Add(100_000, func() {})
	w.Cancel(early)
	// Reuses the recycled object with a later deadline.
	late := w.Add(900_000, func() {})
	if late != early {
		t.Skip("free list did not reuse the timer object")
	}
	nd, ok := w.NextDeadline()
	if !ok || nd != 900_000 {
		t.Fatalf("NextDeadline = %d,%v; stale entry resurrected (want 900000)", nd, ok)
	}
}

// TestZeroAllocAddCancelChurn: the RTO pattern — add, cancel, query —
// must not allocate once the free list and heap are warm, and the heap
// must not grow without bound when queries happen while idle.
func TestZeroAllocAddCancelChurn(t *testing.T) {
	w := New(DefaultTick, 0)
	now := int64(0)
	// Warm.
	tm := w.Add(now+1_000_000, func() {})
	w.Cancel(tm)
	w.NextDeadline()
	allocs := testing.AllocsPerRun(1000, func() {
		now += 50_000
		tm := w.Add(now+1_000_000, func() {})
		w.Cancel(tm)
		w.NextDeadline()
	})
	if allocs != 0 {
		t.Fatalf("add/cancel churn allocates %.2f per op, want 0", allocs)
	}
	if len(w.minHeap) != 0 {
		t.Fatalf("idle wheel retains %d stale heap entries", len(w.minHeap))
	}
}
