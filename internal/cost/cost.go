// Package cost defines the calibrated virtual-time cost model for the
// three OS architectures compared in the paper: the IX dataplane, the
// tuned Linux 3.16 kernel stack, and the mTCP user-level stack. Protocol
// and application code in this repository executes as real Go code; these
// constants determine how many virtual nanoseconds each stage charges to
// its core. They were calibrated so that the microbenchmark *shapes* of
// §5 hold (orderings, saturation points, crossovers); see EXPERIMENTS.md
// for the calibration record.
//
// The constants are deliberately centralized and documented here rather
// than scattered through the stacks, so every modelling assumption is
// auditable in one place.
package cost

import "time"

// PerByte is a cost expressed in nanoseconds per byte, allowing sub-
// nanosecond granularity (time.Duration cannot represent picoseconds).
type PerByte float64

// Cost returns the virtual time to process n bytes.
func (p PerByte) Cost(n int) time.Duration {
	if n <= 0 || p <= 0 {
		return 0
	}
	return time.Duration(float64(n) * float64(p))
}

// IX is the dataplane cost model (§4.2–4.4). The dataplane runs to
// completion with adaptive batching, so fixed per-cycle costs amortize
// over the batch; zero-copy means no per-byte copy terms on the RX path.
type IX struct {
	// CyclePoll is the fixed cost per run-to-completion cycle: polling
	// the RX descriptor ring and bookkeeping (step 1 of Fig. 1b).
	CyclePoll time.Duration
	// DescriptorPost is the PCIe doorbell write cost; §6 explains these
	// had to be coalesced (≥32 descriptors per write) to scale.
	DescriptorPost time.Duration
	// ProtoRx is TCP/IP receive processing per packet in the dataplane
	// kernel (lwIP-derived stack, no socket locks, pool allocation).
	ProtoRx time.Duration
	// ProtoRxByte is the per-byte receive term (checksum validation and
	// header-adjacent cache effects; no copy — mbufs are zero-copy).
	ProtoRxByte PerByte
	// ProtoTx is TCP/IP transmit processing per packet.
	ProtoTx time.Duration
	// ProtoTxByte is the per-byte transmit term (checksum; no copy).
	ProtoTxByte PerByte
	// UserTransition is one ring 0 ↔ ring 3 crossing inside VMX
	// non-root mode; §6 notes it costs about one L3 miss. Two are paid
	// per cycle (kernel→user, user→kernel), amortized over the batch.
	UserTransition time.Duration
	// Syscall is the per-entry cost of a *batched* system call: array
	// write, validation in the dune gate, dispatch.
	Syscall time.Duration
	// EventCond is the per-entry cost of generating an event condition.
	EventCond time.Duration
	// TimerCycle is the timer-wheel advance per cycle.
	TimerCycle time.Duration
	// ConnSetup is the extra cost of PCB allocation and teardown per
	// connection (handshake processing beyond plain segments).
	ConnSetup time.Duration
	// L3Miss is the stall of one LLC miss; connection-count scaling
	// multiplies this by MissesPerMsg(conns) (Fig. 4, DDIO discussion).
	L3Miss time.Duration

	// Ablation knobs (DESIGN.md §5) — both zero in the real IX model:
	//
	// CopyPerByte, when set, charges a per-byte copy on both RX and TX
	// (disabling the zero-copy API, like a conventional socket layer).
	CopyPerByte PerByte
	// NoDoorbellCoalesce, when true, pays one PCIe doorbell write per
	// received packet instead of coalescing ≥32 descriptors (the §6
	// hardware bottleneck).
	NoDoorbellCoalesce bool
}

// DefaultIX is the calibrated IX model.
func DefaultIX() IX {
	return IX{
		CyclePoll:      150 * time.Nanosecond,
		DescriptorPost: 90 * time.Nanosecond,
		ProtoRx:        140 * time.Nanosecond,
		ProtoRxByte:    0.12,
		ProtoTx:        115 * time.Nanosecond,
		ProtoTxByte:    0.10,
		UserTransition: 40 * time.Nanosecond,
		Syscall:        20 * time.Nanosecond,
		EventCond:      12 * time.Nanosecond,
		TimerCycle:     30 * time.Nanosecond,
		ConnSetup:      450 * time.Nanosecond,
		L3Miss:         86 * time.Nanosecond,
	}
}

// Linux is the tuned kernel-stack model (§5.1 baseline: pinned threads,
// affinitized interrupts, tuned moderation, libevent + epoll).
type Linux struct {
	// HardIRQ is interrupt entry/exit plus NAPI scheduling.
	HardIRQ time.Duration
	// SoftIRQPerPkt is kernel receive processing per packet: skb
	// allocation, socket lookup with locking, TCP input, backlog.
	SoftIRQPerPkt time.Duration
	// CopyPerByte is the copy between sk_buffs and user buffers,
	// charged on both read() and write() paths.
	CopyPerByte PerByte
	// SyscallEntry is one user↔kernel crossing for a conventional
	// system call (read/write/epoll_wait), including mitigation costs.
	SyscallEntry time.Duration
	// EpollDispatch is the per-ready-event cost inside epoll_wait.
	EpollDispatch time.Duration
	// SockRead is the fixed kernel cost of read() on a socket beyond
	// the crossing (fd lookup, lock, dequeue).
	SockRead time.Duration
	// SockWrite is the fixed kernel cost of write(): lock, skb alloc,
	// TCP output engine, qdisc, driver TX.
	SockWrite time.Duration
	// TxPerPkt is the per-segment transmit cost beyond SockWrite
	// (segmentation, qdisc, driver descriptor work).
	TxPerPkt time.Duration
	// WakeupLatency is the scheduler delay from softirq wakeup to the
	// pinned, blocked application thread resuming on its core.
	WakeupLatency time.Duration
	// CtxSwitch is a context switch between kernel softirq work and the
	// application thread sharing the core.
	CtxSwitch time.Duration
	// ConnSetup is per-connection kernel setup/teardown extra cost
	// (accept path, fd allocation, TIME_WAIT bookkeeping).
	ConnSetup time.Duration
	// L3Miss as for IX; Linux also touches more cache lines per packet,
	// captured in the fixed costs rather than the miss curve.
	L3Miss time.Duration
}

// DefaultLinux is the calibrated Linux model.
func DefaultLinux() Linux {
	return Linux{
		HardIRQ:       900 * time.Nanosecond,
		SoftIRQPerPkt: 1600 * time.Nanosecond,
		CopyPerByte:   0.25,
		SyscallEntry:  400 * time.Nanosecond,
		EpollDispatch: 180 * time.Nanosecond,
		SockRead:      800 * time.Nanosecond,
		SockWrite:     2100 * time.Nanosecond,
		TxPerPkt:      900 * time.Nanosecond,
		WakeupLatency: 8000 * time.Nanosecond,
		CtxSwitch:     1000 * time.Nanosecond,
		ConnSetup:     2800 * time.Nanosecond,
		L3Miss:        86 * time.Nanosecond,
	}
}

// MTCP is the user-level stack model (mTCP, NSDI '14): per-core TCP
// threads that poll the NIC and exchange batched queues with application
// threads. Throughput benefits from aggressive batching; latency pays for
// the coarse-grained handoff.
type MTCP struct {
	// PollRound is the fixed cost of one TCP-thread poll round.
	PollRound time.Duration
	// ProtoRx/ProtoTx are per-packet user-level TCP processing costs —
	// cheaper than Linux (no kernel crossings, pool allocation) but
	// heavier than IX's dataplane (flow-level locks with the app
	// thread, internal queueing).
	ProtoRx time.Duration
	ProtoTx time.Duration
	// CopyPerByte: mTCP copies between TCP buffers and application
	// buffers on both paths (its API is socket-like, not zero-copy).
	CopyPerByte PerByte
	// QueueOp is the per-event cost of the lock-free job/event queues
	// between the TCP thread and the application thread.
	QueueOp time.Duration
	// HandoffInterval is the batching granularity between the TCP
	// thread and application thread: events sit in the queues for up to
	// this long before the other side runs (the source of mTCP's added
	// latency; §2.3 and §5.2).
	HandoffInterval time.Duration
	// AppCall is the per-call overhead of the mTCP socket API
	// (mtcp_read/mtcp_write), much cheaper than a syscall.
	AppCall time.Duration
	// ConnSetup is per-connection setup/teardown extra cost.
	ConnSetup time.Duration
	L3Miss    time.Duration
}

// DefaultMTCP is the calibrated mTCP model.
func DefaultMTCP() MTCP {
	return MTCP{
		PollRound:       500 * time.Nanosecond,
		ProtoRx:         330 * time.Nanosecond,
		ProtoTx:         280 * time.Nanosecond,
		CopyPerByte:     0.25,
		QueueOp:         60 * time.Nanosecond,
		HandoffInterval: 23 * time.Microsecond,
		AppCall:         90 * time.Nanosecond,
		ConnSetup:       900 * time.Nanosecond,
		L3Miss:          86 * time.Nanosecond,
	}
}

// MissesPerMsg models Intel DDIO residency as a function of concurrent
// connection count on one server (Fig. 4): with up to ~10k connections
// all dataplane state fits in L3 and DMA transfers hit cache (≈1.4 misses
// per message); at 250k connections the TCP connection state dominates the
// working set and the workload averages ≈25 misses per message. We
// interpolate log-linearly between the two measured anchors.
func MissesPerMsg(conns int) float64 {
	const (
		fitConns = 10_000.0
		fitMiss  = 1.4
		maxConns = 250_000.0
		maxMiss  = 25.0
		logFit   = 4.0     // log10(10k)
		logMax   = 5.39794 // log10(250k)
	)
	c := float64(conns)
	if c <= fitConns {
		return fitMiss
	}
	if c >= maxConns {
		// Keep growing gently past the last anchor.
		return maxMiss * (1 + (c-maxConns)/maxConns*0.2)
	}
	lg := log10(c)
	frac := (lg - logFit) / (logMax - logFit)
	return fitMiss + frac*(maxMiss-fitMiss)
}

// log10 avoids importing math for one call site.
func log10(x float64) float64 {
	// Newton on ln, seeded by bit trickery, is overkill: use the series
	// via math is cleaner — but keep dependencies minimal and precision
	// adequate with a simple change-of-base through frexp-style loop.
	lg := 0.0
	for x >= 10 {
		x /= 10
		lg++
	}
	for x < 1 {
		x *= 10
		lg--
	}
	// x in [1,10): 3rd-order interpolation of log10 via ln approximation.
	// ln(x) with atanh series: ln(x) = 2*artanh((x-1)/(x+1)).
	t := (x - 1) / (x + 1)
	t2 := t * t
	ln := 2 * t * (1 + t2/3 + t2*t2/5 + t2*t2*t2/7)
	return lg + ln/2.302585092994046
}
