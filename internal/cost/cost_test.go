package cost

import (
	"testing"
	"time"
)

func TestMissesPerMsgAnchors(t *testing.T) {
	// The paper's two measured anchors (§5.4): ~1.4 misses/msg up to
	// 10k connections (DDIO keeps state in L3), ~25 at 250k.
	if m := MissesPerMsg(100); m != 1.4 {
		t.Fatalf("misses(100) = %v, want 1.4", m)
	}
	if m := MissesPerMsg(10_000); m != 1.4 {
		t.Fatalf("misses(10k) = %v, want 1.4", m)
	}
	if m := MissesPerMsg(250_000); m < 24 || m > 26 {
		t.Fatalf("misses(250k) = %v, want ~25", m)
	}
	// Monotone in between.
	prev := 0.0
	for _, c := range []int{1000, 20_000, 50_000, 100_000, 200_000, 250_000} {
		m := MissesPerMsg(c)
		if m < prev {
			t.Fatalf("misses not monotone at %d: %v < %v", c, m, prev)
		}
		prev = m
	}
}

func TestPerByte(t *testing.T) {
	p := PerByte(0.5)
	if p.Cost(1000) != 500*time.Nanosecond {
		t.Fatalf("cost = %v", p.Cost(1000))
	}
	if p.Cost(0) != 0 || p.Cost(-5) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestDefaultsOrdering(t *testing.T) {
	ix := DefaultIX()
	lx := DefaultLinux()
	mt := DefaultMTCP()
	// The architectural cost ordering behind the paper's results.
	if ix.ProtoRx >= mt.ProtoRx || mt.ProtoRx >= lx.SoftIRQPerPkt {
		t.Fatal("per-packet cost ordering violated: IX < mTCP < Linux")
	}
	if ix.Syscall >= lx.SyscallEntry {
		t.Fatal("batched syscalls must be cheaper than kernel crossings")
	}
	if mt.HandoffInterval < 10*time.Microsecond {
		t.Fatal("mTCP handoff should dominate its latency")
	}
}
