package tcp

import (
	"testing"
	"time"

	"ix/internal/mem"
	"ix/internal/timerwheel"
	"ix/internal/wire"
)

// testNet wires two stacks back to back with a controllable virtual
// clock, per-direction loss/reorder injection, and event recording.
type testNet struct {
	t     *testing.T
	now   int64
	a, b  *side
	queue []delivery
	// drop, when set, discards matching segments (loss injection).
	drop func(from *side, hdr *wire.TCPHeader, payload []byte) bool
}

type delivery struct {
	to       *side
	src, dst wire.IPv4
	seg      []byte
}

type side struct {
	name  string
	ip    wire.IPv4
	stack *Stack
	wheel *timerwheel.Wheel
	pool  *mem.MbufPool
	net   *testNet

	// Recorded events.
	accepted  []*Conn
	connected map[*Conn]bool
	recvd     map[*Conn][]byte
	sent      map[*Conn]int
	released  map[*Conn]int
	dead      map[*Conn]Reason
	eof       map[*Conn]bool

	// onRelease, when set, observes tx_sent release reports.
	onRelease func(c *Conn, released int)
}

func (s *side) Knock(l *Listener, key wire.FlowKey) bool { return true }
func (s *side) Accepted(c *Conn)                         { s.accepted = append(s.accepted, c) }
func (s *side) Connected(c *Conn, ok bool)               { s.connected[c] = ok }
func (s *side) Recv(c *Conn, buf *mem.Mbuf, data []byte) {
	s.recvd[c] = append(s.recvd[c], data...)
}
func (s *side) Sent(c *Conn, acked, released int) {
	s.sent[c] += acked
	s.released[c] += released
	if s.onRelease != nil && released > 0 {
		s.onRelease(c, released)
	}
}
func (s *side) RemoteClosed(c *Conn) { s.eof[c] = true }
func (s *side) Dead(c *Conn, reason Reason) {
	s.dead[c] = reason
}

func newTestNet(t *testing.T, cfgMod func(*Config)) *testNet {
	n := &testNet{t: t}
	mk := func(name string, ip wire.IPv4) *side {
		s := &side{
			name: name, ip: ip, net: n,
			connected: map[*Conn]bool{},
			recvd:     map[*Conn][]byte{},
			sent:      map[*Conn]int{},
			released:  map[*Conn]int{},
			dead:      map[*Conn]Reason{},
			eof:       map[*Conn]bool{},
		}
		s.wheel = timerwheel.New(timerwheel.DefaultTick, 0)
		s.pool = mem.NewMbufPool(mem.NewRegion(4), 0)
		cfg := Config{
			LocalIP: ip,
			Now:     func() int64 { return n.now },
			Wheel:   s.wheel,
			Output: func(c *Conn, hdr *wire.TCPHeader, payload [][]byte) {
				nbytes := 0
				for _, p := range payload {
					nbytes += len(p)
				}
				seg := make([]byte, hdr.Len()+nbytes)
				hdr.Marshal(seg)
				off := hdr.Len()
				for _, p := range payload {
					off += copy(seg[off:], p)
				}
				peer := n.a
				if s == n.a {
					peer = n.b
				}
				wire.SetTCPChecksum(s.ip, peer.ip, seg)
				if n.drop != nil && n.drop(s, hdr, flatten(payload)) {
					return
				}
				n.queue = append(n.queue, delivery{to: peer, src: s.ip, dst: peer.ip, seg: seg})
			},
			Events: s,
			Seed:   uint64(len(name)) + 7,
		}
		if cfgMod != nil {
			cfgMod(&cfg)
		}
		s.stack = NewStack(cfg)
		return s
	}
	n.a = mk("a", wire.Addr4(10, 0, 0, 1))
	n.b = mk("b", wire.Addr4(10, 0, 0, 2))
	return n
}

func flatten(p [][]byte) []byte {
	var out []byte
	for _, b := range p {
		out = append(out, b...)
	}
	return out
}

// step delivers all queued segments (and any they generate) and flushes
// pending ACKs until quiescent.
func (n *testNet) step() {
	for i := 0; i < 100; i++ {
		q := n.queue
		n.queue = nil
		for _, d := range q {
			buf := d.to.pool.Alloc()
			buf.SetData(d.seg) // hold segment bytes for zero-copy views
			d.to.stack.Input(d.src, d.dst, buf.Bytes(), buf)
			buf.Unref()
		}
		n.a.stack.Flush()
		n.b.stack.Flush()
		if len(n.queue) == 0 {
			return
		}
	}
	n.t.Fatal("network did not quiesce")
}

// advance moves the clock and runs timers.
func (n *testNet) advance(d time.Duration) {
	n.now += int64(d)
	n.a.wheel.Advance(n.now)
	n.b.wheel.Advance(n.now)
	n.step()
}

// open establishes a connection from a to b:port and returns both ends.
func (n *testNet) open(t *testing.T, port uint16) (client, server *Conn) {
	t.Helper()
	if _, err := n.b.stack.Listen(port, nil); err != nil {
		t.Fatal(err)
	}
	c, err := n.a.stack.Connect(n.b.ip, port, 0xc0de)
	if err != nil {
		t.Fatal(err)
	}
	n.step()
	if !n.a.connected[c] {
		t.Fatal("client not connected")
	}
	if len(n.b.accepted) == 0 {
		t.Fatal("server did not accept")
	}
	return c, n.b.accepted[len(n.b.accepted)-1]
}

func TestHandshake(t *testing.T) {
	n := newTestNet(t, nil)
	c, s := n.open(t, 80)
	if c.State() != StateEstablished || s.State() != StateEstablished {
		t.Fatalf("states: %v / %v", c.State(), s.State())
	}
	if c.Key().Reverse() != s.Key() {
		t.Fatalf("keys inconsistent: %v vs %v", c.Key(), s.Key())
	}
	if s.Cookie != 0 {
		// Server cookie assigned by accept; zero until then.
		t.Fatalf("unexpected server cookie %v", s.Cookie)
	}
}

func TestDataTransferBothWays(t *testing.T) {
	n := newTestNet(t, nil)
	c, s := n.open(t, 80)
	if got := c.Send([]byte("hello from a")); got != 12 {
		t.Fatalf("send accepted %d", got)
	}
	n.step()
	if string(n.b.recvd[s]) != "hello from a" {
		t.Fatalf("b received %q", n.b.recvd[s])
	}
	s.Send([]byte("hi back"))
	n.step()
	if string(n.a.recvd[c]) != "hi back" {
		t.Fatalf("a received %q", n.a.recvd[c])
	}
	// Acks flowed: sent events report acked bytes.
	if n.a.sent[c] != 12 || n.b.sent[s] != 7 {
		t.Fatalf("sent events: a=%d b=%d", n.a.sent[c], n.b.sent[s])
	}
}

func TestLargeTransferSegmentation(t *testing.T) {
	n := newTestNet(t, nil)
	c, s := n.open(t, 80)
	msg := make([]byte, 100_000)
	for i := range msg {
		msg[i] = byte(i)
	}
	sent := 0
	for sent < len(msg) {
		k := c.Send(msg[sent:])
		sent += k
		n.step()
		if k == 0 {
			n.advance(time.Millisecond)
		}
	}
	n.step()
	got := n.b.recvd[s]
	if len(got) != len(msg) {
		t.Fatalf("received %d of %d bytes", len(got), len(msg))
	}
	for i := range got {
		if got[i] != msg[i] {
			t.Fatalf("corruption at %d", i)
		}
	}
	if n.a.stack.Retransmits != 0 {
		t.Fatalf("unexpected retransmits: %d", n.a.stack.Retransmits)
	}
}

func TestSendvScatterGather(t *testing.T) {
	n := newTestNet(t, nil)
	c, s := n.open(t, 80)
	k := c.Sendv([][]byte{[]byte("one,"), []byte("two,"), []byte("three")})
	if k != 13 {
		t.Fatalf("sendv accepted %d", k)
	}
	n.step()
	if string(n.b.recvd[s]) != "one,two,three" {
		t.Fatalf("received %q", n.b.recvd[s])
	}
}

func TestWindowTrimAndReopen(t *testing.T) {
	n := newTestNet(t, func(c *Config) { c.RcvWnd = 4096 })
	c, s := n.open(t, 80)
	big := make([]byte, 64<<10)
	acc := c.Send(big)
	if acc >= len(big) {
		t.Fatalf("small peer window accepted everything (%d)", acc)
	}
	n.step()
	// The receiver holds data (no RecvDone): window closes at 4 KB.
	if len(n.b.recvd[s]) != 4096 {
		t.Fatalf("receiver got %d, want 4096 (window)", len(n.b.recvd[s]))
	}
	more := c.Send(big[acc:])
	if more != 0 {
		t.Fatalf("send beyond closed window accepted %d", more)
	}
	// recv_done opens the window; the window-update ACK lets a resume.
	s.RecvDone(4096)
	n.step()
	if c.usableWindow() == 0 {
		t.Fatal("window did not reopen after recv_done")
	}
	again := c.Send(big[acc:])
	if again == 0 {
		t.Fatal("send after window reopen still trimmed to zero")
	}
}

func TestRetransmitOnLoss(t *testing.T) {
	n := newTestNet(t, nil)
	c, s := n.open(t, 80)
	dropped := false
	n.drop = func(from *side, hdr *wire.TCPHeader, payload []byte) bool {
		if from == n.a && len(payload) > 0 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	c.Send([]byte("lost once"))
	n.step()
	if len(n.b.recvd[s]) != 0 {
		t.Fatal("segment should have been dropped")
	}
	// RTO fires (initial RTO 1ms, backoff-safe margin).
	n.advance(5 * time.Millisecond)
	if string(n.b.recvd[s]) != "lost once" {
		t.Fatalf("retransmission did not deliver: %q", n.b.recvd[s])
	}
	if n.a.stack.Retransmits == 0 {
		t.Fatal("retransmit not counted")
	}
}

func TestFastRetransmit(t *testing.T) {
	n := newTestNet(t, nil)
	c, s := n.open(t, 80)
	// Warm the RTT estimator so RTO != initial.
	c.Send([]byte("warm"))
	n.step()
	// Drop the first data segment of a burst; later ones arrive and
	// generate dup ACKs.
	first := true
	n.drop = func(from *side, hdr *wire.TCPHeader, payload []byte) bool {
		if from == n.a && len(payload) == 1000 && first {
			first = false
			return true
		}
		return false
	}
	chunk := make([]byte, 1000)
	for i := 0; i < 5; i++ {
		c.Sendv([][]byte{chunk})
	}
	n.step()
	if n.a.stack.FastRetransmits != 1 {
		t.Fatalf("fast retransmits = %d, want 1", n.a.stack.FastRetransmits)
	}
	if len(n.b.recvd[s]) != 4+5000 {
		t.Fatalf("receiver got %d bytes, want 5004", len(n.b.recvd[s]))
	}
}

// TestBurstLossRecoversWithoutSerialRTOs: a contiguous burst of lost
// segments recovers within ONE retransmission timeout — each partial
// ACK during recovery retransmits the next hole immediately (NewReno,
// RFC 6582). Without that, k lost segments cost k serial RTOs with
// exponential backoff (1+2+4+... ms here), and this test's single
// 1.5 ms advance could not complete the transfer.
func TestBurstLossRecoversWithoutSerialRTOs(t *testing.T) {
	n := newTestNet(t, nil)
	c, s := n.open(t, 80)
	const segs, segLen = 8, 500
	base := c.iss + 1
	seen := map[uint32]bool{}
	n.drop = func(from *side, hdr *wire.TCPHeader, payload []byte) bool {
		if from != n.a || len(payload) == 0 {
			return false
		}
		idx := int(hdr.Seq-base) / segLen
		if !seen[hdr.Seq] {
			seen[hdr.Seq] = true
			// First transmission of segments 2..6 is lost (a 5-segment
			// hole); 0, 1 and 7 get through — only one dup ACK, so fast
			// retransmit cannot mask the timeout path.
			return idx >= 2 && idx <= 6
		}
		return false
	}
	chunk := make([]byte, segLen)
	for i := 0; i < segs; i++ {
		c.Sendv([][]byte{chunk})
	}
	n.step()
	if got := len(n.b.recvd[s]); got != 2*segLen {
		t.Fatalf("pre-RTO delivery = %d bytes, want %d", got, 2*segLen)
	}
	// One RTO (initial 1 ms) plus margin — NOT enough for serial
	// timeouts with backoff.
	n.advance(1500 * time.Microsecond)
	if got := len(n.b.recvd[s]); got != segs*segLen {
		t.Fatalf("received %d bytes within one RTO, want %d (burst holes "+
			"must retransmit on partial ACKs, not serial RTOs)", got, segs*segLen)
	}
	if n.a.sent[c] != segs*segLen {
		t.Fatalf("acked %d, want %d", n.a.sent[c], segs*segLen)
	}
	if c.inRecovery {
		t.Fatal("connection still in recovery after full ACK")
	}
	// Recovery exited cleanly: post-recovery traffic must not trigger
	// spurious retransmissions.
	rexmit := n.a.stack.Retransmits
	c.Send([]byte("post-recovery"))
	n.step()
	if n.a.stack.Retransmits != rexmit {
		t.Fatalf("clean post-recovery send retransmitted (%d -> %d)",
			rexmit, n.a.stack.Retransmits)
	}
	if got := string(n.b.recvd[s][segs*segLen:]); got != "post-recovery" {
		t.Fatalf("post-recovery delivery %q", got)
	}
}

func TestOutOfOrderReassembly(t *testing.T) {
	n := newTestNet(t, nil)
	c, s := n.open(t, 80)
	// Hold back the first segment; deliver it after the rest.
	var held []delivery
	n.drop = func(from *side, hdr *wire.TCPHeader, payload []byte) bool {
		return false
	}
	c.Sendv([][]byte{make([]byte, 1000)})
	// Steal the queued delivery.
	held = append(held, n.queue...)
	n.queue = nil
	c.Sendv([][]byte{[]byte("tail")})
	n.step()
	if len(n.b.recvd[s]) != 0 {
		t.Fatal("out-of-order data delivered in order?!")
	}
	// Now release the held first segment.
	n.queue = append(n.queue, held...)
	n.step()
	if len(n.b.recvd[s]) != 1004 {
		t.Fatalf("after reassembly got %d bytes, want 1004", len(n.b.recvd[s]))
	}
}

func TestAbortRST(t *testing.T) {
	n := newTestNet(t, nil)
	c, s := n.open(t, 80)
	c.Abort()
	n.step()
	if n.b.dead[s] != ReasonReset {
		t.Fatalf("server dead reason = %v, want reset", n.b.dead[s])
	}
	if n.a.dead[c] != ReasonClosed {
		t.Fatalf("client dead reason = %v, want closed", n.a.dead[c])
	}
	if n.a.stack.ConnCount() != 0 || n.b.stack.ConnCount() != 0 {
		t.Fatal("connections leaked")
	}
}

func TestOrderlyClose(t *testing.T) {
	n := newTestNet(t, func(c *Config) { c.TimeWait = 100 * time.Microsecond })
	c, s := n.open(t, 80)
	c.Close()
	n.step()
	if !n.b.eof[s] {
		t.Fatal("server did not see remote close")
	}
	if s.State() != StateCloseWait {
		t.Fatalf("server state = %v, want CloseWait", s.State())
	}
	s.Close()
	n.step()
	if s.State() != StateClosed && n.b.dead[s] != ReasonClosed {
		t.Fatalf("server not closed: %v", s.State())
	}
	if c.State() != StateTimeWait {
		t.Fatalf("client state = %v, want TimeWait", c.State())
	}
	n.advance(time.Millisecond)
	if n.a.stack.ConnCount() != 0 {
		t.Fatal("TIME_WAIT did not expire")
	}
}

func TestConnectRefused(t *testing.T) {
	n := newTestNet(t, nil)
	c, err := n.a.stack.Connect(n.b.ip, 9999, 0) // nobody listening
	if err != nil {
		t.Fatal(err)
	}
	n.step()
	if ok, seen := n.a.connected[c]; !seen || ok {
		t.Fatalf("connected event: ok=%v seen=%v, want refused", ok, seen)
	}
}

func TestChecksumValidation(t *testing.T) {
	n := newTestNet(t, nil)
	_, s := n.open(t, 80)
	// Inject a corrupted segment directly.
	hdr := wire.TCPHeader{SrcPort: 12345, DstPort: 80, Seq: 1, Flags: wire.TCPAck, WScale: -1}
	seg := make([]byte, hdr.Len())
	hdr.Marshal(seg)
	wire.SetTCPChecksum(n.a.ip, n.b.ip, seg)
	seg[4] ^= 0xff // corrupt seq after checksumming
	before := n.b.stack.BadChecksums
	n.b.stack.Input(n.a.ip, n.b.ip, seg, nil)
	if n.b.stack.BadChecksums != before+1 {
		t.Fatal("corrupted segment not counted")
	}
	_ = s
}

func TestPortProbing(t *testing.T) {
	probed := 0
	n := newTestNet(t, nil)
	// Recreate a's stack with a PortOK that accepts only multiples of 4
	// (stand-in for "hashes to my queue").
	n.a.stack = NewStack(Config{
		LocalIP: n.a.ip,
		Now:     func() int64 { return n.now },
		Wheel:   n.a.wheel,
		Output:  func(c *Conn, hdr *wire.TCPHeader, payload [][]byte) {},
		Events:  n.a,
		PortOK: func(p uint16, dst wire.IPv4, dport uint16) bool {
			probed++
			return p%4 == 0
		},
	})
	c, err := n.a.stack.Connect(n.b.ip, 80, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.LocalPort()%4 != 0 {
		t.Fatalf("port %d does not satisfy the probe", c.LocalPort())
	}
	if probed == 0 {
		t.Fatal("probe not consulted")
	}
}

func TestEphemeralPortsDistinct(t *testing.T) {
	n := newTestNet(t, nil)
	seen := map[uint16]bool{}
	for i := 0; i < 100; i++ {
		c, err := n.a.stack.Connect(n.b.ip, 80, 0)
		if err != nil {
			t.Fatal(err)
		}
		if seen[c.LocalPort()] {
			t.Fatalf("port %d reused while in use", c.LocalPort())
		}
		seen[c.LocalPort()] = true
	}
}

func TestMigration(t *testing.T) {
	n := newTestNet(t, nil)
	c, s := n.open(t, 80)
	// Migrate the server-side connection to a fresh stack on the same
	// host (elastic thread rebalance) and keep exchanging data.
	s2side := &side{
		name: "b2", ip: n.b.ip, net: n,
		connected: map[*Conn]bool{}, recvd: map[*Conn][]byte{},
		sent: map[*Conn]int{}, dead: map[*Conn]Reason{}, eof: map[*Conn]bool{},
	}
	s2side.wheel = timerwheel.New(timerwheel.DefaultTick, 0)
	dst := NewStack(Config{
		LocalIP: n.b.ip,
		Now:     func() int64 { return n.now },
		Wheel:   s2side.wheel,
		Output: func(cc *Conn, hdr *wire.TCPHeader, payload [][]byte) {
			// Reuse b's output path by temporarily routing through the
			// original side's config: emit to a.
			nb := 0
			for _, p := range payload {
				nb += len(p)
			}
			seg := make([]byte, hdr.Len()+nb)
			hdr.Marshal(seg)
			off := hdr.Len()
			for _, p := range payload {
				off += copy(seg[off:], p)
			}
			wire.SetTCPChecksum(n.b.ip, n.a.ip, seg)
			n.queue = append(n.queue, delivery{to: n.a, src: n.b.ip, dst: n.a.ip, seg: seg})
		},
		Events: s2side,
	})
	n.b.stack.Migrate(s, dst)
	if n.b.stack.ConnCount() != 0 || dst.ConnCount() != 1 {
		t.Fatalf("migration counts: src=%d dst=%d", n.b.stack.ConnCount(), dst.ConnCount())
	}
	// Traffic must now be processed by dst. Route a→b deliveries there.
	c.Send([]byte("post-migration"))
	for _, d := range n.queue {
		dst.Input(d.src, d.dst, d.seg, nil)
	}
	n.queue = nil
	dst.Flush()
	if string(s2side.recvd[s]) != "post-migration" {
		t.Fatalf("migrated conn received %q", s2side.recvd[s])
	}
}

func TestDelayedAck(t *testing.T) {
	n := newTestNet(t, func(c *Config) { c.DelAck = 100 * time.Microsecond })
	c, s := n.open(t, 80)
	_ = s
	segsBefore := n.b.stack.SegsOut
	c.Send([]byte("x"))
	n.step()
	if n.b.stack.SegsOut != segsBefore {
		t.Fatalf("pure ACK sent immediately despite delack (out=%d)", n.b.stack.SegsOut-segsBefore)
	}
	// After the delack timeout, the ACK goes out.
	n.advance(200 * time.Microsecond)
	if n.b.stack.SegsOut != segsBefore+1 {
		t.Fatalf("delayed ACK not sent: %d", n.b.stack.SegsOut-segsBefore)
	}
	// Second-segment rule: two quick segments force an immediate ACK.
	segsBefore = n.b.stack.SegsOut
	c.Send([]byte("y"))
	n.step()
	c.Send([]byte("z"))
	n.step()
	if n.b.stack.SegsOut != segsBefore+1 {
		t.Fatalf("2-segment ACK rule: sent %d pure acks, want 1", n.b.stack.SegsOut-segsBefore)
	}
}

func TestSynBacklogLimit(t *testing.T) {
	n := newTestNet(t, func(c *Config) { c.SynBacklog = 2 })
	if _, err := n.b.stack.Listen(80, nil); err != nil {
		t.Fatal(err)
	}
	// Inject 3 SYNs from different ports without completing handshakes.
	for i := 0; i < 3; i++ {
		hdr := wire.TCPHeader{SrcPort: uint16(30000 + i), DstPort: 80, Seq: 100, Flags: wire.TCPSyn, Window: 1000, WScale: -1, MSS: 1460}
		seg := make([]byte, hdr.Len())
		hdr.Marshal(seg)
		wire.SetTCPChecksum(n.a.ip, n.b.ip, seg)
		n.b.stack.Input(n.a.ip, n.b.ip, seg, nil)
	}
	if n.b.stack.ConnCount() != 2 {
		t.Fatalf("embryonic conns = %d, want 2 (backlog)", n.b.stack.ConnCount())
	}
}

func TestRTTEstimation(t *testing.T) {
	n := newTestNet(t, nil)
	c, _ := n.open(t, 80)
	// Deliver the ack 300µs after send: srtt should move toward 300µs.
	c.Send([]byte("timed"))
	n.advance(300 * time.Microsecond)
	if c.srtt == 0 {
		t.Fatal("no RTT sample taken")
	}
	if c.srtt < 200*time.Microsecond || c.srtt > 400*time.Microsecond {
		t.Fatalf("srtt = %v, want ~300µs", c.srtt)
	}
	if c.rto < c.stack.cfg.MinRTO {
		t.Fatalf("rto %v below floor", c.rto)
	}
}

func TestConnectionTimeout(t *testing.T) {
	n := newTestNet(t, func(c *Config) { c.MaxRexmits = 2 })
	c, s := n.open(t, 80)
	_ = s
	// Black-hole everything from a.
	n.drop = func(from *side, hdr *wire.TCPHeader, payload []byte) bool { return from == n.a }
	c.Send([]byte("into the void"))
	for i := 0; i < 40; i++ {
		n.advance(5 * time.Millisecond)
	}
	reason, died := n.a.dead[c]
	if !died || reason != ReasonTimeout {
		t.Fatalf("dead = %v (died=%v), want timeout", reason, died)
	}
}

// TestBatchedSynAdmission: SYNs arriving within one processing batch are
// admitted immediately (embryonic state, RTO armed) but their SYN-ACKs
// coalesce into the batch-boundary Flush, leaving as one group — no
// per-SYN emission in the middle of protocol processing.
func TestBatchedSynAdmission(t *testing.T) {
	n := newTestNet(t, nil)
	if _, err := n.b.stack.Listen(80, nil); err != nil {
		t.Fatal(err)
	}
	// Three active opens queue three SYNs.
	for i := 0; i < 3; i++ {
		if _, err := n.a.stack.Connect(n.b.ip, 80, 0); err != nil {
			t.Fatal(err)
		}
	}
	syns := n.queue
	n.queue = nil
	if len(syns) != 3 {
		t.Fatalf("expected 3 SYNs in flight, got %d", len(syns))
	}
	// Deliver the batch without flushing: admission happens, replies wait.
	for _, d := range syns {
		buf := d.to.pool.Alloc()
		buf.SetData(d.seg)
		d.to.stack.Input(d.src, d.dst, buf.Bytes(), buf)
		buf.Unref()
	}
	if got := n.b.stack.SynsAdmitted; got != 3 {
		t.Fatalf("SynsAdmitted = %d, want 3", got)
	}
	if len(n.queue) != 0 {
		t.Fatalf("%d frames emitted before Flush; SYN-ACKs must coalesce at the batch boundary", len(n.queue))
	}
	n.b.stack.Flush()
	if len(n.queue) != 3 {
		t.Fatalf("Flush emitted %d frames, want 3 SYN-ACKs", len(n.queue))
	}
	for _, d := range n.queue {
		var hdr wire.TCPHeader
		if _, err := hdr.Unmarshal(d.seg); err != nil {
			t.Fatal(err)
		}
		if hdr.Flags&(wire.TCPSyn|wire.TCPAck) != wire.TCPSyn|wire.TCPAck {
			t.Fatalf("expected SYN|ACK, got flags %#x", hdr.Flags)
		}
	}
	// The handshakes still complete.
	n.step()
	if len(n.b.accepted) != 3 {
		t.Fatalf("accepted %d connections, want 3", len(n.b.accepted))
	}
}

// TestBatchedSynAdmissionAbortedBeforeFlush: an admitted SYN whose
// connection dies within the same batch (RST) must not emit a SYN-ACK at
// Flush.
func TestBatchedSynAdmissionAbortedBeforeFlush(t *testing.T) {
	n := newTestNet(t, nil)
	if _, err := n.b.stack.Listen(80, nil); err != nil {
		t.Fatal(err)
	}
	c, err := n.a.stack.Connect(n.b.ip, 80, 0)
	if err != nil {
		t.Fatal(err)
	}
	syn := n.queue
	n.queue = nil
	// The client gives up before the SYN arrives: RST follows the SYN
	// into the same delivery batch.
	c.Abort()
	rst := n.queue
	n.queue = nil
	for _, d := range append(syn, rst...) {
		buf := d.to.pool.Alloc()
		buf.SetData(d.seg)
		d.to.stack.Input(d.src, d.dst, buf.Bytes(), buf)
		buf.Unref()
	}
	n.b.stack.Flush()
	if len(n.queue) != 0 {
		t.Fatalf("Flush emitted %d frames for a dead embryonic connection, want 0", len(n.queue))
	}
	if got := n.b.stack.ConnCount(); got != 0 {
		t.Fatalf("server holds %d connections, want 0", got)
	}
}
