package tcp

import (
	"bytes"
	"fmt"
	"testing"

	"ix/internal/mem"
	"ix/internal/timerwheel"
	"ix/internal/wire"
)

// txTestConn builds a stack with a hand-established connection, the
// standard fixture of the zero-copy tests.
func txTestConn(t *testing.T, out Output) (*Stack, *Conn, *quietEvents, *int64) {
	t.Helper()
	ev := &quietEvents{}
	var now int64
	wheel := timerwheel.New(timerwheel.DefaultTick, 0)
	if out == nil {
		out = func(c *Conn, hdr *wire.TCPHeader, payload [][]byte) {}
	}
	s := NewStack(Config{
		LocalIP: wire.Addr4(10, 0, 0, 1),
		Now:     func() int64 { return now },
		Wheel:   wheel,
		Output:  out,
		Events:  ev,
		Seed:    7,
	})
	c, err := s.Connect(wire.Addr4(10, 0, 0, 2), 80, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.state = StateEstablished
	c.sndUna = c.iss + 1
	c.sndNxt = c.sndUna
	c.sndWnd = 1 << 20
	c.cancelRTO()
	return s, c, ev, &now
}

// ackTo delivers a cumulative ACK for everything up to ack.
func ackTo(s *Stack, c *Conn, ack uint32) {
	var buf [64]byte
	hdr := wire.TCPHeader{
		SrcPort: c.key.DstPort, DstPort: c.key.SrcPort,
		Seq: c.rcvNxt, Ack: ack, Flags: wire.TCPAck,
		Window: 0xffff, WScale: -1,
	}
	seg := buf[:hdr.Len()]
	hdr.Marshal(seg)
	srcIP, dstIP := wire.Addr4(10, 0, 0, 2), wire.Addr4(10, 0, 0, 1)
	wire.SetTCPChecksum(srcIP, dstIP, seg)
	s.Input(srcIP, dstIP, seg, nil)
}

// TestTxStateInlineSteadyState: request-response traffic (one segment in
// flight at a time) must stay on the txState's inline array — no spill —
// and an idle connection must hold no txState at all.
func TestTxStateInlineSteadyState(t *testing.T) {
	s, c, _, _ := txTestConn(t, nil)
	if c.tx != nil {
		t.Fatal("fresh connection holds a txState before any transmit")
	}
	msg := make([]byte, 64)
	for i := 0; i < 100; i++ {
		c.Send(msg)
		if c.tx == nil {
			t.Fatal("in-flight segment without a txState")
		}
		if got := cap(c.tx.q); got != retransInline {
			t.Fatalf("iteration %d: steady-state send spilled (cap=%d, want inline %d)",
				i, got, retransInline)
		}
		if &c.tx.q[0] != &c.tx.inl[0] {
			t.Fatalf("iteration %d: queue no longer aliases the inline array", i)
		}
		ackTo(s, c, c.sndNxt)
		if c.tx != nil {
			t.Fatalf("iteration %d: drained queue kept its txState", i)
		}
	}
	if len(s.txFree) != 1 {
		t.Fatalf("pool holds %d states after one-at-a-time traffic, want 1", len(s.txFree))
	}
}

// TestTxStateSpillReleasedOnDrain is the red/green regression for the
// retained-spill leak: a burst that grows the queue past the inline
// capacity used to pin that backing for the connection's lifetime. The
// footprint must return to the idle baseline once the burst drains.
func TestTxStateSpillReleasedOnDrain(t *testing.T) {
	s, c, _, _ := txTestConn(t, nil)

	// Idle baseline: one send/ack cycle, fully drained.
	msg := make([]byte, 64)
	c.Send(msg)
	ackTo(s, c, c.sndNxt)
	base := s.Footprint()
	if c.tx != nil {
		t.Fatal("baseline connection still holds a txState")
	}

	// Burst: pipeline well past the inline capacity without an ACK.
	const burst = 40
	for i := 0; i < burst; i++ {
		c.Send(msg)
	}
	if c.tx == nil || cap(c.tx.q) <= retransInline {
		t.Fatalf("burst of %d segments did not spill (cap=%v)", burst, c.tx != nil)
	}
	spilled := s.Footprint()
	if spilled.Bytes <= base.Bytes {
		t.Fatal("footprint does not see the spilled backing")
	}

	// Drain: cumulative ACK for the whole burst.
	ackTo(s, c, c.sndNxt)
	if c.tx != nil {
		t.Fatal("drained queue kept its txState (spill backing retained)")
	}
	if got := s.Footprint(); got.Bytes != base.Bytes {
		t.Fatalf("footprint after recovery = %d bytes, want idle baseline %d (leak: %+d)",
			got.Bytes, base.Bytes, got.Bytes-base.Bytes)
	}
	// The pooled state must come back clean: no stale payload references
	// in the inline array, queue re-aliased to it.
	st := s.getTxState()
	if len(st.q) != 0 || cap(st.q) != retransInline || st.head != 0 {
		t.Fatalf("recycled txState not reset: len=%d cap=%d head=%d", len(st.q), cap(st.q), st.head)
	}
	for i := range st.inl {
		if st.inl[i].frag0 != nil || st.inl[i].extra != nil {
			t.Fatalf("recycled txState inline[%d] still references payload", i)
		}
	}
}

// TestTxStateRTOStormOrdering drives the inline→spill→release transition
// under burst loss with an RTO storm: a pipelined window is never ACKed,
// the RTO fires repeatedly (backoff), and recovery retransmits must
// carry byte-identical payloads in sequence order — the zero-copy
// references survive the spill, the trim-time compaction and the pooled
// release. Finally the cumulative ACK drains everything and the arena
// reclaims in full.
func TestTxStateRTOStormOrdering(t *testing.T) {
	type emission struct {
		seq  uint32
		data []byte
	}
	var sent []emission
	out := func(c *Conn, hdr *wire.TCPHeader, payload [][]byte) {
		var buf []byte
		for _, p := range payload {
			buf = append(buf, p...)
		}
		sent = append(sent, emission{seq: hdr.Seq, data: buf})
	}
	s, c, ev, now := txTestConn(t, out)

	pool := mem.NewTxChunkPool(mem.NewRegion(4), 0)
	var arena mem.TxArena
	arena.Init(pool)

	// Distinct payload per segment so misordered retransmits are visible.
	const segs = 24
	first := map[uint32][]byte{}
	for i := 0; i < segs; i++ {
		msg := bytes.Repeat([]byte{byte(i + 1)}, 64)
		v := arena.Append(msg)
		if got := c.Send(v); got != len(v) {
			t.Fatalf("window closed at segment %d", i)
		}
		e := sent[len(sent)-1]
		first[e.seq] = append([]byte(nil), e.data...)
	}
	if cap(c.tx.q) <= retransInline {
		t.Fatal("pipelined burst did not spill")
	}

	// Storm: no ACKs arrive; fire the RTO through several backoff rounds.
	// Each firing retransmits the head segment (go-back-N recovery driven
	// by partial ACKs would follow; the storm exercises the head resend).
	firstLen := len(sent)
	for round := 0; round < 4; round++ {
		next, ok := s.cfg.Wheel.NextDeadline()
		if !ok {
			t.Fatalf("round %d: no RTO armed during storm", round)
		}
		*now = next
		s.cfg.Wheel.Advance(next)
		if c.state == StateClosed {
			t.Fatalf("round %d: storm killed the connection (MaxRexmits too low for test)", round)
		}
	}
	if len(sent) == firstLen {
		t.Fatal("RTO storm retransmitted nothing")
	}
	for _, e := range sent[firstLen:] {
		want, ok := first[e.seq]
		if !ok {
			t.Fatalf("retransmit of never-sent seq %d", e.seq)
		}
		if !bytes.Equal(want, e.data) {
			t.Fatalf("retransmit of seq %d carries different bytes (arena immutability violated)", e.seq)
		}
	}

	// Partial ACKs walk the recovery forward one hole at a time; each
	// must resend the next hole, in order.
	resendStart := len(sent)
	una := c.sndUna
	for i := 0; i < segs-1; i++ {
		ackTo(s, c, una+uint32((i+1)*64))
	}
	var prev uint32
	for i, e := range sent[resendStart:] {
		if i > 0 && !seqLT(prev, e.seq) {
			t.Fatalf("recovery resent out of order: seq %d after %d", e.seq, prev)
		}
		prev = e.seq
	}

	// Final cumulative ACK: queue drains, state releases, arena reclaims.
	ackTo(s, c, c.sndNxt)
	if c.tx != nil {
		t.Fatal("queue drained but txState retained")
	}
	arena.Release(ev.released)
	if arena.Live() != 0 || pool.InUse() != 0 {
		t.Fatalf("arena not reclaimed after drain: live=%d chunks=%d", arena.Live(), pool.InUse())
	}
	fp := s.Footprint()
	idle := fmt.Sprintf("%d conns / %d bytes", fp.Conns, fp.Bytes)
	if fp.Conns != 1 {
		t.Fatalf("unexpected population: %s", idle)
	}
}
