// Package tcp is a from-scratch TCP protocol engine playing the role lwIP
// played in IX (§4.2): RFC-style connection management (three-way
// handshake, sliding windows, retransmission with Jacobson RTT estimation
// and exponential backoff, fast retransmit, slow start and congestion
// avoidance, reassembly, FIN/RST teardown), restructured — as the paper
// describes — for per-core shared-nothing operation and fine-grained
// timer management.
//
// One Stack instance exists per elastic thread (or per kernel core for the
// baselines); instances share nothing. The engine is policy-free about
// execution: the embedding OS model supplies the clock, a timer wheel, an
// output function, and receives events through callbacks. Crucially for
// IX semantics:
//
//   - Sendv accepts only the bytes permitted by the congestion and peer
//     windows and transmits them immediately (the paper's "returns the
//     number of bytes that were accepted and sent by the TCP stack");
//     the application owns all send buffering policy.
//   - Received payload is delivered as zero-copy references into mbufs;
//     the receive window advances only when the application returns
//     buffers via RecvDone (the recv_done batched system call).
//   - Pure ACKs are emitted at Flush, called by the OS model at the end
//     of a processing batch — "the networking stack sends acknowledgments
//     to peers only as fast as the application can process them" (§3).
package tcp

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"ix/internal/mem"
	"ix/internal/timerwheel"
	"ix/internal/wire"
)

// State is a TCP connection state. The underlying type is a single
// byte so it packs into the Conn header's padding.
type State uint8

// TCP states.
const (
	StateClosed State = iota
	StateListen
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateClosing
	StateLastAck
	StateTimeWait
)

var stateNames = [...]string{
	"Closed", "Listen", "SynSent", "SynRcvd", "Established",
	"FinWait1", "FinWait2", "CloseWait", "Closing", "LastAck", "TimeWait",
}

func (s State) String() string { return stateNames[s] }

// Reason explains a dead event condition.
type Reason int

// Dead reasons (the `reason` parameter of the dead event in Table 1).
const (
	ReasonClosed  Reason = iota // orderly close completed
	ReasonReset                 // RST from peer
	ReasonTimeout               // retransmission limit exceeded
	ReasonRefused               // connect failed (RST to SYN)
)

func (r Reason) String() string {
	switch r {
	case ReasonClosed:
		return "closed"
	case ReasonReset:
		return "reset"
	case ReasonTimeout:
		return "timeout"
	case ReasonRefused:
		return "refused"
	}
	return "unknown"
}

// Events receives protocol events. The OS architecture model implements
// this to surface event conditions (Table 1) to applications.
type Events interface {
	// Knock reports a remotely initiated connection; returning false
	// rejects it with RST. (IX surfaces this as the knock event and the
	// app replies with an accept or close syscall.)
	Knock(l *Listener, key wire.FlowKey) bool
	// Accepted fires when a knocked connection completes the handshake.
	Accepted(c *Conn)
	// Connected fires when a locally initiated connection finishes
	// opening (outcome true) or fails (false).
	Connected(c *Conn, ok bool)
	// Recv delivers in-order payload as a zero-copy view into buf. The
	// receiver must Ref the buf if it holds it past the callback, and
	// the receive window stays closed until RecvDone returns the bytes.
	Recv(c *Conn, buf *mem.Mbuf, data []byte)
	// Sent fires when previously accepted bytes are acknowledged and/or
	// the usable send window grows (the sent event condition). released
	// is the payload-byte count of transmit segments this cumulative ACK
	// fully covered: the stack has dropped every reference to those
	// bytes, so the zero-copy sender may reclaim them (the ACK-driven
	// release hook of the tx arena). released never exceeds acked and
	// lags it while a segment is only partially acknowledged.
	Sent(c *Conn, acked, released int)
	// RemoteClosed fires when the peer sends FIN (half-close); the
	// usual response is to Close. libix maps it to an EOF-style event.
	RemoteClosed(c *Conn)
	// Dead fires when the connection terminates.
	Dead(c *Conn, reason Reason)
}

// Output is how the stack emits segments: the embedding layer prepends
// IP/Ethernet framing and hands the frame to its NIC queue. payload
// slices are owned by the application (zero-copy transmit) and must be
// treated as immutable. The payload slice-of-slices itself is a scratch
// the stack reuses across segments: Output must consume it before
// returning (all embeddings copy into a frame synchronously).
type Output func(c *Conn, hdr *wire.TCPHeader, payload [][]byte)

// Config parameterizes a Stack.
type Config struct {
	LocalIP wire.IPv4
	// Now returns virtual time in nanoseconds.
	Now func() int64
	// Wheel is the per-thread hierarchical timer wheel.
	Wheel *timerwheel.Wheel
	// Output emits an assembled segment.
	Output Output
	// Events receives protocol callbacks.
	Events Events
	// RcvWnd is the maximum receive window in bytes (default 256 KB).
	RcvWnd int
	// MSS is the maximum segment size (default wire.MSS).
	MSS int
	// PortOK, if set, filters ephemeral port choices; IX client threads
	// use it to probe ports whose RSS hash (for the return direction of
	// the flow to dst:dport) lands on this thread's queue (§4.4: "we
	// simply probe the ephemeral port range").
	PortOK func(port uint16, dst wire.IPv4, dport uint16) bool
	// Seed initializes the ISS generator (deterministic).
	Seed uint64
	// MinRTO bounds the retransmission timeout from below. The paper
	// supports timeouts as low as 16 µs for incast; default 200 µs.
	MinRTO time.Duration
	// MaxRexmits is the retransmission limit before the connection dies
	// with ReasonTimeout (default 8).
	MaxRexmits int
	// TimeWait is the 2MSL quiet period (scaled down for simulation;
	// default 1 ms). The echo benchmarks avoid it with RST closes, as
	// in the paper.
	TimeWait time.Duration
	// SynBacklog bounds embryonic connections per listener (default 1024).
	SynBacklog int
	// ExpectedConns presizes the connection table for the anticipated
	// steady-state flow population (0 = grow on demand). Presizing
	// avoids the rehash/doubling churn of ramping to a large population
	// and keeps growth deterministic across shard counts.
	ExpectedConns int
	// DelAck, when positive, enables delayed acknowledgments: a pure
	// ACK for in-order data is deferred up to this long (or until a
	// second segment arrives, per RFC 1122), giving responses a chance
	// to piggyback it. The Linux baseline uses this; IX does not need
	// it — its ACKs are already paced by application progress (§3).
	DelAck time.Duration
}

// Default window/limits.
const (
	defaultRcvWnd  = 256 << 10
	defaultMinRTO  = 200 * time.Microsecond
	defaultRexmits = 8
	defaultTW      = time.Millisecond
	defaultBacklog = 1024
	initialRTO     = time.Millisecond
	// initialCwnd is IW10 in segments.
	initialCwnd = 10
	// wscale used on both directions (fixed shift covering 256 KB).
	wndShift = 3
)

// Stack is a shared-nothing TCP instance: one per elastic thread.
type Stack struct {
	cfg   Config
	conns map[wire.FlowKey]*Conn
	// listeners is keyed by local port.
	listeners map[uint16]*Listener
	needsAck  []*Conn
	isn       uint64
	nextPort  uint16
	// sg is the scratch scatter-gather array segments are assembled in
	// before their fragment references move into the txSeg; reused so
	// steady-state transmit does not allocate.
	sg [][]byte
	// hdr is the scratch header the hot emit paths fill: passing a
	// stack-local header into the dynamic Output func forces it to the
	// heap, one hidden allocation per segment. Emissions never nest
	// (Output copies into a frame and returns), so one scratch is safe.
	hdr wire.TCPHeader
	// txFree recycles txState objects between connections with data in
	// flight (LIFO, so the hot states stay cache-warm).
	txFree []*txState

	// Stats.
	SegsIn, SegsOut uint64
	// OutOfOrderSegs counts data segments that arrived ahead of rcvNxt
	// and entered reassembly. On a lossless fabric this stays zero unless
	// something — e.g. a buggy flow migration — reorders a flow's frames,
	// so migration tests assert on it directly.
	OutOfOrderSegs    uint64
	Retransmits       uint64
	FastRetransmits   uint64
	BadChecksums      uint64
	DroppedNoListener uint64
	AcceptedConns     uint64
	ActiveOpens       uint64
	// SynsAdmitted counts passive opens admitted through the batched
	// SYN path (their SYN-ACKs coalesce into the batch-boundary Flush).
	SynsAdmitted uint64
}

// NewStack builds a stack from cfg, applying defaults.
func NewStack(cfg Config) *Stack {
	if cfg.Now == nil || cfg.Wheel == nil || cfg.Output == nil || cfg.Events == nil {
		panic("tcp: Config requires Now, Wheel, Output and Events")
	}
	if cfg.RcvWnd <= 0 {
		cfg.RcvWnd = defaultRcvWnd
	}
	if cfg.MSS <= 0 {
		cfg.MSS = wire.MSS
	}
	if cfg.MinRTO <= 0 {
		cfg.MinRTO = defaultMinRTO
	}
	if cfg.MaxRexmits <= 0 {
		cfg.MaxRexmits = defaultRexmits
	}
	if cfg.TimeWait <= 0 {
		cfg.TimeWait = defaultTW
	}
	if cfg.SynBacklog <= 0 {
		cfg.SynBacklog = defaultBacklog
	}
	return &Stack{
		cfg:       cfg,
		conns:     make(map[wire.FlowKey]*Conn, cfg.ExpectedConns),
		listeners: make(map[uint16]*Listener),
		isn:       cfg.Seed | 1,
		nextPort:  32768,
	}
}

// A Listener accepts connections on a local port.
type Listener struct {
	stack *Stack
	Port  uint16
	// Cookie is the opaque user value for knock events.
	Cookie    any
	embryonic int
}

// Listen starts accepting connections on port.
func (s *Stack) Listen(port uint16, cookie any) (*Listener, error) {
	if _, dup := s.listeners[port]; dup {
		return nil, fmt.Errorf("tcp: port %d already listening", port)
	}
	l := &Listener{stack: s, Port: port, Cookie: cookie}
	s.listeners[port] = l
	return l, nil
}

// CloseListener stops accepting new connections.
func (s *Stack) CloseListener(l *Listener) { delete(s.listeners, l.Port) }

// ConnCount returns the number of live (non-TimeWait) connections, which
// the cost model uses for the DDIO working-set term.
func (s *Stack) ConnCount() int { return len(s.conns) }

// nextISS returns a deterministic initial send sequence.
func (s *Stack) nextISS() uint32 {
	s.isn = s.isn*6364136223846793005 + 1442695040888963407
	return uint32(s.isn >> 32)
}

// txSeg is one unacknowledged transmitted segment. It references the
// sender's bytes in place — (chunk, offset, len) references into the
// libix tx arena, or views into a kernel sndbuf for the baselines —
// rather than owning a copy: the zero-copy contract is that those bytes
// stay immutable until the segment is fully acknowledged and the
// reference dropped. The common segment is at most two fragments (one
// contiguous arena run, or one run spanning a chunk boundary), stored
// inline so tracking a segment does not allocate; pathological
// scatter-gather shapes spill to extra.
type txSeg struct {
	seq    uint32
	length int // payload bytes (SYN/FIN consume sequence space separately)
	fin    bool
	frag0  []byte
	frag1  []byte
	extra  [][]byte
	sentAt int64
	rexmit bool
}

// setPayload captures the fragment references of one assembled segment.
func (ts *txSeg) setPayload(sg [][]byte) {
	switch len(sg) {
	case 0:
	case 1:
		ts.frag0 = sg[0]
	case 2:
		ts.frag0, ts.frag1 = sg[0], sg[1]
	default:
		ts.frag0, ts.frag1 = sg[0], sg[1]
		ts.extra = append([][]byte(nil), sg[2:]...)
	}
}

// appendPayload appends the segment's fragment references to sg.
func (ts *txSeg) appendPayload(sg [][]byte) [][]byte {
	if ts.frag0 != nil {
		sg = append(sg, ts.frag0)
	}
	if ts.frag1 != nil {
		sg = append(sg, ts.frag1)
	}
	return append(sg, ts.extra...)
}

// retransInline is the txState inline segment capacity: steady
// request-response traffic keeps at most a couple of segments in
// flight, so the queue almost never needs heap backing. Loss bursts
// and deep pipelining spill to an ordinary slice, whose backing is
// dropped again the moment the queue drains.
const retransInline = 2

// txState is the retransmission queue of one connection with data in
// flight: a head-indexed ring over one backing array. The cumulative-ACK
// trim advances head (zeroing dropped segments so their payload
// references die); q aliases the inline array until a burst spills it.
// States are pooled per stack — a connection acquires one on first
// transmit and releases it whenever the queue drains, so the 250k idle
// connections of a Fig. 4 point carry no send-queue storage at all.
type txState struct {
	q    []txSeg
	head int
	inl  [retransInline]txSeg
}

// getTxState pops a pooled state (or builds the first).
func (s *Stack) getTxState() *txState {
	if n := len(s.txFree); n > 0 {
		t := s.txFree[n-1]
		s.txFree[n-1] = nil
		s.txFree = s.txFree[:n-1]
		return t
	}
	t := &txState{}
	t.q = t.inl[:0:retransInline]
	return t
}

// putTxState returns a drained (or dead) state to the pool. Re-aliasing
// q to the inline array drops any spilled backing — and with it every
// payload reference the backing still held — fixing the leak where a
// loss burst's spill capacity stayed pinned for the connection's
// lifetime. The inline array is zeroed for the same reason: a spill
// copies its contents aside but leaves stale fragment references behind.
func (s *Stack) putTxState(t *txState) {
	t.inl = [retransInline]txSeg{}
	t.q = t.inl[:0:retransInline]
	t.head = 0
	s.txFree = append(s.txFree, t)
}

// rxSeg is an out-of-order segment held for reassembly.
type rxSeg struct {
	seq  uint32
	data []byte
	buf  *mem.Mbuf
}

// Conn is a TCP connection. Fields are owned by the stack's thread.
type Conn struct {
	stack *Stack
	// key is the local view: SrcIP/SrcPort local, DstIP/DstPort remote.
	key   wire.FlowKey
	state State

	// Cookie is the user's opaque connection tag (Table 1). A compact
	// integer handle into the owner's connection table rather than an
	// interface box: 8 bytes inline, nothing to scan, nothing pinned.
	Cookie uint64
	// Handle is assigned by the OS layer (kernel-level flow identifier).
	Handle uint64

	// Send state. The retransmission queue lives in a pooled txState
	// side-object: idle connections (nothing in flight) hold none at
	// all, which is what keeps the Fig. 4 bytes/conn budget flat at
	// 250k+ connections — see DESIGN.md "Per-connection memory budget".
	iss        uint32
	sndUna     uint32
	sndNxt     uint32
	sndWnd     uint32 // peer-advertised, scaled
	peerWShift uint8
	finQueued  bool
	tx         *txState

	// Congestion control. dupAcks is uint16: one increment per received
	// duplicate ACK, reset on any advance, so it is bounded by the
	// segments a single flight can produce (window/MSS ≪ 64k).
	cwnd     uint32
	ssthresh uint32
	dupAcks  uint16
	// Loss recovery (NewReno, RFC 6582): while inRecovery, a partial ACK
	// (one below recoverSeq, the sndNxt at loss detection) means the
	// next hole is already known lost, so it is retransmitted
	// immediately instead of waiting out another full RTO — without this
	// a k-segment burst loss costs k serial timeouts, which at a 200 µs
	// MinRTO floor is exactly the incast collapse of §5.
	inRecovery bool
	recoverSeq uint32

	// RTT estimation.
	srtt, rttvar time.Duration
	rto          time.Duration
	rttSeq       uint32
	rttStart     int64
	rttPending   bool
	rexmitCount  uint16

	// Receive state. unconsumed and reasmBytes are bounded by the
	// receive window, so 32 bits hold them.
	rcvNxt     uint32
	unconsumed int32 // delivered to app, not yet RecvDone'd
	reasm      []rxSeg
	reasmBytes int32
	finRcvd    bool

	// Timers. Callbacks are package-level trampolines passed through
	// timerwheel.AddArg with the connection as the argument: a bound
	// method value like c.onRTO would allocate a closure per arming (the
	// RTO re-arms once per transmitted segment) or pin three per-conn
	// closures for the connection's lifetime if bound once at setup.
	rtoTimer *timerwheel.Timer
	twTimer  *timerwheel.Timer
	daTimer  *timerwheel.Timer
	daSegs   uint8 // in-order segments since last ACK sent (reset at 2)

	needAck bool
	// synAckOwed marks an admitted embryonic connection whose SYN-ACK
	// is owed to the next Flush (batched SYN admission).
	synAckOwed bool
	inAckLst   bool
	listener   *Listener
}

// Key returns the connection 4-tuple from the local perspective.
func (c *Conn) Key() wire.FlowKey { return c.key }

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// LocalPort returns the local port.
func (c *Conn) LocalPort() uint16 { return c.key.SrcPort }

// RemoteIP returns the peer address.
func (c *Conn) RemoteIP() wire.IPv4 { return c.key.DstIP }

// mss returns the effective segment size.
func (c *Conn) mss() int { return c.stack.cfg.MSS }

// flight returns bytes in flight.
func (c *Conn) flight() uint32 { return c.sndNxt - c.sndUna }

// retransLen returns the number of tracked unacknowledged segments.
func (c *Conn) retransLen() int {
	if c.tx == nil {
		return 0
	}
	return len(c.tx.q) - c.tx.head
}

// usableWindow returns how many more payload bytes the windows permit.
func (c *Conn) usableWindow() int {
	wnd := c.sndWnd
	if c.cwnd < wnd {
		wnd = c.cwnd
	}
	fl := c.flight()
	if fl >= wnd {
		return 0
	}
	return int(wnd - fl)
}

// UsableWindow exposes the current usable send window (for the sent event
// condition's window_size parameter).
func (c *Conn) UsableWindow() int { return c.usableWindow() }

// rcvWndAvail computes the receive window to advertise: total minus bytes
// the application still holds (zero-copy flow control, §4.3).
func (c *Conn) rcvWndAvail() int {
	w := c.stack.cfg.RcvWnd - int(c.unconsumed) - int(c.reasmBytes)
	if w < 0 {
		w = 0
	}
	return w
}

// Connect initiates an active open to dst:port, returning the new
// connection in SynSent state. The Connected event reports the outcome.
// It is on the establishment fast path — the large Fig. 4 ramps open
// millions of connections through it — so beyond the connection object
// itself (newConn) it must not allocate: the table insert lands in
// presized buckets and the SYN is assembled in the stack's shared
// header scratch (TestZeroAllocConnEstablish pins this).
//
//ix:hotpath
func (s *Stack) Connect(dst wire.IPv4, port uint16, cookie uint64) (*Conn, error) {
	lp, err := s.allocPort(dst, port)
	if err != nil {
		return nil, err
	}
	c := s.newConn(wire.FlowKey{
		SrcIP: s.cfg.LocalIP, DstIP: dst,
		SrcPort: lp, DstPort: port,
		Proto: wire.ProtoTCP,
	})
	c.Cookie = cookie
	c.state = StateSynSent
	c.sndNxt = c.iss + 1
	s.conns[c.key] = c
	s.ActiveOpens++
	c.sendFlags(wire.TCPSyn, c.iss, 0, true)
	c.armRTO()
	return c, nil
}

var errPortSpaceExhausted = errors.New("tcp: ephemeral port space exhausted")

// allocPort picks an ephemeral port not in use for the destination,
// honoring the PortOK probe. The uniqueness probe is an establishment-path
// table lookup; the exhaustion error is hoisted so the probe loop itself
// never allocates.
//
//ix:hotpath
func (s *Stack) allocPort(dst wire.IPv4, dport uint16) (uint16, error) {
	for tries := 0; tries < 8192; tries++ {
		p := s.nextPort
		s.nextPort++
		if s.nextPort == 0 {
			// Recycle through the full user range (the p < 1024 guard
			// skips the reserved ports), not just 32768+: a shared-kernel
			// client host opening >32k connections to one destination
			// needs the widened ip_local_port_range, exactly as a real
			// load-generator host sets it. Allocation starts at 32768, so
			// runs that never exhaust the upper half are unaffected.
			s.nextPort = 1024
		}
		if p < 1024 {
			continue
		}
		k := wire.FlowKey{SrcIP: s.cfg.LocalIP, DstIP: dst, SrcPort: p, DstPort: dport, Proto: wire.ProtoTCP}
		if _, used := s.conns[k]; used {
			continue
		}
		if s.cfg.PortOK != nil && !s.cfg.PortOK(p, dst, dport) {
			continue
		}
		return p, nil
	}
	return 0, errPortSpaceExhausted
}

func (s *Stack) newConn(key wire.FlowKey) *Conn {
	c := &Conn{
		stack:    s,
		key:      key,
		iss:      s.nextISS(),
		cwnd:     uint32(initialCwnd * s.cfg.MSS),
		ssthresh: 1 << 30,
		rto:      initialRTO,
	}
	c.sndUna = c.iss
	c.sndNxt = c.iss
	return c
}

// Timer trampolines: package-level functions, so arming a timer stores
// only the connection pointer (pointer-shaped any does not box).
func connRTO(v any)      { v.(*Conn).onRTO() }
func connTimeWait(v any) { v.(*Conn).onTimeWait() }
func connDelAck(v any)   { v.(*Conn).onDelAck() }

// Input processes one incoming TCP segment. seg is the TCP header+payload
// bytes; buf is the backing mbuf (retained by reassembly/delivery via
// refcounts); src/dst are the IP addresses. Invalid segments are counted
// and dropped. The connection-table demux here is both the per-message
// path and the establishment fast path (every handshake segment of a
// Fig. 4 ramp passes through it), so it must not allocate.
//
//ix:hotpath
func (s *Stack) Input(src, dst wire.IPv4, seg []byte, buf *mem.Mbuf) {
	if !wire.VerifyTCPChecksum(src, dst, seg) {
		s.BadChecksums++
		return
	}
	var hdr wire.TCPHeader
	off, err := hdr.Unmarshal(seg)
	if err != nil {
		s.BadChecksums++
		return
	}
	s.SegsIn++
	payload := seg[off:]
	key := wire.FlowKey{ // local view
		SrcIP: dst, DstIP: src,
		SrcPort: hdr.DstPort, DstPort: hdr.SrcPort,
		Proto: wire.ProtoTCP,
	}
	if c, ok := s.conns[key]; ok {
		c.input(&hdr, payload, buf)
		return
	}
	// No connection: a SYN may create one via a listener.
	if hdr.Flags&wire.TCPSyn != 0 && hdr.Flags&wire.TCPAck == 0 {
		if l, ok := s.listeners[hdr.DstPort]; ok {
			s.passiveOpen(l, key, &hdr)
			return
		}
	}
	s.DroppedNoListener++
	if hdr.Flags&wire.TCPRst == 0 {
		s.sendRST(key, &hdr, len(payload))
	}
}

// passiveOpen handles SYN to a listener. The SYN-ACK is not emitted here
// but owed to the next Flush — batched SYN admission: a burst of SYNs
// arriving in one processing batch is admitted as a group, with every
// handshake reply assembled back-to-back through the stack's shared
// header scratch at the batch boundary (where pure ACKs already leave).
// The retransmission timer armed here covers the reply either way.
// Beyond the connection object itself (newConn) the SYN-accept path must
// not allocate: the table insert lands in presized buckets
// (TestZeroAllocConnEstablish pins the whole passive handshake).
//
//ix:hotpath
func (s *Stack) passiveOpen(l *Listener, key wire.FlowKey, hdr *wire.TCPHeader) {
	if l.embryonic >= s.cfg.SynBacklog {
		return // silently drop: SYN backlog full
	}
	if !s.cfg.Events.Knock(l, key) {
		s.sendRST(key, hdr, 0)
		return
	}
	c := s.newConn(key)
	c.listener = l
	c.state = StateSynRcvd
	c.rcvNxt = hdr.Seq + 1
	c.applyPeerOptions(hdr)
	c.sndNxt = c.iss + 1
	s.conns[key] = c
	l.embryonic++
	s.SynsAdmitted++
	c.scheduleSynAck()
	c.armRTO()
}

func (c *Conn) applyPeerOptions(hdr *wire.TCPHeader) {
	if hdr.WScale >= 0 {
		c.peerWShift = uint8(hdr.WScale)
	}
	w := uint32(hdr.Window)
	if hdr.Flags&wire.TCPSyn != 0 {
		// Window in SYN is unscaled.
		c.sndWnd = w
	} else {
		c.sndWnd = w << c.peerWShift
	}
}

// input runs the per-connection state machine on one segment.
func (c *Conn) input(hdr *wire.TCPHeader, payload []byte, buf *mem.Mbuf) {
	s := c.stack
	// RST processing first.
	if hdr.Flags&wire.TCPRst != 0 {
		if c.state == StateSynSent {
			c.destroy(ReasonRefused)
		} else {
			c.destroy(ReasonReset)
		}
		return
	}
	switch c.state {
	case StateSynSent:
		if hdr.Flags&(wire.TCPSyn|wire.TCPAck) == wire.TCPSyn|wire.TCPAck {
			if hdr.Ack != c.iss+1 {
				s.sendRST(c.key, hdr, len(payload))
				c.destroy(ReasonRefused)
				return
			}
			c.rcvNxt = hdr.Seq + 1
			c.sndUna = hdr.Ack
			c.applyPeerOptions(hdr)
			c.state = StateEstablished
			c.cancelRTO()
			c.scheduleAck() // the handshake ACK
			s.cfg.Events.Connected(c, true)
		}
		return
	case StateSynRcvd:
		if hdr.Flags&wire.TCPAck != 0 && hdr.Ack == c.iss+1 {
			c.sndUna = hdr.Ack
			c.applyPeerOptions(hdr)
			c.state = StateEstablished
			c.cancelRTO()
			if c.listener != nil {
				c.listener.embryonic--
			}
			s.AcceptedConns++
			s.cfg.Events.Accepted(c)
			// Fall through: the ACK may carry data.
		} else {
			return
		}
	}

	// A retransmitted SYN or SYN-ACK arriving on a synchronized
	// connection means the peer missed our handshake ACK: answer with an
	// immediate ACK (RFC 793 §3.9) so its handshake can complete. Without
	// this the peer re-sends SYN-ACKs into silence until its
	// retransmission limit kills the embryonic connection.
	if hdr.Flags&wire.TCPSyn != 0 {
		c.sendAckNow()
		return
	}

	// ACK processing for synchronized states.
	if hdr.Flags&wire.TCPAck != 0 {
		c.processAck(hdr)
		if c.state == StateClosed {
			return
		}
	}
	// Data processing.
	if len(payload) > 0 {
		c.processData(hdr.Seq, payload, buf)
	}
	// FIN processing.
	if hdr.Flags&wire.TCPFin != 0 {
		c.processFin(hdr.Seq + uint32(len(payload)))
	}
}

// processAck handles acknowledgement and window updates.
func (c *Conn) processAck(hdr *wire.TCPHeader) {
	s := c.stack
	ack := hdr.Ack
	prevUsable := c.usableWindow()
	c.applyPeerOptions(hdr)
	switch {
	case seqGT(ack, c.sndNxt):
		// Acks data never sent: protocol violation; answer with ACK.
		c.scheduleAck()
		return
	case seqLE(ack, c.sndUna):
		// Duplicate ACK.
		if c.flight() > 0 && seqDiff(c.sndNxt, c.sndUna) > 0 {
			c.dupAcks++
			if c.dupAcks == 3 {
				c.fastRetransmit()
			}
		}
	default:
		acked := int(seqDiff(ack, c.sndUna))
		c.sndUna = ack
		c.dupAcks = 0
		c.rexmitCount = 0
		released := c.ackRetransQ(ack)
		c.updateRTT(ack)
		c.growCwnd(uint32(acked))
		if c.inRecovery {
			if seqLT(ack, c.recoverSeq) && c.retransLen() > 0 {
				// Partial ACK: retransmit the next hole now.
				c.stack.Retransmits++
				c.resend(&c.tx.q[c.tx.head])
			} else {
				c.inRecovery = false
			}
		}
		if c.retransLen() == 0 {
			c.cancelRTO()
		} else {
			c.armRTO()
		}
		// sent event condition: bytes acked and/or window growth.
		if acked > 0 || c.usableWindow() > prevUsable {
			s.cfg.Events.Sent(c, acked, released)
		}
		c.maybeFinish(ack)
	}
}

// ackRetransQ drops fully acknowledged segments, zeroing their entries
// so the zero-copy payload references die with them, and returns the
// payload bytes released — the count the sent event condition carries
// so the sender's arena can reclaim (tx_sent). The trim advances the
// ring head; a fully drained queue releases its whole txState back to
// the stack pool, so an idle connection holds no send-queue storage
// (and a loss burst's spilled backing cannot outlive the burst).
func (c *Conn) ackRetransQ(ack uint32) int {
	t := c.tx
	if t == nil {
		return 0
	}
	released := 0
	for t.head < len(t.q) {
		ts := &t.q[t.head]
		end := ts.seq + uint32(ts.length)
		if ts.fin {
			end++
		}
		if seqGT(end, ack) {
			break
		}
		released += ts.length
		*ts = txSeg{}
		t.head++
	}
	if t.head == len(t.q) {
		c.stack.putTxState(t)
		c.tx = nil
	} else if t.head >= 32 && t.head*2 >= len(t.q) {
		// A connection that always keeps a segment in flight never hits
		// the empty reset; compact the live suffix to the front so the
		// dead prefix cannot grow with connection lifetime.
		n := copy(t.q, t.q[t.head:])
		for i := n; i < len(t.q); i++ {
			t.q[i] = txSeg{} // drop duplicated payload references
		}
		t.q = t.q[:n]
		t.head = 0
	}
	return released
}

// updateRTT takes an RTT sample if the timed segment was acked and was
// never retransmitted (Karn's rule), then recomputes the RTO.
func (c *Conn) updateRTT(ack uint32) {
	if !c.rttPending || seqLT(ack, c.rttSeq) {
		return
	}
	c.rttPending = false
	sample := time.Duration(c.stack.cfg.Now() - c.rttStart)
	if sample <= 0 {
		return
	}
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		delta := c.srtt - sample
		if delta < 0 {
			delta = -delta
		}
		c.rttvar = (3*c.rttvar + delta) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < c.stack.cfg.MinRTO {
		c.rto = c.stack.cfg.MinRTO
	}
}

// growCwnd applies slow start or congestion avoidance.
func (c *Conn) growCwnd(acked uint32) {
	mss := uint32(c.mss())
	if c.cwnd < c.ssthresh {
		// Slow start: grow by bytes acked (ABC).
		if acked > mss {
			acked = mss
		}
		c.cwnd += acked
	} else {
		// Congestion avoidance: ~1 MSS per RTT.
		inc := mss * mss / c.cwnd
		if inc == 0 {
			inc = 1
		}
		c.cwnd += inc
	}
}

// fastRetransmit reacts to triple duplicate ACKs.
func (c *Conn) fastRetransmit() {
	if c.retransLen() == 0 {
		return
	}
	if c.inRecovery {
		// NewReno re-entry guard (RFC 6582): dup ACKs arriving during
		// recovery belong to the same loss window — the partial-ACK
		// path already retransmits the holes; halving cwnd again would
		// collapse it once per hole.
		return
	}
	c.stack.FastRetransmits++
	mss := uint32(c.mss())
	fl := c.flight()
	half := fl / 2
	if half < 2*mss {
		half = 2 * mss
	}
	c.ssthresh = half
	c.cwnd = c.ssthresh
	c.inRecovery = true
	c.recoverSeq = c.sndNxt
	c.resend(&c.tx.q[c.tx.head])
	c.armRTO()
}

// processData handles payload: in-order delivery plus bounded reassembly.
func (c *Conn) processData(seq uint32, payload []byte, buf *mem.Mbuf) {
	if c.state != StateEstablished && c.state != StateFinWait1 && c.state != StateFinWait2 {
		return
	}
	end := seq + uint32(len(payload))
	if seqLE(end, c.rcvNxt) {
		// Entirely old: re-ACK.
		c.scheduleAck()
		return
	}
	if seqLT(seq, c.rcvNxt) {
		// Partial overlap: trim the old prefix.
		drop := seqDiff(c.rcvNxt, seq)
		payload = payload[drop:]
		seq = c.rcvNxt
	}
	wnd := uint32(c.rcvWndAvail())
	if !seqInWindow(seq, c.rcvNxt, wnd+1) {
		// Beyond our window: drop, re-ACK (window probe handling).
		c.scheduleAck()
		return
	}
	if avail := seqDiff(c.rcvNxt+wnd, seq+uint32(len(payload))); avail < 0 {
		payload = payload[:len(payload)+int(avail)]
	}
	if len(payload) == 0 {
		c.scheduleAck()
		return
	}
	if seq == c.rcvNxt {
		c.deliver(payload, buf)
		c.drainReasm()
		c.scheduleDataAck()
	} else {
		c.stack.OutOfOrderSegs++
		c.insertReasm(seq, payload, buf)
		// RFC 5681: an out-of-order segment generates an immediate
		// duplicate ACK so the sender's fast retransmit can count it —
		// it must not be coalesced with other ACKs at Flush.
		c.sendAckNow()
	}
}

// sendAckNow emits a pure ACK immediately (duplicate ACKs for loss
// recovery must not be batched).
func (c *Conn) sendAckNow() {
	c.cancelDelAck()
	c.needAck = false
	hdr := &c.stack.hdr
	*hdr = c.makeHeader(c.sndNxt, wire.TCPAck)
	c.stack.emit(c, hdr, nil)
}

// deliver hands in-order bytes to the application (zero-copy) and
// advances rcvNxt; the window shrinks until RecvDone.
func (c *Conn) deliver(payload []byte, buf *mem.Mbuf) {
	c.rcvNxt += uint32(len(payload))
	c.unconsumed += int32(len(payload))
	c.stack.cfg.Events.Recv(c, buf, payload)
}

// insertReasm stores an out-of-order segment (bounded queue, sorted).
func (c *Conn) insertReasm(seq uint32, payload []byte, buf *mem.Mbuf) {
	const maxReasm = 64
	if len(c.reasm) >= maxReasm {
		return
	}
	for _, rs := range c.reasm {
		if rs.seq == seq {
			return // duplicate
		}
	}
	if buf != nil {
		buf.Ref()
	}
	ins := rxSeg{seq: seq, data: payload, buf: buf}
	pos := len(c.reasm)
	for i, rs := range c.reasm {
		if seqLT(seq, rs.seq) {
			pos = i
			break
		}
	}
	c.reasm = append(c.reasm, rxSeg{})
	copy(c.reasm[pos+1:], c.reasm[pos:])
	c.reasm[pos] = ins
	c.reasmBytes += int32(len(payload))
}

// drainReasm delivers now-in-order segments from the reassembly queue.
func (c *Conn) drainReasm() {
	for len(c.reasm) > 0 {
		rs := c.reasm[0]
		if seqGT(rs.seq, c.rcvNxt) {
			return
		}
		c.reasm = c.reasm[1:]
		c.reasmBytes -= int32(len(rs.data))
		data := rs.data
		if seqLT(rs.seq, c.rcvNxt) {
			drop := seqDiff(c.rcvNxt, rs.seq)
			if int(drop) >= len(data) {
				if rs.buf != nil {
					rs.buf.Unref()
				}
				continue
			}
			data = data[drop:]
		}
		c.deliver(data, rs.buf)
		if rs.buf != nil {
			rs.buf.Unref() // deliver took its own semantics; see Recv contract
		}
	}
	// Fully drained: drop the backing. Reordering is the exception on
	// this fabric, so holding a burst's worth of rxSeg capacity on every
	// connection that ever saw one would bleed the bytes/conn budget.
	c.reasm = nil
}

// processFin handles a peer FIN at sequence finSeq.
func (c *Conn) processFin(finSeq uint32) {
	if seqGT(finSeq, c.rcvNxt) {
		// FIN beyond in-order point (data missing): ignore; peer will
		// retransmit.
		return
	}
	if c.finRcvd {
		c.scheduleAck()
		return
	}
	c.finRcvd = true
	c.rcvNxt = finSeq + 1
	c.scheduleAck()
	switch c.state {
	case StateEstablished:
		c.state = StateCloseWait
		c.stack.cfg.Events.RemoteClosed(c)
	case StateFinWait1:
		c.state = StateClosing
	case StateFinWait2:
		c.enterTimeWait()
	}
}

// maybeFinish advances closing states once our FIN is acked.
func (c *Conn) maybeFinish(ack uint32) {
	finAcked := c.finQueued && c.retransLen() == 0 && ack == c.sndNxt
	switch c.state {
	case StateFinWait1:
		if finAcked {
			if c.finRcvd {
				c.enterTimeWait()
			} else {
				c.state = StateFinWait2
			}
		}
	case StateClosing:
		if finAcked {
			c.enterTimeWait()
		}
	case StateLastAck:
		if finAcked {
			c.destroy(ReasonClosed)
		}
	}
}

func (c *Conn) enterTimeWait() {
	c.state = StateTimeWait
	c.cancelRTO()
	w := c.stack.cfg.Wheel
	c.twTimer = w.AddArg(c.stack.cfg.Now()+int64(c.stack.cfg.TimeWait), connTimeWait, c)
}

// onTimeWait ends the 2MSL quiet period.
func (c *Conn) onTimeWait() {
	c.twTimer = nil
	c.destroy(ReasonClosed)
}

// Sendv transmits a scatter-gather array. It accepts and immediately
// segments as many bytes as the usable window allows, returning that
// count (possibly zero): the IX sendv contract, which leaves send
// buffering policy to the application. The payload slices must remain
// immutable until acknowledged (the zero-copy contract of §4.5).
//
//ix:hotpath
func (c *Conn) Sendv(bufs [][]byte) int {
	if c.state != StateEstablished && c.state != StateCloseWait {
		return 0
	}
	budget := c.usableWindow()
	if budget <= 0 {
		return 0
	}
	total := 0
	mss := c.mss()
	// Assemble MSS-sized segments from the scatter-gather array in the
	// stack's reusable scratch; sendData moves the fragment references
	// into the tracked segment, so the scratch recycles per segment.
	seg := c.stack.sg[:0]
	segLen := 0
	//ixvet:ignore(hotpath) closure never escapes: called only below, so it stays on the stack (TestZeroAllocSteadySend pins it)
	flush := func() {
		if segLen == 0 {
			return
		}
		c.sendData(seg, segLen)
		seg = seg[:0]
		segLen = 0
	}
	for _, b := range bufs {
		for len(b) > 0 && budget > 0 {
			take := len(b)
			if take > mss-segLen {
				take = mss - segLen
			}
			if take > budget {
				take = budget
			}
			seg = append(seg, b[:take])
			segLen += take
			total += take
			budget -= take
			b = b[take:]
			if segLen == mss {
				flush()
			}
		}
		if budget <= 0 {
			break
		}
	}
	flush()
	c.stack.sg = seg[:0]
	return total
}

// Send is a convenience wrapper over Sendv for a single buffer.
func (c *Conn) Send(b []byte) int { return c.Sendv([][]byte{b}) }

// sendData emits one data segment and tracks it for retransmission.
// payload is caller scratch: the fragment references are captured into
// the tracked segment, which owns them until the cumulative ACK passes.
//
//ix:hotpath
func (c *Conn) sendData(payload [][]byte, length int) {
	seq := c.sndNxt
	c.sndNxt += uint32(length)
	ts := txSeg{seq: seq, length: length, sentAt: c.stack.cfg.Now()}
	ts.setPayload(payload)
	if c.tx == nil {
		c.tx = c.stack.getTxState()
	}
	c.tx.q = append(c.tx.q, ts)
	if !c.rttPending {
		c.rttPending = true
		c.rttSeq = c.sndNxt
		c.rttStart = ts.sentAt
	}
	hdr := &c.stack.hdr
	*hdr = c.makeHeader(seq, wire.TCPAck|wire.TCPPsh)
	c.needAck = false // piggybacked
	c.cancelDelAck()
	c.stack.emit(c, hdr, payload)
	c.armRTO()
}

// Close initiates an orderly close (FIN). Further sends are rejected.
func (c *Conn) Close() {
	switch c.state {
	case StateEstablished:
		c.state = StateFinWait1
	case StateCloseWait:
		c.state = StateLastAck
	case StateSynSent, StateSynRcvd:
		c.Abort()
		return
	default:
		return
	}
	c.sendFIN()
}

// Abort closes with RST (used by the benchmarks to avoid exhausting
// ephemeral ports, as in §5.3) and destroys the connection immediately.
func (c *Conn) Abort() {
	if c.state == StateClosed {
		return
	}
	hdr := c.makeHeader(c.sndNxt, wire.TCPRst|wire.TCPAck)
	c.stack.emit(c, &hdr, nil)
	c.destroy(ReasonClosed)
}

func (c *Conn) sendFIN() {
	c.finQueued = true
	seq := c.sndNxt
	c.sndNxt++
	if c.tx == nil {
		c.tx = c.stack.getTxState()
	}
	c.tx.q = append(c.tx.q, txSeg{seq: seq, fin: true, sentAt: c.stack.cfg.Now()})
	hdr := c.makeHeader(seq, wire.TCPFin|wire.TCPAck)
	c.needAck = false
	c.cancelDelAck()
	c.stack.emit(c, &hdr, nil)
	c.armRTO()
}

// RecvDone returns n received bytes to the stack, reopening the receive
// window (the recv_done batched system call: "advances the receive window
// and frees memory buffers"). A window-update ACK is scheduled only when
// the window had shrunk enough for the peer to have throttled (growth of
// at least one MSS from below a quarter of the full window), avoiding a
// gratuitous pure ACK per application read.
func (c *Conn) RecvDone(n int) {
	prev := c.rcvWndAvail()
	c.unconsumed -= int32(n)
	if c.unconsumed < 0 {
		c.unconsumed = 0
	}
	now := c.rcvWndAvail()
	if prev < c.stack.cfg.RcvWnd/4 && now-prev >= c.mss() {
		c.scheduleAck()
	}
}

// makeHeader builds a header for the current state.
func (c *Conn) makeHeader(seq uint32, flags uint8) wire.TCPHeader {
	wnd := c.rcvWndAvail() >> wndShift
	if wnd > 0xffff {
		wnd = 0xffff
	}
	return wire.TCPHeader{
		SrcPort: c.key.SrcPort,
		DstPort: c.key.DstPort,
		Seq:     seq,
		Ack:     c.rcvNxt,
		Flags:   flags,
		Window:  uint16(wnd),
		WScale:  -1,
	}
}

// sendFlags emits a control segment (SYN, SYN|ACK) with options, through
// the stack's header scratch (emissions never nest, and a burst of
// admitted SYNs reuses the one header across its coalesced SYN-ACKs).
func (c *Conn) sendFlags(flags uint8, seq, ack uint32, withOpts bool) {
	wnd := c.rcvWndAvail()
	hdr := &c.stack.hdr
	*hdr = wire.TCPHeader{
		SrcPort: c.key.SrcPort,
		DstPort: c.key.DstPort,
		Seq:     seq,
		Ack:     ack,
		Flags:   flags,
		WScale:  -1,
	}
	if withOpts {
		hdr.MSS = uint16(c.mss())
		hdr.WScale = wndShift
		// SYN windows are unscaled.
		if wnd > 0xffff {
			wnd = 0xffff
		}
		hdr.Window = uint16(wnd)
	} else {
		w := wnd >> wndShift
		if w > 0xffff {
			w = 0xffff
		}
		hdr.Window = uint16(w)
	}
	c.stack.emit(c, hdr, nil)
	// SYN and SYN|ACK retransmission is driven by connection state in
	// onRTO rather than the retransmission queue.
}

// scheduleSynAck marks an admitted embryonic connection as owing its
// SYN-ACK at the next Flush, on the same pending list pure ACKs use.
func (c *Conn) scheduleSynAck() {
	c.synAckOwed = true
	if !c.inAckLst {
		c.inAckLst = true
		c.stack.needsAck = append(c.stack.needsAck, c)
	}
}

// scheduleAck marks the connection as owing a pure ACK at the next Flush
// (immediately — used for handshakes, duplicates, out-of-order data and
// probes).
func (c *Conn) scheduleAck() {
	c.cancelDelAck()
	c.needAck = true
	if !c.inAckLst {
		c.inAckLst = true
		c.stack.needsAck = append(c.stack.needsAck, c)
	}
}

// scheduleDataAck acknowledges in-order data: immediately when delayed
// ACKs are off or every second segment, otherwise after the delack
// timeout — unless a data segment piggybacks it first.
func (c *Conn) scheduleDataAck() {
	da := c.stack.cfg.DelAck
	if da <= 0 {
		c.scheduleAck()
		return
	}
	c.daSegs++
	if c.daSegs >= 2 {
		c.scheduleAck()
		return
	}
	if c.daTimer == nil {
		c.daTimer = c.stack.cfg.Wheel.AddArg(c.stack.cfg.Now()+int64(da), connDelAck, c)
	}
}

// onDelAck fires the delayed-acknowledgment timeout.
func (c *Conn) onDelAck() {
	c.daTimer = nil
	if c.state != StateClosed {
		c.scheduleAck()
	}
}

func (c *Conn) cancelDelAck() {
	c.daSegs = 0
	if c.daTimer != nil {
		c.stack.cfg.Wheel.Cancel(c.daTimer)
		c.daTimer = nil
	}
}

// Flush emits pending pure ACKs — and the SYN-ACKs of the batch's
// admitted SYNs — at the end of each input batch, so acknowledgment
// pacing follows application progress (§3) and handshake replies leave
// as one coalesced group.
func (s *Stack) Flush() {
	for _, c := range s.needsAck {
		c.inAckLst = false
		if c.synAckOwed {
			c.synAckOwed = false
			if c.state == StateSynRcvd {
				c.sendFlags(wire.TCPSyn|wire.TCPAck, c.iss, c.rcvNxt, true)
			}
			continue
		}
		if c.needAck && c.state != StateClosed {
			c.needAck = false
			c.daSegs = 0
			hdr := &s.hdr
			*hdr = c.makeHeader(c.sndNxt, wire.TCPAck)
			s.emit(c, hdr, nil)
		}
	}
	s.needsAck = s.needsAck[:0]
}

// emit sends a segment through the configured output.
func (s *Stack) emit(c *Conn, hdr *wire.TCPHeader, payload [][]byte) {
	s.SegsOut++
	s.cfg.Output(c, hdr, payload)
}

// sendRST answers an unexpected segment with RST. key is the *local*
// view of the flow the RST responds to.
func (s *Stack) sendRST(key wire.FlowKey, in *wire.TCPHeader, payloadLen int) {
	hdr := wire.TCPHeader{
		SrcPort: key.SrcPort,
		DstPort: key.DstPort,
		Flags:   wire.TCPRst | wire.TCPAck,
		Ack:     in.Seq + uint32(payloadLen),
		WScale:  -1,
	}
	if in.Flags&wire.TCPSyn != 0 {
		hdr.Ack++
	}
	if in.Flags&wire.TCPAck != 0 {
		hdr.Seq = in.Ack
	}
	s.SegsOut++
	s.cfg.Output(&Conn{stack: s, key: key, state: StateClosed}, &hdr, nil)
}

// Migrate moves connection c from its current stack to dst (same host,
// different elastic thread), re-homing its retransmission timer. It is
// the mechanism behind control-plane flow re-balancing when elastic
// threads are added or removed (§4.4: "when a core is revoked ... the
// corresponding network flows must be assigned to another elastic
// thread"). The caller is responsible for quiescence (no in-flight
// processing of this flow), which the run-to-completion model provides
// between cycles.
func (s *Stack) Migrate(c *Conn, dst *Stack) {
	if c.stack != s || dst == s {
		return
	}
	// Re-home pending timers, preserving their original deadlines (timer
	// continuity): a retransmission, TIME_WAIT or delayed-ACK deadline
	// set before the migration fires at the same virtual time on the
	// destination wheel. Fired/cancelled timers are dropped.
	for _, t := range []**timerwheel.Timer{&c.rtoTimer, &c.twTimer, &c.daTimer} {
		if *t != nil && !s.cfg.Wheel.Transfer(*t, dst.cfg.Wheel) {
			*t = nil
		}
	}
	if c.inAckLst {
		// Drop from our pending-ACK list; re-add on destination.
		for i, pc := range s.needsAck {
			if pc == c {
				s.needsAck = append(s.needsAck[:i], s.needsAck[i+1:]...)
				break
			}
		}
		c.inAckLst = false
	}
	// An owed SYN-ACK migrates with the connection (embryonic
	// connections are not normally migrated, but the owed reply must
	// not be lost if one is).
	reownSynAck := c.synAckOwed
	delete(s.conns, c.key)
	c.stack = dst
	dst.conns[c.key] = c
	if c.rtoTimer == nil && c.state != StateTimeWait && c.retransLen() > 0 {
		// Unacked data without a live timer (should not happen, but a
		// lost RTO would hang the flow forever): re-arm defensively.
		c.armRTO()
	}
	if c.needAck || reownSynAck {
		c.inAckLst = true
		dst.needsAck = append(dst.needsAck, c)
	}
}

// Conns returns the live connections (any state), for control-plane
// rebalancing sweeps. The slice is freshly allocated and sorted by flow
// key: migration walks it, and a map-iteration order here would leak
// into handle numbering and event order, breaking run-to-run
// determinism.
func (s *Stack) Conns() []*Conn {
	out := make([]*Conn, 0, len(s.conns))
	for _, c := range s.conns {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].key, out[j].key
		if a.SrcIP != b.SrcIP {
			return a.SrcIP < b.SrcIP
		}
		if a.DstIP != b.DstIP {
			return a.DstIP < b.DstIP
		}
		if a.SrcPort != b.SrcPort {
			return a.SrcPort < b.SrcPort
		}
		if a.DstPort != b.DstPort {
			return a.DstPort < b.DstPort
		}
		return a.Proto < b.Proto
	})
	return out
}

// armRTO (re)arms the retransmission timer.
func (c *Conn) armRTO() {
	c.cancelRTO()
	deadline := c.stack.cfg.Now() + int64(c.rto)
	c.rtoTimer = c.stack.cfg.Wheel.AddArg(deadline, connRTO, c)
}

func (c *Conn) cancelRTO() {
	if c.rtoTimer != nil {
		c.stack.cfg.Wheel.Cancel(c.rtoTimer)
		c.rtoTimer = nil
	}
}

// onRTO fires the retransmission timeout.
func (c *Conn) onRTO() {
	c.rtoTimer = nil
	if c.state == StateClosed || c.state == StateTimeWait {
		return
	}
	c.rexmitCount++
	if int(c.rexmitCount) > c.stack.cfg.MaxRexmits {
		c.destroy(ReasonTimeout)
		return
	}
	c.stack.Retransmits++
	// Exponential backoff; collapse cwnd (Tahoe-style on timeout).
	c.rto *= 2
	if c.rto > 4*time.Second {
		c.rto = 4 * time.Second
	}
	mss := uint32(c.mss())
	half := c.flight() / 2
	if half < 2*mss {
		half = 2 * mss
	}
	c.ssthresh = half
	c.cwnd = mss
	c.rttPending = false // Karn
	switch c.state {
	case StateSynSent:
		c.sendFlags(wire.TCPSyn, c.iss, 0, true)
	case StateSynRcvd:
		c.sendFlags(wire.TCPSyn|wire.TCPAck, c.iss, c.rcvNxt, true)
	default:
		if c.retransLen() > 0 {
			c.inRecovery = true
			c.recoverSeq = c.sndNxt
			c.resend(&c.tx.q[c.tx.head])
		}
	}
	c.armRTO()
}

// resend retransmits one tracked segment, assembling its fragment
// references in the stack scratch (the bytes themselves are still the
// original, immutable sender bytes — retransmission is zero-copy too).
func (c *Conn) resend(ts *txSeg) {
	ts.rexmit = true
	c.rttPending = false // Karn's rule: no sample from retransmitted data
	var flags uint8 = wire.TCPAck
	if ts.fin {
		flags |= wire.TCPFin
	} else if ts.length > 0 {
		flags |= wire.TCPPsh
	}
	hdr := &c.stack.hdr
	*hdr = c.makeHeader(ts.seq, flags)
	sg := ts.appendPayload(c.stack.sg[:0])
	c.stack.emit(c, hdr, sg)
	c.stack.sg = sg[:0]
}

// destroy tears the connection down and reports the terminal event:
// Connected(false) for failed active opens, Dead otherwise (exactly once).
func (c *Conn) destroy(reason Reason) {
	if c.state == StateClosed {
		return
	}
	prev := c.state
	c.state = StateClosed
	c.cancelRTO()
	c.cancelDelAck()
	if c.twTimer != nil {
		c.stack.cfg.Wheel.Cancel(c.twTimer)
		c.twTimer = nil
	}
	if c.listener != nil && prev == StateSynRcvd {
		c.listener.embryonic--
	}
	// Release reassembly references.
	for _, rs := range c.reasm {
		if rs.buf != nil {
			rs.buf.Unref()
		}
	}
	c.reasm = nil
	// Drop the retransmission queue's payload references: after Dead the
	// sender reclaims its arena wholesale. putTxState zeroes the inline
	// array and drops any spilled backing, so the references die with it.
	if c.tx != nil {
		c.stack.putTxState(c.tx)
		c.tx = nil
	}
	delete(c.stack.conns, c.key)
	if prev == StateSynSent {
		c.stack.cfg.Events.Connected(c, false)
		return
	}
	c.stack.cfg.Events.Dead(c, reason)
}
