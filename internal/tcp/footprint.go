package tcp

import (
	"unsafe"

	"ix/internal/memprobe"
	"ix/internal/timerwheel"
)

// Footprint implements the memprobe accounting contract for the TCP
// engine: per live connection, the PCB struct itself plus the
// capacities of its growable storage — retransmit-queue backing,
// scatter-gather spill slices, reassembly segments — and the timer
// nodes the connection currently pins on the wheel (armed timers only;
// the wheel's free list is amortized across the population and not
// charged to anyone). The walk is read-only arithmetic over Go-visible
// state: sampling it never perturbs the simulation.
func (s *Stack) Footprint() memprobe.Footprint {
	const (
		connBytes  = int64(unsafe.Sizeof(Conn{}))
		segBytes   = int64(unsafe.Sizeof(txSeg{}))
		rxBytes    = int64(unsafe.Sizeof(rxSeg{}))
		timerBytes = int64(unsafe.Sizeof(timerwheel.Timer{}))
		sliceBytes = int64(unsafe.Sizeof([]byte(nil)))
	)
	const txStateBytes = int64(unsafe.Sizeof(txState{}))
	var f memprobe.Footprint
	//ixvet:ignore(determinism) commutative integer sums; the tally is order-independent
	for _, c := range s.conns {
		f.Conns++
		b := connBytes
		if t := c.tx; t != nil {
			b += txStateBytes
			if cap(t.q) > retransInline {
				b += int64(cap(t.q)) * segBytes // spilled backing
			}
			for i := t.head; i < len(t.q); i++ {
				b += int64(cap(t.q[i].extra)) * sliceBytes
			}
		}
		b += int64(cap(c.reasm)) * rxBytes
		if c.rtoTimer != nil {
			b += timerBytes
		}
		if c.twTimer != nil {
			b += timerBytes
		}
		if c.daTimer != nil {
			b += timerBytes
		}
		f.Bytes += b
	}
	return f
}
