package tcp

import (
	"testing"

	"ix/internal/timerwheel"
	"ix/internal/wire"
)

// TestZeroAllocConnEstablish: the passive-establishment cycle — SYN
// demux miss, listener knock, connection insert into the presized
// table, batched SYN-ACK at Flush, final-ACK demux, RST teardown —
// performs exactly one allocation per connection: the Conn object
// itself. Everything else on the establishment fast path (the
// //ix:hotpath-annotated Input demux, passiveOpen insert, handshake
// replies through the stack's shared header scratch, pooled RTO
// timers) must be allocation-free, or the large Fig. 4 ramps pay it a
// million times over.
func TestZeroAllocConnEstablish(t *testing.T) {
	ev := &quietEvents{}
	var now int64
	wheel := timerwheel.New(timerwheel.DefaultTick, 0)
	s := NewStack(Config{
		LocalIP:       wire.Addr4(10, 0, 0, 1),
		Now:           func() int64 { return now },
		Wheel:         wheel,
		Output:        func(c *Conn, hdr *wire.TCPHeader, payload [][]byte) {},
		Events:        ev,
		Seed:          7,
		ExpectedConns: 16,
	})
	if _, err := s.Listen(80, nil); err != nil {
		t.Fatal(err)
	}

	srcIP, dstIP := wire.Addr4(10, 0, 0, 2), wire.Addr4(10, 0, 0, 1)
	key := wire.FlowKey{
		SrcIP: dstIP, DstIP: srcIP,
		SrcPort: 80, DstPort: 5000,
		Proto: wire.ProtoTCP,
	}
	const peerISS = 1000
	segBuf := make([]byte, 64)
	var hdr wire.TCPHeader
	inject := func() {
		seg := segBuf[:hdr.Len()]
		hdr.Marshal(seg)
		wire.SetTCPChecksum(srcIP, dstIP, seg)
		s.Input(srcIP, dstIP, seg, nil)
	}
	cycle := func() {
		// SYN: admitted, SYN-ACK owed to the next Flush.
		hdr = wire.TCPHeader{
			SrcPort: 5000, DstPort: 80,
			Seq: peerISS, Flags: wire.TCPSyn,
			Window: 0xffff, MSS: wire.MSS, WScale: 0,
		}
		inject()
		c := s.conns[key]
		if c == nil || c.state != StateSynRcvd {
			t.Fatalf("SYN not admitted: %+v", c)
		}
		s.Flush() // batched SYN-ACK
		// Final ACK completes the handshake.
		hdr = wire.TCPHeader{
			SrcPort: 5000, DstPort: 80,
			Seq: peerISS + 1, Ack: c.iss + 1, Flags: wire.TCPAck,
			Window: 0xffff, WScale: -1,
		}
		inject()
		if c.state != StateEstablished {
			t.Fatalf("handshake did not complete: state=%v", c.state)
		}
		// RST teardown, as the echo benchmarks close (avoids TIME_WAIT).
		hdr = wire.TCPHeader{
			SrcPort: 5000, DstPort: 80,
			Seq: peerISS + 1, Flags: wire.TCPRst,
			Window: 0xffff, WScale: -1,
		}
		inject()
		if len(s.conns) != 0 {
			t.Fatalf("RST did not tear down: %d conns live", len(s.conns))
		}
		// Skim the timer heap's dead entries, as cycleEnd does.
		wheel.NextDeadline()
	}
	cycle() // warm pools, scratch, the needsAck backing
	allocs := testing.AllocsPerRun(1000, cycle)
	if allocs != 1 {
		t.Fatalf("establishment cycle allocates %.2f per conn, want exactly 1 (the Conn object)", allocs)
	}
}

// TestEphemeralPortFullRange: one stack can carry >32k concurrent
// active opens to a single destination — the ephemeral allocator must
// recycle through the full 1024–65535 user range, not just the 32768+
// upper half. A shared-kernel client host (linuxstack) opening a 1M-
// scale Fig. 4 population hits exactly this: at 18 client hosts the old
// wrap-to-32768 allocator exhausted at 18×32768 = 589,824 connections
// fleet-wide, and every Connect past that burned the full 8192-probe
// budget before failing.
func TestEphemeralPortFullRange(t *testing.T) {
	ev := &quietEvents{}
	var now int64
	wheel := timerwheel.New(timerwheel.DefaultTick, 0)
	s := NewStack(Config{
		LocalIP:       wire.Addr4(10, 0, 0, 1),
		Now:           func() int64 { return now },
		Wheel:         wheel,
		Output:        func(c *Conn, hdr *wire.TCPHeader, payload [][]byte) {},
		Events:        ev,
		Seed:          7,
		ExpectedConns: 60_000,
	})
	dst := wire.Addr4(10, 0, 0, 2)
	const want = 60_000 // past the 32768-port upper half
	seen := make(map[uint16]bool, want)
	for i := 0; i < want; i++ {
		c, err := s.Connect(dst, 80, 0)
		if err != nil {
			t.Fatalf("connect %d failed: %v (port space must cover the full user range)", i, err)
		}
		p := c.key.SrcPort
		if p < 1024 {
			t.Fatalf("connect %d allocated reserved port %d", i, p)
		}
		if seen[p] {
			t.Fatalf("connect %d reused live port %d", i, p)
		}
		seen[p] = true
	}
	if len(s.conns) != want {
		t.Fatalf("%d conns live, want %d", len(s.conns), want)
	}
}
