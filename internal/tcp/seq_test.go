package tcp

import (
	"testing"
	"testing/quick"
)

// TestSeqOrderNearWrap: comparisons behave across the 2³² wrap.
func TestSeqOrderNearWrap(t *testing.T) {
	const max = ^uint32(0)
	cases := []struct {
		a, b uint32
		lt   bool
	}{
		{1, 2, true},
		{max, 0, true}, // wrap: max < 0
		{max - 5, max, true},
		{0, max, false},
		{100, 100, false},
	}
	for _, c := range cases {
		if seqLT(c.a, c.b) != c.lt {
			t.Errorf("seqLT(%d,%d) = %v, want %v", c.a, c.b, !c.lt, c.lt)
		}
	}
}

// TestSeqProperties: antisymmetry and consistency of the helpers for
// sequence numbers within half the space of each other (the domain TCP
// guarantees).
func TestSeqProperties(t *testing.T) {
	f := func(base uint32, delta uint16) bool {
		a := base
		b := base + uint32(delta)
		if delta == 0 {
			return seqLE(a, b) && seqGE(a, b) && !seqLT(a, b) && !seqGT(a, b)
		}
		return seqLT(a, b) && seqGT(b, a) && seqLE(a, b) && seqGE(b, a) &&
			seqMax(a, b) == b && seqDiff(b, a) == int32(delta)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSeqInWindowProperty: membership matches the arithmetic definition.
func TestSeqInWindowProperty(t *testing.T) {
	f := func(start uint32, size uint16, off uint16) bool {
		s := uint32(size)
		seq := start + uint32(off)
		want := uint32(off) < s
		return seqInWindow(seq, start, s) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
