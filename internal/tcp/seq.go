package tcp

// Sequence-number arithmetic modulo 2³², per RFC 793. These helpers are
// property-tested (wraparound is where TCP implementations rot).

// seqLT reports a < b in sequence space.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLE reports a ≤ b in sequence space.
func seqLE(a, b uint32) bool { return int32(a-b) <= 0 }

// seqGT reports a > b in sequence space.
func seqGT(a, b uint32) bool { return int32(a-b) > 0 }

// seqGE reports a ≥ b in sequence space.
func seqGE(a, b uint32) bool { return int32(a-b) >= 0 }

// seqMax returns the later of a and b in sequence space.
func seqMax(a, b uint32) uint32 {
	if seqGT(a, b) {
		return a
	}
	return b
}

// seqDiff returns a - b as a signed distance.
func seqDiff(a, b uint32) int32 { return int32(a - b) }

// seqInWindow reports whether seq falls within [start, start+size).
func seqInWindow(seq, start uint32, size uint32) bool {
	return seqGE(seq, start) && seqLT(seq, start+size)
}
