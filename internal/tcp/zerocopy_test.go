package tcp

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"ix/internal/mem"
	"ix/internal/timerwheel"
	"ix/internal/wire"
)

// TestRetransmitArenaSafety drives the zero-copy ownership contract
// under loss: segment payloads are views into a mem.TxArena, ACKs are
// withheld so the retransmission queue keeps referencing them, and the
// test asserts (a) the stack reports zero released bytes while any
// segment is unacknowledged — so an ACK-driven arena cannot reclaim a
// referenced chunk — and (b) every retransmitted segment carries bytes
// identical to its original transmission — so nothing mutated or reused
// the arena region in the meantime. When ACKs resume, the released
// count reaches exactly the bytes sent and the arena drains back to the
// pool.
func TestRetransmitArenaSafety(t *testing.T) {
	n := newTestNet(t, nil)

	pool := mem.NewTxChunkPool(mem.NewRegion(4), 0)
	var arena mem.TxArena
	arena.Init(pool)

	// Record first-transmission payloads per sequence number and compare
	// retransmissions against them.
	firstTx := map[uint32][]byte{}
	rexmits := 0
	dropAcks := false
	n.drop = func(from *side, hdr *wire.TCPHeader, payload []byte) bool {
		if from == n.a && len(payload) > 0 {
			if orig, seen := firstTx[hdr.Seq]; seen {
				rexmits++
				if !bytes.Equal(orig, payload) {
					t.Errorf("retransmission of seq %d mutated: first %q, retransmit %q",
						hdr.Seq, orig, payload)
				}
			} else {
				firstTx[hdr.Seq] = append([]byte(nil), payload...)
			}
		}
		// Withhold b's pure ACKs while dropAcks is set, so a's segments
		// stay referenced by its retransmission queue.
		return dropAcks && from == n.b && len(payload) == 0 && hdr.Flags&wire.TCPAck != 0
	}

	c, _ := n.open(t, 80)

	// Releases observed through the sent event condition drive the arena,
	// exactly as libix does.
	n.a.onRelease = func(conn *Conn, released int) { arena.Release(released) }

	dropAcks = true
	totalSent := 0
	for i := 0; i < 8; i++ {
		msg := bytes.Repeat([]byte{byte('a' + i)}, 700)
		copy(msg, fmt.Sprintf("msg-%d|", i))
		b := msg
		for len(b) > 0 {
			v := arena.Append(b)
			if len(v) == 0 {
				t.Fatal("arena exhausted")
			}
			if got := c.Send(v); got != len(v) {
				t.Fatalf("window closed early: accepted %d of %d", got, len(v))
			}
			totalSent += len(v)
			b = b[len(v):]
		}
	}
	n.step()

	if got := n.a.released[c]; got != 0 {
		t.Fatalf("released %d bytes while ACKs withheld, want 0", got)
	}
	if pool.InUse() == 0 {
		t.Fatal("arena holds no chunks despite unacked segments")
	}
	heldChunks := pool.InUse()

	// Drive several RTO rounds: every retransmission must carry the
	// original bytes, and no chunk may come back to the pool.
	for round := 0; round < 3; round++ {
		n.advance(5 * time.Millisecond)
		if pool.InUse() != heldChunks {
			t.Fatalf("chunk count changed under retransmission: %d -> %d",
				heldChunks, pool.InUse())
		}
	}
	if rexmits == 0 {
		t.Fatal("loss injection produced no retransmissions")
	}
	if got := n.a.released[c]; got != 0 {
		t.Fatalf("released %d bytes during retransmission, want 0", got)
	}

	// ACKs resume: the cumulative ACK trims the queue, the sent event's
	// release count reclaims the arena, chunks return to the pool.
	dropAcks = false
	n.advance(20 * time.Millisecond)
	for i := 0; i < 10 && n.a.released[c] < totalSent; i++ {
		n.advance(5 * time.Millisecond)
	}
	if got := n.a.released[c]; got != totalSent {
		t.Fatalf("released %d bytes after ACKs resumed, want %d", got, totalSent)
	}
	if got := n.a.sent[c]; got < totalSent {
		t.Fatalf("acked %d bytes, want >= %d", got, totalSent)
	}
	if pool.InUse() != 0 || arena.Live() != 0 {
		t.Fatalf("arena not drained: InUse=%d live=%d", pool.InUse(), arena.Live())
	}
}

// TestRetransmitArenaSafetyUnderBurstLoss is the data-loss twin of
// TestRetransmitArenaSafety: instead of withholding ACKs, the network
// eats every data segment (first transmissions AND retransmissions)
// while the storm flag is set, driving repeated RTOs with exponential
// backoff — the fault-injection layer's burst-loss regime. Throughout
// the storm the tx arena must stay immutable and unreclaimed (released
// stays 0, chunk count constant, every retransmission byte-identical);
// when the loss clears, NewReno partial-ACK recovery drains the holes,
// the release count reaches exactly the bytes sent, and the arena
// returns to the pool.
func TestRetransmitArenaSafetyUnderBurstLoss(t *testing.T) {
	n := newTestNet(t, nil)

	pool := mem.NewTxChunkPool(mem.NewRegion(4), 0)
	var arena mem.TxArena
	arena.Init(pool)

	firstTx := map[uint32][]byte{}
	rexmits := 0
	storm := false
	n.drop = func(from *side, hdr *wire.TCPHeader, payload []byte) bool {
		if from == n.a && len(payload) > 0 {
			if orig, seen := firstTx[hdr.Seq]; seen {
				rexmits++
				if !bytes.Equal(orig, payload) {
					t.Errorf("retransmission of seq %d mutated: first %q, retransmit %q",
						hdr.Seq, orig, payload)
				}
			} else {
				firstTx[hdr.Seq] = append([]byte(nil), payload...)
			}
			return storm // the storm eats all data, even retransmissions
		}
		return false
	}

	c, _ := n.open(t, 80)
	n.a.onRelease = func(conn *Conn, released int) { arena.Release(released) }

	storm = true
	totalSent := 0
	for i := 0; i < 6; i++ {
		msg := bytes.Repeat([]byte{byte('A' + i)}, 900)
		copy(msg, fmt.Sprintf("burst-%d|", i))
		b := msg
		for len(b) > 0 {
			v := arena.Append(b)
			if len(v) == 0 {
				t.Fatal("arena exhausted")
			}
			if got := c.Send(v); got != len(v) {
				t.Fatalf("window closed early: accepted %d of %d", got, len(v))
			}
			totalSent += len(v)
			b = b[len(v):]
		}
	}
	n.step()
	if pool.InUse() == 0 {
		t.Fatal("arena holds no chunks despite unacked segments")
	}
	heldChunks := pool.InUse()

	// Several RTO rounds with everything lost: backoff grows, bytes stay.
	for round := 0; round < 4; round++ {
		n.advance(5 * time.Millisecond)
		if got := n.a.released[c]; got != 0 {
			t.Fatalf("released %d bytes mid-storm, want 0", got)
		}
		if pool.InUse() != heldChunks {
			t.Fatalf("chunk count changed mid-storm: %d -> %d", heldChunks, pool.InUse())
		}
	}
	if rexmits == 0 {
		t.Fatal("storm produced no retransmissions")
	}

	// Loss clears: RTO-driven head retransmit + partial-ACK hole
	// retransmits recover the whole burst; the arena drains.
	storm = false
	for i := 0; i < 20 && n.a.released[c] < totalSent; i++ {
		n.advance(10 * time.Millisecond)
	}
	if got := n.a.released[c]; got != totalSent {
		t.Fatalf("released %d bytes after storm cleared, want %d", got, totalSent)
	}
	if pool.InUse() != 0 || arena.Live() != 0 {
		t.Fatalf("arena not drained: InUse=%d live=%d", pool.InUse(), arena.Live())
	}
}

// TestReleasedLagsPartialAck: a cumulative ACK covering only part of a
// segment releases nothing — the whole segment stays referenced until
// fully acknowledged (release granularity is the segment, the unit the
// retransmission queue holds).
func TestReleasedLagsPartialAck(t *testing.T) {
	n := newTestNet(t, nil)
	c, s := n.open(t, 80)

	// One 1000-byte segment from a; craft a partial ACK by hand.
	msg := bytes.Repeat([]byte{0x5a}, 1000)
	if got := c.Send(msg); got != len(msg) {
		t.Fatalf("accepted %d", got)
	}
	// Deliver to b but suppress b's responses so we control the ACK.
	n.drop = func(from *side, hdr *wire.TCPHeader, payload []byte) bool {
		return from == n.b
	}
	n.step()
	if string(n.b.recvd[s][:4]) != "\x5a\x5a\x5a\x5a" {
		t.Fatal("server did not receive the segment")
	}
	n.drop = nil

	// Partial ACK: 400 of 1000 bytes.
	partial := wire.TCPHeader{
		SrcPort: s.Key().SrcPort, DstPort: s.Key().DstPort,
		Seq: s.sndNxt, Ack: c.iss + 1 + 400, Flags: wire.TCPAck,
		Window: 0xffff, WScale: -1,
	}
	seg := make([]byte, partial.Len())
	partial.Marshal(seg)
	wire.SetTCPChecksum(n.b.ip, n.a.ip, seg)
	buf := n.a.pool.Alloc()
	buf.SetData(seg)
	n.a.stack.Input(n.b.ip, n.a.ip, buf.Bytes(), buf)
	buf.Unref()

	if n.a.sent[c] != 400 {
		t.Fatalf("acked = %d, want 400", n.a.sent[c])
	}
	if n.a.released[c] != 0 {
		t.Fatalf("released = %d for a partially acked segment, want 0", n.a.released[c])
	}

	// Full ACK releases the whole segment.
	full := partial
	full.Ack = c.iss + 1 + 1000
	seg2 := make([]byte, full.Len())
	full.Marshal(seg2)
	wire.SetTCPChecksum(n.b.ip, n.a.ip, seg2)
	buf2 := n.a.pool.Alloc()
	buf2.SetData(seg2)
	n.a.stack.Input(n.b.ip, n.a.ip, buf2.Bytes(), buf2)
	buf2.Unref()

	if n.a.released[c] != 1000 {
		t.Fatalf("released = %d after full ACK, want 1000", n.a.released[c])
	}
}

// quietEvents is an allocation-free Events sink for the steady-state
// allocation test (the generic test harness records into maps and
// builds segments with make, which would drown the measurement).
type quietEvents struct {
	released int
	acked    int
}

func (q *quietEvents) Knock(l *Listener, key wire.FlowKey) bool      { return true }
func (q *quietEvents) Accepted(c *Conn)                              {}
func (q *quietEvents) Connected(c *Conn, ok bool)                    {}
func (q *quietEvents) Recv(c *Conn, buf *mem.Mbuf, data []byte)      {}
func (q *quietEvents) Sent(c *Conn, acked, released int)             { q.acked += acked; q.released += released }
func (q *quietEvents) RemoteClosed(c *Conn)                          {}
func (q *quietEvents) Dead(c *Conn, reason Reason)                   {}

// TestZeroAllocSteadySend: the per-message transmit cycle — Sendv with
// an arena-backed view, segment tracking, cumulative ACK, retransQ trim,
// release report — must not allocate once warm (inline segment
// fragments, ring-reset retransmission queue, pooled RTO timers, reused
// scatter-gather scratch).
func TestZeroAllocSteadySend(t *testing.T) {
	ev := &quietEvents{}
	var now int64
	wheel := timerwheel.New(timerwheel.DefaultTick, 0)
	s := NewStack(Config{
		LocalIP: wire.Addr4(10, 0, 0, 1),
		Now:     func() int64 { return now },
		Wheel:   wheel,
		Output:  func(c *Conn, hdr *wire.TCPHeader, payload [][]byte) {},
		Events:  ev,
		Seed:    7,
	})
	c, err := s.Connect(wire.Addr4(10, 0, 0, 2), 80, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-establish: the three-way handshake is not under test.
	c.state = StateEstablished
	c.sndUna = c.iss + 1
	c.sndNxt = c.sndUna
	c.sndWnd = 1 << 20
	c.cancelRTO()

	pool := mem.NewTxChunkPool(mem.NewRegion(4), 0)
	var arena mem.TxArena
	arena.Init(pool)

	msg := make([]byte, 64)
	ackBuf := make([]byte, 64)
	srcIP, dstIP := wire.Addr4(10, 0, 0, 2), wire.Addr4(10, 0, 0, 1)
	cycle := func() {
		v := arena.Append(msg)
		if got := c.Send(v); got != len(v) {
			t.Fatalf("window closed: %d", got)
		}
		now += int64(50 * time.Microsecond)
		// Peer's cumulative ACK for everything outstanding.
		hdr := wire.TCPHeader{
			SrcPort: c.key.DstPort, DstPort: c.key.SrcPort,
			Seq: c.rcvNxt, Ack: c.sndNxt, Flags: wire.TCPAck,
			Window: 0xffff, WScale: -1,
		}
		seg := ackBuf[:hdr.Len()]
		hdr.Marshal(seg)
		wire.SetTCPChecksum(srcIP, dstIP, seg)
		s.Input(srcIP, dstIP, seg, nil)
		arena.Release(ev.released)
		ev.released = 0
		// The dataplane's quiescence query skims the timer heap's dead
		// entries, as cycleEnd does every cycle.
		wheel.NextDeadline()
	}
	cycle() // warm pools, scratch, ring backings
	allocs := testing.AllocsPerRun(1000, cycle)
	if allocs != 0 {
		t.Fatalf("steady-state send cycle allocates %.2f per op, want 0", allocs)
	}
	if c.retransLen() != 0 || arena.Live() != 0 || pool.InUse() != 0 {
		t.Fatalf("cycle left state: retransQ=%d live=%d chunks=%d",
			c.retransLen(), arena.Live(), pool.InUse())
	}
}

// TestRetransQBoundedUnderPipelining: a connection that always keeps a
// segment in flight never hits the queue's empty reset; the trim-time
// compaction must keep the backing bounded by the live window, not by
// connection lifetime.
func TestRetransQBoundedUnderPipelining(t *testing.T) {
	ev := &quietEvents{}
	var now int64
	wheel := timerwheel.New(timerwheel.DefaultTick, 0)
	s := NewStack(Config{
		LocalIP: wire.Addr4(10, 0, 0, 1),
		Now:     func() int64 { return now },
		Wheel:   wheel,
		Output:  func(c *Conn, hdr *wire.TCPHeader, payload [][]byte) {},
		Events:  ev,
		Seed:    7,
	})
	c, err := s.Connect(wire.Addr4(10, 0, 0, 2), 80, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.state = StateEstablished
	c.sndUna = c.iss + 1
	c.sndNxt = c.sndUna
	c.sndWnd = 1 << 20
	c.cancelRTO()
	msg := make([]byte, 64)
	ackBuf := make([]byte, 64)
	srcIP, dstIP := wire.Addr4(10, 0, 0, 2), wire.Addr4(10, 0, 0, 1)
	for i := 0; i < 2000; i++ {
		c.Send(msg)
		now += int64(10 * time.Microsecond)
		// Ack all but the newest segment: the queue never drains.
		hdr := wire.TCPHeader{
			SrcPort: c.key.DstPort, DstPort: c.key.SrcPort,
			Seq: c.rcvNxt, Ack: c.sndNxt - 64, Flags: wire.TCPAck,
			Window: 0xffff, WScale: -1,
		}
		seg := ackBuf[:hdr.Len()]
		hdr.Marshal(seg)
		wire.SetTCPChecksum(srcIP, dstIP, seg)
		s.Input(srcIP, dstIP, seg, nil)
		if c.retransLen() != 1 {
			t.Fatalf("iteration %d: %d segments outstanding, want 1", i, c.retransLen())
		}
	}
	if len(c.tx.q) > 96 {
		t.Fatalf("retransQ backing holds %d entries for 1 live segment; dead prefix not compacted", len(c.tx.q))
	}
}
