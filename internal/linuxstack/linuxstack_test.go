package linuxstack

import (
	"testing"
	"time"

	"ix/internal/app"
	"ix/internal/fabric"
	"ix/internal/sim"
	"ix/internal/wire"
)

// pingpong is a minimal app: server echoes, client sends once.
type pingpong struct {
	env    app.Env
	server bool
	got    *[]byte
	dst    wire.IPv4
}

func (p *pingpong) OnAccept(c app.Conn) {}
func (p *pingpong) OnConnected(c app.Conn, ok bool) {
	if ok {
		c.Send([]byte("ping"))
	}
}
func (p *pingpong) OnRecv(c app.Conn, data []byte) {
	*p.got = append(*p.got, data...)
	if p.server {
		c.Send(data)
	}
}
func (p *pingpong) OnSent(c app.Conn, n int) {}
func (p *pingpong) OnEOF(c app.Conn)         { c.Close() }
func (p *pingpong) OnClosed(c app.Conn)      {}

// TestCrossCoreFlows: client connections from many cores work even
// though RSS lands their return traffic on arbitrary queues — the shared
// kernel PCB table must demultiplex them (the bug class this package
// had to solve; see DESIGN.md).
func TestCrossCoreFlows(t *testing.T) {
	eng := sim.NewEngine(9)
	var srvGot, cliGot []byte
	srv := New(eng, Config{
		Name: "s", IP: wire.Addr4(10, 0, 0, 2), MAC: wire.MAC{2, 0, 0, 0, 0, 2}, Cores: 2,
		Factory: func(env app.Env, th, n int) app.Handler {
			_ = env.Listen(80)
			return &pingpong{env: env, server: true, got: &srvGot}
		},
	})
	cli := New(eng, Config{
		Name: "c", IP: wire.Addr4(10, 0, 0, 1), MAC: wire.MAC{2, 0, 0, 0, 0, 1}, Cores: 4,
		Factory: func(env app.Env, th, n int) app.Handler {
			p := &pingpong{env: env, got: &cliGot, dst: wire.Addr4(10, 0, 0, 2)}
			// Two connections per core: their RSS hashes will scatter.
			_ = env.Connect(p.dst, 80, nil)
			_ = env.Connect(p.dst, 80, nil)
			return p
		},
	})
	link := fabric.NewLink(eng, 10*fabric.Gbps, time.Microsecond)
	srv.NIC().AttachPort(link.Port(0))
	cli.NIC().AttachPort(link.Port(1))
	srv.ARP().Learn(cli.IP(), cli.MAC())
	cli.ARP().Learn(srv.IP(), srv.MAC())
	srv.Start()
	cli.Start()
	eng.RunUntil(sim.Time(10 * time.Millisecond))
	if len(srvGot) != 4*2*4 { // 4 cores × 2 conns × "ping"
		t.Fatalf("server got %d bytes, want 32", len(srvGot))
	}
	if len(cliGot) != 32 {
		t.Fatalf("client got %d bytes, want 32", len(cliGot))
	}
	if srv.ConnCount() != 8 {
		t.Fatalf("server conns = %d", srv.ConnCount())
	}
}

// TestKernelShareDominates: under load, Linux burns most CPU in the
// kernel (the §5.5 premise).
func TestKernelShareDominates(t *testing.T) {
	// Covered quantitatively in harness claims; here check the counters
	// are wired at all after a small run.
	eng := sim.NewEngine(9)
	var got []byte
	srv := New(eng, Config{
		Name: "s", IP: wire.Addr4(10, 0, 0, 2), MAC: wire.MAC{2, 0, 0, 0, 0, 2}, Cores: 1,
		Factory: func(env app.Env, th, n int) app.Handler {
			_ = env.Listen(80)
			return &pingpong{env: env, server: true, got: &got}
		},
	})
	cli := New(eng, Config{
		Name: "c", IP: wire.Addr4(10, 0, 0, 1), MAC: wire.MAC{2, 0, 0, 0, 0, 1}, Cores: 1,
		Factory: func(env app.Env, th, n int) app.Handler {
			p := &pingpong{env: env, got: new([]byte), dst: wire.Addr4(10, 0, 0, 2)}
			_ = env.Connect(p.dst, 80, nil)
			return p
		},
	})
	link := fabric.NewLink(eng, 10*fabric.Gbps, time.Microsecond)
	srv.NIC().AttachPort(link.Port(0))
	cli.NIC().AttachPort(link.Port(1))
	srv.ARP().Learn(cli.IP(), cli.MAC())
	cli.ARP().Learn(srv.IP(), srv.MAC())
	srv.Start()
	cli.Start()
	eng.RunUntil(sim.Time(5 * time.Millisecond))
	k, _ := srv.CPUBreakdown()
	if k == 0 {
		t.Fatal("kernel time not accounted")
	}
}
