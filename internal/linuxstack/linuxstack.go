// Package linuxstack models the paper's carefully tuned Linux 3.16
// baseline (§5.1): an interrupt-driven kernel TCP stack with NAPI
// softirq processing, socket buffers with copies at the syscall boundary,
// epoll-based event delivery with scheduler wakeups, and application
// threads pinned one per core sharing those cores with kernel work.
//
// Unlike IX's shared-nothing elastic threads, the kernel's connection
// table is global: any core's softirq context can process any flow (the
// shared Stack below), with RSS steering packets to per-core queues and
// affinity-accept-style handoff of accepted sockets to the core that
// received them. The same TCP protocol engine as IX runs underneath;
// what differs — and what this package models — is *where and when*
// protocol work executes: hardirq → softirq → socket buffer → wakeup →
// epoll_wait → read/write syscalls with per-byte copies, instead of IX's
// run-to-completion cycle.
package linuxstack

import (
	"time"

	"ix/internal/app"
	"ix/internal/cost"
	"ix/internal/mem"
	"ix/internal/netstack"
	"ix/internal/nicsim"
	"ix/internal/sim"
	"ix/internal/timerwheel"
	"ix/internal/wire"
)

// napiBudget is the Linux NAPI poll budget (packets per softirq poll).
const napiBudget = 64

// readChunk is the bytes drained per read() call (application buffer).
const readChunk = 64 << 10

// Config describes a Linux host.
type Config struct {
	Name string
	IP   wire.IPv4
	MAC  wire.MAC
	// Cores is the number of cores; one NIC queue pair, one pinned
	// application thread and one softirq context per core, with
	// interrupts affinitized (§5.1's tuning).
	Cores int
	// Cost is the Linux cost model.
	Cost cost.Linux
	// Factory builds the per-thread application.
	Factory app.Factory
	// ITR is interrupt moderation; the paper tunes thresholds, so the
	// default is a low 4 µs.
	ITR time.Duration
	// Seed, RcvWnd, MinRTO, MemPages tune the stack.
	Seed     uint64
	RcvWnd   int
	MinRTO   time.Duration
	MemPages int
	NICRing  int
}

// Host is one Linux machine: a single kernel stack, per-core NIC queues
// and softirq contexts, and one pinned application thread per core.
type Host struct {
	eng    *sim.Engine
	cfg    Config
	nic    *nicsim.NIC
	arp    *netstack.ARPTable
	region *mem.Region
	cores  []*kcore

	// ns is the *shared* kernel network stack (global PCB table).
	ns *netstack.Stack
	// wheel is the kernel timer wheel (global, as in Linux).
	wheel *timerwheel.Wheel
	// cur is the core whose context is currently executing kernel or
	// app work; stack callbacks attribute costs and output to it.
	cur *kcore

	listening map[uint16]bool
	timerWake *sim.Event
}

// New builds a Linux host. Attach NIC ports before Start.
func New(eng *sim.Engine, cfg Config) *Host {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.Cost == (cost.Linux{}) {
		cfg.Cost = cost.DefaultLinux()
	}
	if cfg.ITR == 0 {
		cfg.ITR = 4 * time.Microsecond
	}
	if cfg.MemPages <= 0 {
		cfg.MemPages = 512
	}
	h := &Host{
		eng:       eng,
		cfg:       cfg,
		arp:       netstack.NewARPTable(),
		region:    mem.NewRegion(cfg.MemPages),
		listening: make(map[uint16]bool),
	}
	h.nic = nicsim.New(eng, cfg.MAC, nicsim.Config{
		Queues:   cfg.Cores,
		RingSize: cfg.NICRing,
		ITR:      cfg.ITR,
	})
	h.wheel = timerwheel.New(timerwheel.DefaultTick, int64(eng.Now()))
	h.ns = netstack.New(netstack.Config{
		LocalIP:  cfg.IP,
		LocalMAC: cfg.MAC,
		Now:      func() int64 { return int64(eng.Now()) },
		Wheel:    h.wheel,
		SendFrame: func(f []byte) {
			c := h.cur
			if c == nil {
				c = h.cores[0]
			}
			c.outFrames = append(c.outFrames, f)
		},
		Events: (*kernelEvents)(h),
		ARP:    h.arp,
		Seed:   cfg.Seed,
		RcvWnd: cfg.RcvWnd,
		MinRTO: cfg.MinRTO,
		// Linux delays pure ACKs so responses piggyback them (scaled
		// to the simulation's RTO floor).
		DelAck: 100 * time.Microsecond,
	})
	return h
}

// NIC returns the host NIC for fabric attachment.
func (h *Host) NIC() *nicsim.NIC { return h.nic }

// ARP returns the host ARP table.
func (h *Host) ARP() *netstack.ARPTable { return h.arp }

// IP returns the host address.
func (h *Host) IP() wire.IPv4 { return h.cfg.IP }

// MAC returns the hardware address.
func (h *Host) MAC() wire.MAC { return h.cfg.MAC }

// Stack exposes the shared kernel stack (tests).
func (h *Host) Stack() *netstack.Stack { return h.ns }

// Start spawns per-core kernel contexts and application threads.
func (h *Host) Start() {
	for i := 0; i < h.cfg.Cores; i++ {
		h.cores = append(h.cores, newKcore(h, i))
	}
	for _, k := range h.cores {
		k.handler = h.cfg.Factory(k.env(), k.id, h.cfg.Cores)
		k.maybeWakeApp()
	}
}

// Cores returns the core count.
func (h *Host) Cores() int { return len(h.cores) }

// ConnCount returns live connections.
func (h *Host) ConnCount() int { return h.ns.TCP().ConnCount() }

// CPUBreakdown reports kernel vs user busy time since ResetStats.
func (h *Host) CPUBreakdown() (kernel, user time.Duration) {
	for _, k := range h.cores {
		kernel += time.Duration(k.kernelNs)
		user += time.Duration(k.userNs)
	}
	return kernel, user
}

// ResetStats zeroes measurement counters.
func (h *Host) ResetStats() {
	for _, k := range h.cores {
		k.kernelNs, k.userNs = 0, 0
		k.core.ResetStats()
	}
}

// ensureTimerWake arranges a kernel tick for the next timer deadline.
func (h *Host) ensureTimerWake() {
	nd, ok := h.wheel.NextDeadline()
	if !ok {
		return
	}
	at := sim.Time(nd)
	if at < h.eng.Now() {
		at = h.eng.Now()
	}
	if h.timerWake != nil {
		if h.timerWake.At() <= at {
			return
		}
		h.eng.Cancel(h.timerWake)
	}
	h.timerWake = h.eng.At(at, func() {
		h.timerWake = nil
		k := h.cores[0]
		k.core.Submit(sim.ClassKernel, func(m *sim.Meter) {
			h.cur = k
			k.curMeter = m
			h.wheel.Advance(int64(h.eng.Now()))
			h.ns.Flush()
			k.curMeter = nil
			h.cur = nil
			k.drainAtEnd(m)
		})
	})
}

// kcore is one core: a NAPI softirq context plus the pinned app thread.
type kcore struct {
	h    *Host
	id   int
	core *sim.Core

	pool *mem.MbufPool
	rxq  *nicsim.RxQueue
	txq  *nicsim.TxQueue

	handler app.Handler

	// epoll state.
	readyQ     []*sock
	appRunning bool
	napiQueued bool

	outFrames [][]byte
	curMeter  *sim.Meter
	sysKernel time.Duration

	kernelNs int64
	userNs   int64
}

func newKcore(h *Host, id int) *kcore {
	k := &kcore{
		h:    h,
		id:   id,
		core: sim.NewCore(h.eng, id),
		pool: mem.NewMbufPool(h.region, id),
	}
	k.core.CtxSwitch = h.cfg.Cost.CtxSwitch
	k.rxq = h.nic.RxQueue(id)
	k.txq = h.nic.TxQueue(id)
	k.rxq.Mode = nicsim.ModeInterrupt
	k.rxq.OnInterrupt = k.hardIRQ
	k.rxq.EnableInterrupt()
	return k
}

// chargeK charges kernel work inside whatever task is running.
func (k *kcore) chargeK(d time.Duration) {
	if k.curMeter != nil {
		k.curMeter.Charge(d)
	}
	k.kernelNs += int64(d)
	k.sysKernel += d
}

// drainAtEnd posts accumulated frames at task end.
func (k *kcore) drainAtEnd(m *sim.Meter) {
	out := k.outFrames
	k.outFrames = nil
	m.AtEnd(func() {
		for _, f := range out {
			k.txq.Post(f)
		}
		k.h.ensureTimerWake()
	})
}

// hardIRQ is the NIC interrupt: schedule softirq (NAPI) on this core.
func (k *kcore) hardIRQ() {
	k.rxq.DisableInterrupt()
	k.scheduleNAPI()
}

func (k *kcore) scheduleNAPI() {
	if k.napiQueued {
		return
	}
	k.napiQueued = true
	k.core.Submit(sim.ClassKernel, k.napiPoll)
}

// napiPoll is one softirq poll round: up to the budget of packets through
// the shared kernel stack, then re-poll or re-enable interrupts.
func (k *kcore) napiPoll(m *sim.Meter) {
	h := k.h
	k.napiQueued = false
	h.cur = k
	k.curMeter = m
	c := &h.cfg.Cost
	m.Charge(c.HardIRQ)
	k.kernelNs += int64(c.HardIRQ)
	frames := k.rxq.Take(napiBudget)
	k.rxq.PostDescriptors(len(frames))
	miss := time.Duration(cost.MissesPerMsg(h.ConnCount()) * float64(c.L3Miss))
	for _, f := range frames {
		buf := k.pool.Alloc()
		if buf == nil {
			continue
		}
		buf.SetData(f.Data)
		d := c.SoftIRQPerPkt + miss
		m.Charge(d)
		k.kernelNs += int64(d)
		h.ns.Input(buf)
		buf.Unref()
	}
	// Kernel timers piggyback on softirq.
	h.wheel.Advance(int64(h.eng.Now()))
	// The kernel acks as it processes, sliding its receive window
	// independent of the application (§3).
	h.ns.Flush()
	k.curMeter = nil
	h.cur = nil
	out := k.outFrames
	k.outFrames = nil
	more := k.rxq.Len() > 0
	m.AtEnd(func() {
		for _, f := range out {
			k.txq.Post(f)
		}
		if more {
			k.scheduleNAPI()
		} else {
			k.rxq.EnableInterrupt()
		}
		h.ensureTimerWake()
	})
}

// enqueueReady marks a socket eventful and wakes its owning core's app
// thread if it is blocked in epoll_wait.
func (k *kcore) enqueueReady(s *sock) {
	if !s.inReady {
		s.inReady = true
		k.readyQ = append(k.readyQ, s)
	}
	k.maybeWakeApp()
}

func (k *kcore) maybeWakeApp() {
	if k.appRunning || len(k.readyQ) == 0 {
		return
	}
	k.appRunning = true
	// Scheduler wakeup latency for the blocked, pinned thread.
	k.core.SubmitAfter(k.h.cfg.Cost.WakeupLatency, sim.ClassUser, k.appRun)
}

// appRun is the application thread resuming from epoll_wait.
func (k *kcore) appRun(m *sim.Meter) {
	h := k.h
	h.cur = k
	k.curMeter = m
	k.sysKernel = 0
	c := &h.cfg.Cost
	k.chargeK(c.SyscallEntry) // epoll_wait return
	userStart := m.Elapsed()
	preKernel := k.sysKernel
	for len(k.readyQ) > 0 {
		s := k.readyQ[0]
		k.readyQ = k.readyQ[1:]
		s.inReady = false
		k.chargeK(c.EpollDispatch)
		k.dispatch(s)
	}
	userSpent := m.Elapsed() - userStart - (k.sysKernel - preKernel)
	if userSpent > 0 {
		k.userNs += int64(userSpent)
	}
	k.curMeter = nil
	h.cur = nil
	out := k.outFrames
	k.outFrames = nil
	m.AtEnd(func() {
		for _, f := range out {
			k.txq.Post(f)
		}
		k.appRunning = false
		k.maybeWakeApp() // events may have landed while we ran
		h.ensureTimerWake()
	})
}

// dispatch delivers one ready socket's events to the application.
func (k *kcore) dispatch(s *sock) {
	c := &k.h.cfg.Cost
	if s.acceptPending {
		s.acceptPending = false
		k.chargeK(c.SyscallEntry + c.ConnSetup) // accept4()
		k.handler.OnAccept(s)
	}
	if s.connectedPending {
		s.connectedPending = false
		k.handler.OnConnected(s, s.connectedOK)
		if !s.connectedOK {
			return
		}
	}
	for len(s.rcvbuf) > 0 {
		n := len(s.rcvbuf)
		if n > readChunk {
			n = readChunk
		}
		chunk := s.rcvbuf[:n]
		s.rcvbuf = s.rcvbuf[n:]
		k.chargeK(c.SyscallEntry + c.SockRead + c.CopyPerByte.Cost(n))
		if s.conn != nil {
			s.conn.RecvDone(n) // window opens as the app consumes
		}
		k.handler.OnRecv(s, chunk)
		if s.dead {
			return
		}
	}
	if len(s.rcvbuf) == 0 {
		s.rcvbuf = nil
	}
	if s.sentPending > 0 {
		n := s.sentPending
		s.sentPending = 0
		k.handler.OnSent(s, n)
	}
	if s.eofPending {
		s.eofPending = false
		k.handler.OnEOF(s)
	}
	if s.deadPending {
		s.deadPending = false
		s.dead = true
		k.handler.OnClosed(s)
	}
}

// env returns the app.Env for this core's application thread.
func (k *kcore) env() app.Env { return (*kenv)(k) }

// kenv implements app.Env on a kcore.
type kenv kcore

func (e *kenv) k() *kcore { return (*kcore)(e) }

func (e *kenv) Now() int64 { return int64(e.h.eng.Now()) }

func (e *kenv) Thread() int { return e.id }

func (e *kenv) Charge(d time.Duration) {
	k := e.k()
	if k.curMeter != nil {
		k.curMeter.Charge(d)
	} else {
		k.userNs += int64(d)
	}
}

// Elapsed returns CPU time charged in the current task.
func (e *kenv) Elapsed() time.Duration {
	if k := e.k(); k.curMeter != nil {
		return k.curMeter.Elapsed()
	}
	return 0
}

// Listen binds the shared kernel stack to port once; further listens are
// SO_REUSEPORT no-ops (accepted sockets are distributed by RSS core).
func (e *kenv) Listen(port uint16) error {
	k := e.k()
	if k.h.listening[port] {
		return nil
	}
	k.h.listening[port] = true
	_, err := k.h.ns.TCP().Listen(port, nil)
	return err
}

// runAppTask runs fn in an app-thread task with kernel context wiring.
func (k *kcore) runAppTask(fn func()) {
	k.core.Submit(sim.ClassUser, func(m *sim.Meter) {
		k.h.cur = k
		k.curMeter = m
		fn()
		k.curMeter = nil
		k.h.cur = nil
		out := k.outFrames
		k.outFrames = nil
		m.AtEnd(func() {
			for _, f := range out {
				k.txq.Post(f)
			}
			k.maybeWakeApp()
			k.h.ensureTimerWake()
		})
	})
}

func (e *kenv) After(d time.Duration, fn func()) {
	k := e.k()
	k.h.eng.After(d, func() { k.runAppTask(fn) })
}

func (e *kenv) Connect(dst wire.IPv4, port uint16, cookie any) error {
	k := e.k()
	doConnect := func() {
		k.chargeK(k.h.cfg.Cost.SyscallEntry + k.h.cfg.Cost.ConnSetup)
		conn, err := k.h.ns.TCP().Connect(dst, port, nil)
		if err != nil {
			s := &sock{k: k, cookie: cookie, connectedPending: true, dead: true}
			k.enqueueReady(s)
			return
		}
		s := &sock{k: k, conn: conn, cookie: cookie}
		conn.Cookie = s
	}
	if k.curMeter != nil {
		prev := k.h.cur
		k.h.cur = k
		doConnect()
		k.h.cur = prev
		return nil
	}
	// Issued outside any task (program start): run as an app task.
	k.runAppTask(doConnect)
	return nil
}
