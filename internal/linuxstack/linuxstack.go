// Package linuxstack models the paper's carefully tuned Linux 3.16
// baseline (§5.1): an interrupt-driven kernel TCP stack with NAPI
// softirq processing, socket buffers with copies at the syscall boundary,
// epoll-based event delivery with scheduler wakeups, and application
// threads pinned one per core sharing those cores with kernel work.
//
// Unlike IX's shared-nothing elastic threads, the kernel's connection
// table is global: any core's softirq context can process any flow (the
// shared Stack below), with RSS steering packets to per-core queues and
// affinity-accept-style handoff of accepted sockets to the core that
// received them. The same TCP protocol engine as IX runs underneath;
// what differs — and what this package models — is *where and when*
// protocol work executes: hardirq → softirq → socket buffer → wakeup →
// epoll_wait → read/write syscalls with per-byte copies, instead of IX's
// run-to-completion cycle.
package linuxstack

import (
	"time"

	"ix/internal/app"
	"ix/internal/cost"
	"ix/internal/fabric"
	"ix/internal/mem"
	"ix/internal/netstack"
	"ix/internal/nicsim"
	"ix/internal/sim"
	"ix/internal/timerwheel"
	"ix/internal/wire"
)

// napiBudget is the Linux NAPI poll budget (packets per softirq poll).
const napiBudget = 64

// readChunk is the bytes drained per read() call (application buffer).
const readChunk = 64 << 10

// Config describes a Linux host.
type Config struct {
	Name string
	IP   wire.IPv4
	MAC  wire.MAC
	// Cores is the number of cores; one NIC queue pair, one pinned
	// application thread and one softirq context per core, with
	// interrupts affinitized (§5.1's tuning).
	Cores int
	// Cost is the Linux cost model.
	Cost cost.Linux
	// Factory builds the per-thread application.
	Factory app.Factory
	// ITR is interrupt moderation; the paper tunes thresholds, so the
	// default is a low 4 µs.
	ITR time.Duration
	// Seed, RcvWnd, MinRTO, MemPages tune the stack.
	Seed     uint64
	RcvWnd   int
	MinRTO   time.Duration
	MemPages int
	NICRing  int
	// ExpectedConns presizes the kernel's global connection and socket
	// tables for the anticipated population (0 = grow on demand).
	ExpectedConns int
}

// Host is one Linux machine: a single kernel stack, per-core NIC queues
// and softirq contexts, and one pinned application thread per core.
type Host struct {
	eng    *sim.Engine
	cfg    Config
	nic    *nicsim.NIC
	arp    *netstack.ARPTable
	region *mem.Region
	cores  []*kcore

	// ns is the *shared* kernel network stack (global PCB table).
	ns *netstack.Stack
	// wheel is the kernel timer wheel (global, as in Linux).
	wheel *timerwheel.Wheel
	// cur is the core whose context is currently executing kernel or
	// app work; stack callbacks attribute costs and output to it.
	cur *kcore

	// missFloor is the handshake-frame miss charge (batched SYN
	// admission), a run constant hoisted out of the softirq loop.
	missFloor time.Duration

	// socks is the host-global fd-style socket table: the TCP engine's
	// per-connection cookie is a compact slot id (index+1) into it
	// rather than an interface box. Freed slots recycle LIFO.
	socks    []*sock
	sockFree []uint32

	listening map[uint16]bool
	timerWake *sim.Event
	// Bound callbacks, created once (closures allocate).
	timerFired func()
	timerTask  func(*sim.Meter)
}

// New builds a Linux host. Attach NIC ports before Start.
func New(eng *sim.Engine, cfg Config) *Host {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.Cost == (cost.Linux{}) {
		cfg.Cost = cost.DefaultLinux()
	}
	if cfg.ITR == 0 {
		cfg.ITR = 4 * time.Microsecond
	}
	if cfg.MemPages <= 0 {
		cfg.MemPages = 512
	}
	h := &Host{
		eng:       eng,
		cfg:       cfg,
		arp:       netstack.NewARPTable(),
		region:    mem.NewRegion(cfg.MemPages),
		listening: make(map[uint16]bool),
	}
	if cfg.ExpectedConns > 0 {
		h.socks = make([]*sock, 0, cfg.ExpectedConns)
	}
	h.missFloor = time.Duration(cost.MissesPerMsg(0) * float64(cfg.Cost.L3Miss))
	h.timerFired = h.onTimerWake
	h.timerTask = h.runTimerTask
	h.nic = nicsim.New(eng, cfg.MAC, nicsim.Config{
		Queues:   cfg.Cores,
		RingSize: cfg.NICRing,
		ITR:      cfg.ITR,
	})
	h.wheel = timerwheel.New(timerwheel.DefaultTick, int64(eng.Now()))
	h.ns = netstack.New(netstack.Config{
		LocalIP:  cfg.IP,
		LocalMAC: cfg.MAC,
		Now:      func() int64 { return int64(eng.Now()) },
		Wheel:    h.wheel,
		SendFrame: func(f *fabric.Frame) {
			c := h.cur
			if c == nil {
				c = h.cores[0]
			}
			c.outFrames = append(c.outFrames, f)
		},
		Events: (*kernelEvents)(h),
		ARP:    h.arp,
		Seed:   cfg.Seed,
		RcvWnd: cfg.RcvWnd,
		MinRTO: cfg.MinRTO,
		// Linux delays pure ACKs so responses piggyback them (scaled
		// to the simulation's RTO floor).
		DelAck: 100 * time.Microsecond,

		ExpectedConns: cfg.ExpectedConns,
	})
	return h
}

// NIC returns the host NIC for fabric attachment.
func (h *Host) NIC() *nicsim.NIC { return h.nic }

// ARP returns the host ARP table.
func (h *Host) ARP() *netstack.ARPTable { return h.arp }

// IP returns the host address.
func (h *Host) IP() wire.IPv4 { return h.cfg.IP }

// MAC returns the hardware address.
func (h *Host) MAC() wire.MAC { return h.cfg.MAC }

// Stack exposes the shared kernel stack (tests).
func (h *Host) Stack() *netstack.Stack { return h.ns }

// Start spawns per-core kernel contexts and application threads.
func (h *Host) Start() {
	for i := 0; i < h.cfg.Cores; i++ {
		h.cores = append(h.cores, newKcore(h, i))
	}
	for _, k := range h.cores {
		k.handler = h.cfg.Factory(k.env(), k.id, h.cfg.Cores)
		k.sendReady, _ = k.handler.(app.SendReadyHandler)
		k.maybeWakeApp()
	}
}

// Cores returns the core count.
func (h *Host) Cores() int { return len(h.cores) }

// ConnCount returns live connections.
func (h *Host) ConnCount() int { return h.ns.TCP().ConnCount() }

// CPUBreakdown reports kernel vs user busy time since ResetStats.
func (h *Host) CPUBreakdown() (kernel, user time.Duration) {
	for _, k := range h.cores {
		kernel += time.Duration(k.kernelNs)
		user += time.Duration(k.userNs)
	}
	return kernel, user
}

// ResetStats zeroes measurement counters.
func (h *Host) ResetStats() {
	for _, k := range h.cores {
		k.kernelNs, k.userNs = 0, 0
		k.core.ResetStats()
	}
}

// ensureTimerWake arranges a kernel tick for the next timer deadline.
// It arms at the wheel's NextFireTime, which quantizes a deadline
// inside the current wheel tick up to the next tick boundary — the
// same-instant livelock fix, now shared with mtcpstack through the
// timerwheel API instead of the old timerRanAt re-arm guard.
func (h *Host) ensureTimerWake() {
	ft, ok := h.wheel.NextFireTime()
	if !ok {
		return
	}
	at := sim.Time(ft)
	if at < h.eng.Now() {
		// The wheel's clock lags the engine (no softirq ran lately):
		// wake now; the task's Advance catches the wheel up and the next
		// arming lands strictly in the future.
		at = h.eng.Now()
	}
	if h.timerWake != nil {
		if h.timerWake.At() <= at {
			return
		}
		h.eng.Cancel(h.timerWake)
	}
	h.timerWake = h.eng.At(at, h.timerFired)
}

// onTimerWake fires the scheduled kernel timer tick.
func (h *Host) onTimerWake() {
	h.timerWake = nil
	h.cores[0].core.Submit(sim.ClassKernel, h.timerTask)
}

// runTimerTask advances the kernel wheel in softirq context on core 0.
func (h *Host) runTimerTask(m *sim.Meter) {
	k := h.cores[0]
	h.cur = k
	k.curMeter = m
	h.wheel.Advance(int64(h.eng.Now()))
	h.ns.Flush()
	k.curMeter = nil
	h.cur = nil
	k.drainAtEnd(m)
}

// kcore is one core: a NAPI softirq context plus the pinned app thread.
type kcore struct {
	h    *Host
	id   int
	core *sim.Core

	pool *mem.MbufPool
	rxq  *nicsim.RxQueue
	txq  *nicsim.TxQueue

	handler app.Handler
	// sendReady is the handler's optional writable-again extension
	// (nil when not implemented; cached so sockets test once).
	sendReady app.SendReadyHandler

	// epoll state.
	readyQ     []*sock
	readyHead  int
	appRunning bool
	napiQueued bool

	// outFrames accumulates frames for the running task; txPending/
	// txSpare ping-pong the backing array through the AtEnd post step.
	outFrames []*fabric.Frame
	txPending []*fabric.Frame
	txSpare   []*fabric.Frame
	napiMore  bool

	// Bound methods, created once (method values allocate).
	napiFn   func(*sim.Meter)
	appRunFn func(*sim.Meter)

	curMeter  *sim.Meter
	sysKernel time.Duration

	kernelNs int64
	userNs   int64
}

func newKcore(h *Host, id int) *kcore {
	k := &kcore{
		h:    h,
		id:   id,
		core: sim.NewCore(h.eng, id),
		pool: mem.NewMbufPool(h.region, id),
	}
	k.napiFn = k.napiPoll
	k.appRunFn = k.appRun
	k.core.CtxSwitch = h.cfg.Cost.CtxSwitch
	k.rxq = h.nic.RxQueue(id)
	k.txq = h.nic.TxQueue(id)
	k.rxq.Mode = nicsim.ModeInterrupt
	k.rxq.OnInterrupt = k.hardIRQ
	k.rxq.EnableInterrupt()
	return k
}

// chargeK charges kernel work inside whatever task is running.
func (k *kcore) chargeK(d time.Duration) {
	if k.curMeter != nil {
		k.curMeter.Charge(d)
	}
	k.kernelNs += int64(d)
	k.sysKernel += d
}

// stageTx moves the task's accumulated frames into the pending-post slot
// (the backing arrays ping-pong, so steady state does not allocate).
func (k *kcore) stageTx() {
	k.txPending = k.outFrames
	k.outFrames = k.txSpare[:0]
	k.txSpare = nil
}

// postTx posts the staged frames at task end and recycles the backing.
func (k *kcore) postTx() {
	out := k.txPending
	k.txPending = nil
	for i, f := range out {
		k.txq.Post(f)
		out[i] = nil
	}
	k.txSpare = out[:0]
}

// AtEnd trampolines (pooled events, no closures).
func kEndTimer(a any) {
	k := a.(*kcore)
	k.postTx()
	k.h.ensureTimerWake()
}

func kEndNapi(a any) {
	k := a.(*kcore)
	k.postTx()
	if k.napiMore {
		k.scheduleNAPI()
	} else {
		k.rxq.EnableInterrupt()
	}
	k.h.ensureTimerWake()
}

func kEndApp(a any) {
	k := a.(*kcore)
	k.postTx()
	k.appRunning = false
	k.maybeWakeApp() // events may have landed while we ran
	k.h.ensureTimerWake()
}

func kEndTask(a any) {
	k := a.(*kcore)
	k.postTx()
	k.maybeWakeApp()
	k.h.ensureTimerWake()
}

// drainAtEnd posts accumulated frames at task end.
func (k *kcore) drainAtEnd(m *sim.Meter) {
	k.stageTx()
	m.AtEndCall(kEndTimer, k)
}

// hardIRQ is the NIC interrupt: schedule softirq (NAPI) on this core.
func (k *kcore) hardIRQ() {
	k.rxq.DisableInterrupt()
	k.scheduleNAPI()
}

func (k *kcore) scheduleNAPI() {
	if k.napiQueued {
		return
	}
	k.napiQueued = true
	k.core.Submit(sim.ClassKernel, k.napiFn)
}

// napiPoll is one softirq poll round: up to the budget of packets through
// the shared kernel stack, then re-poll or re-enable interrupts.
func (k *kcore) napiPoll(m *sim.Meter) {
	h := k.h
	k.napiQueued = false
	h.cur = k
	k.curMeter = m
	c := &h.cfg.Cost
	m.Charge(c.HardIRQ)
	k.kernelNs += int64(c.HardIRQ)
	frames := k.rxq.Take(napiBudget)
	k.rxq.PostDescriptors(len(frames))
	miss := time.Duration(cost.MissesPerMsg(h.ConnCount()) * float64(c.L3Miss))
	for _, f := range frames {
		buf := k.pool.Alloc()
		if buf == nil {
			f.Release()
			continue
		}
		buf.SetData(f.Data)
		// Handshake frames charge the miss floor, not the population-
		// scaled DDIO curve: the accept path's lines (listener, SYN
		// backlog, fresh PCB) stay LLC-resident across an establishment
		// burst, so batched SYN admission amortizes the per-frame
		// penalty.
		d := c.SoftIRQPerPkt + miss
		if nicsim.IsTCPSYN(f.Data) {
			d = c.SoftIRQPerPkt + h.missFloor
		}
		f.Release()
		m.Charge(d)
		k.kernelNs += int64(d)
		h.ns.Input(buf)
		buf.Unref()
	}
	// Kernel timers piggyback on softirq.
	h.wheel.Advance(int64(h.eng.Now()))
	// The kernel acks as it processes, sliding its receive window
	// independent of the application (§3).
	h.ns.Flush()
	k.curMeter = nil
	h.cur = nil
	k.napiMore = k.rxq.Len() > 0
	k.stageTx()
	m.AtEndCall(kEndNapi, k)
}

// enqueueReady marks a socket eventful and wakes its owning core's app
// thread if it is blocked in epoll_wait.
func (k *kcore) enqueueReady(s *sock) {
	if !s.inReady {
		s.inReady = true
		k.readyQ = append(k.readyQ, s)
	}
	k.maybeWakeApp()
}

func (k *kcore) maybeWakeApp() {
	if k.appRunning || k.readyHead >= len(k.readyQ) {
		return
	}
	k.appRunning = true
	// Scheduler wakeup latency for the blocked, pinned thread.
	k.core.SubmitAfter(k.h.cfg.Cost.WakeupLatency, sim.ClassUser, k.appRunFn)
}

// appRun is the application thread resuming from epoll_wait.
func (k *kcore) appRun(m *sim.Meter) {
	h := k.h
	h.cur = k
	k.curMeter = m
	k.sysKernel = 0
	c := &h.cfg.Cost
	k.chargeK(c.SyscallEntry) // epoll_wait return
	userStart := m.Elapsed()
	preKernel := k.sysKernel
	for k.readyHead < len(k.readyQ) {
		s := k.readyQ[k.readyHead]
		k.readyQ[k.readyHead] = nil
		k.readyHead++
		if k.readyHead == len(k.readyQ) {
			k.readyQ = k.readyQ[:0]
			k.readyHead = 0
		}
		s.inReady = false
		k.chargeK(c.EpollDispatch)
		k.dispatch(s)
	}
	userSpent := m.Elapsed() - userStart - (k.sysKernel - preKernel)
	if userSpent > 0 {
		k.userNs += int64(userSpent)
	}
	k.curMeter = nil
	h.cur = nil
	k.stageTx()
	m.AtEndCall(kEndApp, k)
}

// dispatch delivers one ready socket's events to the application.
func (k *kcore) dispatch(s *sock) {
	c := &k.h.cfg.Cost
	if s.acceptPending {
		s.acceptPending = false
		k.chargeK(c.SyscallEntry + c.ConnSetup) // accept4()
		k.handler.OnAccept(s)
	}
	if s.connectedPending {
		s.connectedPending = false
		k.handler.OnConnected(s, s.connectedOK)
		if !s.connectedOK {
			return
		}
	}
	for int(s.rcvOff) < len(s.rcvbuf) {
		n := len(s.rcvbuf) - int(s.rcvOff)
		if n > readChunk {
			n = readChunk
		}
		chunk := s.rcvbuf[s.rcvOff : int(s.rcvOff)+n]
		s.rcvOff += int32(n)
		if int(s.rcvOff) == len(s.rcvbuf) {
			// Fully drained: release the backing so an idle socket holds
			// no receive buffer; it re-materializes on the next arrival.
			// chunk stays valid through the OnRecv call below — nothing
			// can append to rcvbuf while the app thread occupies the core.
			s.rcvbuf = nil
			s.rcvOff = 0
		}
		k.chargeK(c.SyscallEntry + c.SockRead + c.CopyPerByte.Cost(n))
		if s.conn != nil {
			s.conn.RecvDone(n) // window opens as the app consumes
		}
		k.handler.OnRecv(s, chunk)
		if s.dead {
			return
		}
	}
	if s.sentPending > 0 {
		n := int(s.sentPending)
		s.sentPending = 0
		k.handler.OnSent(s, n)
	}
	if s.readyPending {
		s.readyPending = false
		if k.sendReady != nil && !s.dead && !s.closing {
			k.sendReady.OnSendReady(s)
		}
	}
	if s.eofPending {
		s.eofPending = false
		k.handler.OnEOF(s)
	}
	if s.deadPending {
		s.deadPending = false
		s.dead = true
		k.handler.OnClosed(s)
	}
}

// env returns the app.Env for this core's application thread.
func (k *kcore) env() app.Env { return (*kenv)(k) }

// kenv implements app.Env on a kcore.
type kenv kcore

func (e *kenv) k() *kcore { return (*kcore)(e) }

func (e *kenv) Now() int64 { return int64(e.h.eng.Now()) }

func (e *kenv) Thread() int { return e.id }

func (e *kenv) Charge(d time.Duration) {
	k := e.k()
	if k.curMeter != nil {
		k.curMeter.Charge(d)
	} else {
		k.userNs += int64(d)
	}
}

// Elapsed returns CPU time charged in the current task.
func (e *kenv) Elapsed() time.Duration {
	if k := e.k(); k.curMeter != nil {
		return k.curMeter.Elapsed()
	}
	return 0
}

// Listen binds the shared kernel stack to port once; further listens are
// SO_REUSEPORT no-ops (accepted sockets are distributed by RSS core).
func (e *kenv) Listen(port uint16) error {
	k := e.k()
	if k.h.listening[port] {
		return nil
	}
	k.h.listening[port] = true
	_, err := k.h.ns.TCP().Listen(port, nil)
	return err
}

// runAppTask runs fn in an app-thread task with kernel context wiring.
func (k *kcore) runAppTask(fn func()) {
	k.core.Submit(sim.ClassUser, func(m *sim.Meter) {
		k.h.cur = k
		k.curMeter = m
		fn()
		k.curMeter = nil
		k.h.cur = nil
		k.stageTx()
		m.AtEndCall(kEndTask, k)
	})
}

func (e *kenv) After(d time.Duration, fn func()) {
	k := e.k()
	k.h.eng.After(d, func() { k.runAppTask(fn) })
}

func (e *kenv) Connect(dst wire.IPv4, port uint16, cookie any) error {
	k := e.k()
	doConnect := func() {
		k.chargeK(k.h.cfg.Cost.SyscallEntry + k.h.cfg.Cost.ConnSetup)
		conn, err := k.h.ns.TCP().Connect(dst, port, 0)
		if err != nil {
			s := &sock{k: k, cookie: cookie, connectedPending: true, dead: true}
			k.enqueueReady(s)
			return
		}
		s := &sock{k: k, conn: conn, cookie: cookie}
		conn.Cookie = k.h.grantSock(s)
	}
	if k.curMeter != nil {
		prev := k.h.cur
		k.h.cur = k
		doConnect()
		k.h.cur = prev
		return nil
	}
	// Issued outside any task (program start): run as an app task.
	k.runAppTask(doConnect)
	return nil
}
