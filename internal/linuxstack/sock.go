package linuxstack

import (
	"time"

	"ix/internal/app"
	"ix/internal/mem"
	"ix/internal/tcp"
	"ix/internal/wire"
)

// sndbufMax models SO_SNDBUF: bytes the kernel will buffer beyond what
// the TCP window has accepted (Linux buffers send data past raw TCP
// constraints and applies flow control inside the kernel, §4.3).
const sndbufMax = 4 << 20

// sock is a kernel socket plus its epoll registration: the Linux analogue
// of an IX flow handle + libix conn.
type sock struct {
	k      *kcore
	conn   *tcp.Conn
	cookie any

	// rcvbuf holds bytes copied out of skbs, awaiting read(); rcvOff is
	// the read cursor. The backing is materialized only while data is
	// queued and released the moment the reader drains it, so an idle
	// socket holds no receive buffer — part of the per-connection byte
	// budget (DESIGN.md). rcvOff and sentPending are int32 (both bounded
	// by buffer sizes) so the socket packs a word tighter.
	rcvbuf []byte
	rcvOff int32
	// sndbuf holds bytes written by the app beyond the TCP window.
	sndbuf []byte

	sentPending int32

	inReady          bool
	acceptPending    bool
	connectedPending bool
	connectedOK      bool
	eofPending       bool
	deadPending      bool
	dead             bool

	// closing: close(2) was called; the FIN is owed but deferred until
	// the kernel sndbuf drains (finSent marks it issued). Linux never
	// drops buffered bytes on close — the kernel keeps flushing and
	// sequences the FIN after the data.
	closing bool
	finSent bool
	// wantReady arms the writable-again edge for a handler that
	// implements app.SendReadyHandler after a short write; readyPending
	// carries the armed edge to the app thread's dispatch.
	wantReady    bool
	readyPending bool
}

var _ app.Conn = (*sock)(nil)

// Send is write(2): syscall entry, kernel copy, inline TCP transmit of
// whatever the window takes, kernel sndbuf for the rest.
func (s *sock) Send(b []byte) int {
	if s.dead || s.conn == nil || s.closing {
		return 0
	}
	k := s.k
	c := &k.h.cfg.Cost
	k.chargeK(c.SyscallEntry + c.SockWrite + c.CopyPerByte.Cost(len(b)))
	room := sndbufMax - len(s.sndbuf)
	if room <= 0 {
		s.armSendReady()
		return 0
	}
	if len(b) > room {
		b = b[:room]
		s.armSendReady()
	}
	// The kernel owns a copy of the data from here on.
	s.sndbuf = append(s.sndbuf, b...)
	s.flushSnd()
	return len(b)
}

// flushSnd pushes sndbuf into the TCP engine as the window allows;
// runs inline on write() and from softirq on ACKs.
func (s *sock) flushSnd() {
	if len(s.sndbuf) == 0 || s.conn == nil {
		return
	}
	n := s.conn.Sendv([][]byte{s.sndbuf})
	if n > 0 {
		k := s.k
		segs := (n + wire.MSS - 1) / wire.MSS
		k.chargeK(time.Duration(segs) * k.h.cfg.Cost.TxPerPkt)
		// Note: the transmitted prefix must stay immutable until acked
		// (zero-copy contract of the engine); the kernel model honors
		// that by never mutating consumed prefixes.
		s.sndbuf = s.sndbuf[n:]
		if len(s.sndbuf) == 0 {
			s.sndbuf = nil
		}
	}
}

// armSendReady arms the writable-again edge after a short write; a
// no-op unless the core's handler implements app.SendReadyHandler.
func (s *sock) armSendReady() {
	if s.k.sendReady == nil || s.dead || s.closing {
		return
	}
	s.wantReady = true
}

// Unsent reports kernel-buffered bytes not yet accepted by TCP.
func (s *sock) Unsent() int { return len(s.sndbuf) }

// Close is close(2) → FIN. Bytes still in the kernel sndbuf are not
// dropped: the ACK-driven flush keeps running and the FIN is issued
// only once the buffer drains, so queued data reaches the wire first.
// Further writes are rejected (the fd is gone).
func (s *sock) Close() {
	if s.dead || s.conn == nil || s.closing {
		return
	}
	s.k.chargeK(s.k.h.cfg.Cost.SyscallEntry)
	s.closing = true
	s.wantReady = false
	if len(s.sndbuf) == 0 {
		s.finSent = true
		s.conn.Close()
	}
	// Otherwise the FIN is owed to kernelEvents.Sent.
}

// Abort is close(2) with SO_LINGER 0 → RST.
func (s *sock) Abort() {
	if s.dead || s.conn == nil {
		return
	}
	s.k.chargeK(s.k.h.cfg.Cost.SyscallEntry)
	s.conn.Abort()
}

// Cookie returns the app tag.
func (s *sock) Cookie() any { return s.cookie }

// SetCookie tags the socket.
func (s *sock) SetCookie(v any) { s.cookie = v }

// kernelEvents adapts TCP engine callbacks to socket state; methods run
// in softirq (or inline write()) context on whichever core is current.
type kernelEvents Host

// k returns the core whose context is executing (for cost attribution
// and new-socket affinity — the affinity-accept behaviour of §2.3).
func (ke *kernelEvents) k() *kcore {
	h := (*Host)(ke)
	if h.cur != nil {
		return h.cur
	}
	return h.cores[0]
}

func (ke *kernelEvents) Knock(l *tcp.Listener, key wire.FlowKey) bool { return true }

func (ke *kernelEvents) Accepted(c *tcp.Conn) {
	// Affinity-accept: the new socket is owned by the core whose queue
	// received the handshake (§2.3); its events wake that core's thread.
	k := ke.k()
	s := &sock{k: k, conn: c, acceptPending: true}
	c.Cookie = (*Host)(ke).grantSock(s)
	k.enqueueReady(s)
}

// Established sockets wake the epoll of their *owning* core — the
// thread that issued the connect (or accepted the socket) — regardless
// of which core's softirq context processed the packet: a locally
// initiated socket's return traffic carries no affinity to the issuing
// core (the shared kernel stack has no RSS-aligned port probing), so
// routing its readiness to the RSS core would hand the socket to a
// different application thread than the one that owns the fd.

func (ke *kernelEvents) Connected(c *tcp.Conn, ok bool) {
	h := (*Host)(ke)
	s := h.sockOf(c)
	if s == nil {
		return
	}
	s.connectedPending = true
	s.connectedOK = ok
	if !ok {
		// Terminal: a failed active open never reaches Dead (the engine
		// reports SynSent teardown as Connected(false) only), so the
		// cookie slot is released here.
		s.dead = true
		h.revokeSock(c.Cookie)
	}
	s.k.enqueueReady(s)
}

func (ke *kernelEvents) Recv(c *tcp.Conn, buf *mem.Mbuf, data []byte) {
	s := (*Host)(ke).sockOf(c)
	if s == nil {
		return
	}
	// skb → socket buffer. The byte copy cost is charged at read()
	// time (CopyPerByte covers the single kernel→user copy; queueing
	// here models skb retention without holding the mbuf).
	s.rcvbuf = append(s.rcvbuf, data...)
	s.k.enqueueReady(s)
}

// Sent ignores released: the kernel sndbuf slides by accepted bytes,
// not by segment reclamation.
func (ke *kernelEvents) Sent(c *tcp.Conn, acked, released int) {
	s := (*Host)(ke).sockOf(c)
	if s == nil {
		return
	}
	// ACK-clocked transmit from softirq context.
	s.flushSnd()
	// A deferred close(2) issues its FIN the moment the buffer drains.
	if s.closing && !s.finSent && len(s.sndbuf) == 0 {
		s.finSent = true
		s.conn.Close()
		return
	}
	// Only wake the app for write-readiness when it still has buffered
	// data (libevent-style write events are enabled on demand).
	if acked > 0 && len(s.sndbuf) > 0 && !s.closing {
		s.sentPending += int32(acked)
		s.k.enqueueReady(s)
	}
	// Writable-again edge: a writer that saw a short write wakes once —
	// and only once the buffer has actually reopened, so a fully drained
	// sndbuf (which the wake above never covers) still signals.
	if s.wantReady && len(s.sndbuf) < sndbufMax {
		s.wantReady = false
		s.readyPending = true
		s.k.enqueueReady(s)
	}
}

func (ke *kernelEvents) RemoteClosed(c *tcp.Conn) {
	s := (*Host)(ke).sockOf(c)
	if s == nil {
		return
	}
	s.eofPending = true
	s.k.enqueueReady(s)
}

func (ke *kernelEvents) Dead(c *tcp.Conn, reason tcp.Reason) {
	h := (*Host)(ke)
	s := h.sockOf(c)
	if s == nil {
		return
	}
	h.revokeSock(c.Cookie)
	s.deadPending = true
	s.k.enqueueReady(s)
}
