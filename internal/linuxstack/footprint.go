package linuxstack

import (
	"unsafe"

	"ix/internal/memprobe"
	"ix/internal/tcp"
)

// grantSock registers s in the host's socket table and returns its
// compact cookie id (slot index + 1; 0 keeps its "no socket" meaning).
func (h *Host) grantSock(s *sock) uint64 {
	if n := len(h.sockFree); n > 0 {
		idx := h.sockFree[n-1]
		h.sockFree = h.sockFree[:n-1]
		h.socks[idx] = s
		return uint64(idx) + 1
	}
	h.socks = append(h.socks, s)
	return uint64(len(h.socks))
}

// revokeSock clears the slot and frees the id for reuse.
func (h *Host) revokeSock(id uint64) {
	if id == 0 || id > uint64(len(h.socks)) {
		return
	}
	h.socks[id-1] = nil
	h.sockFree = append(h.sockFree, uint32(id-1))
}

// sockOf resolves a kernel connection's socket adapter (nil for
// embryonic connections that have not been accepted yet).
func (h *Host) sockOf(c *tcp.Conn) *sock {
	id := c.Cookie
	if id == 0 || id > uint64(len(h.socks)) {
		return nil
	}
	return h.socks[id-1]
}

// Footprint implements the memprobe accounting contract for the Linux
// host model: the shared kernel stack's TCP tally plus, per
// connection, the socket adapter struct and the capacities of its
// kernel-side receive and send staging buffers.
func (h *Host) Footprint() memprobe.Footprint {
	const (
		sockBytes = int64(unsafe.Sizeof(sock{}))
		slotBytes = int64(unsafe.Sizeof((*sock)(nil)))
	)
	f := h.ns.TCP().Footprint()
	f.Bytes += int64(cap(h.socks))*slotBytes + int64(cap(h.sockFree))*4
	for _, c := range h.ns.TCP().Conns() {
		s := h.sockOf(c)
		if s == nil {
			continue // embryonic: no socket until accept
		}
		f.Bytes += sockBytes + int64(cap(s.rcvbuf)) + int64(cap(s.sndbuf))
	}
	return f
}
