// Package app defines the architecture-independent application interface:
// the event-driven programming model that libix exposes on IX and that the
// Linux (libevent/epoll) and mTCP baselines expose through their own
// adapters. Writing the benchmark applications (echo, NetPIPE, memcached,
// mutilate agents) against this one interface is what makes the §5
// comparisons apples-to-apples: the same application logic runs on all
// three OS architectures, exactly as the paper ports the same memcached to
// both Linux and IX.
package app

import (
	"time"

	"ix/internal/wire"
)

// Conn is an established connection as seen by the application.
type Conn interface {
	// Send queues b for transmission and returns the bytes accepted
	// (possibly short of len(b) when the connection's pending-send
	// budget is exhausted; flow-control progress is delivered through
	// OnSent). The caller may reuse b immediately: each adapter takes
	// exactly one warm-cache copy close to use (§6) — on IX into the
	// connection's pooled TX arena, whose bytes the dataplane then
	// references in place until the peer's ACK releases them (the
	// zero-copy ownership contract of §3.3); on the baselines into
	// their kernel/user send buffers.
	Send(b []byte) int
	// Close performs an orderly close (FIN).
	Close()
	// Abort closes with RST, the benchmark-style close of §5.3.
	Abort()
	// Cookie returns the user tag attached to the connection.
	Cookie() any
	// SetCookie attaches a user tag (Table 1's cookie).
	SetCookie(v any)
	// Unsent reports bytes queued but not yet accepted by the stack
	// (application-level transmit buffering; IX exposes this, the
	// baselines report their unflushed buffer).
	Unsent() int
}

// Handler receives connection events. One handler instance exists per
// elastic thread / core; the runtime never calls it concurrently.
type Handler interface {
	// OnAccept fires when a remotely initiated connection is ready.
	OnAccept(c Conn)
	// OnConnected reports the outcome of Env.Connect.
	OnConnected(c Conn, ok bool)
	// OnRecv delivers received bytes. data is valid only during the
	// callback (underlying buffers are recycled after it returns);
	// handlers copy what they retain.
	OnRecv(c Conn, data []byte)
	// OnSent is the tx_sent event condition: acked bytes reached the
	// peer and were acknowledged (flow-control progress). Transmit
	// buffer reclamation follows the same signal but at segment
	// granularity — a partially acknowledged segment stays referenced
	// in full until the ACK covers it — and is handled inside each
	// adapter (on IX, the libix TX arena's release cursor); the
	// application's own buffer was free the moment Send returned.
	OnSent(c Conn, acked int)
	// OnEOF reports a peer half-close; the usual response is Close.
	OnEOF(c Conn)
	// OnClosed reports connection termination. The Conn is dead.
	OnClosed(c Conn)
}

// SendReadyHandler is an optional Handler extension: the writable-again
// event condition. After a Send returned short (pending-send budget or
// transmit pool exhausted), an adapter whose handler implements this
// interface delivers exactly one OnSendReady when the connection can
// accept bytes again — on IX when the kernel's sendv acceptance reopens
// the MaxPendingSend budget or the ACK-driven arena release returns
// chunks to the thread pool, on the baselines when the kernel/user send
// buffer drains below its cap. Callers retry Send from the callback; a
// retry that comes up short re-arms the condition. Handlers that do not
// implement the interface see no behaviour change (no polling, no
// spurious wakeups — the libevent write-event-on-demand model).
type SendReadyHandler interface {
	OnSendReady(c Conn)
}

// Env is the per-thread runtime environment handed to applications.
type Env interface {
	// Now returns virtual time in nanoseconds.
	Now() int64
	// Charge accounts application CPU time on the current core — how
	// the simulation attributes the app's share of each cycle.
	Charge(d time.Duration)
	// Elapsed returns the CPU time already charged in the current
	// execution context, so Now()+Elapsed() is this thread's true
	// virtual position within a batch (used e.g. by the memcached lock
	// contention model).
	Elapsed() time.Duration
	// Connect initiates a connection from this thread; OnConnected
	// reports the outcome.
	Connect(dst wire.IPv4, port uint16, cookie any) error
	// Listen accepts connections on port for this thread.
	Listen(port uint16) error
	// After schedules fn on this thread's timer service (used by load
	// generators for pacing and timeouts).
	After(d time.Duration, fn func())
	// Thread returns this thread's index on its host.
	Thread() int
}

// Factory creates the per-thread application instance at start of day.
// Threads on the same host share the process address space, so factories
// may close over shared state (e.g. the memcached store) — the same model
// as a multithreaded IX application.
type Factory func(env Env, thread, threads int) Handler
