package ix

import (
	"testing"
	"time"
)

// TestPublicAPIQuickstart exercises the facade the examples use.
func TestPublicAPIQuickstart(t *testing.T) {
	cl := NewCluster(1)
	m := NewEchoMetrics()
	cl.AddHost("server", HostSpec{Arch: ArchIX, Cores: 2, Factory: EchoServer(9000, 64)})
	srvIP := cl.IXServer(0).IP()
	cl.AddHost("client", HostSpec{Arch: ArchLinux, Cores: 1, Factory: EchoClient(EchoClientConfig{
		ServerIP: srvIP, Port: 9000, MsgSize: 64, Conns: 1, Metrics: m,
	})})
	cl.Start()
	cl.Run(5 * time.Millisecond)
	if m.Msgs.Total() == 0 {
		t.Fatal("no RPCs through the public API")
	}
}

// TestExperimentRegistry: every documented experiment is registered.
func TestExperimentRegistry(t *testing.T) {
	for _, name := range []string{"fig2", "fig3a", "fig3b", "fig3c", "fig4", "fig5", "fig6", "table2"} {
		if _, ok := Experiments[name]; !ok {
			t.Errorf("experiment %q missing from registry", name)
		}
	}
	if _, ok := RunExperiment("nope", Quick); ok {
		t.Error("unknown experiment accepted")
	}
}

// TestMemcachedPublicAPI runs one small memcached point via the facade.
func TestMemcachedPublicAPI(t *testing.T) {
	res := RunMemcached(MemcSetup{
		ServerArch: ArchIX, ServerCores: 2, BatchBound: DefaultBatchBound,
		Workload: USR, TargetRPS: 100_000, ClientHosts: 2, ClientCores: 1,
		Warmup: 2 * time.Millisecond, Window: 5 * time.Millisecond,
	})
	if res.AchievedRPS < 50_000 {
		t.Fatalf("achieved %.0f RPS", res.AchievedRPS)
	}
	if res.AgentP99 <= 0 || res.AgentP99 > SLA {
		t.Fatalf("p99 = %v", res.AgentP99)
	}
}
